.PHONY: all build test check bench batch fmt clean

all: build

build:
	dune build @all

test:
	dune runtest

# The gate a change must pass before review: full build, the whole test
# suite, and a small batch-engine smoke run (engine vs naive equivalence
# on live data, not just the unit fixtures).
check: build
	dune runtest
	dune exec bench/main.exe -- batch_smoke

bench:
	dune exec bench/main.exe

batch:
	dune exec bench/main.exe -- batch

# Requires ocamlformat (see .ocamlformat for the pinned profile); not part
# of `check` so the gate works on toolchains without it.
fmt:
	dune build @fmt --auto-promote

clean:
	dune clean
