.PHONY: all build test check bench batch par templates deduce saturate satcore lint robustness daemon recovery fmt clean

all: build

build:
	dune build @all

test:
	dune runtest

# The gate a change must pass before review: full build, the whole test
# suite, and a small batch-engine smoke run (engine vs naive equivalence
# on live data, not just the unit fixtures).
check: build
	dune runtest
	dune exec bench/main.exe -- batch_smoke

bench:
	dune exec bench/main.exe

batch:
	dune exec bench/main.exe -- batch

# Domain-parallel engine vs sequential (jobs from $$CRSOLVE_JOBS, else 4);
# writes BENCH_par.json and requires identical results.
par:
	dune exec bench/main.exe -- par

# The template-compilation headline runs: the distinct-entity Person
# batch (120 and 2000 entities; template_hit_ratio >= 0.9 ratchet) and
# the multi-core scaling curve (jobs in {1,2,4,8}; summed encode phase
# at jobs=4 bounded by 1.5x the sequential sum). Writes BENCH_batch.json,
# BENCH_batch2k.json and BENCH_par.json.
templates:
	dune exec bench/main.exe -- batch batch2k par

# Backbone vs naive vs unit-prop deduction on the Person batch; writes
# BENCH_deduce.json and exits non-zero if backbone and naive_deduce ever
# disagree on a deduced order.
deduce:
	dune exec bench/main.exe -- deduce

# Static saturation pre-phase on vs off on the Person batch; writes
# BENCH_saturate.json and exits non-zero unless resolutions are identical
# both ways and the pre-phase avoided at least one deduction probe
# (the probes_avoided > 0 ratchet).
saturate:
	dune exec bench/main.exe -- saturate

# SAT-core ablation: clause-DB management (LBD reduction + inprocessing)
# on vs off over Person entities with linearly-growing histories; writes
# BENCH_satcore.json and exits non-zero unless resolutions are identical
# both ways and solve+deduce beats the grow-forever baseline at the
# largest size.
satcore:
	dune exec bench/main.exe -- satcore

# Lint the shipped example data. The paper's own Fig. 3 constraint set
# carries exactly one true redundancy on this data — W007 on Σ#2
# ('sailor < veteran' already follows from φ1 + φ5 on George) — so the
# clean set must exit 1 with precisely that one warning, and the broken
# set must exit 2 (errors found). Both pinned outcomes are the gate.
lint: build
	dune exec bin/crsolve.exe -- lint -e examples/data/photo.csv \
	  -s examples/data/sigma.txt -g examples/data/gamma.txt \
	  > /tmp/lint_clean.out; test $$? -eq 1
	cat /tmp/lint_clean.out
	test "$$(grep -c '^W' /tmp/lint_clean.out)" = 1
	grep -q "^W007 .*(Σ#2 " /tmp/lint_clean.out
	dune exec bin/crsolve.exe -- lint -e examples/data_broken/photo.csv \
	  -s examples/data_broken/sigma.txt -g examples/data_broken/gamma.txt; \
	  test $$? -eq 2

# Fault-injection suite plus the poisoned-batch bench smoke: per-entity
# isolation, the degradation ladder under budgets, and jobs=1 == jobs=4
# determinism; writes BENCH_robustness.json.
robustness: build
	dune exec test/test_robustness.exe
	dune exec bench/main.exe -- robustness_smoke

# Session layer + crsolved daemon: the test suite (interleaved-arrival
# parity, store bounds, budgets, socket round trip) plus the streaming
# bench smoke (incremental vs cold over an update log, a real daemon on a
# Unix socket); writes BENCH_daemon.json.
daemon: build
	dune exec test/test_session.exe
	dune exec bench/main.exe -- daemon_smoke

# Durability: the WAL/snapshot/recovery test suite (torn tails, duplicate
# delivery, kill-point parity properties) plus the crash-injection bench
# smoke, which kill -9s a real forked crsolved mid-stream, restarts it on
# the same WAL dir, and fails unless the recovered answers are
# bit-identical (recovered_parity) with zero lost events and fsync=interval
# throughput within 0.8x of the no-WAL baseline; writes BENCH_recovery.json.
recovery: build
	dune exec test/test_durable.exe
	dune exec bench/main.exe -- recovery_smoke

# Requires ocamlformat (see .ocamlformat for the pinned profile); not part
# of `check` so the gate works on toolchains without it.
fmt:
	dune build @fmt --auto-promote

clean:
	dune clean
