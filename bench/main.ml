(* Benchmark harness: regenerates every figure of the paper's evaluation
   (Fig. 8(a)-(p)), the summary claims, and three ablations specific to
   this reproduction. Run everything:

     dune exec bench/main.exe

   or a single experiment / list of experiments:

     dune exec bench/main.exe -- fig8a fig8f summary

   `micro` additionally runs Bechamel micro-benchmarks of the core
   operations. Absolute numbers differ from the paper (different machine,
   different substrate implementations); the shapes are the deliverable:
   who wins, by what factor, and where the curves sit relative to each
   other. See EXPERIMENTS.md for the side-by-side reading. *)

let section title =
  Printf.printf "\n================ %s ================\n%!" title

(* Uniform failure reporting: a scenario that detects a disagreement
   records it here instead of exiting on its own; the driver prints every
   recorded failure after the selected scenarios ran and exits 1 if any
   were recorded, so all scenarios fail the same way. *)
let failures : string list ref = ref []
let claim name ok = if not ok then failures := name :: !failures

let time_ms f =
  let t0 = Sys.time () in
  let r = f () in
  ((Sys.time () -. t0) *. 1000., r)

let mean l = if l = [] then 0. else List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

(* ---------------------------------------------------------------- *)
(* datasets                                                         *)
(* ---------------------------------------------------------------- *)

(* NBA size buckets as in the paper's x-axis *)
let nba_buckets = [ (14, "[1,27]"); (41, "[28,54]"); (68, "[55,81]"); (95, "[82,108]"); (122, "[109,135]") ]

(* Person size buckets *)
let person_buckets =
  [ (1000, "[1,2000]"); (3000, "[2001,4000]"); (5000, "[4001,6000]"); (7000, "[6001,8000]"); (9000, "[8001,10000]") ]

let entities_per_bucket = 3

let nba_sized size =
  Datagen.Nba.generate_sized
    { Datagen.Nba.default_params with n_entities = 0; seasons_min = 4; seasons_max = 6 }
    ~sizes:(List.init entities_per_bucket (fun i -> size + i))

let person_sized size =
  Datagen.Person.generate
    {
      Datagen.Person.default_params with
      n_entities = entities_per_bucket;
      size_min = size;
      size_max = size;
      (* richer histories for bigger buckets: active domains, and hence
         the CNF, grow with entity size as in the paper's generator *)
      extra_events = min 12 (size / 800);
    }

(* accuracy datasets (paper-scale constraint sets, moderate entity counts
   to keep the full sweep in seconds) *)
let nba_acc = lazy (Datagen.Nba.generate { Datagen.Nba.default_params with n_entities = 20 })

let career_acc =
  lazy (Datagen.Career.generate { Datagen.Career.default_params with n_entities = 30; pubs_max = 60 })

let person_acc =
  lazy
    (Datagen.Person.generate
       {
         Datagen.Person.default_params with
         n_entities = 20;
         size_min = 8;
         size_max = 18;
         extra_events = 4;
       })

(* ---------------------------------------------------------------- *)
(* Fig. 8(a): validity checking time vs entity size                 *)
(* ---------------------------------------------------------------- *)

let fig8a () =
  section "Fig 8(a): IsValid elapsed time (ms) vs entity size";
  let run name buckets mk =
    Printf.printf "%s:\n" name;
    List.iter
      (fun (size, label) ->
        let ds = mk size in
        let times =
          List.map
            (fun (case : Datagen.Types.case) ->
              let spec = Datagen.Types.spec_of ds case in
              let ms, valid =
                time_ms (fun () -> Crcore.Validity.check (Crcore.Encode.encode spec))
              in
              assert valid;
              ms)
            ds.Datagen.Types.cases
        in
        Printf.printf "  %-14s %8.1f ms\n%!" label (mean times))
      buckets
  in
  run "NBA (|Σ|=54, |Γ|=59)" nba_buckets nba_sized;
  run "Person (|Σ|=983, |Γ|=1000)" person_buckets person_sized

(* ---------------------------------------------------------------- *)
(* Fig. 8(b): DeduceOrder vs NaiveDeduce                            *)
(* ---------------------------------------------------------------- *)

let fig8b () =
  section "Fig 8(b): true-value deduction time (ms), DeduceOrder vs NaiveDeduce";
  let run name buckets mk ~with_naive =
    Printf.printf "%s:\n" name;
    List.iter
      (fun (size, label) ->
        let ds = mk size in
        let d_times = ref [] and n_times = ref [] in
        List.iter
          (fun (case : Datagen.Types.case) ->
            let spec = Datagen.Types.spec_of ds case in
            (* like the paper's Fig. 5, deduction starts from the
               specification: instantiation + CNF conversion included *)
            let ms, _ =
              time_ms (fun () -> Crcore.Deduce.deduce_order (Crcore.Encode.encode spec))
            in
            d_times := ms :: !d_times;
            if with_naive then begin
              let ms, _ =
                time_ms (fun () -> Crcore.Deduce.naive_deduce (Crcore.Encode.encode spec))
              in
              n_times := ms :: !n_times
            end)
          ds.Datagen.Types.cases;
        if with_naive then
          Printf.printf "  %-14s DeduceOrder %8.1f ms   NaiveDeduce %8.1f ms\n%!" label
            (mean !d_times) (mean !n_times)
        else Printf.printf "  %-14s DeduceOrder %8.1f ms\n%!" label (mean !d_times))
      buckets
  in
  run "NBA" nba_buckets nba_sized ~with_naive:true;
  (* the paper reports NaiveDeduce beyond 20 minutes on large Person
     entities and omits it from the plot; we run it on the small bucket *)
  run "Person" person_buckets person_sized ~with_naive:false;
  Printf.printf "Person (NaiveDeduce, smallest bucket only):\n";
  List.iter
    (fun (size, label) ->
      let ds = person_sized size in
      let times =
        List.map
          (fun (case : Datagen.Types.case) ->
            let spec = Datagen.Types.spec_of ds case in
            fst (time_ms (fun () -> Crcore.Deduce.naive_deduce (Crcore.Encode.encode spec))))
          ds.Datagen.Types.cases
      in
      Printf.printf "  %-14s NaiveDeduce %8.1f ms\n%!" label (mean times))
    [ List.nth person_buckets 0 ]

(* ---------------------------------------------------------------- *)
(* Fig. 8(c)/(d): overall time split per phase                      *)
(* ---------------------------------------------------------------- *)

let time_split name buckets mk =
  section name;
  Printf.printf "  %-14s %10s %10s %10s %10s\n" "bucket" "validity" "deduce" "suggest" "total";
  List.iter
    (fun (size, label) ->
      let ds = mk size in
      let v = ref [] and d = ref [] and s = ref [] in
      List.iter
        (fun (case : Datagen.Types.case) ->
          let spec = Datagen.Types.spec_of ds case in
          let o = Crcore.Framework.resolve ~user:(Crcore.Framework.oracle case.truth) spec in
          v := (o.Crcore.Framework.timings.Crcore.Framework.validity *. 1000.) :: !v;
          d := (o.Crcore.Framework.timings.Crcore.Framework.deduce *. 1000.) :: !d;
          s := (o.Crcore.Framework.timings.Crcore.Framework.suggest *. 1000.) :: !s)
        ds.Datagen.Types.cases;
      Printf.printf "  %-14s %8.1f ms %8.1f ms %8.1f ms %8.1f ms\n%!" label (mean !v) (mean !d)
        (mean !s)
        (mean !v +. mean !d +. mean !s))
    buckets

let fig8c () = time_split "Fig 8(c): NBA overall time per phase" nba_buckets nba_sized
let fig8d () = time_split "Fig 8(d): Person overall time per phase" person_buckets person_sized

(* ---------------------------------------------------------------- *)
(* Fig. 8(e)/(i)/(m): %-true-values vs interaction rounds           *)
(* ---------------------------------------------------------------- *)

let interactions name (ds : Datagen.Types.dataset) max_rounds =
  section name;
  let arity = Schema.arity ds.Datagen.Types.schema in
  let per_round = Array.make (max_rounds + 1) 0 in
  let total = ref 0 in
  List.iter
    (fun (case : Datagen.Types.case) ->
      let spec = Datagen.Types.spec_of ds case in
      let o =
        Crcore.Framework.resolve ~max_rounds
          ~user:(Crcore.Framework.oracle ~max_answers:3 case.truth)
          spec
      in
      total := !total + arity;
      let counts = Array.of_list o.Crcore.Framework.per_round_known in
      for r = 0 to max_rounds do
        let c = counts.(min r (Array.length counts - 1)) in
        per_round.(r) <- per_round.(r) + c
      done)
    ds.Datagen.Types.cases;
  Array.iteri
    (fun r c ->
      Printf.printf "  after %d interaction(s): %5.1f%% of true values\n%!" r
        (100. *. float_of_int c /. float_of_int !total))
    per_round

let fig8e () = interactions "Fig 8(e): NBA, true values vs #interactions" (Lazy.force nba_acc) 2
let fig8i () = interactions "Fig 8(i): CAREER, true values vs #interactions" (Lazy.force career_acc) 2
let fig8m () = interactions "Fig 8(m): Person, true values vs #interactions" (Lazy.force person_acc) 3

(* ---------------------------------------------------------------- *)
(* Fig. 8(f)-(h), (j)-(l), (n)-(p): F-measure sweeps                *)
(* ---------------------------------------------------------------- *)

type vary = Both | Sigma_only | Gamma_only

let fractions = [ 0.2; 0.4; 0.6; 0.8; 1.0 ]

let f_measure_at (ds : Datagen.Types.dataset) ~vary ~frac ~max_rounds =
  let m = ref Crcore.Metrics.zero in
  List.iter
    (fun (case : Datagen.Types.case) ->
      let sigma_frac, gamma_frac =
        match vary with
        | Both -> (frac, frac)
        | Sigma_only -> (frac, 0.)
        | Gamma_only -> (0., frac)
      in
      let spec = Datagen.Types.spec_of ~sigma_frac ~gamma_frac ds case in
      let o =
        Crcore.Framework.resolve ~max_rounds
          ~user:(Crcore.Framework.oracle ~max_answers:2 case.truth)
          spec
      in
      m :=
        Crcore.Metrics.add !m
          (Crcore.Metrics.evaluate ~truth:case.truth ~entity:case.entity o.Crcore.Framework.resolved))
    ds.Datagen.Types.cases;
  Crcore.Metrics.f_measure !m

let pick_f (ds : Datagen.Types.dataset) ~frac =
  let m = ref Crcore.Metrics.zero in
  List.iter
    (fun (case : Datagen.Types.case) ->
      let spec = Datagen.Types.spec_of ~sigma_frac:frac ~gamma_frac:frac ds case in
      m :=
        Crcore.Metrics.add !m
          (Crcore.Metrics.evaluate_total ~truth:case.truth ~entity:case.entity
             (Crcore.Pick.run ~seed:case.id spec)))
    ds.Datagen.Types.cases;
  Crcore.Metrics.f_measure !m

let accuracy_sweep title ds ~vary ~rounds ~with_pick =
  section title;
  Printf.printf "  %-6s" "frac";
  List.iter (fun k -> Printf.printf "%14s" (Printf.sprintf "%d-interaction" k)) rounds;
  if with_pick then Printf.printf "%14s" "Pick";
  print_newline ();
  List.iter
    (fun frac ->
      Printf.printf "  %-6.1f" frac;
      List.iter
        (fun k -> Printf.printf "%14.3f" (f_measure_at ds ~vary ~frac ~max_rounds:k))
        rounds;
      if with_pick then Printf.printf "%14.3f" (pick_f ds ~frac);
      print_newline ();
      flush stdout)
    fractions

let fig8f () =
  accuracy_sweep "Fig 8(f): NBA, F-measure vs |Σ|+|Γ|" (Lazy.force nba_acc) ~vary:Both
    ~rounds:[ 0; 1; 2 ] ~with_pick:true

let fig8g () =
  accuracy_sweep "Fig 8(g): NBA, F-measure vs |Σ| (Γ = ∅)" (Lazy.force nba_acc) ~vary:Sigma_only
    ~rounds:[ 0; 1; 2 ] ~with_pick:false

let fig8h () =
  accuracy_sweep "Fig 8(h): NBA, F-measure vs |Γ| (Σ = ∅)" (Lazy.force nba_acc) ~vary:Gamma_only
    ~rounds:[ 0; 1; 2 ] ~with_pick:false

let fig8j () =
  accuracy_sweep "Fig 8(j): CAREER, F-measure vs |Σ|+|Γ|" (Lazy.force career_acc) ~vary:Both
    ~rounds:[ 0; 1; 2 ] ~with_pick:true

let fig8k () =
  accuracy_sweep "Fig 8(k): CAREER, F-measure vs |Σ| (Γ = ∅)" (Lazy.force career_acc)
    ~vary:Sigma_only ~rounds:[ 0; 1 ] ~with_pick:false

let fig8l () =
  accuracy_sweep "Fig 8(l): CAREER, F-measure vs |Γ| (Σ = ∅)" (Lazy.force career_acc)
    ~vary:Gamma_only ~rounds:[ 0; 1; 2 ] ~with_pick:false

let fig8n () =
  accuracy_sweep "Fig 8(n): Person, F-measure vs |Σ|+|Γ|" (Lazy.force person_acc) ~vary:Both
    ~rounds:[ 0; 1; 2; 3 ] ~with_pick:true

let fig8o () =
  accuracy_sweep "Fig 8(o): Person, F-measure vs |Σ| (Γ = ∅)" (Lazy.force person_acc)
    ~vary:Sigma_only ~rounds:[ 0; 1; 2; 3 ] ~with_pick:false

let fig8p () =
  accuracy_sweep "Fig 8(p): Person, F-measure vs |Γ| (Σ = ∅)" (Lazy.force person_acc)
    ~vary:Gamma_only ~rounds:[ 0; 1; 2 ] ~with_pick:false

(* ---------------------------------------------------------------- *)
(* Summary: the paper's headline claims                             *)
(* ---------------------------------------------------------------- *)

let summary () =
  section "Summary: headline comparisons (oracle user, averaged as in the paper)";
  let datasets =
    [ ("NBA", Lazy.force nba_acc); ("CAREER", Lazy.force career_acc); ("Person", Lazy.force person_acc) ]
  in
  (* the paper's +201% compares the method's Fig. 8(f,j,n) curves against
     Pick across the whole sweep; we average the top interaction curve
     against Pick over the same fractions *)
  let ratios = ref [] in
  List.iter
    (fun (name, ds) ->
      let f_both = f_measure_at ds ~vary:Both ~frac:1.0 ~max_rounds:3 in
      let f_sigma = f_measure_at ds ~vary:Sigma_only ~frac:1.0 ~max_rounds:3 in
      let f_gamma = f_measure_at ds ~vary:Gamma_only ~frac:1.0 ~max_rounds:3 in
      let f_pick = pick_f ds ~frac:1.0 in
      List.iter
        (fun frac ->
          let ours = f_measure_at ds ~vary:Both ~frac ~max_rounds:3 in
          let pick = pick_f ds ~frac in
          if pick > 0.01 then ratios := (ours /. pick) :: !ratios)
        fractions;
      Printf.printf
        "  %-8s F(Σ+Γ) = %.3f   F(Σ only) = %.3f   F(Γ only) = %.3f   F(Pick) = %.3f\n%!" name
        f_both f_sigma f_gamma f_pick)
    datasets;
  let avg_ratio = mean !ratios in
  Printf.printf
    "\n  average improvement of Σ+Γ over Pick across the sweeps: +%.0f%% (paper: +201%%)\n%!"
    (100. *. (avg_ratio -. 1.))

(* ---------------------------------------------------------------- *)
(* Ablations                                                        *)
(* ---------------------------------------------------------------- *)

let ablation_encoding () =
  section "Ablation A1: paper encoding vs exact (totality) encoding";
  Printf.printf "  %-14s %12s %12s %12s %12s %8s\n" "Person bucket" "clauses(P)" "clauses(E)"
    "IsValid(P)" "IsValid(E)" "agree";
  List.iter
    (fun (size, label) ->
      let ds = person_sized size in
      let cp = ref [] and ce = ref [] and tp = ref [] and te = ref [] in
      let agree = ref true in
      List.iter
        (fun (case : Datagen.Types.case) ->
          let spec = Datagen.Types.spec_of ds case in
          let msp, (vp, np) =
            time_ms (fun () ->
                let e = Crcore.Encode.encode ~mode:Crcore.Encode.Paper spec in
                (Crcore.Validity.check e, Sat.Cnf.nclauses e.Crcore.Encode.cnf))
          in
          let mse, (ve, ne) =
            time_ms (fun () ->
                let e = Crcore.Encode.encode ~mode:Crcore.Encode.Exact spec in
                (Crcore.Validity.check e, Sat.Cnf.nclauses e.Crcore.Encode.cnf))
          in
          if vp <> ve then agree := false;
          cp := float_of_int np :: !cp;
          ce := float_of_int ne :: !ce;
          tp := msp :: !tp;
          te := mse :: !te)
        ds.Datagen.Types.cases;
      Printf.printf "  %-14s %12.0f %12.0f %9.1f ms %9.1f ms %8b\n%!" label (mean !cp) (mean !ce)
        (mean !tp) (mean !te) !agree;
      claim (Printf.sprintf "ablation_encoding: IsValid paper == exact (%s)" label) !agree)
    person_buckets

let ablation_clique () =
  section "Ablation A2: exact max-clique vs greedy inside Suggest";
  Printf.printf "  %-14s %16s %16s %12s %12s\n" "NBA bucket" "|clique| exact" "|clique| greedy"
    "t exact" "t greedy";
  List.iter
    (fun (size, label) ->
      let ds = nba_sized size in
      let se = ref [] and sg = ref [] and t_ex = ref [] and t_gr = ref [] in
      List.iter
        (fun (case : Datagen.Types.case) ->
          let spec = Datagen.Types.spec_of ds case in
          let enc = Crcore.Encode.encode spec in
          if Crcore.Validity.check enc then begin
            let d = Crcore.Deduce.deduce_order enc in
            let known = Crcore.Deduce.true_values d in
            let rules = Crcore.Rules.derive_rules d ~known in
            let g = Crcore.Rules.compatibility_graph rules in
            let ms_e, r_exact = time_ms (fun () -> Clique.Maxclique.exact g) in
            let ms_g, c_greedy = time_ms (fun () -> Clique.Maxclique.greedy g) in
            se := float_of_int (List.length r_exact.Clique.Maxclique.clique) :: !se;
            sg := float_of_int (List.length c_greedy) :: !sg;
            t_ex := ms_e :: !t_ex;
            t_gr := ms_g :: !t_gr
          end)
        ds.Datagen.Types.cases;
      Printf.printf "  %-14s %16.1f %16.1f %9.2f ms %9.2f ms\n%!" label (mean !se) (mean !sg)
        (mean !t_ex) (mean !t_gr))
    nba_buckets

let ablation_maxsat () =
  section "Ablation A3: exact MaxSAT vs WalkSAT for suggestion repair";
  Printf.printf "  %-14s %10s %10s %14s %14s\n" "NBA bucket" "t exact" "t walksat" "kept exact"
    "kept walksat";
  List.iter
    (fun (size, label) ->
      let ds = nba_sized size in
      let te = ref [] and tw = ref [] and ke = ref [] and kw = ref [] in
      List.iter
        (fun (case : Datagen.Types.case) ->
          let spec = Datagen.Types.spec_of ds case in
          let enc = Crcore.Encode.encode spec in
          if Crcore.Validity.check enc then begin
            let d = Crcore.Deduce.deduce_order enc in
            let known = Crcore.Deduce.true_values d in
            let ms_e, s_e =
              time_ms (fun () -> Crcore.Rules.suggest ~repair:Crcore.Rules.Exact_maxsat d ~known)
            in
            let ms_w, s_w =
              time_ms (fun () -> Crcore.Rules.suggest ~repair:Crcore.Rules.Walksat d ~known)
            in
            te := ms_e :: !te;
            tw := ms_w :: !tw;
            ke := float_of_int s_e.Crcore.Rules.repaired_clique_size :: !ke;
            kw := float_of_int s_w.Crcore.Rules.repaired_clique_size :: !kw
          end)
        ds.Datagen.Types.cases;
      Printf.printf "  %-14s %7.1f ms %7.1f ms %14.1f %14.1f\n%!" label (mean !te) (mean !tw)
        (mean !ke) (mean !kw))
    nba_buckets

(* ---------------------------------------------------------------- *)
(* Batch: incremental engine vs naive per-entity loop               *)
(* ---------------------------------------------------------------- *)

let wall_ms f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  ((Unix.gettimeofday () -. t0) *. 1000., r)

(* unwrap an item outcome in scenarios that inject no faults *)
let ir_result (r : Crcore.Engine.item_result) =
  match r.Crcore.Engine.outcome with
  | Ok res -> res
  | Error e ->
      failwith
        (Printf.sprintf "bench: unexpected entity error [%s]: %s" r.Crcore.Engine.label
           e.Crcore.Engine.exn)

(* [Datagen.Types.spec_of] rebuilds the Σ/Γ lists per case, so batch items
   carry structurally equal but physically distinct lists. Share them
   physically — both resolution paths receive the same items, and the
   encoder's compiled-constraint reuse keys on physical identity. *)
let intern_items items =
  match items with
  | [] -> []
  | (first : Crcore.Engine.item) :: _ ->
      let cs = first.Crcore.Engine.spec.Crcore.Spec.sigma in
      let cg = first.Crcore.Engine.spec.Crcore.Spec.gamma in
      List.map
        (fun (it : Crcore.Engine.item) ->
          let s = it.Crcore.Engine.spec in
          let sigma = if s.Crcore.Spec.sigma = cs then cs else s.Crcore.Spec.sigma in
          let gamma = if s.Crcore.Spec.gamma = cg then cg else s.Crcore.Spec.gamma in
          { it with Crcore.Engine.spec = { s with Crcore.Spec.sigma; gamma } })
        items

(* Resolve a generated Person relation entity-by-entity twice: once as a
   plain Framework.resolve loop (one encoding + fresh solvers per phase
   per round), once through Engine.run_batch with incremental solver
   sessions and the encoding cache. A stingy oracle (one answer per
   round) forces multi-round interactions, the workload the incremental
   Se ⊕ Ot path exists for. Emits machine-readable results to [json]. *)
let batch_sized ~n_entities ~json () =
  section
    (Printf.sprintf "Batch: %d Person entities, incremental engine vs naive loop" n_entities);
  let ds =
    Datagen.Person.generate
      {
        Datagen.Person.default_params with
        n_entities;
        size_min = 4;
        size_max = 10;
        extra_events = 2;
      }
  in
  let items =
    List.map
      (fun (case : Datagen.Types.case) ->
        {
          Crcore.Engine.label = string_of_int case.Datagen.Types.id;
          spec = Datagen.Types.spec_of ds case;
          user = Crcore.Framework.oracle ~max_answers:1 case.Datagen.Types.truth;
        })
      ds.Datagen.Types.cases
  in
  let items = intern_items items in
  (* Warm-up: run both sides once untimed. The first pass through either
     path pays one-time process costs — heap expansion, page faults — that
     land on whichever side runs first and on whatever phase allocates
     most; warming both and compacting before each timed run measures the
     steady state the comparison is actually about. run_batch creates a
     fresh spec-keyed cache per call, so no per-spec encoding survives
     into the timed run; the shape-template layer is process-global by
     design, so the timed run serves from compiled templates — exactly
     the steady state a long-lived resolver sits in. *)
  List.iter
    (fun (it : Crcore.Engine.item) ->
      ignore (Crcore.Framework.resolve ~user:it.Crcore.Engine.user it.Crcore.Engine.spec))
    items;
  ignore
    (Crcore.Engine.run_batch ~config:{ Crcore.Engine.default_config with lint = false } items);
  Gc.compact ();
  let naive_ms, naive_outcomes =
    wall_ms (fun () ->
        List.map
          (fun (it : Crcore.Engine.item) ->
            Crcore.Framework.resolve ~user:it.Crcore.Engine.user it.Crcore.Engine.spec)
          items)
  in
  (* lint off on both sides: this scenario isolates incremental sessions +
     the encoding cache against the naive loop (which never lints); the
     lint pre-phase has its own off-vs-on scenario below *)
  Gc.compact ();
  let engine_ms, (results, stats) =
    wall_ms (fun () ->
        Crcore.Engine.run_batch ~config:{ Crcore.Engine.default_config with lint = false } items)
  in
  let equivalent =
    List.for_all2
      (fun (o : Crcore.Framework.outcome) (r : Crcore.Engine.item_result) ->
        let res = ir_result r in
        o.Crcore.Framework.resolved = res.Crcore.Engine.resolved
        && o.Crcore.Framework.valid = res.Crcore.Engine.valid
        && o.Crcore.Framework.rounds = res.Crcore.Engine.rounds)
      naive_outcomes results
  in
  let per_sec ms = if ms <= 0. then 0. else 1000. *. float_of_int n_entities /. ms in
  let speedup = if engine_ms <= 0. then 0. else naive_ms /. engine_ms in
  Printf.printf "  naive Framework.resolve loop: %8.1f ms  (%7.1f entities/s)\n" naive_ms
    (per_sec naive_ms);
  Printf.printf "  Engine.run_batch:             %8.1f ms  (%7.1f entities/s)\n" engine_ms
    (per_sec engine_ms);
  Printf.printf "  speedup: %.2fx   identical results: %b\n" speedup equivalent;
  claim "batch: engine == naive Framework loop" equivalent;
  Format.printf "  %a@." Crcore.Engine.pp_stats stats;
  (* Template ratchet: the batch is n distinct entities of one shape
     (same schema, same interned Σ/Γ), so every initial encoding after
     the first must instantiate the shared compiled template — the
     fingerprint layer scores (n-1)/n even though the spec-keyed layer
     scores 0. Enforced on full-size runs; smoke batches are too small
     for a meaningful ratio. *)
  Printf.printf
    "  templates: %d hit(s) / %d miss(es), hit_ratio %.3f, %d instantiation(s)\n"
    stats.Crcore.Engine.template_hits stats.Crcore.Engine.template_misses
    stats.Crcore.Engine.template_hit_ratio stats.Crcore.Engine.instantiations;
  Printf.printf "  encode alloc: %.0f minor words (%.0f words/entity)\n"
    stats.Crcore.Engine.encode_alloc_words
    (stats.Crcore.Engine.encode_alloc_words /. float_of_int n_entities);
  if n_entities >= 100 then
    claim "batch: template_hit_ratio >= 0.9 on distinct same-shape entities"
      (stats.Crcore.Engine.template_hit_ratio >= 0.9);
  (* Repeated-specs cache case: the second copy of every item resolves a
     structurally identical spec, so its initial encoding must come from
     the spec-keyed cache rather than a fresh Encode.encode. *)
  let rep_items =
    items
    @ List.map
        (fun (it : Crcore.Engine.item) ->
          { it with Crcore.Engine.label = it.Crcore.Engine.label ^ "-rep" })
        items
  in
  let rep_results, rep_stats =
    Crcore.Engine.run_batch
      ~config:{ Crcore.Engine.default_config with lint = false }
      rep_items
  in
  let rep_equivalent =
    let firsts = List.filteri (fun i _ -> i < n_entities) rep_results in
    let seconds = List.filteri (fun i _ -> i >= n_entities) rep_results in
    List.for_all2
      (fun (a : Crcore.Engine.item_result) (b : Crcore.Engine.item_result) ->
        ir_result a = ir_result b)
      firsts seconds
  in
  Printf.printf
    "  cache (specs repeated twice, %d items): %d hit(s), hit_ratio %.3f, repeats identical: %b\n"
    (2 * n_entities) rep_stats.Crcore.Engine.cache_hits rep_stats.Crcore.Engine.hit_ratio
    rep_equivalent;
  claim "batch: repeated specs resolve identically through the cache" rep_equivalent;
  (match json with
  | None -> ()
  | Some path ->
      let st = stats in
      let sv = st.Crcore.Engine.solver in
      let oc = open_out path in
      Printf.fprintf oc
        {|{
  "scenario": "batch",
  "dataset": "Person",
  "n_entities": %d,
  "cores_available": %d,
  "total_rounds": %d,
  "attrs_resolved": %d,
  "attrs_total": %d,
  "naive": { "wall_ms": %.3f, "entities_per_sec": %.1f },
  "engine": {
    "wall_ms": %.3f,
    "entities_per_sec": %.1f,
    "phase_ms": { "lint": %.3f, "encode": %.3f, "validity": %.3f, "deduce": %.3f, "suggest": %.3f },
    "solver": { "conflicts": %d, "decisions": %d, "propagations": %d, "restarts": %d },
    "solvers_built": %d,
    "cache_hits": %d,
    "cache_misses": %d,
    "hit_ratio": %.3f,
    "template_hits": %d,
    "template_misses": %d,
    "template_hit_ratio": %.3f,
    "instantiations": %d,
    "encode_alloc_words": %.0f,
    "delta_extensions": %d,
    "rebuilds": %d,
    "rebuilds_renumbered": %d,
    "rebuilds_impure": %d
  },
  "cache_case": {
    "items": %d,
    "cache_hits": %d,
    "cache_misses": %d,
    "hit_ratio": %.3f,
    "repeats_identical": %b
  },
  "speedup": %.3f,
  "identical_results": %b
}
|}
        n_entities
        (Parallel.Pool.recommended_jobs ())
        st.Crcore.Engine.total_rounds st.Crcore.Engine.attrs_resolved
        st.Crcore.Engine.attrs_total naive_ms (per_sec naive_ms) engine_ms (per_sec engine_ms)
        st.Crcore.Engine.times.Crcore.Engine.lint_ms
        st.Crcore.Engine.times.Crcore.Engine.encode_ms
        st.Crcore.Engine.times.Crcore.Engine.validity_ms
        st.Crcore.Engine.times.Crcore.Engine.deduce_ms
        st.Crcore.Engine.times.Crcore.Engine.suggest_ms sv.Sat.Solver.conflicts
        sv.Sat.Solver.decisions sv.Sat.Solver.propagations sv.Sat.Solver.restarts
        st.Crcore.Engine.solvers_built st.Crcore.Engine.cache_hits
        st.Crcore.Engine.cache_misses st.Crcore.Engine.hit_ratio
        st.Crcore.Engine.template_hits st.Crcore.Engine.template_misses
        st.Crcore.Engine.template_hit_ratio st.Crcore.Engine.instantiations
        st.Crcore.Engine.encode_alloc_words st.Crcore.Engine.delta_extensions
        st.Crcore.Engine.rebuilds
        st.Crcore.Engine.rebuilds_renumbered st.Crcore.Engine.rebuilds_impure
        (2 * n_entities) rep_stats.Crcore.Engine.cache_hits
        rep_stats.Crcore.Engine.cache_misses rep_stats.Crcore.Engine.hit_ratio rep_equivalent
        speedup equivalent;
      close_out oc;
      Printf.printf "  wrote %s\n%!" path)

let batch () = batch_sized ~n_entities:120 ~json:(Some "BENCH_batch.json") ()

(* the same head-to-head at scale: 2000 distinct Person entities — the
   regime where template sharing and per-entity allocation dominate *)
let batch2k () = batch_sized ~n_entities:2000 ~json:(Some "BENCH_batch2k.json") ()
let batch_smoke () = batch_sized ~n_entities:12 ~json:None ()

(* ---------------------------------------------------------------- *)
(* Parallel: domain-parallel run_batch vs sequential                 *)
(* ---------------------------------------------------------------- *)

let par_jobs_default () =
  match Sys.getenv_opt "CRSOLVE_JOBS" with
  | Some s -> ( match int_of_string_opt s with Some j when j > 0 -> j | _ -> 4)
  | None -> 4

(* The same Person workload as [batch], resolved twice through
   Engine.run_batch: jobs = 1, then jobs = N domains. The parallel run
   must produce byte-identical results in input order. Per-phase times
   under parallelism are summed across workers, so they can legitimately
   exceed wall-clock; the JSON reports both, plus the cores the runtime
   actually has — on a single-core host the speedup honestly reflects
   that there is no parallel hardware to use. Emits BENCH_par.json. *)
let par_sized ~n_entities ~jobs ~json () =
  section
    (Printf.sprintf "Parallel: %d Person entities, run_batch jobs=1 vs jobs=%d" n_entities jobs);
  let ds =
    Datagen.Person.generate
      {
        Datagen.Person.default_params with
        n_entities;
        size_min = 4;
        size_max = 10;
        extra_events = 2;
      }
  in
  let items =
    intern_items
      (List.map
         (fun (case : Datagen.Types.case) ->
           {
             Crcore.Engine.label = string_of_int case.Datagen.Types.id;
             spec = Datagen.Types.spec_of ds case;
             user = Crcore.Framework.oracle ~max_answers:1 case.Datagen.Types.truth;
           })
         ds.Datagen.Types.cases)
  in
  let no_lint = { Crcore.Engine.default_config with lint = false } in
  let best_of_3 f =
    let runs = List.init 3 (fun _ -> wall_ms f) in
    List.fold_left (fun acc r -> if fst r < fst acc then r else acc) (List.hd runs)
      (List.tl runs)
  in
  let seq_ms, (seq_results, seq_stats) =
    best_of_3 (fun () -> Crcore.Engine.run_batch ~config:no_lint items)
  in
  (* scaling curve: the requested width plus the standard 1/2/4/8 points;
     clamp off so a narrow host honestly shows the over-subscription
     penalty rather than silently shrinking the width *)
  let widths = List.sort_uniq compare (jobs :: [ 1; 2; 4; 8 ]) in
  let curve =
    List.map
      (fun j ->
        let ms, (results, stats) =
          best_of_3 (fun () ->
              Crcore.Engine.run_batch
                ~config:{ no_lint with Crcore.Engine.jobs = j; clamp_jobs = false }
                items)
        in
        let identical =
          List.for_all2
            (fun (a : Crcore.Engine.item_result) (b : Crcore.Engine.item_result) ->
              a.Crcore.Engine.label = b.Crcore.Engine.label
              && a.Crcore.Engine.outcome = b.Crcore.Engine.outcome)
            seq_results results
        in
        (j, ms, stats, identical))
      widths
  in
  let cores = Parallel.Pool.recommended_jobs () in
  (* Headline: the engine as configured in production, i.e. with the
     default clamp in force — requesting jobs=4 on a narrower host runs
     min(jobs, cores) domains. "No parallel self-sabotage" is a property
     of the engine's actual scheduling decision, so the ratchets below
     apply to this run; the forced-width curve above records what
     over-subscription would have cost. *)
  let jobs_effective = min jobs cores in
  let par_ms, (par_results, par_stats) =
    best_of_3 (fun () ->
        Crcore.Engine.run_batch ~config:{ no_lint with Crcore.Engine.jobs } items)
  in
  let headline_identical =
    List.for_all2
      (fun (a : Crcore.Engine.item_result) (b : Crcore.Engine.item_result) ->
        a.Crcore.Engine.label = b.Crcore.Engine.label
        && a.Crcore.Engine.outcome = b.Crcore.Engine.outcome)
      seq_results par_results
  in
  let identical = headline_identical && List.for_all (fun (_, _, _, i) -> i) curve in
  let speedup_of ms = if ms <= 0. then 0. else seq_ms /. ms in
  let speedup = speedup_of par_ms in
  let encode_sum (st : Crcore.Engine.stats) = st.Crcore.Engine.times.Crcore.Engine.encode_ms in
  Printf.printf "  sequential (jobs=1):  %8.1f ms   (%d core(s) available)\n" seq_ms cores;
  List.iter
    (fun (j, ms, st, _) ->
      Printf.printf
        "  jobs=%d: %8.1f ms  speedup %.2fx  encode sum %7.1f ms  encode alloc %.0f words\n" j
        ms (speedup_of ms) (encode_sum st) st.Crcore.Engine.encode_alloc_words)
    curve;
  Printf.printf
    "  headline (jobs=%d requested, %d effective): %8.1f ms  speedup %.2fx   identical results \
     (all widths): %b\n"
    jobs jobs_effective par_ms speedup identical;
  claim "par: parallel results == sequential results" identical;
  Format.printf "  %a@." Crcore.Engine.pp_stats par_stats;
  (* Parallel-overhead ratchets (full-size runs only), on the headline
     (clamped) run: per-domain scratch arenas and the pool's enlarged
     minor heap must keep the summed encode phase at the effective width
     within 1.5x the sequential sum, and the wall clock no worse than
     ~sequential even on a single-core host — on 1 core the clamp makes
     jobs=4 run one domain, so anything below ~1.0x would mean the
     parallel plumbing itself taxes the sequential path. *)
  if n_entities >= 100 then begin
    claim
      (Printf.sprintf "par: jobs=%d summed encode phase <= 1.5x sequential" jobs)
      (encode_sum par_stats <= (1.5 *. encode_sum seq_stats) +. 1e-9);
    claim (Printf.sprintf "par: jobs=%d speedup >= 0.9x" jobs) (speedup >= 0.9)
  end;
  match json with
  | None -> ()
  | Some path ->
      let pt (st : Crcore.Engine.stats) = st.Crcore.Engine.times in
      let scaling_json =
        String.concat ",\n"
          (List.map
             (fun (j, ms, st, ident) ->
               Printf.sprintf
                 "    { \"jobs\": %d, \"wall_ms\": %.3f, \"speedup\": %.3f, \
                  \"encode_ms_sum\": %.3f, \"encode_alloc_words\": %.0f, \
                  \"identical_results\": %b }"
                 j ms (speedup_of ms) (encode_sum st) st.Crcore.Engine.encode_alloc_words
                 ident)
             curve)
      in
      let oc = open_out path in
      Printf.fprintf oc
        {|{
  "scenario": "par",
  "dataset": "Person",
  "n_entities": %d,
  "jobs": %d,
  "jobs_effective": %d,
  "cores_available": %d,
  "sequential": {
    "wall_ms": %.3f,
    "phase_ms_sum": { "lint": %.3f, "encode": %.3f, "validity": %.3f, "deduce": %.3f, "suggest": %.3f },
    "encode_alloc_words": %.0f
  },
  "parallel": {
    "wall_ms": %.3f,
    "phase_ms_sum": { "lint": %.3f, "encode": %.3f, "validity": %.3f, "deduce": %.3f, "suggest": %.3f },
    "encode_alloc_words": %.0f,
    "hit_ratio": %.3f,
    "template_hit_ratio": %.3f,
    "rebuilds_renumbered": %d,
    "rebuilds_impure": %d
  },
  "scaling": [
%s
  ],
  "speedup": %.3f,
  "identical_results": %b
}
|}
        n_entities jobs jobs_effective cores seq_ms (pt seq_stats).Crcore.Engine.lint_ms
        (pt seq_stats).Crcore.Engine.encode_ms (pt seq_stats).Crcore.Engine.validity_ms
        (pt seq_stats).Crcore.Engine.deduce_ms (pt seq_stats).Crcore.Engine.suggest_ms
        seq_stats.Crcore.Engine.encode_alloc_words par_ms
        (pt par_stats).Crcore.Engine.lint_ms (pt par_stats).Crcore.Engine.encode_ms
        (pt par_stats).Crcore.Engine.validity_ms (pt par_stats).Crcore.Engine.deduce_ms
        (pt par_stats).Crcore.Engine.suggest_ms par_stats.Crcore.Engine.encode_alloc_words
        par_stats.Crcore.Engine.hit_ratio par_stats.Crcore.Engine.template_hit_ratio
        par_stats.Crcore.Engine.rebuilds_renumbered par_stats.Crcore.Engine.rebuilds_impure
        scaling_json speedup identical;
      close_out oc;
      Printf.printf "  wrote %s\n%!" path

let par () = par_sized ~n_entities:120 ~jobs:(par_jobs_default ()) ~json:(Some "BENCH_par.json") ()

let par_smoke () =
  par_sized ~n_entities:12 ~jobs:(par_jobs_default ()) ~json:(Some "BENCH_par_smoke.json") ()

(* ---------------------------------------------------------------- *)
(* Deduce: backbone vs naive vs unit propagation                     *)
(* ---------------------------------------------------------------- *)

(* Complete deduction head-to-head on the batch workload. Per entity
   (fresh encoding, no shared session — the standalone cost): wall time,
   SAT calls and facts for unit propagation (deduce_order), NaiveDeduce
   and backbone; backbone and naive must deduce identical orders, which
   this scenario enforces (CI runs it on the smoke batch). Then the
   engine-level effect: run_batch with config.deduce = backbone (the
   default) against deduce_order — complete deduction resolves more
   attributes per round, so fewer Se ⊕ Ot extensions, fewer
   Null-enters-universe renumberings, and fewer solvers built.
   Emits BENCH_deduce.json. *)
let deduce_sized ~n_entities ~json () =
  section
    (Printf.sprintf "Deduce: %d Person entities, backbone vs naive vs unit propagation"
       n_entities);
  let ds =
    Datagen.Person.generate
      {
        Datagen.Person.default_params with
        n_entities;
        size_min = 4;
        size_max = 10;
        extra_events = 2;
      }
  in
  let specs = List.map (Datagen.Types.spec_of ds) ds.Datagen.Types.cases in
  let sorted_pairs (d : Crcore.Deduce.t) =
    Array.map
      (fun o -> List.sort compare (Porder.Strict_order.pairs o))
      d.Crcore.Deduce.od
  in
  let u_ms = ref 0. and n_ms = ref 0. and b_ms = ref 0. in
  let u_facts = ref 0 and n_facts = ref 0 and b_facts = ref 0 in
  let n_calls = ref 0 and b_calls = ref 0 in
  let b_probes = ref 0 and b_prunes = ref 0 and b_seeded = ref 0 in
  let nvars_total = ref 0 in
  let identical = ref true in
  List.iter
    (fun spec ->
      let enc = Crcore.Encode.encode spec in
      nvars_total := !nvars_total + enc.Crcore.Encode.cnf.Sat.Cnf.nvars;
      let ms, u = wall_ms (fun () -> Crcore.Deduce.deduce_order enc) in
      u_ms := !u_ms +. ms;
      u_facts := !u_facts + Crcore.Deduce.n_facts u;
      let ms, n = wall_ms (fun () -> Crcore.Deduce.naive_deduce enc) in
      n_ms := !n_ms +. ms;
      n_facts := !n_facts + Crcore.Deduce.n_facts n;
      n_calls := !n_calls + n.Crcore.Deduce.stats.Crcore.Deduce.sat_calls;
      let ms, b = wall_ms (fun () -> Crcore.Deduce.backbone enc) in
      b_ms := !b_ms +. ms;
      b_facts := !b_facts + Crcore.Deduce.n_facts b;
      let st = b.Crcore.Deduce.stats in
      b_calls := !b_calls + st.Crcore.Deduce.sat_calls;
      b_probes := !b_probes + st.Crcore.Deduce.probes;
      b_prunes := !b_prunes + st.Crcore.Deduce.model_prunes;
      b_seeded := !b_seeded + st.Crcore.Deduce.seeded;
      if sorted_pairs b <> sorted_pairs n then identical := false)
    specs;
  let ratio = if !b_calls = 0 then 0. else float_of_int !n_calls /. float_of_int !b_calls in
  Printf.printf "  unit propagation: %8.1f ms                     %6d facts\n" !u_ms !u_facts;
  Printf.printf "  naive_deduce:     %8.1f ms  %7d SAT calls  %6d facts\n" !n_ms !n_calls
    !n_facts;
  Printf.printf "  backbone:         %8.1f ms  %7d SAT calls  %6d facts\n" !b_ms !b_calls
    !b_facts;
  Printf.printf
    "  backbone detail: %d probe(s), %d model-prune(s), %d seeded over %d var(s)\n"
    !b_probes !b_prunes !b_seeded !nvars_total;
  Printf.printf "  SAT-call ratio naive/backbone: %.1fx   identical orders: %b\n" ratio
    !identical;
  claim "deduce: backbone orders == naive_deduce orders" !identical;
  (* engine effect: complete deduction cuts interaction rounds *)
  let items =
    intern_items
      (List.map
         (fun (case : Datagen.Types.case) ->
           {
             Crcore.Engine.label = string_of_int case.Datagen.Types.id;
             spec = Datagen.Types.spec_of ds case;
             user = Crcore.Framework.oracle ~max_answers:1 case.Datagen.Types.truth;
           })
         ds.Datagen.Types.cases)
  in
  let run_with deduce =
    wall_ms (fun () ->
        Crcore.Engine.run_batch
          ~config:{ Crcore.Engine.default_config with lint = false; deduce }
          items)
  in
  let up_ms, (up_results, up_stats) = run_with Crcore.Deduce.deduce_order in
  let bb_ms, (bb_results, bb_stats) = run_with Crcore.Deduce.backbone in
  let same_resolved =
    List.for_all2
      (fun (a : Crcore.Engine.item_result) (b : Crcore.Engine.item_result) ->
        (ir_result a).Crcore.Engine.resolved = (ir_result b).Crcore.Engine.resolved)
      up_results bb_results
  in
  let line name ms (st : Crcore.Engine.stats) =
    Printf.printf
      "  engine (%-12s): %8.1f ms, %d round(s), %d solver(s) built (%d renumbered, %d delta), %d reused phase(s)\n"
      name ms st.Crcore.Engine.total_rounds st.Crcore.Engine.solvers_built
      st.Crcore.Engine.rebuilds_renumbered st.Crcore.Engine.delta_extensions
      st.Crcore.Engine.solvers_reused
  in
  line "deduce_order" up_ms up_stats;
  line "backbone" bb_ms bb_stats;
  Printf.printf "  same final resolutions: %b\n%!" same_resolved;
  claim "deduce: engine resolutions backbone == deduce_order" same_resolved;
  (match json with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Printf.fprintf oc
        {|{
  "scenario": "deduce",
  "dataset": "Person",
  "n_entities": %d,
  "cores_available": %d,
  "nvars_total": %d,
  "unit_prop": { "wall_ms": %.3f, "sat_calls": 0, "facts": %d },
  "naive": { "wall_ms": %.3f, "sat_calls": %d, "facts": %d },
  "backbone": {
    "wall_ms": %.3f,
    "sat_calls": %d,
    "probes": %d,
    "model_prunes": %d,
    "seeded": %d,
    "facts": %d
  },
  "sat_call_ratio_naive_over_backbone": %.3f,
  "identical_orders": %b,
  "engine": {
    "deduce_order": { "wall_ms": %.3f, "total_rounds": %d, "solvers_built": %d, "rebuilds_renumbered": %d, "delta_extensions": %d, "solvers_reused": %d, "deduce_sat_calls": %d },
    "backbone":     { "wall_ms": %.3f, "total_rounds": %d, "solvers_built": %d, "rebuilds_renumbered": %d, "delta_extensions": %d, "solvers_reused": %d, "deduce_sat_calls": %d },
    "same_final_resolutions": %b
  }
}
|}
        n_entities
        (Parallel.Pool.recommended_jobs ())
        !nvars_total !u_ms !u_facts !n_ms !n_calls !n_facts !b_ms !b_calls
        !b_probes !b_prunes !b_seeded !b_facts ratio !identical up_ms
        up_stats.Crcore.Engine.total_rounds up_stats.Crcore.Engine.solvers_built
        up_stats.Crcore.Engine.rebuilds_renumbered up_stats.Crcore.Engine.delta_extensions
        up_stats.Crcore.Engine.solvers_reused up_stats.Crcore.Engine.deduce_sat_calls bb_ms
        bb_stats.Crcore.Engine.total_rounds bb_stats.Crcore.Engine.solvers_built
        bb_stats.Crcore.Engine.rebuilds_renumbered bb_stats.Crcore.Engine.delta_extensions
        bb_stats.Crcore.Engine.solvers_reused bb_stats.Crcore.Engine.deduce_sat_calls
        same_resolved;
      close_out oc;
      Printf.printf "  wrote %s\n%!" path)

let deduce () = deduce_sized ~n_entities:120 ~json:(Some "BENCH_deduce.json") ()
let deduce_smoke () = deduce_sized ~n_entities:12 ~json:(Some "BENCH_deduce.json") ()

(* ---------------------------------------------------------------- *)
(* Saturate pre-phase: static closure replacing deduction probes     *)
(* ---------------------------------------------------------------- *)

(* The engine with the static saturation pre-phase on vs off: identical
   resolutions (the closure facts are level-0 implied by Φ), but with the
   pre-phase on the complete Paper-mode closure is handed to the backbone
   deducer as pre-confirmed facts, so deduction skips its unit-propagation
   pass and those probes. Also times raw saturation per encoding against
   the backbone it provably under-approximates. Emits BENCH_saturate.json. *)
let saturate_sized ~n_entities ~json () =
  section
    (Printf.sprintf "Saturate: %d Person entities, static pre-phase on vs off" n_entities);
  let ds =
    Datagen.Person.generate
      {
        Datagen.Person.default_params with
        n_entities;
        size_min = 4;
        size_max = 10;
        extra_events = 2;
      }
  in
  let items =
    intern_items
      (List.map
         (fun (case : Datagen.Types.case) ->
           {
             Crcore.Engine.label = string_of_int case.Datagen.Types.id;
             spec = Datagen.Types.spec_of ds case;
             user = Crcore.Framework.oracle ~max_answers:1 case.Datagen.Types.truth;
           })
         ds.Datagen.Types.cases)
  in
  (* interned Σ/Γ: the plan memo keys on physical template identity, as a
     batch would present it *)
  let specs = List.map (fun (it : Crcore.Engine.item) -> it.Crcore.Engine.spec) items in
  (* raw phase cost: saturation closure vs the SAT backbone per encoding *)
  let sat_ms = ref 0. and bb_ms = ref 0. in
  let closure_facts = ref 0 and backbone_facts = ref 0 in
  let complete_closures = ref 0 in
  let tmpl_h0, tmpl_m0 = Crcore.Saturate.template_stats () in
  List.iter
    (fun spec ->
      let enc = Crcore.Encode.encode spec in
      let ms, cl = wall_ms (fun () -> Crcore.Saturate.of_encode enc) in
      sat_ms := !sat_ms +. ms;
      closure_facts := !closure_facts + Crcore.Saturate.n_facts cl;
      if Crcore.Saturate.complete cl then incr complete_closures;
      if Crcore.Saturate.refutation cl = None then begin
        let ms, b = wall_ms (fun () -> Crcore.Deduce.backbone enc) in
        bb_ms := !bb_ms +. ms;
        backbone_facts := !backbone_facts + Crcore.Deduce.n_facts b
      end)
    specs;
  let tmpl_h1, tmpl_m1 = Crcore.Saturate.template_stats () in
  Printf.printf "  saturation: %8.1f ms  %6d closure fact(s), %d/%d complete\n" !sat_ms
    !closure_facts !complete_closures (List.length specs);
  Printf.printf "  backbone:   %8.1f ms  %6d fact(s)\n" !bb_ms !backbone_facts;
  Printf.printf "  template plan memo: %d hit(s), %d miss(es)\n" (tmpl_h1 - tmpl_h0)
    (tmpl_m1 - tmpl_m0);
  claim "saturate: closure never exceeds the backbone" (!closure_facts <= !backbone_facts);
  (* engine effect: pre-phase on vs off, same oracle-driven batch *)
  let run saturate =
    wall_ms (fun () ->
        Crcore.Engine.run_batch
          ~config:{ Crcore.Engine.default_config with lint = false; saturate }
          items)
  in
  let on_ms, (on_results, on_stats) = run true in
  let off_ms, (off_results, off_stats) = run false in
  let same_resolved =
    List.for_all2
      (fun (a : Crcore.Engine.item_result) (b : Crcore.Engine.item_result) ->
        (ir_result a).Crcore.Engine.resolved = (ir_result b).Crcore.Engine.resolved)
      on_results off_results
  in
  let solve_deduce (st : Crcore.Engine.stats) =
    st.Crcore.Engine.times.Crcore.Engine.validity_ms
    +. st.Crcore.Engine.times.Crcore.Engine.deduce_ms
  in
  let line name ms (st : Crcore.Engine.stats) =
    Printf.printf
      "  engine (%-3s): %8.1f ms, saturate %6.1f ms, solve+deduce %8.1f ms, %d static fact(s), %d probe(s) avoided, %d deduce probe(s)\n"
      name ms st.Crcore.Engine.times.Crcore.Engine.saturate_ms (solve_deduce st)
      st.Crcore.Engine.static_facts st.Crcore.Engine.probes_avoided
      st.Crcore.Engine.deduce_probes
  in
  line "on" on_ms on_stats;
  line "off" off_ms off_stats;
  Printf.printf "  same final resolutions: %b\n%!" same_resolved;
  claim "saturate: engine resolutions identical with pre-phase on and off" same_resolved;
  claim "saturate: static facts derived on the Person batch"
    (on_stats.Crcore.Engine.static_facts > 0);
  claim "saturate: probes avoided on the Person batch"
    (on_stats.Crcore.Engine.probes_avoided > 0);
  claim "saturate: pre-phase off derives nothing statically"
    (off_stats.Crcore.Engine.static_facts = 0 && off_stats.Crcore.Engine.probes_avoided = 0);
  (match json with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Printf.fprintf oc
        {|{
  "scenario": "saturate",
  "dataset": "Person",
  "n_entities": %d,
  "cores_available": %d,
  "phase": {
    "saturation": { "wall_ms": %.3f, "closure_facts": %d, "complete": %d },
    "backbone": { "wall_ms": %.3f, "facts": %d },
    "template_memo": { "hits": %d, "misses": %d }
  },
  "engine": {
    "on":  { "wall_ms": %.3f, "saturate_ms": %.3f, "solve_deduce_ms": %.3f, "static_facts": %d, "probes_avoided": %d, "deduce_probes": %d, "deduce_sat_calls": %d },
    "off": { "wall_ms": %.3f, "saturate_ms": %.3f, "solve_deduce_ms": %.3f, "static_facts": %d, "probes_avoided": %d, "deduce_probes": %d, "deduce_sat_calls": %d },
    "same_final_resolutions": %b
  }
}
|}
        n_entities
        (Parallel.Pool.recommended_jobs ())
        !sat_ms !closure_facts !complete_closures !bb_ms !backbone_facts
        (tmpl_h1 - tmpl_h0) (tmpl_m1 - tmpl_m0) on_ms
        on_stats.Crcore.Engine.times.Crcore.Engine.saturate_ms (solve_deduce on_stats)
        on_stats.Crcore.Engine.static_facts on_stats.Crcore.Engine.probes_avoided
        on_stats.Crcore.Engine.deduce_probes on_stats.Crcore.Engine.deduce_sat_calls off_ms
        off_stats.Crcore.Engine.times.Crcore.Engine.saturate_ms (solve_deduce off_stats)
        off_stats.Crcore.Engine.static_facts off_stats.Crcore.Engine.probes_avoided
        off_stats.Crcore.Engine.deduce_probes off_stats.Crcore.Engine.deduce_sat_calls
        same_resolved;
      close_out oc;
      Printf.printf "  wrote %s\n%!" path)

let saturate () = saturate_sized ~n_entities:120 ~json:(Some "BENCH_saturate.json") ()
let saturate_smoke () = saturate_sized ~n_entities:12 ~json:(Some "BENCH_saturate.json") ()

(* ---------------------------------------------------------------- *)
(* SAT core: LBD clause-DB reduction + binary layer + inprocessing  *)
(* ---------------------------------------------------------------- *)

(* The solver-internals ablation: the same Person batches resolved with
   the clause-database machinery on (LBD-scored learnt reduction on the
   Luby-interleaved geometric schedule, plus level-0 pre/inprocessing —
   satisfied removal, subsumption/self-subsumption, BVE on unfrozen
   variables — at the engine's simplify points) and off (the pre-LBD
   solver: no reduction, so the learnt database grows without bound, and
   no inprocessing). The binary implication layer is structural and on in
   both runs. Resolutions must be bit-identical at every size. Person
   resolution is conflict-starved (unit propagation plus saturation derive
   every implied order, so backbone probes rarely conflict), which makes
   the deduce phase propagation-bound: the managed side's win comes from
   inprocessing shrinking what the ~5k model-building probes propagate
   over — chiefly equivalent-literal substitution, which collapses the
   x_ji = not x_ij classes the Exact encoding's totality+asymmetry pairs
   create, halving the order variables and folding the six transitivity
   clauses per triple into two (the duplicates fall to subsumption) —
   not from learnt-clause pressure. Emits BENCH_satcore.json. *)
(* Richer histories than [person_sized]: the event count (and with it the
   per-attribute active domain, hence the CNF) grows linearly with entity
   size instead of capping at a dozen events. That is the regime where the
   solver itself — not the encoder — carries the cost, which is what this
   ablation measures. *)
(* One entity per size — a per-entity scaling curve, like the paper's
   fig. 8. Batch-level identity of simplify on/off is property-tested
   separately (test_parallel, test_session); here one entity keeps the
   10k point affordable and the probe sequence comparable: with this
   seed both sides run the same probe sequence to the same answers at
   every size (the identical_results claim); the propagation counts
   differ because that is the effect measured — the managed side
   propagates over the substituted, subsumed database. *)
let satcore_person size =
  Datagen.Person.generate
    {
      Datagen.Person.default_params with
      n_entities = 1;
      size_min = size;
      size_max = size;
      extra_events = size / 100;
      seed = 101;
    }

let satcore_sized ~sizes ~strict_win ~ratchet ~json () =
  section
    (Printf.sprintf "SAT core: clause-DB management on vs off, Person size(s) %s"
       (String.concat "/" (List.map string_of_int sizes)));
  let solve_deduce (st : Crcore.Engine.stats) =
    st.Crcore.Engine.times.Crcore.Engine.validity_ms
    +. st.Crcore.Engine.times.Crcore.Engine.deduce_ms
  in
  let rows =
    List.map
      (fun size ->
        let ds = satcore_person size in
        let items =
          intern_items
            (List.map
               (fun (case : Datagen.Types.case) ->
                 {
                   Crcore.Engine.label = string_of_int case.Datagen.Types.id;
                   spec = Datagen.Types.spec_of ds case;
                   user = Crcore.Framework.oracle ~max_answers:1 case.Datagen.Types.truth;
                 })
               ds.Datagen.Types.cases)
        in
        let run simplify =
          wall_ms (fun () ->
              Crcore.Engine.run_batch
                ~config:
                  {
                    (* Exact mode (totality clauses) keeps backbone probes
                       non-trivial; saturation stays on (the default) so
                       its units feed the satcore side's satisfied-clause
                       removal, exactly as in production *)
                    Crcore.Engine.default_config with
                    mode = Crcore.Encode.Exact;
                    lint = false;
                    simplify;
                  }
                items)
        in
        (* Warm-up: one untimed pass first. It pays the one-time process
           costs (heap expansion, page faults for the ~3/4-million-clause
           arenas) that would otherwise land entirely on whichever side
           runs first — at this scale that bias is larger than the effect
           measured. *)
        ignore (run true);
        Gc.compact ();
        (* Timed runs in ABBA order — managed, baseline, baseline,
           managed, compacting between runs — and each side reports the
           MINIMUM of its two runs. Timing noise on a shared box is
           additive (scheduler steal and neighbours only ever slow a run
           down — by up to ~8% per run here, larger than the effect
           measured), so the per-side minimum is the best estimator of
           the uncontended time, and the ABBA order keeps the slots
           symmetric so neither side systematically occupies a colder or
           quieter part of the sequence. Counters are deterministic per
           side — only the times differ between a side's two runs. *)
        let a1_ms, (on_results, on_stats) = run true in
        Gc.compact ();
        let b1_ms, (off_results, off_stats) = run false in
        Gc.compact ();
        let b2_ms, (_, off_stats2) = run false in
        Gc.compact ();
        let a2_ms, (_, on_stats2) = run true in
        let on_ms = Float.min a1_ms a2_ms in
        let off_ms = Float.min b1_ms b2_ms in
        let on_sd = Float.min (solve_deduce on_stats) (solve_deduce on_stats2) in
        let off_sd = Float.min (solve_deduce off_stats) (solve_deduce off_stats2) in
        let identical =
          List.for_all2
            (fun (a : Crcore.Engine.item_result) (b : Crcore.Engine.item_result) ->
              (ir_result a).Crcore.Engine.resolved = (ir_result b).Crcore.Engine.resolved
              && (ir_result a).Crcore.Engine.valid = (ir_result b).Crcore.Engine.valid)
            on_results off_results
        in
        let line name ms sd (st : Crcore.Engine.stats) =
          let sv = st.Crcore.Engine.solver in
          Printf.printf
            "  size %5d (%-8s): %8.1f ms wall, solve+deduce %8.1f ms, %d conflict(s), \
             %d propagation(s), %d probe(s), lbd %.2f, kept %d / deleted %d, %d \
             binarie(s), %d subsumed, %d var(s) eliminated, %d substituted, simplify \
             %.1f ms\n"
            size name ms sd sv.Sat.Solver.conflicts
            sv.Sat.Solver.propagations st.Crcore.Engine.deduce_probes
            (Sat.Solver.lbd_avg sv) sv.Sat.Solver.learnts_kept
            sv.Sat.Solver.learnts_deleted sv.Sat.Solver.binaries sv.Sat.Solver.subsumed
            sv.Sat.Solver.vars_eliminated sv.Sat.Solver.vars_substituted
            sv.Sat.Solver.simplify_ms
        in
        line "satcore" on_ms on_sd on_stats;
        line "baseline" off_ms off_sd off_stats;
        Printf.printf "  size %5d same final resolutions: %b\n%!" size identical;
        claim (Printf.sprintf "satcore: identical resolutions at size %d" size) identical;
        (size, on_ms, off_ms, on_sd, off_sd, on_stats, off_stats, identical))
      sizes
  in
  (* Offline simplification: engine-grade encodings through a standalone
     solver with nothing frozen — the [satcli --simplify] /
     [--dump-dimacs] path. In-engine [vars_eliminated] is legitimately
     zero (the engine freezes every variable it may probe, and BVE
     respects the freeze), so this measurement — over a small batch of
     2000-tuple entities, where encoding is cheap — is where BVE is
     allowed to bite. In-engine substitution and the subsumption it
     exposes are real, though, and ratcheted below. *)
  let osub, oelim, obefore, oafter, oms =
    let ds =
      Datagen.Person.generate
        {
          Datagen.Person.default_params with
          n_entities = 8;
          size_min = 2000;
          size_max = 2000;
          extra_events = 20;
        }
    in
    List.fold_left
      (fun (sub, elim, before, after, ms) (case : Datagen.Types.case) ->
        let e =
          Crcore.Encode.encode ~mode:Crcore.Encode.Exact (Datagen.Types.spec_of ds case)
        in
        let s = Sat.Solver.create () in
        Sat.Solver.add_cnf s e.Crcore.Encode.cnf;
        Sat.Solver.simplify s;
        let sv = Sat.Solver.stats s in
        ( sub + sv.Sat.Solver.subsumed,
          elim + sv.Sat.Solver.vars_eliminated,
          before + Sat.Cnf.nclauses e.Crcore.Encode.cnf,
          after + Sat.Cnf.nclauses (Sat.Solver.export_cnf s),
          ms +. sv.Sat.Solver.simplify_ms ))
      (0, 0, 0, 0, 0.) ds.Datagen.Types.cases
  in
  Printf.printf
    "  offline (8 entities @2000): %d subsumed, %d var(s) eliminated, clauses %d -> %d, \
     simplify %.1f ms\n%!"
    osub oelim obefore oafter oms;
  (* the headline: at the largest size the managed clause database must be
     strictly faster in solve+deduce than the grow-forever baseline *)
  (if strict_win then
     match List.rev rows with
     | (size, _, _, on_sd, off_sd, _, _, _) :: _ ->
         claim
           (Printf.sprintf "satcore: solve+deduce strictly below baseline at size %d" size)
           (on_sd < off_sd)
     | [] -> ());
  (* CI ratchet (smoke): pre/inprocessing must do real work both offline
     (subsumption + BVE with nothing frozen) and in-engine (substitution
     collapses the Exact encoding's complement pairs even under the
     freeze-everything contract, and the duplicate transitivity clauses
     it creates must then fall to subsumption), and the managed run must
     not regress past the baseline by more than measurement noise *)
  if ratchet then begin
    claim "satcore: offline simplification does work (subsumed + eliminated > 0)"
      (osub + oelim > 0);
    List.iter
      (fun (size, _, _, _, _, on_st, _, _) ->
        let sv = on_st.Crcore.Engine.solver in
        claim
          (Printf.sprintf
             "satcore: in-engine substitution + subsumption do work at size %d" size)
          (sv.Sat.Solver.vars_substituted > 0 && sv.Sat.Solver.subsumed > 0))
      rows;
    List.iter
      (fun (size, _, _, on_sd, off_sd, _, _, _) ->
        claim
          (Printf.sprintf "satcore: no regression vs baseline at size %d" size)
          (on_sd <= off_sd *. 1.25))
      rows
  end;
  match json with
  | None -> ()
  | Some path ->
      let side (st : Crcore.Engine.stats) ms sd =
        let sv = st.Crcore.Engine.solver in
        Printf.sprintf
          {|{ "wall_ms": %.3f, "solve_deduce_ms": %.3f, "conflicts": %d, "propagations": %d, "lbd_avg": %.3f, "learnts_kept": %d, "learnts_deleted": %d, "binaries": %d, "subsumed": %d, "vars_eliminated": %d, "vars_substituted": %d, "simplify_ms": %.3f }|}
          ms sd sv.Sat.Solver.conflicts sv.Sat.Solver.propagations
          (Sat.Solver.lbd_avg sv) sv.Sat.Solver.learnts_kept sv.Sat.Solver.learnts_deleted
          sv.Sat.Solver.binaries sv.Sat.Solver.subsumed sv.Sat.Solver.vars_eliminated
          sv.Sat.Solver.vars_substituted sv.Sat.Solver.simplify_ms
      in
      let size_rows =
        List.map
          (fun (size, on_ms, off_ms, on_sd, off_sd, on_st, off_st, identical) ->
            Printf.sprintf
              {|    { "size": %d, "identical_results": %b, "timed_runs_per_side": 2,
      "satcore": %s,
      "baseline": %s }|}
              size identical (side on_st on_ms on_sd) (side off_st off_ms off_sd))
          rows
      in
      let oc = open_out path in
      Printf.fprintf oc
        {|{
  "scenario": "satcore",
  "dataset": "Person",
  "entities_per_size": %d,
  "cores_available": %d,
  "baseline": "simplify off (no LBD reduction, no pre/inprocessing)",
  "offline_simplify": { "subsumed": %d, "vars_eliminated": %d, "clauses_before": %d, "clauses_after": %d, "simplify_ms": %.3f },
  "sizes": [
%s
  ]
}
|}
        1
        (Parallel.Pool.recommended_jobs ())
        osub oelim obefore oafter oms
        (String.concat ",\n" size_rows);
      close_out oc;
      Printf.printf "  wrote %s\n%!" path

let satcore () =
  satcore_sized ~sizes:[ 2000; 5000; 10000 ] ~strict_win:true ~ratchet:false
    ~json:(Some "BENCH_satcore.json") ()

let satcore_smoke () =
  satcore_sized ~sizes:[ 2000 ] ~strict_win:false ~ratchet:true
    ~json:(Some "BENCH_satcore.json") ()

(* ---------------------------------------------------------------- *)
(* Lint pre-phase: statically-unsat specs skip the solver            *)
(* ---------------------------------------------------------------- *)

(* Break a spec so the linter can prove it unsatisfiable in polynomial
   time: a two-cycle in an attribute's explicit currency order between
   tuples holding different values (E001). *)
let break_spec spec =
  let entity = spec.Crcore.Spec.entity in
  let schema = Entity.schema entity in
  match Entity.tuples entity with
  | t0 :: t1 :: _ ->
      let attr =
        List.find_map
          (fun a ->
            let v0 = Tuple.get t0 a and v1 = Tuple.get t1 a in
            if (not (Value.is_null v0)) && (not (Value.is_null v1)) && not (Value.equal v0 v1)
            then Some (Schema.name schema a)
            else None)
          (List.init (Schema.arity schema) Fun.id)
      in
      (match attr with
      | Some a ->
          Crcore.Spec.add_order_edges spec
            [ { Crcore.Spec.attr = a; lo = 0; hi = 1 }; { Crcore.Spec.attr = a; lo = 1; hi = 0 } ]
      | None -> spec)
  | _ -> spec

(* Resolve a half-broken Person batch twice — lint pre-phase off vs on.
   Results must be identical (the linter only rejects provably-unsat
   specs); the linted run never encodes or solves the broken half, which
   is where the speedup comes from. Emits BENCH_lint.json. *)
let lint_sized ~n_entities ~size_min ~size_max ~extra_events ~json () =
  section
    (Printf.sprintf "Lint: %d Person entities, half statically broken, pre-phase off vs on"
       n_entities);
  let ds =
    Datagen.Person.generate
      { Datagen.Person.default_params with n_entities; size_min; size_max; extra_events }
  in
  let items =
    List.mapi
      (fun i (case : Datagen.Types.case) ->
        let spec = Datagen.Types.spec_of ds case in
        let spec = if i mod 2 = 1 then break_spec spec else spec in
        {
          Crcore.Engine.label = string_of_int case.Datagen.Types.id;
          spec;
          user = Crcore.Framework.oracle ~max_answers:1 case.Datagen.Types.truth;
        })
      ds.Datagen.Types.cases
  in
  let no_lint = { Crcore.Engine.default_config with lint = false } in
  (* best-of-3 per configuration: batches this small sit well inside GC
     noise on a single run *)
  let best_of_3 f =
    let runs = List.init 3 (fun _ -> wall_ms f) in
    List.fold_left (fun acc r -> if fst r < fst acc then r else acc) (List.hd runs)
      (List.tl runs)
  in
  let off_ms, (off_results, off_stats) =
    best_of_3 (fun () -> Crcore.Engine.run_batch ~config:no_lint items)
  in
  let on_ms, (on_results, on_stats) = best_of_3 (fun () -> Crcore.Engine.run_batch items) in
  let equivalent =
    List.for_all2
      (fun (a : Crcore.Engine.item_result) (b : Crcore.Engine.item_result) ->
        ir_result a = ir_result b)
      off_results on_results
  in
  let speedup = if on_ms <= 0. then 0. else off_ms /. on_ms in
  Printf.printf "  lint off: %8.1f ms    lint on: %8.1f ms    speedup: %.2fx\n" off_ms on_ms
    speedup;
  Printf.printf "  rejected before encoding: %d/%d    identical results: %b\n"
    on_stats.Crcore.Engine.lint_rejected n_entities equivalent;
  claim "lint: lint-on results == lint-off results" equivalent;
  Format.printf "  %a@." Crcore.Engine.pp_stats on_stats;
  match json with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Printf.fprintf oc
        {|{
  "scenario": "lint",
  "dataset": "Person",
  "n_entities": %d,
  "cores_available": %d,
  "broken_entities": %d,
  "lint_off": { "wall_ms": %.3f, "valid_entities": %d },
  "lint_on": {
    "wall_ms": %.3f,
    "valid_entities": %d,
    "lint_rejected": %d,
    "lint_ms": %.3f,
    "solvers_built": %d
  },
  "speedup": %.3f,
  "identical_results": %b
}
|}
        n_entities
        (Parallel.Pool.recommended_jobs ())
        (n_entities / 2) off_ms off_stats.Crcore.Engine.valid_entities on_ms
        on_stats.Crcore.Engine.valid_entities on_stats.Crcore.Engine.lint_rejected
        on_stats.Crcore.Engine.times.Crcore.Engine.lint_ms
        on_stats.Crcore.Engine.solvers_built speedup equivalent;
      close_out oc;
      Printf.printf "  wrote %s\n%!" path

let lint () =
  lint_sized ~n_entities:60 ~size_min:40 ~size_max:80 ~extra_events:12
    ~json:(Some "BENCH_lint.json") ()

let lint_smoke () =
  lint_sized ~n_entities:10 ~size_min:40 ~size_max:80 ~extra_events:12 ~json:None ()

(* ---------------------------------------------------------------- *)
(* Robustness: budgets + fault isolation under a poisoned batch      *)
(* ---------------------------------------------------------------- *)

(* A Person batch where ~5% of the entities are poisoned through the
   deterministic fault-injection harness: half of the poison simulates a
   hang (a forced budget-exhaust at the solve phase, which the conflict
   budget turns into a PickFallback degradation), half simulates a crash
   (a raise at the solve phase, which per-entity isolation turns into an
   Error outcome). The scenario compares isolation-on throughput (every
   healthy entity still resolves) against the fail_fast batch-abort
   semantics (the first crash kills the whole batch and delivers zero
   results), checks that jobs=1 and jobs=4 agree outcome-for-outcome, and
   reports the degradation histogram. Emits BENCH_robustness.json. *)
let robustness_sized ~n_entities ~poison_period ~json () =
  section
    (Printf.sprintf
       "Robustness: %d Person entities, 2/%d poisoned, isolation vs fail-fast" n_entities
       poison_period);
  let ds =
    Datagen.Person.generate
      {
        Datagen.Person.default_params with
        n_entities;
        size_min = 4;
        size_max = 10;
        extra_events = 2;
      }
  in
  let items =
    intern_items
      (List.map
         (fun (case : Datagen.Types.case) ->
           {
             Crcore.Engine.label = string_of_int case.Datagen.Types.id;
             spec = Datagen.Types.spec_of ds case;
             user = Crcore.Framework.oracle ~max_answers:1 case.Datagen.Types.truth;
           })
         ds.Datagen.Types.cases)
  in
  let exhaust_slot = 7 mod poison_period and raise_slot = 27 mod poison_period in
  let labels_at slot =
    List.filteri (fun i _ -> i mod poison_period = slot) items
    |> List.map (fun (it : Crcore.Engine.item) -> it.Crcore.Engine.label)
  in
  let exhaust_labels = labels_at exhaust_slot and raise_labels = labels_at raise_slot in
  let rule label action =
    { Crcore.Faults.label = Some label; point = Crcore.Faults.Solve; nth = 1; action }
  in
  let plan =
    List.map (fun l -> rule l Crcore.Faults.Exhaust) exhaust_labels
    @ List.map (fun l -> rule l (Crcore.Faults.Raise "bench: poisoned entity")) raise_labels
  in
  let cfg =
    {
      Crcore.Engine.default_config with
      lint = false;
      budget_conflicts = Some 20_000;
    }
  in
  Crcore.Faults.arm plan;
  Fun.protect ~finally:Crcore.Faults.disarm (fun () ->
      let iso_ms, (results, stats) =
        wall_ms (fun () -> Crcore.Engine.run_batch ~config:cfg items)
      in
      let _, (results4, _) =
        wall_ms (fun () ->
            Crcore.Engine.run_batch
              ~config:{ cfg with jobs = 4; clamp_jobs = false }
              items)
      in
      let abort_ms, aborted =
        wall_ms (fun () ->
            match Crcore.Engine.run_batch ~config:{ cfg with fail_fast = true } items with
            | _ -> false
            | exception Crcore.Faults.Injected _ -> true)
      in
      let hist_exact = ref 0 and hist_partial = ref 0 and hist_pick = ref 0 in
      let errors = ref 0 in
      List.iter
        (fun (r : Crcore.Engine.item_result) ->
          match r.Crcore.Engine.outcome with
          | Error _ -> incr errors
          | Ok res -> (
              match res.Crcore.Engine.level with
              | Crcore.Engine.Exact -> incr hist_exact
              | Crcore.Engine.PartialDeduce -> incr hist_partial
              | Crcore.Engine.PickFallback -> incr hist_pick))
        results;
      let outcome_keys rs =
        (* backtraces legitimately differ across domain schedules *)
        List.map
          (fun (r : Crcore.Engine.item_result) ->
            ( r.Crcore.Engine.label,
              match r.Crcore.Engine.outcome with
              | Ok res -> Ok res
              | Error e -> Error (e.Crcore.Engine.exn, e.Crcore.Engine.phase) ))
          rs
      in
      let deterministic = outcome_keys results = outcome_keys results4 in
      let hangs_degraded =
        List.for_all
          (fun l ->
            match
              List.find_opt (fun (r : Crcore.Engine.item_result) -> r.Crcore.Engine.label = l)
                results
            with
            | Some { Crcore.Engine.outcome = Ok res; _ } ->
                res.Crcore.Engine.level = Crcore.Engine.PickFallback
            | _ -> false)
          exhaust_labels
      in
      let healthy = n_entities - !errors in
      let per_sec ms = if ms <= 0. then 0. else 1000. *. float_of_int healthy /. ms in
      Printf.printf "  poisoned: %d hang(s) (budget-exhaust), %d crash(es) (raise)\n"
        (List.length exhaust_labels) (List.length raise_labels);
      Printf.printf "  isolation on:  %8.1f ms   %d/%d outcomes delivered  (%7.1f healthy entities/s)\n"
        iso_ms (List.length results) n_entities (per_sec iso_ms);
      Printf.printf "  fail-fast:     %8.1f ms   %s, 0 results delivered\n" abort_ms
        (if aborted then "aborted on first crash" else "did NOT abort");
      Printf.printf
        "  degradation histogram: exact=%d partial=%d pick=%d error=%d   budget-exhausted: %d\n"
        !hist_exact !hist_partial !hist_pick !errors stats.Crcore.Engine.budget_exhausted;
      Printf.printf "  jobs=1 == jobs=4: %b\n%!" deterministic;
      Format.printf "  %a@." Crcore.Engine.pp_stats stats;
      claim "robustness: every entity reports an outcome"
        (List.length results = n_entities && stats.Crcore.Engine.entities = n_entities);
      claim "robustness: crashes isolated as per-entity errors"
        (!errors = List.length raise_labels && stats.Crcore.Engine.errors = !errors);
      claim "robustness: hangs degrade to PickFallback under the budget" hangs_degraded;
      claim "robustness: fail_fast aborts the batch" aborted;
      claim "robustness: outcomes identical at jobs=1 and jobs=4" deterministic;
      match json with
      | None -> ()
      | Some path ->
          let oc = open_out path in
          Printf.fprintf oc
            {|{
  "scenario": "robustness",
  "dataset": "Person",
  "n_entities": %d,
  "cores_available": %d,
  "poisoned": { "hangs": %d, "crashes": %d },
  "budget_conflicts": 20000,
  "isolation": {
    "wall_ms": %.3f,
    "healthy_entities_per_sec": %.1f,
    "outcomes_delivered": %d,
    "errors": %d,
    "budget_exhausted": %d,
    "degraded_partial": %d,
    "degraded_pick": %d,
    "histogram": { "exact": %d, "partial": %d, "pick": %d, "error": %d }
  },
  "fail_fast": { "wall_ms": %.3f, "aborted": %b, "results_delivered": 0 },
  "jobs_deterministic": %b
}
|}
            n_entities
            (Parallel.Pool.recommended_jobs ())
            (List.length exhaust_labels) (List.length raise_labels) iso_ms
            (per_sec iso_ms) (List.length results) !errors
            stats.Crcore.Engine.budget_exhausted stats.Crcore.Engine.degraded_partial
            stats.Crcore.Engine.degraded_pick !hist_exact !hist_partial !hist_pick !errors
            abort_ms aborted deterministic;
          close_out oc;
          Printf.printf "  wrote %s\n%!" path)

let robustness () =
  robustness_sized ~n_entities:120 ~poison_period:40 ~json:(Some "BENCH_robustness.json") ()

let robustness_smoke () =
  robustness_sized ~n_entities:24 ~poison_period:8 ~json:(Some "BENCH_robustness.json") ()

(* ---------------------------------------------------------------- *)
(* Daemon: streaming delta re-resolution vs cold re-encode          *)
(* ---------------------------------------------------------------- *)

(* The crsolved workload: an interleaved multi-entity update log (tuple
   arrivals in history order plus user-asserted currency edges, from
   Datagen.Update_log) served two ways over the SAME schedule:

     incremental — a Session.Store keeps every active entity's encoding
       and solver session hot; arrivals stream through Encode.extend
       (delta clauses on unchanged universes, Σ-sweep reuse otherwise)
       and each resolve point re-runs the loop on the live session;
     cold — every resolve point rebuilds the accumulated specification
       and re-resolves from scratch, cache off (the pre-daemon cost of
       answering the same stream of requests).

   Results must match at every resolve point; the JSON reports sustained
   throughput and per-request latency percentiles for both sides. The
   stream is replayed in chunks of [chunk] entities (one shared store;
   finished entities are closed and retired) so the hot set — and the
   store's memory — stays bounded while the total entity count scales to
   10k+. A socket round trip through a real crsolved instance smokes the
   wire path. Emits BENCH_daemon.json. *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0. else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

let daemon_person ~n_entities ~seed =
  Datagen.Person.generate
    {
      Datagen.Person.default_params with
      n_status_chains = 8;
      n_job_chains = 8;
      n_cities = 12;
      n_entities;
      (* larger entities than the micro scenarios: cold re-encode is
         quadratic in the tuple count while a coalesced delta extension
         is linear, so this is where keeping the encoding hot pays *)
      size_min = 8;
      size_max = 16;
      seed;
    }

let daemon_socket_smoke (ds : Datagen.Types.dataset) =
  let socket_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "crsolved-bench-%d.sock" (Unix.getpid ()))
  in
  let d =
    Crserver.Daemon.create ~sigma:ds.Datagen.Types.sigma ~gamma:ds.Datagen.Types.gamma ()
  in
  let server = Thread.create (fun () -> Crserver.Daemon.serve d ~socket_path) () in
  (* wait for the listener *)
  let rec await n =
    if n = 0 then failwith "daemon socket never appeared"
    else if Sys.file_exists socket_path then ()
    else (Thread.delay 0.02; await (n - 1))
  in
  await 250;
  let case = List.hd ds.Datagen.Types.cases in
  let schema = ds.Datagen.Types.schema in
  let csv_line values = String.trim (Csv.to_string [ values ]) in
  let header = csv_line (Schema.attr_names schema) in
  let rows =
    Entity.tuples case.Datagen.Types.entity
    |> List.map (fun t -> csv_line (List.map Value.to_string (Tuple.values t)))
  in
  let requests =
    [ "PING"; Printf.sprintf "OPEN smoke|%s" header ]
    @ List.map (fun r -> Printf.sprintf "INGEST smoke|%s" r) rows
    @ [ "RESOLVE smoke"; "BASELINE smoke|lww"; "STATS"; "SHUTDOWN" ]
  in
  let responses = Crserver.Daemon.request_many ~socket_path requests in
  Thread.join server;
  let all_ok =
    List.length responses = List.length requests
    && List.for_all
         (fun r -> String.length r >= 10 && String.sub r 0 10 = {|{"ok":true|})
         responses
  in
  (List.length requests, all_ok)

let daemon_sized ~n_entities ~chunk ~check_speedup ~json () =
  section
    (Printf.sprintf "Daemon: streaming re-resolution, %d Person entities (chunks of %d)"
       n_entities chunk);
  let module Cr = Conflict_resolution in
  let ds = daemon_person ~n_entities ~seed:2013 in
  let sigma = ds.Datagen.Types.sigma and gamma = ds.Datagen.Types.gamma in
  (* one store for the whole run: chunking bounds live sessions, not the
     cache or the retired counters *)
  let store = Cr.Session.Store.create ~config:Cr.Config.(default |> with_session_cap (chunk * 2)) () in
  let cold_config = Cr.Config.(default |> with_cache false |> to_engine) in
  let chunks =
    let rec split acc cases =
      match cases with
      | [] -> List.rev acc
      | _ ->
          let take = List.filteri (fun i _ -> i < chunk) cases in
          let rest = List.filteri (fun i _ -> i >= chunk) cases in
          split (take :: acc) rest
    in
    split [] ds.Datagen.Types.cases
  in
  let inc_lat = ref [] and cold_lat = ref [] in
  let inc_ms = ref 0. and cold_ms = ref 0. in
  let n_arrivals = ref 0 and n_orders = ref 0 and n_resolves = ref 0 in
  let mismatches = ref 0 in
  let now_ms () = Unix.gettimeofday () *. 1000. in
  List.iteri
    (fun ci cases ->
      let sub = { ds with Datagen.Types.cases = cases } in
      let log =
        Datagen.Update_log.replay
          ~params:{ Datagen.Update_log.default_params with seed = 77 + ci }
          sub
      in
      n_arrivals := !n_arrivals + log.Datagen.Update_log.n_arrivals;
      n_orders := !n_orders + log.Datagen.Update_log.n_orders;
      n_resolves := !n_resolves + log.Datagen.Update_log.n_resolves;
      (* last event index per label: closing point for session retirement *)
      let last = Hashtbl.create 64 in
      List.iteri
        (fun i ev ->
          let label =
            match ev with
            | Datagen.Update_log.Arrival { label; _ } -> label
            | Datagen.Update_log.Assert_order { label; _ } -> label
            | Datagen.Update_log.Resolve label -> label
          in
          Hashtbl.replace last label i)
        log.Datagen.Update_log.events;
      (* --- incremental pass: live sessions over the event stream ---
         Mirrors the daemon: arrivals before the first resolve buffer in a
         pending table and the session materialises — with everything seen
         so far — at the first RESOLVE; later arrivals stream into the
         live session (coalesced per resolve point by the Session layer). *)
      let inc_results = Hashtbl.create 64 in
      let pending : (string, Tuple.t list * Cr.Spec.order_edge list) Hashtbl.t =
        Hashtbl.create 64
      in
      let t0 = now_ms () in
      List.iteri
        (fun i ev ->
          let label =
            match ev with
            | Datagen.Update_log.Arrival { label; tuple } -> (
                (match Cr.Session.Store.find store label with
                | Some h -> Cr.Session.ingest h ~tuples:[ tuple ] ()
                | None ->
                    let ts, os =
                      try Hashtbl.find pending label with Not_found -> ([], [])
                    in
                    Hashtbl.replace pending label (tuple :: ts, os));
                label)
            | Datagen.Update_log.Assert_order { label; order } ->
                (match Cr.Session.Store.find store label with
                | Some h -> Cr.Session.ingest h ~orders:[ order ] ()
                | None ->
                    let ts, os = Hashtbl.find pending label in
                    Hashtbl.replace pending label (ts, order :: os));
                label
            | Datagen.Update_log.Resolve label ->
                let t = now_ms () in
                let h =
                  match Cr.Session.Store.find store label with
                  | Some h -> h
                  | None ->
                      let ts, os = Hashtbl.find pending label in
                      Hashtbl.remove pending label;
                      let h, _ =
                        Cr.Session.Store.get_or_create store label ~spec:(fun () ->
                            Cr.Spec.make
                              (Entity.make ds.Datagen.Types.schema (List.rev ts))
                              ~orders:(List.rev os) ~sigma ~gamma)
                      in
                      h
                in
                let r, _ = Cr.Session.resolve h in
                inc_lat := (now_ms () -. t) :: !inc_lat;
                Hashtbl.replace inc_results label
                  ((r.Cr.Engine.resolved, r.Cr.Engine.valid)
                  :: (try Hashtbl.find inc_results label with Not_found -> []));
                label
          in
          if Hashtbl.find last label = i then begin
            ignore (Cr.Session.Store.remove store label);
            Hashtbl.remove pending label
          end)
        log.Datagen.Update_log.events;
      inc_ms := !inc_ms +. (now_ms () -. t0);
      (* --- cold pass: rebuild + re-resolve at every resolve point --- *)
      let acc : (string, Tuple.t list * Cr.Spec.order_edge list) Hashtbl.t =
        Hashtbl.create 64
      in
      let cold_results = Hashtbl.create 64 in
      let t0 = now_ms () in
      List.iter
        (fun ev ->
          match ev with
          | Datagen.Update_log.Arrival { label; tuple } ->
              let ts, os =
                try Hashtbl.find acc label with Not_found -> ([], [])
              in
              Hashtbl.replace acc label (tuple :: ts, os)
          | Datagen.Update_log.Assert_order { label; order } ->
              let ts, os = Hashtbl.find acc label in
              Hashtbl.replace acc label (ts, order :: os)
          | Datagen.Update_log.Resolve label ->
              let ts, os = Hashtbl.find acc label in
              let t = now_ms () in
              let spec =
                Cr.Spec.make
                  (Entity.make ds.Datagen.Types.schema (List.rev ts))
                  ~orders:os ~sigma ~gamma
              in
              let r, _ =
                Cr.Engine.resolve ~config:cold_config ~user:Cr.Framework.silent spec
              in
              cold_lat := (now_ms () -. t) :: !cold_lat;
              Hashtbl.replace cold_results label
                ((r.Cr.Engine.resolved, r.Cr.Engine.valid)
                :: (try Hashtbl.find cold_results label with Not_found -> [])))
        log.Datagen.Update_log.events;
      cold_ms := !cold_ms +. (now_ms () -. t0);
      Hashtbl.iter
        (fun label inc ->
          let cold = try Hashtbl.find cold_results label with Not_found -> [] in
          if inc <> cold then incr mismatches)
        inc_results)
    chunks;
  let stats = Cr.Session.Store.stats store in
  let identical = !mismatches = 0 in
  claim "daemon: incremental == cold re-resolve at every resolve point" identical;
  claim "daemon: delta extensions > 0" (stats.Cr.Session.Store.delta_extensions > 0);
  let speedup = if !inc_ms > 0. then !cold_ms /. !inc_ms else 0. in
  if check_speedup then
    claim "daemon: session-incremental beats cold re-encode" (speedup > 1.0);
  let inc_sorted = Array.of_list !inc_lat and cold_sorted = Array.of_list !cold_lat in
  Array.sort compare inc_sorted;
  Array.sort compare cold_sorted;
  let events = !n_arrivals + !n_orders + !n_resolves in
  Printf.printf
    "  stream: %d event(s) over %d entities (%d arrivals, %d asserted orders, %d resolves)\n"
    events n_entities !n_arrivals !n_orders !n_resolves;
  Printf.printf
    "  incremental: %.1f ms (%.0f req/s, resolve p50 %.3f ms, p99 %.3f ms)\n"
    !inc_ms
    (1000. *. float_of_int events /. !inc_ms)
    (percentile inc_sorted 0.50) (percentile inc_sorted 0.99);
  Printf.printf "  cold:        %.1f ms (resolve p50 %.3f ms, p99 %.3f ms)\n" !cold_ms
    (percentile cold_sorted 0.50) (percentile cold_sorted 0.99);
  Printf.printf
    "  speedup %.2fx; delta extensions %d, rebuilds %d+%d, solvers built %d, identical: %b\n"
    speedup stats.Cr.Session.Store.delta_extensions
    stats.Cr.Session.Store.rebuilds_renumbered stats.Cr.Session.Store.rebuilds_impure
    stats.Cr.Session.Store.solvers_built identical;
  let smoke_requests, smoke_ok = daemon_socket_smoke ds in
  Printf.printf "  socket smoke: %d request(s), all ok: %b\n" smoke_requests smoke_ok;
  claim "daemon: socket round trip all ok" smoke_ok;
  match json with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Printf.fprintf oc
        {|{
  "scenario": "daemon",
  "dataset": "Person",
  "n_entities": %d,
  "cores_available": %d,
  "chunk": %d,
  "arrivals": %d,
  "asserted_orders": %d,
  "resolve_requests": %d,
  "incremental": {
    "wall_ms": %.3f,
    "requests_per_sec": %.1f,
    "resolves_per_sec": %.1f,
    "latency_ms": { "p50": %.4f, "p90": %.4f, "p99": %.4f },
    "delta_extensions": %d,
    "rebuilds_renumbered": %d,
    "rebuilds_impure": %d,
    "solvers_built": %d,
    "sessions_created": %d,
    "evicted_lru": %d,
    "evicted_ttl": %d
  },
  "cold": {
    "wall_ms": %.3f,
    "resolves_per_sec": %.1f,
    "latency_ms": { "p50": %.4f, "p90": %.4f, "p99": %.4f }
  },
  "speedup": %.3f,
  "identical_results": %b,
  "socket_smoke_ok": %b
}
|}
        n_entities
        (Parallel.Pool.recommended_jobs ())
        chunk !n_arrivals !n_orders !n_resolves !inc_ms
        (1000. *. float_of_int events /. !inc_ms)
        (1000. *. float_of_int !n_resolves /. !inc_ms)
        (percentile inc_sorted 0.50) (percentile inc_sorted 0.90) (percentile inc_sorted 0.99)
        stats.Cr.Session.Store.delta_extensions stats.Cr.Session.Store.rebuilds_renumbered
        stats.Cr.Session.Store.rebuilds_impure stats.Cr.Session.Store.solvers_built
        stats.Cr.Session.Store.created stats.Cr.Session.Store.evicted_lru
        stats.Cr.Session.Store.evicted_ttl !cold_ms
        (1000. *. float_of_int !n_resolves /. !cold_ms)
        (percentile cold_sorted 0.50) (percentile cold_sorted 0.90)
        (percentile cold_sorted 0.99) speedup identical smoke_ok;
      close_out oc;
      Printf.printf "  wrote %s\n%!" path

let daemon () =
  daemon_sized ~n_entities:10_000 ~chunk:1000 ~check_speedup:true
    ~json:(Some "BENCH_daemon.json") ()

let daemon_smoke () =
  daemon_sized ~n_entities:300 ~chunk:100 ~check_speedup:false
    ~json:(Some "BENCH_daemon.json") ()

(* ---------------------------------------------------------------- *)
(* Durability: kill -9 recovery parity, WAL overhead, recovery time *)
(* ---------------------------------------------------------------- *)

(* A real crsolved process is forked (create + serve in the child) and
   killed with SIGKILL mid-stream: a genuine crash — no drain, no flush,
   no atexit. Whatever the WAL holds is all that survives. The client
   keeps streaming through the crash (retry + reconnect + @seq dedup),
   a fresh daemon recovers from snapshot + WAL tail on the same
   directory, and every RESOLVE answer must match an uninterrupted
   in-process reference. Emits BENCH_recovery.json with the
   recovered_parity / lost_events ratchets and the WAL-overhead and
   recovery-time curves. *)

let tmp_counter = ref 0

let tmp_name suffix =
  incr tmp_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "crrec-%d-%d%s" (Unix.getpid ()) !tmp_counter suffix)

let rm_rf_dir dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

let fork_daemon ~config ~sigma ~gamma ~socket_path =
  flush stdout;
  match Unix.fork () with
  | 0 ->
      (try
         let d = Crserver.Daemon.create ~config ~sigma ~gamma () in
         Crserver.Daemon.serve d ~socket_path
       with _ -> ());
      Unix._exit 0
  | pid -> pid

let reap pid = try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

let event_label = function
  | Datagen.Update_log.Arrival { label; _ } -> label
  | Datagen.Update_log.Assert_order { label; _ } -> label
  | Datagen.Update_log.Resolve label -> label

let is_resolve line =
  String.length line >= 8 && String.sub line 0 8 = "RESOLVE "

let is_mutating line = String.length line > 0 && line.[0] = '@'

(* An update log as stamped protocol lines: [@1 OPEN] before each
   entity's first event, per-entity monotone seqs from
   [Update_log.with_seqs], and a stamped CLOSE after its last event so
   finished sessions retire and the live set stays bounded. *)
let protocol_stream (ds : Datagen.Types.dataset) log =
  let csv_line values = String.trim (Csv.to_string [ values ]) in
  let header = csv_line (Schema.attr_names ds.Datagen.Types.schema) in
  let seqs = Datagen.Update_log.with_seqs log in
  let last = Hashtbl.create 64 in
  List.iteri (fun i (_, ev) -> Hashtbl.replace last (event_label ev) i) seqs;
  let opened = Hashtbl.create 64 in
  let cursor = Hashtbl.create 64 in
  List.concat
    (List.mapi
       (fun i (seq, ev) ->
         let label = event_label ev in
         let before =
           if Hashtbl.mem opened label then []
           else begin
             Hashtbl.add opened label ();
             [
               Printf.sprintf "@%d OPEN %s|%s" Datagen.Update_log.open_seq label
                 header;
             ]
           end
         in
         (match seq with Some s -> Hashtbl.replace cursor label s | None -> ());
         let line =
           match ev with
           | Datagen.Update_log.Arrival { label; tuple } ->
               Printf.sprintf "@%d INGEST %s|%s" (Option.get seq) label
                 (csv_line (List.map Value.to_string (Tuple.values tuple)))
           | Datagen.Update_log.Assert_order { label; order } ->
               Printf.sprintf "@%d ORDER %s|%s|%d|%d" (Option.get seq) label
                 order.Crcore.Spec.attr order.Crcore.Spec.lo order.Crcore.Spec.hi
           | Datagen.Update_log.Resolve label -> "RESOLVE " ^ label
         in
         let after =
           if Hashtbl.find last label = i then
             let s =
               (try Hashtbl.find cursor label
                with Not_found -> Datagen.Update_log.open_seq)
               + 1
             in
             [ Printf.sprintf "@%d CLOSE %s" s label ]
           else []
         in
         before @ (line :: after))
       seqs)

(* The stream over the whole dataset, chunked like the daemon bench so
   at most [2 * chunk] entities are ever live at once. *)
let chunked_stream (ds : Datagen.Types.dataset) ~chunk ~seed =
  let rec split acc cases =
    match cases with
    | [] -> List.rev acc
    | _ ->
        let take = List.filteri (fun i _ -> i < chunk) cases in
        let rest = List.filteri (fun i _ -> i >= chunk) cases in
        split (take :: acc) rest
  in
  split [] ds.Datagen.Types.cases
  |> List.concat_map (fun cases ->
         let sub = { ds with Datagen.Types.cases = cases } in
         protocol_stream sub
           (Datagen.Update_log.replay
              ~params:{ Datagen.Update_log.default_params with seed } sub))

(* The semantically meaningful core of a RESOLVE reply — validity and
   the resolved tuple; session counters legitimately differ between a
   recovered and an uninterrupted run. *)
let resolve_core r =
  let find needle =
    let nl = String.length needle in
    let rec go i =
      if i + nl > String.length r then None
      else if String.sub r i nl = needle then Some i
      else go (i + 1)
    in
    go 0
  in
  let upto_char c from =
    try String.index_from r from c with Not_found -> String.length r - 1
  in
  let valid =
    match find {|"valid":|} with
    | Some i -> String.sub r i (upto_char ',' i - i)
    | None -> "?"
  in
  let resolved =
    match find {|"resolved":{|} with
    | Some i -> String.sub r i (upto_char '}' i - i + 1)
    | None -> r
  in
  valid ^ " " ^ resolved

let int_field json key =
  let needle = Printf.sprintf "\"%s\":" key in
  let nl = String.length needle in
  let rec go i =
    if i + nl > String.length json then None
    else if String.sub json i nl = needle then begin
      let j = ref (i + nl) in
      while
        !j < String.length json && (json.[!j] = '-' || (json.[!j] >= '0' && json.[!j] <= '9'))
      do
        incr j
      done;
      int_of_string_opt (String.sub json (i + nl) (!j - i - nl))
    end
    else go (i + 1)
  in
  go 0

let recovery_sized ~n_entities ~chunk ~kills ~overhead_entities ~replay_lengths ~json () =
  section
    (Printf.sprintf
       "Recovery: kill -9 a durable crsolved mid-stream, %d Person entities, %d crash(es)"
       n_entities kills);
  let module Cr = Conflict_resolution in
  let seed = 2027 in
  let ds = daemon_person ~n_entities ~seed in
  let sigma = ds.Datagen.Types.sigma and gamma = ds.Datagen.Types.gamma in
  let lines = chunked_stream ds ~chunk ~seed:(seed + 1) in
  let n = List.length lines in
  let n_mutating = List.length (List.filter is_mutating lines) in
  let n_resolves = List.length (List.filter is_resolve lines) in
  let base_config = Cr.Config.(default |> with_session_cap (2 * chunk)) in
  (* --- uninterrupted reference: the same stream, in process, no WAL --- *)
  let reference = Crserver.Daemon.create ~config:base_config ~sigma ~gamma () in
  let expected =
    List.filter_map
      (fun l ->
        let r = fst (Crserver.Daemon.handle_line reference l) in
        if is_resolve l then Some (resolve_core r) else None)
      lines
  in
  (* --- durable daemon in a forked process, crashed at random points --- *)
  let wal_dir = tmp_name "" in
  let socket_path = tmp_name ".sock" in
  let dconfig =
    (* bound outside the local open: the Config accessors of the same
       names would shadow the locals *)
    let wd = wal_dir in
    Cr.Config.(
      base_config
      |> with_wal_dir (Some wd)
      |> with_fsync (Durable.Wal.Interval 0.02)
      |> with_snapshot_every (max 100 (n_mutating / 4)))
  in
  let rng = Random.State.make [| seed |] in
  let kill_at =
    List.init kills (fun _ -> 1 + Random.State.int rng (max 1 (n - 1)))
    |> List.sort_uniq compare
  in
  let pid = ref (fork_daemon ~config:dconfig ~sigma ~gamma ~socket_path) in
  let client =
    Crserver.Client.connect ~retries:40 ~retry_base_ms:15. ~socket_path ()
  in
  let got = ref [] and transport_failures = ref 0 and restarts = ref 0 in
  let t0 = Unix.gettimeofday () in
  List.iteri
    (fun i line ->
      if List.mem i kill_at then begin
        Unix.kill !pid Sys.sigkill;
        reap !pid;
        incr restarts;
        pid := fork_daemon ~config:dconfig ~sigma ~gamma ~socket_path
      end;
      match Crserver.Client.request client line with
      | Ok r -> if is_resolve line then got := resolve_core r :: !got
      | Error _ -> incr transport_failures)
    lines;
  let stream_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  let stats =
    match Crserver.Client.request client "STATS" with
    | Ok s -> s
    | Error m -> failwith ("recovery: STATS after the stream failed: " ^ m)
  in
  let applied = Option.value ~default:(-1) (int_field stats "events_applied") in
  let deduped = Option.value ~default:0 (int_field stats "events_deduped") in
  (match Crserver.Client.request client "SHUTDOWN drain" with
  | Ok _ -> ()
  | Error m -> failwith ("recovery: drain failed: " ^ m));
  reap !pid;
  Crserver.Client.close client;
  let parity = List.rev !got = expected && !transport_failures = 0 in
  let lost = n_mutating - applied in
  claim "recovery: every resolve matches the uninterrupted run across kill -9 restarts"
    parity;
  claim "recovery: no acknowledged event lost (lost_events = 0)" (lost = 0);
  Printf.printf
    "  stream: %d request(s) (%d mutating, %d resolves), %d kill -9 restart(s)\n" n
    n_mutating n_resolves !restarts;
  Printf.printf
    "  parity: %b; applied %d, redeliveries deduped %d, lost %d, client retries %d\n"
    parity applied deduped lost
    (Crserver.Client.retries_used client);
  Printf.printf "  streamed in %.1f ms (%.0f req/s through the crashes)\n" stream_ms
    (1000. *. float_of_int n /. stream_ms);
  rm_rf_dir wal_dir;
  (* --- WAL overhead: req/s and p50 per fsync policy vs no-WAL --- *)
  let ods = daemon_person ~n_entities:overhead_entities ~seed:(seed + 7) in
  let olines =
    chunked_stream ods ~chunk:(max 1 (overhead_entities / 2)) ~seed:(seed + 8)
  in
  let o_sigma = ods.Datagen.Types.sigma and o_gamma = ods.Datagen.Types.gamma in
  let run_overhead fsync =
    let dir = match fsync with None -> None | Some _ -> Some (tmp_name "") in
    let socket_path = tmp_name ".sock" in
    let config =
      let d = dir and f = fsync in
      Cr.Config.(
        match (d, f) with
        | Some d, Some f -> default |> with_wal_dir (Some d) |> with_fsync f
        | _ -> default)
    in
    let pid = fork_daemon ~config ~sigma:o_sigma ~gamma:o_gamma ~socket_path in
    let client =
      Crserver.Client.connect ~retries:20 ~retry_base_ms:20. ~socket_path ()
    in
    let lat = ref [] in
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun l ->
        let t = Unix.gettimeofday () in
        match Crserver.Client.request client l with
        | Ok _ -> lat := (Unix.gettimeofday () -. t) *. 1000. :: !lat
        | Error m -> failwith ("recovery overhead: " ^ m))
      olines;
    let wall = (Unix.gettimeofday () -. t0) *. 1000. in
    ignore (Crserver.Client.request client "SHUTDOWN");
    reap pid;
    Crserver.Client.close client;
    Option.iter rm_rf_dir dir;
    let sorted = Array.of_list !lat in
    Array.sort compare sorted;
    let rps = 1000. *. float_of_int (List.length olines) /. wall in
    (rps, percentile sorted 0.50, percentile sorted 0.99)
  in
  (* Sub-ms requests on a shared host make a single pass noise-bound:
     interleave the configs over several rounds (so a slow period hits
     every config, not one) and keep each config's best pass. *)
  let overhead_passes = 3 in
  let fsyncs =
    [|
      None;
      Some Durable.Wal.Never;
      Some (Durable.Wal.Interval 0.05);
      Some Durable.Wal.Always;
    |]
  in
  let results = Array.make (Array.length fsyncs) (0., 0., 0.) in
  for _ = 1 to overhead_passes do
    Array.iteri
      (fun i f ->
        let ((rps, _, _) as pass) = run_overhead f in
        let best_rps, _, _ = results.(i) in
        if rps > best_rps then results.(i) <- pass)
      fsyncs
  done;
  let base_rps, base_p50, base_p99 = results.(0) in
  let never_rps, never_p50, never_p99 = results.(1) in
  let int_rps, int_p50, int_p99 = results.(2) in
  let alw_rps, alw_p50, alw_p99 = results.(3) in
  let interval_ratio = if base_rps > 0. then int_rps /. base_rps else 0. in
  claim "recovery: fsync=interval sustains >= 0.8x the no-WAL throughput"
    (interval_ratio >= 0.8);
  Printf.printf "  WAL overhead over %d request(s) (socket round trips):\n"
    (List.length olines);
  Printf.printf "    no WAL:         %7.0f req/s  p50 %.3f ms  p99 %.3f ms\n" base_rps
    base_p50 base_p99;
  Printf.printf "    fsync never:    %7.0f req/s  p50 %.3f ms  p99 %.3f ms\n" never_rps
    never_p50 never_p99;
  Printf.printf "    fsync interval: %7.0f req/s  p50 %.3f ms  p99 %.3f ms (%.2fx no-WAL)\n"
    int_rps int_p50 int_p99 interval_ratio;
  Printf.printf "    fsync always:   %7.0f req/s  p50 %.3f ms  p99 %.3f ms\n" alw_rps
    alw_p50 alw_p99;
  (* --- recovery time vs log length, with and without snapshots --- *)
  let mut_entities = max 8 (List.fold_left max 0 replay_lengths / 12) in
  let mds = daemon_person ~n_entities:mut_entities ~seed:(seed + 13) in
  let mut_lines =
    protocol_stream mds
      (Datagen.Update_log.replay
         ~params:
           {
             Datagen.Update_log.default_params with
             seed = seed + 14;
             resolve_rate = 0.;
             tail_reads = 0;
             final_resolve = false;
           }
         mds)
    |> List.filter is_mutating
  in
  let m_sigma = mds.Datagen.Types.sigma and m_gamma = mds.Datagen.Types.gamma in
  let time_recovery len with_snap =
    let dir = tmp_name "" in
    let config =
      let d = dir and every = if with_snap then max 1 (len / 10) else 0 in
      Cr.Config.(
        default
        |> with_wal_dir (Some d)
        |> with_fsync Durable.Wal.Never
        |> with_snapshot_every every)
    in
    let writer = Crserver.Daemon.create ~config ~sigma:m_sigma ~gamma:m_gamma () in
    List.iteri
      (fun i l -> if i < len then ignore (Crserver.Daemon.handle_line writer l))
      mut_lines;
    let t0 = Unix.gettimeofday () in
    let recovered = Crserver.Daemon.create ~config ~sigma:m_sigma ~gamma:m_gamma () in
    let ms = (Unix.gettimeofday () -. t0) *. 1000. in
    ignore (fst (Crserver.Daemon.handle_line recovered "PING"));
    rm_rf_dir dir;
    ms
  in
  let curve =
    List.map
      (fun len ->
        let len = min len (List.length mut_lines) in
        let plain = time_recovery len false in
        let snap = time_recovery len true in
        Printf.printf
          "  recovery of %6d logged event(s): %8.1f ms full replay, %8.1f ms snapshot + tail\n"
          len plain snap;
        (len, plain, snap))
      replay_lengths
  in
  match json with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Printf.fprintf oc
        {|{
  "scenario": "recovery",
  "dataset": "Person",
  "n_entities": %d,
  "requests": %d,
  "mutating_events": %d,
  "resolve_requests": %d,
  "kill_points": %d,
  "restarts": %d,
  "recovered_parity": %b,
  "lost_events": %d,
  "events_applied": %d,
  "redeliveries_deduped": %d,
  "stream_ms": %.1f,
  "wal_overhead": {
    "requests": %d,
    "no_wal": { "requests_per_sec": %.1f, "p50_ms": %.4f, "p99_ms": %.4f },
    "fsync_never": { "requests_per_sec": %.1f, "p50_ms": %.4f, "p99_ms": %.4f },
    "fsync_interval": { "requests_per_sec": %.1f, "p50_ms": %.4f, "p99_ms": %.4f },
    "fsync_always": { "requests_per_sec": %.1f, "p50_ms": %.4f, "p99_ms": %.4f },
    "interval_vs_no_wal": %.3f
  },
  "recovery_time": [%s
  ]
}
|}
        n_entities n n_mutating n_resolves (List.length kill_at) !restarts parity lost
        applied deduped stream_ms (List.length olines) base_rps base_p50 base_p99
        never_rps never_p50 never_p99 int_rps int_p50 int_p99 alw_rps alw_p50 alw_p99
        interval_ratio
        (String.concat ","
           (List.map
              (fun (len, plain, snap) ->
                Printf.sprintf
                  "\n    { \"events\": %d, \"full_replay_ms\": %.1f, \"snapshot_tail_ms\": %.1f }"
                  len plain snap)
              curve));
      close_out oc;
      Printf.printf "  wrote %s\n%!" path

let recovery () =
  recovery_sized ~n_entities:10_000 ~chunk:1000 ~kills:6 ~overhead_entities:600
    ~replay_lengths:[ 2_000; 10_000; 50_000 ]
    ~json:(Some "BENCH_recovery.json") ()

let recovery_smoke () =
  recovery_sized ~n_entities:60 ~chunk:30 ~kills:2 ~overhead_entities:40
    ~replay_lengths:[ 300; 1_500 ]
    ~json:(Some "BENCH_recovery.json") ()

(* ---------------------------------------------------------------- *)
(* Bechamel micro-benchmarks                                        *)
(* ---------------------------------------------------------------- *)

let micro () =
  section "Bechamel micro-benchmarks (ns per run, OLS estimate)";
  let open Bechamel in
  let ds = Datagen.Nba.quick ~n_entities:1 ~seasons:4 () in
  let case = List.hd ds.Datagen.Types.cases in
  let spec = Datagen.Types.spec_of ds case in
  let enc = Crcore.Encode.encode spec in
  let d = Crcore.Deduce.deduce_order enc in
  let known = Crcore.Deduce.true_values d in
  let tests =
    Test.make_grouped ~name:"core"
      [
        Test.make ~name:"encode" (Staged.stage (fun () -> ignore (Crcore.Encode.encode spec)));
        Test.make ~name:"isvalid" (Staged.stage (fun () -> ignore (Crcore.Validity.check enc)));
        Test.make ~name:"deduce_order"
          (Staged.stage (fun () -> ignore (Crcore.Deduce.deduce_order enc)));
        Test.make ~name:"suggest"
          (Staged.stage (fun () -> ignore (Crcore.Rules.suggest d ~known)));
        Test.make ~name:"pick" (Staged.stage (fun () -> ignore (Crcore.Pick.run spec)));
      ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols instance raw in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) -> Printf.printf "  %-24s %12.0f ns/run\n" name est
      | _ -> Printf.printf "  %-24s (no estimate)\n" name)
    results

(* ---------------------------------------------------------------- *)
(* driver                                                           *)
(* ---------------------------------------------------------------- *)

let experiments =
  [
    ("fig8a", fig8a); ("fig8b", fig8b); ("fig8c", fig8c); ("fig8d", fig8d);
    ("fig8e", fig8e); ("fig8f", fig8f); ("fig8g", fig8g); ("fig8h", fig8h);
    ("fig8i", fig8i); ("fig8j", fig8j); ("fig8k", fig8k); ("fig8l", fig8l);
    ("fig8m", fig8m); ("fig8n", fig8n); ("fig8o", fig8o); ("fig8p", fig8p);
    ("summary", summary);
    ("batch", batch);
    ("batch2k", batch2k);
    ("batch_smoke", batch_smoke);
    ("par", par);
    ("par_smoke", par_smoke);
    ("deduce", deduce);
    ("deduce_smoke", deduce_smoke);
    ("saturate", saturate);
    ("saturate_smoke", saturate_smoke);
    ("satcore", satcore);
    ("satcore_smoke", satcore_smoke);
    ("lint", lint);
    ("lint_smoke", lint_smoke);
    ("robustness", robustness);
    ("robustness_smoke", robustness_smoke);
    ("daemon", daemon);
    ("daemon_smoke", daemon_smoke);
    ("recovery", recovery);
    ("recovery_smoke", recovery_smoke);
    ("ablation_encoding", ablation_encoding);
    ("ablation_clique", ablation_clique);
    ("ablation_maxsat", ablation_maxsat);
    ("micro", micro);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let selected =
    match args with
    | [] ->
        List.filter
          (fun (n, _) ->
            n <> "micro" && n <> "batch_smoke" && n <> "lint_smoke" && n <> "par_smoke"
            && n <> "deduce_smoke" && n <> "saturate_smoke" && n <> "satcore_smoke"
            && n <> "robustness_smoke" && n <> "daemon_smoke" && n <> "recovery_smoke")
          experiments
    | names ->
        List.map
          (fun n ->
            match List.assoc_opt n experiments with
            | Some f -> (n, f)
            | None ->
                Printf.eprintf "unknown experiment %S; known: %s\n" n
                  (String.concat ", " (List.map fst experiments));
                exit 2)
          names
  in
  let t0 = Sys.time () in
  List.iter (fun (_, f) -> f ()) selected;
  Printf.printf "\n(total bench time: %.1f s)\n" (Sys.time () -. t0);
  match List.rev !failures with
  | [] -> ()
  | fs ->
      Printf.eprintf "\n%d bench disagreement(s):\n" (List.length fs);
      List.iter (fun f -> Printf.eprintf "  FAIL %s\n" f) fs;
      exit 1
