(* Quickstart: the paper's running example (ICDE 2013, Examples 1-13).

   Two entities extracted from the "V-J Day in Times Square" photo
   metadata: nurse Edith Shain and sailor George Mendonça. Their tuples
   conflict and carry no timestamps; currency constraints and constant
   CFDs recover the true values.

   Everything below goes through [Conflict_resolution], the stable API
   facade — the one module applications are meant to program against.

   Run with: dune exec examples/quickstart.exe *)

open Conflict_resolution

let schema =
  Schema.make [ "name"; "status"; "job"; "kids"; "city"; "AC"; "zip"; "county" ]

let tup l = Tuple.make schema (List.map Value.of_string l)

let edith =
  Entity.make schema
    [
      tup [ "Edith Shain"; "working"; "nurse"; "0"; "NY"; "212"; "10036"; "Manhattan" ];
      tup [ "Edith Shain"; "retired"; "n/a"; "3"; "SFC"; "415"; "94924"; "Dogtown" ];
      tup [ "Edith Shain"; "deceased"; "n/a"; "null"; "LA"; "213"; "90058"; "Vermont" ];
    ]

let george =
  Entity.make schema
    [
      tup [ "George"; "working"; "sailor"; "0"; "Newport"; "401"; "02840"; "Rhode Island" ];
      tup [ "George"; "retired"; "veteran"; "2"; "NY"; "212"; "12404"; "Accord" ];
      tup [ "George"; "unemployed"; "n/a"; "2"; "Chicago"; "312"; "60653"; "Bronzeville" ];
    ]

(* Fig. 3 of the paper: currency constraints ϕ1–ϕ8 ... *)
let sigma =
  List.map Constraint_parser.parse_exn
    [
      {|t1[status] = "working" & t2[status] = "retired" -> prec(status)|};
      {|t1[status] = "retired" & t2[status] = "deceased" -> prec(status)|};
      {|t1[job] = "sailor" & t2[job] = "veteran" -> prec(job)|};
      {|t1[kids] < t2[kids] -> prec(kids)|};
      {|prec(status) -> prec(job)|};
      {|prec(status) -> prec(AC)|};
      {|prec(status) -> prec(zip)|};
      {|prec(city) & prec(zip) -> prec(county)|};
    ]

(* ... and constant CFDs ψ1, ψ2 *)
let gamma =
  List.map Constant_cfd.parse_exn
    [ {|AC = 213 -> city = "LA"|}; {|AC = 212 -> city = "NY"|} ]

let print_resolution name entity (o : Framework.outcome) =
  Printf.printf "%s  (valid spec: %b, user interactions: %d)\n" name
    o.Framework.valid o.Framework.rounds;
  List.iteri
    (fun a attr ->
      let values =
        Entity.active_domain entity a |> List.map Value.to_string |> String.concat " | "
      in
      Printf.printf "  %-8s %-34s -> %s\n" attr
        (Printf.sprintf "{ %s }" values)
        (match o.Framework.resolved.(a) with
        | Some v -> Value.to_string v
        | None -> "(undetermined)"))
    (Schema.attr_names schema);
  print_newline ()

let () =
  print_endline "== Conflict resolution via data currency + consistency ==\n";

  (* Edith: everything is deducible automatically (paper Example 2) *)
  let spec_e = Spec.make edith ~orders:[] ~sigma ~gamma in
  let o_e = Framework.resolve ~user:Framework.silent spec_e in
  print_resolution "Edith Shain — fully automatic" edith o_e;

  (* George without help: only name and kids (paper Example 4) *)
  let spec_g = Spec.make george ~orders:[] ~sigma ~gamma in
  let o_g0 = Framework.resolve ~user:Framework.silent spec_g in
  print_resolution "George Mendonça — no user input" george o_g0;

  (* what would the framework ask? (paper Example 12) *)
  let enc = Encode.encode spec_g in
  let d = Deduce.deduce_order enc in
  let known = Deduce.true_values d in
  let s = Rules.suggest d ~known in
  Printf.printf "Suggestion for George: provide true values for [%s]\n"
    (String.concat "; " (List.map (Schema.name schema) s.Rules.attrs));
  List.iter
    (fun (a, vals) ->
      Printf.printf "  candidates for %s: %s\n" (Schema.name schema a)
        (String.concat " | " (List.map Value.to_string vals)))
    s.Rules.candidates;
  Printf.printf "  (then %s follow automatically)\n\n"
    (String.concat ", " (List.map (Schema.name schema) s.Rules.derivable));

  (* George with a (simulated) user who knows he retired (Example 6/9) *)
  let truth =
    tup [ "George"; "retired"; "veteran"; "2"; "NY"; "212"; "12404"; "Accord" ]
  in
  let o_g1 = Framework.resolve ~user:(Framework.oracle truth) spec_g in
  print_resolution "George Mendonça — after 1 interaction" george o_g1;

  (* both entities in one call: the batch engine shares one encoding
     cache and reports aggregate phase/solver statistics *)
  let items =
    [
      { Engine.label = "edith"; spec = spec_e; user = Framework.silent };
      { Engine.label = "george"; spec = spec_g; user = Framework.oracle truth };
    ]
  in
  let _, stats = Engine.run_batch items in
  Format.printf "Batch of both entities via Engine.run_batch:@.%a@.@." Engine.pp_stats
    stats;

  (* contrast with the traditional baseline *)
  let picked = Pick.run spec_g in
  Printf.printf "Pick baseline for George: (%s)\n"
    (String.concat ", " (Array.to_list (Array.map Value.to_string picked)))
