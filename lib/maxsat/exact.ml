type outcome = { model : bool array; satisfied : int }

let count_satisfied model soft =
  List.length (List.filter (Sat.Cnf.eval_clause model) soft)

let restrict model n = Array.init n (fun v -> if v < Array.length model then model.(v) else false)

let solve ~(hard : Sat.Cnf.t) ~(soft : Sat.Cnf.clause list) =
  let n0 = hard.Sat.Cnf.nvars in
  let s = Sat.Solver.create () in
  Sat.Solver.add_cnf s hard;
  match Sat.Solver.solve s with
  | Sat.Solver.Unsat -> None
  | Sat.Solver.Sat ->
      if soft = [] then Some { model = restrict (Sat.Solver.model s) n0; satisfied = 0 }
      else begin
        (* relax each soft clause *)
        let relax =
          List.map
            (fun c ->
              let r = Sat.Solver.new_var s in
              Sat.Solver.add_clause_a s (Array.append c [| Sat.Lit.pos r |]);
              Sat.Lit.pos r)
            soft
        in
        let outs = Totalizer.encode s relax in
        (match Sat.Solver.solve s with
        | Sat.Solver.Unsat ->
            (* cannot happen: all relaxation variables true satisfies softs *)
            assert false
        | Sat.Solver.Sat -> ());
        let nsoft = List.length soft in
        let best = ref (Sat.Solver.model s) in
        let best_violated = ref (nsoft - count_satisfied !best soft) in
        let continue_search = ref (!best_violated > 0) in
        while !continue_search do
          let k = !best_violated - 1 in
          match Sat.Solver.solve_limited ~assumptions:[ Sat.Lit.negate outs.(k) ] s with
          | Sat.Solver.Limited.Unsat -> continue_search := false
          | Sat.Solver.Limited.Unknown -> continue_search := false
          | Sat.Solver.Limited.Sat ->
              let m = Sat.Solver.model s in
              let v = nsoft - count_satisfied m soft in
              (* assuming ¬outs.(k) forces at most k violations, so progress
                 is guaranteed; guard against non-termination anyway *)
              if v >= !best_violated then continue_search := false
              else begin
                best := m;
                best_violated := v;
                if v = 0 then continue_search := false
              end
        done;
        Some { model = restrict !best n0; satisfied = nsoft - !best_violated }
      end

(* Group MaxSAT layered onto a live solver already holding the hard
   clauses, leaving the solver reusable afterwards. Every clause added —
   selector-guarded group clauses (c ∨ ¬sel), relaxed soft units
   (sel ∨ r), the totalizer over the r's — is a satisfiable extension of
   the solver's clause set (set every sel false and every r true), so
   models restricted to the pre-existing variables are unchanged and
   later phases (validity re-solves, backbone deduction) on the same
   session stay sound; the optimum is enforced per call through
   assumptions only.

   The kept set is extracted by a lexicographic-greedy pass under the
   optimal bound rather than read off the optimal model: which optimal
   subset a plain solve lands on depends on solver history (activity,
   saved phases), and a shared session has plenty — the greedy pass makes
   the answer a function of the groups alone, so incremental and
   from-scratch configurations agree. *)
let solve_groups_on ~solver:s ~(groups : Sat.Cnf.clause list list) =
  let ngroups = List.length groups in
  if ngroups = 0 then (match Sat.Solver.solve_limited s with
    | Sat.Solver.Limited.Unsat -> None
    | Sat.Solver.Limited.Sat -> Some ([], true)
    | Sat.Solver.Limited.Unknown -> Some ([], false))
  else begin
    let first_aux = Sat.Solver.nvars s in
    let sels =
      List.map
        (fun cls ->
          let sv = Sat.Solver.new_var s in
          List.iter
            (fun c -> Sat.Solver.add_clause_a s (Array.append c [| Sat.Lit.neg_of sv |]))
            cls;
          sv)
        groups
    in
    let relax =
      List.map
        (fun sv ->
          let r = Sat.Solver.new_var s in
          Sat.Solver.add_clause s [ Sat.Lit.pos sv; Sat.Lit.pos r ];
          Sat.Lit.pos r)
        sels
    in
    let outs = Totalizer.encode s relax in
    (* selector / relaxation / totalizer variables are assumed and read
       back below, possibly after the host session simplifies the shared
       solver again: freeze the whole auxiliary range so bounded variable
       elimination can never touch it *)
    for v = first_aux to Sat.Solver.nvars s - 1 do
      Sat.Solver.freeze s v
    done;
    match Sat.Solver.solve_limited s with
    | Sat.Solver.Limited.Unsat -> None
    | Sat.Solver.Limited.Unknown ->
        (* budget spent before any model: keep nothing, avowedly suboptimal *)
        Some ([], false)
    | Sat.Solver.Limited.Sat ->
        let optimal = ref true in
        let sel_arr = Array.of_list sels in
        let violated_in m =
          Array.fold_left (fun n sv -> if m.(sv) then n else n + 1) 0 sel_arr
        in
        let best_violated = ref (violated_in (Sat.Solver.model s)) in
        let continue_search = ref (!best_violated > 0) in
        while !continue_search do
          let k = !best_violated - 1 in
          match Sat.Solver.solve_limited ~assumptions:[ Sat.Lit.negate outs.(k) ] s with
          | Sat.Solver.Limited.Unsat -> continue_search := false
          | Sat.Solver.Limited.Unknown ->
              (* anytime: stop tightening, extract under the incumbent bound *)
              optimal := false;
              continue_search := false
          | Sat.Solver.Limited.Sat ->
              let v = violated_in (Sat.Solver.model s) in
              (* ¬outs.(k) forces at most k violations, so progress is
                 guaranteed; guard against non-termination anyway *)
              if v >= !best_violated then continue_search := false
              else begin
                best_violated := v;
                if v = 0 then continue_search := false
              end
        done;
        let max_kept = ngroups - !best_violated in
        if max_kept = 0 then Some ([], !optimal)
        else if !best_violated = 0 then Some (List.init ngroups Fun.id, !optimal)
        else begin
          let bound = Sat.Lit.negate outs.(!best_violated) in
          let kept = ref [] in
          let n_kept = ref 0 in
          let i = ref 0 in
          while !i < ngroups && !n_kept < max_kept do
            let assumptions =
              bound :: List.rev_map (fun j -> Sat.Lit.pos sel_arr.(j)) (!i :: !kept)
            in
            (match Sat.Solver.solve_limited ~assumptions s with
            | Sat.Solver.Limited.Sat ->
                kept := !i :: !kept;
                incr n_kept
            | Sat.Solver.Limited.Unsat -> ()
            | Sat.Solver.Limited.Unknown ->
                (* stop extending deterministically: remaining groups are
                   dropped rather than probed with no budget left *)
                optimal := false;
                i := ngroups);
            incr i
          done;
          Some (List.rev !kept, !optimal)
        end
  end

let solve_groups ~(hard : Sat.Cnf.t) ~(groups : Sat.Cnf.clause list list) =
  (* selector variable per group: sel → c for each clause c of the group;
     the soft clauses are the unit selectors. *)
  let n0 = hard.Sat.Cnf.nvars in
  let ngroups = List.length groups in
  let nvars = n0 + ngroups in
  let sel i = Sat.Lit.pos (n0 + i) in
  let hard_clauses =
    List.concat
      (List.mapi
         (fun i cls ->
           List.map (fun c -> Array.append c [| Sat.Lit.negate (sel i) |]) cls)
         groups)
  in
  let hard' = Sat.Cnf.make ~nvars (hard.Sat.Cnf.clauses @ hard_clauses) in
  let soft = List.init ngroups (fun i -> [| sel i |]) in
  match solve ~hard:hard' ~soft with
  | None -> None
  | Some { model; satisfied = _ } ->
      (* [model] is restricted to [nvars]; re-extract which groups hold *)
      let holds i = model.(n0 + i) in
      let sat_groups = List.init ngroups (fun i -> i) |> List.filter holds in
      Some (restrict model n0, sat_groups)
