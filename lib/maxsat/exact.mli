(** Exact partial MaxSAT by SAT-based linear search.

    Each soft clause gets a relaxation variable; a totalizer over the
    relaxation variables lets the search tighten an upper bound on the
    number of violated soft clauses with single-literal assumptions, so
    each improvement step is one incremental call to the CDCL solver. *)

(** Outcome of a MaxSAT call: the model is over the variables of the hard
    formula ([0 .. nvars-1]); [satisfied] counts satisfied soft clauses. *)
type outcome = { model : bool array; satisfied : int }

(** [solve ~hard ~soft] maximises the number of satisfied clauses of [soft]
    subject to [hard]. [None] when [hard] alone is unsatisfiable. Soft
    clauses must use only variables of [hard]. The empty soft clause is
    allowed and never satisfiable. *)
val solve : hard:Sat.Cnf.t -> soft:Sat.Cnf.clause list -> outcome option

(** [solve_groups ~hard ~groups] maximises the number of groups whose
    clauses are {e all} satisfied (group MaxSAT, used by the paper's
    suggestion repair over derivation-rule cliques). Returns the indices of
    satisfied groups together with the model. *)
val solve_groups :
  hard:Sat.Cnf.t ->
  groups:Sat.Cnf.clause list list ->
  (bool array * int list) option

(** [solve_groups_on ~solver ~groups] is group MaxSAT layered onto a live
    incremental [solver] that already holds the hard clauses, leaving the
    solver reusable afterwards: every added clause (selector-guarded group
    clauses, relaxation units, the totalizer) is a satisfiable extension
    of the clause set, and the optimum is enforced through assumptions
    only, so later solves on the same session — validity re-checks,
    backbone deduction — still answer for the original formula.

    Returns [Some (kept, optimal)] — the indices of a maximum subset of
    groups whose clauses are all simultaneously satisfiable with the hard
    clauses — or [None] when the hard clauses alone are unsatisfiable. The
    kept subset is the lexicographically first optimal one (greedy
    extraction under the optimal bound), hence deterministic regardless of
    the solver's history — a session that has already served other phases
    returns the same answer a fresh solver would.

    All internal solves go through {!Sat.Solver.solve_limited}, so a
    conflict budget armed on [solver] by the caller
    ({!Sat.Solver.set_budget}) is honoured with anytime semantics: when
    the budget runs out, tightening and extraction stop deterministically
    and [optimal] is [false]; the kept list is then a consistent (but
    possibly smaller than maximum) subset. [optimal = true] certifies the
    exact group-MaxSAT answer. *)
val solve_groups_on :
  solver:Sat.Solver.t ->
  groups:Sat.Cnf.clause list list ->
  (int list * bool) option
