open Conflict_resolution

(* Per-entity bookkeeping outside the session store: the schema (from
   OPEN), arrivals buffered before the session materialises (entities
   cannot be empty, so creation waits for the first RESOLVE/BASELINE),
   whether a session ever existed — distinguishing "not yet materialised"
   from "evicted, state gone" — and the highest applied client sequence
   number (the at-least-once dedup cursor, persisted in snapshots). *)
type entry = {
  schema : Schema.t;
  mutable pending_tuples : Tuple.t list;  (* reversed arrival order *)
  mutable pending_orders : Spec.order_edge list;
  mutable materialised : bool;
  mutable last_seq : int;
}

type lifecycle = Serving | Draining | Stopped

type outcome = Continue | Drain | Stop

type recovery_stats = {
  mutable performed : bool;
  mutable snapshot_loaded : bool;
  mutable replayed : int;
  mutable segments : int;
  mutable torn : bool;
  mutable rejected : int;
  mutable ms : float;
}

type t = {
  config : Config.t;
  sigma : Constraint_ast.t list;
  gamma : Constant_cfd.t list;
  store : Session.Store.t;
  entries : (string, entry) Hashtbl.t;
  m : Mutex.t;
  mutable wal : Durable.Wal.writer option;
  recovery : recovery_stats;
  (* command counters for STATS *)
  mutable n_requests : int;
  mutable n_resolves : int;
  mutable n_ingests : int;
  baselines : (string, int) Hashtbl.t;  (* per-policy counts *)
  (* durability counters *)
  mutable events_applied : int;  (* unique mutating events folded into state *)
  mutable events_deduped : int;  (* @seq retransmissions answered as dups *)
  mutable events_since_snapshot : int;
  mutable snapshots_taken : int;
  (* lifecycle + admission control *)
  mutable lifecycle : lifecycle;
  drain_flag : bool Atomic.t;  (* async-signal-safe drain/stop requests *)
  stop_flag : bool Atomic.t;
  mutable inflight : int;
  mutable shed : int;  (* OVERLOADED replies *)
  mutable conns_open : int;
  mutable conns_total : int;
  mutable idle_closed : int;
}

let store t = t.store

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

exception Reply of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Reply (Protocol.error msg))) fmt

let find_entry t label =
  match Hashtbl.find_opt t.entries label with
  | Some e -> e
  | None -> fail "unknown entity %s: OPEN it first" label

(* Accumulated spec of everything the daemon has seen for the entry —
   live session state plus any still-buffered arrivals. *)
let effective_spec t label entry =
  let base =
    match Session.Store.find t.store label with
    | Some h -> Some (Session.spec h)
    | None ->
        if entry.materialised then
          fail "entity %s was evicted (LRU/TTL); re-OPEN and replay" label
        else None
  in
  let tuples = List.rev entry.pending_tuples in
  match base with
  | Some spec when tuples = [] && entry.pending_orders = [] -> spec
  | Some spec ->
      let entity = Entity.make entry.schema (Entity.tuples spec.Spec.entity @ tuples) in
      Spec.make entity
        ~orders:(entry.pending_orders @ spec.Spec.orders)
        ~sigma:spec.Spec.sigma ~gamma:spec.Spec.gamma
  | None ->
      if tuples = [] then fail "entity %s has no tuples yet" label
      else
        let entity = Entity.make entry.schema tuples in
        Spec.make entity ~orders:entry.pending_orders ~sigma:t.sigma ~gamma:t.gamma

(* Live session for the entry, creating it from (or flushing into it) the
   buffered arrivals. Caller holds [t.m]. *)
let materialise t label entry =
  let flush h =
    let tuples = List.rev entry.pending_tuples and orders = entry.pending_orders in
    if tuples <> [] || orders <> [] then Session.ingest h ~orders ~tuples ();
    entry.pending_tuples <- [];
    entry.pending_orders <- []
  in
  match Session.Store.find t.store label with
  | Some h ->
      flush h;
      h
  | None ->
      if entry.materialised then
        fail "entity %s was evicted (LRU/TTL); re-OPEN and replay" label;
      if entry.pending_tuples = [] then fail "entity %s has no tuples yet" label;
      let spec () =
        let entity = Entity.make entry.schema (List.rev entry.pending_tuples) in
        match
          Spec.make_res entity ~orders:entry.pending_orders ~sigma:t.sigma ~gamma:t.gamma
        with
        | Ok s -> s
        | Error e -> failwith (Format.asprintf "bad specification: %a" Spec.pp_error e)
      in
      let h, created = Session.Store.get_or_create t.store label ~spec in
      if created then begin
        entry.pending_tuples <- [];
        entry.pending_orders <- [];
        entry.materialised <- true
      end
      else flush h;
      h

(* {1 Applying mutating events}

   One code path serves both the live protocol and WAL replay: validate,
   mutate, and (live only) append the event to the WAL before the reply
   is released — recovery re-runs exactly the computation the original
   request ran. Callers hold [t.m]. *)

let apply_open t ~label ~header =
  let schema =
    try Schema.make header with Invalid_argument m -> fail "OPEN %s: %s" label m
  in
  (* reopening resets the entity: fresh schema, no arrivals, and any live
     session is dropped — but the dedup cursor survives, so a stale
     retransmitted OPEN can never wipe newer state *)
  ignore (Session.Store.remove t.store label);
  let last_seq =
    match Hashtbl.find_opt t.entries label with Some e -> e.last_seq | None -> 0
  in
  Hashtbl.replace t.entries label
    { schema; pending_tuples = []; pending_orders = []; materialised = false; last_seq };
  Protocol.ok
    [ ("label", Protocol.jstr label); ("arity", Protocol.jint (Schema.arity schema)) ]

let apply_ingest t ~label ~row =
  let entry = find_entry t label in
  if List.length row <> Schema.arity entry.schema then
    fail "INGEST %s: row arity %d, schema arity %d" label (List.length row)
      (Schema.arity entry.schema);
  let tuple = Tuple.make entry.schema (List.map Value.of_string row) in
  t.n_ingests <- t.n_ingests + 1;
  (match Session.Store.find t.store label with
  | Some h -> Session.ingest h ~tuples:[ tuple ] ()
  | None ->
      if entry.materialised then
        fail "entity %s was evicted (LRU/TTL); re-OPEN and replay" label;
      entry.pending_tuples <- tuple :: entry.pending_tuples);
  Protocol.ok [ ("label", Protocol.jstr label) ]

let apply_order t ~label ~attr ~lo ~hi =
  let entry = find_entry t label in
  if not (Schema.mem entry.schema attr) then fail "ORDER %s: unknown attribute %s" label attr;
  let edge = { Spec.attr; lo; hi } in
  (match Session.Store.find t.store label with
  | Some h -> Session.ingest h ~orders:[ edge ] ()
  | None ->
      if entry.materialised then
        fail "entity %s was evicted (LRU/TTL); re-OPEN and replay" label;
      entry.pending_orders <- edge :: entry.pending_orders);
  Protocol.ok [ ("label", Protocol.jstr label) ]

let apply_close t ~label =
  let existed = Session.Store.remove t.store label in
  let known = Hashtbl.mem t.entries label in
  Hashtbl.remove t.entries label;
  Protocol.ok [ ("label", Protocol.jstr label); ("existed", Protocol.jbool (existed || known)) ]

(* {1 Snapshots} *)

let order_triples = List.map (fun o -> (o.Spec.attr, o.Spec.lo, o.Spec.hi))

(* The replayable state of one entry, mirroring [effective_spec]: tuples
   in arrival order, order edges exactly as they would be passed to
   [Spec.make] — restoring them as pending state and re-materialising on
   the first resolve rebuilds a bit-identical specification. *)
let snapshot_entry t label (e : entry) =
  let header = List.init (Schema.arity e.schema) (Schema.name e.schema) in
  let buffered = List.rev_map Tuple.values e.pending_tuples in
  let state =
    match Session.Store.find t.store label with
    | Some h ->
        let spec = Session.spec h in
        Durable.Snapshot.Replayable
          {
            tuples =
              List.map Tuple.values (Entity.tuples spec.Spec.entity) @ buffered;
            orders = order_triples (e.pending_orders @ spec.Spec.orders);
          }
    | None ->
        if e.materialised then Durable.Snapshot.Evicted
        else
          Durable.Snapshot.Replayable
            { tuples = buffered; orders = order_triples e.pending_orders }
  in
  { Durable.Snapshot.label; header; last_seq = e.last_seq; state }

(* Caller holds [t.m]. Rotate first: the snapshot then covers every
   closed segment, and the live segment only holds events newer than the
   snapshot — replay is snapshot + tail, never snapshot + overlap. *)
let take_snapshot_locked t =
  match (t.wal, Config.wal_dir t.config) with
  | Some w, Some dir ->
      let upto = Durable.Wal.rotate w in
      let entries =
        Hashtbl.fold (fun label e acc -> snapshot_entry t label e :: acc) t.entries []
        |> List.sort (fun a b ->
               compare a.Durable.Snapshot.label b.Durable.Snapshot.label)
      in
      (try
         ignore
           (Durable.Snapshot.save ~dir
              { Durable.Snapshot.upto; events_applied = t.events_applied; entries });
         ignore (Durable.Wal.remove_upto ~dir upto);
         ignore (Durable.Snapshot.remove_except ~dir ~keep:upto)
       with Sys_error _ | Unix.Unix_error _ -> ());
      t.events_since_snapshot <- 0;
      t.snapshots_taken <- t.snapshots_taken + 1
  | _ -> ()

(* Caller holds [t.m]. [log = false] during recovery: the event is being
   read back from disk, not appended. Raises [Reply] on validation
   failure (nothing is logged then — the WAL only holds applied events). *)
let apply_event t ?seq ~log (ev : Durable.Wal.event) =
  let label =
    match ev with
    | Durable.Wal.Open { label; _ }
    | Durable.Wal.Ingest { label; _ }
    | Durable.Wal.Order { label; _ } ->
        label
    | Durable.Wal.Close label -> label
  in
  let dup =
    match (seq, Hashtbl.find_opt t.entries label) with
    | Some s, Some e -> s <= e.last_seq
    | _ -> false
  in
  if dup then begin
    t.events_deduped <- t.events_deduped + 1;
    Protocol.ok [ ("label", Protocol.jstr label); ("dup", "true") ]
  end
  else begin
    let response =
      match ev with
      | Durable.Wal.Open { label; header } -> apply_open t ~label ~header
      | Durable.Wal.Ingest { label; row } -> apply_ingest t ~label ~row
      | Durable.Wal.Order { label; attr; lo; hi } -> apply_order t ~label ~attr ~lo ~hi
      | Durable.Wal.Close label -> apply_close t ~label
    in
    (match (seq, Hashtbl.find_opt t.entries label) with
    | Some s, Some e -> e.last_seq <- max e.last_seq s
    | _ -> ());
    (if log then
       match t.wal with
       | Some w -> Durable.Wal.append w { Durable.Wal.seq; event = ev }
       | None -> ());
    t.events_applied <- t.events_applied + 1;
    t.events_since_snapshot <- t.events_since_snapshot + 1;
    let every = Config.snapshot_every t.config in
    if log && every > 0 && t.events_since_snapshot >= every then
      take_snapshot_locked t;
    response
  end

(* {1 Recovery} *)

let restore_snapshot t (s : Durable.Snapshot.t) =
  t.recovery.snapshot_loaded <- true;
  t.events_applied <- s.Durable.Snapshot.events_applied;
  List.iter
    (fun (se : Durable.Snapshot.entry) ->
      match
        let schema = Schema.make se.Durable.Snapshot.header in
        let entry =
          match se.Durable.Snapshot.state with
          | Durable.Snapshot.Evicted ->
              {
                schema;
                pending_tuples = [];
                pending_orders = [];
                materialised = true;
                last_seq = se.Durable.Snapshot.last_seq;
              }
          | Durable.Snapshot.Replayable { tuples; orders } ->
              {
                schema;
                (* stored in arrival order; pending is reverse-arrival *)
                pending_tuples = List.rev_map (Tuple.make schema) tuples;
                pending_orders =
                  List.map (fun (attr, lo, hi) -> { Spec.attr; lo; hi }) orders;
                materialised = false;
                last_seq = se.Durable.Snapshot.last_seq;
              }
        in
        Hashtbl.replace t.entries se.Durable.Snapshot.label entry
      with
      | () -> ()
      | exception (Invalid_argument _ | Failure _) ->
          t.recovery.rejected <- t.recovery.rejected + 1)
    s.Durable.Snapshot.entries

(* Rebuild state from the newest intact snapshot plus the WAL tail, then
   compact so the next crash replays from here. Entities come back as
   unmaterialised pending state — sessions (and their solvers) rebuild
   lazily on the first post-recovery resolve, through the very same
   [materialise] path a fresh stream would take. *)
let recover t dir =
  let t0 = Unix.gettimeofday () in
  locked t (fun () ->
      let above =
        match Durable.Snapshot.load_latest ~dir with
        | None -> 0
        | Some s ->
            restore_snapshot t s;
            s.Durable.Snapshot.upto
      in
      let rep =
        Durable.Wal.replay ~dir ~above ~repair:true (fun r ->
            match
              apply_event t ?seq:r.Durable.Wal.seq ~log:false r.Durable.Wal.event
            with
            | (_ : string) -> ()
            | exception (Reply _ | Invalid_argument _ | Failure _) ->
                t.recovery.rejected <- t.recovery.rejected + 1)
      in
      t.recovery.performed <- true;
      t.recovery.replayed <- rep.Durable.Wal.records;
      t.recovery.segments <- rep.Durable.Wal.segments;
      t.recovery.torn <- rep.Durable.Wal.torn;
      t.recovery.ms <- (Unix.gettimeofday () -. t0) *. 1000.;
      t.events_since_snapshot <- rep.Durable.Wal.records)

let create ?(config = Config.default) ~sigma ~gamma () =
  let t =
    {
      config;
      sigma;
      gamma;
      store = Session.Store.create ~config ();
      entries = Hashtbl.create 64;
      m = Mutex.create ();
      wal = None;
      recovery =
        {
          performed = false;
          snapshot_loaded = false;
          replayed = 0;
          segments = 0;
          torn = false;
          rejected = 0;
          ms = 0.;
        };
      n_requests = 0;
      n_resolves = 0;
      n_ingests = 0;
      baselines = Hashtbl.create 8;
      events_applied = 0;
      events_deduped = 0;
      events_since_snapshot = 0;
      snapshots_taken = 0;
      lifecycle = Serving;
      drain_flag = Atomic.make false;
      stop_flag = Atomic.make false;
      inflight = 0;
      shed = 0;
      conns_open = 0;
      conns_total = 0;
      idle_closed = 0;
    }
  in
  (match Config.wal_dir config with
  | None -> ()
  | Some dir ->
      recover t dir;
      t.wal <-
        Some (Durable.Wal.open_writer ~fsync:(Config.fsync config) ~dir ());
      (* compact immediately: repeated crashes must not re-replay an
         ever-longer history *)
      if t.recovery.replayed > 0 then locked t (fun () -> take_snapshot_locked t));
  t

(* {1 Lifecycle} *)

(* Only flips atomics — safe from signal handlers; [serve] and the
   connection threads translate the flags into lifecycle transitions. *)
let drain t = Atomic.set t.drain_flag true
let stop t = Atomic.set t.stop_flag true

let sync_lifecycle t =
  if Atomic.get t.stop_flag then
    locked t (fun () -> if t.lifecycle <> Stopped then t.lifecycle <- Stopped)
  else if Atomic.get t.drain_flag then
    locked t (fun () -> if t.lifecycle = Serving then t.lifecycle <- Draining)

(* {1 Read-only responses} *)

let json_of_value = function
  | Value.Null -> "null"
  | Value.Int i -> Protocol.jint i
  | Value.Float f -> Protocol.jnum f
  | Value.Str s -> Protocol.jstr s

let resolved_json schema resolved =
  Protocol.obj
    (List.mapi
       (fun i v ->
         (Schema.name schema i, match v with None -> "null" | Some v -> json_of_value v))
       (Array.to_list resolved))

let values_json schema values =
  Protocol.obj
    (List.mapi
       (fun i v -> (Schema.name schema i, json_of_value v))
       (Array.to_list values))

let result_json label schema (r : Engine.result) (st : Engine.entity_stats) resolves =
  Protocol.ok
    [
      ("label", Protocol.jstr label);
      ("valid", Protocol.jbool r.Engine.valid);
      ("level", Protocol.jstr (Engine.level_to_string r.Engine.level));
      ( "degrade_reason",
        match r.Engine.degrade_reason with
        | None -> "null"
        | Some reason -> Protocol.jstr (Engine.reason_to_string reason) );
      ("rounds", Protocol.jint r.Engine.rounds);
      ("conflicts_spent", Protocol.jint r.Engine.conflicts_spent);
      ("resolved", resolved_json schema r.Engine.resolved);
      ("resolves", Protocol.jint resolves);
      ("delta_extensions", Protocol.jint st.Engine.delta_extensions);
      ("rebuilds", Protocol.jint st.Engine.rebuilds);
      ("solvers_built", Protocol.jint st.Engine.solvers_built);
    ]

let stats_json t =
  let s = Session.Store.stats t.store in
  let baselines =
    Hashtbl.fold (fun p n acc -> (p, Protocol.jint n) :: acc) t.baselines []
    |> List.sort compare
  in
  Protocol.ok
    [
      ("live", Protocol.jint s.Session.Store.live);
      ("created", Protocol.jint s.Session.Store.created);
      ("reused", Protocol.jint s.Session.Store.reused);
      ("evicted_lru", Protocol.jint s.Session.Store.evicted_lru);
      ("evicted_ttl", Protocol.jint s.Session.Store.evicted_ttl);
      ("removed", Protocol.jint s.Session.Store.removed);
      ("resolves", Protocol.jint s.Session.Store.resolves);
      ("delta_extensions", Protocol.jint s.Session.Store.delta_extensions);
      ( "rebuilds",
        Protocol.jint
          (s.Session.Store.rebuilds_renumbered + s.Session.Store.rebuilds_impure) );
      ("solvers_built", Protocol.jint s.Session.Store.solvers_built);
      ("template_hits", Protocol.jint s.Session.Store.template_hits);
      ("template_misses", Protocol.jint s.Session.Store.template_misses);
      ("instantiations", Protocol.jint s.Session.Store.instantiations);
      (* clause-database management counters, summed over live and
         already-evicted sessions like the rest *)
      ("sat_conflicts", Protocol.jint s.Session.Store.sat.Sat.Solver.conflicts);
      ("sat_learnts_kept", Protocol.jint s.Session.Store.sat.Sat.Solver.learnts_kept);
      ( "sat_learnts_deleted",
        Protocol.jint s.Session.Store.sat.Sat.Solver.learnts_deleted );
      ( "sat_lbd_avg",
        Printf.sprintf "%.3f" (Sat.Solver.lbd_avg s.Session.Store.sat) );
      ("sat_binaries", Protocol.jint s.Session.Store.sat.Sat.Solver.binaries);
      ("sat_subsumed", Protocol.jint s.Session.Store.sat.Sat.Solver.subsumed);
      ( "sat_vars_eliminated",
        Protocol.jint s.Session.Store.sat.Sat.Solver.vars_eliminated );
      ( "sat_vars_substituted",
        Protocol.jint s.Session.Store.sat.Sat.Solver.vars_substituted );
      ( "sat_simplify_ms",
        Printf.sprintf "%.3f" s.Session.Store.sat.Sat.Solver.simplify_ms );
      ("requests", Protocol.jint t.n_requests);
      ("resolve_requests", Protocol.jint t.n_resolves);
      ("ingest_requests", Protocol.jint t.n_ingests);
      ("baselines", Protocol.obj baselines);
      (* durability + connection counters *)
      ("events_applied", Protocol.jint t.events_applied);
      ("events_deduped", Protocol.jint t.events_deduped);
      ("snapshots", Protocol.jint t.snapshots_taken);
      ( "wal_appended",
        Protocol.jint
          (match t.wal with None -> 0 | Some w -> Durable.Wal.appended w) );
      ("connections_open", Protocol.jint t.conns_open);
      ("connections_total", Protocol.jint t.conns_total);
      ("idle_closed", Protocol.jint t.idle_closed);
      ("shed", Protocol.jint t.shed);
    ]

let lifecycle_string = function
  | Serving -> "serving"
  | Draining -> "draining"
  | Stopped -> "stopped"

let health_json t =
  let wal_fields =
    match t.wal with
    | None -> [ ("enabled", "false") ]
    | Some w ->
        [
          ("enabled", "true");
          ("fsync", Protocol.jstr (Durable.Wal.fsync_to_string (Config.fsync t.config)));
          ("segment", Protocol.jint (Durable.Wal.current_segment w));
          ("appended", Protocol.jint (Durable.Wal.appended w));
          ("lag_records", Protocol.jint (Durable.Wal.unsynced w));
          ("last_sync_age_s", Protocol.jnum (Durable.Wal.last_sync_age w));
        ]
  in
  let r = t.recovery in
  Protocol.ok
    [
      ("status", Protocol.jstr (lifecycle_string t.lifecycle));
      ("wal", Protocol.obj wal_fields);
      ( "recovery",
        Protocol.obj
          [
            ("performed", Protocol.jbool r.performed);
            ("snapshot_loaded", Protocol.jbool r.snapshot_loaded);
            ("wal_records_replayed", Protocol.jint r.replayed);
            ("wal_segments", Protocol.jint r.segments);
            ("torn_tail_repaired", Protocol.jbool r.torn);
            ("rejected", Protocol.jint r.rejected);
            ("recovery_ms", Protocol.jnum r.ms);
          ] );
      ("store_live", Protocol.jint (Session.Store.live t.store));
      ("store_cap", Protocol.jint (Config.max_sessions t.config));
      ("entries", Protocol.jint (Hashtbl.length t.entries));
      ("events_applied", Protocol.jint t.events_applied);
      ("events_deduped", Protocol.jint t.events_deduped);
      ("snapshots", Protocol.jint t.snapshots_taken);
      ("inflight", Protocol.jint t.inflight);
      ("max_inflight", Protocol.jint (Config.max_inflight t.config));
      ("shed", Protocol.jint t.shed);
      ("connections_open", Protocol.jint t.conns_open);
      ("connections_total", Protocol.jint t.conns_total);
      ("idle_closed", Protocol.jint t.idle_closed);
    ]

let ready_json t =
  match t.lifecycle with
  | Serving -> Protocol.ok [ ("ready", "true") ]
  | (Draining | Stopped) as l ->
      Protocol.obj
        [
          ("ok", "false");
          ("ready", "false");
          ("error", Protocol.jstr (lifecycle_string l));
        ]

(* {1 Command dispatch} *)

let run_command t ?seq (cmd : Protocol.command) =
  match cmd with
  | Protocol.Ping -> Protocol.ok [ ("pong", "true") ]
  | Protocol.Shutdown { drain } ->
      Protocol.ok [ ("stopping", "true"); ("drain", Protocol.jbool drain) ]
  | Protocol.Stats -> locked t (fun () -> stats_json t)
  | Protocol.Health -> locked t (fun () -> health_json t)
  | Protocol.Ready -> ready_json t
  | Protocol.Sweep ->
      let evicted = Session.Store.sweep t.store in
      Protocol.ok [ ("evicted", Protocol.jint evicted) ]
  | Protocol.Open { label; header } ->
      locked t (fun () ->
          apply_event t ?seq ~log:true (Durable.Wal.Open { label; header }))
  | Protocol.Ingest { label; row } ->
      locked t (fun () ->
          apply_event t ?seq ~log:true (Durable.Wal.Ingest { label; row }))
  | Protocol.Order { label; attr; lo; hi } ->
      locked t (fun () ->
          apply_event t ?seq ~log:true (Durable.Wal.Order { label; attr; lo; hi }))
  | Protocol.Close label ->
      locked t (fun () -> apply_event t ?seq ~log:true (Durable.Wal.Close label))
  | Protocol.Resolve label ->
      let h = locked t (fun () -> materialise t label (find_entry t label)) in
      (* the solve itself runs outside the daemon lock: the handle has its
         own mutex, so other connections keep streaming meanwhile *)
      let r, st = Session.resolve h in
      locked t (fun () -> t.n_resolves <- t.n_resolves + 1);
      result_json label (Spec.schema (Session.spec h)) r st (Session.resolves h)
  | Protocol.Baseline { label; policy } ->
      let strategy =
        match policy with
        | None -> (Config.to_engine t.config).Engine.pick_strategy
        | Some p -> (
            match Pick.strategy_of_string p with
            | Some s -> s
            | None -> fail "BASELINE %s: unknown policy %s" label p)
      in
      locked t (fun () ->
          let entry = find_entry t label in
          (* no solver, no materialisation: Pick policies answer from the
             accumulated spec directly — the cheap BDR-style path *)
          let spec = effective_spec t label entry in
          let values = Pick.run ~strategy spec in
          let name = Pick.strategy_to_string strategy in
          Hashtbl.replace t.baselines name
            (1 + Option.value ~default:0 (Hashtbl.find_opt t.baselines name));
          Protocol.ok
            [
              ("label", Protocol.jstr label);
              ("policy", Protocol.jstr name);
              ("values", values_json (Spec.schema spec) values);
            ])

let handle_line t line =
  match Protocol.parse line with
  | Error msg -> (Protocol.error msg, Continue)
  | Ok { Protocol.seq; cmd } ->
      (* Admission gate: liveness probes and SHUTDOWN always pass; other
         work is shed past [max_inflight] (explicit OVERLOADED, bounded
         concurrency) and refused while draining. *)
      let gate =
        locked t (fun () ->
            t.n_requests <- t.n_requests + 1;
            match cmd with
            | Protocol.Ping | Protocol.Health | Protocol.Ready
            | Protocol.Shutdown _ ->
                `Exempt
            | _ when t.lifecycle <> Serving -> `Draining
            | _ ->
                let cap = Config.max_inflight t.config in
                if cap > 0 && t.inflight >= cap then begin
                  t.shed <- t.shed + 1;
                  `Shed
                end
                else begin
                  t.inflight <- t.inflight + 1;
                  `Admitted
                end)
      in
      let outcome =
        match cmd with
        | Protocol.Shutdown { drain = true } -> Drain
        | Protocol.Shutdown { drain = false } -> Stop
        | _ -> Continue
      in
      let response =
        match gate with
        | `Shed -> Protocol.overloaded
        | `Draining -> Protocol.error "draining: not accepting new work"
        | (`Exempt | `Admitted) as g ->
            Fun.protect
              ~finally:(fun () ->
                if g = `Admitted then
                  locked t (fun () -> t.inflight <- t.inflight - 1))
              (fun () ->
                try run_command t ?seq cmd with
                | Reply r -> r
                | Invalid_argument msg | Failure msg -> Protocol.error msg)
      in
      (match outcome with
      | Drain -> drain t
      | Stop -> stop t
      | Continue -> ());
      (response, outcome)

(* {1 Socket serving} *)

let request_many ~socket_path lines =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_UNIX socket_path);
      let ic = Unix.in_channel_of_descr sock and oc = Unix.out_channel_of_descr sock in
      List.map
        (fun line ->
          output_string oc line;
          output_char oc '\n';
          flush oc;
          input_line ic)
        lines)

let request ~socket_path line =
  match request_many ~socket_path [ line ] with
  | [ r ] -> r
  | _ -> assert false

let write_all fd s =
  let b = Bytes.of_string s in
  let total = Bytes.length b in
  let off = ref 0 in
  while !off < total do
    off := !off + Unix.write fd b !off (total - !off)
  done

(* Line-buffered reading over a raw fd so the read can time out (idle
   connections, drain responsiveness) — in_channel buffering cannot be
   mixed with select. *)
let next_line fd pending ~timeout =
  let rec go () =
    let s = Buffer.contents pending in
    match String.index_opt s '\n' with
    | Some i ->
        Buffer.clear pending;
        Buffer.add_substring pending s (i + 1) (String.length s - i - 1);
        `Line (String.sub s 0 i)
    | None -> (
        match Unix.select [ fd ] [] [] timeout with
        | [], _, _ -> `Timeout
        | _ -> (
            let b = Bytes.create 4096 in
            match Unix.read fd b 0 4096 with
            | 0 -> `Eof
            | n ->
                Buffer.add_subbytes pending b 0 n;
                go ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Timeout)
  in
  go ()

let handle_conn t fd =
  locked t (fun () ->
      t.conns_open <- t.conns_open + 1;
      t.conns_total <- t.conns_total + 1);
  let pending = Buffer.create 256 in
  let tick = 0.25 in
  let idle_limit = Config.idle_timeout t.config in
  let idle = ref 0. in
  (* [Fun.protect] guarantees the fd closes and the count drops whatever
     the handler does — a raising handler can no longer leak sockets *)
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      locked t (fun () -> t.conns_open <- t.conns_open - 1))
    (fun () ->
      try
        let connected = ref true in
        while !connected do
          if t.lifecycle = Stopped then connected := false
          else
            match next_line fd pending ~timeout:tick with
            | `Eof -> connected := false
            | `Timeout ->
                (* between requests: drain closes the connection, and so
                   does exceeding the idle timeout *)
                if t.lifecycle <> Serving then connected := false
                else begin
                  idle := !idle +. tick;
                  match idle_limit with
                  | Some limit when !idle >= limit ->
                      locked t (fun () -> t.idle_closed <- t.idle_closed + 1);
                      connected := false
                  | _ -> ()
                end
            | `Line line ->
                idle := 0.;
                let response, outcome = handle_line t line in
                write_all fd (response ^ "\n");
                if outcome <> Continue then connected := false
        done
      with Sys_error _ | Unix.Unix_error _ | End_of_file -> ())

let serve ?(backlog = 64) ?(drain_wait = 10.) t ~socket_path =
  (* a client vanishing mid-write must surface as EPIPE on the handler's
     write, not kill the whole daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX socket_path);
  Unix.listen listener backlog;
  let sweeper =
    match Config.session_ttl t.config with
    | None -> None
    | Some ttl ->
        Some
          (Thread.create
             (fun () ->
               let period = Float.max 0.05 (ttl /. 2.) in
               while t.lifecycle = Serving do
                 Thread.delay period;
                 if t.lifecycle = Serving then ignore (Session.Store.sweep t.store)
               done)
             ())
  in
  let flusher =
    match (t.wal, Config.fsync t.config) with
    | Some w, Durable.Wal.Interval i ->
        Some
          (Thread.create
             (fun () ->
               let period = Float.max 0.01 (i /. 2.) in
               while t.lifecycle <> Stopped do
                 Thread.delay period;
                 Durable.Wal.maybe_flush w
               done)
             ())
    | _ -> None
  in
  let conn_cap =
    match Config.max_inflight t.config with
    | 0 -> max_int
    | cap -> max 64 (4 * cap)
  in
  while
    sync_lifecycle t;
    t.lifecycle = Serving
  do
    match Unix.select [ listener ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept listener with
        | fd, _ ->
            if t.lifecycle <> Serving then (
              try Unix.close fd with Unix.Unix_error _ -> ())
            else if t.conns_open >= conn_cap then begin
              locked t (fun () -> t.shed <- t.shed + 1);
              (try write_all fd (Protocol.overloaded ^ "\n")
               with Unix.Unix_error _ -> ());
              try Unix.close fd with Unix.Unix_error _ -> ()
            end
            else ignore (Thread.create (handle_conn t) fd)
        | exception
            Unix.Unix_error ((Unix.ECONNABORTED | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  (* no new connections from here on *)
  (try Unix.close listener with Unix.Unix_error _ -> ());
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  (* drain: let in-flight requests finish (connection threads close
     themselves once idle), then persist a final snapshot *)
  if t.lifecycle = Draining then begin
    let deadline = Unix.gettimeofday () +. drain_wait in
    while t.conns_open > 0 && Unix.gettimeofday () < deadline do
      Thread.delay 0.05
    done;
    locked t (fun () -> take_snapshot_locked t)
  end;
  (match t.wal with Some w -> Durable.Wal.flush w | None -> ());
  locked t (fun () -> t.lifecycle <- Stopped);
  Option.iter Thread.join sweeper;
  Option.iter Thread.join flusher
