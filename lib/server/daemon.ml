open Conflict_resolution

(* Per-entity bookkeeping outside the session store: the schema (from
   OPEN), arrivals buffered before the session materialises (entities
   cannot be empty, so creation waits for the first RESOLVE/BASELINE),
   and whether a session ever existed — distinguishing "not yet
   materialised" from "evicted, state gone". *)
type entry = {
  schema : Schema.t;
  mutable pending_tuples : Tuple.t list;  (* reversed arrival order *)
  mutable pending_orders : Spec.order_edge list;
  mutable materialised : bool;
}

type t = {
  config : Config.t;
  sigma : Constraint_ast.t list;
  gamma : Constant_cfd.t list;
  store : Session.Store.t;
  entries : (string, entry) Hashtbl.t;
  m : Mutex.t;
  (* command counters for STATS *)
  mutable n_requests : int;
  mutable n_resolves : int;
  mutable n_ingests : int;
  baselines : (string, int) Hashtbl.t;  (* per-policy counts *)
}

let create ?(config = Config.default) ~sigma ~gamma () =
  {
    config;
    sigma;
    gamma;
    store = Session.Store.create ~config ();
    entries = Hashtbl.create 64;
    m = Mutex.create ();
    n_requests = 0;
    n_resolves = 0;
    n_ingests = 0;
    baselines = Hashtbl.create 8;
  }

let store t = t.store

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

exception Reply of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Reply (Protocol.error msg))) fmt

let find_entry t label =
  match Hashtbl.find_opt t.entries label with
  | Some e -> e
  | None -> fail "unknown entity %s: OPEN it first" label

(* Accumulated spec of everything the daemon has seen for the entry —
   live session state plus any still-buffered arrivals. *)
let effective_spec t label entry =
  let base =
    match Session.Store.find t.store label with
    | Some h -> Some (Session.spec h)
    | None ->
        if entry.materialised then
          fail "entity %s was evicted (LRU/TTL); re-OPEN and replay" label
        else None
  in
  let tuples = List.rev entry.pending_tuples in
  match base with
  | Some spec when tuples = [] && entry.pending_orders = [] -> spec
  | Some spec ->
      let entity = Entity.make entry.schema (Entity.tuples spec.Spec.entity @ tuples) in
      Spec.make entity
        ~orders:(entry.pending_orders @ spec.Spec.orders)
        ~sigma:spec.Spec.sigma ~gamma:spec.Spec.gamma
  | None ->
      if tuples = [] then fail "entity %s has no tuples yet" label
      else
        let entity = Entity.make entry.schema tuples in
        Spec.make entity ~orders:entry.pending_orders ~sigma:t.sigma ~gamma:t.gamma

(* Live session for the entry, creating it from (or flushing into it) the
   buffered arrivals. Caller holds [t.m]. *)
let materialise t label entry =
  let flush h =
    let tuples = List.rev entry.pending_tuples and orders = entry.pending_orders in
    if tuples <> [] || orders <> [] then Session.ingest h ~orders ~tuples ();
    entry.pending_tuples <- [];
    entry.pending_orders <- []
  in
  match Session.Store.find t.store label with
  | Some h ->
      flush h;
      h
  | None ->
      if entry.materialised then
        fail "entity %s was evicted (LRU/TTL); re-OPEN and replay" label;
      if entry.pending_tuples = [] then fail "entity %s has no tuples yet" label;
      let spec () =
        let entity = Entity.make entry.schema (List.rev entry.pending_tuples) in
        match
          Spec.make_res entity ~orders:entry.pending_orders ~sigma:t.sigma ~gamma:t.gamma
        with
        | Ok s -> s
        | Error e -> failwith (Format.asprintf "bad specification: %a" Spec.pp_error e)
      in
      let h, created = Session.Store.get_or_create t.store label ~spec in
      if created then begin
        entry.pending_tuples <- [];
        entry.pending_orders <- [];
        entry.materialised <- true
      end
      else flush h;
      h

let json_of_value = function
  | Value.Null -> "null"
  | Value.Int i -> Protocol.jint i
  | Value.Float f -> Protocol.jnum f
  | Value.Str s -> Protocol.jstr s

let resolved_json schema resolved =
  Protocol.obj
    (List.mapi
       (fun i v ->
         (Schema.name schema i, match v with None -> "null" | Some v -> json_of_value v))
       (Array.to_list resolved))

let values_json schema values =
  Protocol.obj
    (List.mapi
       (fun i v -> (Schema.name schema i, json_of_value v))
       (Array.to_list values))

let result_json label schema (r : Engine.result) (st : Engine.entity_stats) resolves =
  Protocol.ok
    [
      ("label", Protocol.jstr label);
      ("valid", Protocol.jbool r.Engine.valid);
      ("level", Protocol.jstr (Engine.level_to_string r.Engine.level));
      ( "degrade_reason",
        match r.Engine.degrade_reason with
        | None -> "null"
        | Some reason -> Protocol.jstr (Engine.reason_to_string reason) );
      ("rounds", Protocol.jint r.Engine.rounds);
      ("conflicts_spent", Protocol.jint r.Engine.conflicts_spent);
      ("resolved", resolved_json schema r.Engine.resolved);
      ("resolves", Protocol.jint resolves);
      ("delta_extensions", Protocol.jint st.Engine.delta_extensions);
      ("rebuilds", Protocol.jint st.Engine.rebuilds);
      ("solvers_built", Protocol.jint st.Engine.solvers_built);
    ]

let stats_json t =
  let s = Session.Store.stats t.store in
  let baselines =
    Hashtbl.fold (fun p n acc -> (p, Protocol.jint n) :: acc) t.baselines []
    |> List.sort compare
  in
  Protocol.ok
    [
      ("live", Protocol.jint s.Session.Store.live);
      ("created", Protocol.jint s.Session.Store.created);
      ("reused", Protocol.jint s.Session.Store.reused);
      ("evicted_lru", Protocol.jint s.Session.Store.evicted_lru);
      ("evicted_ttl", Protocol.jint s.Session.Store.evicted_ttl);
      ("removed", Protocol.jint s.Session.Store.removed);
      ("resolves", Protocol.jint s.Session.Store.resolves);
      ("delta_extensions", Protocol.jint s.Session.Store.delta_extensions);
      ( "rebuilds",
        Protocol.jint
          (s.Session.Store.rebuilds_renumbered + s.Session.Store.rebuilds_impure) );
      ("solvers_built", Protocol.jint s.Session.Store.solvers_built);
      ("template_hits", Protocol.jint s.Session.Store.template_hits);
      ("template_misses", Protocol.jint s.Session.Store.template_misses);
      ("instantiations", Protocol.jint s.Session.Store.instantiations);
      (* clause-database management counters, summed over live and
         already-evicted sessions like the rest *)
      ("sat_conflicts", Protocol.jint s.Session.Store.sat.Sat.Solver.conflicts);
      ("sat_learnts_kept", Protocol.jint s.Session.Store.sat.Sat.Solver.learnts_kept);
      ( "sat_learnts_deleted",
        Protocol.jint s.Session.Store.sat.Sat.Solver.learnts_deleted );
      ( "sat_lbd_avg",
        Printf.sprintf "%.3f" (Sat.Solver.lbd_avg s.Session.Store.sat) );
      ("sat_binaries", Protocol.jint s.Session.Store.sat.Sat.Solver.binaries);
      ("sat_subsumed", Protocol.jint s.Session.Store.sat.Sat.Solver.subsumed);
      ( "sat_vars_eliminated",
        Protocol.jint s.Session.Store.sat.Sat.Solver.vars_eliminated );
      ( "sat_vars_substituted",
        Protocol.jint s.Session.Store.sat.Sat.Solver.vars_substituted );
      ( "sat_simplify_ms",
        Printf.sprintf "%.3f" s.Session.Store.sat.Sat.Solver.simplify_ms );
      ("requests", Protocol.jint t.n_requests);
      ("resolve_requests", Protocol.jint t.n_resolves);
      ("ingest_requests", Protocol.jint t.n_ingests);
      ("baselines", Protocol.obj baselines);
    ]

let run_command t (cmd : Protocol.command) =
  match cmd with
  | Protocol.Ping -> Protocol.ok [ ("pong", "true") ]
  | Protocol.Shutdown -> Protocol.ok [ ("stopping", "true") ]
  | Protocol.Stats -> locked t (fun () -> stats_json t)
  | Protocol.Sweep ->
      let evicted = Session.Store.sweep t.store in
      Protocol.ok [ ("evicted", Protocol.jint evicted) ]
  | Protocol.Open { label; header } ->
      locked t (fun () ->
          let schema =
            try Schema.make header
            with Invalid_argument m -> fail "OPEN %s: %s" label m
          in
          (* reopening resets the entity: fresh schema, no arrivals, and
             any live session is dropped *)
          ignore (Session.Store.remove t.store label);
          Hashtbl.replace t.entries label
            { schema; pending_tuples = []; pending_orders = []; materialised = false };
          Protocol.ok
            [ ("label", Protocol.jstr label); ("arity", Protocol.jint (Schema.arity schema)) ])
  | Protocol.Ingest { label; row } ->
      locked t (fun () ->
          let entry = find_entry t label in
          if List.length row <> Schema.arity entry.schema then
            fail "INGEST %s: row arity %d, schema arity %d" label (List.length row)
              (Schema.arity entry.schema);
          let tuple = Tuple.make entry.schema (List.map Value.of_string row) in
          t.n_ingests <- t.n_ingests + 1;
          (match Session.Store.find t.store label with
          | Some h -> Session.ingest h ~tuples:[ tuple ] ()
          | None ->
              if entry.materialised then
                fail "entity %s was evicted (LRU/TTL); re-OPEN and replay" label;
              entry.pending_tuples <- tuple :: entry.pending_tuples);
          Protocol.ok [ ("label", Protocol.jstr label) ])
  | Protocol.Order { label; attr; lo; hi } ->
      locked t (fun () ->
          let entry = find_entry t label in
          if not (Schema.mem entry.schema attr) then fail "ORDER %s: unknown attribute %s" label attr;
          let edge = { Spec.attr; lo; hi } in
          (match Session.Store.find t.store label with
          | Some h -> Session.ingest h ~orders:[ edge ] ()
          | None ->
              if entry.materialised then
                fail "entity %s was evicted (LRU/TTL); re-OPEN and replay" label;
              entry.pending_orders <- edge :: entry.pending_orders);
          Protocol.ok [ ("label", Protocol.jstr label) ])
  | Protocol.Resolve label ->
      let h = locked t (fun () -> materialise t label (find_entry t label)) in
      (* the solve itself runs outside the daemon lock: the handle has its
         own mutex, so other connections keep streaming meanwhile *)
      let r, st = Session.resolve h in
      locked t (fun () -> t.n_resolves <- t.n_resolves + 1);
      result_json label (Spec.schema (Session.spec h)) r st (Session.resolves h)
  | Protocol.Baseline { label; policy } ->
      let strategy =
        match policy with
        | None -> (Config.to_engine t.config).Engine.pick_strategy
        | Some p -> (
            match Pick.strategy_of_string p with
            | Some s -> s
            | None -> fail "BASELINE %s: unknown policy %s" label p)
      in
      locked t (fun () ->
          let entry = find_entry t label in
          (* no solver, no materialisation: Pick policies answer from the
             accumulated spec directly — the cheap BDR-style path *)
          let spec = effective_spec t label entry in
          let values = Pick.run ~strategy spec in
          let name = Pick.strategy_to_string strategy in
          Hashtbl.replace t.baselines name
            (1 + Option.value ~default:0 (Hashtbl.find_opt t.baselines name));
          Protocol.ok
            [
              ("label", Protocol.jstr label);
              ("policy", Protocol.jstr name);
              ("values", values_json (Spec.schema spec) values);
            ])
  | Protocol.Close label ->
      locked t (fun () ->
          let existed = Session.Store.remove t.store label in
          let known = Hashtbl.mem t.entries label in
          Hashtbl.remove t.entries label;
          Protocol.ok [ ("label", Protocol.jstr label); ("existed", Protocol.jbool (existed || known)) ])

let handle_line t line =
  match Protocol.parse line with
  | Error msg -> (Protocol.error msg, false)
  | Ok cmd ->
      locked t (fun () -> t.n_requests <- t.n_requests + 1);
      let response =
        try run_command t cmd with
        | Reply r -> r
        | Invalid_argument msg | Failure msg -> Protocol.error msg
      in
      (response, cmd = Protocol.Shutdown)

(* {1 Socket serving} *)

let request_many ~socket_path lines =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_UNIX socket_path);
      let ic = Unix.in_channel_of_descr sock and oc = Unix.out_channel_of_descr sock in
      List.map
        (fun line ->
          output_string oc line;
          output_char oc '\n';
          flush oc;
          input_line ic)
        lines)

let request ~socket_path line =
  match request_many ~socket_path [ line ] with
  | [ r ] -> r
  | _ -> assert false

let serve ?(backlog = 64) t ~socket_path =
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX socket_path);
  Unix.listen listener backlog;
  let stopping = ref false in
  let set_stop () =
    if not !stopping then begin
      stopping := true;
      (* wake the accept loop with a throwaway connection so it can
         observe [stopping] — portable, unlike shutdown on a listener *)
      try
        let s = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Fun.protect
          ~finally:(fun () -> try Unix.close s with Unix.Unix_error _ -> ())
          (fun () -> Unix.connect s (Unix.ADDR_UNIX socket_path))
      with Unix.Unix_error _ -> ()
    end
  in
  let sweeper =
    match Config.session_ttl t.config with
    | None -> None
    | Some ttl ->
        Some
          (Thread.create
             (fun () ->
               let period = Float.max 0.05 (ttl /. 2.) in
               while not !stopping do
                 Thread.delay period;
                 if not !stopping then ignore (Session.Store.sweep t.store)
               done)
             ())
  in
  let handle_conn fd =
    let ic = Unix.in_channel_of_descr fd and oc = Unix.out_channel_of_descr fd in
    (try
       let connected = ref true in
       while !connected do
         match input_line ic with
         | exception End_of_file -> connected := false
         | line ->
             let response, stop = handle_line t line in
             output_string oc response;
             output_char oc '\n';
             flush oc;
             if stop then begin
               connected := false;
               set_stop ()
             end
       done
     with Sys_error _ | Unix.Unix_error _ -> ());
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  while not !stopping do
    match Unix.accept listener with
    | fd, _ ->
        if !stopping then ( try Unix.close fd with Unix.Unix_error _ -> ())
        else ignore (Thread.create handle_conn fd)
    | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) -> ()
  done;
  Option.iter Thread.join sweeper;
  (try Unix.close listener with Unix.Unix_error _ -> ());
  try Unix.unlink socket_path with Unix.Unix_error _ -> ()
