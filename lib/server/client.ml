type conn = { fd : Unix.file_descr; pending : Buffer.t }

type t = {
  socket_path : string;
  retries : int;
  base_ms : float;
  deadline : float option;
  mutable conn : conn option;
  mutable retries_used : int;
  rng : Random.State.t;
}

let connect ?(retries = 4) ?(retry_base_ms = 50.) ?deadline ~socket_path () =
  (* writing to a daemon that crashed under us must surface as EPIPE —
     which the retry loop absorbs — not kill the calling process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  {
    socket_path;
    retries = max 0 retries;
    base_ms = Float.max 0. retry_base_ms;
    deadline;
    conn = None;
    retries_used = 0;
    rng = Random.State.make_self_init ();
  }

let retries_used t = t.retries_used

let close_conn c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let close t =
  Option.iter close_conn t.conn;
  t.conn <- None

let backoff t attempt =
  t.retries_used <- t.retries_used + 1;
  let jitter = 0.5 +. Random.State.float t.rng 1.0 in
  let ms = Float.min 5000. (t.base_ms *. (2. ** float_of_int attempt) *. jitter) in
  if ms > 0. then Thread.delay (ms /. 1000.)

(* Failures worth another attempt: the daemon is down/restarting, the
   connection died under us, or the kernel queue is full. *)
let retryable_unix = function
  | Unix.ECONNREFUSED | Unix.ENOENT | Unix.ECONNRESET | Unix.EPIPE
  | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR ->
      true
  | _ -> false

let ensure_conn t =
  match t.conn with
  | Some c -> c
  | None ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX t.socket_path)
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      let c = { fd; pending = Buffer.create 256 } in
      t.conn <- Some c;
      c

let write_all fd s =
  let b = Bytes.of_string s in
  let total = Bytes.length b in
  let off = ref 0 in
  while !off < total do
    off := !off + Unix.write fd b !off (total - !off)
  done

exception Deadline

(* Read one response line, bounded by the per-request deadline. *)
let read_line c ~until =
  let rec go () =
    let s = Buffer.contents c.pending in
    match String.index_opt s '\n' with
    | Some i ->
        Buffer.clear c.pending;
        Buffer.add_substring c.pending s (i + 1) (String.length s - i - 1);
        String.sub s 0 i
    | None ->
        let timeout =
          match until with
          | None -> -1. (* block *)
          | Some u ->
              let left = u -. Unix.gettimeofday () in
              if left <= 0. then raise Deadline else left
        in
        (match Unix.select [ c.fd ] [] [] timeout with
        | [], _, _ -> raise Deadline
        | _ -> (
            let b = Bytes.create 4096 in
            match Unix.read c.fd b 0 4096 with
            | 0 -> raise End_of_file
            | n -> Buffer.add_subbytes c.pending b 0 n));
        go ()
  in
  go ()

let request t line =
  let attempts = t.retries + 1 in
  let rec go attempt last_error =
    if attempt >= attempts then
      Error
        (Printf.sprintf "request failed after %d attempt(s): %s" attempts last_error)
    else begin
      if attempt > 0 then backoff t (attempt - 1);
      let outcome =
        match
          let c = ensure_conn t in
          let until =
            Option.map (fun d -> Unix.gettimeofday () +. d) t.deadline
          in
          write_all c.fd (line ^ "\n");
          read_line c ~until
        with
        | response ->
            if Protocol.is_overloaded response then begin
              (* the daemon is shedding; the connection itself is fine *)
              `Retry "daemon overloaded"
            end
            else `Done response
        | exception Unix.Unix_error (e, _, _) when retryable_unix e ->
            close t;
            `Retry (Unix.error_message e)
        | exception (End_of_file | Sys_error _) ->
            close t;
            `Retry "connection closed by daemon"
        | exception Deadline ->
            (* the request may still be executing server-side: drop the
               connection so a stale reply cannot pair with the retry *)
            close t;
            `Retry
              (Printf.sprintf "deadline (%gs) expired"
                 (Option.value ~default:0. t.deadline))
        | exception Unix.Unix_error (e, _, _) ->
            close t;
            raise (Failure ("client: " ^ Unix.error_message e))
      in
      match outcome with
      | `Done response -> Ok response
      | `Retry why -> go (attempt + 1) why
    end
  in
  go 0 "no attempt made"

let request_many t lines =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match request t line with
        | Ok r -> go (r :: acc) rest
        | Error msg -> Error (List.rev acc, msg))
  in
  go [] lines
