open Conflict_resolution

type command =
  | Ping
  | Open of { label : string; header : string list }
  | Ingest of { label : string; row : string list }
  | Order of { label : string; attr : string; lo : int; hi : int }
  | Resolve of string
  | Baseline of { label : string; policy : string option }
  | Close of string
  | Stats
  | Health
  | Ready
  | Sweep
  | Shutdown of { drain : bool }

type request = { seq : int option; cmd : command }

let mutating = function
  | Open _ | Ingest _ | Order _ | Close _ -> true
  | Ping | Resolve _ | Baseline _ | Stats | Health | Ready | Sweep | Shutdown _
    ->
      false

let fields rest = String.split_on_char '|' rest

let csv_record s =
  match Csv.parse_string s with
  | [ record ] -> Ok record
  | [] -> Error "empty CSV record"
  | _ -> Error "CSV record spans multiple rows"

let split_word line =
  match String.index_opt line ' ' with
  | Some i ->
      ( String.sub line 0 i,
        String.sub line (i + 1) (String.length line - i - 1) |> String.trim )
  | None -> (line, "")

let parse line =
  let line = String.trim line in
  (* optional "@<seq> " prefix: client-assigned per-entity sequence
     number for idempotent at-least-once redelivery *)
  let seq, line =
    if String.length line > 0 && line.[0] = '@' then
      let tok, rest = split_word line in
      match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
      | Some n when n >= 0 && rest <> "" -> (Some n, rest)
      | _ -> (None, line) (* fall through: the verb match rejects it *)
    else (None, line)
  in
  let word, rest = split_word line in
  let with_label k = if rest = "" then Error (word ^ ": missing label") else k rest in
  let cmd =
    match String.uppercase_ascii word with
  | "PING" -> Ok Ping
  | "STATS" -> Ok Stats
  | "HEALTH" -> Ok Health
  | "READY" -> Ok Ready
  | "SWEEP" -> Ok Sweep
  | "SHUTDOWN" -> (
      match String.lowercase_ascii rest with
      | "" -> Ok (Shutdown { drain = false })
      | "drain" -> Ok (Shutdown { drain = true })
      | other -> Error ("SHUTDOWN: unknown mode " ^ other))
  | "RESOLVE" -> with_label (fun l -> Ok (Resolve l))
  | "CLOSE" -> with_label (fun l -> Ok (Close l))
  | "OPEN" ->
      with_label (fun r ->
          match fields r with
          | [ label; header ] when label <> "" -> (
              match csv_record header with
              | Ok names -> Ok (Open { label; header = names })
              | Error e -> Error ("OPEN: " ^ e))
          | _ -> Error "OPEN expects <label>|<csv-header>")
  | "INGEST" ->
      with_label (fun r ->
          match String.index_opt r '|' with
          | Some i when i > 0 -> (
              let label = String.sub r 0 i in
              let row = String.sub r (i + 1) (String.length r - i - 1) in
              match csv_record row with
              | Ok values -> Ok (Ingest { label; row = values })
              | Error e -> Error ("INGEST: " ^ e))
          | _ -> Error "INGEST expects <label>|<csv-row>")
  | "ORDER" ->
      with_label (fun r ->
          match fields r with
          | [ label; attr; lo; hi ] when label <> "" && attr <> "" -> (
              match (int_of_string_opt lo, int_of_string_opt hi) with
              | Some lo, Some hi -> Ok (Order { label; attr; lo; hi })
              | _ -> Error "ORDER: tuple indices must be integers")
          | _ -> Error "ORDER expects <label>|<attr>|<lo>|<hi>")
  | "BASELINE" ->
      with_label (fun r ->
          match fields r with
          | [ label ] when label <> "" -> Ok (Baseline { label; policy = None })
          | [ label; policy ] when label <> "" -> Ok (Baseline { label; policy = Some policy })
          | _ -> Error "BASELINE expects <label>[|<policy>]")
  | "" -> Error "empty request"
  | w -> Error ("unknown command " ^ w)
  in
  match cmd with
  | Error _ as e -> e
  | Ok cmd when seq <> None && not (mutating cmd) ->
      Error "@seq only applies to OPEN/INGEST/ORDER/CLOSE"
  | Ok cmd -> Ok { seq; cmd }

(* {1 JSON} *)

let jstr s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let jnum f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let jint = string_of_int
let jbool b = if b then "true" else "false"

let obj kvs =
  "{" ^ String.concat "," (List.map (fun (k, v) -> jstr k ^ ":" ^ v) kvs) ^ "}"

let arr items = "[" ^ String.concat "," items ^ "]"
let ok kvs = obj (("ok", "true") :: kvs)
let error msg = obj [ ("ok", "false"); ("error", jstr msg) ]

let overloaded =
  obj [ ("ok", "false"); ("error", jstr "overloaded"); ("overloaded", "true") ]

let is_overloaded response = response = overloaded
