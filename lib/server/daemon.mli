(** The [crsolved] server: resolution-as-a-service on a Unix socket.

    A daemon holds one {!Conflict_resolution.Session.Store} — engine
    configuration, the shared sharded encoding cache and every live
    per-entity solver session — plus the Σ/Γ constraint sets, loaded once
    at startup and shared by all entities. Clients speak {!Protocol} over
    a Unix-domain stream socket; each connection gets its own thread, and
    {!handle_line} is safe to call from many threads (and directly, for
    in-process tests and benchmarks — the protocol without the socket).

    Entity lifecycle: [OPEN] registers the schema; arrivals buffer until
    the first [RESOLVE]/[BASELINE] materialises the session (entities
    cannot be empty); from then on arrivals stream into the live session
    through the incremental [Encode.extend] path and every [RESOLVE]
    re-resolves with budgets re-armed. If the store evicts an idle entity
    (LRU cap or TTL), its accumulated state is gone — commands on the
    label then answer with an error naming the eviction, and the client
    re-opens and replays from its own log, exactly as a replication
    consumer would.

    {b Durability} (when the configuration sets
    {!Conflict_resolution.Config.with_wal_dir}): every applied mutating
    event is appended to a {!Durable.Wal} before its reply is released,
    and {!create} recovers by loading the newest {!Durable.Snapshot} and
    replaying the WAL tail through the exact same apply path — post-
    recovery state, and therefore every post-recovery resolve, is
    bit-identical to an uninterrupted run. Snapshots are taken every
    [snapshot_every] applied events (and on graceful drain), after which
    covered WAL segments are deleted. [@seq]-stamped requests are
    deduplicated against a persisted per-entity cursor, making
    at-least-once redelivery safe.

    {b Overload protection}: at most [max_inflight] requests execute
    concurrently — excess work is answered [OVERLOADED] immediately
    (load shedding) rather than queued; idle connections are closed
    after [idle_timeout]; [SIGTERM]-style {!drain} stops accepting,
    finishes in-flight requests, snapshots and exits. *)

type t

(** [create ?config ~sigma ~gamma ()] — configuration defaults to
    {!Conflict_resolution.Config.default}; the store capacity and TTL come
    from it ({!Conflict_resolution.Config.with_session_cap} /
    [with_session_ttl]). When the configuration names a WAL directory,
    [create] {b recovers} synchronously — snapshot load plus WAL-tail
    replay, with the torn tail truncated — before opening a fresh WAL
    segment for new events. *)
val create :
  ?config:Conflict_resolution.Config.t ->
  sigma:Conflict_resolution.Constraint_ast.t list ->
  gamma:Conflict_resolution.Constant_cfd.t list ->
  unit ->
  t

val store : t -> Conflict_resolution.Session.Store.t

(** What a handled request asks of the serve loop: keep going, drain
    gracefully, or stop now. *)
type outcome = Continue | Drain | Stop

(** [handle_line t line] executes one protocol request and returns the
    JSON response plus the requested {!outcome} ([Drain]/[Stop] for the
    two [SHUTDOWN] forms). Never raises on malformed or failing requests
    — those produce [{"ok":false,...}] responses. Admission control runs
    here too: past [max_inflight] concurrently-executing requests the
    reply is [OVERLOADED] without touching daemon state. *)
val handle_line : t -> string -> string * outcome

(** Request a graceful drain: stop accepting, finish in-flight requests,
    snapshot, exit {!serve}. Only flips an atomic flag — safe to call
    from a signal handler. *)
val drain : t -> unit

(** Request an immediate stop (the WAL is still flushed). Signal-safe
    like {!drain}. *)
val stop : t -> unit

(** [serve t ~socket_path] binds the Unix-domain socket (unlinking any
    stale file first) and accepts connections until a client sends
    [SHUTDOWN] (or {!drain}/{!stop} is called). Each connection runs in
    its own thread; when the configuration has a session TTL, a
    background thread sweeps idle sessions at half-TTL intervals, and
    under [Interval] fsync a flusher thread bounds WAL lag. On
    [SHUTDOWN drain] the listener closes first, in-flight requests get
    up to [drain_wait] seconds (default 10) to finish, and a final
    snapshot is persisted. Blocks until shutdown. *)
val serve : ?backlog:int -> ?drain_wait:float -> t -> socket_path:string -> unit

(** [request ~socket_path line] — a one-connection client round trip:
    connect, send [line], read the response line. Used by
    [crsolve client] and the tests. *)
val request : socket_path:string -> string -> string

(** [request_many ~socket_path lines] pipelines several requests over one
    connection and returns the responses in order. *)
val request_many : socket_path:string -> string list -> string list
