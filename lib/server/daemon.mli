(** The [crsolved] server: resolution-as-a-service on a Unix socket.

    A daemon holds one {!Conflict_resolution.Session.Store} — engine
    configuration, the shared sharded encoding cache and every live
    per-entity solver session — plus the Σ/Γ constraint sets, loaded once
    at startup and shared by all entities. Clients speak {!Protocol} over
    a Unix-domain stream socket; each connection gets its own thread, and
    {!handle_line} is safe to call from many threads (and directly, for
    in-process tests and benchmarks — the protocol without the socket).

    Entity lifecycle: [OPEN] registers the schema; arrivals buffer until
    the first [RESOLVE]/[BASELINE] materialises the session (entities
    cannot be empty); from then on arrivals stream into the live session
    through the incremental [Encode.extend] path and every [RESOLVE]
    re-resolves with budgets re-armed. If the store evicts an idle entity
    (LRU cap or TTL), its accumulated state is gone — commands on the
    label then answer with an error naming the eviction, and the client
    re-opens and replays from its own log, exactly as a replication
    consumer would. *)

type t

(** [create ?config ~sigma ~gamma ()] — configuration defaults to
    {!Conflict_resolution.Config.default}; the store capacity and TTL come
    from it ({!Conflict_resolution.Config.with_session_cap} /
    [with_session_ttl]). *)
val create :
  ?config:Conflict_resolution.Config.t ->
  sigma:Conflict_resolution.Constraint_ast.t list ->
  gamma:Conflict_resolution.Constant_cfd.t list ->
  unit ->
  t

val store : t -> Conflict_resolution.Session.Store.t

(** [handle_line t line] executes one protocol request and returns the
    JSON response plus [true] when the request was a [SHUTDOWN]. Never
    raises on malformed or failing requests — those produce
    [{"ok":false,...}] responses. *)
val handle_line : t -> string -> string * bool

(** [serve t ~socket_path] binds the Unix-domain socket (unlinking any
    stale file first), accepts connections until a client sends
    [SHUTDOWN], then closes the listener and removes the socket file.
    Each connection runs in its own thread; when the configuration has a
    session TTL, a background thread sweeps idle sessions at half-TTL
    intervals. Blocks until shutdown. *)
val serve : ?backlog:int -> t -> socket_path:string -> unit

(** [request ~socket_path line] — a one-connection client round trip:
    connect, send [line], read the response line. Used by
    [crsolve client] and the tests. *)
val request : socket_path:string -> string -> string

(** [request_many ~socket_path lines] pipelines several requests over one
    connection and returns the responses in order. *)
val request_many : socket_path:string -> string list -> string list
