(** The [crsolved] wire protocol: one request line in, one JSON response
    line out, over a Unix-domain stream socket.

    Requests are a command word, optionally followed by a space and
    [|]-separated fields; tuple rows and headers are CSV inside their
    field (RFC-4180 quoting, so values may contain commas — but not [|]
    or newlines):

    {v
    OPEN <label>|<csv-header>       register/reset an entity (schema from header)
    INGEST <label>|<csv-row>        one tuple arrival
    ORDER <label>|<attr>|<lo>|<hi>  assert: tuple lo's attr is less current than hi's
    RESOLVE <label>                 (re-)resolve; incremental on a live session
    BASELINE <label>[|<policy>]     Pick answer (lww, local, favoured, max, ...)
    CLOSE <label>                   drop the session and its state
    STATS                           store + command statistics
    HEALTH                          durability/load status (WAL lag, recovery, ...)
    READY                           {"ready":true} iff serving (not draining)
    SWEEP                           evict sessions idle past the TTL
    PING                            liveness probe
    SHUTDOWN [drain]                stop the server; [drain] finishes in-flight
                                    requests and snapshots before exiting
    v}

    The state-changing commands — [OPEN], [INGEST], [ORDER], [CLOSE] —
    may carry a {b sequence-number prefix} [@<seq>] (e.g.
    [@17 INGEST e1|a,b,c]): a per-entity monotone counter assigned by the
    client. The daemon persists the highest applied [seq] per entity and
    answers duplicates (retransmissions after a timeout or crash) with
    [{"ok":true,"dup":true}] without re-applying them — the idempotence
    that makes at-least-once delivery against the write-ahead log safe.
    Unsequenced mutations remain exactly-once only as far as TCP-style
    ordering on one connection guarantees.

    Every response is a single-line JSON object with an ["ok"] field;
    failures are [{"ok":false,"error":"..."}] and never kill the
    connection. A daemon shedding load answers {!overloaded} — clients
    should back off and retry. *)

type command =
  | Ping
  | Open of { label : string; header : string list }
  | Ingest of { label : string; row : string list }
  | Order of { label : string; attr : string; lo : int; hi : int }
  | Resolve of string
  | Baseline of { label : string; policy : string option }
  | Close of string
  | Stats
  | Health
  | Ready
  | Sweep
  | Shutdown of { drain : bool }

(** A parsed request line: the command plus its optional [@seq] prefix
    (only state-changing commands accept one — [parse] rejects it
    elsewhere). *)
type request = { seq : int option; cmd : command }

val parse : string -> (request, string) result

(** Commands that change daemon state and therefore hit the WAL. *)
val mutating : command -> bool

(** {1 JSON building}

    Hand-rolled single-line JSON (the project has no JSON dependency);
    every builder returns a serialised fragment. *)

val jstr : string -> string

(** [jnum f] renders a float without trailing noise (["12"], ["0.53"]). *)
val jnum : float -> string

val jint : int -> string
val jbool : bool -> string

(** [obj [(k, v); ...]] — values must already be serialised fragments. *)
val obj : (string * string) list -> string

val arr : string list -> string

(** [ok fields] is [obj] with ["ok":true] prepended. *)
val ok : (string * string) list -> string

val error : string -> string

(** The load-shedding reply:
    [{"ok":false,"error":"overloaded","overloaded":true}]. Clients
    detect the ["overloaded"] field and retry with backoff. *)
val overloaded : string

(** [true] iff [response] is the {!overloaded} reply. *)
val is_overloaded : string -> bool
