(** The [crsolved] wire protocol: one request line in, one JSON response
    line out, over a Unix-domain stream socket.

    Requests are a command word, optionally followed by a space and
    [|]-separated fields; tuple rows and headers are CSV inside their
    field (RFC-4180 quoting, so values may contain commas — but not [|]
    or newlines):

    {v
    OPEN <label>|<csv-header>       register/reset an entity (schema from header)
    INGEST <label>|<csv-row>        one tuple arrival
    ORDER <label>|<attr>|<lo>|<hi>  assert: tuple lo's attr is less current than hi's
    RESOLVE <label>                 (re-)resolve; incremental on a live session
    BASELINE <label>[|<policy>]     Pick answer (lww, local, favoured, max, ...)
    CLOSE <label>                   drop the session and its state
    STATS                           store + command statistics
    SWEEP                           evict sessions idle past the TTL
    PING                            liveness probe
    SHUTDOWN                        stop the server
    v}

    Every response is a single-line JSON object with an ["ok"] field;
    failures are [{"ok":false,"error":"..."}] and never kill the
    connection. *)

type command =
  | Ping
  | Open of { label : string; header : string list }
  | Ingest of { label : string; row : string list }
  | Order of { label : string; attr : string; lo : int; hi : int }
  | Resolve of string
  | Baseline of { label : string; policy : string option }
  | Close of string
  | Stats
  | Sweep
  | Shutdown

val parse : string -> (command, string) result

(** {1 JSON building}

    Hand-rolled single-line JSON (the project has no JSON dependency);
    every builder returns a serialised fragment. *)

val jstr : string -> string

(** [jnum f] renders a float without trailing noise (["12"], ["0.53"]). *)
val jnum : float -> string

val jint : int -> string
val jbool : bool -> string

(** [obj [(k, v); ...]] — values must already be serialised fragments. *)
val obj : (string * string) list -> string

val arr : string list -> string

(** [ok fields] is [obj] with ["ok":true] prepended. *)
val ok : (string * string) list -> string

val error : string -> string
