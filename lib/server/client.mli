(** Retrying [crsolved] client: the {!Daemon.request} round trip wrapped
    in bounded exponential backoff with jitter, reconnection, and a
    client-side per-request deadline — so a daemon that is restarting
    (crash recovery), shedding load ([OVERLOADED]) or wedged cannot hang
    or fail the caller on the first transient.

    Retried failures are: connection refused / missing socket (daemon
    restarting), connection reset / EOF mid-request, a request deadline
    expiring, and [OVERLOADED] replies. Protocol-level errors
    ([{"ok":false,...}] other than [OVERLOADED]) are {e answers}, not
    failures — they are returned as-is and never retried.

    A retried request may have been applied by a daemon that crashed
    between applying and replying: stamp mutating requests with [@seq]
    sequence numbers (see {!Protocol}) to make such redelivery
    idempotent. *)

type t

(** [connect ?retries ?retry_base_ms ?deadline ~socket_path ()] — no I/O
    happens until the first {!request}. [retries] (default 4) is the
    number of {e re}-attempts after the first try; [retry_base_ms]
    (default 50) the backoff base: attempt [k] sleeps
    [base * 2^k * (0.5 + jitter)] ms, capped at 5 s; [deadline] bounds
    each attempt's wait for a response, in seconds (default: wait
    forever). *)
val connect :
  ?retries:int ->
  ?retry_base_ms:float ->
  ?deadline:float ->
  socket_path:string ->
  unit ->
  t

(** One request line, retried per the policy. [Error msg] after the
    attempts are exhausted (the connection is left closed). *)
val request : t -> string -> (string, string) result

(** Pipelines the lines in order, stopping at the first exhausted one:
    [Ok responses] when every line got an answer, otherwise
    [Error (responses_so_far, msg)]. *)
val request_many : t -> string list -> (string list, string list * string) result

(** Transient failures absorbed so far (reconnects, backoffs, overloads). *)
val retries_used : t -> int

val close : t -> unit
