(** The stable public surface of the conflict-resolution system.

    One [open]-able (or dot-accessible) module collecting everything an
    application needs to resolve conflicts by data currency and
    consistency (ICDE 2013): the relational building blocks, the
    specification type [Se = (It, Σ, Γ)] with its constraint parsers, the
    interactive framework of Fig. 4 and its batch {!Engine}, and the
    traditional baselines.

    Internal libraries ([sat], [maxsat], [clique], [porder], the module
    internals of [crcore]) are deliberately not re-exported: they may
    change freely between versions, while the aliases below are the
    compatibility surface.

    {[
      open Conflict_resolution

      let spec = Spec.make entity ~orders:[] ~sigma ~gamma in
      let outcome = Framework.resolve ~user:Framework.silent spec in
      ...
    ]} *)

(** {1 Relational building blocks} *)

(** Attribute values: integers, strings, nulls. *)
module Value = Value

(** Relation schemas (attribute names and positions). *)
module Schema = Schema

(** Tuples over a schema. *)
module Tuple = Tuple

(** Entity instances: the tuples referring to one real-world entity. *)
module Entity = Entity

(** CSV reading/writing, including [load_entity]. *)
module Csv = Csv

(** {1 Specifications and their parsers} *)

(** Entity specifications [Se = (It, Σ, Γ)]; build with {!Spec.make_res}
    (typed errors) or {!Spec.make} (raising). *)
module Spec = Crcore.Spec

(** Currency-constraint ASTs (the Σ of a specification). *)
module Constraint_ast = Currency.Constraint_ast

(** Parser for the textual currency-constraint syntax, e.g.
    [t1\[status\] = "working" & t2\[status\] = "retired" -> prec(status)]. *)
module Constraint_parser = Currency.Parser

(** Constant conditional functional dependencies (the Γ of a
    specification), with [parse] / [parse_many] for the
    [AC = 212 -> city = "NY"] syntax. *)
module Constant_cfd = Cfd.Constant_cfd

(** {1 Reasoning} *)

(** The CNF encoding Ω(Se)/Φ(Se); chiefly useful for {!Encode.mode}
    ([Paper] vs the totality-augmented [Exact]) accepted across the API. *)
module Encode = Crcore.Encode

(** Validity of a specification (does a valid completion exist?). *)
module Validity = Crcore.Validity

(** True-value deduction (certain facts in every valid completion). *)
module Deduce = Crcore.Deduce

(** Derivation rules and the [Suggest] pipeline. *)
module Rules = Crcore.Rules

(** {1 Resolution} *)

(** The interactive loop of Fig. 4, one entity per call. *)
module Framework = Crcore.Framework

(** Batch resolution: incremental solver sessions, a sharded encoding
    cache, and structured statistics over collections of specifications.
    Set [config.jobs > 1] to resolve entities on that many domains in
    parallel — results are identical to the sequential run and arrive in
    input order. *)
module Engine = Crcore.Engine

(** Whole-relation repair: partition by key, resolve each entity. *)
module Repair = Crcore.Repair

(** Deterministic fault injection at the engine's phase boundaries —
    for testing batch robustness (per-entity isolation, the budget
    degradation ladder) against simulated crashes and hangs. *)
module Faults = Crcore.Faults

(** {1 Baselines and evaluation} *)

(** The traditional heuristic conflict-resolution baseline. *)
module Pick = Crcore.Pick

(** Accuracy metrics (precision/recall against ground truth). *)
module Metrics = Crcore.Metrics

(** The encoding mode, re-exported for convenience: [Paper] is the
    heuristic reduction of Lemma 5, [Exact] adds totality clauses. *)
type mode = Crcore.Encode.mode = Paper | Exact

(** {1 Configuration} *)

module Config = struct
  type t = {
    engine : Crcore.Engine.config;
    max_sessions : int;
    ttl_s : float option;
    (* durability + overload protection (the crsolved daemon) *)
    wal_dir : string option;
    fsync : Durable.Wal.fsync;
    snapshot_every : int;
    max_inflight : int;
    request_deadline : float option;
    idle_timeout : float option;
  }

  let default =
    {
      engine = Crcore.Engine.default_config;
      max_sessions = 1024;
      ttl_s = None;
      wal_dir = None;
      fsync = Durable.Wal.Interval 0.05;
      snapshot_every = 10_000;
      max_inflight = 0;
      request_deadline = None;
      idle_timeout = None;
    }

  let naive = { default with engine = Crcore.Engine.naive_config }

  let with_mode mode t = { t with engine = { t.engine with Crcore.Engine.mode } }
  let with_repair repair t = { t with engine = { t.engine with Crcore.Engine.repair } }

  let with_max_rounds max_rounds t =
    { t with engine = { t.engine with Crcore.Engine.max_rounds } }

  let with_incremental incremental t =
    { t with engine = { t.engine with Crcore.Engine.incremental } }

  let with_cache cache t = { t with engine = { t.engine with Crcore.Engine.cache } }
  let with_lint lint t = { t with engine = { t.engine with Crcore.Engine.lint } }

  let with_saturate saturate t =
    { t with engine = { t.engine with Crcore.Engine.saturate } }

  let with_jobs jobs t = { t with engine = { t.engine with Crcore.Engine.jobs } }

  let with_clamp_jobs clamp_jobs t =
    { t with engine = { t.engine with Crcore.Engine.clamp_jobs } }

  let with_budget_conflicts budget_conflicts t =
    { t with engine = { t.engine with Crcore.Engine.budget_conflicts } }

  let with_budget_ms budget_ms t =
    { t with engine = { t.engine with Crcore.Engine.budget_ms } }

  let with_max_degrade max_degrade t =
    { t with engine = { t.engine with Crcore.Engine.max_degrade } }

  let with_pick pick_strategy t =
    { t with engine = { t.engine with Crcore.Engine.pick_strategy } }

  let with_fail_fast fail_fast t =
    { t with engine = { t.engine with Crcore.Engine.fail_fast } }

  let with_simplify simplify t =
    { t with engine = { t.engine with Crcore.Engine.simplify } }

  let with_session_cap max_sessions t = { t with max_sessions = max 1 max_sessions }
  let with_session_ttl ttl_s t = { t with ttl_s }
  let with_wal_dir wal_dir t = { t with wal_dir }
  let with_fsync fsync t = { t with fsync }
  let with_snapshot_every snapshot_every t = { t with snapshot_every = max 0 snapshot_every }
  let with_max_inflight max_inflight t = { t with max_inflight = max 0 max_inflight }
  let with_request_deadline request_deadline t = { t with request_deadline }
  let with_idle_timeout idle_timeout t = { t with idle_timeout }

  (* The request deadline is enforced through the engine's per-request
     wall-clock budget: each resolve re-arms [budget_ms] capped by the
     deadline, so a deadline bounds solver time rather than interrupting
     I/O mid-reply (it is a soft bound — see DESIGN §15). *)
  let to_engine t =
    match t.request_deadline with
    | None -> t.engine
    | Some d ->
        let cap = d *. 1000. in
        let budget_ms =
          match t.engine.Crcore.Engine.budget_ms with
          | None -> Some cap
          | Some b -> Some (Float.min b cap)
        in
        { t.engine with Crcore.Engine.budget_ms }

  let max_sessions t = t.max_sessions
  let session_ttl t = t.ttl_s
  let wal_dir t = t.wal_dir
  let fsync t = t.fsync
  let snapshot_every t = t.snapshot_every
  let max_inflight t = t.max_inflight
  let request_deadline t = t.request_deadline
  let idle_timeout t = t.idle_timeout
end

(** {1 Sessions} *)

module Session = struct
  type handle = Crcore.Session.handle

  let create ?(config = Config.default) ?cache ?label spec =
    Crcore.Session.create ~config:(Config.to_engine config) ?cache ?label spec

  let label = Crcore.Session.label
  let spec = Crcore.Session.spec
  let ingest = Crcore.Session.ingest
  let resolve = Crcore.Session.resolve
  let baseline = Crcore.Session.baseline
  let last_result = Crcore.Session.last_result
  let stats = Crcore.Session.stats
  let resolves = Crcore.Session.resolves
  let close = Crcore.Session.close
  let is_closed = Crcore.Session.is_closed

  module Store = struct
    include Crcore.Session.Store

    let create ?(config = Config.default) ?cache () =
      Crcore.Session.Store.create ~config:(Config.to_engine config) ?cache
        ~max_sessions:(Config.max_sessions config) ?ttl_s:(Config.session_ttl config) ()
  end
end

(** {1 One-shot resolution} *)

let resolve ?(config = Config.default) ?(user = Crcore.Framework.silent) ?label spec =
  let h = Session.create ~config ?label spec in
  Fun.protect ~finally:(fun () -> Session.close h) (fun () -> Session.resolve ~user h)
