(** The stable public surface of the conflict-resolution system.

    One [open]-able (or dot-accessible) module collecting everything an
    application needs to resolve conflicts by data currency and
    consistency (ICDE 2013): the relational building blocks, the
    specification type [Se = (It, Σ, Γ)] with its constraint parsers, the
    interactive framework of Fig. 4 and its batch {!Engine}, the
    traditional baselines — and, front and centre, the {b session-based
    API} the [crsolved] daemon is built on:

    {[
      open Conflict_resolution

      let config = Config.(default |> with_budget_conflicts (Some 10_000)) in
      let s = Session.create ~config spec in
      let result, _stats = Session.resolve s in
      (* ... tuples and asserted orders arrive later ... *)
      Session.ingest s ~tuples ();
      let result', _ = Session.resolve s in      (* incremental re-resolution *)
      Session.close s
    ]}

    A {!Session.handle} keeps the entity's CNF encoding and incremental
    solver alive between resolves, so a conflict stream delivering updates
    for the same entity re-resolves against delta clauses instead of
    re-encoding from scratch. {!Session.Store} bounds a table of many such
    sessions (LRU capacity cap + idle TTL).

    Internal libraries ([sat], [maxsat], [clique], [porder], the module
    internals of [crcore]) are deliberately not re-exported: they may
    change freely between versions, while the surface below is the
    compatibility contract. *)

(** {1 Relational building blocks} *)

(** Attribute values: integers, strings, nulls. *)
module Value = Value

(** Relation schemas (attribute names and positions). *)
module Schema = Schema

(** Tuples over a schema. *)
module Tuple = Tuple

(** Entity instances: the tuples referring to one real-world entity. *)
module Entity = Entity

(** CSV reading/writing, including [load_entity]. *)
module Csv = Csv

(** {1 Specifications and their parsers} *)

(** Entity specifications [Se = (It, Σ, Γ)]; build with {!Spec.make_res}
    (typed errors) or {!Spec.make} (raising). *)
module Spec = Crcore.Spec

(** Currency-constraint ASTs (the Σ of a specification). *)
module Constraint_ast = Currency.Constraint_ast

(** Parser for the textual currency-constraint syntax, e.g.
    [t1\[status\] = "working" & t2\[status\] = "retired" -> prec(status)]. *)
module Constraint_parser = Currency.Parser

(** Constant conditional functional dependencies (the Γ of a
    specification), with [parse] / [parse_many] for the
    [AC = 212 -> city = "NY"] syntax. *)
module Constant_cfd = Cfd.Constant_cfd

(** {1 Reasoning} *)

(** The CNF encoding Ω(Se)/Φ(Se); chiefly useful for {!Encode.mode}
    ([Paper] vs the totality-augmented [Exact]) accepted across the API. *)
module Encode = Crcore.Encode

(** Validity of a specification (does a valid completion exist?). *)
module Validity = Crcore.Validity

(** True-value deduction (certain facts in every valid completion). *)
module Deduce = Crcore.Deduce

(** Derivation rules and the [Suggest] pipeline. *)
module Rules = Crcore.Rules

(** {1 Resolution} *)

(** The interactive loop of Fig. 4, one entity per call. *)
module Framework = Crcore.Framework

(** Batch resolution: incremental solver sessions, a sharded encoding
    cache, and structured statistics over collections of specifications.
    Set [config.jobs > 1] to resolve entities on that many domains in
    parallel — results are identical to the sequential run and arrive in
    input order. *)
module Engine = Crcore.Engine

(** Whole-relation repair: partition by key, resolve each entity. *)
module Repair = Crcore.Repair

(** Deterministic fault injection at the engine's phase boundaries —
    for testing batch robustness (per-entity isolation, the budget
    degradation ladder) against simulated crashes and hangs. *)
module Faults = Crcore.Faults

(** {1 Baselines and evaluation} *)

(** The traditional heuristic conflict-resolution baselines, including the
    BDR-style replication policies [Last_update_wins] / [Accept_local]. *)
module Pick = Crcore.Pick

(** Accuracy metrics (precision/recall against ground truth). *)
module Metrics = Crcore.Metrics

(** The encoding mode, re-exported for convenience: [Paper] is the
    heuristic reduction of Lemma 5, [Exact] adds totality clauses. *)
type mode = Crcore.Encode.mode = Paper | Exact

(** {1 Configuration} *)

(** One builder-style configuration for the whole API, replacing the
    separately-threaded engine, budget and lint knobs of earlier
    revisions:

    {[
      Config.(
        default
        |> with_jobs 4
        |> with_budget_conflicts (Some 20_000)
        |> with_max_degrade Engine.PartialDeduce
        |> with_session_ttl (Some 300.))
    ]}

    Every [with_] function returns a new value; {!Config.to_engine}
    projects the engine's record wherever the lower-level API is used
    directly. *)
module Config : sig
  type t

  (** {!Engine.default_config} + a 1024-session store cap, no TTL. *)
  val default : t

  (** {!Engine.naive_config}-based: fresh encoding and solvers per phase,
      no cache — the baseline configuration benchmarks compare against. *)
  val naive : t

  val with_mode : Encode.mode -> t -> t
  val with_repair : Rules.repair -> t -> t
  val with_max_rounds : int -> t -> t
  val with_incremental : bool -> t -> t
  val with_cache : bool -> t -> t
  val with_lint : bool -> t -> t

  (** Toggle the {!Crcore.Saturate} static pre-phase (on by default):
      polynomial closure of certain currency facts, injected into the
      solver session and used to skip deduction probes. Results are
      identical either way; only the work split changes. *)
  val with_saturate : bool -> t -> t

  val with_jobs : int -> t -> t
  val with_clamp_jobs : bool -> t -> t
  val with_budget_conflicts : int option -> t -> t
  val with_budget_ms : float option -> t -> t
  val with_max_degrade : Engine.degrade_level -> t -> t

  (** The {!Pick} policy of the [PickFallback] rung {e and}
      {!Session.baseline}'s default flavour in the daemon protocol. *)
  val with_pick : Pick.strategy -> t -> t

  val with_fail_fast : bool -> t -> t

  (** Solver-side clause-database management: level-0 pre/inprocessing at
      load and extension points plus periodic LBD learnt-clause reduction.
      On by default; [false] reproduces the pre-simplification solver. *)
  val with_simplify : bool -> t -> t

  (** {!Session.Store} capacity cap (LRU beyond it); clamped to ≥ 1. *)
  val with_session_cap : int -> t -> t

  (** {!Session.Store} idle TTL in seconds ([None] = keep forever). *)
  val with_session_ttl : float option -> t -> t

  (** {2 Durability and overload protection (the [crsolved] daemon)} *)

  (** Directory for the write-ahead log and snapshots. [None] (the
      default) disables durability entirely — no WAL, no recovery. *)
  val with_wal_dir : string option -> t -> t

  (** WAL fsync policy (see {!Durable.Wal.fsync}); default
      [Interval 0.05]. *)
  val with_fsync : Durable.Wal.fsync -> t -> t

  (** Take a snapshot (and compact the WAL) every N applied mutating
      events; [0] disables periodic snapshots (one is still taken on
      graceful drain). Default 10000. *)
  val with_snapshot_every : int -> t -> t

  (** Admission control: at most N requests executing concurrently —
      beyond it the daemon answers [OVERLOADED] instead of queueing
      ([PING]/[HEALTH]/[READY] are exempt). [0] (default) = unbounded. *)
  val with_max_inflight : int -> t -> t

  (** Per-request deadline in seconds, enforced through the engine's
      re-armed per-resolve [budget_ms] (a soft bound on solver time). *)
  val with_request_deadline : float option -> t -> t

  (** Close daemon connections idle longer than this many seconds.
      [None] (default) keeps them forever. *)
  val with_idle_timeout : float option -> t -> t

  (** The engine projection; folds the request deadline into
      [budget_ms]. *)
  val to_engine : t -> Engine.config

  val max_sessions : t -> int
  val session_ttl : t -> float option
  val wal_dir : t -> string option
  val fsync : t -> Durable.Wal.fsync
  val snapshot_every : t -> int
  val max_inflight : t -> int
  val request_deadline : t -> float option
  val idle_timeout : t -> float option
end

(** {1 Sessions}

    The resolution-as-a-service surface: a handle per entity whose
    encoding and incremental solver survive between resolves. *)

module Session : sig
  type handle = Crcore.Session.handle

  (** [create ?config ?cache ?label spec] opens a session on the entity's
      initial specification — encoding, the lint pre-phase and (in
      incremental mode) the solver load happen here. *)
  val create : ?config:Config.t -> ?cache:Engine.cache -> ?label:string -> Spec.t -> handle

  val label : handle -> string

  (** The accumulated specification: initial spec plus everything
      {!ingest}ed since. *)
  val spec : handle -> Spec.t

  (** [ingest h ?orders ?tuples ()] absorbs new arrivals: [tuples] append
      to the entity in arrival order, [orders] are user-asserted currency
      edges over the accumulated entity. Pure extensions reach the live
      solver as delta clauses ({!Encode.extend}); a grown value universe
      reloads the solver but reuses the Σ instance sweep. Raises
      [Invalid_argument] on a closed handle. *)
  val ingest :
    handle -> ?orders:Spec.order_edge list -> ?tuples:Tuple.t list -> unit -> unit

  (** [resolve ?user h] (re-)resolves the accumulated specification on the
      live session — same result, degradation level and [degrade_reason]
      metadata as {!Engine.resolve} — with the configured budgets re-armed
      for this request. [user] defaults to {!Framework.silent}. *)
  val resolve : ?user:Engine.user -> handle -> Engine.result * Engine.entity_stats

  (** [baseline h strategy] answers with a {!Pick} policy on the
      accumulated entity — no solver, no inference. *)
  val baseline : handle -> Pick.strategy -> Value.t array

  val last_result : handle -> Engine.result option
  val stats : handle -> Engine.entity_stats
  val resolves : handle -> int

  (** Idempotent; further {!ingest}/{!resolve} raise [Invalid_argument]. *)
  val close : handle -> unit

  val is_closed : handle -> bool

  (** A bounded, thread-safe table of live sessions keyed by label: at
      most {!Config.max_sessions} live handles (least-recently-used
      evicted first) and {!sweep} closes sessions idle past the TTL. The
      store's sessions share one encoding cache. *)
  module Store : sig
    type t = Crcore.Session.Store.t

    val create : ?config:Config.t -> ?cache:Engine.cache -> unit -> t
    val config : t -> Engine.config

    (** [find t label] is the live session for [label], touching its LRU
        slot and idle clock. *)
    val find : t -> string -> handle option

    (** [get_or_create t label ~spec] returns the live session for
        [label] or opens one on [spec ()]; the boolean is [true] when a
        session was created. *)
    val get_or_create : t -> string -> spec:(unit -> Spec.t) -> handle * bool

    val remove : t -> string -> bool

    (** Close every session idle longer than the TTL; returns how many. *)
    val sweep : t -> int

    val clear : t -> unit
    val live : t -> int

    type stats = Crcore.Session.Store.stats = {
      live : int;
      created : int;
      reused : int;
      evicted_lru : int;
      evicted_ttl : int;
      removed : int;
      resolves : int;
      delta_extensions : int;
      rebuilds_renumbered : int;
      rebuilds_impure : int;
      solvers_built : int;
      template_hits : int;
      template_misses : int;
      instantiations : int;
      sat : Sat.Solver.stats;
    }

    val stats : t -> stats
    val pp_stats : Format.formatter -> stats -> unit
  end
end

(** {1 One-shot resolution}

    @deprecated Prefer {!Session.create} / {!Session.resolve} /
    {!Session.close} — this wrapper opens a session, resolves once and
    closes it, paying the full encoding cost per call. It remains for
    scripts and tests that genuinely resolve each specification once. *)
val resolve :
  ?config:Config.t ->
  ?user:Engine.user ->
  ?label:string ->
  Spec.t ->
  Engine.result * Engine.entity_stats
