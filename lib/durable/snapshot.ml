type state =
  | Evicted
  | Replayable of {
      tuples : Value.t list list;
      orders : (string * int * int) list;
    }

type entry = {
  label : string;
  header : string list;
  last_seq : int;
  state : state;
}

type t = { upto : int; events_applied : int; entries : entry list }

let prefix = "snap-"
let suffix = ".snap"
let path dir upto = Filename.concat dir (Printf.sprintf "snap-%08d.snap" upto)

(* ----------------------------------------------------------- value codec *)

let encode_value = function
  | Value.Null -> "n"
  | Value.Int i -> "i" ^ string_of_int i
  | Value.Float f -> Printf.sprintf "f%h" f
  | Value.Str s -> "s" ^ s

let decode_value cell =
  if cell = "" then Error "empty value cell"
  else
    let payload = String.sub cell 1 (String.length cell - 1) in
    match cell.[0] with
    | 'n' when payload = "" -> Ok Value.Null
    | 'i' -> (
        match int_of_string_opt payload with
        | Some i -> Ok (Value.Int i)
        | None -> Error ("bad int cell " ^ cell))
    | 'f' -> (
        match float_of_string_opt payload with
        | Some f -> Ok (Value.Float f)
        | None -> Error ("bad float cell " ^ cell))
    | 's' -> Ok (Value.Str payload)
    | _ -> Error ("bad value tag in " ^ cell)

(* ---------------------------------------------------------- record lines *)

let csv_cell fields =
  let s = Csv.to_string [ fields ] in
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\n' then String.sub s 0 (n - 1) else s

let parse_csv_cell cell =
  match Csv.parse_string cell with
  | [ fields ] -> Ok fields
  | [] -> Ok []
  | _ -> Error "multi-row CSV cell"

let ( let* ) = Result.bind

let rec map_result f = function
  | [] -> Ok []
  | x :: xs ->
      let* y = f x in
      let* ys = map_result f xs in
      Ok (y :: ys)

(* Record payloads, one per frame:
     S <upto>|<events_applied>|<n_entries>     header, first frame
     E <label>|<evicted01>|<last_seq>|<csv>    entry start (csv = schema)
     T <csv of tagged cells>                   one arrival row
     D <attr>|<lo>|<hi>                        one order edge
     Z                                         end marker, last frame *)

let write_frames fd t =
  let put line = ignore (Frame.write fd line) in
  put
    (Printf.sprintf "S %d|%d|%d" t.upto t.events_applied (List.length t.entries));
  List.iter
    (fun e ->
      let evicted = match e.state with Evicted -> 1 | Replayable _ -> 0 in
      put
        (Printf.sprintf "E %s|%d|%d|%s" e.label evicted e.last_seq
           (csv_cell e.header));
      match e.state with
      | Evicted -> ()
      | Replayable { tuples; orders } ->
          List.iter
            (fun row -> put ("T " ^ csv_cell (List.map encode_value row)))
            tuples;
          List.iter
            (fun (attr, lo, hi) -> put (Printf.sprintf "D %s|%d|%d" attr lo hi))
            orders)
    t.entries;
  put "Z"

let save ~dir t =
  Wal.mkdir_p dir;
  let final = path dir t.upto in
  let tmp = final ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      write_frames fd t;
      Unix.fsync fd);
  Sys.rename tmp final;
  final

(* ----------------------------------------------------------------- load *)

let split3 line =
  match String.split_on_char '|' line with
  | [ a; b; c ] -> Ok (a, b, c)
  | _ -> Error ("expected 3 fields in " ^ line)

let int_field s =
  match int_of_string_opt s with
  | Some i -> Ok i
  | None -> Error ("bad integer field " ^ s)

let parse_entry body =
  match String.split_on_char '|' body with
  | [ label; evicted; last_seq; csv ] ->
      let* evicted = int_field evicted in
      let* last_seq = int_field last_seq in
      let* header = parse_csv_cell csv in
      let state =
        if evicted = 1 then Evicted else Replayable { tuples = []; orders = [] }
      in
      Ok { label; header; last_seq; state }
  | _ -> Error ("bad entry record " ^ body)

(* Entries accumulate T/D records in reverse; flip both lists when the
   entry ends so tuples come back in arrival order and order edges in the
   order they were captured. *)
let finish e =
  match e.state with
  | Evicted -> e
  | Replayable { tuples; orders } ->
      { e with state = Replayable { tuples = List.rev tuples; orders = List.rev orders } }

let add_tuple e row =
  match e.state with
  | Evicted -> Error "arrival row on evicted entry"
  | Replayable r -> Ok { e with state = Replayable { r with tuples = row :: r.tuples } }

let add_order e edge =
  match e.state with
  | Evicted -> Error "order edge on evicted entry"
  | Replayable r -> Ok { e with state = Replayable { r with orders = edge :: r.orders } }

let parse_frames payloads =
  let split_tag line =
    if line = "Z" then Ok ('Z', "")
    else if String.length line >= 2 && line.[1] = ' ' then
      Ok (line.[0], String.sub line 2 (String.length line - 2))
    else Error ("bad snapshot record " ^ line)
  in
  let* header, rest =
    match payloads with
    | [] -> Error "empty snapshot"
    | h :: rest -> (
        let* tag, body = split_tag h in
        match tag with
        | 'S' ->
            let* upto, applied, count = split3 body in
            let* upto = int_field upto in
            let* applied = int_field applied in
            let* count = int_field count in
            Ok ((upto, applied, count), rest)
        | _ -> Error "snapshot does not start with a header record")
  in
  let rec go current acc sealed = function
    | [] -> Error "snapshot missing end marker"
    | line :: rest -> (
        let* tag, body = split_tag line in
        match (tag, current) with
        | 'Z', _ ->
            if rest <> [] then Error "records past the end marker"
            else if sealed then Error "duplicate end marker"
            else
              let acc = match current with None -> acc | Some e -> finish e :: acc in
              Ok (List.rev acc)
        | 'E', _ ->
            let acc = match current with None -> acc | Some e -> finish e :: acc in
            let* e = parse_entry body in
            go (Some e) acc sealed rest
        | 'T', Some e ->
            let* cells = parse_csv_cell body in
            let* row = map_result decode_value cells in
            let* e = add_tuple e row in
            go (Some e) acc sealed rest
        | 'D', Some e ->
            let* attr, lo, hi = split3 body in
            let* lo = int_field lo in
            let* hi = int_field hi in
            let* e = add_order e (attr, lo, hi) in
            go (Some e) acc sealed rest
        | ('T' | 'D'), None -> Error "row/order record before any entry"
        | _ -> Error ("unknown snapshot record tag " ^ String.make 1 tag))
  in
  let upto, events_applied, count = header in
  let* entries = go None [] false rest in
  if List.length entries <> count then
    Error
      (Printf.sprintf "snapshot declares %d entries, found %d" count
         (List.length entries))
  else Ok { upto; events_applied; entries }

let load file =
  match Frame.read_file file with
  | exception Sys_error e -> Error e
  | scan ->
      if scan.Frame.torn then Error "torn snapshot file"
      else parse_frames scan.Frame.payloads

let indices ~dir = List.map fst (Wal.indexed_files ~dir ~prefix ~suffix)

let load_latest ~dir =
  let files = List.rev (Wal.indexed_files ~dir ~prefix ~suffix) in
  List.find_map
    (fun (_, file) -> match load file with Ok t -> Some t | Error _ -> None)
    files

let remove_except ~dir ~keep =
  let victims =
    Wal.indexed_files ~dir ~prefix ~suffix
    |> List.filter (fun (i, _) -> i <> keep)
  in
  List.iter (fun (_, p) -> try Sys.remove p with Sys_error _ -> ()) victims;
  List.length victims
