(** Per-daemon write-ahead log: every state-changing protocol event
    ([OPEN]/[INGEST]/[ORDER]/[CLOSE]) is appended — {!Frame}-framed, CRC
    checked — before the daemon acknowledges it, so a crashed [crsolved]
    replays the log and reaches exactly the state an uninterrupted run
    would hold.

    The log is a directory of numbered segments ([wal-00000042.log]);
    {!append} rotates to a fresh segment past a size threshold, and a
    {!Snapshot} taken after a rotation lets recovery delete every segment
    it covers. Replay tolerates a torn tail — a partial or corrupt final
    record, the signature of a crash mid-write — by truncating at the
    first bad record; only the unacknowledged suffix is lost, which the
    at-least-once contract lets clients re-send (idempotently, when they
    stamp events with [@seq] sequence numbers).

    Events carry the {e raw} wire strings (labels, CSV rows), not parsed
    values: replaying a record through the daemon's normal apply path is
    byte-for-byte the same computation as the original request. *)

(** When appended records are forced to disk:
    - [Always] — fsync after every record; no acknowledged event can be
      lost even to an OS crash, at a large per-request cost;
    - [Interval s] — a flusher ({!maybe_flush}) fsyncs at most every [s]
      seconds; an OS crash can lose the last interval, a plain process
      crash loses nothing (completed [write]s survive the process);
    - [Never] — fsync only on rotation and close. *)
type fsync = Always | Interval of float | Never

val fsync_to_string : fsync -> string

(** [fsync_of_string s] accepts ["always"], ["never"], ["interval"]
    (default 0.05 s) and ["interval:<seconds>"]. *)
val fsync_of_string : string -> (fsync, string) result

(** The loggable protocol events. Row and header fields are the raw
    strings off the wire; [seq] is the client's per-label sequence number
    when it supplied one (the dedup key for at-least-once redelivery). *)
type event =
  | Open of { label : string; header : string list }
  | Ingest of { label : string; row : string list }
  | Order of { label : string; attr : string; lo : int; hi : int }
  | Close of string

type record = { seq : int option; event : event }

(** Textual payload form of a record (what gets framed), and its parser —
    exposed for tests and for {!Snapshot}'s reuse. Labels and attribute
    names must not contain ['|'] or newlines (the wire protocol already
    guarantees this). *)
val record_to_line : record -> string

val record_of_line : string -> (record, string) result

(** {1 Writing} *)

type writer

(** [open_writer ?fsync ?segment_bytes ~dir ()] creates [dir] if needed
    and starts a {e fresh} segment numbered past every existing segment
    and snapshot — an appender never touches bytes a previous life wrote.
    Defaults: [Interval 0.05], 8 MiB segments. Thread-safe. *)
val open_writer : ?fsync:fsync -> ?segment_bytes:int -> dir:string -> unit -> writer

val append : writer -> record -> unit

(** Force everything appended so far to disk (any policy). *)
val flush : writer -> unit

(** Under [Interval s]: fsync iff there are unsynced records and the last
    sync is at least [s] old. No-op otherwise. *)
val maybe_flush : writer -> unit

(** [rotate w] fsyncs and closes the current segment and opens the next;
    returns the closed segment's index. A snapshot taken after [rotate]
    covers everything through that index. *)
val rotate : writer -> int

val current_segment : writer -> int

(** Records appended over the writer's life. *)
val appended : writer -> int

(** Records not yet covered by an fsync — the WAL lag [HEALTH] reports. *)
val unsynced : writer -> int

(** Seconds since the last fsync (0 if nothing was ever appended). *)
val last_sync_age : writer -> float

val close_writer : writer -> unit

(** {1 Reading} *)

type replay = {
  records : int;  (** intact records delivered to the callback *)
  segments : int;  (** segments visited *)
  torn : bool;  (** replay hit a torn/corrupt tail and stopped there *)
  truncated_bytes : int;  (** bytes discarded past the last intact record *)
}

(** [replay ~dir ?above ?repair f] feeds every intact record of every
    segment with index > [above] (default: all), in segment-then-offset
    order, to [f]. At the first bad record the scan stops — later bytes
    and later segments are the torn tail — and with [repair] (default
    [true]) the torn segment file is truncated to its valid prefix.
    Records whose payload no longer parses count as bad. A missing
    directory replays as empty. *)
val replay :
  dir:string -> ?above:int -> ?repair:bool -> (record -> unit) -> replay

(** Existing segment indices, ascending. *)
val segments : dir:string -> int list

(** [remove_upto ~dir k] deletes every segment with index <= [k]
    (compaction after a successful snapshot); returns how many. *)
val remove_upto : dir:string -> int -> int

(** {1 Shared directory helpers} *)

val mkdir_p : string -> unit

(** [indexed_files ~dir ~prefix ~suffix] lists [(index, path)] of files
    named [<prefix><%08d><suffix>], ascending. Missing dir = []. *)
val indexed_files : dir:string -> prefix:string -> suffix:string -> (int * string) list
