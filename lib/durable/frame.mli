(** Length-prefixed, CRC-checked record framing — the byte layout shared
    by the {!Wal} segments and {!Snapshot} files.

    One frame on disk is

    {v
    +------+-------------+-------------+------------------+
    | 0xD7 | len u32 LE  | crc32 u32 LE| payload (len B)  |
    +------+-------------+-------------+------------------+
    v}

    where [crc32] is the IEEE CRC-32 of the payload bytes. A reader
    stops at the first frame whose magic, length, or checksum does not
    hold — everything before that point is trusted, everything after is
    the torn tail of an interrupted write. *)

(** IEEE CRC-32 (the zlib/Ethernet polynomial) of a whole string. *)
val crc32 : string -> int32

(** Frame header size in bytes (magic + length + checksum). *)
val header_bytes : int

(** [write fd payload] appends one framed record; the frame is assembled
    in memory and handed to the OS as a single [write]. Returns the frame
    size in bytes. *)
val write : Unix.file_descr -> string -> int

(** Result of scanning a framed file. [valid_bytes] is the offset just
    past the last intact frame — the truncation point that repairs a torn
    tail; [torn] is set when trailing bytes past that offset exist (a
    partial or corrupt final record). *)
type scan = { payloads : string list; valid_bytes : int; torn : bool }

(** [read_file path] scans the whole file, returning intact payloads in
    order and the torn-tail verdict. Raises [Sys_error] if the file
    cannot be read. *)
val read_file : string -> scan
