(** Point-in-time serialization of the daemon's {e replayable} state —
    per-entity schemas, applied arrivals, asserted orders, and dedup
    cursors, never solver internals — so recovery replays
    snapshot + WAL-tail instead of the full history, and WAL segments the
    snapshot covers can be deleted (compaction).

    A snapshot is taken just after a {!Wal.rotate}: it covers every
    segment up to and including the one that rotation closed ([upto]),
    and the file is named for that index ([snap-%08d.snap]). Recovery
    loads the newest intact snapshot and replays only segments with
    index > [upto].

    Files are written atomically (temp file, fsync, rename) and use the
    same {!Frame} CRC framing as the WAL, terminated by an explicit
    end-marker record — a snapshot missing its marker, or failing any
    CRC, is ignored and recovery falls back to the next older one (or to
    full-log replay).

    Values are encoded losslessly — [Value.to_string]/[of_string] does
    not round-trip ([Str "123"] would come back [Int 123]) — with a tag
    byte per cell: [n] null, [i<dec>] int, [f<hexfloat>] float
    ([%h]-printed, so NaN/inf and every bit pattern survive), [s<raw>]
    string. *)

(** What an entity's state replays to. [Evicted] marks an entity whose
    session was LRU/TTL-evicted with no buffered tail — the tombstone
    preserves the daemon's "was evicted; re-OPEN" error behaviour across
    restarts. [Replayable] holds arrivals in arrival order and order
    edges exactly as they would be passed to the spec builder. *)
type state =
  | Evicted
  | Replayable of {
      tuples : Value.t list list;
      orders : (string * int * int) list;  (** (attr, lo, hi) *)
    }

type entry = {
  label : string;
  header : string list;  (** schema attribute names, in order *)
  last_seq : int;  (** highest applied [@seq]; 0 when none seen *)
  state : state;
}

type t = {
  upto : int;  (** WAL segments with index <= [upto] are covered *)
  events_applied : int;  (** unique mutating events folded into this state *)
  entries : entry list;
}

(** [save ~dir t] atomically writes [snap-<upto>.snap]; returns its path. *)
val save : dir:string -> t -> string

(** Newest snapshot that passes all integrity checks, if any; corrupt or
    unfinished files are skipped (not deleted). *)
val load_latest : dir:string -> t option

(** Snapshot indices present, ascending. *)
val indices : dir:string -> int list

(** [remove_except ~dir ~keep] deletes every snapshot except index
    [keep]; returns how many were removed. *)
val remove_except : dir:string -> keep:int -> int
