let magic = '\xD7'
let header_bytes = 9

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let t = Lazy.force table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx = Int32.to_int (Int32.logxor !c (Int32.of_int (Char.code ch))) land 0xff in
      c := Int32.logxor (Int32.shift_right_logical !c 8) t.(idx))
    s;
  Int32.logxor !c 0xFFFFFFFFl

let put_u32le b off v =
  Bytes.set b off (Char.chr (Int32.to_int (Int32.logand v 0xffl)));
  Bytes.set b (off + 1)
    (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v 8) 0xffl)));
  Bytes.set b (off + 2)
    (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v 16) 0xffl)));
  Bytes.set b (off + 3)
    (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v 24) 0xffl)))

let get_u32le s off =
  let b i = Int32.of_int (Char.code s.[off + i]) in
  Int32.logor (b 0)
    (Int32.logor
       (Int32.shift_left (b 1) 8)
       (Int32.logor (Int32.shift_left (b 2) 16) (Int32.shift_left (b 3) 24)))

let write fd payload =
  let len = String.length payload in
  let frame = Bytes.create (header_bytes + len) in
  Bytes.set frame 0 magic;
  put_u32le frame 1 (Int32.of_int len);
  put_u32le frame 5 (crc32 payload);
  Bytes.blit_string payload 0 frame header_bytes len;
  (* a single write: on a process kill the record is either fully handed
     to the OS or is the torn tail the reader truncates *)
  let total = Bytes.length frame in
  let off = ref 0 in
  while !off < total do
    off := !off + Unix.write fd frame !off (total - !off)
  done;
  total

type scan = { payloads : string list; valid_bytes : int; torn : bool }

let read_file path =
  let ic = open_in_bin path in
  let data =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let n = String.length data in
  let payloads = ref [] in
  let off = ref 0 in
  let ok = ref true in
  while !ok && !off + header_bytes <= n do
    if data.[!off] <> magic then ok := false
    else begin
      let len = Int32.to_int (get_u32le data (!off + 1)) in
      if len < 0 || !off + header_bytes + len > n then ok := false
      else
        let crc = get_u32le data (!off + 5) in
        let payload = String.sub data (!off + header_bytes) len in
        if crc32 payload <> crc then ok := false
        else begin
          payloads := payload :: !payloads;
          off := !off + header_bytes + len
        end
    end
  done;
  { payloads = List.rev !payloads; valid_bytes = !off; torn = !off < n }
