type fsync = Always | Interval of float | Never

let fsync_to_string = function
  | Always -> "always"
  | Never -> "never"
  | Interval s -> Printf.sprintf "interval:%g" s

let fsync_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "always" -> Ok Always
  | "never" -> Ok Never
  | "interval" -> Ok (Interval 0.05)
  | s when String.length s > 9 && String.sub s 0 9 = "interval:" -> (
      let arg = String.sub s 9 (String.length s - 9) in
      match float_of_string_opt arg with
      | Some f when f > 0. -> Ok (Interval f)
      | _ -> Error (Printf.sprintf "bad fsync interval %S" arg))
  | other ->
      Error
        (Printf.sprintf
           "unknown fsync policy %S (want always, never, interval[:seconds])"
           other)

type event =
  | Open of { label : string; header : string list }
  | Ingest of { label : string; row : string list }
  | Order of { label : string; attr : string; lo : int; hi : int }
  | Close of string

type record = { seq : int option; event : event }

(* Rows and headers cross this boundary as CSV so that values containing
   '|' or '@' survive; [Csv.to_string] ends every row with '\n', which we
   strip exactly (String.trim would also eat significant trailing spaces
   inside the last value). *)
let csv_cell fields =
  let s = Csv.to_string [ fields ] in
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\n' then String.sub s 0 (n - 1) else s

let record_to_line { seq; event } =
  let prefix = match seq with None -> "" | Some n -> Printf.sprintf "@%d " n in
  let body =
    match event with
    | Open { label; header } -> Printf.sprintf "O %s|%s" label (csv_cell header)
    | Ingest { label; row } -> Printf.sprintf "I %s|%s" label (csv_cell row)
    | Order { label; attr; lo; hi } ->
        Printf.sprintf "R %s|%s|%d|%d" label attr lo hi
    | Close label -> Printf.sprintf "C %s" label
  in
  prefix ^ body

let split_fields s = String.split_on_char '|' s

let parse_csv_cell cell =
  match Csv.parse_string cell with
  | [ fields ] -> Ok fields
  | [] -> Ok [] (* a lone "" row is filtered by the parser *)
  | _ -> Error "multi-row CSV cell"

let record_of_line line =
  let ( let* ) = Result.bind in
  let* seq, rest =
    if String.length line > 0 && line.[0] = '@' then
      match String.index_opt line ' ' with
      | None -> Error "bad seq prefix: no space"
      | Some sp -> (
          let num = String.sub line 1 (sp - 1) in
          match int_of_string_opt num with
          | Some n when n >= 0 ->
              Ok (Some n, String.sub line (sp + 1) (String.length line - sp - 1))
          | _ -> Error (Printf.sprintf "bad seq %S" num))
    else Ok (None, line)
  in
  let* tag, body =
    if String.length rest >= 2 && rest.[1] = ' ' then
      Ok (rest.[0], String.sub rest 2 (String.length rest - 2))
    else Error (Printf.sprintf "bad record line %S" rest)
  in
  (* O/I bodies are [label|csv] where the CSV cell may itself contain
     '|' (CSV only quotes commas/quotes/newlines) — split at the first
     '|' only; labels cannot contain one. *)
  let* label_csv =
    match tag with
    | 'O' | 'I' -> (
        match String.index_opt body '|' with
        | Some i ->
            Ok
              (Some
                 ( String.sub body 0 i,
                   String.sub body (i + 1) (String.length body - i - 1) ))
        | None -> Error (Printf.sprintf "bad record line %S" rest))
    | _ -> Ok None
  in
  let* event =
    match (tag, label_csv, split_fields body) with
    | 'O', Some (label, csv), _ ->
        let* header = parse_csv_cell csv in
        Ok (Open { label; header })
    | 'I', Some (label, csv), _ ->
        let* row = parse_csv_cell csv in
        Ok (Ingest { label; row })
    | 'R', _, [ label; attr; lo; hi ] -> (
        match (int_of_string_opt lo, int_of_string_opt hi) with
        | Some lo, Some hi -> Ok (Order { label; attr; lo; hi })
        | _ -> Error "bad order bounds")
    | 'C', _, [ label ] -> Ok (Close label)
    | _ -> Error (Printf.sprintf "bad record tag/arity in %S" rest)
  in
  Ok { seq; event }

(* ---------------------------------------------------------------- files *)

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let indexed_files ~dir ~prefix ~suffix =
  let entries = try Sys.readdir dir with Sys_error _ -> [||] in
  let plen = String.length prefix and slen = String.length suffix in
  Array.to_list entries
  |> List.filter_map (fun name ->
         let n = String.length name in
         if
           n = plen + 8 + slen
           && String.sub name 0 plen = prefix
           && String.sub name (n - slen) slen = suffix
         then
           match int_of_string_opt (String.sub name plen 8) with
           | Some idx -> Some (idx, Filename.concat dir name)
           | None -> None
         else None)
  |> List.sort compare

let seg_prefix = "wal-"
let seg_suffix = ".log"
let snap_prefix = "snap-"
let snap_suffix = ".snap"
let seg_path dir idx = Filename.concat dir (Printf.sprintf "wal-%08d.log" idx)

let segments ~dir =
  List.map fst (indexed_files ~dir ~prefix:seg_prefix ~suffix:seg_suffix)

(* A fresh writer must start past every file a previous life produced:
   past the segments (obviously) and past the snapshots too, so that a
   snapshot's "covers segments <= k" claim can never be confused by a new
   segment reusing index k. *)
let next_index dir =
  let top files = List.fold_left (fun acc (i, _) -> max acc i) 0 files in
  1
  + max
      (top (indexed_files ~dir ~prefix:seg_prefix ~suffix:seg_suffix))
      (top (indexed_files ~dir ~prefix:snap_prefix ~suffix:snap_suffix))

(* ---------------------------------------------------------------- write *)

type writer = {
  dir : string;
  fsync : fsync;
  segment_bytes : int;
  m : Mutex.t;
  mutable fd : Unix.file_descr;
  mutable seg : int;
  mutable seg_size : int;
  mutable appended : int;
  mutable unsynced : int;
  mutable last_sync : float;
}

let locked w f =
  Mutex.lock w.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock w.m) f

let open_seg dir idx =
  Unix.openfile (seg_path dir idx) [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644

let open_writer ?(fsync = Interval 0.05) ?(segment_bytes = 8 * 1024 * 1024) ~dir () =
  mkdir_p dir;
  let seg = next_index dir in
  {
    dir;
    fsync;
    segment_bytes;
    m = Mutex.create ();
    fd = open_seg dir seg;
    seg;
    seg_size = 0;
    appended = 0;
    unsynced = 0;
    last_sync = Unix.gettimeofday ();
  }

let sync_locked w =
  if w.unsynced > 0 then Unix.fsync w.fd;
  w.unsynced <- 0;
  w.last_sync <- Unix.gettimeofday ()

let rotate_locked w =
  sync_locked w;
  Unix.close w.fd;
  let closed = w.seg in
  w.seg <- w.seg + 1;
  w.seg_size <- 0;
  w.fd <- open_seg w.dir w.seg;
  closed

let append w record =
  let line = record_to_line record in
  locked w (fun () ->
      if w.seg_size >= w.segment_bytes then ignore (rotate_locked w);
      w.seg_size <- w.seg_size + Frame.write w.fd line;
      w.appended <- w.appended + 1;
      w.unsynced <- w.unsynced + 1;
      match w.fsync with
      | Always -> sync_locked w
      | Interval _ | Never -> ())

let flush w = locked w (fun () -> sync_locked w)

let maybe_flush w =
  match w.fsync with
  | Always | Never -> ()
  | Interval s ->
      locked w (fun () ->
          if w.unsynced > 0 && Unix.gettimeofday () -. w.last_sync >= s then
            sync_locked w)

let rotate w = locked w (fun () -> rotate_locked w)
let current_segment w = locked w (fun () -> w.seg)
let appended w = locked w (fun () -> w.appended)
let unsynced w = locked w (fun () -> w.unsynced)

let last_sync_age w =
  locked w (fun () ->
      if w.appended = 0 then 0. else Unix.gettimeofday () -. w.last_sync)

let close_writer w =
  locked w (fun () ->
      sync_locked w;
      Unix.close w.fd)

(* ----------------------------------------------------------------- read *)

type replay = {
  records : int;
  segments : int;
  torn : bool;
  truncated_bytes : int;
}

let truncate_file path keep =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Unix.ftruncate fd keep;
      Unix.fsync fd)

let replay ~dir ?(above = 0) ?(repair = true) f =
  let files =
    indexed_files ~dir ~prefix:seg_prefix ~suffix:seg_suffix
    |> List.filter (fun (i, _) -> i > above)
  in
  let records = ref 0 and visited = ref 0 in
  let torn = ref false and truncated = ref 0 in
  (* Everything past the first bad record — including whole later
     segments — is the torn tail: records are appended in order, so a
     valid record can never follow an invalid one in a single history. *)
  (try
     List.iter
       (fun (_, path) ->
         incr visited;
         let scan = Frame.read_file path in
         List.iter
           (fun payload ->
             match record_of_line payload with
             | Ok r ->
                 f r;
                 incr records
             | Error _ ->
                 torn := true;
                 raise Exit)
           scan.Frame.payloads;
         if scan.Frame.torn then begin
           torn := true;
           let size = (Unix.stat path).Unix.st_size in
           truncated := !truncated + (size - scan.Frame.valid_bytes);
           if repair then truncate_file path scan.Frame.valid_bytes;
           raise Exit
         end)
       files
   with Exit -> ());
  { records = !records; segments = !visited; torn = !torn; truncated_bytes = !truncated }

let remove_upto ~dir k =
  let victims =
    indexed_files ~dir ~prefix:seg_prefix ~suffix:seg_suffix
    |> List.filter (fun (i, _) -> i <= k)
  in
  List.iter (fun (_, path) -> try Sys.remove path with Sys_error _ -> ()) victims;
  List.length victims
