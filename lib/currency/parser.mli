(** Concrete syntax for currency constraints.

    Grammar (ASCII rendering of the paper's notation):

    {v
    constraint := premise "->" "prec" "(" attr ")"
    premise    := "true" | pred { "&" pred }
    pred       := "prec" "(" attr ")"
                | tref "[" attr "]" op tref "[" attr "]"   (same attr twice)
                | tref "[" attr "]" op constant
    tref       := "t1" | "t2"
    op         := "=" | "!=" | "<>" | "<" | "<=" | ">" | ">="
    constant   := "..." | '...' | number | null
    v}

    Example: [t1\[status\] = "working" & t2\[status\] = "retired" -> prec(status)] *)

(** [parse s] parses one constraint. *)
val parse : string -> (Constraint_ast.t, string) result

(** [parse_exn s] is {!parse}, raising [Failure] on error. *)
val parse_exn : string -> Constraint_ast.t

(** Where a constraint sat in the source text: 1-based line, 1-based
    inclusive column range (leading/trailing whitespace excluded). Lint
    diagnostics and parse errors cite these instead of list indices. *)
type span = { line : int; col_start : int; col_end : int }

val pp_span : Format.formatter -> span -> unit
val span_to_string : span -> string

(** [parse_many s] parses a newline- or semicolon-separated list; lines
    starting with [#] are comments. Errors cite the offending constraint's
    line/column span and text. *)
val parse_many : string -> (Constraint_ast.t list, string) result

(** [parse_many_spanned s] is {!parse_many}, with each constraint paired
    with its source span — the input to span-aware diagnostics
    ([Crcore.Analyze], [crsolve lint]). *)
val parse_many_spanned : string -> ((Constraint_ast.t * span) list, string) result
