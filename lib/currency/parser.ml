type token =
  | Ident of string
  | Str_lit of string
  | Num of string
  | Op of Value.op
  | Lbracket
  | Rbracket
  | Lparen
  | Rparen
  | Amp
  | Arrow

exception Err of string

let fail fmt = Printf.ksprintf (fun m -> raise (Err m)) fmt

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '[' then (toks := Lbracket :: !toks; incr i)
    else if c = ']' then (toks := Rbracket :: !toks; incr i)
    else if c = '(' then (toks := Lparen :: !toks; incr i)
    else if c = ')' then (toks := Rparen :: !toks; incr i)
    else if c = '&' then (toks := Amp :: !toks; incr i)
    else if c = '-' && !i + 1 < n && s.[!i + 1] = '>' then (toks := Arrow :: !toks; i := !i + 2)
    else if c = '"' || c = '\'' then begin
      let quote = c in
      let j = ref (!i + 1) in
      let buf = Buffer.create 8 in
      while !j < n && s.[!j] <> quote do
        Buffer.add_char buf s.[!j];
        incr j
      done;
      if !j >= n then fail "unterminated string literal";
      toks := Str_lit (Buffer.contents buf) :: !toks;
      i := !j + 1
    end
    else if c = '<' || c = '>' || c = '=' || c = '!' then begin
      let two = if !i + 1 < n then String.sub s !i 2 else "" in
      match Value.op_of_string two with
      | Some op -> (toks := Op op :: !toks; i := !i + 2)
      | None -> (
          match Value.op_of_string (String.make 1 c) with
          | Some op -> (toks := Op op :: !toks; incr i)
          | None -> fail "bad operator at %d" !i)
    end
    else if (c >= '0' && c <= '9') || (c = '-' && !i + 1 < n && s.[!i + 1] >= '0' && s.[!i + 1] <= '9')
    then begin
      let j = ref (!i + 1) in
      while !j < n && ((s.[!j] >= '0' && s.[!j] <= '9') || s.[!j] = '.' || s.[!j] = 'e' || s.[!j] = '-')
      do
        incr j
      done;
      toks := Num (String.sub s !i (!j - !i)) :: !toks;
      i := !j
    end
    else if is_ident_char c then begin
      let j = ref !i in
      while !j < n && is_ident_char s.[!j] do
        incr j
      done;
      toks := Ident (String.sub s !i (!j - !i)) :: !toks;
      i := !j
    end
    else fail "unexpected character %C at %d" c !i
  done;
  List.rev !toks

(* recursive-descent over the token list *)

let parse_const = function
  | Str_lit s :: rest -> (Value.Str s, rest)
  | Num x :: rest -> (Value.of_string x, rest)
  | Ident "null" :: rest -> (Value.Null, rest)
  | _ -> fail "expected a constant"

let parse_tref_attr = function
  | Ident ("t1" | "t2" as t) :: Lbracket :: Ident a :: Rbracket :: rest ->
      let r = if t = "t1" then Constraint_ast.T1 else Constraint_ast.T2 in
      Some (r, a, rest)
  | _ -> None

let parse_pred toks =
  match toks with
  | Ident "prec" :: Lparen :: Ident a :: Rparen :: rest -> (Constraint_ast.Prec a, rest)
  | _ -> (
      match parse_tref_attr toks with
      | None -> fail "expected a predicate"
      | Some (r, a, rest) -> (
          match rest with
          | Op op :: rest' -> (
              match parse_tref_attr rest' with
              | Some (r2, a2, rest'') ->
                  if r = Constraint_ast.T1 && r2 = Constraint_ast.T2 && a = a2 then
                    (Constraint_ast.Cmp2 (a, op), rest'')
                  else if a <> a2 then fail "tuple-to-tuple comparison must use the same attribute"
                  else fail "tuple-to-tuple comparison must be t1[..] op t2[..]"
              | None ->
                  let c, rest'' = parse_const rest' in
                  (Constraint_ast.Cmp_const (r, a, op, c), rest''))
          | _ -> fail "expected an operator after %s[...]" (match r with Constraint_ast.T1 -> "t1" | _ -> "t2")))

let parse_premise toks =
  match toks with
  | Ident "true" :: rest -> ([], rest)
  | _ ->
      let rec go acc toks =
        let p, rest = parse_pred toks in
        match rest with
        | Amp :: rest' -> go (p :: acc) rest'
        | _ -> (List.rev (p :: acc), rest)
      in
      go [] toks

let parse_constraint toks =
  let premise, rest = parse_premise toks in
  match rest with
  | Arrow :: Ident "prec" :: Lparen :: Ident a :: Rparen :: rest' ->
      if rest' <> [] then fail "trailing tokens after conclusion";
      Constraint_ast.make premise a
  | _ -> fail "expected '-> prec(attr)'"

let parse s =
  match tokenize s with
  | exception Err m -> Error m
  | toks -> ( match parse_constraint toks with c -> Ok c | exception Err m -> Error m)

let parse_exn s = match parse s with Ok c -> c | Error m -> failwith ("Currency.Parser: " ^ m)

(* ---- source positions ---- *)

type span = { line : int; col_start : int; col_end : int }

let pp_span ppf sp =
  if sp.col_start = sp.col_end then Format.fprintf ppf "line %d, col %d" sp.line sp.col_start
  else Format.fprintf ppf "line %d, cols %d-%d" sp.line sp.col_start sp.col_end

let span_to_string sp = Format.asprintf "%a" pp_span sp

let is_space c = c = ' ' || c = '\t' || c = '\r'

(* Split the input into constraint texts with their 1-based line/column
   spans: newline- or semicolon-separated, [#] lines are comments,
   surrounding whitespace excluded from the span. *)
let split_spanned s =
  let pieces = ref [] in
  List.iteri
    (fun li line ->
      let n = String.length line in
      let seg a b =
        let a = ref a and b = ref b in
        while !a < !b && is_space line.[!a] do
          incr a
        done;
        while !b > !a && is_space line.[!b - 1] do
          decr b
        done;
        if !b > !a && line.[!a] <> '#' then
          pieces :=
            ( String.sub line !a (!b - !a),
              { line = li + 1; col_start = !a + 1; col_end = !b } )
            :: !pieces
      in
      let start = ref 0 in
      String.iteri
        (fun i c ->
          if c = ';' then begin
            seg !start i;
            start := i + 1
          end)
        line;
      seg !start n)
    (String.split_on_char '\n' s);
  List.rev !pieces

let parse_many_spanned s =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (p, sp) :: rest -> (
        match parse p with
        | Ok c -> go ((c, sp) :: acc) rest
        | Error m -> Error (Printf.sprintf "%s: %s: %s" (span_to_string sp) p m))
  in
  go [] (split_spanned s)

let parse_many s =
  match parse_many_spanned s with Ok cs -> Ok (List.map fst cs) | Error m -> Error m
