type event =
  | Arrival of { label : string; tuple : Tuple.t }
  | Assert_order of { label : string; order : Crcore.Spec.order_edge }
  | Resolve of string

type params = {
  order_rate : float;
  resolve_rate : float;
  dup_rate : float;
  tail_reads : int;
  final_resolve : bool;
  seed : int;
}

let default_params =
  {
    order_rate = 0.25;
    resolve_rate = 0.35;
    dup_rate = 0.2;
    tail_reads = 3;
    final_resolve = true;
    seed = 77;
  }

type t = {
  dataset : Types.dataset;
  events : event list;
  n_arrivals : int;
  n_orders : int;
  n_resolves : int;
}

let label_of (c : Types.case) = Printf.sprintf "e%d" c.Types.id

(* A sound asserted order after [arrived] tuples are in: two arrival
   positions whose hidden stamps are strictly ordered and whose values in
   the chosen attribute differ (equal values would assert v ≺ v). *)
let pick_order rng schema (arrived : (Tuple.t * int) array) k =
  let arity = Schema.arity schema in
  let try_once () =
    let i = Random.State.int rng k and j = Random.State.int rng k in
    let ti, si = arrived.(i) and tj, sj = arrived.(j) in
    if si >= sj then None
    else
      let a = Random.State.int rng arity in
      let vi = Tuple.get ti a and vj = Tuple.get tj a in
      if Value.equal vi vj || Value.is_null vi || Value.is_null vj then None
      else Some { Crcore.Spec.attr = Schema.name schema a; lo = i; hi = j }
  in
  let rec attempts n = if n = 0 then None else match try_once () with Some e -> Some e | None -> attempts (n - 1) in
  attempts 8

(* Per-case event sequence: arrivals in history order, order assertions
   and resolve points placed by the rng. With at-least-once delivery
   ([dup_rate]) the stream re-delivers an earlier claim verbatim — the
   accumulated entity grows by a tuple whose values are all already in
   the value universes, the shape {!Crcore.Encode.extend} serves with a
   [Delta]. A re-delivered copy keeps the original's hidden stamp (it is
   the same fact observed again). *)
let case_events p rng schema (c : Types.case) =
  let label = label_of c in
  let stamped =
    Entity.tuples c.Types.entity
    |> List.mapi (fun i t -> (t, c.Types.stamps.(i)))
    |> List.stable_sort (fun (_, a) (_, b) -> compare a b)
    |> Array.of_list
  in
  let n = Array.length stamped in
  let events = ref [] in
  let emit e = events := e :: !events in
  (* arrivals so far, duplicates included, in arrival order — the index
     space that order edges live in *)
  let arrived = ref [] in
  let count = ref 0 in
  let arrive (t, s) =
    arrived := (t, s) :: !arrived;
    incr count;
    emit (Arrival { label; tuple = t })
  in
  for k = 0 to n - 1 do
    arrive stamped.(k);
    if k >= 1 then begin
      if Random.State.float rng 1.0 < p.dup_rate then begin
        let all = Array.of_list (List.rev !arrived) in
        arrive all.(Random.State.int rng (Array.length all))
      end;
      if Random.State.float rng 1.0 < p.order_rate then begin
        let all = Array.of_list (List.rev !arrived) in
        Option.iter
          (fun order -> emit (Assert_order { label; order }))
          (pick_order rng schema all !count)
      end;
      if Random.State.float rng 1.0 < p.resolve_rate then emit (Resolve label)
    end
  done;
  (* steady state: the history is fully delivered; readers keep polling
     the entity while the stream re-delivers old claims and users assert
     orders — the daemon's hot-entity regime *)
  for _ = 1 to p.tail_reads do
    if Random.State.float rng 1.0 < p.dup_rate then begin
      let all = Array.of_list (List.rev !arrived) in
      arrive all.(Random.State.int rng (Array.length all))
    end;
    if Random.State.float rng 1.0 < p.order_rate then begin
      let all = Array.of_list (List.rev !arrived) in
      Option.iter
        (fun order -> emit (Assert_order { label; order }))
        (pick_order rng schema all !count)
    end;
    emit (Resolve label)
  done;
  if p.final_resolve && p.tail_reads = 0 then emit (Resolve label);
  List.rev !events

let replay ?(params = default_params) (ds : Types.dataset) =
  let rng = Random.State.make [| params.seed |] in
  let queues =
    ds.Types.cases
    |> List.map (fun c -> ref (case_events params rng ds.Types.schema c))
    |> Array.of_list
  in
  (* interleave: pop the head of a random still-nonempty queue, so every
     entity's order is preserved while entities mix freely *)
  let nonempty = ref (Array.to_list (Array.mapi (fun i _ -> i) queues)) in
  let events = ref [] in
  let n_arrivals = ref 0 and n_orders = ref 0 and n_resolves = ref 0 in
  while !nonempty <> [] do
    let live = Array.of_list !nonempty in
    let qi = live.(Random.State.int rng (Array.length live)) in
    (match !(queues.(qi)) with
    | [] -> assert false
    | e :: rest ->
        (match e with
        | Arrival _ -> incr n_arrivals
        | Assert_order _ -> incr n_orders
        | Resolve _ -> incr n_resolves);
        events := e :: !events;
        queues.(qi) := rest;
        if rest = [] then nonempty := List.filter (fun i -> i <> qi) !nonempty)
  done;
  {
    dataset = ds;
    events = List.rev !events;
    n_arrivals = !n_arrivals;
    n_orders = !n_orders;
    n_resolves = !n_resolves;
  }

let open_seq = 1

let with_seqs log =
  let counters = Hashtbl.create 16 in
  let next label =
    let n = Option.value ~default:open_seq (Hashtbl.find_opt counters label) + 1 in
    Hashtbl.replace counters label n;
    n
  in
  List.map
    (fun e ->
      match e with
      | Arrival { label; _ } | Assert_order { label; _ } -> (Some (next label), e)
      | Resolve _ -> (None, e))
    log.events

let case_for log label =
  match
    List.find_opt (fun c -> String.equal (label_of c) label) log.dataset.Types.cases
  with
  | Some c -> c
  | None -> raise Not_found

let labels log = List.map label_of log.dataset.Types.cases
