(** Replay a synthetic dataset as an update log: the streaming workload
    the [crsolved] daemon serves.

    The generators ({!Person}, {!Nba}) emit each entity as a shuffled,
    timestamp-free pile of tuples, holding the simulated history positions
    ([stamps]) out for validation. This module turns those cases back into
    what a replication consumer would actually see — per-entity tuple
    {e arrivals in history order}, interleaved across many entities by a
    seeded scheduler, sprinkled with user-asserted currency orders (pure
    order extensions, the cheapest incremental path) and with re-resolve
    points marking where a reader demanded an answer.

    Per-entity event order is preserved; only the interleaving across
    entities is random. The same seed always yields the same stream. *)

type event =
  | Arrival of { label : string; tuple : Tuple.t }
      (** the next tuple of the entity's history arrives *)
  | Assert_order of { label : string; order : Crcore.Spec.order_edge }
      (** a user asserts a currency edge between two already-arrived
          tuples (indices into the entity in arrival order); consistent
          with the hidden stamps and never between equal values *)
  | Resolve of string  (** a reader asks for the entity's current tuple *)

type params = {
  order_rate : float;
      (** expected asserted-order events per arrival (default 0.25) *)
  resolve_rate : float;
      (** expected mid-stream resolve points per arrival (default 0.35);
          independent of the final resolve *)
  dup_rate : float;
      (** at-least-once delivery: probability per history step that the
          stream re-delivers an earlier claim verbatim (default 0.2). A
          re-delivered tuple keeps the original's hidden stamp and adds
          no fresh values — the pure-extension shape the [Delta] path of
          {!Crcore.Encode.extend} serves without a solver reload. *)
  tail_reads : int;
      (** steady-state reads per entity once its history has fully
          arrived (default 3): each is a resolve, preceded with the usual
          rates by a re-delivery or an asserted order — the hot-entity
          regime where a daemon serves repeated reads of a live session *)
  final_resolve : bool;
      (** end every entity's stream with a resolve even when [tail_reads]
          is 0 (default true) *)
  seed : int;  (** interleaving and event placement (default 77) *)
}

val default_params : params

type t = {
  dataset : Types.dataset;
  events : event list;
  n_arrivals : int;
  n_orders : int;
  n_resolves : int;
}

(** [replay ?params ds] builds the interleaved stream over every case of
    [ds]. Entity labels are ["e<id>"]. *)
val replay : ?params:params -> Types.dataset -> t

(** The sequence number a client should stamp on the synthetic [OPEN]
    that precedes an entity's first arrival (the generators emit no
    explicit open event). Always 1 — {!with_seqs} numbers the mutating
    events from 2 so the whole per-entity stream is strictly monotone. *)
val open_seq : int

(** [with_seqs log] pairs every event with the [@seq] sequence number an
    at-least-once client would stamp it with: per-entity, strictly
    monotone from [open_seq + 1] for arrivals and asserted orders;
    [None] for resolves (reads are never deduplicated). Replaying a
    stamped prefix twice against a durable daemon must coalesce to the
    same state — the crash-recovery redelivery contract. *)
val with_seqs : t -> (int option * event) list

(** [case_for log label] is the generator case behind [label] (for ground
    truth / accuracy checks). Raises [Not_found] on unknown labels. *)
val case_for : t -> string -> Types.case

val labels : t -> string list
