type clause = Lit.t array

type t = { nvars : int; clauses : clause list }

let check_clause nvars c =
  Array.iter
    (fun l ->
      let v = Lit.var l in
      if v < 0 || v >= nvars then
        invalid_arg
          (Printf.sprintf "Cnf: literal over variable %d but nvars = %d" v nvars))
    c

let make ~nvars clauses =
  if nvars < 0 then invalid_arg "Cnf.make: negative nvars";
  List.iter (check_clause nvars) clauses;
  { nvars; clauses }

let unsafe_make ~nvars clauses =
  if nvars < 0 then invalid_arg "Cnf.unsafe_make: negative nvars";
  { nvars; clauses }

let nclauses f = List.length f.clauses

let add_clause f c =
  check_clause f.nvars c;
  { f with clauses = c :: f.clauses }

let eval_clause assignment c =
  Array.exists (fun l -> assignment.(Lit.var l) = Lit.sign l) c

let eval assignment f = List.for_all (eval_clause assignment) f.clauses

let nlits f = List.fold_left (fun acc c -> acc + Array.length c) 0 f.clauses

let pp ppf f =
  Format.fprintf ppf "p cnf %d %d@." f.nvars (nclauses f);
  List.iter
    (fun c ->
      Array.iter (fun l -> Format.fprintf ppf "%a " Lit.pp l) c;
      Format.fprintf ppf "0@.")
    f.clauses
