let parse_string s =
  let nvars = ref 0 in
  let clauses = ref [] in
  let current = ref [] in
  let lines = String.split_on_char '\n' s in
  let handle_token tok =
    match int_of_string_opt tok with
    | None -> failwith (Printf.sprintf "Dimacs: bad token %S" tok)
    | Some 0 ->
        clauses := Array.of_list (List.rev_map Lit.of_dimacs !current) :: !clauses;
        current := []
    | Some d ->
        nvars := max !nvars (abs d);
        current := d :: !current
  in
  List.iter
    (fun line ->
      let line = String.trim line in
      if String.length line > 0 then
        match line.[0] with
        | 'c' | '%' -> ()
        | 'p' -> (
            match String.split_on_char ' ' line |> List.filter (( <> ) "") with
            | [ "p"; "cnf"; nv; _nc ] -> (
                match int_of_string_opt nv with
                | Some n -> nvars := max !nvars n
                | None -> failwith "Dimacs: bad header")
            | _ -> failwith "Dimacs: bad header")
        | _ ->
            String.split_on_char ' ' line
            |> List.concat_map (String.split_on_char '\t')
            |> List.filter (( <> ) "")
            |> List.iter handle_token)
    lines;
  if !current <> [] then
    clauses := Array.of_list (List.rev_map Lit.of_dimacs !current) :: !clauses;
  Cnf.make ~nvars:!nvars (List.rev !clauses)

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      parse_string s)

let to_string f = Format.asprintf "%a" Cnf.pp f

let of_solver s = to_string (Solver.export_cnf s)
