type 'a t = { mutable data : 'a array; mutable sz : int; dummy : 'a }

let create ~dummy = { data = [||]; sz = 0; dummy }

let make n x ~dummy = { data = Array.make (max n 1) x; sz = n; dummy }

let size v = v.sz

let is_empty v = v.sz = 0

let check v i =
  if i < 0 || i >= v.sz then
    invalid_arg (Printf.sprintf "Vec: index %d out of bounds (size %d)" i v.sz)

let get v i =
  check v i;
  Array.unsafe_get v.data i

let set v i x =
  check v i;
  Array.unsafe_set v.data i x

let ensure v n =
  let cap = Array.length v.data in
  if n > cap then begin
    let cap' = max n (max 4 (2 * cap)) in
    let data' = Array.make cap' v.dummy in
    Array.blit v.data 0 data' 0 v.sz;
    v.data <- data'
  end

let push v x =
  ensure v (v.sz + 1);
  Array.unsafe_set v.data v.sz x;
  v.sz <- v.sz + 1

let pop v =
  if v.sz = 0 then invalid_arg "Vec.pop: empty";
  v.sz <- v.sz - 1;
  let x = Array.unsafe_get v.data v.sz in
  Array.unsafe_set v.data v.sz v.dummy;
  x

let last v =
  if v.sz = 0 then invalid_arg "Vec.last: empty";
  Array.unsafe_get v.data (v.sz - 1)

let shrink v n =
  if n < 0 || n > v.sz then invalid_arg "Vec.shrink";
  for i = n to v.sz - 1 do
    Array.unsafe_set v.data i v.dummy
  done;
  v.sz <- n

let clear v = shrink v 0

let grow_to v n x =
  if n > v.sz then begin
    ensure v n;
    for i = v.sz to n - 1 do
      Array.unsafe_set v.data i x
    done;
    v.sz <- n
  end

let filter_in_place p v =
  let j = ref 0 in
  for i = 0 to v.sz - 1 do
    let x = Array.unsafe_get v.data i in
    if p x then begin
      Array.unsafe_set v.data !j x;
      incr j
    end
  done;
  shrink v !j

let swap_remove v i =
  check v i;
  v.sz <- v.sz - 1;
  Array.unsafe_set v.data i (Array.unsafe_get v.data v.sz);
  Array.unsafe_set v.data v.sz v.dummy

let iter f v =
  for i = 0 to v.sz - 1 do
    f (Array.unsafe_get v.data i)
  done

let exists p v =
  let rec go i = i < v.sz && (p (Array.unsafe_get v.data i) || go (i + 1)) in
  go 0

let to_list v =
  let rec go i acc = if i < 0 then acc else go (i - 1) (Array.unsafe_get v.data i :: acc) in
  go (v.sz - 1) []

let of_list l ~dummy =
  let v = create ~dummy in
  List.iter (push v) l;
  v

let copy v = { data = Array.copy v.data; sz = v.sz; dummy = v.dummy }

let fold f init v =
  let acc = ref init in
  for i = 0 to v.sz - 1 do
    acc := f !acc (Array.unsafe_get v.data i)
  done;
  !acc
