(** Growable arrays, in the style of MiniSat's [vec].

    Used pervasively inside the solver for trails, watch lists and clause
    databases, where amortised O(1) push and in-place truncation matter. *)

type 'a t

(** [create ~dummy] is an empty vector. [dummy] fills unused slots; it is
    never observable through the API. *)
val create : dummy:'a -> 'a t

(** [make n x ~dummy] is a vector of [n] copies of [x]. *)
val make : int -> 'a -> dummy:'a -> 'a t

val size : 'a t -> int
val is_empty : 'a t -> bool

(** [get v i] is the [i]-th element. Raises [Invalid_argument] when out of
    bounds. *)
val get : 'a t -> int -> 'a

val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit

(** [pop v] removes and returns the last element. *)
val pop : 'a t -> 'a

val last : 'a t -> 'a

(** [shrink v n] truncates [v] to its first [n] elements. *)
val shrink : 'a t -> int -> unit

val clear : 'a t -> unit

(** [grow_to v n x] extends [v] with copies of [x] until its size is at
    least [n]. *)
val grow_to : 'a t -> int -> 'a -> unit

(** [filter_in_place p v] keeps exactly the elements satisfying [p],
    preserving their relative order, without allocating a fresh vector.
    Freed trailing slots are reset to the dummy so no element is kept
    alive through them. The clause-database reduction and watch-list
    cleanup paths in {!Solver} rely on this. *)
val filter_in_place : ('a -> bool) -> 'a t -> unit

(** [swap_remove v i] removes element [i] by swapping the last element into
    its place; O(1), does not preserve order. *)
val swap_remove : 'a t -> int -> unit

val iter : ('a -> unit) -> 'a t -> unit
val exists : ('a -> bool) -> 'a t -> bool
val to_list : 'a t -> 'a list
val of_list : 'a list -> dummy:'a -> 'a t
val copy : 'a t -> 'a t

(** [fold f init v] folds [f] left-to-right over the live elements. *)
val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
