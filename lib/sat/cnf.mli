(** Immutable CNF formulas, the interchange format between the encoder in
    [Crcore], the CDCL solver, the brute-force reference solver and the
    MaxSAT engines.

    Clauses are arrays of packed literals (see {!Lit}). *)

type clause = Lit.t array

type t = {
  nvars : int;            (** number of variables; literals range over them *)
  clauses : clause list;  (** conjunction of disjunctions *)
}

(** [make ~nvars clauses] checks every literal is over a variable
    [< nvars] and builds the formula. Raises [Invalid_argument] otherwise. *)
val make : nvars:int -> clause list -> t

(** [unsafe_make ~nvars clauses] builds the formula without the per-literal
    range check — for producers (the [Crcore] encoder's hot path) whose
    clauses are in range by construction. A literal over a variable
    [>= nvars] yields a formula that later stages reject or misread. *)
val unsafe_make : nvars:int -> clause list -> t

val nclauses : t -> int

(** [add_clause f c] is [f] with [c] appended (variables must fit). *)
val add_clause : t -> clause -> t

(** [eval_clause assignment c] is [true] when [c] holds under the total
    [assignment] ([assignment.(v)] is the truth of variable [v]). *)
val eval_clause : bool array -> clause -> bool

(** [eval assignment f] is [true] when every clause of [f] holds. *)
val eval : bool array -> t -> bool

(** [nlits f] is the total number of literal occurrences. *)
val nlits : t -> int

val pp : Format.formatter -> t -> unit
