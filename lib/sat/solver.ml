(* CDCL solver. Variables are ints; literals use the packed encoding of
   [Lit]. Truth values are represented as ints: 1 = true, -1 = false,
   0 = unassigned, so that the value of a literal is [assigns.(var) * sgn]. *)

type clause = {
  lits : Lit.t array; (* lits.(0) and lits.(1) are the watched pair *)
  learnt : bool;
  mutable activity : float;
  mutable deleted : bool;
}

let dummy_clause = { lits = [||]; learnt = false; activity = 0.; deleted = false }

type result = Sat | Unsat

type t = {
  (* per-variable state *)
  mutable assigns : int array;          (* 1 / -1 / 0 *)
  mutable level : int array;
  mutable reason : clause array;        (* dummy_clause = no reason *)
  mutable activity : float array;
  mutable polarity : bool array;        (* saved phase *)
  mutable seen : bool array;            (* scratch for analyze *)
  (* per-literal state *)
  mutable watches : clause Vec.t array; (* indexed by literal *)
  (* trail *)
  trail : Lit.t Vec.t;
  trail_lim : int Vec.t;
  mutable qhead : int;
  (* clause database *)
  clauses : clause Vec.t;
  learnts : clause Vec.t;
  (* heuristics *)
  mutable order : Idx_heap.t;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable nvars : int;
  mutable ok : bool;
  mutable model_valid : bool;
  mutable saved_model : bool array;
  (* statistics *)
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable restarts : int;
  (* resource budgets: absolute counter targets, -1 = no limit. Only
     [solve_limited] consults them; [solve] always runs to completion. *)
  mutable conflict_limit : int;
  mutable propagation_limit : int;
}

let var_decay = 1.0 /. 0.95
let clause_decay = 1.0 /. 0.999
let restart_base = 100

let create () =
  let s =
    {
      assigns = [||];
      level = [||];
      reason = [||];
      activity = [||];
      polarity = [||];
      seen = [||];
      watches = [||];
      trail = Vec.create ~dummy:0;
      trail_lim = Vec.create ~dummy:0;
      qhead = 0;
      clauses = Vec.create ~dummy:dummy_clause;
      learnts = Vec.create ~dummy:dummy_clause;
      order = Idx_heap.create ~score:(fun _ -> 0.);
      var_inc = 1.0;
      cla_inc = 1.0;
      nvars = 0;
      ok = true;
      model_valid = false;
      saved_model = [||];
      conflicts = 0;
      decisions = 0;
      propagations = 0;
      restarts = 0;
      conflict_limit = -1;
      propagation_limit = -1;
    }
  in
  s.order <- Idx_heap.create ~score:(fun v -> s.activity.(v));
  s

let nvars s = s.nvars

let grow_arrays s n =
  let old = Array.length s.assigns in
  if n > old then begin
    let cap = max n (max 16 (2 * old)) in
    let grow a dflt =
      let a' = Array.make cap dflt in
      Array.blit a 0 a' 0 old;
      a'
    in
    s.assigns <- grow s.assigns 0;
    s.level <- grow s.level (-1);
    s.reason <- grow s.reason dummy_clause;
    s.activity <- grow s.activity 0.;
    s.polarity <- grow s.polarity false;
    s.seen <- grow s.seen false;
    let oldw = Array.length s.watches in
    let w' = Array.make (2 * cap) (Vec.create ~dummy:dummy_clause) in
    Array.blit s.watches 0 w' 0 oldw;
    for i = oldw to (2 * cap) - 1 do
      w'.(i) <- Vec.create ~dummy:dummy_clause
    done;
    s.watches <- w'
  end

let new_var s =
  let v = s.nvars in
  grow_arrays s (v + 1);
  s.nvars <- v + 1;
  Idx_heap.insert s.order v;
  v

let ensure_nvars s n =
  while s.nvars < n do
    ignore (new_var s)
  done

(* ---- values ---- *)

let value_var s v = s.assigns.(v)

let value_lit s l =
  let a = s.assigns.(Lit.var l) in
  if Lit.sign l then a else -a

let decision_level s = Vec.size s.trail_lim

(* ---- activity ---- *)

let var_bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  Idx_heap.update s.order v

let var_decay_activity s = s.var_inc <- s.var_inc *. var_decay

let clause_bump s (c : clause) =
  c.activity <- c.activity +. s.cla_inc;
  if c.activity > 1e20 then begin
    Vec.iter (fun (c : clause) -> c.activity <- c.activity *. 1e-20) s.learnts;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

let clause_decay_activity s = s.cla_inc <- s.cla_inc *. clause_decay

(* ---- assignment ---- *)

let enqueue s l reason =
  assert (value_lit s l = 0);
  let v = Lit.var l in
  s.assigns.(v) <- (if Lit.sign l then 1 else -1);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  Vec.push s.trail l

let cancel_until s lvl =
  if decision_level s > lvl then begin
    let bound = Vec.get s.trail_lim lvl in
    for i = Vec.size s.trail - 1 downto bound do
      let l = Vec.get s.trail i in
      let v = Lit.var l in
      s.assigns.(v) <- 0;
      s.polarity.(v) <- Lit.sign l;
      s.reason.(v) <- dummy_clause;
      Idx_heap.insert s.order v
    done;
    Vec.shrink s.trail bound;
    Vec.shrink s.trail_lim lvl;
    s.qhead <- Vec.size s.trail
  end

(* ---- watches ---- *)

let attach_clause s c =
  assert (Array.length c.lits >= 2);
  Vec.push s.watches.(Lit.negate c.lits.(0)) c;
  Vec.push s.watches.(Lit.negate c.lits.(1)) c

(* Propagate all enqueued facts; returns the conflicting clause if any. *)
let propagate s =
  let confl = ref None in
  while !confl = None && s.qhead < Vec.size s.trail do
    let p = Vec.get s.trail s.qhead in
    s.qhead <- s.qhead + 1;
    s.propagations <- s.propagations + 1;
    let ws = s.watches.(p) in
    let i = ref 0 in
    while !i < Vec.size ws do
      let c = Vec.get ws !i in
      if c.deleted then Vec.swap_remove ws !i
      else begin
        let false_lit = Lit.negate p in
        (* make sure the false literal is at position 1 *)
        if c.lits.(0) = false_lit then begin
          c.lits.(0) <- c.lits.(1);
          c.lits.(1) <- false_lit
        end;
        if value_lit s c.lits.(0) = 1 then incr i (* clause already satisfied *)
        else begin
          (* look for a new literal to watch *)
          let n = Array.length c.lits in
          let k = ref 2 in
          while !k < n && value_lit s c.lits.(!k) = -1 do
            incr k
          done;
          if !k < n then begin
            (* found: move it to position 1 and update watch lists *)
            c.lits.(1) <- c.lits.(!k);
            c.lits.(!k) <- false_lit;
            Vec.push s.watches.(Lit.negate c.lits.(1)) c;
            Vec.swap_remove ws !i
          end
          else if value_lit s c.lits.(0) = -1 then begin
            (* conflict *)
            confl := Some c;
            s.qhead <- Vec.size s.trail;
            incr i
          end
          else begin
            (* unit clause: propagate c.lits.(0) *)
            enqueue s c.lits.(0) c;
            incr i
          end
        end
      end
    done
  done;
  !confl

(* ---- clause addition (decision level 0 only) ---- *)

exception Early_unsat

let add_clause_a s lits =
  if s.ok then begin
    assert (decision_level s = 0);
    Array.iter
      (fun l ->
        if Lit.var l >= s.nvars then
          invalid_arg "Solver.add_clause: unallocated variable")
      lits;
    (* sort, dedup, drop false literals, detect tautology / satisfied *)
    let lits = Array.copy lits in
    Array.sort compare lits;
    let out = ref [] and n = ref 0 and sat = ref false in
    let prev = ref (-1) in
    Array.iter
      (fun l ->
        if not !sat then begin
          if l = Lit.negate !prev && !prev >= 0 then sat := true (* p ∨ ¬p *)
          else if l <> !prev then begin
            match value_lit s l with
            | 1 -> sat := true
            | -1 when s.level.(Lit.var l) = 0 -> () (* false at level 0: drop *)
            | _ ->
                out := l :: !out;
                incr n;
                prev := l
          end
        end)
      lits;
    if not !sat then begin
      match !out with
      | [] ->
          s.ok <- false;
          raise Early_unsat
      | [ l ] -> (
          enqueue s l dummy_clause;
          match propagate s with
          | Some _ ->
              s.ok <- false;
              raise Early_unsat
          | None -> ())
      | ls ->
          let c =
            { lits = Array.of_list (List.rev ls); learnt = false; activity = 0.; deleted = false }
          in
          Vec.push s.clauses c;
          attach_clause s c
    end
  end

let add_clause_a s lits = try add_clause_a s lits with Early_unsat -> ()

let add_clause s lits = add_clause_a s (Array.of_list lits)

let add_cnf s (f : Cnf.t) =
  ensure_nvars s f.Cnf.nvars;
  List.iter (fun c -> add_clause_a s c) f.Cnf.clauses

let add_units s lits = List.iter (fun l -> add_clause s [ l ]) lits

(* ---- conflict analysis (first UIP) ---- *)

let analyze s confl =
  let learnt = Vec.create ~dummy:0 in
  Vec.push learnt 0 (* placeholder for the asserting literal *);
  let path_c = ref 0 in
  let p = ref (-1) (* -1 = undefined *) in
  let confl = ref confl in
  let index = ref (Vec.size s.trail - 1) in
  let continue_loop = ref true in
  while !continue_loop do
    let c = !confl in
    if c.learnt then clause_bump s c;
    let start = if !p = -1 then 0 else 1 in
    for j = start to Array.length c.lits - 1 do
      let q = c.lits.(j) in
      let v = Lit.var q in
      if (not s.seen.(v)) && s.level.(v) > 0 then begin
        var_bump s v;
        s.seen.(v) <- true;
        if s.level.(v) >= decision_level s then incr path_c
        else Vec.push learnt q
      end
    done;
    (* select next literal to expand *)
    while not s.seen.(Lit.var (Vec.get s.trail !index)) do
      decr index
    done;
    p := Vec.get s.trail !index;
    decr index;
    let v = Lit.var !p in
    s.seen.(v) <- false;
    decr path_c;
    if !path_c > 0 then confl := s.reason.(v) else continue_loop := false
  done;
  Vec.set learnt 0 (Lit.negate !p);
  (* clause minimisation: drop literals implied by the rest via their reason *)
  let keep q =
    let v = Lit.var q in
    let r = s.reason.(v) in
    if r == dummy_clause then true
    else
      Array.exists
        (fun l ->
          let w = Lit.var l in
          w <> v && (not s.seen.(w)) && s.level.(w) > 0)
        r.lits
  in
  let minimized = Vec.create ~dummy:0 in
  Vec.push minimized (Vec.get learnt 0);
  for i = 1 to Vec.size learnt - 1 do
    let q = Vec.get learnt i in
    if keep q then Vec.push minimized q
  done;
  (* compute backtrack level; move the max-level literal to position 1 *)
  let bt_level = ref 0 in
  if Vec.size minimized > 1 then begin
    let max_i = ref 1 in
    for i = 2 to Vec.size minimized - 1 do
      if s.level.(Lit.var (Vec.get minimized i)) > s.level.(Lit.var (Vec.get minimized !max_i))
      then max_i := i
    done;
    let tmp = Vec.get minimized 1 in
    Vec.set minimized 1 (Vec.get minimized !max_i);
    Vec.set minimized !max_i tmp;
    bt_level := s.level.(Lit.var (Vec.get minimized 1))
  end;
  (* clear seen flags *)
  Vec.iter (fun q -> s.seen.(Lit.var q) <- false) learnt;
  (Array.of_list (Vec.to_list minimized), !bt_level)

(* ---- learnt clause database reduction ---- *)

let locked s c =
  Array.length c.lits > 0
  && s.reason.(Lit.var c.lits.(0)) == c
  && value_lit s c.lits.(0) = 1

let reduce_db s =
  let arr = Array.of_list (Vec.to_list s.learnts) in
  Array.sort (fun (a : clause) (b : clause) -> compare a.activity b.activity) arr;
  let n = Array.length arr in
  let limit = s.cla_inc /. float_of_int (max n 1) in
  let removed = ref 0 in
  Array.iteri
    (fun i c ->
      if
        Array.length c.lits > 2
        && (not (locked s c))
        && (i < n / 2 || c.activity < limit)
        && !removed < n / 2
      then begin
        c.deleted <- true;
        incr removed
      end)
    arr;
  let kept = Vec.create ~dummy:dummy_clause in
  Vec.iter (fun c -> if not c.deleted then Vec.push kept c) s.learnts;
  Vec.clear s.learnts;
  Vec.iter (fun c -> Vec.push s.learnts c) kept

(* ---- search ---- *)

let luby y x =
  (* Finite subsequences of the Luby sequence: 1,1,2,1,1,2,4,... *)
  let rec go size seq x =
    if size - 1 = x then (seq, x)
    else
      let size' = (size - 1) / 2 in
      go size' (seq - 1) (x mod size')
  in
  let size = ref 1 and seq = ref 0 in
  while !size < x + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let seq, _ = go !size !seq x in
  y ** float_of_int seq

let pick_branch_var s =
  let rec go () =
    if Idx_heap.is_empty s.order then -1
    else
      let v = Idx_heap.pop_max s.order in
      if value_var s v = 0 then v else go ()
  in
  go ()

(* ---- budgets (MiniSat setConfBudget / budgetOff lineage) ---- *)

let set_budget ?conflicts ?propagations s =
  (match conflicts with
  | Some n -> s.conflict_limit <- s.conflicts + max 0 n
  | None -> ());
  match propagations with
  | Some n -> s.propagation_limit <- s.propagations + max 0 n
  | None -> ()

let clear_budget s =
  s.conflict_limit <- -1;
  s.propagation_limit <- -1

let within_budget s =
  (s.conflict_limit < 0 || s.conflicts < s.conflict_limit)
  && (s.propagation_limit < 0 || s.propagations < s.propagation_limit)

let budget_exhausted s = not (within_budget s)

type search_outcome = S_sat | S_unsat_global | S_unsat_assump | S_restart | S_unknown

let record_learnt s lits =
  if Array.length lits = 1 then enqueue s lits.(0) dummy_clause
  else begin
    let c = { lits; learnt = true; activity = 0.; deleted = false } in
    Vec.push s.learnts c;
    attach_clause s c;
    clause_bump s c;
    enqueue s lits.(0) c
  end

let search s ~respect_budget ~nof_conflicts ~max_learnts ~assumptions =
  let conflict_c = ref 0 in
  let outcome = ref None in
  while !outcome = None do
    match propagate s with
    | Some confl ->
        s.conflicts <- s.conflicts + 1;
        incr conflict_c;
        if decision_level s = 0 then outcome := Some S_unsat_global
        else if respect_budget && not (within_budget s) then
          (* budget spent mid-search: the conflict is left unresolved; the
             caller cancels to level 0, keeping the solver reusable *)
          outcome := Some S_unknown
        else begin
          let learnt, bt = analyze s confl in
          cancel_until s bt;
          record_learnt s learnt;
          var_decay_activity s;
          clause_decay_activity s
        end
    | None ->
        if respect_budget && not (within_budget s) then begin
          cancel_until s 0;
          outcome := Some S_unknown
        end
        else if !conflict_c >= nof_conflicts then begin
          cancel_until s 0;
          s.restarts <- s.restarts + 1;
          outcome := Some S_restart
        end
        else begin
          if Vec.size s.learnts - Vec.size s.trail >= max_learnts then reduce_db s;
          (* place assumptions first, one decision level each *)
          let next = ref (-1) in
          let dl = decision_level s in
          if dl < Array.length assumptions then begin
            let p = assumptions.(dl) in
            match value_lit s p with
            | 1 ->
                (* already satisfied: open a dummy level *)
                Vec.push s.trail_lim (Vec.size s.trail)
            | -1 -> outcome := Some S_unsat_assump
            | _ -> next := p
          end
          else begin
            let v = pick_branch_var s in
            if v = -1 then outcome := Some S_sat
            else begin
              s.decisions <- s.decisions + 1;
              next := Lit.make v s.polarity.(v)
            end
          end;
          (match (!outcome, !next) with
          | None, p when p >= 0 ->
              Vec.push s.trail_lim (Vec.size s.trail);
              enqueue s p dummy_clause
          | _ -> ())
        end
  done;
  match !outcome with Some o -> o | None -> assert false

module Limited = struct
  type t = Sat | Unsat | Unknown
end

let solve_driver ~respect_budget ~assumptions s =
  s.model_valid <- false;
  if not s.ok then Limited.Unsat
  else begin
    cancel_until s 0;
    List.iter
      (fun l ->
        if Lit.var l >= s.nvars then
          invalid_arg "Solver.solve: assumption over unallocated variable")
      assumptions;
    let assumptions = Array.of_list assumptions in
    let result = ref None in
    let curr_restarts = ref 0 in
    let max_learnts = ref (max 1000 (Vec.size s.clauses / 3)) in
    while !result = None do
      let budget =
        int_of_float (luby 2.0 !curr_restarts *. float_of_int restart_base)
      in
      (match
         search s ~respect_budget ~nof_conflicts:budget ~max_learnts:!max_learnts
           ~assumptions
       with
      | S_sat ->
          s.saved_model <- Array.init s.nvars (fun v -> value_var s v = 1);
          s.model_valid <- true;
          result := Some Limited.Sat
      | S_unsat_global ->
          s.ok <- false;
          result := Some Limited.Unsat
      | S_unsat_assump -> result := Some Limited.Unsat
      | S_unknown -> result := Some Limited.Unknown
      | S_restart ->
          incr curr_restarts;
          max_learnts := !max_learnts + (!max_learnts / 10));
      ()
    done;
    cancel_until s 0;
    match !result with Some r -> r | None -> assert false
  end

let solve ?(assumptions = []) s =
  match solve_driver ~respect_budget:false ~assumptions s with
  | Limited.Sat -> Sat
  | Limited.Unsat -> Unsat
  | Limited.Unknown -> assert false (* unreachable: budgets not consulted *)

let solve_limited ?(assumptions = []) s = solve_driver ~respect_budget:true ~assumptions s

let model_value s v =
  if not s.model_valid then invalid_arg "Solver.model_value: no model";
  if v < 0 || v >= Array.length s.saved_model then
    invalid_arg "Solver.model_value: bad variable"
  else s.saved_model.(v)

let model s =
  if not s.model_valid then invalid_arg "Solver.model: no model";
  Array.copy s.saved_model

let has_model s = s.model_valid

let value_level0 s v =
  if v < 0 || v >= s.nvars then invalid_arg "Solver.value_level0";
  if s.assigns.(v) <> 0 && s.level.(v) = 0 then Some (s.assigns.(v) = 1) else None

let ok s = s.ok

type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  learnts : int;
}

let stats (s : t) =
  {
    conflicts = s.conflicts;
    decisions = s.decisions;
    propagations = s.propagations;
    restarts = s.restarts;
    learnts = Vec.size s.learnts;
  }

let zero_stats = { conflicts = 0; decisions = 0; propagations = 0; restarts = 0; learnts = 0 }

let add_stats a b =
  {
    conflicts = a.conflicts + b.conflicts;
    decisions = a.decisions + b.decisions;
    propagations = a.propagations + b.propagations;
    restarts = a.restarts + b.restarts;
    learnts = b.learnts;
  }

let diff_stats a b =
  {
    conflicts = a.conflicts - b.conflicts;
    decisions = a.decisions - b.decisions;
    propagations = a.propagations - b.propagations;
    restarts = a.restarts - b.restarts;
    learnts = a.learnts;
  }

let pp_stats ppf st =
  Format.fprintf ppf "conflicts=%d decisions=%d propagations=%d restarts=%d learnts=%d"
    st.conflicts st.decisions st.propagations st.restarts st.learnts
