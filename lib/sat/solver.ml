(* CDCL solver. Variables are ints; literals use the packed encoding of
   [Lit]. Truth values are represented as ints: 1 = true, -1 = false,
   0 = unassigned, so that the value of a literal is [assigns.(var) * sgn].

   Clause-database layout: unit facts live on the level-0 trail, binary
   clauses live in a dedicated implication layer ([bin], flat per-literal
   vectors of the implied literal), and only clauses of three or more
   literals enter the general watch lists. Learnt clauses carry an LBD
   ("glue") score and are periodically halved by [reduce_db]; [simplify]
   runs SatELite-style pre/inprocessing at decision level 0, restricted
   by the frozen-variable contract. *)

type clause = {
  mutable lits : Lit.t array; (* lits.(0) and lits.(1) are the watched pair *)
  learnt : bool;
  mutable activity : float;
  mutable lbd : int; (* distinct decision levels at learn time; <= 2 = glue *)
  mutable deleted : bool;
  mutable sig_ : int; (* subsumption signature; scratch, valid inside simplify *)
}

let dummy_clause =
  { lits = [||]; learnt = false; activity = 0.; lbd = 0; deleted = false; sig_ = 0 }

type result = Sat | Unsat

type t = {
  (* per-variable state *)
  mutable assigns : int array;          (* 1 / -1 / 0 *)
  mutable level : int array;
  mutable reason : clause array;        (* dummy_clause = no reason *)
  mutable binreason : int array;        (* other (false) literal of a binary
                                           reason; -1 = none. Exactly one of
                                           reason/binreason is live per var. *)
  mutable activity : float array;
  mutable polarity : bool array;        (* saved phase *)
  mutable seen : bool array;            (* scratch for analyze *)
  mutable frozen : bool array;          (* BVE must not eliminate these *)
  mutable elimd : bool array;           (* eliminated by BVE *)
  mutable repr : Lit.t array;           (* literal-indexed substitution map from
                                           equivalent-literal classes (binary
                                           implication SCCs); identity when the
                                           literal is its own representative *)
  mutable has_subst : bool;             (* fast path: repr is all-identity *)
  mutable lbd_seen : int array;         (* scratch, indexed by decision level *)
  mutable lbd_ctr : int;
  (* per-literal state *)
  mutable watches : clause Vec.t array; (* indexed by literal; clauses len >= 3 *)
  mutable bin : Lit.t Vec.t array;      (* bin.(p) = implied literals o of the
                                           binary clauses (negate p \/ o) *)
  (* trail *)
  trail : Lit.t Vec.t;
  trail_lim : int Vec.t;
  mutable qhead : int;
  (* clause database *)
  clauses : clause Vec.t;
  learnts : clause Vec.t;
  mutable elim_stack : (Lit.t * Lit.t array list) list; (* head = most recent *)
  (* heuristics *)
  mutable order : Idx_heap.t;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable nvars : int;
  mutable ok : bool;
  mutable model_valid : bool;
  mutable saved_model : bool array;
  (* learnt-DB reduction schedule *)
  mutable reduce_enabled : bool;
  mutable reduce_interval : int;        (* conflicts between reductions *)
  mutable next_reduce : int;            (* absolute conflict-count target *)
  (* inprocessing schedule: clause load (longs + binary pairs) right after
     the last full simplify pass; -1 = never simplified *)
  mutable simplify_marker : int;
  (* statistics *)
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable restarts : int;
  mutable learned : int;                (* clauses ever learnt (incl. binaries) *)
  mutable lbd_sum : float;              (* sum of learn-time LBDs *)
  mutable learnts_kept : int;           (* survivors of the last reduce_db *)
  mutable learnts_deleted : int;
  mutable n_binaries : int;             (* live pairs in the binary layer *)
  mutable subsumed : int;               (* clauses removed by (self-)subsumption *)
  mutable vars_eliminated : int;
  mutable n_subst : int;                (* variables substituted away by
                                           equivalent-literal classes *)
  mutable simplify_ms : float;
  (* resource budgets: absolute counter targets, -1 = no limit. Only
     [solve_limited] consults them; [solve] always runs to completion. *)
  mutable conflict_limit : int;
  mutable propagation_limit : int;
}

let var_decay = 1.0 /. 0.95
let clause_decay = 1.0 /. 0.999
let restart_base = 100
let default_reduce_interval = 2000

(* simplification bounds: BVE skips variables with more total occurrences
   than [elim_occ_lim] or producing a resolvent longer than
   [elim_clause_lim]; both keep simplify linear-ish on pathological inputs *)
let elim_occ_lim = 16
let elim_clause_lim = 24

let create () =
  let s =
    {
      assigns = [||];
      level = [||];
      reason = [||];
      binreason = [||];
      activity = [||];
      polarity = [||];
      seen = [||];
      frozen = [||];
      elimd = [||];
      repr = [||];
      has_subst = false;
      lbd_seen = [||];
      lbd_ctr = 0;
      watches = [||];
      bin = [||];
      trail = Vec.create ~dummy:0;
      trail_lim = Vec.create ~dummy:0;
      qhead = 0;
      clauses = Vec.create ~dummy:dummy_clause;
      learnts = Vec.create ~dummy:dummy_clause;
      elim_stack = [];
      order = Idx_heap.create ~score:(fun _ -> 0.);
      var_inc = 1.0;
      cla_inc = 1.0;
      nvars = 0;
      ok = true;
      model_valid = false;
      saved_model = [||];
      reduce_enabled = true;
      reduce_interval = default_reduce_interval;
      next_reduce = default_reduce_interval;
      simplify_marker = -1;
      conflicts = 0;
      decisions = 0;
      propagations = 0;
      restarts = 0;
      learned = 0;
      lbd_sum = 0.;
      learnts_kept = 0;
      learnts_deleted = 0;
      n_binaries = 0;
      subsumed = 0;
      vars_eliminated = 0;
      n_subst = 0;
      simplify_ms = 0.;
      conflict_limit = -1;
      propagation_limit = -1;
    }
  in
  s.order <- Idx_heap.create ~score:(fun v -> s.activity.(v));
  s

let nvars s = s.nvars

let grow_arrays s n =
  let old = Array.length s.assigns in
  if n > old then begin
    let cap = max n (max 16 (2 * old)) in
    let grow a dflt =
      let a' = Array.make cap dflt in
      Array.blit a 0 a' 0 old;
      a'
    in
    s.assigns <- grow s.assigns 0;
    s.level <- grow s.level (-1);
    s.reason <- grow s.reason dummy_clause;
    s.binreason <- grow s.binreason (-1);
    s.activity <- grow s.activity 0.;
    s.polarity <- grow s.polarity false;
    s.seen <- grow s.seen false;
    s.frozen <- grow s.frozen false;
    s.elimd <- grow s.elimd false;
    (* literal-indexed; fresh entries are their own representatives *)
    let oldr = Array.length s.repr in
    s.repr <- Array.init (2 * cap) (fun i -> if i < oldr then s.repr.(i) else i);
    (* indexed by decision level, which can reach nvars *)
    let lbd' = Array.make (cap + 1) 0 in
    Array.blit s.lbd_seen 0 lbd' 0 (Array.length s.lbd_seen);
    s.lbd_seen <- lbd';
    let oldw = Array.length s.watches in
    let w' = Array.make (2 * cap) (Vec.create ~dummy:dummy_clause) in
    Array.blit s.watches 0 w' 0 oldw;
    for i = oldw to (2 * cap) - 1 do
      w'.(i) <- Vec.create ~dummy:dummy_clause
    done;
    s.watches <- w';
    let oldb = Array.length s.bin in
    let b' = Array.make (2 * cap) (Vec.create ~dummy:0) in
    Array.blit s.bin 0 b' 0 oldb;
    for i = oldb to (2 * cap) - 1 do
      b'.(i) <- Vec.create ~dummy:0
    done;
    s.bin <- b'
  end

let new_var s =
  let v = s.nvars in
  grow_arrays s (v + 1);
  s.nvars <- v + 1;
  Idx_heap.insert s.order v;
  v

let ensure_nvars s n =
  while s.nvars < n do
    ignore (new_var s)
  done

(* ---- values ---- *)

let value_var s v = s.assigns.(v)

let value_lit s l =
  let a = s.assigns.(Lit.var l) in
  if Lit.sign l then a else -a

let decision_level s = Vec.size s.trail_lim

(* Map a caller-facing literal onto its equivalence-class representative.
   Identity until the first substitution, and maps are kept fully collapsed
   (no chains), so a single lookup suffices. *)
let subst_lit s l = if s.has_subst then s.repr.(l) else l

(* ---- frozen / eliminated variables ---- *)

let check_var name s v =
  if v < 0 || v >= s.nvars then invalid_arg ("Solver." ^ name ^ ": bad variable")

let freeze s v =
  check_var "freeze" s v;
  s.frozen.(v) <- true;
  (* a substituted variable stays expressible only through its class
     representative, so the representative must outlive BVE too *)
  let r = subst_lit s (Lit.pos v) in
  s.frozen.(Lit.var r) <- true

let freeze_all s =
  for v = 0 to s.nvars - 1 do
    s.frozen.(v) <- true
  done

let is_frozen s v =
  check_var "is_frozen" s v;
  s.frozen.(v)

let is_eliminated s v =
  check_var "is_eliminated" s v;
  s.elimd.(v)

(* ---- activity ---- *)

let var_bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  Idx_heap.update s.order v

let var_decay_activity s = s.var_inc <- s.var_inc *. var_decay

let clause_bump s (c : clause) =
  c.activity <- c.activity +. s.cla_inc;
  if c.activity > 1e20 then begin
    Vec.iter (fun (c : clause) -> c.activity <- c.activity *. 1e-20) s.learnts;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

let clause_decay_activity s = s.cla_inc <- s.cla_inc *. clause_decay

(* ---- LBD ---- *)

let compute_lbd s lits =
  s.lbd_ctr <- s.lbd_ctr + 1;
  let ctr = s.lbd_ctr in
  let n = ref 0 in
  Array.iter
    (fun l ->
      let lv = s.level.(Lit.var l) in
      if lv > 0 && s.lbd_seen.(lv) <> ctr then begin
        s.lbd_seen.(lv) <- ctr;
        incr n
      end)
    lits;
  !n

(* re-score a learnt clause when it takes part in conflict analysis; LBD
   only ever improves (Glucose's dynamic glue update) *)
let maybe_update_lbd s (c : clause) =
  let lbd = compute_lbd s c.lits in
  if lbd < c.lbd then c.lbd <- lbd

(* ---- assignment ---- *)

let enqueue s l reason =
  assert (value_lit s l = 0);
  let v = Lit.var l in
  s.assigns.(v) <- (if Lit.sign l then 1 else -1);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  s.binreason.(v) <- -1;
  Vec.push s.trail l

(* [l] is implied by the binary clause (l \/ other) with [other] false *)
let enqueue_bin s l other =
  assert (value_lit s l = 0);
  let v = Lit.var l in
  s.assigns.(v) <- (if Lit.sign l then 1 else -1);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- dummy_clause;
  s.binreason.(v) <- other;
  Vec.push s.trail l

let cancel_until s lvl =
  if decision_level s > lvl then begin
    let bound = Vec.get s.trail_lim lvl in
    for i = Vec.size s.trail - 1 downto bound do
      let l = Vec.get s.trail i in
      let v = Lit.var l in
      s.assigns.(v) <- 0;
      s.polarity.(v) <- Lit.sign l;
      s.reason.(v) <- dummy_clause;
      s.binreason.(v) <- -1;
      Idx_heap.insert s.order v
    done;
    Vec.shrink s.trail bound;
    Vec.shrink s.trail_lim lvl;
    s.qhead <- Vec.size s.trail
  end

(* ---- watches / binary layer ---- *)

let attach_clause s c =
  assert (Array.length c.lits >= 2);
  Vec.push s.watches.(Lit.negate c.lits.(0)) c;
  Vec.push s.watches.(Lit.negate c.lits.(1)) c

(* record the binary clause (a \/ b) in the implication layer: enqueueing
   the negation of either literal implies the other *)
let add_binary s a b =
  Vec.push s.bin.(Lit.negate a) b;
  Vec.push s.bin.(Lit.negate b) a;
  s.n_binaries <- s.n_binaries + 1

(* Propagate all enqueued facts; returns the conflicting clause if any.
   For each dequeued literal the binary layer fires first — a flat scan of
   implied literals, no clause records touched — then the long clauses. *)
let propagate s =
  let confl = ref None in
  while !confl = None && s.qhead < Vec.size s.trail do
    let p = Vec.get s.trail s.qhead in
    s.qhead <- s.qhead + 1;
    s.propagations <- s.propagations + 1;
    (* binary pass: every entry of bin.(p) is implied outright *)
    let bs = s.bin.(p) in
    let nb = Vec.size bs in
    let j = ref 0 in
    while !confl = None && !j < nb do
      let o = Vec.get bs !j in
      (match value_lit s o with
      | 1 -> ()
      | 0 -> enqueue_bin s o (Lit.negate p)
      | _ ->
          (* both literals of (negate p \/ o) are false: materialise the
             pair as a throwaway clause to seed conflict analysis *)
          confl :=
            Some
              {
                lits = [| o; Lit.negate p |];
                learnt = false;
                activity = 0.;
                lbd = 2;
                deleted = false;
                sig_ = 0;
              };
          s.qhead <- Vec.size s.trail);
      incr j
    done;
    if !confl = None then begin
      let ws = s.watches.(p) in
      let i = ref 0 in
      while !i < Vec.size ws do
        let c = Vec.get ws !i in
        if c.deleted then Vec.swap_remove ws !i
        else begin
          let false_lit = Lit.negate p in
          (* make sure the false literal is at position 1 *)
          if c.lits.(0) = false_lit then begin
            c.lits.(0) <- c.lits.(1);
            c.lits.(1) <- false_lit
          end;
          if value_lit s c.lits.(0) = 1 then incr i (* clause already satisfied *)
          else begin
            (* look for a new literal to watch *)
            let n = Array.length c.lits in
            let k = ref 2 in
            while !k < n && value_lit s c.lits.(!k) = -1 do
              incr k
            done;
            if !k < n then begin
              (* found: move it to position 1 and update watch lists *)
              c.lits.(1) <- c.lits.(!k);
              c.lits.(!k) <- false_lit;
              Vec.push s.watches.(Lit.negate c.lits.(1)) c;
              Vec.swap_remove ws !i
            end
            else if value_lit s c.lits.(0) = -1 then begin
              (* conflict *)
              confl := Some c;
              s.qhead <- Vec.size s.trail;
              incr i
            end
            else begin
              (* unit clause: propagate c.lits.(0) *)
              enqueue s c.lits.(0) c;
              incr i
            end
          end
        end
      done
    end
  done;
  !confl

(* ---- clause addition (decision level 0 only) ---- *)

exception Early_unsat

let add_clause_a s lits =
  if s.ok then begin
    assert (decision_level s = 0);
    Array.iter
      (fun l ->
        if Lit.var l >= s.nvars then
          invalid_arg "Solver.add_clause: unallocated variable")
      lits;
    (* substituted literals enter as their class representatives *)
    let lits = Array.map (fun l -> subst_lit s l) lits in
    Array.iter
      (fun l ->
        if s.elimd.(Lit.var l) then
          invalid_arg "Solver.add_clause: eliminated variable (freeze it first)")
      lits;
    (* sort, dedup, drop false literals, detect tautology / satisfied *)
    Array.sort compare lits;
    let out = ref [] and n = ref 0 and sat = ref false in
    let prev = ref (-1) in
    Array.iter
      (fun l ->
        if not !sat then begin
          if l = Lit.negate !prev && !prev >= 0 then sat := true (* p ∨ ¬p *)
          else if l <> !prev then begin
            match value_lit s l with
            | 1 -> sat := true
            | -1 when s.level.(Lit.var l) = 0 -> () (* false at level 0: drop *)
            | _ ->
                out := l :: !out;
                incr n;
                prev := l
          end
        end)
      lits;
    if not !sat then begin
      match !out with
      | [] ->
          s.ok <- false;
          raise Early_unsat
      | [ l ] -> (
          enqueue s l dummy_clause;
          match propagate s with
          | Some _ ->
              s.ok <- false;
              raise Early_unsat
          | None -> ())
      | [ x; y ] -> add_binary s x y
      | ls ->
          let c =
            {
              lits = Array.of_list (List.rev ls);
              learnt = false;
              activity = 0.;
              lbd = 0;
              deleted = false;
              sig_ = 0;
            }
          in
          Vec.push s.clauses c;
          attach_clause s c
    end
  end

let add_clause_a s lits = try add_clause_a s lits with Early_unsat -> ()

let add_clause s lits = add_clause_a s (Array.of_list lits)

let add_cnf s (f : Cnf.t) =
  ensure_nvars s f.Cnf.nvars;
  List.iter (fun c -> add_clause_a s c) f.Cnf.clauses

let add_units s lits = List.iter (fun l -> add_clause s [ l ]) lits

(* ---- conflict analysis (first UIP) ---- *)

let analyze s confl =
  let learnt = Vec.create ~dummy:0 in
  Vec.push learnt 0 (* placeholder for the asserting literal *);
  let path_c = ref 0 in
  let p = ref (-1) (* -1 = undefined *) in
  let index = ref (Vec.size s.trail - 1) in
  let visit q =
    let v = Lit.var q in
    if (not s.seen.(v)) && s.level.(v) > 0 then begin
      var_bump s v;
      s.seen.(v) <- true;
      if s.level.(v) >= decision_level s then incr path_c
      else Vec.push learnt q
    end
  in
  (* seed with the conflict clause, then walk the trail expanding reasons *)
  if confl.learnt then begin
    clause_bump s confl;
    maybe_update_lbd s confl
  end;
  Array.iter visit confl.lits;
  let continue_loop = ref true in
  while !continue_loop do
    (* select next literal to expand *)
    while not s.seen.(Lit.var (Vec.get s.trail !index)) do
      decr index
    done;
    p := Vec.get s.trail !index;
    decr index;
    let v = Lit.var !p in
    s.seen.(v) <- false;
    decr path_c;
    if !path_c > 0 then begin
      if s.binreason.(v) >= 0 then visit s.binreason.(v)
      else begin
        let c = s.reason.(v) in
        if c.learnt then begin
          clause_bump s c;
          maybe_update_lbd s c
        end;
        for j = 1 to Array.length c.lits - 1 do
          visit c.lits.(j)
        done
      end
    end
    else continue_loop := false
  done;
  Vec.set learnt 0 (Lit.negate !p);
  (* clause minimisation: drop literals implied by the rest via their reason *)
  let keep q =
    let v = Lit.var q in
    if s.binreason.(v) >= 0 then begin
      let w = Lit.var s.binreason.(v) in
      (not s.seen.(w)) && s.level.(w) > 0
    end
    else
      let r = s.reason.(v) in
      if r == dummy_clause then true
      else
        Array.exists
          (fun l ->
            let w = Lit.var l in
            w <> v && (not s.seen.(w)) && s.level.(w) > 0)
          r.lits
  in
  let minimized = Vec.create ~dummy:0 in
  Vec.push minimized (Vec.get learnt 0);
  for i = 1 to Vec.size learnt - 1 do
    let q = Vec.get learnt i in
    if keep q then Vec.push minimized q
  done;
  (* compute backtrack level; move the max-level literal to position 1 *)
  let bt_level = ref 0 in
  if Vec.size minimized > 1 then begin
    let max_i = ref 1 in
    for i = 2 to Vec.size minimized - 1 do
      if s.level.(Lit.var (Vec.get minimized i)) > s.level.(Lit.var (Vec.get minimized !max_i))
      then max_i := i
    done;
    let tmp = Vec.get minimized 1 in
    Vec.set minimized 1 (Vec.get minimized !max_i);
    Vec.set minimized !max_i tmp;
    bt_level := s.level.(Lit.var (Vec.get minimized 1))
  end;
  (* clear seen flags *)
  Vec.iter (fun q -> s.seen.(Lit.var q) <- false) learnt;
  (Array.of_list (Vec.to_list minimized), !bt_level)

(* ---- learnt clause database reduction ---- *)

let locked s c =
  Array.length c.lits > 0
  && s.reason.(Lit.var c.lits.(0)) == c
  && value_lit s c.lits.(0) = 1

(* Halve the learnt database: glue clauses (LBD <= 2) and clauses locked as
   reasons survive unconditionally; the rest go worst-first by LBD, ties
   broken by lower activity. Binary learnts never appear here — they live
   in the binary layer and are kept forever. Deleted clauses leave their
   watch lists lazily during propagation. *)
let reduce_db s =
  let cand = ref [] and ncand = ref 0 in
  Vec.iter
    (fun (c : clause) ->
      if (not c.deleted) && c.lbd > 2 && not (locked s c) then begin
        cand := c :: !cand;
        incr ncand
      end)
    s.learnts;
  let arr = Array.of_list !cand in
  Array.sort
    (fun (a : clause) (b : clause) ->
      if a.lbd <> b.lbd then compare b.lbd a.lbd else compare a.activity b.activity)
    arr;
  let to_delete = !ncand / 2 in
  for i = 0 to to_delete - 1 do
    arr.(i).deleted <- true
  done;
  Vec.filter_in_place (fun (c : clause) -> not c.deleted) s.learnts;
  s.learnts_deleted <- s.learnts_deleted + to_delete;
  s.learnts_kept <- Vec.size s.learnts;
  (* geometric schedule: each reduction buys a 20%-longer reprieve *)
  s.reduce_interval <- s.reduce_interval + (s.reduce_interval / 5);
  s.next_reduce <- s.conflicts + s.reduce_interval

let set_reduce s b = s.reduce_enabled <- b

let set_reduce_interval s n =
  if n < 1 then invalid_arg "Solver.set_reduce_interval";
  s.reduce_interval <- n;
  s.next_reduce <- s.conflicts + n

(* ---- search ---- *)

let luby y x =
  (* Finite subsequences of the Luby sequence: 1,1,2,1,1,2,4,... *)
  let rec go size seq x =
    if size - 1 = x then (seq, x)
    else
      let size' = (size - 1) / 2 in
      go size' (seq - 1) (x mod size')
  in
  let size = ref 1 and seq = ref 0 in
  while !size < x + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let seq, _ = go !size !seq x in
  y ** float_of_int seq

let pick_branch_var s =
  let rec go () =
    if Idx_heap.is_empty s.order then -1
    else
      let v = Idx_heap.pop_max s.order in
      if
        value_var s v = 0 && (not s.elimd.(v))
        && ((not s.has_subst) || s.repr.(Lit.pos v) = Lit.pos v)
      then v
      else go ()
  in
  go ()

(* ---- budgets (MiniSat setConfBudget / budgetOff lineage) ---- *)

let set_budget ?conflicts ?propagations s =
  (match conflicts with
  | Some n -> s.conflict_limit <- s.conflicts + max 0 n
  | None -> ());
  match propagations with
  | Some n -> s.propagation_limit <- s.propagations + max 0 n
  | None -> ()

let clear_budget s =
  s.conflict_limit <- -1;
  s.propagation_limit <- -1

let within_budget s =
  (s.conflict_limit < 0 || s.conflicts < s.conflict_limit)
  && (s.propagation_limit < 0 || s.propagations < s.propagation_limit)

let budget_exhausted s = not (within_budget s)

type search_outcome = S_sat | S_unsat_global | S_unsat_assump | S_restart | S_unknown

let record_learnt s lits =
  let n = Array.length lits in
  if n = 1 then enqueue s lits.(0) dummy_clause
  else if n = 2 then begin
    (* learnt binaries go straight to the implication layer and are never
       reduction candidates *)
    add_binary s lits.(0) lits.(1);
    s.learned <- s.learned + 1;
    s.lbd_sum <- s.lbd_sum +. 2.;
    enqueue_bin s lits.(0) lits.(1)
  end
  else begin
    let lbd = compute_lbd s lits in
    let c = { lits; learnt = true; activity = 0.; lbd; deleted = false; sig_ = 0 } in
    s.learned <- s.learned + 1;
    s.lbd_sum <- s.lbd_sum +. float_of_int lbd;
    Vec.push s.learnts c;
    attach_clause s c;
    clause_bump s c;
    enqueue s lits.(0) c
  end

let search s ~respect_budget ~nof_conflicts ~assumptions =
  let conflict_c = ref 0 in
  let outcome = ref None in
  while !outcome = None do
    match propagate s with
    | Some confl ->
        s.conflicts <- s.conflicts + 1;
        incr conflict_c;
        if decision_level s = 0 then outcome := Some S_unsat_global
        else if respect_budget && not (within_budget s) then
          (* budget spent mid-search: the conflict is left unresolved; the
             caller cancels to level 0, keeping the solver reusable *)
          outcome := Some S_unknown
        else begin
          let learnt, bt = analyze s confl in
          cancel_until s bt;
          record_learnt s learnt;
          var_decay_activity s;
          clause_decay_activity s
        end
    | None ->
        if respect_budget && not (within_budget s) then begin
          cancel_until s 0;
          outcome := Some S_unknown
        end
        else if !conflict_c >= nof_conflicts then begin
          cancel_until s 0;
          s.restarts <- s.restarts + 1;
          outcome := Some S_restart
        end
        else begin
          if s.reduce_enabled && s.conflicts >= s.next_reduce then reduce_db s;
          (* place assumptions first, one decision level each *)
          let next = ref (-1) in
          let dl = decision_level s in
          if dl < Array.length assumptions then begin
            let p = assumptions.(dl) in
            match value_lit s p with
            | 1 ->
                (* already satisfied: open a dummy level *)
                Vec.push s.trail_lim (Vec.size s.trail)
            | -1 -> outcome := Some S_unsat_assump
            | _ -> next := p
          end
          else begin
            let v = pick_branch_var s in
            if v = -1 then outcome := Some S_sat
            else begin
              s.decisions <- s.decisions + 1;
              next := Lit.make v s.polarity.(v)
            end
          end;
          (match (!outcome, !next) with
          | None, p when p >= 0 ->
              Vec.push s.trail_lim (Vec.size s.trail);
              enqueue s p dummy_clause
          | _ -> ())
        end
  done;
  match !outcome with Some o -> o | None -> assert false

module Limited = struct
  type t = Sat | Unsat | Unknown
end

(* Extend a model over the variables BVE eliminated: walk the elimination
   stack most-recent-first; each entry stores the pivot literal and the
   clauses of its phase that were removed. Default the pivot to false and
   flip it exactly when one of its stored clauses is otherwise unsatisfied —
   the resolvents kept in the database guarantee the opposite phase then
   holds too (standard SatELite reconstruction). *)
let extend_model s =
  List.iter
    (fun (p, cls) ->
      let v = Lit.var p in
      s.saved_model.(v) <- not (Lit.sign p);
      let lit_true l =
        let w = Lit.var l in
        if s.saved_model.(w) then Lit.sign l else not (Lit.sign l)
      in
      if List.exists (fun c -> not (Array.exists lit_true c)) cls then
        s.saved_model.(v) <- Lit.sign p)
    s.elim_stack;
  (* substituted variables mirror their class representative — read it
     last, after BVE reconstruction may have decided it *)
  if s.has_subst then
    for v = 0 to s.nvars - 1 do
      let r = s.repr.(Lit.pos v) in
      if r <> Lit.pos v then
        s.saved_model.(v) <-
          (if s.saved_model.(Lit.var r) then Lit.sign r else not (Lit.sign r))
    done

let solve_driver ~respect_budget ~assumptions s =
  s.model_valid <- false;
  if not s.ok then Limited.Unsat
  else begin
    cancel_until s 0;
    let assumptions =
      List.map
        (fun l ->
          if Lit.var l >= s.nvars then
            invalid_arg "Solver.solve: assumption over unallocated variable";
          let l = subst_lit s l in
          if s.elimd.(Lit.var l) then
            invalid_arg "Solver.solve: assumption over eliminated variable (freeze it)";
          l)
        assumptions
    in
    let assumptions = Array.of_list assumptions in
    let result = ref None in
    let curr_restarts = ref 0 in
    while !result = None do
      let budget =
        int_of_float (luby 2.0 !curr_restarts *. float_of_int restart_base)
      in
      (match search s ~respect_budget ~nof_conflicts:budget ~assumptions with
      | S_sat ->
          s.saved_model <- Array.init s.nvars (fun v -> value_var s v = 1);
          extend_model s;
          s.model_valid <- true;
          result := Some Limited.Sat
      | S_unsat_global ->
          s.ok <- false;
          result := Some Limited.Unsat
      | S_unsat_assump -> result := Some Limited.Unsat
      | S_unknown -> result := Some Limited.Unknown
      | S_restart -> incr curr_restarts);
      ()
    done;
    cancel_until s 0;
    match !result with Some r -> r | None -> assert false
  end

let solve ?(assumptions = []) s =
  match solve_driver ~respect_budget:false ~assumptions s with
  | Limited.Sat -> Sat
  | Limited.Unsat -> Unsat
  | Limited.Unknown -> assert false (* unreachable: budgets not consulted *)

let solve_limited ?(assumptions = []) s = solve_driver ~respect_budget:true ~assumptions s

let model_value s v =
  if not s.model_valid then invalid_arg "Solver.model_value: no model";
  if v < 0 || v >= Array.length s.saved_model then
    invalid_arg "Solver.model_value: bad variable"
  else s.saved_model.(v)

let model s =
  if not s.model_valid then invalid_arg "Solver.model: no model";
  Array.copy s.saved_model

let has_model s = s.model_valid

let value_level0 s v =
  if v < 0 || v >= s.nvars then invalid_arg "Solver.value_level0";
  let l = subst_lit s (Lit.pos v) in
  let w = Lit.var l in
  if s.assigns.(w) <> 0 && s.level.(w) = 0 then
    Some (if Lit.sign l then s.assigns.(w) = 1 else s.assigns.(w) = -1)
  else None

let ok s = s.ok

(* ---- pre/inprocessing at decision level 0 ---- *)

(* Assign a literal at level 0 outside of propagation (watches may be
   stale while simplify runs, so implications are found by the cleanup
   fixpoint, not by [propagate]). *)
let assign_unit s l =
  match value_lit s l with
  | 1 -> ()
  | -1 -> s.ok <- false
  | _ -> enqueue s l dummy_clause

let clause_sig c =
  let g = ref 0 in
  Array.iter (fun l -> g := !g lor (1 lsl (Lit.var l mod 61))) c.lits;
  c.sig_ <- !g

(* Remove satisfied clauses / binary pairs and strip false literals until
   no new level-0 unit appears. Runs with stale watch lists (rebuilt by the
   caller); long clauses shrunk to two literals migrate to the binary
   layer, to one literal onto the trail. *)
let cleanup_fixpoint s =
  let changed = ref true in
  while s.ok && !changed do
    changed := false;
    (* binary layer: the pair at bin.(p) entry o is (negate p \/ o) *)
    let removed = ref 0 in
    for p = 0 to (2 * s.nvars) - 1 do
      let bs = s.bin.(p) in
      if Vec.size bs > 0 then begin
        let q = Lit.negate p in
        Vec.filter_in_place
          (fun o ->
            if not s.ok then true
            else begin
              (match (value_lit s q, value_lit s o) with
              | -1, -1 -> s.ok <- false
              | -1, 0 ->
                  assign_unit s o;
                  changed := true
              | 0, -1 ->
                  assign_unit s q;
                  changed := true
              | _ -> ());
              if s.ok && (value_lit s q = 1 || value_lit s o = 1) then begin
                incr removed;
                false
              end
              else true
            end)
          bs
      end
    done;
    s.n_binaries <- s.n_binaries - (!removed / 2);
    (* long clauses, original and learnt alike *)
    let clean vec =
      Vec.iter
        (fun (c : clause) ->
          if s.ok && not c.deleted then begin
            if Array.exists (fun l -> value_lit s l = 1) c.lits then c.deleted <- true
            else if Array.exists (fun l -> value_lit s l = -1) c.lits then begin
              let lits' =
                Array.of_list
                  (List.filter (fun l -> value_lit s l = 0) (Array.to_list c.lits))
              in
              match Array.length lits' with
              | 0 -> s.ok <- false
              | 1 ->
                  assign_unit s lits'.(0);
                  c.deleted <- true;
                  changed := true
              | 2 ->
                  add_binary s lits'.(0) lits'.(1);
                  c.deleted <- true
              | _ -> c.lits <- lits'
            end
          end)
        vec
    in
    clean s.clauses;
    clean s.learnts
  done

(* Equivalent-literal substitution (the decompose step of the Lingeling /
   CaDiCaL lineage): strongly connected components of the binary
   implication graph are equivalence classes — every literal in an SCC
   implies every other — so all members collapse onto one representative.
   A class containing both a literal and its negation makes the formula
   unsatisfiable. Frozen variables MAY be substituted (unlike BVE they stay
   expressible: every API entry point maps through [repr]); their
   representative inherits the frozen flag so BVE never removes it.
   Returns [true] when at least one new class was found. *)
let equiv_pass s =
  let n2 = 2 * s.nvars in
  let index = Array.make n2 (-1) in
  let low = Array.make n2 0 in
  let onstack = Array.make n2 false in
  let comp = Array.make n2 (-1) in
  let stack = Vec.create ~dummy:0 in
  let ncomp = ref 0 in
  let counter = ref 0 in
  (* iterative Tarjan: the work stack holds (node, next successor index) *)
  let work = Vec.create ~dummy:(0, 0) in
  for root = 0 to n2 - 1 do
    if index.(root) < 0 then begin
      Vec.push work (root, 0);
      while Vec.size work > 0 do
        let v, ci = Vec.get work (Vec.size work - 1) in
        if ci = 0 then begin
          index.(v) <- !counter;
          low.(v) <- !counter;
          incr counter;
          Vec.push stack v;
          onstack.(v) <- true
        end;
        let succ = s.bin.(v) in
        if ci < Vec.size succ then begin
          Vec.set work (Vec.size work - 1) (v, ci + 1);
          let w = Vec.get succ ci in
          if index.(w) < 0 then Vec.push work (w, 0)
          else if onstack.(w) then low.(v) <- min low.(v) index.(w)
        end
        else begin
          ignore (Vec.pop work);
          if Vec.size work > 0 then begin
            let p, _ = Vec.get work (Vec.size work - 1) in
            low.(p) <- min low.(p) low.(v)
          end;
          if low.(v) = index.(v) then begin
            let continue = ref true in
            while !continue do
              let w = Vec.pop stack in
              onstack.(w) <- false;
              comp.(w) <- !ncomp;
              if w = v then continue := false
            done;
            incr ncomp
          end
        end
      done
    end
  done;
  (* bucket literals by component and install representatives *)
  let members = Array.make !ncomp [] in
  for l = n2 - 1 downto 0 do
    members.(comp.(l)) <- l :: members.(comp.(l))
  done;
  let found = ref false in
  Array.iter
    (fun ms ->
      match ms with
      | [] | [ _ ] -> ()
      | rep :: rest ->
          (* members are ascending, so the head is the minimum literal; the
             complement class independently picks exactly the negated
             representative (same variable set, opposite signs), keeping
             [repr l] and [repr (negate l)] negations of each other *)
          List.iter
            (fun l ->
              if comp.(l) = comp.(Lit.negate l) then s.ok <- false
              else begin
                s.repr.(l) <- rep;
                if s.frozen.(Lit.var l) then s.frozen.(Lit.var rep) <- true
              end)
            rest;
          (* each substituted variable sits in exactly one of the two
             complementary classes with the positive representative *)
          if Lit.sign rep then s.n_subst <- s.n_subst + List.length rest;
          found := true)
    members;
  if !found && s.ok then begin
    (* collapse chains left by earlier substitution rounds: a literal that
       already mapped to [r] must follow [r]'s new mapping (one hop — the
       old map was chain-free and the new one maps only live literals) *)
    if s.has_subst then
      for l = 0 to Array.length s.repr - 1 do
        let r = s.repr.(l) in
        if r <> l && r < n2 && s.repr.(r) <> r then s.repr.(l) <- s.repr.(r)
      done;
    s.has_subst <- true
  end;
  !found && s.ok

(* Rewrite the whole database through [repr]: binary pairs and long
   clauses alike. Tautologies vanish (the class's own defining binaries),
   duplicates in the binary layer are deduplicated outright, and clauses
   shrunk to one literal become level-0 facts. Duplicate LONG clauses are
   left for the subsumption pass, which deletes exact copies. Watch lists
   are stale during this pass; the caller rebuilds them. *)
let apply_subst s =
  let pairs = ref [] in
  Array.iteri
    (fun p bs ->
      let a = Lit.negate p in
      Vec.iter (fun o -> if a < o then pairs := (a, o) :: !pairs) bs)
    s.bin;
  Array.iter Vec.clear s.bin;
  s.n_binaries <- 0;
  let seen = Hashtbl.create 4096 in
  List.iter
    (fun (a, b) ->
      let a = s.repr.(a) and b = s.repr.(b) in
      let a, b = if a <= b then (a, b) else (b, a) in
      if a = b then assign_unit s a (* (l ∨ l) collapsed to a fact *)
      else if b = Lit.negate a then () (* tautology *)
      else if not (Hashtbl.mem seen (a, b)) then begin
        Hashtbl.add seen (a, b) ();
        add_binary s a b
      end)
    !pairs;
  let rewrite vec =
    Vec.iter
      (fun (c : clause) ->
        if (not c.deleted) && Array.exists (fun l -> s.repr.(l) <> l) c.lits then begin
          let mapped = Array.map (fun l -> s.repr.(l)) c.lits in
          Array.sort compare mapped;
          let out = ref [] and n = ref 0 and taut = ref false in
          let prev = ref (-2) in
          Array.iter
            (fun l ->
              if not !taut then
                if l = Lit.negate !prev && !prev >= 0 then taut := true
                else if l <> !prev then begin
                  out := l :: !out;
                  incr n;
                  prev := l
                end)
            mapped;
          if !taut then c.deleted <- true
          else
            match !out with
            | [] -> s.ok <- false
            | [ l ] ->
                assign_unit s l;
                c.deleted <- true
            | [ x; y ] ->
                let x, y = if x <= y then (x, y) else (y, x) in
                if not (Hashtbl.mem seen (x, y)) then begin
                  Hashtbl.add seen (x, y) ();
                  add_binary s x y
                end;
                c.deleted <- true
            | ls -> c.lits <- Array.of_list (List.rev ls)
        end)
      vec
  in
  rewrite s.clauses;
  rewrite s.learnts;
  (* reconstruction clauses recorded by earlier BVE rounds must follow the
     substitution too, or [extend_model] would evaluate a literal whose
     variable no longer carries a value of its own. Pivots are eliminated
     variables (never in an SCC), so only the stored occurrences move. *)
  s.elim_stack <-
    List.map
      (fun (p, cls) -> (p, List.map (fun c -> Array.map (fun l -> s.repr.(l)) c) cls))
      s.elim_stack

(* Backward subsumption and self-subsuming resolution over the original
   long clauses, using per-variable occurrence lists and 61-bit signatures;
   the binary layer both subsumes and strengthens long clauses. *)
let subsumption_pass s occ mark stamp =
  let next_stamp () =
    incr stamp;
    !stamp
  in
  (* does c subsume d (return Some None), self-subsume it (Some (Some l):
     negate l can be stripped from d), or neither (None)? *)
  let subsumes (c : clause) (d : clause) =
    let st = next_stamp () in
    Array.iter (fun l -> mark.(l) <- st) d.lits;
    let flip = ref None and failed = ref false in
    Array.iter
      (fun l ->
        if not !failed then
          if mark.(l) = st then ()
          else if mark.(Lit.negate l) = st && !flip = None then flip := Some l
          else failed := true)
      c.lits;
    if !failed then None else Some !flip
  in
  (* strengthen d by dropping literal l; returns false when d left the long
     database (became binary) *)
  let strengthen (d : clause) l =
    d.lits <- Array.of_list (List.filter (fun x -> x <> l) (Array.to_list d.lits));
    if Array.length d.lits = 2 then begin
      add_binary s d.lits.(0) d.lits.(1);
      d.deleted <- true;
      false
    end
    else begin
      clause_sig d;
      true
    end
  in
  let work = Vec.create ~dummy:dummy_clause in
  Vec.iter
    (fun (c : clause) ->
      clause_sig c;
      Vec.push work c)
    s.clauses;
  let wi = ref 0 in
  while !wi < Vec.size work do
    let c = Vec.get work !wi in
    incr wi;
    if not c.deleted then begin
      (* the binary layer vs c: a pair (l \/ o) with both l and o in c
         subsumes it; with l in c and negate o in c it strengthens it *)
      let rescan = ref true in
      while !rescan && not c.deleted do
        rescan := false;
        let st = next_stamp () in
        Array.iter (fun l -> mark.(l) <- st) c.lits;
        (try
           Array.iter
             (fun l ->
               Vec.iter
                 (fun o ->
                   if o <> l && mark.(o) = st then begin
                     c.deleted <- true;
                     s.subsumed <- s.subsumed + 1;
                     raise Exit
                   end
                   else if mark.(Lit.negate o) = st then begin
                     if strengthen c (Lit.negate o) then rescan := true;
                     raise Exit
                   end)
                 s.bin.(Lit.negate l))
             c.lits
         with Exit -> ())
      done;
      if not c.deleted then begin
        (* scan candidates through the occurrence list of c's rarest var *)
        let best = ref (Lit.var c.lits.(0)) in
        Array.iter
          (fun l ->
            let v = Lit.var l in
            if Vec.size occ.(v) < Vec.size occ.(!best) then best := v)
          c.lits;
        Vec.iter
          (fun (d : clause) ->
            if
              d != c && (not d.deleted) && (not c.deleted)
              && Array.length d.lits >= Array.length c.lits
              && c.sig_ land lnot d.sig_ = 0
            then
              match subsumes c d with
              | Some None ->
                  d.deleted <- true;
                  s.subsumed <- s.subsumed + 1
              | Some (Some l) ->
                  (* self-subsuming resolution: d loses (negate l) *)
                  if strengthen d (Lit.negate l) then Vec.push work d
                  else s.subsumed <- s.subsumed + 1
              | None -> ())
          occ.(!best)
      end
    end
  done

(* Bounded variable elimination over non-frozen, unassigned variables.
   Commits only when the resolvents do not outnumber the clauses removed
   and none exceeds [elim_clause_lim] literals; removed clauses of the
   pivot's smaller phase go onto the elimination stack for model
   reconstruction. *)
let bve_pass s occ mark stamp =
  let resolve (a : Lit.t array) (b : Lit.t array) pivot =
    let st =
      incr stamp;
      !stamp
    in
    let out = ref [] and n = ref 0 and taut = ref false in
    Array.iter
      (fun l ->
        if l <> pivot && mark.(l) <> st then begin
          mark.(l) <- st;
          out := l :: !out;
          incr n
        end)
      a;
    let npiv = Lit.negate pivot in
    Array.iter
      (fun l ->
        if (not !taut) && l <> npiv then
          if mark.(Lit.negate l) = st then taut := true
          else if mark.(l) <> st then begin
            mark.(l) <- st;
            out := l :: !out;
            incr n
          end)
      b;
    if !taut then None else Some (Array.of_list !out)
  in
  let remove_pair_entry other lit =
    (* drop one occurrence of [lit] from bin.(negate other) *)
    let bs = s.bin.(Lit.negate other) in
    let found = ref false and i = ref 0 in
    while (not !found) && !i < Vec.size bs do
      if Vec.get bs !i = lit then begin
        Vec.swap_remove bs !i;
        found := true
      end
      else incr i
    done
  in
  for v = 0 to s.nvars - 1 do
    if
      s.ok && (not s.frozen.(v)) && (not s.elimd.(v)) && s.assigns.(v) = 0
      (* substituted variables have no occurrences left but must stay
         expressible through their representative — not BVE candidates *)
      && ((not s.has_subst) || s.repr.(Lit.pos v) = Lit.pos v)
    then begin
      let lp = Lit.make v true in
      let ln = Lit.negate lp in
      let gather lit =
        let longs = ref [] and n = ref 0 in
        Vec.iter
          (fun (c : clause) ->
            if (not c.deleted) && Array.exists (fun l -> l = lit) c.lits then begin
              longs := c :: !longs;
              incr n
            end)
          occ.(v);
        (* binaries (lit \/ o) live at bin.(negate lit) *)
        (!longs, !n)
      in
      let pos_long, np_long = gather lp and neg_long, nn_long = gather ln in
      let pos_bin = Vec.to_list s.bin.(Lit.negate lp)
      and neg_bin = Vec.to_list s.bin.(Lit.negate ln) in
      let n_pos = np_long + List.length pos_bin
      and n_neg = nn_long + List.length neg_bin in
      if n_pos + n_neg <= elim_occ_lim then begin
        let pos_side =
          List.map (fun (c : clause) -> c.lits) pos_long
          @ List.map (fun o -> [| lp; o |]) pos_bin
        and neg_side =
          List.map (fun (c : clause) -> c.lits) neg_long
          @ List.map (fun o -> [| ln; o |]) neg_bin
        in
        (* count/collect resolvents, bailing out on blow-up *)
        let resolvents = ref [] and n_res = ref 0 and give_up = ref false in
        List.iter
          (fun a ->
            if not !give_up then
              List.iter
                (fun b ->
                  if not !give_up then
                    match resolve a b lp with
                    | None -> ()
                    | Some r ->
                        if Array.length r > elim_clause_lim then give_up := true
                        else begin
                          resolvents := r :: !resolvents;
                          incr n_res;
                          if !n_res > n_pos + n_neg then give_up := true
                        end)
                neg_side)
          pos_side;
        if not !give_up then begin
          (* commit: store the smaller phase for model reconstruction *)
          let pivot, stored =
            if n_pos <= n_neg then (lp, pos_side) else (ln, neg_side)
          in
          s.elim_stack <-
            (pivot, List.map Array.copy stored) :: s.elim_stack;
          List.iter (fun (c : clause) -> c.deleted <- true) pos_long;
          List.iter (fun (c : clause) -> c.deleted <- true) neg_long;
          List.iter
            (fun o ->
              remove_pair_entry o lp;
              s.n_binaries <- s.n_binaries - 1)
            pos_bin;
          List.iter
            (fun o ->
              remove_pair_entry o ln;
              s.n_binaries <- s.n_binaries - 1)
            neg_bin;
          Vec.clear s.bin.(Lit.negate lp);
          Vec.clear s.bin.(Lit.negate ln);
          s.elimd.(v) <- true;
          s.vars_eliminated <- s.vars_eliminated + 1;
          (* add the resolvents, normalised against current assignments *)
          List.iter
            (fun r ->
              if s.ok && not (Array.exists (fun l -> value_lit s l = 1) r) then begin
                let r =
                  Array.of_list
                    (List.filter (fun l -> value_lit s l = 0) (Array.to_list r))
                in
                match Array.length r with
                | 0 -> s.ok <- false
                | 1 -> assign_unit s r.(0)
                | 2 -> add_binary s r.(0) r.(1)
                | _ ->
                    let c =
                      {
                        lits = r;
                        learnt = false;
                        activity = 0.;
                        lbd = 0;
                        deleted = false;
                        sig_ = 0;
                      }
                    in
                    clause_sig c;
                    Vec.push s.clauses c;
                    Array.iter (fun l -> Vec.push occ.(Lit.var l) c) r
              end)
            !resolvents
        end
      end
    end
  done

let clause_load s = Vec.size s.clauses + s.n_binaries

(* Inprocessing scheduling: a full pass costs O(database) — occurrence
   lists, subsumption scans, a complete watch rebuild — so running it at
   every incremental extension point would dominate sessions that extend
   often and grow little (the daemon's delta workload). A pass runs only
   when the clause load has grown by >= 25% (plus slack) since the last
   one; calls in between are no-ops. *)
let simplify_due s =
  s.simplify_marker < 0
  || clause_load s > s.simplify_marker + (s.simplify_marker / 4) + 16

let simplify s =
  if s.ok && decision_level s = 0 && simplify_due s then begin
    let t0 = Unix.gettimeofday () in
    (match propagate s with Some _ -> s.ok <- false | None -> ());
    if s.ok then begin
      (* level-0 implications are facts; their reasons are never revisited *)
      Vec.iter
        (fun l ->
          let v = Lit.var l in
          s.reason.(v) <- dummy_clause;
          s.binreason.(v) <- -1)
        s.trail;
      cleanup_fixpoint s;
      (* equivalent-literal classes (binary SCCs) collapse onto their
         representatives before the clause-level passes: the rewrite turns
         the classes' defining binaries into tautologies and leaves exact
         duplicate long clauses for the subsumption pass to delete *)
      if s.ok && equiv_pass s then begin
        apply_subst s;
        if s.ok then cleanup_fixpoint s
      end;
      if s.ok then begin
        (* transient occurrence lists over the original long clauses and a
           literal-indexed mark array shared by the passes *)
        let occ = Array.init s.nvars (fun _ -> Vec.create ~dummy:dummy_clause) in
        Vec.iter
          (fun (c : clause) ->
            if not c.deleted then
              Array.iter (fun l -> Vec.push occ.(Lit.var l) c) c.lits)
          s.clauses;
        let mark = Array.make (2 * s.nvars) 0 and stamp = ref 0 in
        subsumption_pass s occ mark stamp;
        if s.ok then bve_pass s occ mark stamp;
        (* learnt clauses mentioning an eliminated variable are no longer
           implied by the reduced formula: drop them *)
        Vec.iter
          (fun (c : clause) ->
            if
              (not c.deleted)
              && Array.exists (fun l -> s.elimd.(Lit.var l)) c.lits
            then c.deleted <- true)
          s.learnts;
        (* consume units discovered by strengthening / elimination *)
        if s.ok then cleanup_fixpoint s
      end;
      (* compact the databases and rebuild every watch list: surviving long
         clauses contain only unassigned literals, so any two positions
         are valid watches *)
      Vec.filter_in_place (fun (c : clause) -> not c.deleted) s.clauses;
      Vec.filter_in_place (fun (c : clause) -> not c.deleted) s.learnts;
      Array.iter Vec.clear s.watches;
      if s.ok then begin
        Vec.iter (fun c -> attach_clause s c) s.clauses;
        Vec.iter (fun c -> attach_clause s c) s.learnts;
        (* re-run propagation from scratch against the rebuilt structures *)
        s.qhead <- 0;
        match propagate s with Some _ -> s.ok <- false | None -> ()
      end
    end;
    s.simplify_marker <- clause_load s;
    s.simplify_ms <- s.simplify_ms +. ((Unix.gettimeofday () -. t0) *. 1000.)
  end

(* ---- export ---- *)

let export_cnf s =
  if not s.ok then Cnf.unsafe_make ~nvars:(max s.nvars 1) [ [||] ]
  else begin
    let cls = ref [] in
    (* level-0 facts *)
    Vec.iter
      (fun l -> if s.level.(Lit.var l) = 0 then cls := [| l |] :: !cls)
      s.trail;
    (* one emission per binary pair: the co-literal of bin.(p) is negate p,
       so emit only from the side where it is the smaller literal *)
    Array.iteri
      (fun p bs ->
        let a = Lit.negate p in
        Vec.iter (fun o -> if a < o then cls := [| a; o |] :: !cls) bs)
      s.bin;
    (* surviving original long clauses (learnts are implied; skipped) *)
    Vec.iter
      (fun (c : clause) -> if not c.deleted then cls := Array.copy c.lits :: !cls)
      s.clauses;
    (* frozen substituted variables stay expressible in the export: emit
       their defining equivalences (non-frozen ones may vanish, exactly as
       BVE-eliminated variables do) *)
    if s.has_subst then
      for v = 0 to s.nvars - 1 do
        let p = Lit.pos v in
        let r = s.repr.(p) in
        if r <> p && s.frozen.(v) then begin
          cls := [| Lit.negate p; r |] :: !cls;
          cls := [| p; Lit.negate r |] :: !cls
        end
      done;
    Cnf.unsafe_make ~nvars:s.nvars !cls
  end

(* ---- statistics ---- *)

type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  learnts : int;
  learned : int;
  lbd_sum : float;
  learnts_kept : int;
  learnts_deleted : int;
  binaries : int;
  subsumed : int;
  vars_eliminated : int;
  vars_substituted : int;
  simplify_ms : float;
}

let stats (s : t) =
  {
    conflicts = s.conflicts;
    decisions = s.decisions;
    propagations = s.propagations;
    restarts = s.restarts;
    learnts = Vec.size s.learnts;
    learned = s.learned;
    lbd_sum = s.lbd_sum;
    learnts_kept = s.learnts_kept;
    learnts_deleted = s.learnts_deleted;
    binaries = s.n_binaries;
    subsumed = s.subsumed;
    vars_eliminated = s.vars_eliminated;
    vars_substituted = s.n_subst;
    simplify_ms = s.simplify_ms;
  }

let zero_stats =
  {
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    restarts = 0;
    learnts = 0;
    learned = 0;
    lbd_sum = 0.;
    learnts_kept = 0;
    learnts_deleted = 0;
    binaries = 0;
    subsumed = 0;
    vars_eliminated = 0;
    vars_substituted = 0;
    simplify_ms = 0.;
  }

let lbd_avg st = if st.learned = 0 then 0. else st.lbd_sum /. float_of_int st.learned

let add_stats a b =
  {
    conflicts = a.conflicts + b.conflicts;
    decisions = a.decisions + b.decisions;
    propagations = a.propagations + b.propagations;
    restarts = a.restarts + b.restarts;
    learnts = b.learnts;
    learned = a.learned + b.learned;
    lbd_sum = a.lbd_sum +. b.lbd_sum;
    learnts_kept = b.learnts_kept;
    learnts_deleted = a.learnts_deleted + b.learnts_deleted;
    binaries = b.binaries;
    subsumed = a.subsumed + b.subsumed;
    vars_eliminated = a.vars_eliminated + b.vars_eliminated;
    vars_substituted = a.vars_substituted + b.vars_substituted;
    simplify_ms = a.simplify_ms +. b.simplify_ms;
  }

let diff_stats a b =
  {
    conflicts = a.conflicts - b.conflicts;
    decisions = a.decisions - b.decisions;
    propagations = a.propagations - b.propagations;
    restarts = a.restarts - b.restarts;
    learnts = a.learnts;
    learned = a.learned - b.learned;
    lbd_sum = a.lbd_sum -. b.lbd_sum;
    learnts_kept = a.learnts_kept;
    learnts_deleted = a.learnts_deleted - b.learnts_deleted;
    binaries = a.binaries;
    subsumed = a.subsumed - b.subsumed;
    vars_eliminated = a.vars_eliminated - b.vars_eliminated;
    vars_substituted = a.vars_substituted - b.vars_substituted;
    simplify_ms = a.simplify_ms -. b.simplify_ms;
  }

let pp_stats ppf st =
  Format.fprintf ppf
    "conflicts=%d decisions=%d propagations=%d restarts=%d learnts=%d \
     learnts_kept=%d learnts_deleted=%d lbd_avg=%.2f binaries=%d subsumed=%d \
     vars_eliminated=%d vars_substituted=%d simplify_ms=%.1f"
    st.conflicts st.decisions st.propagations st.restarts st.learnts st.learnts_kept
    st.learnts_deleted (lbd_avg st) st.binaries st.subsumed st.vars_eliminated
    st.vars_substituted st.simplify_ms
