(** DIMACS CNF reader/writer for the SAT substrate's command-line front end
    and for test fixtures. *)

(** [parse_string s] parses DIMACS CNF text. Tolerates comment lines ([c])
    and a missing/inconsistent header by growing the variable count.
    Raises [Failure] on malformed input. *)
val parse_string : string -> Cnf.t

(** [parse_file path] reads and parses the file at [path]. *)
val parse_file : string -> Cnf.t

(** [to_string f] renders [f] in DIMACS format. *)
val to_string : Cnf.t -> string

(** [of_solver s] renders the solver's CURRENT clause database — level-0
    facts, the binary implication layer and the surviving original long
    clauses, i.e. {!Solver.export_cnf} — in DIMACS format. This reflects
    the post-[simplify] state, which is what a failing instance dumped for
    external debugging should contain. *)
val of_solver : Solver.t -> string
