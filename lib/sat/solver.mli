(** A CDCL SAT solver in the MiniSat lineage.

    Features: two-watched-literal propagation, first-UIP conflict analysis
    with clause learning, VSIDS variable activities with an indexed heap,
    phase saving, Luby-sequence restarts, activity-based learnt-clause
    deletion, and incremental solving under assumptions.

    This is the substrate standing in for MiniSat in the paper's [IsValid],
    [NaiveDeduce] and suggestion-repair steps. Clauses may be added between
    [solve] calls; the solver keeps learnt clauses across calls. *)

type t

type result = Sat | Unsat

(** [create ()] is a fresh solver with no variables. *)
val create : unit -> t

(** [new_var s] allocates a fresh variable and returns its index. *)
val new_var : t -> int

(** [ensure_nvars s n] allocates variables until [nvars s >= n]. *)
val ensure_nvars : t -> int -> unit

val nvars : t -> int

(** [add_clause s lits] adds a clause. Literals over unallocated variables
    raise [Invalid_argument]. Adding the empty clause (or a clause falsified
    at level 0) makes the solver permanently unsatisfiable. *)
val add_clause : t -> Lit.t list -> unit

(** [add_clause_a s c] is [add_clause] on an array (the array is copied). *)
val add_clause_a : t -> Lit.t array -> unit

(** [add_cnf s f] allocates variables for [f] and adds all its clauses. *)
val add_cnf : t -> Cnf.t -> unit

(** [add_units s lits] adds each literal as a unit clause — the entry
    point for seeding externally-proven facts (e.g. a static saturation's
    closure) into a session. Units are enqueued and propagated at level 0
    immediately, so a literal the clause set already implies is a no-op
    on the solver state. *)
val add_units : t -> Lit.t list -> unit

(** [solve ?assumptions s] decides satisfiability of the clause set under
    the given assumption literals (default none). Budgets set with
    {!set_budget} are ignored: [solve] always runs to completion (use
    {!solve_limited} for interruptible solving). *)
val solve : ?assumptions:Lit.t list -> t -> result

(** Three-valued answer of a budget-respecting solve. *)
module Limited : sig
  type t = Sat | Unsat | Unknown
end

(** [set_budget ?conflicts ?propagations s] arms resource budgets relative
    to the solver's current counters (MiniSat's [setConfBudget] /
    [setPropBudget]): the next {!solve_limited} calls may spend at most
    that many further conflicts / propagated literals before answering
    [Unknown]. Omitted budgets are left unchanged; a budget of [0] makes
    the next [solve_limited] return [Unknown] immediately unless the
    clause set is already known unsatisfiable. Budgets persist across
    calls until re-armed or cleared with {!clear_budget}. *)
val set_budget : ?conflicts:int -> ?propagations:int -> t -> unit

(** [clear_budget s] removes all budgets. *)
val clear_budget : t -> unit

(** [budget_exhausted s] is [true] when an armed budget has been spent —
    i.e. the next [solve_limited] would answer [Unknown] without working. *)
val budget_exhausted : t -> bool

(** [solve_limited ?assumptions s] is {!solve}, except that the CDCL search
    loop checks the armed budgets at every conflict and decision point and
    answers [Limited.Unknown] deterministically when one is spent (no
    wall-clock signals involved, so results are reproducible across
    schedules and domains). On [Unknown] the trail is cancelled back to
    level 0 and the solver stays fully usable: clauses learnt before the
    interrupt are kept, and a later call with a larger budget can finish
    the job. The saved model is invalidated on every call and only valid
    again after [Limited.Sat]. *)
val solve_limited : ?assumptions:Lit.t list -> t -> Limited.t

(** [model_value s v] is the truth of variable [v] in the model found by the
    last successful [solve]. Unassigned variables (possible after
    simplification) default to [false]. Raises [Invalid_argument] if the
    last call did not return [Sat]. *)
val model_value : t -> int -> bool

(** [model s] is the full model as an array indexed by variable. *)
val model : t -> bool array

(** [has_model s] is [true] when the last [solve] returned [Sat] and its
    model is still available — models found under assumptions count, since
    they satisfy the whole clause set. Lets a caller reuse the model of a
    preceding phase (e.g. a validity check on a shared incremental session)
    instead of re-solving. *)
val has_model : t -> bool

(** [value_level0 s v] is [Some b] when [v] is fixed to [b] by unit
    propagation at decision level 0, [None] otherwise. *)
val value_level0 : t -> int -> bool option

(** [ok s] is [false] once the clause set is known unsatisfiable without
    assumptions. *)
val ok : t -> bool

(** Cumulative statistics since [create], in one snapshot: CDCL conflicts,
    decisions, propagations, restarts, and the current learnt-clause count.
    [Crcore.Engine] aggregates these per entity and per batch. *)
type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  learnts : int;
}

val stats : t -> stats

val zero_stats : stats

(** [add_stats a b] / [diff_stats a b] combine snapshots field-wise
    ([learnts] is a gauge, not a counter: [add_stats] and [diff_stats] keep
    the later snapshot's value). *)
val add_stats : stats -> stats -> stats

val diff_stats : stats -> stats -> stats

val pp_stats : Format.formatter -> stats -> unit
