(** A CDCL SAT solver in the MiniSat lineage.

    Features: two-watched-literal propagation with a dedicated binary-clause
    implication layer, first-UIP conflict analysis with clause learning,
    LBD ("glue") scoring with periodic learnt-database reduction, VSIDS
    variable activities with an indexed heap, phase saving, Luby-sequence
    restarts, incremental solving under assumptions, and SatELite-style
    pre/inprocessing ({!simplify}) guarded by a frozen-variable contract.

    This is the substrate standing in for MiniSat in the paper's [IsValid],
    [NaiveDeduce] and suggestion-repair steps. Clauses may be added between
    [solve] calls; the solver keeps learnt clauses across calls. *)

type t

type result = Sat | Unsat

(** [create ()] is a fresh solver with no variables. *)
val create : unit -> t

(** [new_var s] allocates a fresh variable and returns its index. *)
val new_var : t -> int

(** [ensure_nvars s n] allocates variables until [nvars s >= n]. *)
val ensure_nvars : t -> int -> unit

val nvars : t -> int

(** [add_clause s lits] adds a clause. Literals over unallocated variables
    raise [Invalid_argument]; so do literals over variables eliminated by a
    previous {!simplify} (freeze anything you may refer to again). Adding
    the empty clause (or a clause falsified at level 0) makes the solver
    permanently unsatisfiable. Two-literal clauses go to the binary
    implication layer, not the general watch lists. *)
val add_clause : t -> Lit.t list -> unit

(** [add_clause_a s c] is [add_clause] on an array (the array is copied). *)
val add_clause_a : t -> Lit.t array -> unit

(** [add_cnf s f] allocates variables for [f] and adds all its clauses. *)
val add_cnf : t -> Cnf.t -> unit

(** [add_units s lits] adds each literal as a unit clause — the entry
    point for seeding externally-proven facts (e.g. a static saturation's
    closure) into a session. Units are enqueued and propagated at level 0
    immediately, so a literal the clause set already implies is a no-op
    on the solver state. Call before {!simplify} so the facts feed the
    satisfied-clause removal and false-literal stripping. *)
val add_units : t -> Lit.t list -> unit

(** [freeze s v] exempts variable [v] from bounded variable elimination in
    {!simplify}, forever. Anything referenced after a simplification —
    assumption literals, variables probed through {!model_value} or
    {!value_level0}, variables future clauses mention — must be frozen
    before the first {!simplify} call that could see them. Frozen
    variables MAY still be substituted by an equivalent literal (see
    {!simplify}): every entry point maps them to their representative, so
    they stay usable in clauses, assumptions and model queries, and
    {!export_cnf} emits the defining equivalence. *)
val freeze : t -> int -> unit

(** [freeze_all s] freezes every currently-allocated variable. Variables
    allocated later are NOT frozen; freeze them explicitly. *)
val freeze_all : t -> unit

val is_frozen : t -> int -> bool

(** [is_eliminated s v] is [true] once BVE has eliminated [v]. Eliminated
    variables cannot appear in new clauses or assumptions; their model
    values are reconstructed from the elimination stack, so {!model_value}
    stays correct. *)
val is_eliminated : t -> int -> bool

(** [simplify s] runs pre/inprocessing at decision level 0 (a no-op at a
    higher level or on an unsat solver): top-level satisfied-clause
    removal and false-literal stripping; equivalent-literal substitution
    (strongly connected components of the binary implication graph are
    collapsed onto one representative literal per class, rewriting the
    whole clause database — the "decompose" pass of Lingeling/CaDiCaL);
    backward subsumption and self-subsuming resolution through occurrence
    lists (the binary layer participates as both subsumer and
    strengthener); and bounded variable elimination restricted to
    non-frozen variables. Substitution applies to frozen variables too —
    unlike elimination it keeps them expressible, because [add_clause],
    assumptions, {!model_value}, {!value_level0} and {!export_cnf} all
    map through the substitution. The clause set afterwards is
    equisatisfiable — and, over frozen variables, equivalent
    — to the one before. Safe to call between [solve] calls on an
    incremental session; learnt clauses mentioning an eliminated variable
    are dropped, all others survive.

    Self-scheduling: a pass costs O(database), so calls are no-ops until
    the clause load has grown by at least 25% since the previous pass
    (the first call always runs). Sessions may therefore call [simplify]
    at every extension point and pay only when the database changed
    enough to matter. *)
val simplify : t -> unit

(** [set_reduce s b] enables/disables periodic learnt-clause database
    reduction (enabled on a fresh solver). With reduction off the learnt
    database grows without bound — the pre-LBD behaviour, kept as a
    baseline for benchmarks. *)
val set_reduce : t -> bool -> unit

(** [set_reduce_interval s n] sets the number of conflicts before the next
    database reduction to [n] (default 2000); each reduction then grows the
    interval geometrically. Exposed for tests and benchmarks that need to
    force reductions on small instances. *)
val set_reduce_interval : t -> int -> unit

(** [solve ?assumptions s] decides satisfiability of the clause set under
    the given assumption literals (default none). Budgets set with
    {!set_budget} are ignored: [solve] always runs to completion (use
    {!solve_limited} for interruptible solving). *)
val solve : ?assumptions:Lit.t list -> t -> result

(** Three-valued answer of a budget-respecting solve. *)
module Limited : sig
  type t = Sat | Unsat | Unknown
end

(** [set_budget ?conflicts ?propagations s] arms resource budgets relative
    to the solver's current counters (MiniSat's [setConfBudget] /
    [setPropBudget]): the next {!solve_limited} calls may spend at most
    that many further conflicts / propagated literals before answering
    [Unknown]. Omitted budgets are left unchanged; a budget of [0] makes
    the next [solve_limited] return [Unknown] immediately unless the
    clause set is already known unsatisfiable. Budgets persist across
    calls until re-armed or cleared with {!clear_budget}, and they survive
    {!reduce_db}-scheduled reductions and {!simplify} runs unchanged. *)
val set_budget : ?conflicts:int -> ?propagations:int -> t -> unit

(** [clear_budget s] removes all budgets. *)
val clear_budget : t -> unit

(** [budget_exhausted s] is [true] when an armed budget has been spent —
    i.e. the next [solve_limited] would answer [Unknown] without working. *)
val budget_exhausted : t -> bool

(** [solve_limited ?assumptions s] is {!solve}, except that the CDCL search
    loop checks the armed budgets at every conflict and decision point and
    answers [Limited.Unknown] deterministically when one is spent (no
    wall-clock signals involved, so results are reproducible across
    schedules and domains). On [Unknown] the trail is cancelled back to
    level 0 and the solver stays fully usable: clauses learnt before the
    interrupt are kept (modulo database reduction, which only discards
    non-reason clauses), and a later call with a larger budget can finish
    the job. The saved model is invalidated on every call and only valid
    again after [Limited.Sat]. *)
val solve_limited : ?assumptions:Lit.t list -> t -> Limited.t

(** [model_value s v] is the truth of variable [v] in the model found by the
    last successful [solve]. Values of variables eliminated by {!simplify}
    are reconstructed from the elimination stack, so the returned model
    satisfies the original clause set. Unassigned variables default to
    [false]. Raises [Invalid_argument] if the last call did not return
    [Sat]. *)
val model_value : t -> int -> bool

(** [model s] is the full model as an array indexed by variable. *)
val model : t -> bool array

(** [has_model s] is [true] when the last [solve] returned [Sat] and its
    model is still available — models found under assumptions count, since
    they satisfy the whole clause set. Lets a caller reuse the model of a
    preceding phase (e.g. a validity check on a shared incremental session)
    instead of re-solving. *)
val has_model : t -> bool

(** [value_level0 s v] is [Some b] when [v] is fixed to [b] by unit
    propagation at decision level 0, [None] otherwise. *)
val value_level0 : t -> int -> bool option

(** [ok s] is [false] once the clause set is known unsatisfiable without
    assumptions. *)
val ok : t -> bool

(** [export_cnf s] is the CURRENT clause database as a [Cnf.t]: the level-0
    facts as unit clauses, the binary implication layer, and the surviving
    original long clauses (learnt clauses are implied and skipped). On an
    unsat solver it is a formula holding just the empty clause. The result
    is equisatisfiable with everything ever added; eliminated variables do
    not occur in it. *)
val export_cnf : t -> Cnf.t

(** Cumulative statistics since [create], in one snapshot. Mixed gauges and
    counters: [learnts] (current learnt-clause count), [learnts_kept]
    (survivors of the most recent reduction) and [binaries] (live pairs in
    the binary layer) are gauges; everything else accumulates. [learned]
    counts clauses ever learnt and [lbd_sum] their learn-time LBDs, so
    {!lbd_avg} is exact under [add_stats]/[diff_stats].
    [Crcore.Engine] aggregates these per entity and per batch. *)
type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  learnts : int;
  learned : int;
  lbd_sum : float;
  learnts_kept : int;
  learnts_deleted : int;
  binaries : int;
  subsumed : int;
  vars_eliminated : int;
  vars_substituted : int;
  simplify_ms : float;
}

val stats : t -> stats

val zero_stats : stats

(** [lbd_avg st] is the average learn-time LBD over all clauses learnt in
    the snapshot's window ([0.] when none were). *)
val lbd_avg : stats -> float

(** [add_stats a b] / [diff_stats a b] combine snapshots field-wise
    (the gauges [learnts], [learnts_kept] and [binaries] keep the later
    snapshot's value; all other fields add/subtract). *)
val add_stats : stats -> stats -> stats

val diff_stats : stats -> stats -> stats

val pp_stats : Format.formatter -> stats -> unit
