(** Maximum-clique algorithms over {!Ugraph}.

    The paper's [Suggest] step picks a maximum clique in the compatibility
    graph of derivation rules; it uses an off-the-shelf tool with an
    approximation bound. Here: an exact Tomita-style branch-and-bound with
    a greedy-colouring upper bound (anytime, with a node budget), and a
    fast greedy heuristic for large graphs. *)

type result = {
  clique : int list;  (** vertices, pairwise adjacent *)
  optimal : bool;     (** [true] when the search ran to completion *)
}

(** [exact ?max_nodes g] is a maximum clique of [g]; when the node budget
    (default [2_000_000]) is exhausted the best clique found so far is
    returned with [optimal = false]. *)
val exact : ?max_nodes:int -> Ugraph.t -> result

(** [greedy g] grows a clique by repeatedly taking the candidate vertex
    with the most candidate neighbours. O(n·m) time, no optimality
    guarantee. *)
val greedy : Ugraph.t -> int list

(** [find_r ?exact_threshold ?max_nodes g] runs {!exact} (with its node
    budget) when [n_vertices g] is at most [exact_threshold] (default 400)
    and {!greedy} otherwise; mirrors the paper's use of an approximate
    tool at scale. Reporting is unified with the other budgeted searches:
    [optimal = false] whenever the search was not exhaustive, whether the
    node budget ran out or the greedy heuristic was used. *)
val find_r : ?exact_threshold:int -> ?max_nodes:int -> Ugraph.t -> result

(** [find ?exact_threshold g] is [(find_r ?exact_threshold g).clique]. *)
val find : ?exact_threshold:int -> Ugraph.t -> int list

(** [brute g] enumerates all subsets; ground truth for tests. Raises
    [Invalid_argument] beyond 20 vertices. *)
val brute : Ugraph.t -> int list
