type result = { clique : int list; optimal : bool }

(* Greedy colouring of the candidate set: returns vertices ordered by
   increasing colour together with their colour numbers (1-based). The
   colour of a vertex bounds the size of any clique containing it within
   the later part of the order, which is the Tomita pruning bound. *)
let colour_order g cand =
  let vs = Bitset.to_list cand in
  let n = Ugraph.n_vertices g in
  (* first-fit classes in creation order, indexed 0..n_classes-1: a
     growable array instead of appending to a list tail, which rescanned
     every class per vertex (quadratic in the number of colours) *)
  let colour_classes = Array.make (max n 1) (Bitset.create 0) in
  let n_classes = ref 0 in
  let assignments = ref [] in
  List.iter
    (fun v ->
      let rec place k =
        if k > !n_classes then begin
          let cls = Bitset.create n in
          Bitset.add cls v;
          colour_classes.(!n_classes) <- cls;
          incr n_classes;
          k
        end
        else begin
          let cls = colour_classes.(k - 1) in
          if Bitset.is_empty (Bitset.inter cls (Ugraph.neighbours g v)) then begin
            Bitset.add cls v;
            k
          end
          else place (k + 1)
        end
      in
      let k = place 1 in
      assignments := (v, k) :: !assignments)
    vs;
  (* ascending colour, so the loop in [expand] scans high colours first *)
  List.sort (fun (_, k1) (_, k2) -> compare k1 k2) (List.rev !assignments)

let exact ?(max_nodes = 2_000_000) g =
  let n = Ugraph.n_vertices g in
  let best = ref [] in
  let best_size = ref 0 in
  let nodes = ref 0 in
  let optimal = ref true in
  let rec expand r r_size cand =
    incr nodes;
    if !nodes > max_nodes then optimal := false
    else begin
      let ordered = colour_order g cand in
      (* scan from the highest colour down *)
      let rec loop = function
        | [] -> ()
        | (v, k) :: rest ->
            if r_size + k > !best_size && !nodes <= max_nodes then begin
              let cand' = Bitset.inter cand (Ugraph.neighbours g v) in
              let r' = v :: r in
              if r_size + 1 > !best_size then begin
                best := r';
                best_size := r_size + 1
              end;
              if not (Bitset.is_empty cand') then expand r' (r_size + 1) cand';
              Bitset.remove cand v;
              loop rest
            end
        (* colours below the bound cannot improve: stop the whole level *)
      in
      loop (List.rev ordered)
    end
  in
  if n > 0 then begin
    let all = Bitset.create n in
    for v = 0 to n - 1 do
      Bitset.add all v
    done;
    expand [] 0 all
  end;
  { clique = List.sort compare !best; optimal = !optimal }

let greedy g =
  let n = Ugraph.n_vertices g in
  if n = 0 then []
  else begin
    let cand = Bitset.create n in
    for v = 0 to n - 1 do
      Bitset.add cand v
    done;
    let clique = ref [] in
    let continue_growing = ref true in
    while !continue_growing do
      (* candidate with the most neighbours inside the candidate set *)
      let best_v = ref (-1) and best_d = ref (-1) in
      Bitset.iter
        (fun v ->
          let d = Bitset.cardinal (Bitset.inter cand (Ugraph.neighbours g v)) in
          if d > !best_d then begin
            best_d := d;
            best_v := v
          end)
        cand;
      if !best_v < 0 then continue_growing := false
      else begin
        clique := !best_v :: !clique;
        Bitset.inter_into cand cand (Ugraph.neighbours g !best_v)
      end
    done;
    List.sort compare !clique
  end

let find_r ?(exact_threshold = 400) ?max_nodes g =
  if Ugraph.n_vertices g <= exact_threshold then exact ?max_nodes g
  else { clique = greedy g; optimal = false }

let find ?exact_threshold g = (find_r ?exact_threshold g).clique

let brute g =
  let n = Ugraph.n_vertices g in
  if n > 20 then invalid_arg "Maxclique.brute: too many vertices";
  let best = ref [] in
  for mask = 0 to (1 lsl n) - 1 do
    let vs = List.filter (fun v -> mask land (1 lsl v) <> 0) (List.init n Fun.id) in
    if List.length vs > List.length !best && Ugraph.is_clique g vs then best := vs
  done;
  !best
