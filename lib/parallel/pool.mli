(** A fixed-size domain pool for data-parallel loops.

    [run pool ~n f] evaluates [f i] for every [i] in [0..n-1], spread over
    the pool's domains; the caller participates as a worker, so a pool of
    [jobs] executes on [jobs] domains total ([jobs - 1] spawned). Indices
    are claimed in contiguous chunks from a shared counter, so workers
    stay busy even when per-item cost is skewed.

    [f] receives only the item index: with [run], workers communicate
    results by writing to disjoint indices of a caller-owned array, which
    is race-free (no two invocations share an index) and publication-safe
    (joining the job happens-before [run] returning); [run_collect] does
    that bookkeeping itself and returns the per-item results.

    {b Failure contract} (changed when per-item collection was added):
    {!run_collect} is the primitive — every item runs to completion
    whatever its neighbours do, and each item's outcome, value or
    exception, is returned in its slot. {!run} is a thin fail-fast wrapper
    over it: it drains all items, then re-raises the exception of the
    {e lowest} raising index with its original backtrace — deterministic
    regardless of scheduling, and exactly the historical behaviour. Code
    that wants to survive item failures should call [run_collect] and
    inspect the [result]s instead of catching around [run].

    The pool is itself domain-safe for sequential reuse but [run] /
    [run_collect] must not be called concurrently from two domains, nor
    from inside [f]. *)

type t

(** [create ~jobs] spawns [jobs - 1] worker domains ([jobs] is clamped to
    at least 1; [jobs = 1] spawns nothing and [run] degenerates to a plain
    sequential loop). *)
val create : jobs:int -> t

(** Number of domains executing a [run], caller included. *)
val jobs : t -> int

(** A captured per-item failure: the item's index, the exception, and the
    backtrace it was caught with. *)
type exn_info = { index : int; exn : exn; backtrace : Printexc.raw_backtrace }

(** [run_collect pool ~n f] evaluates [f i] for every [i] in [0..n-1] on
    the pool and returns the outcomes in index order: [Ok (f i)], or
    [Error info] when item [i] raised. Every item runs regardless of
    failures elsewhere (item independence means a failure cannot poison
    its neighbours). [chunk] overrides the claiming granularity (default:
    [n] split 8 ways per worker, at least 1). *)
val run_collect :
  ?chunk:int -> t -> n:int -> (int -> 'a) -> ('a, exn_info) result array

(** [run pool ~n f] is [run_collect] specialised to [unit] items with a
    fail-fast surface: after all items drain, the lowest raising index's
    exception is re-raised with its original backtrace (see the module
    doc's failure contract). *)
val run : ?chunk:int -> t -> n:int -> (int -> unit) -> unit

(** Joins the worker domains. The pool must not be used afterwards;
    idempotent. *)
val shutdown : t -> unit

(** [with_pool ~jobs f] is [f pool] with {!shutdown} guaranteed. *)
val with_pool : jobs:int -> (t -> 'a) -> 'a

(** The runtime's view of how many domains this machine can usefully run
    ({!Domain.recommended_domain_count}). *)
val recommended_jobs : unit -> int
