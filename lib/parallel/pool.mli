(** A fixed-size domain pool for data-parallel loops.

    [run pool ~n f] evaluates [f i] for every [i] in [0..n-1], spread over
    the pool's domains; the caller participates as a worker, so a pool of
    [jobs] executes on [jobs] domains total ([jobs - 1] spawned). Indices
    are claimed in contiguous chunks from a shared counter, so workers
    stay busy even when per-item cost is skewed.

    [f] receives only the item index: workers communicate results by
    writing to disjoint indices of a caller-owned array, which is
    race-free (no two invocations share an index) and publication-safe
    (joining the job happens-before [run] returning).

    Exceptions raised by [f] are caught per item; after the loop drains,
    the exception of the lowest raising index is re-raised in the caller —
    deterministic regardless of scheduling. Remaining items still run
    (item independence means a failure cannot poison its neighbours).

    The pool is itself domain-safe for sequential reuse but [run] must not
    be called concurrently from two domains, nor from inside [f]. *)

type t

(** [create ~jobs] spawns [jobs - 1] worker domains ([jobs] is clamped to
    at least 1; [jobs = 1] spawns nothing and [run] degenerates to a plain
    sequential loop). *)
val create : jobs:int -> t

(** Number of domains executing a [run], caller included. *)
val jobs : t -> int

(** [run pool ~n f] — see module doc. [chunk] overrides the claiming
    granularity (default: [n] split 8 ways per worker, at least 1). *)
val run : ?chunk:int -> t -> n:int -> (int -> unit) -> unit

(** Joins the worker domains. The pool must not be used afterwards;
    idempotent. *)
val shutdown : t -> unit

(** [with_pool ~jobs f] is [f pool] with {!shutdown} guaranteed. *)
val with_pool : jobs:int -> (t -> 'a) -> 'a

(** The runtime's view of how many domains this machine can usefully run
    ({!Domain.recommended_domain_count}). *)
val recommended_jobs : unit -> int
