type job = {
  n : int;
  chunk : int;
  f : int -> unit;
  next : int Atomic.t;  (* next unclaimed index *)
  mutable running : int;  (* workers still inside this job *)
  mutable failure : (int * exn * Printexc.raw_backtrace) option;
      (* lowest-index failure so far; [m] guards it *)
}

type t = {
  jobs : int;
  m : Mutex.t;
  work : Condition.t;  (* a new job was posted, or shutdown *)
  idle : Condition.t;  (* a worker left a job *)
  mutable current : job option;
  mutable generation : int;  (* bumped per job; lets workers spot new work *)
  mutable stop : bool;
  mutable domains : unit Domain.t list;
  saved_minor : int option;
      (* minor heap size (words) to restore at shutdown, when [create]
         enlarged it for the multi-domain run *)
}

(* Encoding is allocation-heavy and short-lived-heavy; with several
   domains, small minor heaps mean frequent minor collections, and every
   minor collection in OCaml 5 is a stop-the-world barrier across ALL
   domains. Enlarging the minor heap for the pool's lifetime spaces the
   barriers out — the single biggest lever on multi-domain encode
   throughput. 2M words = 16 MiB/domain on 64-bit; restored on
   [shutdown]. *)
let pool_minor_words = 2 * 1024 * 1024

let enlarge_minor_heap () =
  let g = Gc.get () in
  if g.Gc.minor_heap_size >= pool_minor_words then None
  else begin
    Gc.set { g with Gc.minor_heap_size = pool_minor_words };
    Some g.Gc.minor_heap_size
  end

(* claim and process chunks until the counter runs dry *)
let drain pool job =
  let rec loop () =
    let start = Atomic.fetch_and_add job.next job.chunk in
    if start < job.n then begin
      let stop_ = min job.n (start + job.chunk) in
      for i = start to stop_ - 1 do
        try job.f i
        with e ->
          let bt = Printexc.get_raw_backtrace () in
          Mutex.lock pool.m;
          (match job.failure with
          | Some (j, _, _) when j <= i -> ()
          | _ -> job.failure <- Some (i, e, bt));
          Mutex.unlock pool.m
      done;
      loop ()
    end
  in
  loop ()

let worker pool =
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock pool.m;
    while (not pool.stop) && (pool.generation = !seen || pool.current = None) do
      Condition.wait pool.work pool.m
    done;
    if pool.stop then Mutex.unlock pool.m
    else begin
      seen := pool.generation;
      let job = match pool.current with Some j -> j | None -> assert false in
      job.running <- job.running + 1;
      Mutex.unlock pool.m;
      drain pool job;
      Mutex.lock pool.m;
      job.running <- job.running - 1;
      Condition.signal pool.idle;
      Mutex.unlock pool.m;
      loop ()
    end
  in
  loop ()

let create ~jobs =
  let jobs = max 1 jobs in
  let saved_minor = if jobs > 1 then enlarge_minor_heap () else None in
  let pool =
    {
      jobs;
      m = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      current = None;
      generation = 0;
      stop = false;
      domains = [];
      saved_minor;
    }
  in
  pool.domains <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker pool));
  pool

let jobs pool = pool.jobs

let reraise (i, e, bt) =
  ignore i;
  Printexc.raise_with_backtrace e bt

(* the raw loop: per-item exceptions are recorded (lowest index wins) and
   re-raised after the drain — the backstop for closures that raise, which
   [run_collect]'s wrapper never does *)
let run_raw ?chunk pool ~n f =
  if n > 0 then begin
    let chunk =
      match chunk with
      | Some c -> max 1 c
      | None -> max 1 (n / (pool.jobs * 8))
    in
    if pool.jobs = 1 then begin
      (* degenerate pool: a plain loop, same failure discipline *)
      let job = { n; chunk; f; next = Atomic.make 0; running = 0; failure = None } in
      drain pool job;
      match job.failure with None -> () | Some fl -> reraise fl
    end
    else begin
      let job = { n; chunk; f; next = Atomic.make 0; running = 0; failure = None } in
      Mutex.lock pool.m;
      pool.current <- Some job;
      pool.generation <- pool.generation + 1;
      Condition.broadcast pool.work;
      Mutex.unlock pool.m;
      (* the caller is a worker too *)
      drain pool job;
      Mutex.lock pool.m;
      (* the counter is dry, so workers still [running] are on their last
         chunks; late workers that never joined will find no indices left *)
      while job.running > 0 do
        Condition.wait pool.idle pool.m
      done;
      pool.current <- None;
      Mutex.unlock pool.m;
      match job.failure with None -> () | Some fl -> reraise fl
    end
  end

type exn_info = { index : int; exn : exn; backtrace : Printexc.raw_backtrace }

let run_collect ?chunk pool ~n f =
  let out = Array.make (max n 0) None in
  let g i =
    out.(i) <-
      Some
        (try Ok (f i)
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           Error { index = i; exn = e; backtrace = bt })
  in
  run_raw ?chunk pool ~n g;
  Array.map (function Some r -> r | None -> assert false) out

(* fail-fast view of [run_collect]: every item still runs, then the
   lowest-index failure is re-raised with its original backtrace *)
let run ?chunk pool ~n f =
  let results = run_collect ?chunk pool ~n f in
  Array.iter
    (function
      | Ok () -> ()
      | Error e -> Printexc.raise_with_backtrace e.exn e.backtrace)
    results

let shutdown pool =
  Mutex.lock pool.m;
  pool.stop <- true;
  Condition.broadcast pool.work;
  Mutex.unlock pool.m;
  List.iter Domain.join pool.domains;
  pool.domains <- [];
  match pool.saved_minor with
  | None -> ()
  | Some words ->
      let g = Gc.get () in
      if g.Gc.minor_heap_size = pool_minor_words then
        Gc.set { g with Gc.minor_heap_size = words }

let with_pool ~jobs f =
  let pool = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let recommended_jobs () = Domain.recommended_domain_count ()
