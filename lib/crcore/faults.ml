type point = Encode | Solve | Deduce | Maxsat

type action = Raise of string | Burn of int | Exhaust

type rule = { label : string option; point : point; nth : int; action : action }

exception Injected of string

(* The armed plan is global and read-only while a batch runs: [arm] and
   [disarm] happen on the test's main domain before/after run_batch, and
   workers only [Atomic.get]. The empty list doubles as the disarmed
   fast path, so production batches pay one atomic read per phase. *)
let plan : rule list Atomic.t = Atomic.make []

let arm rules = Atomic.set plan rules

let disarm () = Atomic.set plan []

let armed () = Atomic.get plan <> []

let point_to_string = function
  | Encode -> "encode"
  | Solve -> "solve"
  | Deduce -> "deduce"
  | Maxsat -> "maxsat"

(* Hit counters live in the per-entity context, never in the global plan:
   each entity is processed by exactly one domain, so counting is
   race-free and — crucially — independent of how entities are scheduled
   across domains. The same batch therefore fires the same faults at
   jobs = 1 and jobs = 4. *)
type ctx = { label : string option; counts : int array }

let n_points = 4

let point_index = function Encode -> 0 | Solve -> 1 | Deduce -> 2 | Maxsat -> 3

let make ~label = { label; counts = Array.make n_points 0 }

let fire ctx point =
  match Atomic.get plan with
  | [] -> None
  | rules ->
      let i = point_index point in
      ctx.counts.(i) <- ctx.counts.(i) + 1;
      let n = ctx.counts.(i) in
      List.find_map
        (fun r ->
          if
            r.point = point && r.nth = n
            && (match r.label with None -> true | Some l -> ctx.label = Some l)
          then Some r.action
          else None)
        rules
