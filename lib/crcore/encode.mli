(** The uniform instance-constraint representation Ω(Se) and its CNF
    conversion Φ(Se) (Section V-A of the paper).

    Encoding, in brief: Boolean variables are value-currency facts
    [a1 ≺v_{Ai} a2] over each attribute's active domain (see {!Coding});
    the partial currency orders of [It] and the premise-free instances of
    currency constraints become unit clauses; currency constraints
    instantiated on tuple pairs and constant CFDs become implications;
    transitivity and asymmetry axioms make every model a strict partial
    order per attribute.

    Completions order the values the entity actually takes, following the
    paper's Section II-A definition of temporal instances over [Ie]; a CFD
    pattern constant outside the active domain therefore cannot be a
    current value — an LHS such constant makes the CFD vacuous
    ({!relevant_gamma}), an RHS one forbids the CFD's premise (a veto
    clause).

    [Exact] mode additionally emits totality clauses, making models
    correspond exactly to families of total orders — the sound-and-complete
    variant of the paper's heuristic Lemma 5 reduction (ablated in the
    benches). *)

type mode = Paper | Exact

(** A value-currency fact: value [lo] is less current than value [hi] in
    attribute position [attr] (ids per {!Coding}). *)
type fact = { attr : int; lo : int; hi : int }

(** Where an instance constraint came from; drives the derivation rules of
    [Suggest]. *)
type source =
  | From_order          (** a currency order of [It], or null-is-lowest *)
  | From_constraint of int  (** index into Σ *)
  | From_cfd of int         (** index into Γ *)

(** One instance constraint of Ω(Se): if every premise fact holds then the
    conclusion fact holds. Premise-free instances are facts outright. *)
type iconstraint = { premise : fact list; concl : fact; source : source }

(** Σ compiled against a schema: attribute names resolved to positions
    once, single-tuple constant predicates split out of the pair
    predicates so whole tuple pairs can be skipped wholesale. Compiling
    is cheap but Σ is routinely large and shared across a batch, so
    {!encode} accepts a precompiled form. *)
type sigma_c

(** Γ compiled against a schema (attribute names resolved to positions). *)
type gamma_c

(** [compile_sigma schema sigma] resolves [sigma] against [schema]. The
    result is only valid for specs carrying this very [sigma] list (it is
    checked by physical equality and recompiled on mismatch). *)
val compile_sigma : Schema.t -> Currency.Constraint_ast.t list -> sigma_c

(** [compile_gamma schema gamma] — as {!compile_sigma}, for Γ. *)
val compile_gamma : Schema.t -> Cfd.Constant_cfd.t list -> gamma_c

(** A compiled spec {e shape}: everything about an encoding that does not
    depend on the concrete entity. Holds the compiled Σ/Γ (a function of
    the schema and the interned constraint lists) and a size-keyed store
    of structural-axiom clause blocks — the variable numbering is pure
    arithmetic over the per-attribute universe sizes, so the cubic
    transitivity block is shared across every entity (and {!extend}
    renumbering) whose universes have equal sizes. One template serves a
    whole batch of same-shape specs, from any domain (the store is
    mutex-guarded; blocks are built outside the lock, first-in wins). *)
type template

(** [template ?mode spec] compiles [spec]'s shape: its schema and its
    (canonical, interned — see {!Spec.intern_sigma}) Σ/Γ lists. Default
    mode [Paper]. *)
val template : ?mode:mode -> Spec.t -> template

val template_mode : template -> mode

(** [template_matches tpl spec] — [spec] has exactly the shape [tpl] was
    compiled from (same schema, same interned Σ/Γ). *)
val template_matches : template -> Spec.t -> bool

type t = {
  spec : Spec.t;
  coding : Coding.t;
  mode : mode;
  sigma_c : sigma_c;   (** compiled Σ, reused across {!extend} steps *)
  gamma_c : gamma_c;   (** compiled Γ, reused across {!extend} steps *)
  template : template option;
      (** the template this encoding was instantiated from, when it came
          from {!instantiate}; lets {!extend}'s [Renumbered] path fetch
          the new size vector's structural block from the shared store *)
  sigma_insts : iconstraint list;
      (** the instances of Σ alone, in a canonical order independent of
          which tuple pairs produced them — the part {!extend} updates
          incrementally (premise-free ones also appear in [units]) *)
  gamma_imps : iconstraint list;
      (** the implication instances of Γ alone; a pure function of the
          value universes, reused verbatim by {!extend} when the
          universes are unchanged (also folded into [implications]) *)
  units : (fact * source) list;      (** premise-free part of Ω(Se) *)
  implications : iconstraint list;   (** the rest of Ω(Se) *)
  vetoes : (fact list * source) list;
      (** conjunctions of facts that cannot all hold: a CFD whose RHS
          pattern constant never occurs in the entity can never fire, so
          its "LHS pattern is most current" premise is forbidden *)
  cnf : Sat.Cnf.t;                   (** Φ(Se), structural axioms included *)
  n_structural : int;  (** transitivity + asymmetry (+ totality) clauses *)
  structural : Sat.Lit.t array list;
      (** the structural-axiom clauses themselves (also inside [cnf]);
          kept separately so {!extend} can reuse them without regenerating
          the cubic transitivity block *)
}

(** The ground-instance part of Ω(Se) without any clause rendering — what
    a purely static analysis ({!Saturate}, {!Analyze}) consumes. *)
type parts = {
  p_coding : Coding.t;
  p_units : (fact * source) list;
  p_implications : iconstraint list;
  p_vetoes : (fact list * source) list;
  p_sigma_fired : bool array;
      (** [p_sigma_fired.(k)]: constraint [k] produced at least one ground
          instance {e before} global deduplication (distinct constraints
          can ground to identical instances, and "did σ_k fire" must not
          depend on which one won the dedup) *)
}

(** [parts ?sigma_c ?gamma_c spec] instantiates Ω(Se) without building any
    clauses: same units/implications/vetoes a full {!encode} would carry,
    at a fraction of the cost (no cubic structural block, no CNF). *)
val parts : ?sigma_c:sigma_c -> ?gamma_c:gamma_c -> Spec.t -> parts

(** [parts_of_t enc] views an existing encoding as {!parts} for free.
    [p_sigma_fired] is {e not} recovered (all [false]) — the encoding
    deduplicated globally; use {!parts} when firing flags matter. *)
val parts_of_t : t -> parts

(** [encode ?mode ?sigma_c ?gamma_c spec] computes Ω(Se) and Φ(Se).
    Default mode [Paper]. Pass [?sigma_c]/[?gamma_c] (from
    {!compile_sigma}/{!compile_gamma}) to share the compiled constraint
    forms across a batch of specs holding the same Σ/Γ lists; a compiled
    form whose source list is not physically the spec's is recompiled, so
    passing a stale one is safe. *)
val encode : ?mode:mode -> ?sigma_c:sigma_c -> ?gamma_c:gamma_c -> Spec.t -> t

(** [instantiate tpl spec] is the thin per-entity stage: stamp the
    concrete entity into the precompiled shape without re-walking the
    constraint AST. Produces a result bit-identical to
    [encode ~mode:(template_mode tpl) spec] — same clauses in the same
    order, same numbering, same universes (property-tested in
    test_encode) — reusing [tpl]'s compiled Σ/Γ and structural blocks.
    Falls back to direct compilation when [not (template_matches tpl
    spec)], so a stale template is safe, merely useless. *)
val instantiate : template -> Spec.t -> t

(** How an incremental re-encode relates to its base. *)
type extension =
  | Delta of t * Sat.Lit.t array list
      (** value universes unchanged, so variable numbering is too: the
          new encoding plus exactly the clauses of its [cnf] missing from
          the base's — an incremental SAT session already holding the
          base Φ(Se) only needs these added to represent the new
          specification (pure extensions only add clauses, so the
          session stays sound) *)
  | Renumbered of t
      (** a universe grew (the fresh tuple carries a genuinely new
          value): variable numbers shifted, so solvers must reload the
          new [cnf] — but the expensive Σ instance sweep was still
          reused from the base. A fresh tuple carrying only known values
          and nulls does {e not} renumber: {!Coding.build} pre-reserves
          [Null] in every universe, so null-introducing extensions stay
          on the [Delta] path *)

(** [extend base spec] re-encodes [spec] incrementally against the
    already-encoded [base] — the [Se ⊕ Ot] step of the framework, where
    [spec] extends [base.spec] with user-asserted orders and tuples.

    Old values keep their per-attribute ids (universes are built in
    first-occurrence order; a reserved trailing null may float to a later
    id, which is safe because Σ instances never mention null ids), so the
    base's Σ instances carry over verbatim and only tuple pairs touching
    the appended tuples are instantiated — O(reps) [instantiate] calls
    per constraint instead of the full O(reps²) sweep. Returns [None]
    when [spec] is not a pure extension of [base.spec] (different Σ/Γ,
    tuples not appended, order edges not prepended); callers then fall
    back to a full {!encode}. *)
val extend : t -> Spec.t -> extension option

(** [relevant_gamma entity gamma] keeps the CFDs that can fire on this
    entity — those whose every LHS pattern constant occurs in the active
    domain of its attribute — paired with their index in [gamma]. The
    encoding and the reference semantics consider only these; a CFD whose
    LHS mentions a value the entity never takes is vacuous on it, and
    skipping it keeps the value universes (and hence the cubic
    transitivity axioms) small when Γ is a large pattern table. *)
val relevant_gamma : Entity.t -> Cfd.Constant_cfd.t list -> (int * Cfd.Constant_cfd.t) list

(** [reps_memo entity] is a memoised mapping from attribute-position
    lists to first-occurrence representatives of the distinct projections
    of the entity's tuples onto those positions. Σ-instances depend only
    on the two tuples' values at the attributes a constraint mentions, so
    instantiating over representative pairs yields exactly the instances
    of all tuple pairs, usually over far fewer pairs. {!Analyze} uses the
    same mapping so its ground instances match this encoding's. *)
val reps_memo : Entity.t -> int list -> (int * Tuple.t) list

(** [var_of_fact e f] is the Boolean variable of fact [f]. *)
val var_of_fact : t -> fact -> int

(** [fact_of_var e v] decodes a variable back to its fact. *)
val fact_of_var : t -> int -> fact

val pp_fact : t -> Format.formatter -> fact -> unit
