(** Deducing implied currency orders and true values (Section V-B).

    [DeduceOrder] runs unit propagation over Φ(Se): every one-literal
    clause it derives is added to the partial temporal order [Od]
    (negative literals contribute the reversed pair, sound under the
    total-order completion semantics). [NaiveDeduce] instead asks the SAT
    solver, for every variable, whether Φ(Se) ∧ ¬x is unsatisfiable — the
    exact but expensive variant the paper compares against. [backbone]
    computes the same complete answer as [NaiveDeduce] from the backbone
    of Φ(Se), pruning candidates with the models of failed refutations so
    most variables never need their own solver call.

    Each deducer takes an optional incremental [solver] already holding
    Φ(Se) (the engine passes its per-entity session): the SAT-based
    deducers then probe under assumptions instead of loading the CNF into
    a fresh solver, and [backbone] additionally starts from the model the
    preceding validity check left on the session. *)

(** Solver-work accounting for one deduction call. *)
type stats = {
  sat_calls : int;  (** incremental [solve] calls issued *)
  probes : int;  (** single-literal assumption solves *)
  model_prunes : int;
      (** candidates eliminated by intersecting a probe's model, beyond
          the probed variable itself *)
  seeded : int;  (** facts adopted without a probe (unit propagation or a
                     caller-supplied static closure) *)
  probes_avoided : int;
      (** of [seeded], facts adopted from the [static] closure — work the
          static saturation pre-phase saved this call *)
  reused_solver : bool;  (** the caller's session solver served the calls *)
  built_solver : bool;  (** a private solver was created (one CNF load) *)
  complete : bool;
      (** [false] when a conflict budget interrupted the deduction: the
          reported facts are then a sound subset of the full answer
          (every adopted fact was proven before the interrupt) *)
}

type t = {
  enc : Encode.t;
  od : Porder.Strict_order.t array;
      (** per attribute position: the deduced order over value ids, kept
          transitively closed *)
  stats : stats;
}

(** [unit_conflict enc] is [true] when unit propagation alone refutes
    Φ(Se) — a polynomial-time proof that the specification is invalid,
    usable when a budget left full validity checking unfinished. *)
val unit_conflict : Encode.t -> bool

(** [deduce_order enc] is the paper's [DeduceOrder] (linear-time unit
    propagation). The specification must be valid. [solver], [budget] and
    [static] are accepted for interface uniformity and ignored — no SAT
    call is made, so the answer is always complete. *)
val deduce_order :
  ?solver:Sat.Solver.t -> ?budget:int -> ?static:int list -> Encode.t -> t

(** [deduce_units enc] is {!deduce_order} restricted to {e positive}
    units: every adopted fact is in the positive backbone of Φ(Se), so
    the result is a sound subset of what {!backbone}/{!naive_deduce}
    deduce — the right deducer when a budget forces a degraded answer
    that must stay inside the exact engine's fact set. (The reversed
    reading of negative units, while sound under total-order completion
    semantics, can claim facts the backbone never contains.) The result
    carries [stats.complete = false], routing {!true_value_id} to the
    monotone {!certain_value_id}. *)
val deduce_units : Encode.t -> t

(** [naive_deduce enc] is [NaiveDeduce]: one SAT call per variable. With
    [solver] the calls run as assumption solves on the given session.
    [budget] arms a conflict budget on the solver ({!Sat.Solver.set_budget});
    when it runs out the probe loop stops and [stats.complete] is [false].
    A budget already armed on a passed-in [solver] is honoured the same
    way. [static] is ignored (every variable is probed regardless). *)
val naive_deduce :
  ?solver:Sat.Solver.t -> ?budget:int -> ?static:int list -> Encode.t -> t

(** [backbone enc] deduces exactly the facts of {!naive_deduce} — the
    positive backbone of Φ(Se) — by model intersection: variables false
    in any discovered model are discarded as candidates, unit-propagation
    facts are adopted without a probe, and each remaining candidate [v]
    costs one assumption solve of Φ ∧ ¬v whose [Sat] models prune further
    candidates wholesale.

    When [solver] is a session already holding Φ(Se), its saved validity
    model bootstraps the candidate set with no extra solve, and learnt
    clauses carry over. The session may also hold satisfiable extension
    layers (relaxation/totalizer clauses from
    {!Maxsat.Exact.solve_groups_on}); these never change answers about
    Φ(Se)'s variables.

    [budget] (or a budget already armed on [solver]) bounds the work in
    CDCL conflicts: probes run through {!Sat.Solver.solve_limited}, and on
    [Unknown] the loop stops with [stats.complete = false]. Facts are only
    ever adopted from a unit-propagation seed or an [Unsat] probe, so a
    truncated run returns a sound subset (a prefix of the probe order) of
    the unbudgeted fact set.

    [static] hands over a list of variables a static saturation
    ({!Saturate}) already proved backbone: they are adopted outright —
    with [stats.probes_avoided] counting them — and the unit-propagation
    pass (the costly occurrence-list build over all of Φ) is skipped
    entirely. The caller must only pass a {e complete} closure
    ({!Saturate.complete}); the deduced set is then identical to the
    propagation path's. *)
val backbone :
  ?solver:Sat.Solver.t -> ?budget:int -> ?static:int list -> Encode.t -> t

(** [lt d ~attr lo hi] is [true] when [Od] orders value [lo] before [hi]. *)
val lt : t -> attr:int -> int -> int -> bool

(** [n_facts d] is the size |Od| of the deduced relation (closure). *)
val n_facts : t -> int

(** [candidates d a] is [V(A)]: universe value ids of attribute [a] not
    dominated by any other value in [Od] (the paper's candidate true
    values). *)
val candidates : t -> int -> int list

(** [true_value_id d a] is the id of the true value of attribute [a] when
    [Od] determines one: the unique candidate that dominates every other
    active-domain value. When the deduction was interrupted
    ([stats.complete = false]) this falls back to {!certain_value_id} —
    active-domain domination is not monotone in the fact set (a missing
    fact can hide a second incomparable maximal, typically a CFD repair
    constant), so only universe-certain claims are sound there. *)
val true_value_id : t -> int -> int option

(** [certain_value_id d a] is the id of the value proven above {e every}
    other universe value of [a] — a claim monotone in the fact set, hence
    sound for any partial deduction regardless of how it was produced
    (budget-interrupted backbone, plain unit propagation). At most one
    value can qualify. *)
val certain_value_id : t -> int -> int option

(** [true_values d] is the per-attribute true values determined so far. *)
val true_values : t -> Value.t option array

(** [certain_values d] is {!certain_value_id} per attribute — what a
    degraded engine answer may soundly report. *)
val certain_values : t -> Value.t option array

(** [known_attrs d] is the positions whose true value is determined. *)
val known_attrs : t -> int list
