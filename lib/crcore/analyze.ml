type severity = Error | Warning | Info

type subject =
  | Whole
  | Attr of string
  | Order_edge of Spec.order_edge
  | Sigma of int
  | Gamma of int

type diagnostic = {
  code : string;
  severity : severity;
  subject : subject;
  message : string;
  span : Currency.Parser.span option;
}

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2
let severity_to_string = function Error -> "error" | Warning -> "warning" | Info -> "info"
let pp_severity ppf s = Format.pp_print_string ppf (severity_to_string s)

let errors ds = List.filter (fun d -> d.severity = Error) ds
let warnings ds = List.filter (fun d -> d.severity = Warning) ds
let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let max_severity ds =
  List.fold_left
    (fun acc d ->
      match acc with
      | Some s when severity_rank s <= severity_rank d.severity -> acc
      | _ -> Some d.severity)
    None ds

let pp_subject spec ppf = function
  | Whole -> Format.pp_print_string ppf "specification"
  | Attr a -> Format.fprintf ppf "attribute %S" a
  | Order_edge { Spec.attr; lo; hi } -> Format.fprintf ppf "order edge %s: %d -> %d" attr lo hi
  | Sigma k -> (
      match List.nth_opt spec.Spec.sigma k with
      | Some c -> Format.fprintf ppf "Σ#%d '%a'" k Currency.Constraint_ast.pp c
      | None -> Format.fprintf ppf "Σ#%d" k)
  | Gamma k -> (
      match List.nth_opt spec.Spec.gamma k with
      | Some c -> Format.fprintf ppf "Γ#%d '%a'" k Cfd.Constant_cfd.pp c
      | None -> Format.fprintf ppf "Γ#%d" k)

let pp_diagnostic spec ppf d =
  Format.fprintf ppf "%s %a: %s (%a)" d.code pp_severity d.severity d.message
    (pp_subject spec) d.subject;
  match d.span with
  | Some sp -> Format.fprintf ppf " [%a]" Currency.Parser.pp_span sp
  | None -> ()

(* ---- the analysis ---- *)

(* A value-currency fact over active-domain value ids; the alias keeps
   record literals compatible with {!Encode.fact}, so edge facts feed
   straight into {!Saturate.derives}. *)
type fact = Encode.fact = { attr : int; lo : int; hi : int }

let analyze ?(errors_only = false) ?(sigma_spans = [||]) spec =
  let schema = Spec.schema spec in
  let entity = spec.Spec.entity in
  let arity = Schema.arity schema in
  let tuples = Array.of_list (Entity.tuples entity) in
  (* universes = active domains, ids in first-occurrence order, exactly as
     the encoding numbers them (Encode passes no Γ constants to Coding) *)
  let coding = Coding.build entity [] in
  let adom = Array.init arity (fun a -> Array.of_list (Entity.active_domain entity a)) in
  let in_adom a v = Array.exists (Value.equal v) adom.(a) in
  let diags = ref [] in
  let emit ?span code severity subject message =
    diags := { code; severity; subject; message; span } :: !diags
  in
  let span_of k = if k < Array.length sigma_spans then sigma_spans.(k) else None in

  (* ---- explicit order edges, at the value level ---- *)
  (* (edge, value-level fact option): [None] when the edge's tuples agree
     on the attribute — the encoding drops such an edge (W005) *)
  let edge_facts =
    List.map
      (fun ({ Spec.attr; lo; hi } as e) ->
        let a = Schema.index schema attr in
        let v1 = Tuple.get tuples.(lo) a and v2 = Tuple.get tuples.(hi) a in
        if Value.equal v1 v2 then (e, None)
        else (e, Some { attr = a; lo = Coding.vid coding a v1; hi = Coding.vid coding a v2 }))
      spec.Spec.orders
  in
  (* digraphs are sized by the coding universe, not the raw active domain:
     the universe also holds the reserved null (see {!Coding.build}), whose
     id a Γ null constant can reach *)
  let univ_len a = Array.length (Coding.universe coding a) in
  let explicit = Array.init arity (fun a -> Porder.Digraph.create (univ_len a)) in
  List.iter
    (fun (_, f) ->
      match f with
      | Some f -> Porder.Digraph.add_edge explicit.(f.attr) f.lo f.hi
      | None -> ())
    edge_facts;

  (* E001: a cyclic explicit order admits no completion — every completion
     totally orders the attribute's values (Section II-A). *)
  let e001 = Array.init arity (fun a -> Porder.Digraph.has_cycle explicit.(a)) in
  Array.iteri
    (fun a cyclic ->
      if cyclic then
        emit "E001" Error (Attr (Schema.name schema a))
          (Printf.sprintf "explicit currency order on %S is cyclic at the value level"
             (Schema.name schema a)))
    e001;

  (* W004/W005/I003: duplicate, reflexive-after-closure and transitively
     implied order edges *)
  let seen_edges = Hashtbl.create 16 in
  let dup_edges = Hashtbl.create 16 in
  let i003_edges = Hashtbl.create 16 in
  if not errors_only then begin
    List.iteri
      (fun i ((e, f) : Spec.order_edge * fact option) ->
        if Hashtbl.mem seen_edges e then begin
          Hashtbl.replace dup_edges i ();
          emit "W004" Warning (Order_edge e)
            (Printf.sprintf "order edge %s: %d -> %d is listed more than once" e.Spec.attr
               e.Spec.lo e.Spec.hi)
        end
        else Hashtbl.add seen_edges e ();
        match f with
        | None ->
            emit "W005" Warning (Order_edge e)
              (Printf.sprintf
                 "tuples %d and %d hold equal values on %S; the edge is reflexive at the value \
                  level and the encoding drops it"
                 e.Spec.lo e.Spec.hi e.Spec.attr)
        | Some _ -> ())
      edge_facts;
    let edge_facts_a = Array.of_list edge_facts in
    Array.iteri
      (fun i (e, f) ->
        match f with
        | Some f when (not e001.(f.attr)) && not (Hashtbl.mem dup_edges i) ->
            let g = Porder.Digraph.create (univ_len f.attr) in
            Array.iteri
              (fun j (_, f') ->
                match f' with
                | Some f' when f'.attr = f.attr && j <> i && (f' <> f || j < i) ->
                    Porder.Digraph.add_edge g f'.lo f'.hi
                | _ -> ())
              edge_facts_a;
            if Porder.Digraph.has_edge (Porder.Digraph.transitive_closure g) f.lo f.hi then begin
              Hashtbl.replace i003_edges i ();
              emit "I003" Info (Order_edge e)
                (Printf.sprintf
                   "order edge %s: %d -> %d is implied by the transitive closure of the other \
                    explicit edges"
                   e.Spec.attr e.Spec.lo e.Spec.hi)
            end
        | _ -> ())
      edge_facts_a
  end;

  let group_by key n item =
    let groups = Hashtbl.create 16 in
    for k = 0 to n - 1 do
      let key = key (item k) in
      match Hashtbl.find_opt groups key with
      | Some r -> r := k :: !r
      | None -> Hashtbl.add groups key (ref [ k ])
    done;
    Hashtbl.iter (fun _ r -> r := List.rev !r) groups;
    fun k -> !(Hashtbl.find groups (key (item k)))
  in

  (* ---- Γ: relevance, forcing, conflicts, subsumption ---- *)
  let gamma_a = Array.of_list spec.Spec.gamma in
  let lhs_relevant (c : Cfd.Constant_cfd.t) =
    List.for_all (fun (name, v) -> in_adom (Schema.index schema name) v) c.Cfd.Constant_cfd.lhs
  in
  (* forced: every completion's current tuple matches the LHS pattern,
     because each pattern attribute takes a single value in the entity *)
  let lhs_forced (c : Cfd.Constant_cfd.t) =
    List.for_all
      (fun (name, v) ->
        let a = Schema.index schema name in
        Array.length adom.(a) = 1 && Value.equal adom.(a).(0) v)
      c.Cfd.Constant_cfd.lhs
  in
  let rhs_in_adom (c : Cfd.Constant_cfd.t) =
    let bname, bval = c.Cfd.Constant_cfd.rhs in
    in_adom (Schema.index schema bname) bval
  in
  (* the flags are reused by every pairwise check below: compute them once
     per CFD, not once per CFD pair *)
  let g_relevant = Array.map lhs_relevant gamma_a in
  let g_forced = Array.map lhs_forced gamma_a in
  let gamma_error = Array.make (Array.length gamma_a) false in
  Array.iteri
    (fun k (c : Cfd.Constant_cfd.t) ->
      if not g_relevant.(k) then begin
        if not errors_only then
          emit "W001" Warning (Gamma k)
            "dead CFD: an LHS pattern constant never occurs in the entity, so the CFD can \
             never fire"
      end
      else if not (rhs_in_adom c) then
        if g_forced.(k) then begin
          gamma_error.(k) <- true;
          emit "E004" Error (Gamma k)
            "the LHS pattern is forced (singleton active domains) but the RHS constant never \
             occurs in the entity: no completion's current tuple can satisfy this CFD"
        end
        else if not errors_only then
          emit "W002" Warning (Gamma k)
            "veto CFD: the RHS constant never occurs in the entity, so the CFD is violated \
             whenever its LHS pattern is most current")
    gamma_a;
  (* E003 / W006: contradictory RHS over unifiable LHS patterns. Only CFDs
     writing the same RHS attribute can conflict: pair up per attribute. *)
  let lhs_unifiable (c1 : Cfd.Constant_cfd.t) (c2 : Cfd.Constant_cfd.t) =
    List.for_all
      (fun (a1, v1) ->
        match List.assoc_opt a1 c2.Cfd.Constant_cfd.lhs with
        | Some v2 -> Value.equal v1 v2
        | None -> true)
      c1.Cfd.Constant_cfd.lhs
  in
  (* only relevant CFDs can conflict (forced implies relevant), so pair up
     per RHS attribute over the relevant ones alone — on a single entity
     most of a large Γ is dead and never enters the quadratic part *)
  let rhs_groups = Hashtbl.create 16 in
  Array.iteri
    (fun k (c : Cfd.Constant_cfd.t) ->
      if g_relevant.(k) then begin
        let b = fst c.Cfd.Constant_cfd.rhs in
        match Hashtbl.find_opt rhs_groups b with
        | Some r -> r := k :: !r
        | None -> Hashtbl.add rhs_groups b (ref [ k ])
      end)
    gamma_a;
  Hashtbl.iter
    (fun _ group ->
      let group = List.rev !group in
      List.iter
        (fun k2 ->
          let c2 = gamma_a.(k2) in
          List.iter
            (fun k1 ->
              if k1 < k2 then begin
                let c1 = gamma_a.(k1) in
                let b1, v1 = c1.Cfd.Constant_cfd.rhs and _, v2 = c2.Cfd.Constant_cfd.rhs in
                if not (Value.equal v1 v2) then
                  if g_forced.(k1) && g_forced.(k2) then begin
                    gamma_error.(k2) <- true;
                    emit "E003" Error (Gamma k2)
                      (Printf.sprintf
                         "conflicts with Γ#%d: both LHS patterns are forced (singleton active \
                          domains) yet they demand different current values for %S"
                         k1 b1)
                  end
                  else if (not errors_only) && lhs_unifiable c1 c2 then
                    emit "W006" Warning (Gamma k2)
                      (Printf.sprintf
                         "may conflict with Γ#%d: unifiable LHS patterns over the entity's \
                          values but contradictory constants for %S"
                         k1 b1)
              end)
            group)
        group)
    rhs_groups;
  (* I002: subsumed CFDs (duplicates included); only CFDs with the exact
     same RHS pattern qualify, so pair up within RHS-pattern groups. *)
  if not errors_only then begin
    let gamma_rhs_pat_group =
      group_by
        (fun (c : Cfd.Constant_cfd.t) ->
          (fst c.Cfd.Constant_cfd.rhs, Value.to_string (snd c.Cfd.Constant_cfd.rhs)))
        (Array.length gamma_a)
        (Array.get gamma_a)
    in
    Array.iteri
      (fun k2 (c2 : Cfd.Constant_cfd.t) ->
        let subsumed_by k1 =
          k1 <> k2
          &&
          let c1 = gamma_a.(k1) in
          List.for_all
            (fun (a, v) ->
              match List.assoc_opt a c2.Cfd.Constant_cfd.lhs with
              | Some v' -> Value.equal v v'
              | None -> false)
            c1.Cfd.Constant_cfd.lhs
          && (List.length c1.Cfd.Constant_cfd.lhs < List.length c2.Cfd.Constant_cfd.lhs
             || k1 < k2)
        in
        match List.find_opt subsumed_by (gamma_rhs_pat_group k2) with
        | Some k1 ->
            emit "I002" Info (Gamma k2)
              (Printf.sprintf "subsumed by Γ#%d: same RHS pattern from a sub-pattern LHS" k1)
        | None -> ())
      gamma_a
  end;

  (* fast-fail for the engine pre-phase: once a cheap check (a cyclic
     explicit order, a forced CFD conflict) has proven the specification
     unsatisfiable, skip the expensive Σ instantiation and ground-closure
     work — [has_errors] is already decided *)
  if not (errors_only && !diags <> []) then begin
    (* ---- Σ/Γ ground instances, shared with the encoding and the
       saturation engine: {!Encode.parts} instantiates exactly what
       {!Encode.encode} would (same projection-representative sweep, same
       null handling), so every diagnostic below reasons about the very
       instances Φ(Se) is built from. *)
    let parts = Encode.parts spec in

    (* W003: a constraint no tuple pair can instantiate never influences
       this entity — its premise is unsatisfiable over the entity's values,
       or its conclusion always relates equal values. The flags are
       pre-deduplication, so a constraint shadowed by an identical
       instance of another still counts as firing. *)
    if not errors_only then
      Array.iteri
        (fun k fires ->
          if not fires then
            emit "W003" Warning ?span:(span_of k) (Sigma k)
              "vacuous on this entity: no ordered tuple pair yields an instance")
        parts.Encode.p_sigma_fired;

    (* I001: subsumed Σ-constraints (duplicates included). Only constraints
       with the same conclusion can subsume each other, so pair up within
       conclusion groups rather than over the full quadratic Σ × Σ. *)
    let sigma_a = Array.of_list spec.Spec.sigma in
    let pred_subset p1 p2 = List.for_all (fun x -> List.mem x p2) p1 in
    if not errors_only then begin
      let sigma_group =
        group_by
          (fun (c : Currency.Constraint_ast.t) -> c.Currency.Constraint_ast.concl)
          (Array.length sigma_a)
          (Array.get sigma_a)
      in
      (* canonical premise (sorted, duplicate conjuncts dropped): set-equal
         premises are exact-equal canonical lists, so duplicate constraints
         fall out of one hash lookup, and a proper sub-conjunction is always
         strictly shorter — the scan skips same-or-longer premises *)
      let sigma_canon =
        Array.map
          (fun (c : Currency.Constraint_ast.t) ->
            List.sort_uniq compare c.Currency.Constraint_ast.premise)
          sigma_a
      in
      let first_canon = Hashtbl.create (Array.length sigma_a) in
      Array.iteri
        (fun k (c : Currency.Constraint_ast.t) ->
          let key = (sigma_canon.(k), c.Currency.Constraint_ast.concl) in
          if not (Hashtbl.mem first_canon key) then Hashtbl.add first_canon key k)
        sigma_a;
      let sigma_len = Array.map List.length sigma_canon in
      let min_group_len =
        (* shortest canonical premise per conclusion group: a constraint can
           only be properly subsumed when its group holds a shorter one *)
        let m = Hashtbl.create 16 in
        Array.iteri
          (fun k (c : Currency.Constraint_ast.t) ->
            let key = c.Currency.Constraint_ast.concl in
            match Hashtbl.find_opt m key with
            | Some l when l <= sigma_len.(k) -> ()
            | _ -> Hashtbl.replace m key sigma_len.(k))
          sigma_a;
        fun (c : Currency.Constraint_ast.t) -> Hashtbl.find m c.Currency.Constraint_ast.concl
      in
      Array.iteri
        (fun k2 (c2 : Currency.Constraint_ast.t) ->
          let p2 = sigma_canon.(k2) in
          let n2 = sigma_len.(k2) in
          let dup =
            match Hashtbl.find_opt first_canon (p2, c2.Currency.Constraint_ast.concl) with
            | Some k1 when k1 < k2 -> Some k1
            | _ -> None
          in
          let subsumed_by k1 = k1 <> k2 && sigma_len.(k1) < n2 && pred_subset sigma_canon.(k1) p2 in
          match
            (match dup with
            | Some _ -> dup
            | None ->
                if min_group_len c2 < n2 then List.find_opt subsumed_by (sigma_group k2) else None)
          with
          | Some k1 ->
              emit "I001" Info ?span:(span_of k2) (Sigma k2)
                (Printf.sprintf "subsumed by Σ#%d: same conclusion from a sub-conjunction premise" k1)
          | None -> ())
        sigma_a
    end;

    (* ---- E002 / E005: the saturation fixpoint ----

       {!Saturate} closes the units of Ω(Se) (explicit edges,
       null-is-lowest, premise-free instances) under modus ponens on the
       Σ/Γ implication instances and transitivity. A derived cycle
       violates asymmetry+transitivity; a fired veto (a CFD whose RHS
       constant the entity never takes, with its "LHS is most current"
       premise derived) violates the veto clause — either way Φ(Se) is
       unsatisfiable. This is the same fixpoint the engine's saturate
       pre-phase computes, so lint and engine agree by construction. *)
    let cl =
      Saturate.of_parts ~mode:Encode.Paper ~plan:(Saturate.plan_for spec.Spec.sigma)
        parts
    in
    Array.iteri
      (fun a cyclic ->
        if cyclic && not e001.(a) then
          emit "E002" Error (Attr (Schema.name schema a))
            (Printf.sprintf
               "the ground closure of Σ/Γ instances and explicit edges derives a cyclic currency \
                order on %S"
               (Schema.name schema a)))
      (Saturate.cyclic_attrs cl);
    List.iter
      (fun (src, _steps) ->
        match src with
        | Encode.From_cfd k when not gamma_error.(k) ->
            gamma_error.(k) <- true;
            emit "E002" Error (Gamma k)
              "the ground closure forces this CFD's LHS pattern to be most current, but its RHS \
               constant never occurs in the entity"
        | _ -> ())
      (Saturate.fired_vetoes cl);

    (* E005: the refutation rendered as a checkable derivation — the
       static unsatisfiability proof behind the E002s above, printed as a
       certificate ({!Saturate.verify}-checkable) for the whole spec *)
    if not errors_only then begin
      (match Saturate.refutation_certificate cl with
      | Some cert ->
          emit "E005" Error Whole
            (Format.asprintf
               "the specification is unsatisfiable by static derivation:@;<1 2>@[<v>%a@]"
               (Saturate.pp_cert spec) cert)
      | None -> ());

      (* a refuted spec derives everything, so the redundancy diagnostics
         below would be pure noise — only run them on consistent closures *)
      if Saturate.refutation cl = None then begin
        (* W007: a Σ-constraint whose every ground instance is derivable
           from the closure of the *other* constraints (its premises
           assumed): dropping it changes no certain fact. Bounded: the
           hypothetical closures are polynomial but not free. *)
        let insts_of = Hashtbl.create 16 in
        let add_inst k inst =
          match Hashtbl.find_opt insts_of k with
          | Some r -> r := inst :: !r
          | None -> Hashtbl.add insts_of k (ref [ inst ])
        in
        List.iter
          (fun ((f : fact), src) ->
            match src with Encode.From_constraint k -> add_inst k ([], f) | _ -> ())
          parts.Encode.p_units;
        List.iter
          (fun (ic : Encode.iconstraint) ->
            match ic.Encode.source with
            | Encode.From_constraint k -> add_inst k (ic.Encode.premise, ic.Encode.concl)
            | _ -> ())
          parts.Encode.p_implications;
        let budget = ref 512 in
        List.iteri
          (fun k _c ->
            match Hashtbl.find_opt insts_of k with
            | Some insts when !budget >= List.length !insts ->
                budget := !budget - List.length !insts;
                let covered =
                  List.for_all
                    (fun (premise, concl) ->
                      Saturate.derives ~mode:Encode.Paper
                        ~drop_source:(fun s -> s = Encode.From_constraint k)
                        ~assume:premise parts concl)
                    !insts
                in
                if covered then
                  emit "W007" Warning ?span:(span_of k) (Sigma k)
                    "subsumed on this entity: every ground instance is derivable from the \
                     closure of the other constraints and the explicit orders"
            | _ -> ())
          spec.Spec.sigma;

        (* I004: an explicit order edge the static closure derives without
           it — redundant input, beyond what I003's explicit-edge
           transitivity already reports *)
        let budget = ref 128 in
        List.iteri
          (fun i ((e : Spec.order_edge), f) ->
            match f with
            | Some f
              when !budget > 0
                   && (not e001.(f.attr))
                   && (not (Hashtbl.mem dup_edges i))
                   && not (Hashtbl.mem i003_edges i) ->
                decr budget;
                if
                  Saturate.derives ~mode:Encode.Paper
                    ~drop_unit:(fun f' src -> src = Encode.From_order && f' = f)
                    parts f
                then
                  emit "I004" Info (Order_edge e)
                    (Printf.sprintf
                       "order edge %s: %d -> %d is derivable from Σ/Γ and the remaining \
                        units: the static closure is unchanged without it"
                       e.Spec.attr e.Spec.lo e.Spec.hi)
            | _ -> ())
          edge_facts
      end
    end
  end;

  let ds = List.rev !diags in
  (* the engine's lint pre-phase only asks "any error?", but callers of
     [errors_only] still read the list — deduplicate repeated findings
     (e.g. one CFD conflicting with several forced peers) so each
     (code, subject) appears once *)
  let ds =
    if errors_only then begin
      let seen = Hashtbl.create 16 in
      List.filter
        (fun d ->
          let key = (d.code, d.subject) in
          if Hashtbl.mem seen key then false
          else begin
            Hashtbl.add seen key ();
            true
          end)
        ds
    end
    else ds
  in
  List.stable_sort
    (fun d1 d2 ->
      match compare (severity_rank d1.severity) (severity_rank d2.severity) with
      | 0 -> compare d1.code d2.code
      | c -> c)
    ds
