(** Entity specifications [Se = (It, Σ, Γ)] (Section II-C): a temporal
    instance (entity tuples plus per-attribute partial currency orders),
    currency constraints, and constant CFDs. *)

(** A tuple-level currency-order edge: tuple [lo] is less current than
    tuple [hi] in attribute [attr] (attribute by name). *)
type order_edge = { attr : string; lo : int; hi : int }

type t = {
  entity : Entity.t;
  orders : order_edge list;              (** the partial orders of [It] *)
  sigma : Currency.Constraint_ast.t list;  (** currency constraints Σ *)
  gamma : Cfd.Constant_cfd.t list;         (** constant CFDs Γ *)
}

(** Why a specification cannot be built: a dangling attribute name, a
    tuple index outside the entity, or a degenerate (reflexive) order
    edge. Constraint/CFD variants carry the index of the offending element
    in the input list. *)
type error =
  | Unknown_order_attribute of string
  | Order_index_out_of_range of { attr : string; index : int; size : int }
  | Reflexive_order_edge of { attr : string; index : int }
  | Unknown_constraint_attribute of { constraint_index : int; attr : string }
  | Unknown_cfd_attribute of { cfd_index : int; attr : string }

val pp_error : Format.formatter -> error -> unit

(** [make_res entity ~orders ~sigma ~gamma] validates attribute names and
    tuple indices and builds the specification; the non-raising entry
    point for callers assembling specifications from untrusted input
    (parsers, network, CSV headers). *)
val make_res :
  Entity.t ->
  orders:order_edge list ->
  sigma:Currency.Constraint_ast.t list ->
  gamma:Cfd.Constant_cfd.t list ->
  (t, error) result

(** [make entity ~orders ~sigma ~gamma] is {!make_res}, raising
    [Invalid_argument] (rendered with {!pp_error}) on any dangling
    reference — the historical behaviour, kept so existing callers
    compile. *)
val make :
  Entity.t ->
  orders:order_edge list ->
  sigma:Currency.Constraint_ast.t list ->
  gamma:Cfd.Constant_cfd.t list ->
  t

val schema : t -> Schema.t
val size : t -> int

(** {2 Σ/Γ interning}

    {!make_res} (and hence {!make}) interns the constraint lists in a
    global pool: structurally equal Σ (resp. Γ) lists are replaced by one
    canonical physical list and assigned a dense integer id. This is what
    lets a batch of distinct same-shape specs share {!Encode}'s compiled
    constraint forms, {!Saturate}'s fixpoint plans (both keyed on physical
    identity) and the engine's compiled templates (keyed on the ids). *)

(** [intern_sigma l] is the canonical list structurally equal to [l] and
    its intern id. Interns [l] if it is new. *)
val intern_sigma :
  Currency.Constraint_ast.t list -> Currency.Constraint_ast.t list * int

(** [intern_gamma l] — as {!intern_sigma}, for Γ. *)
val intern_gamma : Cfd.Constant_cfd.t list -> Cfd.Constant_cfd.t list * int

(** [sigma_id s] is the intern id of [s.sigma] (interning on demand for
    specs built as record literals, which bypass {!make_res}). Specs
    share an id iff their Σ lists are structurally equal. *)
val sigma_id : t -> int

(** [gamma_id s] — as {!sigma_id}, for Γ. *)
val gamma_id : t -> int

(** [add_order_edges s edges] extends the partial orders ([Se ⊕ Ot] with a
    pure order extension). *)
val add_order_edges : t -> order_edge list -> t

(** [extend_with_tuple s tup ~current_attrs] implements the paper's user
    input step (Section III, Remark 1): appends the fresh tuple [tup] and,
    for every attribute named in [current_attrs], adds order edges making
    [tup] the most current. *)
val extend_with_tuple : t -> Tuple.t -> current_attrs:string list -> t

val pp : Format.formatter -> t -> unit
