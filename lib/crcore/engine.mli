(** Batch conflict resolution: the Fig. 4 loop of the paper run at scale.

    {!Framework} resolves one entity instance per call and rebuilds its SAT
    encoding and a fresh solver for every phase; this module amortises that
    work when resolving whole relations (millions of entities) or the same
    entity across interaction rounds:

    - {b one incremental solver session per entity}: the validity check
      ([IsValid]), the clique-consistency check inside [Suggest], and any
      SAT-based deduction all run on a single {!Sat.Solver} session holding
      Φ(Se), solving under assumption literals instead of re-instantiating
      the CNF per phase — learnt clauses carry across phases and rounds;
    - {b encoding reuse across [Se ⊕ Ot] steps}: user-input extensions are
      re-encoded with {!Encode.extend}, which keeps the structural-axiom
      clauses (the cubic part of [ConvertToCNF]) and feeds only the delta
      clauses to the live solver whenever the value universes are
      unchanged;
    - {b an encoding cache keyed on the specification}: resolving the same
      specification again (replays, idempotent re-runs, A/B checks) skips
      [Instantiation]/[ConvertToCNF] entirely;
    - {b structured observability}: per-entity and aggregate phase timings,
      solver conflict/decision/propagation counters, cache hit rates and
      incremental-path counters in {!entity_stats} / {!stats}.

    Results are identical to running {!Framework.resolve} per entity — the
    equivalence is property-tested — only the work is shared. *)

(** What the user (or an oracle) answers to a suggestion; identical shape
    to {!Framework.user}. An empty answer stops the entity's loop. *)
type user = Rules.suggestion -> schema:Schema.t -> (string * Value.t) list

type config = {
  mode : Encode.mode;
  deduce : ?solver:Sat.Solver.t -> Encode.t -> Deduce.t;
      (** deduction engine; the session solver (already holding Φ(Se),
          with the validity check's model still saved) is passed in
          incremental mode so SAT-based deducers probe it under
          assumptions instead of reloading the CNF *)
  repair : Rules.repair;
  max_rounds : int;
  incremental : bool;
      (** reuse one solver session per entity across phases and rounds,
          with {!Encode.extend} deltas for user-input extensions *)
  cache : bool;  (** cache encodings keyed on the specification *)
  lint : bool;
      (** run the {!Analyze} pre-phase: specifications with an E-level
          diagnostic (provably unsatisfiable) skip encoding and the
          solver entirely and report the invalid outcome directly *)
  jobs : int;
      (** domains {!run_batch} resolves entities on (clamped to at least
          1). Results and aggregate counters are identical to [jobs = 1] —
          property-tested — and [on_result] still streams in input order;
          only the schedule changes. Item [user] callbacks must be safe to
          call from another domain. Sessions created directly are
          unaffected. *)
  clamp_jobs : bool;
      (** cap the effective batch width at
          [Parallel.Pool.recommended_jobs ()] (the machine's core count):
          over-subscribing domains is a pure slowdown. [stats.jobs] is
          the effective width, [stats.jobs_requested] the request. Off,
          the request is honoured literally (scheduling tests,
          deliberate over-subscription). *)
}

(** Incremental session + cache + lint pre-phase on; [mode = Paper],
    [deduce = Deduce.backbone] (complete deduction — cheap on the reused
    session, and fewer interaction rounds than unit propagation),
    [repair = Exact_maxsat], [max_rounds = 5], [jobs = 1],
    [clamp_jobs = true]. *)
val default_config : config

(** The literal per-entity behaviour of {!Framework.resolve} before this
    module existed: fresh encoding and fresh solvers per phase, no cache.
    The baseline the batch benchmarks compare against. *)
val naive_config : config

(** Cumulative wall-clock time per phase, milliseconds (wall, not process
    CPU: under a parallel batch, process CPU time charges one domain's
    work with every domain's cycles). Encoding
    ([Instantiation] + [ConvertToCNF], including {!Encode.extend} deltas)
    is split out of the paper's validity phase so cache and delta effects
    are visible; add [encode_ms] to [validity_ms] to recover the paper's
    [IsValid] accounting. *)
type phase_times = {
  mutable lint_ms : float;
  mutable encode_ms : float;
  mutable validity_ms : float;
  mutable deduce_ms : float;
  mutable suggest_ms : float;
}

type entity_stats = {
  times : phase_times;
  solver : Sat.Solver.stats;  (** summed over every solver the entity used *)
  solvers_built : int;
      (** CNF loads, including any private solver a SAT-based deducer had
          to build: 1 = a single session survived and served every phase *)
  solvers_reused : int;
      (** solver phases (validity checks, deductions, suggestions) served
          by the live session instead of a fresh CNF load *)
  deduce_sat_calls : int;  (** solver calls issued by the deduction phase *)
  deduce_probes : int;  (** single-literal refutation probes *)
  deduce_model_prunes : int;
      (** candidates {!Deduce.backbone} eliminated by model intersection *)
  deduce_seeded : int;  (** facts adopted from unit propagation, no probe *)
  cache_hits : int;
  cache_misses : int;
  delta_extensions : int;  (** [Se ⊕ Ot] rounds served by {!Encode.extend} *)
  rebuilds : int;  (** rounds the solver session could not survive:
                       [rebuilds_renumbered + rebuilds_impure] *)
  rebuilds_renumbered : int;
      (** {!Encode.extend} reused the Σ instances but a value universe
          grew, shifting variable numbers: the solver reloaded *)
  rebuilds_impure : int;
      (** the extension was not pure (Σ/Γ changed, tuples not appended):
          full re-encode from scratch *)
  lint_rejected : bool;
      (** the lint pre-phase proved the spec unsatisfiable: no encoding,
          no solver was built *)
}

(** Per-entity result; same content as {!Framework.outcome} minus timings
    (those live in {!entity_stats}). *)
type result = {
  resolved : Value.t option array;
  valid : bool;
  rounds : int;
  per_round_known : int list;
}

(** A shared encoding cache, safe to reuse across sessions and batches —
    including parallel ones: the table is split into hash-addressed,
    mutex-guarded shards, and encoding on a miss runs outside any lock. *)
type cache

val create_cache : unit -> cache

(** {1 Sessions — one entity, explicit lifecycle} *)

type session

(** [create_session ?config ?cache spec] encodes [spec] and (in
    incremental mode) loads the solver session. [cache] defaults to a
    private one. *)
val create_session : ?config:config -> ?cache:cache -> Spec.t -> session

(** [resolve_session s ~user] runs the full interactive loop of Fig. 4 on
    the session. *)
val resolve_session : session -> user:user -> result * entity_stats

(** [resolve ?config ?cache ~user spec] is a one-shot
    [create_session] + [resolve_session]. *)
val resolve : ?config:config -> ?cache:cache -> user:user -> Spec.t -> result * entity_stats

(** {1 Batches} *)

type item = { label : string; spec : Spec.t; user : user }

type item_result = { label : string; result : result; stats : entity_stats }

(** Aggregate batch statistics. Phase times are wall milliseconds summed
    over entities — under a parallel batch they exceed [wall_ms] (the
    batch's elapsed time, orchestration included), because [jobs] domains
    accumulate them concurrently; [wall_ms] is the honest end-to-end
    figure, the phase sums show where the work went. *)
type stats = {
  entities : int;
  valid_entities : int;
  total_rounds : int;
  attrs_total : int;
  attrs_resolved : int;
  times : phase_times;
  solver : Sat.Solver.stats;
  solvers_built : int;
  solvers_reused : int;  (** phases served by live sessions, batch-wide *)
  deduce_sat_calls : int;
  deduce_probes : int;
  deduce_model_prunes : int;
  deduce_seeded : int;
  cache_hits : int;
  cache_misses : int;
  hit_ratio : float;  (** hits / (hits + misses), 0 with no lookups *)
  delta_extensions : int;
  rebuilds : int;  (** [rebuilds_renumbered + rebuilds_impure] *)
  rebuilds_renumbered : int;
  rebuilds_impure : int;
  lint_rejected : int;  (** entities rejected by the lint pre-phase *)
  jobs : int;  (** domains the batch ran on (after any clamping) *)
  jobs_requested : int;  (** [config.jobs] as given *)
  wall_ms : float;
}

(** [cache_hit_rate stats] is [stats.hit_ratio]. *)
val cache_hit_rate : stats -> float

(** [throughput stats] is resolved entities per second of wall time. *)
val throughput : stats -> float

val pp_stats : Format.formatter -> stats -> unit

(** [run_batch ?config ?cache ?on_result items] resolves every item with a
    shared encoding cache and returns all results plus the aggregate, on
    [config.jobs] domains. Results are in input order and identical to a
    sequential run whatever [jobs] is; [on_result] receives each finished
    {!item_result} in input order too (under parallelism, as the finished
    prefix grows). Structurally equal Σ/Γ lists are interned across items
    first, so compiled constraint forms and cache-key comparisons are
    shared batch-wide. *)
val run_batch :
  ?config:config ->
  ?cache:cache ->
  ?on_result:(item_result -> unit) ->
  item list ->
  item_result list * stats
