(** Batch conflict resolution: the Fig. 4 loop of the paper run at scale.

    {!Framework} resolves one entity instance per call and rebuilds its SAT
    encoding and a fresh solver for every phase; this module amortises that
    work when resolving whole relations (millions of entities) or the same
    entity across interaction rounds:

    - {b one incremental solver session per entity}: the validity check
      ([IsValid]), the clique-consistency check inside [Suggest], and any
      SAT-based deduction all run on a single {!Sat.Solver} session holding
      Φ(Se), solving under assumption literals instead of re-instantiating
      the CNF per phase — learnt clauses carry across phases and rounds;
    - {b encoding reuse across [Se ⊕ Ot] steps}: user-input extensions are
      re-encoded with {!Encode.extend}, which keeps the structural-axiom
      clauses (the cubic part of [ConvertToCNF]) and feeds only the delta
      clauses to the live solver whenever the value universes are
      unchanged;
    - {b an encoding cache keyed on the specification}: resolving the same
      specification again (replays, idempotent re-runs, A/B checks) skips
      [Instantiation]/[ConvertToCNF] entirely;
    - {b structured observability}: per-entity and aggregate phase timings,
      solver conflict/decision/propagation counters, cache hit rates and
      incremental-path counters in {!entity_stats} / {!stats}.

    Results are identical to running {!Framework.resolve} per entity — the
    equivalence is property-tested — only the work is shared. *)

(** What the user (or an oracle) answers to a suggestion; identical shape
    to {!Framework.user}. An empty answer stops the entity's loop. *)
type user = Rules.suggestion -> schema:Schema.t -> (string * Value.t) list

(** {1 Budgets and graceful degradation}

    Every entity can carry a resource budget; when it runs out, the engine
    does not fail or block — it walks down a degradation ladder and still
    returns an answer, labelled with the level that produced it:

    {ol
    {- {!Exact}: the full pipeline ran to completion (the default when no
       budget interferes).}
    {- {!PartialDeduce}: validity was established, but completion was cut
       short — the answer contains only facts proven before the
       interruption (unit-propagation seeds and confirmed probes, a sound
       subset of the full deduction — property-tested).}
    {- {!PickFallback}: not even validity could be established in budget;
       the answer is the paper's [Pick] baseline (deterministic currency
       order heuristic), honest about its confidence level.}} *)

(** The rung of the ladder that produced a {!result}; ordered
    [Exact < PartialDeduce < PickFallback]. *)
type degrade_level = Exact | PartialDeduce | PickFallback

val level_rank : degrade_level -> int

val level_to_string : degrade_level -> string
(** ["exact"], ["partial"], ["pick"] — the CLI's [--max-degrade] words. *)

(** Engine phases, used to attribute budget exhaustion and captured
    exceptions. *)
type phase = Lint_p | Encode_p | Saturate_p | Validity_p | Deduce_p | Suggest_p

val phase_to_string : phase -> string

(** Which budget ran out. [Conflicts] is the deterministic one (CDCL
    conflict count, schedule-independent); [Wall] is the soft [budget_ms]
    deadline, checked only at phase and round boundaries. *)
type budget_kind = Conflicts | Wall

type degrade_reason = { cause : budget_kind; phase : phase }

val reason_to_string : degrade_reason -> string
(** e.g. ["conflicts@validity"]. *)

type config = {
  mode : Encode.mode;
  deduce :
    ?solver:Sat.Solver.t -> ?budget:int -> ?static:int list -> Encode.t -> Deduce.t;
      (** deduction engine; the session solver (already holding Φ(Se),
          with the validity check's model still saved) is passed in
          incremental mode so SAT-based deducers probe it under
          assumptions instead of reloading the CNF. [budget] is the
          entity's remaining conflict allowance, honoured even by a
          deducer-private solver. [static] is the saturate pre-phase's
          closure, passed only when {!Saturate.complete} certifies it as
          the whole positive backbone — the deducer may then adopt the
          facts without probing. *)
  repair : Rules.repair;
  max_rounds : int;
  incremental : bool;
      (** reuse one solver session per entity across phases and rounds,
          with {!Encode.extend} deltas for user-input extensions *)
  cache : bool;  (** cache encodings keyed on the specification *)
  lint : bool;
      (** run the {!Analyze} pre-phase: specifications with an E-level
          diagnostic (provably unsatisfiable) skip encoding and the
          solver entirely and report the invalid outcome directly *)
  saturate : bool;
      (** run the {!Saturate} pre-phase after each (re-)encoding: the
          polynomial static closure of certain currency facts is injected
          into the solver session as unit clauses (a semantic no-op —
          every derived fact is level-0 implied by Φ(Se) — but it pins
          them explicitly), and when the closure is provably complete
          ({!Saturate.complete}) it is handed to the [deduce] hook so
          {!Deduce.backbone} adopts the facts without probes
          ([probes_avoided]). Results are bit-identical with the phase on
          or off — property-tested. *)
  jobs : int;
      (** domains {!run_batch} resolves entities on (clamped to at least
          1). Results and aggregate counters are identical to [jobs = 1] —
          property-tested — and [on_result] still streams in input order;
          only the schedule changes. Item [user] callbacks must be safe to
          call from another domain. Sessions created directly are
          unaffected. *)
  clamp_jobs : bool;
      (** cap the effective batch width at
          [Parallel.Pool.recommended_jobs ()] (the machine's core count):
          over-subscribing domains is a pure slowdown. [stats.jobs] is
          the effective width, [stats.jobs_requested] the request. Off,
          the request is honoured literally (scheduling tests,
          deliberate over-subscription). *)
  budget_conflicts : int option;
      (** per-entity CDCL conflict budget, counted across every solver the
          entity uses (the unit of account survives solver rebuilds).
          Deterministic: the same spec and budget degrade identically at
          any [jobs]. [None] (default) = unlimited. *)
  budget_ms : float option;
      (** per-entity soft wall-clock budget in milliseconds, measured from
          session creation and checked at phase and round boundaries only
          — a phase in flight is never interrupted, and the outcome is
          schedule-dependent by nature. Prefer [budget_conflicts] when
          reproducibility matters. [None] (default) = unlimited. *)
  max_degrade : degrade_level;
      (** lowest ladder rung the engine may land on. [PickFallback]
          (default) allows the full ladder; [PartialDeduce] forbids the
          Pick guess; [Exact] forbids degradation entirely — an exhausted
          budget then yields a conservative unresolved answer whose
          [degrade_reason] records why. *)
  pick_strategy : Pick.strategy;
      (** the baseline the {!PickFallback} rung runs — the paper's
          [Favoured] by default; [Last_update_wins]/[Accept_local] give
          the BDR-style replication policies instead. *)
  fail_fast : bool;
      (** [run_batch] only: [true] restores the pre-isolation contract —
          the first entity exception propagates out of the batch instead
          of being captured as an [Error] outcome. Default [false]. *)
  simplify : bool;
      (** solver-side clause-database management. [true] (default) runs
          {!Sat.Solver.simplify} at every simplify point of the session
          timeline — right after a solver loads its encoding and the
          saturation units, and again after each delta extension lands —
          and leaves periodic LBD-based learnt-database reduction on.
          Every Φ(Se) variable is frozen first, so elimination can never
          touch anything backbone probes, MaxSAT selectors or later
          extensions reference, and resolutions are bit-identical either
          way. [false] reproduces the pre-simplification solver behaviour
          (no inprocessing, unbounded learnt database) — the baseline the
          satcore bench compares against. *)
}

(** Incremental session + cache + lint pre-phase on; [mode = Paper],
    [deduce = Deduce.backbone] (complete deduction — cheap on the reused
    session, and fewer interaction rounds than unit propagation),
    [repair = Exact_maxsat], [max_rounds = 5], [jobs = 1],
    [clamp_jobs = true]. Budgets off ([budget_conflicts = None],
    [budget_ms = None]), full ladder allowed
    ([max_degrade = PickFallback]), [fail_fast = false]. *)
val default_config : config

(** The literal per-entity behaviour of {!Framework.resolve} before this
    module existed: fresh encoding and fresh solvers per phase, no cache.
    The baseline the batch benchmarks compare against. *)
val naive_config : config

(** Cumulative wall-clock time per phase, milliseconds (wall, not process
    CPU: under a parallel batch, process CPU time charges one domain's
    work with every domain's cycles). Encoding
    ([Instantiation] + [ConvertToCNF], including {!Encode.extend} deltas)
    is split out of the paper's validity phase so cache and delta effects
    are visible; add [encode_ms] to [validity_ms] to recover the paper's
    [IsValid] accounting. *)
type phase_times = {
  mutable lint_ms : float;
  mutable encode_ms : float;
  mutable saturate_ms : float;
  mutable validity_ms : float;
  mutable deduce_ms : float;
  mutable suggest_ms : float;
}

type entity_stats = {
  times : phase_times;
  solver : Sat.Solver.stats;  (** summed over every solver the entity used *)
  solvers_built : int;
      (** CNF loads, including any private solver a SAT-based deducer had
          to build: 1 = a single session survived and served every phase *)
  solvers_reused : int;
      (** solver phases (validity checks, deductions, suggestions) served
          by the live session instead of a fresh CNF load *)
  deduce_sat_calls : int;  (** solver calls issued by the deduction phase *)
  deduce_probes : int;  (** single-literal refutation probes *)
  deduce_model_prunes : int;
      (** candidates {!Deduce.backbone} eliminated by model intersection *)
  deduce_seeded : int;  (** facts adopted from unit propagation, no probe *)
  static_facts : int;
      (** facts the saturate pre-phase derived statically (summed over
          re-saturations after extensions) *)
  probes_avoided : int;
      (** of [deduce_seeded], facts adopted from the static closure — the
          deduction work the saturate pre-phase saved *)
  cache_hits : int;  (** spec-keyed exact-repeat hits *)
  cache_misses : int;
  template_hits : int;
      (** exact-repeat misses served by an already-compiled shape template
          (the fingerprint layer: mode + interned Σ/Γ ids + schema) *)
  template_misses : int;  (** lookups that had to compile the shape *)
  instantiations : int;
      (** encodings produced by the thin per-entity stage
          ({!Encode.instantiate}) — every exact-repeat miss is one *)
  encode_alloc_words : float;
      (** minor-heap words the encode phase allocated on this entity's
          domain — the per-domain contention signal of the par bench *)
  delta_extensions : int;  (** [Se ⊕ Ot] rounds served by {!Encode.extend} *)
  rebuilds : int;  (** rounds the solver session could not survive:
                       [rebuilds_renumbered + rebuilds_impure] *)
  rebuilds_renumbered : int;
      (** {!Encode.extend} reused the Σ instances but a value universe
          grew, shifting variable numbers: the solver reloaded *)
  rebuilds_impure : int;
      (** the extension was not pure (Σ/Γ changed, tuples not appended):
          full re-encode from scratch *)
  lint_rejected : bool;
      (** the lint pre-phase proved the spec unsatisfiable: no encoding,
          no solver was built *)
}

(** Per-entity result; same content as {!Framework.outcome} minus timings
    (those live in {!entity_stats}), plus the degradation record. *)
type result = {
  resolved : Value.t option array;
  valid : bool;
  rounds : int;
  per_round_known : int list;
  level : degrade_level;
      (** the ladder rung that produced [resolved]; [Exact] whenever no
          budget interfered *)
  degrade_reason : degrade_reason option;
      (** [Some _] iff a budget ran out — even at [level = Exact] under
          [max_degrade = Exact], distinguishing a budget-truncated
          conservative answer from a proven one *)
  conflicts_spent : int;
      (** CDCL conflicts this entity consumed, across all its solvers and
          any injected burn — comparable against [budget_conflicts] *)
}

(** A captured per-entity failure (see {!run_batch}): the exception
    rendered with [Printexc.to_string], its backtrace, and the engine
    phase that was executing. The string forms keep {!item_result}
    comparable across runs (backtraces aside) and printable without
    re-raising. *)
type error_info = { exn : string; backtrace : string; phase : phase }

(** A shared encoding cache, safe to reuse across sessions and batches —
    including parallel ones: the table is split into hash-addressed,
    mutex-guarded shards, and encoding on a miss runs outside any lock. *)
type cache

val create_cache : unit -> cache

(** {1 Sessions — one entity, explicit lifecycle} *)

type session

(** [create_session ?config ?cache ?label spec] encodes [spec] and (in
    incremental mode) loads the solver session. [cache] defaults to a
    private one. [label] identifies the entity to the {!Faults} injection
    plan (and is set automatically by {!run_batch}); it has no effect
    otherwise. The wall budget, when configured, starts here. *)
val create_session : ?config:config -> ?cache:cache -> ?label:string -> Spec.t -> session

(** [resolve_session s ~user] runs the full interactive loop of Fig. 4 on
    the session, degrading per the config's budgets rather than running
    unbounded. *)
val resolve_session : session -> user:user -> result * entity_stats

(** [resolve ?config ?cache ?label ~user spec] is a one-shot
    [create_session] + [resolve_session]. Exceptions propagate — fault
    isolation is a batch concern. *)
val resolve :
  ?config:config -> ?cache:cache -> ?label:string -> user:user -> Spec.t ->
  result * entity_stats

(** {1 Streaming hooks}

    {!Crcore.Session} (and the [crsolved] daemon above it) keeps sessions
    alive {e between} resolves: new tuples or asserted orders arrive for
    an already-resolved entity, the live encoding and solver absorb them
    through {!Encode.extend}, and {!resolve_session} runs again —
    re-resolution without re-encoding whenever the extension is pure and
    the value universes are unchanged. *)

(** The session's current (accumulated) specification. *)
val session_spec : session -> Spec.t

(** [true] when the lint pre-phase rejected the spec at creation: the
    session holds no encoding and {!ingest_session} refuses it — rebuild
    from the accumulated spec instead. *)
val session_rejected : session -> bool

(** A snapshot of the session's statistics so far; the same record
    {!resolve_session} returns, readable between resolves. *)
val session_stats : session -> entity_stats

(** [refresh_budget s] re-arms the per-request budgets on a long-lived
    session: the wall deadline restarts from now, and conflicts accrued by
    earlier requests no longer count against [budget_conflicts] (each
    request gets the full configured budget; [result.conflicts_spent] is
    per-request). Call before each {!resolve_session} on a reused
    session. *)
val refresh_budget : session -> unit

(** [ingest_session s ?orders ?tuples ()] extends the session's
    specification in place — the streaming [Se ⊕ arrivals] step: [tuples]
    are appended to the entity (arrival order preserved), [orders] are
    prepended to the currency orders. Pure extensions ride
    {!Encode.extend}: unchanged value universes feed only delta clauses
    to the live solver ([delta_extensions]); a grown universe reloads the
    solver but reuses the Σ instance sweep ([rebuilds_renumbered]).
    Raises [Invalid_argument] on a lint-rejected session (see
    {!session_rejected}) and propagates [Spec.make] validation errors. *)
val ingest_session :
  session -> ?orders:Spec.order_edge list -> ?tuples:Tuple.t list -> unit -> unit

(** {1 Batches} *)

type item = { label : string; spec : Spec.t; user : user }

(** [outcome] is [Error info] when the entity raised and the batch ran
    with [fail_fast = false]: the batch completed anyway, and [stats]
    holds whatever the entity accumulated before dying. *)
type item_result = {
  label : string;
  outcome : (result, error_info) Stdlib.result;
  stats : entity_stats;
}

(** Aggregate batch statistics. Phase times are wall milliseconds summed
    over entities — under a parallel batch they exceed [wall_ms] (the
    batch's elapsed time, orchestration included), because [jobs] domains
    accumulate them concurrently; [wall_ms] is the honest end-to-end
    figure, the phase sums show where the work went. *)
type stats = {
  entities : int;
  valid_entities : int;
  errors : int;  (** entities whose outcome is [Error] (captured raises) *)
  degraded_partial : int;  (** entities that landed on {!PartialDeduce} *)
  degraded_pick : int;  (** entities that landed on {!PickFallback} *)
  budget_exhausted : int;
      (** entities with a [degrade_reason] — includes budget-truncated
          answers pinned at [Exact] by [max_degrade] *)
  total_rounds : int;
  attrs_total : int;
  attrs_resolved : int;
  times : phase_times;
  solver : Sat.Solver.stats;
  solvers_built : int;
  solvers_reused : int;  (** phases served by live sessions, batch-wide *)
  deduce_sat_calls : int;
  deduce_probes : int;
  deduce_model_prunes : int;
  deduce_seeded : int;
  static_facts : int;  (** statically derived facts, batch-wide *)
  probes_avoided : int;  (** probes the saturate pre-phase saved, batch-wide *)
  cache_hits : int;
  cache_misses : int;
  hit_ratio : float;  (** hits / (hits + misses), 0 with no lookups *)
  template_hits : int;  (** shape-template hits, batch-wide *)
  template_misses : int;  (** shape compilations, batch-wide *)
  template_hit_ratio : float;
      (** template hits / template lookups, 0 with no lookups. A batch of
          [n] distinct same-shape entities scores [(n-1)/n] where the
          spec-keyed [hit_ratio] scores 0 — the headline of the template
          layer *)
  instantiations : int;  (** thin per-entity instantiations, batch-wide *)
  encode_alloc_words : float;  (** encode-phase minor words, summed *)
  delta_extensions : int;
  rebuilds : int;  (** [rebuilds_renumbered + rebuilds_impure] *)
  rebuilds_renumbered : int;
  rebuilds_impure : int;
  lint_rejected : int;  (** entities rejected by the lint pre-phase *)
  jobs : int;  (** domains the batch ran on (after any clamping) *)
  jobs_requested : int;  (** [config.jobs] as given *)
  wall_ms : float;
}

(** [cache_hit_rate stats] is [stats.hit_ratio]. *)
val cache_hit_rate : stats -> float

(** [throughput stats] is resolved entities per second of wall time. *)
val throughput : stats -> float

val pp_stats : Format.formatter -> stats -> unit

(** [run_batch ?config ?cache ?on_result items] resolves every item with a
    shared encoding cache and returns all results plus the aggregate, on
    [config.jobs] domains. Results are in input order and identical to a
    sequential run whatever [jobs] is; [on_result] receives each finished
    {!item_result} in input order too (under parallelism, as the finished
    prefix grows). Structurally equal Σ/Γ lists are interned across items
    first, so compiled constraint forms and cache-key comparisons are
    shared batch-wide.

    {b Fault isolation}: an exception raised while resolving one entity
    (a crashing [user] callback, a spec that trips an internal invariant,
    an injected {!Faults} fault) is captured as that entity's [Error]
    outcome — with backtrace and the phase it escaped from — and every
    other entity still completes. Set [config.fail_fast] to propagate the
    first failure instead (its original backtrace intact). *)
val run_batch :
  ?config:config ->
  ?cache:cache ->
  ?on_result:(item_result -> unit) ->
  item list ->
  item_result list * stats
