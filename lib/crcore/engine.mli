(** Batch conflict resolution: the Fig. 4 loop of the paper run at scale.

    {!Framework} resolves one entity instance per call and rebuilds its SAT
    encoding and a fresh solver for every phase; this module amortises that
    work when resolving whole relations (millions of entities) or the same
    entity across interaction rounds:

    - {b one incremental solver session per entity}: the validity check
      ([IsValid]), the clique-consistency check inside [Suggest], and any
      SAT-based deduction all run on a single {!Sat.Solver} session holding
      Φ(Se), solving under assumption literals instead of re-instantiating
      the CNF per phase — learnt clauses carry across phases and rounds;
    - {b encoding reuse across [Se ⊕ Ot] steps}: user-input extensions are
      re-encoded with {!Encode.extend}, which keeps the structural-axiom
      clauses (the cubic part of [ConvertToCNF]) and feeds only the delta
      clauses to the live solver whenever the value universes are
      unchanged;
    - {b an encoding cache keyed on the specification}: resolving the same
      specification again (replays, idempotent re-runs, A/B checks) skips
      [Instantiation]/[ConvertToCNF] entirely;
    - {b structured observability}: per-entity and aggregate phase timings,
      solver conflict/decision/propagation counters, cache hit rates and
      incremental-path counters in {!entity_stats} / {!stats}.

    Results are identical to running {!Framework.resolve} per entity — the
    equivalence is property-tested — only the work is shared. *)

(** What the user (or an oracle) answers to a suggestion; identical shape
    to {!Framework.user}. An empty answer stops the entity's loop. *)
type user = Rules.suggestion -> schema:Schema.t -> (string * Value.t) list

type config = {
  mode : Encode.mode;
  deduce : Encode.t -> Deduce.t;
  repair : Rules.repair;
  max_rounds : int;
  incremental : bool;
      (** reuse one solver session per entity across phases and rounds,
          with {!Encode.extend} deltas for user-input extensions *)
  cache : bool;  (** cache encodings keyed on the specification *)
  lint : bool;
      (** run the {!Analyze} pre-phase: specifications with an E-level
          diagnostic (provably unsatisfiable) skip encoding and the
          solver entirely and report the invalid outcome directly *)
}

(** Incremental session + cache + lint pre-phase on; [mode = Paper],
    [deduce = Deduce.deduce_order], [repair = Exact_maxsat],
    [max_rounds = 5]. *)
val default_config : config

(** The literal per-entity behaviour of {!Framework.resolve} before this
    module existed: fresh encoding and fresh solvers per phase, no cache.
    The baseline the batch benchmarks compare against. *)
val naive_config : config

(** Cumulative CPU time per phase, milliseconds. Encoding
    ([Instantiation] + [ConvertToCNF], including {!Encode.extend} deltas)
    is split out of the paper's validity phase so cache and delta effects
    are visible; add [encode_ms] to [validity_ms] to recover the paper's
    [IsValid] accounting. *)
type phase_times = {
  mutable lint_ms : float;
  mutable encode_ms : float;
  mutable validity_ms : float;
  mutable deduce_ms : float;
  mutable suggest_ms : float;
}

type entity_stats = {
  times : phase_times;
  solver : Sat.Solver.stats;  (** summed over every solver the entity used *)
  solvers_built : int;  (** CNF loads: 1 = a single session survived *)
  cache_hits : int;
  cache_misses : int;
  delta_extensions : int;  (** [Se ⊕ Ot] rounds served by {!Encode.extend} *)
  rebuilds : int;  (** rounds that changed a universe: full re-encode *)
  lint_rejected : bool;
      (** the lint pre-phase proved the spec unsatisfiable: no encoding,
          no solver was built *)
}

(** Per-entity result; same content as {!Framework.outcome} minus timings
    (those live in {!entity_stats}). *)
type result = {
  resolved : Value.t option array;
  valid : bool;
  rounds : int;
  per_round_known : int list;
}

(** A shared encoding cache, safe to reuse across sessions and batches. *)
type cache

val create_cache : unit -> cache

(** {1 Sessions — one entity, explicit lifecycle} *)

type session

(** [create_session ?config ?cache spec] encodes [spec] and (in
    incremental mode) loads the solver session. [cache] defaults to a
    private one. *)
val create_session : ?config:config -> ?cache:cache -> Spec.t -> session

(** [resolve_session s ~user] runs the full interactive loop of Fig. 4 on
    the session. *)
val resolve_session : session -> user:user -> result * entity_stats

(** [resolve ?config ?cache ~user spec] is a one-shot
    [create_session] + [resolve_session]. *)
val resolve : ?config:config -> ?cache:cache -> user:user -> Spec.t -> result * entity_stats

(** {1 Batches} *)

type item = { label : string; spec : Spec.t; user : user }

type item_result = { label : string; result : result; stats : entity_stats }

(** Aggregate batch statistics. Times are CPU milliseconds summed over
    entities; [wall_ms] is the batch's elapsed CPU time including
    orchestration. *)
type stats = {
  entities : int;
  valid_entities : int;
  total_rounds : int;
  attrs_total : int;
  attrs_resolved : int;
  times : phase_times;
  solver : Sat.Solver.stats;
  solvers_built : int;
  cache_hits : int;
  cache_misses : int;
  delta_extensions : int;
  rebuilds : int;
  lint_rejected : int;  (** entities rejected by the lint pre-phase *)
  wall_ms : float;
}

(** [cache_hit_rate stats] is hits / (hits + misses), 0 on an empty
    cache history. *)
val cache_hit_rate : stats -> float

(** [throughput stats] is resolved entities per second of wall time. *)
val throughput : stats -> float

val pp_stats : Format.formatter -> stats -> unit

(** [run_batch ?config ?cache ?on_result items] resolves every item with a
    shared encoding cache, streaming each {!item_result} to [on_result] as
    it completes, and returns all results plus the aggregate. *)
val run_batch :
  ?config:config ->
  ?cache:cache ->
  ?on_result:(item_result -> unit) ->
  item list ->
  item_result list * stats
