module VMap = Map.Make (struct
  type t = Value.t

  let compare = Value.total_compare
end)

type t = {
  schema : Schema.t;
  universes : Value.t array array;
  adom_sizes : int array;
  ids : int VMap.t array;
  offsets : int array; (* variable offset of each attribute *)
  nvars : int;
}

let build entity gamma =
  let schema = Entity.schema entity in
  let arity = Schema.arity schema in
  let universes = Array.make arity [||] in
  let adom_sizes = Array.make arity 0 in
  let ids = Array.make arity VMap.empty in
  for a = 0 to arity - 1 do
    let adom = Entity.active_domain entity a in
    (* Null is pre-reserved in every universe: when no tuple takes it yet
       it sits right after the active-domain values — exactly where the
       first-occurrence order would place it if a later Se ⊕ Ot tuple
       (extensions append) introduced a null. The universe, and with it
       the variable numbering, then survives null-carrying extensions, so
       a live incremental solver session does too. *)
    let adom =
      if List.exists Value.is_null adom then adom else adom @ [ Value.Null ]
    in
    adom_sizes.(a) <- List.length adom;
    let name = Schema.name schema a in
    let extra =
      List.concat_map (fun c -> Cfd.Constant_cfd.constants_for c name) gamma
      |> List.filter (fun v ->
             not (List.exists (Value.equal v) adom))
      |> List.sort_uniq Value.total_compare
    in
    let univ = Array.of_list (adom @ extra) in
    universes.(a) <- univ;
    ids.(a) <- Array.to_list univ |> List.mapi (fun i v -> (v, i)) |> List.to_seq |> VMap.of_seq
  done;
  let offsets = Array.make arity 0 in
  let total = ref 0 in
  for a = 0 to arity - 1 do
    offsets.(a) <- !total;
    let d = Array.length universes.(a) in
    total := !total + (d * (d - 1))
  done;
  { schema; universes; adom_sizes; ids; offsets; nvars = !total }

let schema c = c.schema

let universe c a = c.universes.(a)

let adom_size c a = c.adom_sizes.(a)

let sizes c = Array.map Array.length c.universes

let vid c a v =
  match VMap.find_opt v c.ids.(a) with Some i -> i | None -> raise Not_found

let vid_opt c a v = VMap.find_opt v c.ids.(a)

let value c a id = c.universes.(a).(id)

let nvars c = c.nvars

let var_of c ~attr lo hi =
  let d = Array.length c.universes.(attr) in
  if lo = hi || lo < 0 || hi < 0 || lo >= d || hi >= d then
    invalid_arg "Coding.var_of: bad value pair";
  c.offsets.(attr) + (lo * (d - 1)) + if hi < lo then hi else hi - 1

let decode c var =
  let arity = Array.length c.universes in
  let rec find a =
    if a + 1 < arity && var >= c.offsets.(a + 1) then find (a + 1) else a
  in
  let a = find 0 in
  let d = Array.length c.universes.(a) in
  let local = var - c.offsets.(a) in
  let lo = local / (d - 1) in
  let r = local mod (d - 1) in
  let hi = if r >= lo then r + 1 else r in
  (a, lo, hi)

let pp_var c ppf var =
  let a, lo, hi = decode c var in
  Format.fprintf ppf "%s: %a < %a" (Schema.name c.schema a) Value.pp
    c.universes.(a).(lo) Value.pp c.universes.(a).(hi)
