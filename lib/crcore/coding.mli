(** The value universes and Boolean variable numbering behind the SAT
    encoding of Section V-A.

    For each attribute [Ai], the universe is [adom(Ie.Ai)] extended with
    the constants appearing in position [Ai] of CFDs in Γ; the Boolean
    variable [x^{Ai}_{a1,a2}] stands for the value-currency fact
    [a1 ≺v_{Ai} a2] over that universe. *)

type t

(** [build entity gamma] computes universes and variable numbering. *)
val build : Entity.t -> Cfd.Constant_cfd.t list -> t

val schema : t -> Schema.t

(** [universe c a] is the value universe of attribute position [a];
    active-domain values first (in first-occurrence order), then CFD
    constants.

    [Value.Null] is always a universe member: when no tuple takes it, it
    is reserved right after the active-domain values — the slot a
    null-carrying [Se ⊕ Ot] extension tuple (extensions append) would
    give it anyway. Null-introducing extensions therefore keep the
    universe, and with it the variable numbering, unchanged, so live
    incremental solver sessions survive them. The reserved null is ranked
    lowest by the null-lowest unit clauses and is never a candidate true
    value. *)
val universe : t -> int -> Value.t array

(** [adom_size c a] is the number of universe values of [a] that occur in
    the entity (a prefix of {!universe}), counting the reserved null. *)
val adom_size : t -> int -> int

(** [sizes c] is the per-attribute universe sizes, freshly allocated. The
    variable numbering (offsets, {!nvars}, {!var_of}) is a pure function
    of this vector, which is what lets structural clause blocks be shared
    across codings of equal sizes (see [Encode.template]). *)
val sizes : t -> int array

(** [vid c a v] is the id of value [v] within attribute [a]'s universe.
    Raises [Not_found] for foreign values. *)
val vid : t -> int -> Value.t -> int

(** [vid_opt c a v] is [vid], returning [None] for foreign values. *)
val vid_opt : t -> int -> Value.t -> int option

(** [value c a id] is the value with id [id] in attribute [a]. *)
val value : t -> int -> int -> Value.t

(** Total number of Boolean variables: [Σ_a d_a·(d_a - 1)]. *)
val nvars : t -> int

(** [var_of c ~attr lo hi] is the variable for [value lo ≺ value hi] in
    [attr]; [lo], [hi] are value ids, [lo ≠ hi]. *)
val var_of : t -> attr:int -> int -> int -> int

(** [decode c var] is the [(attr, lo, hi)] of a variable. *)
val decode : t -> int -> int * int * int

(** [pp_var c ppf var] prints a variable as [attr: v1 < v2]. *)
val pp_var : t -> Format.formatter -> int -> unit
