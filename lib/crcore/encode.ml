type mode = Paper | Exact

type fact = { attr : int; lo : int; hi : int }

type source = From_order | From_constraint of int | From_cfd of int

type iconstraint = { premise : fact list; concl : fact; source : source }

type t = {
  spec : Spec.t;
  coding : Coding.t;
  mode : mode;
  sigma_insts : iconstraint list;
  units : (fact * source) list;
  implications : iconstraint list;
  vetoes : (fact list * source) list;
  cnf : Sat.Cnf.t;
  n_structural : int;
  structural : Sat.Lit.t array list;
}

let var_of_fact_c coding f = Coding.var_of coding ~attr:f.attr f.lo f.hi

(* ---- instantiating currency constraints over distinct projections ----

   Instance constraints depend only on the two tuples' values at the
   attributes a constraint mentions, so we instantiate over pairs of
   distinct projections rather than pairs of tuples: same instances,
   usually far fewer pairs. *)

(* representatives paired with the index of their first-occurrence tuple,
   so an incremental pass can tell which ones the extension introduced *)
let projection_reps_i entity attr_positions =
  let seen = Hashtbl.create 16 in
  let reps = ref [] in
  List.iteri
    (fun i tup ->
      let key =
        String.concat "\x00"
          (List.map (fun a -> Value.to_string (Tuple.get tup a)) attr_positions)
      in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        reps := (i, tup) :: !reps
      end)
    (Entity.tuples entity);
  List.rev !reps

let sigma_fact_of schema coding (name, v1, v2) =
  let attr = Schema.index schema name in
  { attr; lo = Coding.vid coding attr v1; hi = Coding.vid coding attr v2 }

(* Σ instances in a canonical order, independent of which tuple pairs
   produced them: [extend] merges incrementally-found instances into a
   base set and must land on the very list a fresh encode would build. *)
let sort_insts l =
  List.sort (fun a b -> compare (a.premise, a.concl) (b.premise, b.concl)) l

(* constraint sets routinely hold hundreds of constraints over the same
   few attribute sets (chains instantiated with different constants), so
   representatives are memoised per position list *)
let reps_memo entity =
  let memo = Hashtbl.create 16 in
  fun positions ->
    match Hashtbl.find_opt memo positions with
    | Some reps -> reps
    | None ->
        let reps = projection_reps_i entity positions in
        Hashtbl.add memo positions reps;
        reps

let instantiate_sigma spec coding =
  let schema = Spec.schema spec in
  let reps_of = reps_memo spec.Spec.entity in
  let out = Hashtbl.create 256 in
  let insts = ref [] in
  List.iteri
    (fun k c ->
      let positions =
        List.map (Schema.index schema) (Currency.Constraint_ast.attrs c)
      in
      let reps = reps_of positions in
      List.iter
        (fun (_, s1) ->
          List.iter
            (fun (_, s2) ->
              if not (s1 == s2) then
                match Currency.Constraint_ast.instantiate c s1 s2 with
                | None -> ()
                | Some inst ->
                    let premise =
                      List.sort_uniq compare
                        (List.map (sigma_fact_of schema coding)
                           inst.Currency.Constraint_ast.prec_premises)
                    in
                    let concl = sigma_fact_of schema coding inst.Currency.Constraint_ast.conclusion in
                    let key = (premise, concl) in
                    if not (Hashtbl.mem out key) then begin
                      Hashtbl.add out key ();
                      insts := { premise; concl; source = From_constraint k } :: !insts
                    end)
            reps)
        reps)
    spec.Spec.sigma;
  sort_insts !insts

(* The Σ instances an extension adds: with the value universes unchanged,
   instances over pairs of pre-existing tuples are exactly [base_insts],
   so only pairs touching a projection representative introduced by a
   tuple at index ≥ [n_base] can contribute anything new. On the
   framework's one-fresh-tuple extensions this is O(reps) [instantiate]
   calls per constraint instead of O(reps²). *)
let instantiate_sigma_delta spec coding ~base_insts ~n_base =
  let schema = Spec.schema spec in
  let reps_of = reps_memo spec.Spec.entity in
  let seen = Hashtbl.create 1024 in
  List.iter (fun ic -> Hashtbl.replace seen (ic.premise, ic.concl) ()) base_insts;
  let out = ref [] in
  List.iteri
    (fun k c ->
      let positions =
        List.map (Schema.index schema) (Currency.Constraint_ast.attrs c)
      in
      let reps = reps_of positions in
      let news = List.filter (fun (i, _) -> i >= n_base) reps in
      if news <> [] then begin
        let try_pair s1 s2 =
          if not (s1 == s2) then
            match Currency.Constraint_ast.instantiate c s1 s2 with
            | None -> ()
            | Some inst ->
                let premise =
                  List.sort_uniq compare
                    (List.map (sigma_fact_of schema coding)
                       inst.Currency.Constraint_ast.prec_premises)
                in
                let concl = sigma_fact_of schema coding inst.Currency.Constraint_ast.conclusion in
                let key = (premise, concl) in
                if not (Hashtbl.mem seen key) then begin
                  Hashtbl.replace seen key ();
                  out := { premise; concl; source = From_constraint k } :: !out
                end
        in
        let olds = List.filter (fun (i, _) -> i < n_base) reps in
        List.iter (fun (_, o) -> List.iter (fun (_, n) -> try_pair o n) news) olds;
        List.iter (fun (_, n) -> List.iter (fun (_, r) -> try_pair n r) reps) news
      end)
    spec.Spec.sigma;
  !out

(* ---- instantiating constant CFDs ---- *)

let relevant_gamma entity gamma =
  let schema = Entity.schema entity in
  let adoms =
    Array.init (Schema.arity schema) (fun a -> Entity.active_domain entity a)
  in
  List.mapi (fun k c -> (k, c)) gamma
  |> List.filter (fun (_, (c : Cfd.Constant_cfd.t)) ->
         List.for_all
           (fun (aname, v) ->
             let a = Schema.index schema aname in
             List.exists (Value.equal v) adoms.(a))
           c.Cfd.Constant_cfd.lhs)

(* Returns the implication instances and, for CFDs whose RHS constant the
   entity never takes, the vetoed premises (ω_X → ⊥). *)
let instantiate_gamma spec coding gamma_rel =
  let schema = Spec.schema spec in
  let out = ref [] in
  let vetoes = ref [] in
  List.iter
    (fun (k, (c : Cfd.Constant_cfd.t)) ->
      let premise =
        (* ω_X: every other active-domain value sits below the pattern *)
        List.concat_map
          (fun (name, v) ->
            let attr = Schema.index schema name in
            let target = Coding.vid coding attr v in
            List.filter_map
              (fun lo -> if lo <> target then Some { attr; lo; hi = target } else None)
              (List.init (Coding.adom_size coding attr) Fun.id))
          c.Cfd.Constant_cfd.lhs
      in
      let bname, bval = c.Cfd.Constant_cfd.rhs in
      let battr = Schema.index schema bname in
      match Coding.vid_opt coding battr bval with
      | Some btarget ->
          for b = 0 to Coding.adom_size coding battr - 1 do
            if b <> btarget then
              out :=
                { premise; concl = { attr = battr; lo = b; hi = btarget }; source = From_cfd k }
                :: !out
          done
      | None ->
          (* the repair value never occurs: the pattern can never be the
             current tuple, unless the premise is already vacuous *)
          vetoes := (premise, From_cfd k) :: !vetoes)
    gamma_rel;
  (List.rev !out, List.rev !vetoes)

(* ---- units from the currency orders of It and the null-lowest rule ---- *)

let order_units spec coding =
  let schema = Spec.schema spec in
  let entity = spec.Spec.entity in
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  let push f =
    if not (Hashtbl.mem seen f) then begin
      Hashtbl.add seen f ();
      out := (f, From_order) :: !out
    end
  in
  List.iter
    (fun { Spec.attr; lo; hi } ->
      let a = Schema.index schema attr in
      let v1 = Entity.value entity lo a and v2 = Entity.value entity hi a in
      if not (Value.equal v1 v2) then
        push { attr = a; lo = Coding.vid coding a v1; hi = Coding.vid coding a v2 })
    spec.Spec.orders;
  (* a null value is ranked lowest in its attribute's currency order *)
  for a = 0 to Schema.arity schema - 1 do
    let univ = Coding.universe coding a in
    Array.iteri
      (fun i v ->
        if Value.is_null v then
          Array.iteri (fun j w -> if j <> i && not (Value.is_null w) then push { attr = a; lo = i; hi = j }) univ)
      univ
  done;
  List.rev !out

(* Ω(Se) minus the Σ instantiation: units from the orders of It, the Γ
   instances and vetoes, and the premise-free split — everything that is
   cheap enough to recompute on each [Se ⊕ Ot] extension. [sigma_insts]
   is the (canonically sorted) Σ instance list, computed either from
   scratch ([encode]) or by merging a delta ([extend]). *)
let assemble_parts spec coding sigma_insts =
  let gamma_rel = relevant_gamma spec.Spec.entity spec.Spec.gamma in
  let units = order_units spec coding in
  let gamma_imps, vetoes = instantiate_gamma spec coding gamma_rel in
  let implications = sigma_insts @ gamma_imps in
  (* split premise-free implications into units *)
  let extra_units, implications =
    List.partition (fun ic -> ic.premise = []) implications
  in
  let units = units @ List.map (fun ic -> (ic.concl, ic.source)) extra_units in
  (units, implications, vetoes)

(* The clause rendering of the instance part, in reverse push order (kept
   stable so [extend] diffs clause-for-clause against a base encoding). *)
let instance_clauses coding (units, implications, vetoes) =
  let var f = var_of_fact_c coding f in
  let clauses = ref [] in
  List.iter (fun (f, _) -> clauses := [| Sat.Lit.pos (var f) |] :: !clauses) units;
  List.iter
    (fun ic ->
      let c =
        Array.of_list
          (Sat.Lit.pos (var ic.concl)
          :: List.map (fun f -> Sat.Lit.neg_of (var f)) ic.premise)
      in
      clauses := c :: !clauses)
    implications;
  List.iter
    (fun (premise, _) ->
      clauses := Array.of_list (List.map (fun f -> Sat.Lit.neg_of (var f)) premise) :: !clauses)
    vetoes;
  !clauses

(* Φ's structural axioms: transitivity, asymmetry (+ totality in exact
   mode) per attribute. Depends only on the coding and the mode — the part
   [extend] reuses verbatim across [Se ⊕ Ot] steps. *)
let structural_clauses coding mode =
  let schema = Coding.schema coding in
  let clauses = ref [] in
  let n_structural = ref 0 in
  for a = 0 to Schema.arity schema - 1 do
    let d = Array.length (Coding.universe coding a) in
    let v lo hi = var_of_fact_c coding { attr = a; lo; hi } in
    (* transitivity *)
    for i = 0 to d - 1 do
      for j = 0 to d - 1 do
        if j <> i then
          for k = 0 to d - 1 do
            if k <> i && k <> j then begin
              clauses :=
                [| Sat.Lit.neg_of (v i j); Sat.Lit.neg_of (v j k); Sat.Lit.pos (v i k) |]
                :: !clauses;
              incr n_structural
            end
          done
      done
    done;
    (* asymmetry, and totality in exact mode *)
    for i = 0 to d - 1 do
      for j = i + 1 to d - 1 do
        clauses := [| Sat.Lit.neg_of (v i j); Sat.Lit.neg_of (v j i) |] :: !clauses;
        incr n_structural;
        if mode = Exact then begin
          clauses := [| Sat.Lit.pos (v i j); Sat.Lit.pos (v j i) |] :: !clauses;
          incr n_structural
        end
      done
    done
  done;
  (!clauses, !n_structural)

let encode ?(mode = Paper) spec =
  let coding = Coding.build spec.Spec.entity [] in
  let sigma_insts = instantiate_sigma spec coding in
  let ((units, implications, vetoes) as parts) = assemble_parts spec coding sigma_insts in
  let inst = instance_clauses coding parts in
  let structural, n_structural = structural_clauses coding mode in
  let cnf = Sat.Cnf.make ~nvars:(Coding.nvars coding) (structural @ inst) in
  { spec; coding; mode; sigma_insts; units; implications; vetoes; cnf; n_structural; structural }

(* ---- incremental re-encoding for Se ⊕ Ot extensions ---- *)

let same_universes c1 c2 =
  Schema.equal (Coding.schema c1) (Coding.schema c2)
  &&
  let arity = Schema.arity (Coding.schema c1) in
  let rec attrs_equal a =
    a >= arity
    || (Coding.adom_size c1 a = Coding.adom_size c2 a
       &&
       let u1 = Coding.universe c1 a and u2 = Coding.universe c2 a in
       Array.length u1 = Array.length u2
       && (let rec vals i =
             i >= Array.length u1 || (Value.equal u1.(i) u2.(i) && vals (i + 1))
           in
           vals 0)
       && attrs_equal (a + 1))
  in
  attrs_equal 0

(* c1's universes are per-attribute prefixes of c2's: every old value
   keeps its id, so facts (and hence Σ instances) carry over verbatim *)
let universes_prefix c1 c2 =
  Schema.equal (Coding.schema c1) (Coding.schema c2)
  &&
  let arity = Schema.arity (Coding.schema c1) in
  let rec attrs_ok a =
    a >= arity
    ||
    let u1 = Coding.universe c1 a and u2 = Coding.universe c2 a in
    Array.length u1 <= Array.length u2
    && (let rec vals i =
          i >= Array.length u1 || (Value.equal u1.(i) u2.(i) && vals (i + 1))
        in
        vals 0)
    && attrs_ok (a + 1)
  in
  attrs_ok 0

let same_list eq a b = a == b || List.equal eq a b

(* [spec] must be a pure extension of [base.spec]: same Σ and Γ, the old
   tuples a prefix of the new ones (extensions append), the old order
   edges a suffix of the new ones (extensions prepend). This is what
   guarantees Ω(base) ⊆ Ω(spec) clause-for-clause, which delta solving
   needs: a clause that disappeared would leave an incremental solver
   stronger than Φ(Se ⊕ Ot). *)
let pure_extension base_spec spec =
  same_list ( = ) base_spec.Spec.sigma spec.Spec.sigma
  && same_list ( = ) base_spec.Spec.gamma spec.Spec.gamma
  && (let bt = Entity.tuples base_spec.Spec.entity
      and nt = Entity.tuples spec.Spec.entity in
      let rec prefix a b =
        match (a, b) with
        | [], _ -> true
        | x :: a', y :: b' -> (x == y || x = y) && prefix a' b'
        | _ :: _, [] -> false
      in
      prefix bt nt)
  &&
  let k = List.length spec.Spec.orders - List.length base_spec.Spec.orders in
  k >= 0
  &&
  let rec drop n l = if n = 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t in
  same_list ( = ) (drop k spec.Spec.orders) base_spec.Spec.orders

type extension = Delta of t * Sat.Lit.t array list | Renumbered of t

let extend base spec =
  if not (pure_extension base.spec spec) then None
  else
    let coding' = Coding.build spec.Spec.entity [] in
    if not (universes_prefix base.coding coding') then None
    else begin
      (* old values keep their per-attribute ids, so the Σ instances of
         the base — the expensive quadratic sweep over projection pairs —
         carry over verbatim; only pairs the new tuples touch are swept *)
      let identical = same_universes base.coding coding' in
      let coding = if identical then base.coding else coding' in
      let n_base = List.length (Entity.tuples base.spec.Spec.entity) in
      let delta_insts =
        instantiate_sigma_delta spec coding ~base_insts:base.sigma_insts ~n_base
      in
      let sigma_insts = sort_insts (base.sigma_insts @ delta_insts) in
      let ((units, implications, vetoes) as parts) = assemble_parts spec coding sigma_insts in
      let inst = instance_clauses coding parts in
      if identical then begin
        (* variable numbering unchanged: the structural axioms carry over
           and a live solver only needs the delta clauses — unit clauses
           for fresh facts (new order edges, premise-free new Σ
           instances) plus the new Σ implications. Γ's part is a function
           of the unchanged universes and is identical on both sides, and
           pure extensions only add clauses, so the session stays sound. *)
        let cnf = Sat.Cnf.make ~nvars:(Coding.nvars coding) (base.structural @ inst) in
        let var f = var_of_fact_c coding f in
        let base_unit_facts = Hashtbl.create 64 in
        List.iter (fun (f, _) -> Hashtbl.replace base_unit_facts f ()) base.units;
        let delta_units =
          List.filter_map
            (fun (f, _) ->
              if Hashtbl.mem base_unit_facts f then None
              else Some [| Sat.Lit.pos (var f) |])
            units
        in
        let delta_imps =
          List.filter_map
            (fun ic ->
              if ic.premise = [] then None
              else
                Some
                  (Array.of_list
                     (Sat.Lit.pos (var ic.concl)
                     :: List.map (fun f -> Sat.Lit.neg_of (var f)) ic.premise)))
            delta_insts
        in
        Some
          (Delta
             ( {
                 spec;
                 coding;
                 mode = base.mode;
                 sigma_insts;
                 units;
                 implications;
                 vetoes;
                 cnf;
                 n_structural = base.n_structural;
                 structural = base.structural;
               },
               delta_units @ delta_imps ))
      end
      else begin
        (* a universe grew (e.g. the fresh tuple carries a value, or a
           null, the entity never took): variable numbers shift globally,
           so solvers must reload — but the Σ instances still carried
           over; only the (cheap, small-domain) structural axioms are
           regenerated *)
        let structural, n_structural = structural_clauses coding base.mode in
        let cnf = Sat.Cnf.make ~nvars:(Coding.nvars coding) (structural @ inst) in
        Some
          (Renumbered
             {
               spec;
               coding;
               mode = base.mode;
               sigma_insts;
               units;
               implications;
               vetoes;
               cnf;
               n_structural;
               structural;
             })
      end
    end

let var_of_fact e f = var_of_fact_c e.coding f

let fact_of_var e v =
  let attr, lo, hi = Coding.decode e.coding v in
  { attr; lo; hi }

let pp_fact e ppf f =
  Format.fprintf ppf "%s: %a < %a"
    (Schema.name (Coding.schema e.coding) f.attr)
    Value.pp (Coding.value e.coding f.attr f.lo) Value.pp
    (Coding.value e.coding f.attr f.hi)
