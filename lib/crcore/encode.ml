type mode = Paper | Exact

type fact = { attr : int; lo : int; hi : int }

type source = From_order | From_constraint of int | From_cfd of int

type iconstraint = { premise : fact list; concl : fact; source : source }

(* ---- compiled constraint forms ----

   [Instantiation] evaluates every constraint on every representative tuple
   pair; resolving attribute names to positions once per Σ/Γ (instead of a
   hashtable lookup per predicate per pair) and splitting the single-tuple
   constant predicates out of the pair predicates turns the inner loop into
   array reads and lets whole constraints skip pairs wholesale. *)

type cpred = CPrec of int | CCmp2 of int * Value.op

type cconstraint = {
  c_idx : int;  (* index into Σ *)
  c_positions : int list;  (* sorted positions of every mentioned attribute *)
  c_t1 : (int * Value.op * Value.t) list;  (* constant predicates on t1 *)
  c_t2 : (int * Value.op * Value.t) list;  (* constant predicates on t2 *)
  c_pair : cpred list;  (* pair predicates, original premise order *)
  c_concl : int;
}

type sigma_c = {
  s_schema : Schema.t;
  s_src : Currency.Constraint_ast.t list;
  s_cs : cconstraint list;
}

type cgamma = { g_idx : int; g_lhs : (int * Value.t) list; g_rhs : int * Value.t }

type gamma_c = {
  g_schema : Schema.t;
  g_src : Cfd.Constant_cfd.t list;
  g_cs : cgamma list;
}

(* ---- per-shape templates ----

   Everything about an encoding that does not depend on the concrete
   entity: the compiled Σ/Γ (a function of the schema and the interned
   constraint lists) and the structural-axiom clause blocks, which are a
   pure function of (mode, per-attribute universe sizes) — the variable
   numbering is offsets + d·(d-1) arithmetic over the size vector alone.
   One template serves every entity of a spec shape; the size-keyed store
   lets entities (and Renumbered re-encodes) of equal universe sizes share
   the cubic transitivity block outright. Sharing the clause arrays is
   safe: [Sat.Solver.add_clause_a] copies before sorting, and [Sat.Cnf.t]
   is immutable. *)

type structural_block = { sb_clauses : Sat.Lit.t array list; sb_count : int }

module Size_tbl = Hashtbl.Make (struct
  type t = int array

  let equal = (( = ) : int array -> int array -> bool)
  let hash (a : int array) = Hashtbl.hash a
end)

type template = {
  t_mode : mode;
  t_schema : Schema.t;
  t_sigma_c : sigma_c;
  t_gamma_c : gamma_c;
  t_lock : Mutex.t;  (* guards [t_structural]; build happens outside it *)
  t_structural : structural_block Size_tbl.t;
}

type t = {
  spec : Spec.t;
  coding : Coding.t;
  mode : mode;
  sigma_c : sigma_c;
  gamma_c : gamma_c;
  template : template option;
  sigma_insts : iconstraint list;
  gamma_imps : iconstraint list;
  units : (fact * source) list;
  implications : iconstraint list;
  vetoes : (fact list * source) list;
  cnf : Sat.Cnf.t;
  n_structural : int;
  structural : Sat.Lit.t array list;
}

let var_of_fact_c coding f = Coding.var_of coding ~attr:f.attr f.lo f.hi

let compile_sigma schema sigma =
  let cs =
    List.mapi
      (fun k (c : Currency.Constraint_ast.t) ->
        let t1 = ref [] and t2 = ref [] and pair = ref [] in
        let positions = ref [Schema.index schema c.Currency.Constraint_ast.concl] in
        List.iter
          (fun p ->
            match p with
            | Currency.Constraint_ast.Prec name ->
                let a = Schema.index schema name in
                positions := a :: !positions;
                pair := CPrec a :: !pair
            | Currency.Constraint_ast.Cmp2 (name, op) ->
                let a = Schema.index schema name in
                positions := a :: !positions;
                pair := CCmp2 (a, op) :: !pair
            | Currency.Constraint_ast.Cmp_const (r, name, op, v) -> (
                let a = Schema.index schema name in
                positions := a :: !positions;
                let e = (a, op, v) in
                match r with
                | Currency.Constraint_ast.T1 -> t1 := e :: !t1
                | Currency.Constraint_ast.T2 -> t2 := e :: !t2))
          c.Currency.Constraint_ast.premise;
        {
          c_idx = k;
          (* sorted positions, not name-sorted [Constraint_ast.attrs]:
             which tuples represent a distinct projection is insensitive
             to the order of the projected positions, so any canonical
             order yields the same representatives (and memo hits) *)
          c_positions = List.sort_uniq compare !positions;
          c_t1 = List.rev !t1;
          c_t2 = List.rev !t2;
          c_pair = List.rev !pair;
          c_concl = Schema.index schema c.Currency.Constraint_ast.concl;
        })
      sigma
  in
  { s_schema = schema; s_src = sigma; s_cs = cs }

let compile_gamma schema gamma =
  let cs =
    List.mapi
      (fun k (c : Cfd.Constant_cfd.t) ->
        let bname, bval = c.Cfd.Constant_cfd.rhs in
        {
          g_idx = k;
          g_lhs =
            List.map (fun (a, v) -> (Schema.index schema a, v)) c.Cfd.Constant_cfd.lhs;
          g_rhs = (Schema.index schema bname, bval);
        })
      gamma
  in
  { g_schema = schema; g_src = gamma; g_cs = cs }

(* Reuse a compiled form when the constraint list is the very same value:
   specs share Σ/Γ physically across [Se ⊕ Ot] steps (and callers can
   share across a batch via the [?sigma_c] parameters). A one-slot
   domain-local memo backs up callers that don't pass the compiled form —
   e.g. a naive resolution loop re-encoding the same spec every round —
   without any cross-domain state. *)
let sigma_memo : sigma_c option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let gamma_memo : gamma_c option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let sigma_c_for schema spec arg =
  match arg with
  | Some sc when sc.s_src == spec.Spec.sigma && Schema.equal sc.s_schema schema -> sc
  | _ -> (
      let slot = Domain.DLS.get sigma_memo in
      match !slot with
      | Some sc when sc.s_src == spec.Spec.sigma && Schema.equal sc.s_schema schema -> sc
      | _ ->
          let sc = compile_sigma schema spec.Spec.sigma in
          slot := Some sc;
          sc)

let gamma_c_for schema spec arg =
  match arg with
  | Some gc when gc.g_src == spec.Spec.gamma && Schema.equal gc.g_schema schema -> gc
  | _ -> (
      let slot = Domain.DLS.get gamma_memo in
      match !slot with
      | Some gc when gc.g_src == spec.Spec.gamma && Schema.equal gc.g_schema schema -> gc
      | _ ->
          let gc = compile_gamma schema spec.Spec.gamma in
          slot := Some gc;
          gc)

(* ---- instantiating currency constraints over distinct projections ----

   Instance constraints depend only on the two tuples' values at the
   attributes a constraint mentions, so we instantiate over pairs of
   distinct projections rather than pairs of tuples: same instances,
   usually far fewer pairs. *)

(* representatives paired with the index of their first-occurrence tuple,
   so an incremental pass can tell which ones the extension introduced *)
let projection_reps_i entity attr_positions =
  let seen = Hashtbl.create 16 in
  let reps = ref [] in
  List.iteri
    (fun i tup ->
      let key =
        String.concat "\x00"
          (List.map (fun a -> Value.to_string (Tuple.get tup a)) attr_positions)
      in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        reps := (i, tup) :: !reps
      end)
    (Entity.tuples entity);
  List.rev !reps

(* Σ instances in a canonical order, independent of which tuple pairs
   produced them: [extend] merges incrementally-found instances into a
   base set and must land on the very list a fresh encode would build. *)
let compare_insts a b =
  match compare a.premise b.premise with 0 -> compare a.concl b.concl | c -> c

let sort_insts l = List.sort compare_insts l

(* constraint sets routinely hold hundreds of constraints over the same
   few attribute sets (chains instantiated with different constants), so
   representatives are memoised per position list *)
let reps_memo entity =
  let memo = Hashtbl.create 16 in
  fun positions ->
    match Hashtbl.find_opt memo positions with
    | Some reps -> reps
    | None ->
        let reps = projection_reps_i entity positions in
        Hashtbl.add memo positions reps;
        reps

(* ---- the per-entity instantiation stage ----

   Tuples are lowered once into a value-id matrix ([vids.(i).(a)] is the
   universe id of tuple [i]'s value at attribute [a]); everything after
   that is integer compares and array reads. This rests on two facts:
   value ids are assigned by [Value.total_compare], which identifies two
   values exactly when [Value.equal] does (numerically equal Int/Float
   included), so id equality IS value equality over universe members; and
   [Value.eval] is built on [equal]/[compare_opt], so evaluating an
   operator on the universe representative ([Coding.value]) is evaluating
   it on the tuple's own value. Projection representatives keyed on id
   lists coincide with the value-keyed ones up to [Value.equal]-classes,
   which is the exact equivalence instance generation factors through —
   the instance set (and the [fired] flags) is unchanged. *)

(* Per-domain scratch tables, reused across encodes: [Hashtbl.clear] keeps
   the grown bucket array, so steady-state instantiation allocates no
   fresh tables. Never live across calls — membership only, no escape. *)
type scratch = {
  sc_dedup : (int list, unit) Hashtbl.t;  (* packed instance keys *)
  sc_proj : (int list, unit) Hashtbl.t;   (* projected id keys *)
}

let scratch_key : scratch Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { sc_dedup = Hashtbl.create 1024; sc_proj = Hashtbl.create 64 })

let vid_matrix coding entity =
  let arity = Schema.arity (Coding.schema coding) in
  Array.of_list
    (List.map
       (fun tup -> Array.init arity (fun a -> Coding.vid coding a (Tuple.get tup a)))
       (Entity.tuples entity))

(* the reserved null's id per attribute ({!Coding.build} guarantees one) *)
let null_ids coding =
  let arity = Schema.arity (Coding.schema coding) in
  Array.init arity (fun a -> Coding.vid coding a Value.Null)

(* first-occurrence representative tuple indices of the distinct
   projections onto [positions], over the id matrix *)
let projection_reps_v vids positions =
  let seen = (Domain.DLS.get scratch_key).sc_proj in
  Hashtbl.clear seen;
  let reps = ref [] in
  Array.iteri
    (fun i v ->
      let key = List.map (fun a -> v.(a)) positions in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        reps := i :: !reps
      end)
    vids;
  List.rev !reps

let reps_memo_v vids =
  let memo = Hashtbl.create 16 in
  fun positions ->
    match Hashtbl.find_opt memo positions with
    | Some reps -> reps
    | None ->
        let reps = projection_reps_v vids positions in
        Hashtbl.add memo positions reps;
        reps

let sat_consts_v coding vids i preds =
  List.for_all
    (fun (a, op, cst) -> Value.eval op (Coding.value coding a vids.(i).(a)) cst)
    preds

(* the [Constraint_ast.instantiate] semantics on a compiled constraint whose
   single-tuple constant predicates already held: evaluate the pair
   predicates, collect the residual prec conjuncts as coded facts.
   Returns the packed dedup key ([concl var :: sorted premise vars]) and
   the instance, or [None] when some conjunct is vacuous-making. *)
let inst_compiled_v coding nulls cc v1 v2 =
  let vacuous = ref false in
  let residual = ref [] in
  List.iter
    (fun p ->
      if not !vacuous then
        match p with
        | CPrec a ->
            let i1 = v1.(a) and i2 = v2.(a) in
            (* nulls rank lowest: null ≺ v always holds (drop the conjunct),
               v ≺ null never does (the whole constraint is vacuous) *)
            if i2 = nulls.(a) then vacuous := true
            else if i1 = nulls.(a) then ()
            else if i1 = i2 then vacuous := true
            else residual := { attr = a; lo = i1; hi = i2 } :: !residual
        | CCmp2 (a, op) ->
            if
              not
                (Value.eval op (Coding.value coding a v1.(a)) (Coding.value coding a v2.(a)))
            then vacuous := true)
    cc.c_pair;
  if !vacuous then None
  else
    let a = cc.c_concl in
    let i1 = v1.(a) and i2 = v2.(a) in
    (* equal-valued conclusions hold trivially; a null on either side of
       the conclusion carries no value-level currency information (a null
       already ranks lowest; a more-current-but-unknown value constrains
       nothing) *)
    if i1 = i2 || i1 = nulls.(a) || i2 = nulls.(a) then None
    else
      let concl = { attr = a; lo = i1; hi = i2 } in
      let premise = List.sort_uniq compare !residual in
      let key =
        var_of_fact_c coding concl
        :: List.map (fun f -> var_of_fact_c coding f) premise
      in
      Some (key, { premise; concl; source = From_constraint cc.c_idx })

let instantiate_sigma ?fired sigma_c spec coding =
  let vids = vid_matrix coding spec.Spec.entity in
  let nulls = null_ids coding in
  let reps_of = reps_memo_v vids in
  let out = (Domain.DLS.get scratch_key).sc_dedup in
  Hashtbl.clear out;
  let insts = ref [] in
  List.iter
    (fun cc ->
      let reps = reps_of cc.c_positions in
      let cand1 =
        if cc.c_t1 = [] then reps
        else List.filter (fun i -> sat_consts_v coding vids i cc.c_t1) reps
      in
      if cand1 <> [] then begin
        let cand2 =
          if cc.c_t2 = [] then reps
          else List.filter (fun i -> sat_consts_v coding vids i cc.c_t2) reps
        in
        List.iter
          (fun i1 ->
            List.iter
              (fun i2 ->
                if i1 <> i2 then
                  match inst_compiled_v coding nulls cc vids.(i1) vids.(i2) with
                  | None -> ()
                  | Some (key, inst) ->
                      (* pre-dedup: a constraint "fires" even when another
                         constraint already produced the same ground instance *)
                      (match fired with
                      | Some fd -> fd.(cc.c_idx) <- true
                      | None -> ());
                      if not (Hashtbl.mem out key) then begin
                        Hashtbl.add out key ();
                        insts := inst :: !insts
                      end)
              cand2)
          cand1
      end)
    sigma_c.s_cs;
  sort_insts !insts

(* The Σ instances an extension adds: with the value universes unchanged,
   instances over pairs of pre-existing tuples are exactly [base_insts],
   so only pairs touching a projection representative introduced by a
   tuple at index ≥ [n_base] can contribute anything new. On the
   framework's one-fresh-tuple extensions this is O(reps) instantiation
   calls per constraint instead of O(reps²). *)
let instantiate_sigma_delta sigma_c spec coding ~base_insts ~n_base =
  let vids = vid_matrix coding spec.Spec.entity in
  let nulls = null_ids coding in
  let reps_of = reps_memo_v vids in
  let seen = (Domain.DLS.get scratch_key).sc_dedup in
  Hashtbl.clear seen;
  List.iter
    (fun ic ->
      let key =
        var_of_fact_c coding ic.concl
        :: List.map (fun f -> var_of_fact_c coding f) ic.premise
      in
      Hashtbl.replace seen key ())
    base_insts;
  let out = ref [] in
  List.iter
    (fun cc ->
      let reps = reps_of cc.c_positions in
      let news = List.filter (fun i -> i >= n_base) reps in
      if news <> [] then begin
        let try_pair i1 i2 =
          if
            i1 <> i2
            && sat_consts_v coding vids i1 cc.c_t1
            && sat_consts_v coding vids i2 cc.c_t2
          then
            match inst_compiled_v coding nulls cc vids.(i1) vids.(i2) with
            | None -> ()
            | Some (key, inst) ->
                if not (Hashtbl.mem seen key) then begin
                  Hashtbl.replace seen key ();
                  out := inst :: !out
                end
        in
        let olds = List.filter (fun i -> i < n_base) reps in
        List.iter (fun o -> List.iter (fun n -> try_pair o n) news) olds;
        List.iter (fun n -> List.iter (fun r -> try_pair n r) reps) news
      end)
    sigma_c.s_cs;
  (* canonical order: the delta clauses a live session receives must not
     depend on hashing or pair-enumeration order *)
  sort_insts !out

(* ---- instantiating constant CFDs ---- *)

let relevant_gamma entity gamma =
  let schema = Entity.schema entity in
  let adoms =
    Array.init (Schema.arity schema) (fun a -> Entity.active_domain entity a)
  in
  List.mapi (fun k c -> (k, c)) gamma
  |> List.filter (fun (_, (c : Cfd.Constant_cfd.t)) ->
         List.for_all
           (fun (aname, v) ->
             let a = Schema.index schema aname in
             List.exists (Value.equal v) adoms.(a))
           c.Cfd.Constant_cfd.lhs)

(* Returns the implication instances and, for CFDs whose RHS constant the
   entity never takes, the vetoed premises (ω_X → ⊥). A CFD whose LHS
   mentions a value outside the active domain is vacuous on this entity
   (its pattern can never be the current tuple) and contributes nothing —
   the compiled-form equivalent of {!relevant_gamma}. *)
let instantiate_gamma gamma_c coding =
  let out = ref [] in
  let vetoes = ref [] in
  List.iter
    (fun gc ->
      let relevant =
        List.for_all
          (fun (a, v) ->
            match Coding.vid_opt coding a v with
            | Some id -> id < Coding.adom_size coding a
            | None -> false)
          gc.g_lhs
      in
      if relevant then begin
        let premise =
          (* ω_X: every other active-domain value sits below the pattern *)
          List.concat_map
            (fun (attr, v) ->
              let target = Coding.vid coding attr v in
              List.filter_map
                (fun lo -> if lo <> target then Some { attr; lo; hi = target } else None)
                (List.init (Coding.adom_size coding attr) Fun.id))
            gc.g_lhs
        in
        let battr, bval = gc.g_rhs in
        match Coding.vid_opt coding battr bval with
        | Some btarget ->
            for b = 0 to Coding.adom_size coding battr - 1 do
              if b <> btarget then
                out :=
                  {
                    premise;
                    concl = { attr = battr; lo = b; hi = btarget };
                    source = From_cfd gc.g_idx;
                  }
                  :: !out
            done
        | None ->
            (* the repair value never occurs: the pattern can never be the
               current tuple, unless the premise is already vacuous *)
            vetoes := (premise, From_cfd gc.g_idx) :: !vetoes
      end)
    gamma_c.g_cs;
  (List.rev !out, List.rev !vetoes)

(* ---- units from the currency orders of It and the null-lowest rule ---- *)

let order_units spec coding =
  let schema = Spec.schema spec in
  let entity = spec.Spec.entity in
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  let push f =
    if not (Hashtbl.mem seen f) then begin
      Hashtbl.add seen f ();
      out := (f, From_order) :: !out
    end
  in
  List.iter
    (fun { Spec.attr; lo; hi } ->
      let a = Schema.index schema attr in
      let v1 = Entity.value entity lo a and v2 = Entity.value entity hi a in
      if not (Value.equal v1 v2) then
        push { attr = a; lo = Coding.vid coding a v1; hi = Coding.vid coding a v2 })
    spec.Spec.orders;
  (* a null value is ranked lowest in its attribute's currency order *)
  for a = 0 to Schema.arity schema - 1 do
    let univ = Coding.universe coding a in
    Array.iteri
      (fun i v ->
        if Value.is_null v then
          Array.iteri (fun j w -> if j <> i && not (Value.is_null w) then push { attr = a; lo = i; hi = j }) univ)
      univ
  done;
  List.rev !out

(* Ω(Se) minus the Σ and Γ instantiations: units from the orders of It and
   the premise-free split. [sigma_insts] is the (canonically sorted) Σ
   instance list, computed either from scratch ([encode]) or by merging a
   delta ([extend]); the Γ parts are a function of the value universes
   alone, so [extend] reuses them verbatim whenever the universes are
   unchanged. *)
let assemble_parts spec coding ~sigma_insts ~gamma_imps ~vetoes =
  let units = order_units spec coding in
  let implications = sigma_insts @ gamma_imps in
  (* split premise-free implications into units *)
  let extra_units, implications =
    List.partition (fun ic -> ic.premise = []) implications
  in
  let units = units @ List.map (fun ic -> (ic.concl, ic.source)) extra_units in
  (units, implications, vetoes)

(* The clause rendering of the instance part, in reverse push order (kept
   stable so [extend] diffs clause-for-clause against a base encoding). *)
let instance_clauses coding (units, implications, vetoes) =
  let var f = var_of_fact_c coding f in
  let clauses = ref [] in
  List.iter (fun (f, _) -> clauses := [| Sat.Lit.pos (var f) |] :: !clauses) units;
  List.iter
    (fun ic ->
      let c =
        Array.of_list
          (Sat.Lit.pos (var ic.concl)
          :: List.map (fun f -> Sat.Lit.neg_of (var f)) ic.premise)
      in
      clauses := c :: !clauses)
    implications;
  List.iter
    (fun (premise, _) ->
      clauses := Array.of_list (List.map (fun f -> Sat.Lit.neg_of (var f)) premise) :: !clauses)
    vetoes;
  !clauses

(* Φ's structural axioms: transitivity, asymmetry (+ totality in exact
   mode) per attribute. Depends only on the coding and the mode — the part
   [extend] reuses verbatim across [Se ⊕ Ot] steps. *)
let structural_clauses coding mode =
  let schema = Coding.schema coding in
  let clauses = ref [] in
  let n_structural = ref 0 in
  for a = 0 to Schema.arity schema - 1 do
    let d = Array.length (Coding.universe coding a) in
    let v lo hi = var_of_fact_c coding { attr = a; lo; hi } in
    (* transitivity *)
    for i = 0 to d - 1 do
      for j = 0 to d - 1 do
        if j <> i then
          for k = 0 to d - 1 do
            if k <> i && k <> j then begin
              clauses :=
                [| Sat.Lit.neg_of (v i j); Sat.Lit.neg_of (v j k); Sat.Lit.pos (v i k) |]
                :: !clauses;
              incr n_structural
            end
          done
      done
    done;
    (* asymmetry, and totality in exact mode *)
    for i = 0 to d - 1 do
      for j = i + 1 to d - 1 do
        clauses := [| Sat.Lit.neg_of (v i j); Sat.Lit.neg_of (v j i) |] :: !clauses;
        incr n_structural;
        if mode = Exact then begin
          clauses := [| Sat.Lit.pos (v i j); Sat.Lit.pos (v j i) |] :: !clauses;
          incr n_structural
        end
      done
    done
  done;
  (!clauses, !n_structural)

(* The ground-instance part of Φ(Se) without any clause rendering: what a
   purely static analysis (Saturate, Analyze) needs. [p_sigma_fired.(k)]
   records whether constraint k produced any instance before global
   deduplication — distinct constraints can ground to identical instances,
   and "did σ_k fire at all" must not depend on which one won the dedup. *)
type parts = {
  p_coding : Coding.t;
  p_units : (fact * source) list;
  p_implications : iconstraint list;
  p_vetoes : (fact list * source) list;
  p_sigma_fired : bool array;
}

let parts ?sigma_c ?gamma_c spec =
  let schema = Spec.schema spec in
  let sigma_c = sigma_c_for schema spec sigma_c in
  let gamma_c = gamma_c_for schema spec gamma_c in
  let coding = Coding.build spec.Spec.entity [] in
  let fired = Array.make (List.length spec.Spec.sigma) false in
  let sigma_insts = instantiate_sigma ~fired sigma_c spec coding in
  let gamma_imps, gvetoes = instantiate_gamma gamma_c coding in
  let units, implications, vetoes =
    assemble_parts spec coding ~sigma_insts ~gamma_imps ~vetoes:gvetoes
  in
  {
    p_coding = coding;
    p_units = units;
    p_implications = implications;
    p_vetoes = vetoes;
    p_sigma_fired = fired;
  }

let parts_of_t enc =
  {
    p_coding = enc.coding;
    p_units = enc.units;
    p_implications = enc.implications;
    p_vetoes = enc.vetoes;
    p_sigma_fired = Array.make (List.length enc.spec.Spec.sigma) false;
  }

(* [structural_for tpl coding] is the structural-axiom block for [coding]'s
   universe sizes, from the template's size-keyed store. Built outside the
   lock on a miss; first-in wins (racing builders produce equal blocks: the
   block is a pure function of (mode, sizes)). *)
let structural_for tpl coding =
  let key = Coding.sizes coding in
  let found =
    Mutex.lock tpl.t_lock;
    let r = Size_tbl.find_opt tpl.t_structural key in
    Mutex.unlock tpl.t_lock;
    r
  in
  match found with
  | Some b -> (b.sb_clauses, b.sb_count)
  | None ->
      let clauses, count = structural_clauses coding tpl.t_mode in
      Mutex.lock tpl.t_lock;
      let b =
        match Size_tbl.find_opt tpl.t_structural key with
        | Some b -> b
        | None ->
            let b = { sb_clauses = clauses; sb_count = count } in
            Size_tbl.add tpl.t_structural key b;
            b
      in
      Mutex.unlock tpl.t_lock;
      (b.sb_clauses, b.sb_count)

let build_t ~mode ~sigma_c ~gamma_c ~template spec =
  let coding = Coding.build spec.Spec.entity [] in
  let sigma_insts = instantiate_sigma sigma_c spec coding in
  let gamma_imps, gvetoes = instantiate_gamma gamma_c coding in
  let ((units, implications, vetoes) as parts) =
    assemble_parts spec coding ~sigma_insts ~gamma_imps ~vetoes:gvetoes
  in
  let inst = instance_clauses coding parts in
  let structural, n_structural =
    match template with
    | Some tpl -> structural_for tpl coding
    | None -> structural_clauses coding mode
  in
  (* all literals are in range by construction: facts are coded over the
     very universes the variable space is built from. Instance clauses
     first: the structural block is then a shared physical tail — a
     template-served batch allocates no cons cells for it per entity. *)
  let cnf = Sat.Cnf.unsafe_make ~nvars:(Coding.nvars coding) (inst @ structural) in
  {
    spec;
    coding;
    mode;
    sigma_c;
    gamma_c;
    template;
    sigma_insts;
    gamma_imps;
    units;
    implications;
    vetoes;
    cnf;
    n_structural;
    structural;
  }

let encode ?(mode = Paper) ?sigma_c ?gamma_c spec =
  let schema = Spec.schema spec in
  let sigma_c = sigma_c_for schema spec sigma_c in
  let gamma_c = gamma_c_for schema spec gamma_c in
  build_t ~mode ~sigma_c ~gamma_c ~template:None spec

let template ?(mode = Paper) spec =
  let schema = Spec.schema spec in
  (* compile against the canonical interned lists, so [template_matches]
     reduces to two physical comparisons whatever spec the template was
     cut from *)
  let sigma, _ = Spec.intern_sigma spec.Spec.sigma in
  let gamma, _ = Spec.intern_gamma spec.Spec.gamma in
  {
    t_mode = mode;
    t_schema = schema;
    t_sigma_c = compile_sigma schema sigma;
    t_gamma_c = compile_gamma schema gamma;
    t_lock = Mutex.create ();
    t_structural = Size_tbl.create 8;
  }

let template_mode tpl = tpl.t_mode

let template_matches tpl spec =
  Schema.equal tpl.t_schema (Spec.schema spec)
  && fst (Spec.intern_sigma spec.Spec.sigma) == tpl.t_sigma_c.s_src
  && fst (Spec.intern_gamma spec.Spec.gamma) == tpl.t_gamma_c.g_src

let instantiate tpl spec =
  if template_matches tpl spec then
    build_t ~mode:tpl.t_mode ~sigma_c:tpl.t_sigma_c ~gamma_c:tpl.t_gamma_c
      ~template:(Some tpl) spec
  else
    (* a template for some other shape: fall back to direct compilation
       rather than produce a wrong encoding *)
    encode ~mode:tpl.t_mode spec

(* ---- incremental re-encoding for Se ⊕ Ot extensions ---- *)

let same_universes c1 c2 =
  Schema.equal (Coding.schema c1) (Coding.schema c2)
  &&
  let arity = Schema.arity (Coding.schema c1) in
  let rec attrs_equal a =
    a >= arity
    || (Coding.adom_size c1 a = Coding.adom_size c2 a
       &&
       let u1 = Coding.universe c1 a and u2 = Coding.universe c2 a in
       Array.length u1 = Array.length u2
       && (let rec vals i =
             i >= Array.length u1 || (Value.equal u1.(i) u2.(i) && vals (i + 1))
           in
           vals 0)
       && attrs_equal (a + 1))
  in
  attrs_equal 0

(* c1's universes are per-attribute prefixes of c2's: every old value
   keeps its id, so facts (and hence Σ instances) carry over verbatim.
   One exception is allowed to float: a trailing null in [u1] (the
   reserved slot {!Coding.build} appends when no tuple is null yet) may
   sit at a later id in [u2] — a fresh tuple's genuinely new value
   displaces the reservation. That is safe precisely because no carried-
   over Σ instance can mention a null id: [Constraint_ast.instantiate]
   drops null premise conjuncts and null conclusions outright. *)
let universes_prefix c1 c2 =
  Schema.equal (Coding.schema c1) (Coding.schema c2)
  &&
  let arity = Schema.arity (Coding.schema c1) in
  let rec attrs_ok a =
    a >= arity
    ||
    let u1 = Coding.universe c1 a and u2 = Coding.universe c2 a in
    let n1 = Array.length u1 in
    Array.length u1 <= Array.length u2
    && (let rec vals i =
          i >= n1
          || (i = n1 - 1 && Value.is_null u1.(i))
          || (Value.equal u1.(i) u2.(i) && vals (i + 1))
        in
        vals 0)
    && attrs_ok (a + 1)
  in
  attrs_ok 0

let same_list eq a b = a == b || List.equal eq a b

(* [spec] must be a pure extension of [base.spec]: same Σ and Γ, the old
   tuples a prefix of the new ones (extensions append), the old order
   edges a suffix of the new ones (extensions prepend). This is what
   guarantees Ω(base) ⊆ Ω(spec) clause-for-clause, which delta solving
   needs: a clause that disappeared would leave an incremental solver
   stronger than Φ(Se ⊕ Ot). *)
let pure_extension base_spec spec =
  same_list ( = ) base_spec.Spec.sigma spec.Spec.sigma
  && same_list ( = ) base_spec.Spec.gamma spec.Spec.gamma
  && (let bt = Entity.tuples base_spec.Spec.entity
      and nt = Entity.tuples spec.Spec.entity in
      let rec prefix a b =
        match (a, b) with
        | [], _ -> true
        | x :: a', y :: b' -> (x == y || x = y) && prefix a' b'
        | _ :: _, [] -> false
      in
      prefix bt nt)
  &&
  let k = List.length spec.Spec.orders - List.length base_spec.Spec.orders in
  k >= 0
  &&
  let rec drop n l = if n = 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t in
  same_list ( = ) (drop k spec.Spec.orders) base_spec.Spec.orders

type extension = Delta of t * Sat.Lit.t array list | Renumbered of t

let extend base spec =
  if not (pure_extension base.spec spec) then None
  else
    let coding' = Coding.build spec.Spec.entity [] in
    if not (universes_prefix base.coding coding') then None
    else begin
      (* old values keep their per-attribute ids, so the Σ instances of
         the base — the expensive quadratic sweep over projection pairs —
         carry over verbatim; only pairs the new tuples touch are swept *)
      let identical = same_universes base.coding coding' in
      let coding = if identical then base.coding else coding' in
      (* Σ/Γ are unchanged on a pure extension, so the compiled forms
         carry over (they depend only on the schema and the lists) *)
      let sigma_c = base.sigma_c and gamma_c = base.gamma_c in
      let n_base = List.length (Entity.tuples base.spec.Spec.entity) in
      let delta_insts =
        instantiate_sigma_delta sigma_c spec coding ~base_insts:base.sigma_insts ~n_base
      in
      let sigma_insts = sort_insts (List.rev_append delta_insts base.sigma_insts) in
      (* the Γ instances are a function of the value universes alone:
         identical universes reuse the base's parts verbatim *)
      let gamma_imps, gvetoes =
        if identical then (base.gamma_imps, base.vetoes) else instantiate_gamma gamma_c coding
      in
      let ((units, implications, vetoes) as parts) =
        assemble_parts spec coding ~sigma_insts ~gamma_imps ~vetoes:gvetoes
      in
      let inst = instance_clauses coding parts in
      if identical then begin
        (* variable numbering unchanged: the structural axioms carry over
           and a live solver only needs the delta clauses — unit clauses
           for fresh facts (new order edges, premise-free new Σ
           instances) plus the new Σ implications. Γ's part is a function
           of the unchanged universes and is identical on both sides, and
           pure extensions only add clauses, so the session stays sound. *)
        let cnf = Sat.Cnf.unsafe_make ~nvars:(Coding.nvars coding) (base.structural @ inst) in
        let var f = var_of_fact_c coding f in
        let base_unit_facts = Hashtbl.create 64 in
        List.iter (fun (f, _) -> Hashtbl.replace base_unit_facts f ()) base.units;
        let delta_units =
          List.filter_map
            (fun (f, _) ->
              if Hashtbl.mem base_unit_facts f then None
              else Some [| Sat.Lit.pos (var f) |])
            units
        in
        let delta_imps =
          List.filter_map
            (fun ic ->
              if ic.premise = [] then None
              else
                Some
                  (Array.of_list
                     (Sat.Lit.pos (var ic.concl)
                     :: List.map (fun f -> Sat.Lit.neg_of (var f)) ic.premise)))
            delta_insts
        in
        Some
          (Delta
             ( {
                 spec;
                 coding;
                 mode = base.mode;
                 sigma_c;
                 gamma_c;
                 template = base.template;
                 sigma_insts;
                 gamma_imps;
                 units;
                 implications;
                 vetoes;
                 cnf;
                 n_structural = base.n_structural;
                 structural = base.structural;
               },
               delta_units @ delta_imps ))
      end
      else begin
        (* a universe grew (e.g. the fresh tuple carries a value, or a
           null, the entity never took): variable numbers shift globally,
           so solvers must reload — but the Σ instances still carried
           over; the structural axioms come from the template's size-keyed
           store when there is one (batches of same-schema entities land
           on the same few size vectors), else are regenerated *)
        let structural, n_structural =
          match base.template with
          | Some tpl -> structural_for tpl coding
          | None -> structural_clauses coding base.mode
        in
        let cnf = Sat.Cnf.unsafe_make ~nvars:(Coding.nvars coding) (inst @ structural) in
        Some
          (Renumbered
             {
               spec;
               coding;
               mode = base.mode;
               sigma_c;
               gamma_c;
               template = base.template;
               sigma_insts;
               gamma_imps;
               units;
               implications;
               vetoes;
               cnf;
               n_structural;
               structural;
             })
      end
    end

let var_of_fact e f = var_of_fact_c e.coding f

let fact_of_var e v =
  let attr, lo, hi = Coding.decode e.coding v in
  { attr; lo; hi }

let pp_fact e ppf f =
  Format.fprintf ppf "%s: %a < %a"
    (Schema.name (Coding.schema e.coding) f.attr)
    Value.pp (Coding.value e.coding f.attr f.lo) Value.pp
    (Coding.value e.coding f.attr f.hi)
