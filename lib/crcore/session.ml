type handle = {
  label : string;
  config : Engine.config;
  cache : Engine.cache;
  m : Mutex.t;
  mutable eng : Engine.session;
  (* delta coalescing: arrivals buffer here and reach the engine as ONE
     pure extension at the next resolve/baseline/spec — k tuple arrivals
     between two resolves cost one [Encode.extend] (and at most one
     solver reload), not k *)
  mutable pending_tuples : Tuple.t list;  (* reversed arrival order *)
  mutable pending_orders : Spec.order_edge list;  (* reversed *)
  mutable last : Engine.result option;
  (* memoized (result, stats) of the latest resolve under the default
     (silent) user; valid only while no extension has been applied since —
     flush clears it. Resolution is deterministic for a fixed config, so
     an unchanged session serves repeated reads without touching the
     solver. *)
  mutable memo : (Engine.result * Engine.entity_stats) option;
  mutable resolves : int;
  (* counters carried over engine-session rebuilds (lint-rejected ingest):
     the replacement session starts its stats at zero, so the totals of the
     sessions it replaced live here *)
  mutable carried_delta : int;
  mutable carried_renumbered : int;
  mutable carried_impure : int;
  mutable carried_solvers : int;
  mutable carried_thits : int;
  mutable carried_tmisses : int;
  mutable carried_insts : int;
  mutable carried_sat : Sat.Solver.stats;
  mutable closed : bool;
}

(* lifetime totals of a handle, engine-session rebuilds included *)
type counters = {
  c_delta : int;
  c_renumbered : int;
  c_impure : int;
  c_solvers : int;
  c_thits : int;
  c_tmisses : int;
  c_insts : int;
  c_resolves : int;
  c_sat : Sat.Solver.stats;
}

let now () = Unix.gettimeofday ()

let locked h f =
  Mutex.lock h.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock h.m) f

let check_open h op = if h.closed then invalid_arg ("Session." ^ op ^ ": closed handle")

let create ?(config = Engine.default_config) ?cache ?(label = "session") spec =
  let cache = match cache with Some c -> c | None -> Engine.create_cache () in
  {
    label;
    config;
    cache;
    m = Mutex.create ();
    eng = Engine.create_session ~config ~cache ~label spec;
    pending_tuples = [];
    pending_orders = [];
    last = None;
    memo = None;
    resolves = 0;
    carried_delta = 0;
    carried_renumbered = 0;
    carried_impure = 0;
    carried_solvers = 0;
    carried_thits = 0;
    carried_tmisses = 0;
    carried_insts = 0;
    carried_sat = Sat.Solver.zero_stats;
    closed = false;
  }

let label h = h.label

(* apply the buffered arrivals as one pure extension; holds the lock *)
let flush h =
  if h.pending_tuples <> [] || h.pending_orders <> [] then begin
    let tuples = List.rev h.pending_tuples and orders = List.rev h.pending_orders in
    h.pending_tuples <- [];
    h.pending_orders <- [];
    h.memo <- None;
    if Engine.session_rejected h.eng then begin
      (* the rejected session holds no encoding to extend; a rebuild from
         the accumulated spec re-lints it — the extension may well cure
         the diagnostic (e.g. an asserted order breaking a forced cycle),
         and if not the fresh session is rejected again, harmlessly *)
      let old = h.eng in
      let spec = Engine.session_spec old in
      let entity =
        if tuples = [] then spec.Spec.entity
        else Entity.make (Spec.schema spec) (Entity.tuples spec.Spec.entity @ tuples)
      in
      let spec' =
        Spec.make entity ~orders:(orders @ spec.Spec.orders) ~sigma:spec.Spec.sigma
          ~gamma:spec.Spec.gamma
      in
      let st = Engine.session_stats old in
      h.carried_delta <- h.carried_delta + st.Engine.delta_extensions;
      h.carried_renumbered <- h.carried_renumbered + st.Engine.rebuilds_renumbered;
      h.carried_impure <- h.carried_impure + st.Engine.rebuilds_impure + 1;
      h.carried_solvers <- h.carried_solvers + st.Engine.solvers_built;
      h.carried_thits <- h.carried_thits + st.Engine.template_hits;
      h.carried_tmisses <- h.carried_tmisses + st.Engine.template_misses;
      h.carried_insts <- h.carried_insts + st.Engine.instantiations;
      h.carried_sat <- Sat.Solver.add_stats h.carried_sat st.Engine.solver;
      h.eng <- Engine.create_session ~config:h.config ~cache:h.cache ~label:h.label spec'
    end
    else Engine.ingest_session h.eng ~orders ~tuples ()
  end

let spec h =
  locked h (fun () ->
      flush h;
      Engine.session_spec h.eng)

let ingest h ?(orders = []) ?(tuples = []) () =
  locked h (fun () ->
      check_open h "ingest";
      h.pending_tuples <- List.rev_append tuples h.pending_tuples;
      h.pending_orders <- List.rev_append orders h.pending_orders)

let resolve ?user h =
  locked h (fun () ->
      check_open h "resolve";
      flush h;
      match (user, h.memo) with
      | None, Some cached ->
          (* nothing ingested since the last automatic resolve: the
             answer cannot have changed *)
          h.resolves <- h.resolves + 1;
          cached
      | _ ->
          Engine.refresh_budget h.eng;
          let u = Option.value user ~default:Framework.silent in
          let r, st = Engine.resolve_session h.eng ~user:u in
          h.last <- Some r;
          (* an interactive user's answers may differ next time; only the
             silent default is safe to memoize *)
          h.memo <- (if user = None then Some (r, st) else None);
          h.resolves <- h.resolves + 1;
          (r, st))

let baseline h strategy =
  locked h (fun () ->
      check_open h "baseline";
      flush h;
      Pick.run ~strategy (Engine.session_spec h.eng))

let last_result h = locked h (fun () -> h.last)
let stats h = locked h (fun () -> Engine.session_stats h.eng)
let resolves h = locked h (fun () -> h.resolves)
let close h = locked h (fun () -> h.closed <- true)
let is_closed h = locked h (fun () -> h.closed)

(* totals including engine sessions replaced by rejected-ingest rebuilds;
   used (under the handle lock) by Store accounting *)
let counters_unlocked h =
  let st = Engine.session_stats h.eng in
  {
    c_delta = h.carried_delta + st.Engine.delta_extensions;
    c_renumbered = h.carried_renumbered + st.Engine.rebuilds_renumbered;
    c_impure = h.carried_impure + st.Engine.rebuilds_impure;
    c_solvers = h.carried_solvers + st.Engine.solvers_built;
    c_thits = h.carried_thits + st.Engine.template_hits;
    c_tmisses = h.carried_tmisses + st.Engine.template_misses;
    c_insts = h.carried_insts + st.Engine.instantiations;
    c_resolves = h.resolves;
    c_sat = Sat.Solver.add_stats h.carried_sat st.Engine.solver;
  }

let create_handle = create

module Store = struct
  type entry = { h : handle; mutable gen : int; mutable last_used : float }

  type t = {
    config : Engine.config;
    cache : Engine.cache;
    max_sessions : int;
    ttl_s : float option;
    tbl : (string, entry) Hashtbl.t;
    (* LRU bookkeeping: a monotone generation counter; every touch stamps
       the entry and pushes (label, gen) — eviction pops until the head
       matches its entry's current stamp, so stale queue slots cost O(1)
       amortised per touch *)
    lru : (string * int) Queue.t;
    mutable gen : int;
    m : Mutex.t;
    mutable created : int;
    mutable reused : int;
    mutable evicted_lru : int;
    mutable evicted_ttl : int;
    mutable removed : int;
    (* counters of sessions no longer live *)
    mutable retired_resolves : int;
    mutable retired_delta : int;
    mutable retired_renumbered : int;
    mutable retired_impure : int;
    mutable retired_solvers : int;
    mutable retired_thits : int;
    mutable retired_tmisses : int;
    mutable retired_insts : int;
    mutable retired_sat : Sat.Solver.stats;
  }

  type stats = {
    live : int;
    created : int;
    reused : int;
    evicted_lru : int;
    evicted_ttl : int;
    removed : int;
    resolves : int;
    delta_extensions : int;
    rebuilds_renumbered : int;
    rebuilds_impure : int;
    solvers_built : int;
    template_hits : int;
    template_misses : int;
    instantiations : int;
    sat : Sat.Solver.stats;
  }

  let create ?(config = Engine.default_config) ?cache ?(max_sessions = 1024) ?ttl_s () =
    let cache = match cache with Some c -> c | None -> Engine.create_cache () in
    {
      config;
      cache;
      max_sessions = max 1 max_sessions;
      ttl_s;
      tbl = Hashtbl.create 64;
      lru = Queue.create ();
      gen = 0;
      m = Mutex.create ();
      created = 0;
      reused = 0;
      evicted_lru = 0;
      evicted_ttl = 0;
      removed = 0;
      retired_resolves = 0;
      retired_delta = 0;
      retired_renumbered = 0;
      retired_impure = 0;
      retired_solvers = 0;
      retired_thits = 0;
      retired_tmisses = 0;
      retired_insts = 0;
      retired_sat = Sat.Solver.zero_stats;
    }

  let config t = t.config

  let with_lock t f =
    Mutex.lock t.m;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

  let touch t (e : entry) =
    t.gen <- t.gen + 1;
    e.gen <- t.gen;
    e.last_used <- now ();
    Queue.push (e.h.label, e.gen) t.lru

  (* store lock held; takes the handle lock (never the reverse order) *)
  let retire t e =
    let c = locked e.h (fun () -> counters_unlocked e.h) in
    close e.h;
    t.retired_delta <- t.retired_delta + c.c_delta;
    t.retired_renumbered <- t.retired_renumbered + c.c_renumbered;
    t.retired_impure <- t.retired_impure + c.c_impure;
    t.retired_solvers <- t.retired_solvers + c.c_solvers;
    t.retired_thits <- t.retired_thits + c.c_thits;
    t.retired_tmisses <- t.retired_tmisses + c.c_tmisses;
    t.retired_insts <- t.retired_insts + c.c_insts;
    t.retired_resolves <- t.retired_resolves + c.c_resolves;
    t.retired_sat <- Sat.Solver.add_stats t.retired_sat c.c_sat

  let evict_lru t =
    let rec pop () =
      match Queue.take_opt t.lru with
      | None -> ()
      | Some (lbl, gen) -> (
          match Hashtbl.find_opt t.tbl lbl with
          | Some e when e.gen = gen ->
              Hashtbl.remove t.tbl lbl;
              retire t e;
              t.evicted_lru <- t.evicted_lru + 1
          | _ -> pop () (* stale slot: the entry was touched or dropped since *))
    in
    pop ()

  let find t lbl =
    with_lock t (fun () ->
        match Hashtbl.find_opt t.tbl lbl with
        | Some e ->
            touch t e;
            t.reused <- t.reused + 1;
            Some e.h
        | None -> None)

  let get_or_create t lbl ~spec =
    match find t lbl with
    | Some h -> (h, false)
    | None -> (
        (* encode outside the store lock: creation is the expensive part *)
        let h = create_handle ~config:t.config ~cache:t.cache ~label:lbl (spec ()) in
        with_lock t (fun () ->
            match Hashtbl.find_opt t.tbl lbl with
            | Some e ->
                (* lost the race: first-in wins *)
                touch t e;
                t.reused <- t.reused + 1;
                close h;
                (e.h, false)
            | None ->
                while Hashtbl.length t.tbl >= t.max_sessions do
                  evict_lru t
                done;
                let e = { h; gen = 0; last_used = 0. } in
                Hashtbl.replace t.tbl lbl e;
                touch t e;
                t.created <- t.created + 1;
                (h, true)))

  let remove t lbl =
    with_lock t (fun () ->
        match Hashtbl.find_opt t.tbl lbl with
        | Some e ->
            Hashtbl.remove t.tbl lbl;
            retire t e;
            t.removed <- t.removed + 1;
            true
        | None -> false)

  let sweep t =
    match t.ttl_s with
    | None -> 0
    | Some ttl ->
        with_lock t (fun () ->
            let cutoff = now () -. ttl in
            let stale =
              Hashtbl.fold
                (fun lbl e acc -> if e.last_used < cutoff then (lbl, e) :: acc else acc)
                t.tbl []
            in
            List.iter
              (fun (lbl, e) ->
                Hashtbl.remove t.tbl lbl;
                retire t e;
                t.evicted_ttl <- t.evicted_ttl + 1)
              stale;
            List.length stale)

  let clear t =
    with_lock t (fun () ->
        let all = Hashtbl.fold (fun lbl e acc -> (lbl, e) :: acc) t.tbl [] in
        List.iter
          (fun (lbl, e) ->
            Hashtbl.remove t.tbl lbl;
            retire t e;
            t.removed <- t.removed + 1)
          all;
        Queue.clear t.lru)

  let live t = with_lock t (fun () -> Hashtbl.length t.tbl)

  let stats t =
    with_lock t (fun () ->
        let d = ref t.retired_delta
        and rn = ref t.retired_renumbered
        and ri = ref t.retired_impure
        and s = ref t.retired_solvers
        and th = ref t.retired_thits
        and tm = ref t.retired_tmisses
        and ins = ref t.retired_insts
        and rv = ref t.retired_resolves
        and sa = ref t.retired_sat in
        Hashtbl.iter
          (fun _ e ->
            let c = locked e.h (fun () -> counters_unlocked e.h) in
            d := !d + c.c_delta;
            rn := !rn + c.c_renumbered;
            ri := !ri + c.c_impure;
            s := !s + c.c_solvers;
            th := !th + c.c_thits;
            tm := !tm + c.c_tmisses;
            ins := !ins + c.c_insts;
            rv := !rv + c.c_resolves;
            sa := Sat.Solver.add_stats !sa c.c_sat)
          t.tbl;
        {
          live = Hashtbl.length t.tbl;
          created = t.created;
          reused = t.reused;
          evicted_lru = t.evicted_lru;
          evicted_ttl = t.evicted_ttl;
          removed = t.removed;
          resolves = !rv;
          delta_extensions = !d;
          rebuilds_renumbered = !rn;
          rebuilds_impure = !ri;
          solvers_built = !s;
          template_hits = !th;
          template_misses = !tm;
          instantiations = !ins;
          sat = !sa;
        })

  let pp_stats ppf s =
    Format.fprintf ppf
      "@[<v>live %d (created %d, reused %d)@,evicted: lru %d, ttl %d, removed %d@,\
       resolves %d@,delta extensions %d, rebuilds %d (renumbered %d, impure %d)@,\
       solvers built %d@,templates: %d hit(s) / %d miss(es), %d instantiation(s)@,\
       sat: %a@]"
      s.live s.created s.reused s.evicted_lru s.evicted_ttl s.removed s.resolves
      s.delta_extensions
      (s.rebuilds_renumbered + s.rebuilds_impure)
      s.rebuilds_renumbered s.rebuilds_impure s.solvers_built s.template_hits
      s.template_misses s.instantiations Sat.Solver.pp_stats s.sat
end
