type stats = {
  sat_calls : int;
  probes : int;
  model_prunes : int;
  seeded : int;
  probes_avoided : int;
  reused_solver : bool;
  built_solver : bool;
  complete : bool;
}

let no_stats = {
  sat_calls = 0;
  probes = 0;
  model_prunes = 0;
  seeded = 0;
  probes_avoided = 0;
  reused_solver = false;
  built_solver = false;
  complete = true;
}

type t = { enc : Encode.t; od : Porder.Strict_order.t array; stats : stats }

let empty_od enc =
  let coding = enc.Encode.coding in
  let schema = Coding.schema coding in
  Array.init (Schema.arity schema) (fun a ->
      Porder.Strict_order.create (Array.length (Coding.universe coding a)))

let add_literal_to_od enc od lit =
  let v = Sat.Lit.var lit in
  let { Encode.attr; lo; hi } = Encode.fact_of_var enc v in
  (* a positive unit is the fact itself; a negative unit is read as the
     reversed pair, which is sound when completions are total orders *)
  let lo, hi = if Sat.Lit.sign lit then (lo, hi) else (hi, lo) in
  ignore (Porder.Strict_order.add od.(attr) lo hi)

(* ---- unit propagation over Φ(Se), shared by DeduceOrder and backbone ---- *)

(* Propagates to fixpoint and returns the assignment array ([1] true,
   [-1] false, [0] undecided) plus a conflict flag. Literals are deduped
   per clause first: occurrence counting decrements [n_active] once per
   occurrence of ¬l, so a duplicated literal would otherwise drive the
   count negative (or fire a bogus unit) on non-deduped input CNF. *)
let unit_propagate cnf =
  let nvars = cnf.Sat.Cnf.nvars in
  let clauses =
    List.map (fun c -> Array.to_list c |> List.sort_uniq compare |> Array.of_list)
      cnf.Sat.Cnf.clauses
    |> Array.of_list
  in
  let nclauses = Array.length clauses in
  let satisfied = Array.make nclauses false in
  let n_active = Array.make nclauses 0 in
  (* occurrence lists indexed by literal *)
  let occ = Array.make (2 * max nvars 1) [] in
  Array.iteri
    (fun ci c ->
      n_active.(ci) <- Array.length c;
      Array.iter (fun l -> occ.(l) <- ci :: occ.(l)) c)
    clauses;
  let assigns = Array.make (max nvars 1) 0 in
  let value_lit l =
    let a = assigns.(Sat.Lit.var l) in
    if Sat.Lit.sign l then a else -a
  in
  let queue = Queue.create () in
  Array.iter (fun c -> if Array.length c = 1 then Queue.add c.(0) queue) clauses;
  let conflict = ref false in
  while (not !conflict) && not (Queue.is_empty queue) do
    let l = Queue.pop queue in
    match value_lit l with
    | 1 -> () (* already known *)
    | -1 -> conflict := true (* invalid specification; caller checks first *)
    | _ ->
        assigns.(Sat.Lit.var l) <- (if Sat.Lit.sign l then 1 else -1);
        (* clauses containing l are satisfied *)
        List.iter (fun ci -> satisfied.(ci) <- true) occ.(l);
        (* clauses containing ¬l lose a literal *)
        List.iter
          (fun ci ->
            if not satisfied.(ci) then begin
              n_active.(ci) <- n_active.(ci) - 1;
              if n_active.(ci) = 1 then begin
                (* find the remaining unassigned literal *)
                let c = clauses.(ci) in
                let rest = Array.to_list c |> List.filter (fun l' -> value_lit l' = 0) in
                match rest with
                | [ l' ] -> Queue.add l' queue
                | [] -> conflict := true
                | _ -> assert false
              end
              else if n_active.(ci) = 0 then conflict := true
            end)
          occ.(Sat.Lit.negate l)
  done;
  (assigns, !conflict)

(* ---- DeduceOrder: unit propagation with occurrence lists ---- *)

let unit_conflict enc =
  let _assigns, conflict = unit_propagate enc.Encode.cnf in
  conflict

let deduce_order ?solver:_ ?budget:_ ?static:_ enc =
  let assigns, _conflict = unit_propagate enc.Encode.cnf in
  let od = empty_od enc in
  Array.iteri
    (fun v a ->
      if a = 1 then add_literal_to_od enc od (Sat.Lit.pos v)
      else if a = -1 then add_literal_to_od enc od (Sat.Lit.neg_of v))
    assigns;
  { enc; od; stats = no_stats }

let deduce_units enc =
  let assigns, _conflict = unit_propagate enc.Encode.cnf in
  let od = empty_od enc in
  Array.iteri
    (fun v a -> if a = 1 then add_literal_to_od enc od (Sat.Lit.pos v))
    assigns;
  (* complete = false: the positive units are a strict subset of the
     backbone in general, so consumers must stick to certain-value
     claims (true_value_id routes there on incomplete deductions) *)
  { enc; od; stats = { no_stats with complete = false } }

(* ---- shared solver plumbing for the SAT-based deducers ---- *)

let deduction_solver solver enc =
  match solver with
  | Some s -> (s, true)
  | None ->
      let s = Sat.Solver.create () in
      Sat.Solver.add_cnf s enc.Encode.cnf;
      (s, false)

(* ---- NaiveDeduce: one SAT call per variable ---- *)

let naive_deduce ?solver ?budget ?static:_ enc =
  let s, reused = deduction_solver solver enc in
  (match budget with Some b -> Sat.Solver.set_budget ~conflicts:b s | None -> ());
  let od = empty_od enc in
  let nvars = enc.Encode.cnf.Sat.Cnf.nvars in
  let sat_calls = ref 0 in
  let complete = ref true in
  let v = ref 0 in
  while !complete && !v < nvars do
    incr sat_calls;
    (match Sat.Solver.solve_limited ~assumptions:[ Sat.Lit.neg_of !v ] s with
    | Sat.Solver.Limited.Unsat -> add_literal_to_od enc od (Sat.Lit.pos !v)
    | Sat.Solver.Limited.Sat -> ()
    | Sat.Solver.Limited.Unknown -> complete := false);
    incr v
  done;
  {
    enc;
    od;
    stats =
      {
        sat_calls = !sat_calls;
        probes = !sat_calls;
        model_prunes = 0;
        seeded = 0;
        probes_avoided = 0;
        reused_solver = reused;
        built_solver = not reused;
        complete = !complete;
      };
  }

(* ---- backbone: model-intersection complete deduction ---- *)

(* Computes exactly NaiveDeduce's fact set — the positive backbone of
   Φ(Se), the variables true in every model — with far fewer solver calls:

   - the model of the preceding validity check (still saved on a reused
     session solver) bounds the candidate set: a variable false in any
     model cannot be backbone;
   - unit propagation seeds for free: positive units are backbone without
     a probe, negative units leave the candidate set;
   - each remaining candidate v is probed by one assumption solve of
     Φ ∧ ¬v; [Unsat] confirms the fact, and a [Sat] answer's model prunes
     every candidate it assigns false — typically many per call.

   A reused solver may hold extra clause layers (learnt clauses, MaxSAT
   selectors/relaxation from {!Maxsat.Exact.solve_groups_on}); all are
   satisfiable extensions of Φ(Se), so probe answers and model
   restrictions agree with Φ(Se) alone. *)
let backbone ?solver ?budget ?static enc =
  let cnf = enc.Encode.cnf in
  let nvars = cnf.Sat.Cnf.nvars in
  let s, reused = deduction_solver solver enc in
  (match budget with Some b -> Sat.Solver.set_budget ~conflicts:b s | None -> ());
  let sat_calls = ref 0 in
  let od = empty_od enc in
  let initial =
    if Sat.Solver.has_model s then Sat.Solver.Limited.Sat
    else begin
      incr sat_calls;
      Sat.Solver.solve_limited s
    end
  in
  match initial with
  | Sat.Solver.Limited.Sat ->
      let cand = Array.init nvars (Sat.Solver.model_value s) in
      let seeded = ref 0 and probes_avoided = ref 0 in
      (match static with
      | Some facts ->
          (* the caller's static saturation proved these level-0: adopt
             without probes and skip the whole unit-propagation pass (the
             O(|Φ|) occurrence-list build). Sound whenever every given
             variable is backbone; results match the propagation path
             exactly when the closure is complete (it then contains every
             unit-propagation fact, and propagation-refuted variables are
             false in the initial model, so they were never candidates) *)
          List.iter
            (fun v ->
              add_literal_to_od enc od (Sat.Lit.pos v);
              incr seeded;
              cand.(v) <- false)
            facts;
          probes_avoided := !seeded
      | None ->
          let assigns, conflict = unit_propagate cnf in
          if not conflict then
            Array.iteri
              (fun v a ->
                if a = 1 then begin
                  (* unit-propagation facts are backbone: adopt without a probe *)
                  add_literal_to_od enc od (Sat.Lit.pos v);
                  incr seeded;
                  cand.(v) <- false
                end
                else if a = -1 then cand.(v) <- false)
              assigns);
      let probes = ref 0 and model_prunes = ref 0 in
      let complete = ref true in
      let v = ref 0 in
      while !complete && !v < nvars do
        if cand.(!v) then begin
          incr probes;
          incr sat_calls;
          match Sat.Solver.solve_limited ~assumptions:[ Sat.Lit.neg_of !v ] s with
          | Sat.Solver.Limited.Unsat ->
              add_literal_to_od enc od (Sat.Lit.pos !v);
              cand.(!v) <- false
          | Sat.Solver.Limited.Sat ->
              (* v is not backbone; neither is any candidate this model
                 refutes — prune them all before the next probe *)
              let v = !v in
              for u = v to nvars - 1 do
                if cand.(u) && not (Sat.Solver.model_value s u) then begin
                  cand.(u) <- false;
                  if u > v then incr model_prunes
                end
              done
          | Sat.Solver.Limited.Unknown ->
              (* budget spent: stop probing. Everything adopted so far is a
                 proven fact (UP seed or Unsat probe), so the truncated
                 result is a sound subset of the full backbone. *)
              complete := false
        end;
        incr v
      done;
      {
        enc;
        od;
        stats =
          {
            sat_calls = !sat_calls;
            probes = !probes;
            model_prunes = !model_prunes;
            seeded = !seeded;
            probes_avoided = !probes_avoided;
            reused_solver = reused;
            built_solver = not reused;
            complete = !complete;
          };
      }
  | Sat.Solver.Limited.Unknown ->
      (* budget spent before the first model: nothing is known *)
      {
        enc;
        od;
        stats =
          { no_stats with sat_calls = !sat_calls; reused_solver = reused;
            built_solver = not reused; complete = false };
      }
  | Sat.Solver.Limited.Unsat ->
      (* unsatisfiable specification; callers check validity first *)
      {
        enc;
        od;
        stats = { no_stats with sat_calls = !sat_calls; reused_solver = reused;
                  built_solver = not reused };
      }

let lt d ~attr lo hi = Porder.Strict_order.lt d.od.(attr) lo hi

let n_facts d = Array.fold_left (fun acc o -> acc + Porder.Strict_order.n_pairs o) 0 d.od

let universe_maximal d a = Porder.Strict_order.maximal d.od.(a)

let candidates d a =
  (* V(A) of the paper: active-domain values not yet dominated in Od *)
  let nadom = Coding.adom_size d.enc.Encode.coding a in
  List.filter (fun v -> v < nadom) (universe_maximal d a)

(* [v] is proven above EVERY other universe value — a claim that survives
   any extension of the fact set (at most one value can qualify in a
   strict order), unlike active-domain domination, where a fact missing
   from an interrupted deduction can hide a second incomparable maximal
   (a CFD repair constant) that a completed run would surface. *)
let certain_value_id d a =
  let coding = d.enc.Encode.coding in
  let n = Array.length (Coding.universe coding a) in
  let dominating v =
    let ok = ref true in
    for u = 0 to n - 1 do
      if u <> v && not (lt d ~attr:a u v) then ok := false
    done;
    !ok
  in
  match List.filter dominating (universe_maximal d a) with
  | [ v ] -> Some v
  | _ -> None

let true_value_id d a =
  if not d.stats.complete then
    (* interrupted deduction: only universe-certain claims are sound *)
    certain_value_id d a
  else
    let coding = d.enc.Encode.coding in
    let nadom = Coding.adom_size coding a in
    let dominating v =
      let ok = ref true in
      for u = 0 to nadom - 1 do
        if u <> v && not (lt d ~attr:a u v) then ok := false
      done;
      !ok
    in
    (* the true value may be a repair constant outside the active domain,
       so search all universe-maximal values, not just V(A) *)
    match List.filter dominating (universe_maximal d a) with
    | [ v ] -> Some v
    | _ -> None

let true_values d =
  let coding = d.enc.Encode.coding in
  let arity = Schema.arity (Coding.schema coding) in
  Array.init arity (fun a ->
      Option.map (fun id -> Coding.value coding a id) (true_value_id d a))

let certain_values d =
  let coding = d.enc.Encode.coding in
  let arity = Schema.arity (Coding.schema coding) in
  Array.init arity (fun a ->
      Option.map (fun id -> Coding.value coding a id) (certain_value_id d a))

let known_attrs d =
  let tv = true_values d in
  List.filter (fun a -> tv.(a) <> None) (List.init (Array.length tv) Fun.id)
