(** Static analysis ("lint") of specifications [Se = (It, Σ, Γ)].

    Satisfiability of a specification is NP-complete (Theorem 1 of the
    paper), but most broken specifications fail for reasons decidable in
    polynomial time: a cyclic currency order, constraint instances whose
    ground closure already contradicts asymmetry, constant CFDs forced
    into conflict by the entity's active domains. This pass finds those —
    plus likely-misuse warnings and redundancy notes — without touching
    the SAT solver, so {!Engine} can skip the whole
    [Instantiation]/[ConvertToCNF]/solve cycle on statically-unsat
    specifications and [crsolve lint] can explain {e why} a specification
    is broken instead of reporting a bare "INVALID".

    Diagnostic codes are stable:

    - [E0xx] {b errors} — the specification provably has no valid
      completion ({!Validity.is_valid} is guaranteed [false]; the qcheck
      soundness property in [test_analyze] enforces this):
      {ul
       {- [E001] — an attribute's explicit currency order [≺_Ai] is cyclic
          at the value level.}
       {- [E002] — the ground closure is contradictory: instantiating
          Σ-constraints whose comparison predicates are decidable from
          tuple constants, closing under transitivity and firing
          instances/CFDs whose premises are already derived yields a
          value-currency cycle, or fires a CFD that can never be
          satisfied.}
       {- [E003] — two constant CFDs whose LHS patterns are forced by
          singleton active domains demand contradictory current values for
          the same attribute.}
       {- [E004] — a constant CFD's LHS pattern is forced by singleton
          active domains but its RHS constant never occurs in the entity:
          the current tuple can never satisfy it.}
       {- [E005] — the {!Saturate} fixpoint refutes the specification
          statically; the message carries the full derivation chain
          (certificate) of the contradiction.}}
    - [W0xx] {b warnings} — likely misuse; the specification may still be
      satisfiable:
      {ul
       {- [W001] — dead CFD: an LHS pattern constant never occurs in the
          entity, so the CFD can never fire (cf. {!Encode.relevant_gamma}).}
       {- [W002] — veto CFD: the RHS pattern constant never occurs in the
          entity, so whenever the LHS pattern is most current the CFD is
          violated — it only ever {e forbids} completions.}
       {- [W003] — vacuous Σ-constraint: no ordered tuple pair yields an
          instance (the premise is unsatisfiable over the entity's values,
          or the conclusion always relates equal values).}
       {- [W004] — duplicate order edge: the same tuple-level edge is
          listed more than once.}
       {- [W005] — reflexive-after-closure order edge: the edge's tuples
          hold equal values on the attribute, so the value-level fact is
          reflexive and the encoding drops it.}
       {- [W006] — possibly conflicting CFDs: unifiable LHS patterns over
          the entity's values with contradictory RHS for the same
          attribute (not provably unsatisfiable — the current tuple may
          avoid the patterns).}
       {- [W007] — a Σ-constraint is subsumed on this entity: every one
          of its ground instances is derivable ({!Saturate.derives}) from
          the closure of the other constraints and the explicit orders.}}
    - [I0xx] {b info} — redundancy:
      {ul
       {- [I001] — a Σ-constraint is subsumed by another (same conclusion,
          sub-conjunction premise; duplicates included).}
       {- [I002] — a constant CFD is subsumed by another (same RHS
          pattern, sub-pattern LHS; duplicates included).}
       {- [I003] — an order edge is implied by the transitive closure of
          the remaining explicit edges.}
       {- [I004] — an order edge is derivable from Σ/Γ and the remaining
          units: the static closure is unchanged without it.}} *)

type severity = Error | Warning | Info

(** What a diagnostic is about; [Sigma]/[Gamma] carry the index of the
    constraint in the specification's list. *)
type subject =
  | Whole
  | Attr of string
  | Order_edge of Spec.order_edge
  | Sigma of int
  | Gamma of int

type diagnostic = {
  code : string;  (** stable: ["E001"] .. ["I003"] *)
  severity : severity;
  subject : subject;
  message : string;
  span : Currency.Parser.span option;
      (** source span of the offending constraint text, when the caller
          parsed Σ with {!Currency.Parser.parse_many_spanned} *)
}

(** [analyze ?errors_only ?sigma_spans spec] runs every check and returns
    diagnostics sorted errors-first (then by code, then by subject).
    [sigma_spans], if given, maps Σ indices to source spans; shorter
    arrays are fine (missing entries get no span). [errors_only] (default
    [false]) skips the warning and redundancy checks and reports E-level
    diagnostics only; once a cheap check (E001/E003/E004) has proven the
    specification unsatisfiable the expensive Σ-instantiation and
    ground-closure work is skipped too, so the result is a subset of the
    full report's errors that is non-empty exactly when the full report
    has any — all the {!Engine} pre-phase needs; the error list is also
    deduplicated to one diagnostic per [(code, subject)] pair.
    Polynomial in the size of the specification. *)
val analyze :
  ?errors_only:bool ->
  ?sigma_spans:Currency.Parser.span option array ->
  Spec.t ->
  diagnostic list

val errors : diagnostic list -> diagnostic list
val warnings : diagnostic list -> diagnostic list
val has_errors : diagnostic list -> bool

(** [max_severity ds] is the worst severity present, [None] on a clean
    report; drives [crsolve lint]'s exit code. *)
val max_severity : diagnostic list -> severity option

val severity_to_string : severity -> string
val pp_severity : Format.formatter -> severity -> unit

(** [pp_subject spec ppf subject] renders the subject with the
    constraint's own text (e.g. [Σ#2 'prec(status) -> prec(job)']). *)
val pp_subject : Spec.t -> Format.formatter -> subject -> unit

(** [pp_diagnostic spec ppf d] is a one-line human rendering:
    [code severity: message (subject) [span]]. *)
val pp_diagnostic : Spec.t -> Format.formatter -> diagnostic -> unit
