(** The traditional conflict-resolution baseline of the experiments: for
    each attribute, pick one of the occurring values.

    The paper favours [Pick] by letting it use the comparison-only
    currency constraints (those whose premise has no [≺] predicate, like
    ϕ1–ϕ3 of the NBA data): it picks uniformly among values that are not
    less current than any other under those constraints. *)

type strategy =
  | Random        (** uniform over the active domain *)
  | Favoured      (** the paper's Pick: uniform over maximal values w.r.t.
                      comparison-only constraints *)
  | Max           (** the largest value ({!Value.total_compare}) *)
  | Min           (** the smallest value *)
  | First         (** the first occurrence *)
  | Last_update_wins
      (** the BDR/PGD multi-master default: tuple order is arrival order,
          and the newest arrival's value wins — per attribute, the last
          non-null occurrence. No currency inference at all; the cheap
          baseline conflict streams are usually resolved with. *)
  | Accept_local
      (** BDR's [accept_local]/first-writer policy: the first-arrived
          (local) tuple's value wins per attribute, falling through to the
          next arrival only where the local value is null. *)

(** Protocol/CLI names: ["random"], ["favoured"], ["max"], ["min"],
    ["first"], ["last_update_wins"], ["accept_local"]. *)
val strategy_to_string : strategy -> string

val strategy_of_string : string -> strategy option
(** Accepts the {!strategy_to_string} names plus the BDR shorthands
    ["lww"] and ["local"]. *)

(** [run ?seed ?strategy spec] resolves every attribute; never interacts,
    never fails. Default strategy [Favoured], the paper's baseline. *)
val run : ?seed:int -> ?strategy:strategy -> Spec.t -> Value.t array
