type strategy = Random | Favoured | Max | Min | First | Last_update_wins | Accept_local

let strategy_to_string = function
  | Random -> "random"
  | Favoured -> "favoured"
  | Max -> "max"
  | Min -> "min"
  | First -> "first"
  | Last_update_wins -> "last_update_wins"
  | Accept_local -> "accept_local"

let strategy_of_string = function
  | "random" -> Some Random
  | "favoured" -> Some Favoured
  | "max" -> Some Max
  | "min" -> Some Min
  | "first" -> Some First
  | "last_update_wins" | "lww" -> Some Last_update_wins
  | "accept_local" | "local" -> Some Accept_local
  | _ -> None

let comparison_only (c : Currency.Constraint_ast.t) =
  List.for_all
    (function Currency.Constraint_ast.Prec _ -> false | _ -> true)
    c.Currency.Constraint_ast.premise

(* value-level facts derivable from comparison-only constraints alone *)
let favoured_order spec =
  let schema = Spec.schema spec in
  let entity = spec.Spec.entity in
  let coding = Coding.build entity [] in
  let orders =
    Array.init (Schema.arity schema) (fun a ->
        Porder.Strict_order.create (Array.length (Coding.universe coding a)))
  in
  (* null-lowest, matching the encoding's unit clauses: neither a genuine
     nor a reserved null (see {!Coding.build}) can be favoured while the
     attribute has any other value *)
  for a = 0 to Schema.arity schema - 1 do
    let univ = Coding.universe coding a in
    Array.iteri
      (fun i v ->
        if Value.is_null v then
          Array.iteri
            (fun j w ->
              if j <> i && not (Value.is_null w) then
                ignore (Porder.Strict_order.add orders.(a) i j))
            univ)
      univ
  done;
  let tuples = Entity.tuples entity in
  List.iter
    (fun c ->
      if comparison_only c then
        List.iter
          (fun s1 ->
            List.iter
              (fun s2 ->
                if not (s1 == s2) then
                  match Currency.Constraint_ast.instantiate c s1 s2 with
                  | Some { Currency.Constraint_ast.prec_premises = []; conclusion = (name, v1, v2) } ->
                      let a = Schema.index schema name in
                      ignore
                        (Porder.Strict_order.add orders.(a) (Coding.vid coding a v1)
                           (Coding.vid coding a v2))
                  | _ -> ())
              tuples)
          tuples)
    spec.Spec.sigma;
  (coding, orders)

let run ?(seed = 17) ?(strategy = Favoured) spec =
  let rng = Random.State.make [| seed |] in
  let schema = Spec.schema spec in
  let entity = spec.Spec.entity in
  let arity = Schema.arity schema in
  match strategy with
  | Favoured ->
      let coding, orders = favoured_order spec in
      Array.init arity (fun a ->
          let maximal = Porder.Strict_order.maximal orders.(a) in
          (* restrict to values that actually occur *)
          let nadom = Coding.adom_size coding a in
          let occurring = List.filter (fun v -> v < nadom) maximal in
          (* the reserved null is part of the adom prefix but never a
             sensible pick: fall back to it only when nothing else exists *)
          let non_null =
            List.filter (fun v -> not (Value.is_null (Coding.value coding a v)))
          in
          let pool =
            match non_null occurring with
            | [] -> (
                match non_null (List.init nadom Fun.id) with
                | [] -> List.init nadom Fun.id
                | l -> l)
            | l -> l
          in
          Coding.value coding a (List.nth pool (Random.State.int rng (List.length pool))))
  | Random ->
      Array.init arity (fun a ->
          let adom = Entity.active_domain entity a in
          List.nth adom (Random.State.int rng (List.length adom)))
  | Max ->
      Array.init arity (fun a ->
          List.fold_left
            (fun acc v -> if Value.total_compare v acc > 0 then v else acc)
            Value.Null
            (Entity.active_domain entity a))
  | Min ->
      Array.init arity (fun a ->
          match Entity.active_domain entity a with
          | [] -> Value.Null
          | v :: rest ->
              List.fold_left (fun acc w -> if Value.total_compare w acc < 0 then w else acc) v rest)
  | First -> Array.init arity (fun a -> Entity.value entity 0 a)
  | Last_update_wins ->
      (* tuple order is arrival order: per attribute, the newest non-null
         occurrence wins (falling back to null when the column is empty) *)
      let newest_first = List.rev (Entity.tuples entity) in
      Array.init arity (fun a ->
          match
            List.find_opt (fun t -> not (Value.is_null (Tuple.get t a))) newest_first
          with
          | Some t -> Tuple.get t a
          | None -> Value.Null)
  | Accept_local ->
      (* the first-arrived (local) tuple wins; nulls fall through to the
         next arrival, as a replica would fill columns it never wrote *)
      let oldest_first = Entity.tuples entity in
      Array.init arity (fun a ->
          match
            List.find_opt (fun t -> not (Value.is_null (Tuple.get t a))) oldest_first
          with
          | Some t -> Tuple.get t a
          | None -> Value.Null)
