type rule = { x : (int * int) list; b : int; bval : int }

type suggestion = {
  attrs : int list;
  candidates : (int * Value.t list) list;
  derivable : int list;
  clique_size : int;
  repaired_clique_size : int;
  clique_optimal : bool;
  repair_optimal : bool;
}

type repair = Exact_maxsat | Walksat

(* ---- TrueDer ---- *)

let known_vid coding known a =
  match known.(a) with None -> None | Some v -> Coding.vid_opt coding a v

(* A premise fact (a, lo, hi) supports a rule when assuming [hi] as the
   true value of [a] makes the fact hold: [lo] must be an active-domain
   value (so it is dominated by the maximum) and [hi] must still be a
   plausible true value of [a]. *)
let fact_usable coding candidates known (f : Encode.fact) =
  f.Encode.lo < Coding.adom_size coding f.Encode.attr
  &&
  match known_vid coding known f.Encode.attr with
  | Some v -> v = f.Encode.hi
  | None -> List.mem f.Encode.hi candidates.(f.Encode.attr)

let rules_from_cfds d ~known candidates =
  let enc = d.Deduce.enc in
  let coding = enc.Encode.coding in
  let schema = Coding.schema coding in
  List.filter_map
    (fun (c : Cfd.Constant_cfd.t) ->
      let bname, bval = c.Cfd.Constant_cfd.rhs in
      let b = Schema.index schema bname in
      if known.(b) <> None then None
      else
        match Coding.vid_opt coding b bval with
        | None -> None
        | Some bid when not (List.mem bid candidates.(b)) -> None
        | Some bid ->
            let rec build acc = function
              | [] -> Some { x = List.sort compare acc; b; bval = bid }
              | (aname, v) :: rest -> (
                  let a = Schema.index schema aname in
                  match Coding.vid_opt coding a v with
                  | None -> None (* pattern constant foreign to this entity *)
                  | Some vid -> (
                      match known_vid coding known a with
                      | Some w -> if w = vid then build acc rest else None
                      | None ->
                          if List.mem vid candidates.(a) then build ((a, vid) :: acc) rest
                          else None))
            in
            build [] c.Cfd.Constant_cfd.lhs)
    enc.Encode.spec.Spec.gamma

let rules_from_constraints d ~known candidates =
  let enc = d.Deduce.enc in
  let coding = enc.Encode.coding in
  let arity = Schema.arity (Coding.schema coding) in
  (* pool: (B, lo, hi) -> instance constraints with that conclusion *)
  let pool = Hashtbl.create 256 in
  List.iter
    (fun (ic : Encode.iconstraint) ->
      match ic.Encode.source with
      | Encode.From_constraint _ ->
          let f = ic.Encode.concl in
          let key = (f.Encode.attr, f.Encode.lo, f.Encode.hi) in
          Hashtbl.add pool key ic
      | _ -> ())
    enc.Encode.implications;
  let rules = ref [] in
  for b = 0 to arity - 1 do
    if known.(b) = None then
      List.iter
        (fun bid ->
          (* cover U(B,b): every other candidate must be derivably below *)
          let uncovered = List.filter (fun v -> v <> bid) candidates.(b) in
          let assignments = Hashtbl.create 8 in
          let compatible (f : Encode.fact) =
            fact_usable coding candidates known f
            && (f.Encode.attr <> b || f.Encode.hi = bid)
            &&
            match Hashtbl.find_opt assignments f.Encode.attr with
            | Some w -> w = f.Encode.hi
            | None -> true
          in
          let commit (f : Encode.fact) =
            if f.Encode.attr <> b then Hashtbl.replace assignments f.Encode.attr f.Encode.hi
          in
          let cover bi =
            (* already below b in Od counts as covered *)
            Deduce.lt d ~attr:b bi bid
            ||
            let phis = Hashtbl.find_all pool (b, bi, bid) in
            match
              List.find_opt (fun ic -> List.for_all compatible ic.Encode.premise) phis
            with
            | Some ic ->
                List.iter commit ic.Encode.premise;
                true
            | None -> false
          in
          if List.for_all cover uncovered then begin
            let x =
              Hashtbl.fold (fun a v acc -> (a, v) :: acc) assignments []
              |> List.sort compare
            in
            rules := { x; b; bval = bid } :: !rules
          end)
        candidates.(b)
  done;
  List.rev !rules

let derive_rules d ~known =
  let coding = d.Deduce.enc.Encode.coding in
  let arity = Schema.arity (Coding.schema coding) in
  let candidates = Array.init arity (fun a -> Deduce.candidates d a) in
  let all = rules_from_cfds d ~known candidates @ rules_from_constraints d ~known candidates in
  (* drop premise-free duplicates and exact duplicates *)
  List.sort_uniq compare all

(* ---- CompGraph ---- *)

let rule_map r = List.sort compare ((r.b, r.bval) :: r.x)

let maps_agree m1 m2 =
  (* both sorted by attribute *)
  let rec go l1 l2 =
    match (l1, l2) with
    | [], _ | _, [] -> true
    | (a1, v1) :: r1, (a2, v2) :: r2 ->
        if a1 < a2 then go r1 l2
        else if a2 < a1 then go l1 r2
        else v1 = v2 && go r1 r2
  in
  go m1 m2

let compatibility_graph rules =
  let arr = Array.of_list rules in
  let n = Array.length arr in
  let maps = Array.map rule_map arr in
  let g = Clique.Ugraph.create n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if arr.(i).b <> arr.(j).b && maps_agree maps.(i) maps.(j) then
        Clique.Ugraph.add_edge g i j
    done
  done;
  g

(* ---- GetSug ---- *)

(* The clique embeds assumed true values; a node's assumption group is the
   set of unit clauses saying its values dominate their active domains. *)
let node_group coding (r : rule) =
  List.concat_map
    (fun (a, v) ->
      List.filter_map
        (fun u ->
          if u <> v then
            Some [| Sat.Lit.pos (Coding.var_of coding ~attr:a u v) |]
          else None)
        (List.init (Coding.adom_size coding a) Fun.id))
    ((r.b, r.bval) :: r.x)

(* Returns the indices (into [clique_rules]) of the nodes kept after
   conflict repair: all of them when the embedded values are jointly
   consistent with Φ(Se), otherwise a maximum consistent subset found by
   group MaxSAT (or WalkSAT local search). *)
let repair_clique ?solver repair enc clique_rules =
  let coding = enc.Encode.coding in
  let groups = List.map (node_group coding) clique_rules in
  let s =
    (* an incremental session solver already holding Φ(Se) skips the
       clause reload; assumption solving leaves it reusable afterwards *)
    match solver with
    | Some s -> s
    | None ->
        let s = Sat.Solver.create () in
        Sat.Solver.add_cnf s enc.Encode.cnf;
        s
  in
  let assumptions = List.map (fun c -> c.(0)) (List.concat groups) in
  if clique_rules = [] then ([], true)
  else
    match Sat.Solver.solve_limited ~assumptions s with
    | Sat.Solver.Limited.Sat -> (List.mapi (fun i _ -> i) clique_rules, true)
    | Sat.Solver.Limited.Unknown ->
        (* conflict budget spent before the consistency of the embedded
           values could be confirmed: keep nothing rather than guess — the
           engine's ladder then stops the interaction round anyway *)
        ([], false)
    | Sat.Solver.Limited.Unsat -> (
        match repair with
        | Exact_maxsat -> (
            (* layer the relaxation/totalizer onto [s] itself — the
               session when one was passed, the local solver otherwise:
               no CNF reload, the added clauses are satisfiable
               extensions (the session stays sound for later
               validity/deduce solves), and the lex-first kept subset is
               deterministic whichever solver served the call *)
            match Maxsat.Exact.solve_groups_on ~solver:s ~groups with
            | Some (kept, optimal) -> (kept, optimal)
            | None -> ([], true))
        | Walksat -> (
            match Maxsat.Walksat.solve ~hard:enc.Encode.cnf ~soft:(List.concat groups) () with
            | None -> ([], false)
            | Some { Maxsat.Walksat.model; _ } ->
                ( List.mapi (fun i g -> (i, g)) groups
                  |> List.filter (fun (_, g) ->
                         List.for_all (fun c -> Sat.Cnf.eval_clause model c) g)
                  |> List.map fst,
                  (* local search: no optimality certificate *)
                  false )))

let suggest ?(repair = Exact_maxsat) ?(clique_threshold = 400) ?solver d ~known =
  let enc = d.Deduce.enc in
  let coding = enc.Encode.coding in
  let arity = Schema.arity (Coding.schema coding) in
  let rules = derive_rules d ~known in
  let g = compatibility_graph rules in
  let clique_r = Clique.Maxclique.find_r ~exact_threshold:clique_threshold g in
  let clique_ids = clique_r.Clique.Maxclique.clique in
  let arr = Array.of_list rules in
  let clique_rules = List.map (fun i -> arr.(i)) clique_ids in
  let kept, repair_optimal = repair_clique ?solver repair enc clique_rules in
  let kept_rules = List.map (fun i -> List.nth clique_rules i) kept in
  let derivable = List.sort_uniq compare (List.map (fun r -> r.b) kept_rules) in
  let unknown =
    List.filter (fun a -> known.(a) = None) (List.init arity Fun.id)
  in
  let asked =
    match List.filter (fun a -> not (List.mem a derivable)) unknown with
    | [] -> unknown (* degenerate: fall back to asking everything unknown *)
    | l -> l
  in
  let cand_values a =
    List.map (Coding.value coding a) (Deduce.candidates d a)
  in
  {
    attrs = asked;
    candidates = List.map (fun a -> (a, cand_values a)) asked;
    derivable;
    clique_size = List.length clique_rules;
    repaired_clique_size = List.length kept_rules;
    clique_optimal = clique_r.Clique.Maxclique.optimal;
    repair_optimal;
  }

let pp_rule d ppf r =
  let coding = d.Deduce.enc.Encode.coding in
  let schema = Coding.schema coding in
  let pp_bind ppf (a, v) =
    Format.fprintf ppf "%s = %a" (Schema.name schema a) Value.pp (Coding.value coding a v)
  in
  Format.fprintf ppf "(%a) -> %a"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_bind)
    r.x pp_bind (r.b, r.bval)
