(** Deterministic fault injection at the engine's phase boundaries.

    Test-only hooks, compiled in unconditionally: the disarmed fast path
    is a single atomic read per phase, so production batches pay nothing
    measurable. The {!Engine} consults this module immediately before its
    encode / solve / deduce / maxsat phases; an armed plan can make the
    Nth such crossing of a given entity raise, burn conflict budget, or
    force a budget-[Unknown] answer.

    Determinism is the design constraint (the [test_robustness] suite
    requires identical outcomes at [jobs = 1] and [jobs = 4]): hit
    counters are kept per entity (keyed by the batch label), never
    globally, so firing does not depend on how entities interleave across
    domains. *)

(** Injection points — one per engine phase that does real work. *)
type point = Encode | Solve | Deduce | Maxsat

type action =
  | Raise of string
      (** raise {!Injected} with this message (simulates a crash) *)
  | Burn of int
      (** consume this many conflicts of the entity's budget without
          solving (simulates pathological solver work); a no-op when the
          entity has no conflict budget *)
  | Exhaust
      (** make the phase answer as if its conflict budget were spent
          (simulates a hang cut short by the budget), whether or not a
          budget is configured *)

(** A planned fault: fire [action] on the [nth] (1-based) crossing of
    [point] by the entity labelled [label] ([None] matches any entity,
    including single {!Engine.resolve} calls that have no label). *)
type rule = { label : string option; point : point; nth : int; action : action }

(** The exception raised by [Raise] actions. *)
exception Injected of string

(** [arm rules] installs the plan (replacing any previous one). Call from
    the main domain before starting a batch; the plan must not change
    while a batch runs. *)
val arm : rule list -> unit

(** [disarm ()] removes the plan; always pair with [arm] (e.g. via
    [Fun.protect]) so a failing test cannot poison later ones. *)
val disarm : unit -> unit

val armed : unit -> bool

(** Per-entity hit counters; created by the engine for each resolution. *)
type ctx

val make : label:string option -> ctx

(** [fire ctx point] records one crossing of [point] and returns the
    action to perform, if any. [None] (the common case, and always when
    disarmed) means proceed normally. *)
val fire : ctx -> point -> action option

val point_to_string : point -> string
