(** The interactive conflict-resolution framework of Fig. 4: validity
    check → true-value deduction → (done?) → suggestion → user input →
    extend the specification → repeat. *)

(** What the user (or an oracle standing in for one) answers to a
    suggestion: true values for a subset of the suggested attributes,
    by name. An empty answer stops the loop. *)
type user = Rules.suggestion -> schema:Schema.t -> (string * Value.t) list

(** [oracle ?max_answers truth] simulates the paper's experimental setup:
    given the ground-truth tuple of the entity, answer a suggestion with
    the true values of (up to [max_answers] of) the suggested attributes
    ("some with new values", i.e. possibly outside the active domain).
    The paper notes users "do not have to enter values for all attributes
    in A"; a small [max_answers] models that limited effort and is what
    makes multiple interaction rounds meaningful. Default: answer all. *)
val oracle : ?max_answers:int -> Tuple.t -> user

(** A user that never answers; the framework then reports whatever is
    derivable automatically (the 0-interaction rows of Fig. 8(e,i,m)). *)
val silent : user

(** Cumulative wall-clock split across the framework's phases, for the
    Fig. 8(c)/(d) breakdowns. *)
type timings = { mutable validity : float; mutable deduce : float; mutable suggest : float }

type outcome = {
  resolved : Value.t option array;
      (** true values per attribute position at the end of the run *)
  valid : bool;   (** [false] when some (extended) specification was invalid *)
  rounds : int;   (** number of user interactions consumed *)
  per_round_known : int list;
      (** number of attributes resolved after 0, 1, ... rounds *)
  timings : timings;
}

(** [resolve ?mode ?deduce ?repair ?max_rounds ~user spec] runs the loop.
    [deduce] selects the deduction engine (default {!Deduce.backbone},
    matching {!Engine.default_config}; this entry point is
    non-incremental, so no solver is ever passed to it); [max_rounds]
    defaults to 5. *)
val resolve :
  ?mode:Encode.mode ->
  ?deduce:
    (?solver:Sat.Solver.t -> ?budget:int -> ?static:int list -> Encode.t -> Deduce.t) ->
  ?repair:Rules.repair ->
  ?max_rounds:int ->
  user:user ->
  Spec.t ->
  outcome
