(* Static currency deduction by saturation (see saturate.mli for the
   soundness/completeness argument). Every rule is the unit-propagation
   reflection of a clause family of Φ(Se), so the closure is pointwise a
   subset of the positive backbone; in Paper mode with no refutation the
   closure-as-assignment is itself a model, making the closure exactly
   the backbone. *)

type fact = Encode.fact = { attr : int; lo : int; hi : int }

type rule =
  | Axiom of Encode.source
  | Implication of Encode.source
  | Trans
  | Total of int
  | Assumed

type step = { fact : fact; rule : rule; premises : int list }

type refutation =
  | Cycle of { attr : int; lo : int; hi : int; s1 : int; s2 : int }
  | Veto of { gamma : int; steps : int list }

type t = {
  t_mode : Encode.mode;
  t_coding : Coding.t;
  steps : step array;  (** derivation log; premises index earlier steps *)
  index : (fact, int) Hashtbl.t;
  t_cyclic : bool array;
  t_fired : (Encode.source * int list) list;
  t_refutation : refutation option;
  t_complete : bool;
}

(* ---- template firing plan ----

   A dependency-stratified order over Σ: constraints concluding an
   attribute fire before constraints whose premises mention it, so most
   implications see their premises already derived on first contact.
   Purely a work-order heuristic — the fixpoint is order-independent —
   and a pure function of the Σ ASTs, memoised per physical Σ list and
   so shared across every entity of a batch holding the same template. *)

let compute_plan sigma =
  let arr = Array.of_list sigma in
  let n = Array.length arr in
  let concl k = arr.(k).Currency.Constraint_ast.concl in
  let prems k =
    List.filter_map
      (function Currency.Constraint_ast.Prec a -> Some a | _ -> None)
      arr.(k).Currency.Constraint_ast.premise
  in
  let succs = Array.make n [] and indeg = Array.make n 0 in
  for k1 = 0 to n - 1 do
    for k2 = 0 to n - 1 do
      if k1 <> k2 && List.mem (concl k1) (prems k2) then begin
        succs.(k1) <- k2 :: succs.(k1);
        indeg.(k2) <- indeg.(k2) + 1
      end
    done
  done;
  let rank = Array.make n (-1) in
  let placed = ref 0 in
  while !placed < n do
    (* lowest-index ready constraint; on a dependency cycle, the
       lowest-index unplaced one — deterministic either way *)
    let pick = ref (-1) in
    for k = n - 1 downto 0 do
      if rank.(k) < 0 && indeg.(k) = 0 then pick := k
    done;
    if !pick < 0 then
      for k = n - 1 downto 0 do
        if rank.(k) < 0 then pick := k
      done;
    let k = !pick in
    rank.(k) <- !placed;
    incr placed;
    indeg.(k) <- min_int;
    List.iter
      (fun k2 -> if rank.(k2) >= 0 then () else indeg.(k2) <- indeg.(k2) - 1)
      succs.(k)
  done;
  rank

let plan_memo : (Currency.Constraint_ast.t list * int array) option ref Domain.DLS.key
    =
  Domain.DLS.new_key (fun () -> ref None)

let plan_hits : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)
let plan_misses : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let plan_for sigma =
  let slot = Domain.DLS.get plan_memo in
  match !slot with
  | Some (src, plan) when src == sigma ->
      incr (Domain.DLS.get plan_hits);
      plan
  | _ ->
      let plan = compute_plan sigma in
      incr (Domain.DLS.get plan_misses);
      slot := Some (sigma, plan);
      plan

let template_stats () =
  (!(Domain.DLS.get plan_hits), !(Domain.DLS.get plan_misses))

(* ---- the fixpoint ---- *)

(* Per-domain scratch for the tables that never escape a [saturate] call
   (the fact index does — it is part of the result — so it stays fresh).
   [Hashtbl.clear] keeps the grown bucket arrays, so a session re-chasing
   after every delta extension stops paying the table setup each time. *)
type scratch = {
  sc_succ : (int * int, (int * int) list ref) Hashtbl.t;
  sc_pred : (int * int, (int * int) list ref) Hashtbl.t;
  sc_watch : (fact, (int * int) list ref) Hashtbl.t;
}

let scratch_key : scratch Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        sc_succ = Hashtbl.create 64;
        sc_pred = Hashtbl.create 64;
        sc_watch = Hashtbl.create 256;
      })

let saturate ~mode ?plan ~certain ~assume (parts : Encode.parts) =
  let coding = parts.Encode.p_coding in
  let arity = Schema.arity (Coding.schema coding) in
  let index = Hashtbl.create 256 in
  let steps = ref [] and n_steps = ref 0 in
  let cyclic = Array.make arity false in
  let refut = ref None in
  let queue = Queue.create () in
  (* closure facts sharing an endpoint, with their step ids: the
     semi-naive transitive join registers each fact once and joins each
     pair of chainable facts exactly once (when the later of the two is
     processed against the earlier's registration) *)
  let sc = Domain.DLS.get scratch_key in
  let succ = sc.sc_succ and pred = sc.sc_pred in
  Hashtbl.clear succ;
  Hashtbl.clear pred;
  let adj tbl key =
    match Hashtbl.find_opt tbl key with Some l -> !l | None -> []
  in
  let adj_add tbl key v =
    match Hashtbl.find_opt tbl key with
    | Some l -> l := v :: !l
    | None -> Hashtbl.add tbl key (ref [ v ])
  in
  let imps = Array.of_list parts.Encode.p_implications in
  let imps =
    match plan with
    | None -> imps
    | Some rank ->
        let n_sigma = Array.length rank in
        let r (ic : Encode.iconstraint) =
          match ic.Encode.source with
          | Encode.From_constraint k when k < n_sigma -> rank.(k)
          | Encode.From_constraint _ | Encode.From_order -> n_sigma
          | Encode.From_cfd k -> n_sigma + 1 + k
        in
        let tagged = Array.map (fun ic -> (r ic, ic)) imps in
        Array.stable_sort (fun (a, _) (b, _) -> compare a b) tagged;
        Array.map snd tagged
  in
  (* watched premises: countdown of underived premises per implication,
     with the step id of each derived premise recorded for certificates *)
  let counts = Array.map (fun ic -> List.length ic.Encode.premise) imps in
  let prem_steps =
    Array.map (fun ic -> Array.make (List.length ic.Encode.premise) (-1)) imps
  in
  let watch = sc.sc_watch in
  Hashtbl.clear watch;
  Array.iteri
    (fun i ic ->
      List.iteri (fun slot f -> adj_add watch f (i, slot)) ic.Encode.premise)
    imps;
  let add_fact fact rule premises =
    if fact.lo <> fact.hi && not (Hashtbl.mem index fact) then begin
      let id = !n_steps in
      incr n_steps;
      steps := { fact; rule; premises } :: !steps;
      Hashtbl.add index fact id;
      (match Hashtbl.find_opt index { fact with lo = fact.hi; hi = fact.lo } with
      | Some rid ->
          cyclic.(fact.attr) <- true;
          if !refut = None then
            refut :=
              Some
                (Cycle { attr = fact.attr; lo = fact.lo; hi = fact.hi; s1 = rid; s2 = id })
      | None -> ());
      Queue.add (id, fact) queue
    end
  in
  let process (id, f) =
    let attr = f.attr in
    List.iter
      (fun (x, sx) -> add_fact { attr; lo = f.lo; hi = x } Trans [ id; sx ])
      (adj succ (attr, f.hi));
    List.iter
      (fun (w, sw) -> add_fact { attr; lo = w; hi = f.hi } Trans [ sw; id ])
      (adj pred (attr, f.lo));
    adj_add succ (attr, f.lo) (f.hi, id);
    adj_add pred (attr, f.hi) (f.lo, id);
    List.iter
      (fun (i, slot) ->
        if prem_steps.(i).(slot) < 0 then begin
          prem_steps.(i).(slot) <- id;
          counts.(i) <- counts.(i) - 1;
          if counts.(i) = 0 then
            add_fact imps.(i).Encode.concl
              (Implication imps.(i).Encode.source)
              (Array.to_list prem_steps.(i))
        end)
      (adj watch f)
  in
  let drain () =
    while not (Queue.is_empty queue) do
      process (Queue.pop queue)
    done
  in
  List.iter (fun f -> add_fact f Assumed []) assume;
  List.iter (fun (f, src) -> add_fact f (Axiom src) []) parts.Encode.p_units;
  drain ();
  (if mode = Encode.Exact then begin
     (* Γ's veto ¬f meets the Exact totality clause f ∨ rev f: rev f is
        certain. Only singleton vetoes admit this; skip premises already
        derived (that veto is a refutation, reported below, and deriving
        the reverse would bury it under a cycle). Totality facts can
        enable further derivations, so loop to a joint fixpoint. *)
     let applied = Array.make (List.length parts.Encode.p_vetoes) false in
     let progress = ref true in
     while !progress do
       progress := false;
       List.iteri
         (fun vi (premise, src) ->
           match (premise, src) with
           | [ f0 ], Encode.From_cfd g
             when (not applied.(vi)) && not (Hashtbl.mem index f0) ->
               applied.(vi) <- true;
               add_fact { attr = f0.attr; lo = f0.hi; hi = f0.lo } (Total g) [];
               progress := true
           | _ -> ())
         parts.Encode.p_vetoes;
       drain ()
     done
   end);
  let fired = ref [] in
  List.iter
    (fun (premise, src) ->
      match
        List.fold_left
          (fun acc f ->
            match (acc, Hashtbl.find_opt index f) with
            | Some ids, Some id -> Some (id :: ids)
            | _ -> None)
          (Some []) premise
      with
      | Some ids -> fired := (src, List.rev ids) :: !fired
      | None -> ())
    parts.Encode.p_vetoes;
  (if !refut = None then
     match !fired with
     | (Encode.From_cfd g, ids) :: _ -> refut := Some (Veto { gamma = g; steps = ids })
     | ((Encode.From_order | Encode.From_constraint _), _) :: _ | [] ->
         (* vetoes only arise from Γ in the current encoding *)
         ());
  {
    t_mode = mode;
    t_coding = coding;
    steps = Array.of_list (List.rev !steps);
    index;
    t_cyclic = cyclic;
    t_fired = !fired;
    t_refutation = !refut;
    t_complete = certain && mode = Encode.Paper && !refut = None;
  }

let of_parts ~mode ?plan parts = saturate ~mode ?plan ~certain:true ~assume:[] parts

let of_encode (enc : Encode.t) =
  let plan = plan_for enc.Encode.spec.Spec.sigma in
  saturate ~mode:enc.Encode.mode ~plan ~certain:true ~assume:[]
    (Encode.parts_of_t enc)

let of_spec ?(mode = Encode.Paper) spec =
  let plan = plan_for spec.Spec.sigma in
  saturate ~mode ~plan ~certain:true ~assume:[] (Encode.parts spec)

let mode t = t.t_mode
let coding t = t.t_coding
let mem t f = Hashtbl.mem t.index f
let facts t = Array.to_list (Array.map (fun s -> s.fact) t.steps)
let n_facts t = Array.length t.steps

let fact_vars t =
  List.map (fun f -> Coding.var_of t.t_coding ~attr:f.attr f.lo f.hi) (facts t)

let unit_lits t = List.map Sat.Lit.pos (fact_vars t)
let complete t = t.t_complete
let refutation t = t.t_refutation
let cyclic_attrs t = t.t_cyclic
let fired_vetoes t = t.t_fired

(* ---- hypothetical closures ---- *)

let closure_filtered ~mode ?(drop_unit = fun _ _ -> false)
    ?(drop_source = fun _ -> false) ?(assume = []) (parts : Encode.parts) =
  let parts =
    {
      parts with
      Encode.p_units =
        List.filter
          (fun (f, s) -> not (drop_source s || drop_unit f s))
          parts.Encode.p_units;
      p_implications =
        List.filter
          (fun (ic : Encode.iconstraint) -> not (drop_source ic.Encode.source))
          parts.Encode.p_implications;
      p_vetoes =
        List.filter (fun (_, s) -> not (drop_source s)) parts.Encode.p_vetoes;
    }
  in
  saturate ~mode ~certain:false ~assume parts

let derives ~mode ?drop_unit ?drop_source ?assume parts concl =
  mem (closure_filtered ~mode ?drop_unit ?drop_source ?assume parts) concl

(* ---- certificates ---- *)

type goal = Derived of fact | Cycle_goal of fact | Veto_goal of int
type cert = { cmode : Encode.mode; goal : goal; chain : step list }

let chain_of t roots goal =
  let mark = Hashtbl.create 64 in
  let rec visit id =
    if not (Hashtbl.mem mark id) then begin
      Hashtbl.add mark id ();
      List.iter visit t.steps.(id).premises
    end
  in
  List.iter visit roots;
  (* premises always point at earlier steps, so sorting ancestors by
     original id is a topological order and the compact renumbering
     keeps every premise index strictly below its step's position *)
  let ids = List.sort compare (Hashtbl.fold (fun id () acc -> id :: acc) mark []) in
  let renum = Hashtbl.create 64 in
  List.iteri (fun pos id -> Hashtbl.add renum id pos) ids;
  let chain =
    List.map
      (fun id ->
        let s = t.steps.(id) in
        { s with premises = List.map (Hashtbl.find renum) s.premises })
      ids
  in
  if List.exists (fun s -> s.rule = Assumed) chain then None
  else Some { cmode = t.t_mode; goal; chain }

let certificate t f =
  match Hashtbl.find_opt t.index f with
  | None -> None
  | Some id -> chain_of t [ id ] (Derived f)

let refutation_certificate t =
  match t.t_refutation with
  | None -> None
  | Some (Cycle { attr; lo; hi; s1; s2 }) ->
      chain_of t [ s1; s2 ] (Cycle_goal { attr; lo; hi })
  | Some (Veto { gamma; steps }) -> chain_of t steps (Veto_goal gamma)

(* ---- the independent verifier ----

   Checks a certificate against the raw specification alone: constraints
   are re-instantiated through [Currency.Constraint_ast.instantiate] (not
   the compiled forms), CFD premises rebuilt from the active domains, and
   nothing of the saturation state is consulted. *)

exception Bad of string

let verify spec (cert : cert) =
  let bad fmt = Format.kasprintf (fun s -> raise (Bad s)) fmt in
  let entity = spec.Spec.entity in
  let schema = Spec.schema spec in
  let coding = Coding.build entity [] in
  let arity = Schema.arity schema in
  let chain = Array.of_list cert.chain in
  let n = Array.length chain in
  let univ a = Coding.universe coding a in
  let wf f =
    f.attr >= 0
    && f.attr < arity
    && f.lo >= 0
    && f.lo < Array.length (univ f.attr)
    && f.hi >= 0
    && f.hi < Array.length (univ f.attr)
    && f.lo <> f.hi
  in
  let sigma = Array.of_list spec.Spec.sigma in
  let gamma = Array.of_list spec.Spec.gamma in
  let tuples = Array.of_list (Entity.tuples entity) in
  let code_prec (name, v1, v2) =
    let a = Schema.index schema name in
    { attr = a; lo = Coding.vid coding a v1; hi = Coding.vid coding a v2 }
  in
  let set_eq l1 l2 = List.sort_uniq compare l1 = List.sort_uniq compare l2 in
  (* some distinct tuple pair must ground σ_k to exactly this instance *)
  let check_sigma_inst i k prem_facts concl =
    if k < 0 || k >= Array.length sigma then bad "step %d: σ index %d out of range" i k;
    let c = sigma.(k) in
    let witnessed = ref false in
    Array.iteri
      (fun i1 s1 ->
        Array.iteri
          (fun i2 s2 ->
            if (not !witnessed) && i1 <> i2 then
              match Currency.Constraint_ast.instantiate c s1 s2 with
              | None -> ()
              | Some inst ->
                  let prem =
                    List.map code_prec inst.Currency.Constraint_ast.prec_premises
                  in
                  if
                    code_prec inst.Currency.Constraint_ast.conclusion = concl
                    && set_eq prem prem_facts
                  then witnessed := true)
          tuples)
      tuples;
    if not !witnessed then bad "step %d: no tuple pair grounds σ%d to this instance" i k
  in
  (* ω_X of γ_k (every other active value below each LHS pattern
     constant) and its RHS target id, rebuilt from the spec *)
  let gamma_parts i k =
    if k < 0 || k >= Array.length gamma then bad "step %d: γ index %d out of range" i k;
    let c = gamma.(k) in
    let lhs_vids =
      List.map
        (fun (aname, v) ->
          let a = Schema.index schema aname in
          match Coding.vid_opt coding a v with
          | Some id when id < Coding.adom_size coding a -> (a, id)
          | _ -> bad "step %d: γ%d is vacuous on this entity" i k)
        c.Cfd.Constant_cfd.lhs
    in
    let omega =
      List.concat_map
        (fun (a, target) ->
          List.filter_map
            (fun lo -> if lo <> target then Some { attr = a; lo; hi = target } else None)
            (List.init (Coding.adom_size coding a) Fun.id))
        lhs_vids
    in
    let bname, bval = c.Cfd.Constant_cfd.rhs in
    let battr = Schema.index schema bname in
    (omega, battr, Coding.vid_opt coding battr bval)
  in
  let fact_of i p =
    if p < 0 || p >= i then bad "step %d: invalid or forward premise %d" i p
    else chain.(p).fact
  in
  let check i (s : step) =
    if not (wf s.fact) then bad "step %d: malformed fact" i;
    let prem_facts = List.map (fact_of i) s.premises in
    match s.rule with
    | Assumed -> bad "step %d: assumed hypothesis in a certificate" i
    | Trans -> (
        match prem_facts with
        | [ f1; f2 ]
          when f1.attr = s.fact.attr && f2.attr = s.fact.attr && f1.hi = f2.lo
               && s.fact.lo = f1.lo && s.fact.hi = f2.hi ->
            ()
        | _ -> bad "step %d: not a transitive composition" i)
    | Axiom Encode.From_order ->
        if s.premises <> [] then bad "step %d: order axiom with premises" i;
        let u = univ s.fact.attr in
        let explicit =
          List.exists
            (fun { Spec.attr = name; lo; hi } ->
              match Schema.index_opt schema name with
              | Some a when a = s.fact.attr ->
                  lo >= 0
                  && lo < Array.length tuples
                  && hi >= 0
                  && hi < Array.length tuples
                  &&
                  let v1 = Entity.value entity lo a
                  and v2 = Entity.value entity hi a in
                  (not (Value.equal v1 v2))
                  && Coding.vid_opt coding a v1 = Some s.fact.lo
                  && Coding.vid_opt coding a v2 = Some s.fact.hi
              | _ -> false)
            spec.Spec.orders
        in
        let null_lowest =
          Value.is_null u.(s.fact.lo) && not (Value.is_null u.(s.fact.hi))
        in
        if not (explicit || null_lowest) then bad "step %d: not an order axiom" i
    | Axiom (Encode.From_constraint k) | Implication (Encode.From_constraint k) ->
        check_sigma_inst i k prem_facts s.fact
    | Implication Encode.From_order ->
        bad "step %d: implications never carry an order source" i
    | Axiom (Encode.From_cfd k) | Implication (Encode.From_cfd k) -> (
        let omega, battr, brhs = gamma_parts i k in
        match brhs with
        | Some btarget ->
            if not (set_eq prem_facts omega) then
              bad "step %d: premises are not ω_X of γ%d" i k;
            if
              not
                (s.fact.attr = battr && s.fact.hi = btarget
                && s.fact.lo <> btarget
                && s.fact.lo < Coding.adom_size coding battr)
            then bad "step %d: conclusion is not a γ%d consequence" i k
        | None -> bad "step %d: γ%d has no instantiable RHS (veto only)" i k)
    | Total k -> (
        if cert.cmode <> Encode.Exact then
          bad "step %d: totality step outside Exact mode" i;
        if s.premises <> [] then bad "step %d: totality step with premises" i;
        let omega, _, brhs = gamma_parts i k in
        match (brhs, omega) with
        | None, [ f0 ] ->
            if s.fact <> { attr = f0.attr; lo = f0.hi; hi = f0.lo } then
              bad "step %d: not the reverse of γ%d's singleton veto premise" i k
        | Some _, _ -> bad "step %d: γ%d is not vetoed (its RHS value occurs)" i k
        | None, _ -> bad "step %d: γ%d's veto premise is not a singleton" i k)
  in
  try
    Array.iteri check chain;
    let derived = Array.to_list (Array.map (fun s -> s.fact) chain) in
    (match cert.goal with
    | Derived f ->
        if n = 0 || chain.(n - 1).fact <> f then
          bad "goal fact is not the final derived step"
    | Cycle_goal f ->
        if not (wf f) then bad "malformed goal fact";
        if
          not
            (List.mem f derived
            && List.mem { f with lo = f.hi; hi = f.lo } derived)
        then bad "chain does not derive both orientations of the goal"
    | Veto_goal k ->
        let omega, _, brhs = gamma_parts n k in
        if brhs <> None then bad "γ%d is not vetoed (its RHS value occurs)" k;
        if not (List.for_all (fun f -> List.mem f derived) omega) then
          bad "chain does not derive every premise of γ%d's veto" k);
    Ok ()
  with
  | Bad m -> Error m
  | Not_found -> Error "certificate references a foreign attribute or value"

(* ---- JSON (protocol shape; crcore carries no JSON dependency, so a
   minimal builder and recursive-descent reader live here) ---- *)

type json = Jobj of (string * json) list | Jarr of json list | Jstr of string | Jint of int

let rec json_buf b = function
  | Jint i -> Buffer.add_string b (string_of_int i)
  | Jstr s ->
      Buffer.add_char b '"';
      String.iter
        (fun c ->
          match c with
          | '"' -> Buffer.add_string b "\\\""
          | '\\' -> Buffer.add_string b "\\\\"
          | '\n' -> Buffer.add_string b "\\n"
          | c -> Buffer.add_char b c)
        s;
      Buffer.add_char b '"'
  | Jarr l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          json_buf b x)
        l;
      Buffer.add_char b ']'
  | Jobj l ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char b ',';
          json_buf b (Jstr k);
          Buffer.add_char b ':';
          json_buf b x)
        l;
      Buffer.add_char b '}'

let json_string j =
  let b = Buffer.create 256 in
  json_buf b j;
  Buffer.contents b

exception Jerr of string

let parse_json s =
  let pos = ref 0 in
  let len = String.length s in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < len && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if !pos < len && s.[!pos] = c then incr pos
    else raise (Jerr (Printf.sprintf "expected '%c' at %d" c !pos))
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= len then raise (Jerr "unterminated string")
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            if !pos >= len then raise (Jerr "unterminated escape");
            (match s.[!pos] with
            | 'n' -> Buffer.add_char b '\n'
            | c -> Buffer.add_char b c);
            incr pos;
            go ()
        | c ->
            Buffer.add_char b c;
            incr pos;
            go ()
    in
    go ();
    Buffer.contents b
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Jobj []
        end
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                members ((k, v) :: acc)
            | Some '}' ->
                incr pos;
                Jobj (List.rev ((k, v) :: acc))
            | _ -> raise (Jerr "expected ',' or '}'")
          in
          members []
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          Jarr []
        end
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                elems (v :: acc)
            | Some ']' ->
                incr pos;
                Jarr (List.rev (v :: acc))
            | _ -> raise (Jerr "expected ',' or ']'")
          in
          elems []
    | Some '"' -> Jstr (parse_string ())
    | Some ('-' | '0' .. '9') ->
        let start = !pos in
        if peek () = Some '-' then incr pos;
        while !pos < len && match s.[!pos] with '0' .. '9' -> true | _ -> false do
          incr pos
        done;
        if !pos = start then raise (Jerr "bad number");
        Jint (int_of_string (String.sub s start (!pos - start)))
    | _ -> raise (Jerr (Printf.sprintf "unexpected input at %d" !pos))
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then raise (Jerr "trailing input");
  v

let field name = function
  | Jobj l -> (
      match List.assoc_opt name l with
      | Some v -> v
      | None -> raise (Jerr ("missing field " ^ name)))
  | _ -> raise (Jerr ("not an object looking for " ^ name))

let as_int = function Jint i -> i | _ -> raise (Jerr "expected an integer")
let as_str = function Jstr s -> s | _ -> raise (Jerr "expected a string")
let as_arr = function Jarr l -> l | _ -> raise (Jerr "expected an array")

let fact_to_json f = Jobj [ ("attr", Jint f.attr); ("lo", Jint f.lo); ("hi", Jint f.hi) ]

let fact_of_json j =
  { attr = as_int (field "attr" j); lo = as_int (field "lo" j); hi = as_int (field "hi" j) }

let source_fields = function
  | Encode.From_order -> [ ("src", Jstr "order") ]
  | Encode.From_constraint k -> [ ("src", Jstr "sigma"); ("idx", Jint k) ]
  | Encode.From_cfd k -> [ ("src", Jstr "gamma"); ("idx", Jint k) ]

let source_of_json j =
  match as_str (field "src" j) with
  | "order" -> Encode.From_order
  | "sigma" -> Encode.From_constraint (as_int (field "idx" j))
  | "gamma" -> Encode.From_cfd (as_int (field "idx" j))
  | s -> raise (Jerr ("unknown source " ^ s))

let rule_to_json = function
  | Axiom src -> Jobj (("kind", Jstr "axiom") :: source_fields src)
  | Implication src -> Jobj (("kind", Jstr "mp") :: source_fields src)
  | Trans -> Jobj [ ("kind", Jstr "trans") ]
  | Total k -> Jobj [ ("kind", Jstr "total"); ("idx", Jint k) ]
  | Assumed -> Jobj [ ("kind", Jstr "assumed") ]

let rule_of_json j =
  match as_str (field "kind" j) with
  | "axiom" -> Axiom (source_of_json j)
  | "mp" -> Implication (source_of_json j)
  | "trans" -> Trans
  | "total" -> Total (as_int (field "idx" j))
  | "assumed" -> Assumed
  | s -> raise (Jerr ("unknown rule kind " ^ s))

let cert_to_json (c : cert) =
  let goal =
    match c.goal with
    | Derived f -> Jobj [ ("kind", Jstr "fact"); ("fact", fact_to_json f) ]
    | Cycle_goal f -> Jobj [ ("kind", Jstr "cycle"); ("fact", fact_to_json f) ]
    | Veto_goal k -> Jobj [ ("kind", Jstr "veto"); ("idx", Jint k) ]
  in
  let step s =
    Jobj
      [
        ("fact", fact_to_json s.fact);
        ("rule", rule_to_json s.rule);
        ("premises", Jarr (List.map (fun p -> Jint p) s.premises));
      ]
  in
  json_string
    (Jobj
       [
         ("mode", Jstr (match c.cmode with Encode.Paper -> "paper" | Encode.Exact -> "exact"));
         ("goal", goal);
         ("chain", Jarr (List.map step c.chain));
       ])

let cert_of_json s =
  try
    let j = parse_json s in
    let cmode =
      match as_str (field "mode" j) with
      | "paper" -> Encode.Paper
      | "exact" -> Encode.Exact
      | m -> raise (Jerr ("unknown mode " ^ m))
    in
    let gj = field "goal" j in
    let goal =
      match as_str (field "kind" gj) with
      | "fact" -> Derived (fact_of_json (field "fact" gj))
      | "cycle" -> Cycle_goal (fact_of_json (field "fact" gj))
      | "veto" -> Veto_goal (as_int (field "idx" gj))
      | k -> raise (Jerr ("unknown goal kind " ^ k))
    in
    let step sj =
      {
        fact = fact_of_json (field "fact" sj);
        rule = rule_of_json (field "rule" sj);
        premises = List.map as_int (as_arr (field "premises" sj));
      }
    in
    Ok { cmode; goal; chain = List.map step (as_arr (field "chain" j)) }
  with Jerr m -> Error m

(* ---- rendering ---- *)

let pp_cert spec ppf (c : cert) =
  (* the chain's value ids are over the coding a fresh build yields (the
     saturation and the verifier both use it) *)
  let coding = Coding.build spec.Spec.entity [] in
  let schema = Spec.schema spec in
  let pp_f ppf f =
    Format.fprintf ppf "%s: %s < %s"
      (Schema.name schema f.attr)
      (Value.to_string (Coding.value coding f.attr f.lo))
      (Value.to_string (Coding.value coding f.attr f.hi))
  in
  let pp_rule ppf = function
    | Axiom Encode.From_order -> Format.fprintf ppf "order axiom"
    | Axiom (Encode.From_constraint k) -> Format.fprintf ppf "sigma[%d] (premise-free)" k
    | Axiom (Encode.From_cfd k) -> Format.fprintf ppf "gamma[%d] (premise-free)" k
    | Implication (Encode.From_constraint k) -> Format.fprintf ppf "sigma[%d]" k
    | Implication (Encode.From_cfd k) -> Format.fprintf ppf "gamma[%d]" k
    | Implication Encode.From_order -> Format.fprintf ppf "order"
    | Trans -> Format.fprintf ppf "transitivity"
    | Total k -> Format.fprintf ppf "gamma[%d] veto + totality" k
    | Assumed -> Format.fprintf ppf "assumed"
  in
  List.iteri
    (fun i s ->
      Format.fprintf ppf "[%d] %a  -- %a" i pp_f s.fact pp_rule s.rule;
      (match s.premises with
      | [] -> ()
      | ps ->
          Format.fprintf ppf " from %s"
            (String.concat ", " (List.map (fun p -> "[" ^ string_of_int p ^ "]") ps)));
      Format.fprintf ppf "@,")
    c.chain;
  match c.goal with
  | Derived f -> Format.fprintf ppf "goal: %a" pp_f f
  | Cycle_goal f ->
      Format.fprintf ppf "goal: cycle (%a and its reverse are both certain)" pp_f f
  | Veto_goal k ->
      Format.fprintf ppf
        "goal: gamma[%d]'s forbidden premise is certain (no completion exists)" k
