(** Long-lived resolution sessions: the state [crsolved] keeps hot.

    {!Engine} resolves an entity and forgets it; this layer retains the
    entity's encoding and incremental solver {e between} resolves, so a
    conflict stream delivering tuples for the same entity over time (the
    multi-master replication workload) re-resolves incrementally:

    - {!ingest} buffers arriving tuples and user-asserted currency
      orders; the next {!resolve}/{!baseline} applies the whole buffer as
      {e one} pure extension through {!Engine.ingest_session} (delta
      coalescing: k arrivals between two resolves cost one
      {!Encode.extend}, not k). Extensions with unchanged value universes
      feed only delta clauses to the live solver ({!Encode.extend}'s
      [Delta] path); a grown universe reloads the solver but reuses the
      Σ instance sweep ([Renumbered]);
    - {!resolve} re-runs the Fig. 4 loop on the live session with the
      per-request budgets re-armed ({!Engine.refresh_budget}) — the
      graceful-degradation ladder applies to every request, not only the
      first;
    - {!baseline} answers with a {!Pick} policy instead (the BDR-style
      [last_update_wins] / [accept_local] cheap paths) without touching
      the solver.

    {!Store} bounds the memory of many such sessions with an LRU capacity
    cap and a TTL for idle sessions.

    Every operation on a handle is serialised by a per-handle mutex, and
    the store by its own lock (never held while a handle operates), so
    daemon connection threads can share both. *)

type handle

(** [create ?config ?cache ?label spec] opens a session on the entity's
    initial specification — encoding, lint pre-phase and (in incremental
    mode) the solver load happen here. [cache] is the shared encoding
    cache ({!Engine.create_cache}); sessions of a {!Store} share the
    store's. *)
val create :
  ?config:Engine.config -> ?cache:Engine.cache -> ?label:string -> Spec.t -> handle

val label : handle -> string

(** The accumulated specification: initial spec plus everything
    {!ingest}ed since. *)
val spec : handle -> Spec.t

(** [ingest h ?orders ?tuples ()] absorbs new arrivals: [tuples] append
    to the entity in arrival order, [orders] are user-asserted currency
    edges (indices into the accumulated entity). The buffer is applied to
    the engine session lazily, at the next {!resolve}/{!baseline}/{!spec}
    — so bursts of arrivals between resolve points coalesce into a single
    extension. A session whose accumulated spec the lint pre-phase had
    rejected is rebuilt from scratch on the extended spec at that point
    (re-linted — soundly, whatever the extension). Raises
    [Invalid_argument] on a closed handle; a spec validation error in the
    buffered extension surfaces at the applying call. *)
val ingest : handle -> ?orders:Spec.order_edge list -> ?tuples:Tuple.t list -> unit -> unit

(** [resolve ?user h] re-resolves the accumulated specification on the
    live session, budgets re-armed for this request. [user] defaults to
    never answering (fully automatic resolution, the daemon's mode).
    Automatic resolution is deterministic for a fixed config, so when
    nothing was {!ingest}ed since the previous automatic resolve the
    memoized result is served without touching the solver — repeated
    reads of a hot entity are O(1). Passing [?user] bypasses and does not
    populate the memo (an interactive user's answers may differ). *)
val resolve : ?user:Engine.user -> handle -> Engine.result * Engine.entity_stats

(** [baseline h strategy] resolves the accumulated entity with a {!Pick}
    policy — no solver, no inference; [Last_update_wins] / [Accept_local]
    are the BDR replication baselines. *)
val baseline : handle -> Pick.strategy -> Value.t array

(** The result of the most recent {!resolve}, if any. *)
val last_result : handle -> Engine.result option

(** Statistics accumulated over the session's whole life (every request).
    Reads the engine session as-is — buffered, not-yet-applied ingests are
    not reflected. *)
val stats : handle -> Engine.entity_stats

(** Number of {!resolve} calls served. *)
val resolves : handle -> int

(** [close h] marks the handle closed; further {!ingest}/{!resolve} raise.
    Idempotent. The encoding and solver become garbage once the caller
    drops the handle. *)
val close : handle -> unit

val is_closed : handle -> bool

(** {1 Bounded session tables} *)

module Store : sig
  (** A label-keyed table of live sessions with bounded memory: at most
      [max_sessions] live handles (least-recently-used evicted first, in
      O(1) amortised), and {!sweep} closes sessions idle longer than
      [ttl_s]. All operations are thread-safe. *)

  type t

  (** [create ?config ?cache ?max_sessions ?ttl_s ()]. Defaults:
      {!Engine.default_config}, a fresh shared encoding cache, 1024
      sessions, no TTL. [max_sessions] is clamped to at least 1. *)
  val create :
    ?config:Engine.config ->
    ?cache:Engine.cache ->
    ?max_sessions:int ->
    ?ttl_s:float ->
    unit ->
    t

  val config : t -> Engine.config

  (** [find t label] is the live session for [label], touching its LRU
      slot and idle clock. *)
  val find : t -> string -> handle option

  (** [get_or_create t label ~spec] returns the live session for [label],
      or opens one on [spec ()] (evicting the least-recently-used session
      first if the table is full). The boolean is [true] when a session
      was created. The spec thunk runs outside the store lock; on a race,
      first-in wins and the loser's session is dropped. *)
  val get_or_create : t -> string -> spec:(unit -> Spec.t) -> handle * bool

  (** [remove t label] closes and drops the session. [false] if absent. *)
  val remove : t -> string -> bool

  (** [sweep t] closes every session idle longer than the TTL; returns
      how many. No-op without a TTL. *)
  val sweep : t -> int

  (** Close and drop every session. *)
  val clear : t -> unit

  val live : t -> int

  (** Cumulative store statistics; solver/encode counters are summed over
      live {e and} already-evicted sessions. *)
  type stats = {
    live : int;
    created : int;
    reused : int;  (** [find]/[get_or_create] hits on a live session *)
    evicted_lru : int;
    evicted_ttl : int;
    removed : int;  (** explicit {!remove}/{!clear} closes *)
    resolves : int;
    delta_extensions : int;
    rebuilds_renumbered : int;
    rebuilds_impure : int;
    solvers_built : int;
    template_hits : int;
        (** encodings instantiated from an already-compiled template
            (see {!Encode.template}) *)
    template_misses : int;  (** instantiations that compiled the template first *)
    instantiations : int;  (** template-stage encodings built (hits + misses) *)
    sat : Sat.Solver.stats;
        (** solver counters summed the same way — conflicts and
            propagations, plus the clause-database management counters
            (learnt clauses kept/deleted, average LBD, binary-layer size,
            clauses subsumed, variables eliminated, simplify time) *)
  }

  val stats : t -> stats

  val pp_stats : Format.formatter -> stats -> unit
end
