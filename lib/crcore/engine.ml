type user = Rules.suggestion -> schema:Schema.t -> (string * Value.t) list

type degrade_level = Exact | PartialDeduce | PickFallback

let level_rank = function Exact -> 0 | PartialDeduce -> 1 | PickFallback -> 2

let level_to_string = function
  | Exact -> "exact"
  | PartialDeduce -> "partial"
  | PickFallback -> "pick"

type phase = Lint_p | Encode_p | Saturate_p | Validity_p | Deduce_p | Suggest_p

let phase_to_string = function
  | Lint_p -> "lint"
  | Encode_p -> "encode"
  | Saturate_p -> "saturate"
  | Validity_p -> "validity"
  | Deduce_p -> "deduce"
  | Suggest_p -> "suggest"

type budget_kind = Conflicts | Wall

type degrade_reason = { cause : budget_kind; phase : phase }

let reason_to_string r =
  Printf.sprintf "%s@%s"
    (match r.cause with Conflicts -> "conflicts" | Wall -> "wall")
    (phase_to_string r.phase)

type config = {
  mode : Encode.mode;
  deduce :
    ?solver:Sat.Solver.t -> ?budget:int -> ?static:int list -> Encode.t -> Deduce.t;
  repair : Rules.repair;
  max_rounds : int;
  incremental : bool;
  cache : bool;
  lint : bool;
  saturate : bool;
  jobs : int;
  clamp_jobs : bool;
  budget_conflicts : int option;
  budget_ms : float option;
  max_degrade : degrade_level;
  pick_strategy : Pick.strategy;
  fail_fast : bool;
  simplify : bool;
}

let default_config =
  {
    mode = Encode.Paper;
    deduce = Deduce.backbone;
    repair = Rules.Exact_maxsat;
    max_rounds = 5;
    incremental = true;
    cache = true;
    lint = true;
    saturate = true;
    jobs = 1;
    clamp_jobs = true;
    budget_conflicts = None;
    budget_ms = None;
    max_degrade = PickFallback;
    pick_strategy = Pick.Favoured;
    fail_fast = false;
    simplify = true;
  }

let naive_config =
  {
    default_config with
    incremental = false;
    cache = false;
    lint = false;
    saturate = false;
    simplify = false;
  }

type phase_times = {
  mutable lint_ms : float;
  mutable encode_ms : float;
  mutable saturate_ms : float;
  mutable validity_ms : float;
  mutable deduce_ms : float;
  mutable suggest_ms : float;
}

let zero_times () =
  {
    lint_ms = 0.;
    encode_ms = 0.;
    saturate_ms = 0.;
    validity_ms = 0.;
    deduce_ms = 0.;
    suggest_ms = 0.;
  }

type entity_stats = {
  times : phase_times;
  solver : Sat.Solver.stats;
  solvers_built : int;
  solvers_reused : int;
  deduce_sat_calls : int;
  deduce_probes : int;
  deduce_model_prunes : int;
  deduce_seeded : int;
  static_facts : int;
  probes_avoided : int;
  cache_hits : int;
  cache_misses : int;
  template_hits : int;
  template_misses : int;
  instantiations : int;
  encode_alloc_words : float;
  delta_extensions : int;
  rebuilds : int;
  rebuilds_renumbered : int;
  rebuilds_impure : int;
  lint_rejected : bool;
}

type result = {
  resolved : Value.t option array;
  valid : bool;
  rounds : int;
  per_round_known : int list;
  level : degrade_level;
  degrade_reason : degrade_reason option;
  conflicts_spent : int;
}

type error_info = { exn : string; backtrace : string; phase : phase }

let zero_entity_stats () =
  {
    times = zero_times ();
    solver = Sat.Solver.zero_stats;
    solvers_built = 0;
    solvers_reused = 0;
    deduce_sat_calls = 0;
    deduce_probes = 0;
    deduce_model_prunes = 0;
    deduce_seeded = 0;
    static_facts = 0;
    probes_avoided = 0;
    cache_hits = 0;
    cache_misses = 0;
    template_hits = 0;
    template_misses = 0;
    instantiations = 0;
    encode_alloc_words = 0.;
    delta_extensions = 0;
    rebuilds = 0;
    rebuilds_renumbered = 0;
    rebuilds_impure = 0;
    lint_rejected = false;
  }

(* ---- encoding cache ---- *)

module Key = struct
  type t = Encode.mode * Spec.t

  let equal = ( = )

  (* Structurally identical specs must collide, but hashing the whole spec
     would deep-walk Σ and Γ (routinely hundreds of constraints) on every
     lookup. Specs in practice differ in the entity tuples and the order
     edges, so hash those plus the constraint-list lengths — cheap, and
     still a function of the key, as {!equal} requires. *)
  let hash ((mode, spec) : t) =
    Hashtbl.hash_param 100 200
      ( mode,
        Entity.tuples spec.Spec.entity,
        spec.Spec.orders,
        List.length spec.Spec.sigma,
        List.length spec.Spec.gamma )
end

module Tbl = Hashtbl.Make (Key)

(* The template fingerprint: the spec with the entity, the constants and
   the tuple ids abstracted away — mode, interned Σ/Γ ids (see
   {!Spec.sigma_id}) and the schema. Distinct entities of one shape share
   the fingerprint, so the template layer hits where the spec-keyed layer
   above cannot; hashing is O(1) (two ints and the mode). *)
module TKey = struct
  type t = Encode.mode * int * int * Schema.t

  let equal ((m1, s1, g1, c1) : t) ((m2, s2, g2, c2) : t) =
    m1 = m2 && s1 = s2 && g1 = g2 && Schema.equal c1 c2

  let hash ((m, s, g, _) : t) = Hashtbl.hash (m, s, g)
end

module TTbl = Hashtbl.Make (TKey)

(* Sharded for domain-parallel batches: a lookup locks only the shard its
   key hashes to, and encoding on a miss runs outside any lock, so domains
   resolving distinct specs never serialise on the cache. The template
   shards share the lock array (a lock guards both tables of its index). *)
let n_shards = 16

type cache = {
  shards : Encode.t Tbl.t array;          (* spec-keyed: exact repeats *)
  tshards : Encode.template TTbl.t array; (* fingerprint-keyed: shapes *)
  locks : Mutex.t array;
}

let create_cache () =
  {
    shards = Array.init n_shards (fun _ -> Tbl.create 8);
    tshards = Array.init n_shards (fun _ -> TTbl.create 4);
    locks = Array.init n_shards (fun _ -> Mutex.create ());
  }

let with_shard cache key f =
  let i = Key.hash key land (n_shards - 1) in
  let lock = cache.locks.(i) in
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) (fun () -> f cache.shards.(i))

(* the last template this domain served, keyed by fingerprint: a batch of
   same-shape entities takes the lock once per domain, not per entity *)
let tmemo : (TKey.t * Encode.template) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

(* [true] iff the template already existed (a template hit) *)
let template_for ~(config : config) ~cache spec =
  let key =
    (config.mode, Spec.sigma_id spec, Spec.gamma_id spec, Spec.schema spec)
  in
  let slot = Domain.DLS.get tmemo in
  match !slot with
  | Some (k, tpl) when TKey.equal k key -> (tpl, true)
  | _ ->
      let i = TKey.hash key land (n_shards - 1) in
      let lock = cache.locks.(i) in
      Mutex.lock lock;
      let found = TTbl.find_opt cache.tshards.(i) key in
      Mutex.unlock lock;
      let tpl, hit =
        match found with
        | Some tpl -> (tpl, true)
        | None ->
            (* compile outside the lock; racing domains compile twice and
               first-in wins, as with the encoding shards *)
            let tpl = Encode.template ~mode:config.mode spec in
            Mutex.lock lock;
            let tpl =
              match TTbl.find_opt cache.tshards.(i) key with
              | Some existing -> existing
              | None ->
                  TTbl.replace cache.tshards.(i) key tpl;
                  tpl
            in
            Mutex.unlock lock;
            (tpl, false)
      in
      slot := Some (key, tpl);
      (tpl, hit)

(* ---- sessions ---- *)

type session = {
  config : config;
  cache : cache;
  times : phase_times;
  track : phase ref;  (* last phase entered; attributes exceptions and faults *)
  faults : Faults.ctx;
  mutable deadline : float option;  (* absolute [now_ms] bound from [budget_ms] *)
  mutable spent_base : int;
      (* conflicts accrued before the current request: [refresh_budget]
         moves it so long-lived sessions get a full budget per request *)
  mutable spec : Spec.t;
  mutable enc : Encode.t option;  (* [None] iff the lint pre-phase rejected the spec *)
  mutable closure : Saturate.t option;
      (* the static closure of the current encoding (saturate pre-phase) *)
  mutable static_facts : int;
  mutable probes_avoided : int;
  mutable solver : Sat.Solver.t option;  (* the incremental session *)
  mutable retired : Sat.Solver.stats;    (* stats of replaced/one-shot solvers *)
  mutable burnt : int;           (* injected conflict-budget consumption *)
  mutable forced_exhaust : bool; (* a pending injected budget-[Unknown] *)
  mutable solvers_built : int;
  mutable solvers_reused : int;
  mutable deduce_sat_calls : int;
  mutable deduce_probes : int;
  mutable deduce_model_prunes : int;
  mutable deduce_seeded : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable template_hits : int;
  mutable template_misses : int;
  mutable instantiations : int;
  mutable encode_alloc_words : float;
  mutable delta_extensions : int;
  mutable rebuilds_renumbered : int;
  mutable rebuilds_impure : int;
  lint_rejected : bool;
}

(* wall clock, not [Sys.time]: process CPU time charges one domain's work
   with every running domain's cycles, so per-phase times would be
   nonsense under a parallel batch *)
let now_ms () = Unix.gettimeofday () *. 1000.

let timed_t times slot f =
  let t0 = now_ms () in
  let r = f () in
  let dt = now_ms () -. t0 in
  (match slot with
  | Lint_p -> times.lint_ms <- times.lint_ms +. dt
  | Encode_p -> times.encode_ms <- times.encode_ms +. dt
  | Saturate_p -> times.saturate_ms <- times.saturate_ms +. dt
  | Validity_p -> times.validity_ms <- times.validity_ms +. dt
  | Deduce_p -> times.deduce_ms <- times.deduce_ms +. dt
  | Suggest_p -> times.suggest_ms <- times.suggest_ms +. dt);
  r

let timed sess slot f =
  sess.track := slot;
  match slot with
  | Encode_p ->
      (* [Gc.minor_words] counts the calling domain's allocation, and a
         session runs a phase on one domain, so the delta is this encode
         work's own words — the per-domain contention signal the par
         bench reports *)
      let w0 = Gc.minor_words () in
      let r = timed_t sess.times slot f in
      sess.encode_alloc_words <- sess.encode_alloc_words +. (Gc.minor_words () -. w0);
      r
  | _ -> timed_t sess.times slot f

let the_enc sess =
  match sess.enc with
  | Some enc -> enc
  | None -> invalid_arg "Engine: session was rejected by the lint pre-phase"

(* what a cache lookup did, for the counters *)
type lookup_outcome =
  | L_direct  (* [config.cache = false]: plain encode, uncounted *)
  | L_hit  (* spec-keyed exact repeat *)
  | L_inst of bool  (* instantiated from a template; [true] = template hit *)

let lookup ~(config : config) ~cache spec =
  if not config.cache then (Encode.encode ~mode:config.mode spec, L_direct)
  else
    let key = (config.mode, spec) in
    match with_shard cache key (fun tbl -> Tbl.find_opt tbl key) with
    | Some enc -> (enc, L_hit)
    | None ->
        (* an exact-repeat miss falls through to the template layer: the
           shape compiles once per batch, and the entity is stamped into
           it by the thin instantiation stage. Instantiation runs outside
           the shard lock: misses on distinct specs must not serialise. A
           racing domain instantiating the same spec does the work twice;
           both land on equal encodings (instantiation is a pure function
           of the spec and the shape), and first-in wins the slot. *)
        let tpl, thit = template_for ~config ~cache spec in
        let enc = Encode.instantiate tpl spec in
        let enc =
          with_shard cache key (fun tbl ->
              match Tbl.find_opt tbl key with
              | Some existing -> existing
              | None ->
                  Tbl.replace tbl key enc;
                  enc)
        in
        (enc, L_inst thit)

let cache_store ~(config : config) ~cache spec enc =
  if config.cache then
    let key = (config.mode, spec) in
    with_shard cache key (fun tbl -> Tbl.replace tbl key enc)

let count_lookup sess outcome =
  match outcome with
  | L_direct -> ()
  | L_hit -> sess.cache_hits <- sess.cache_hits + 1
  | L_inst thit ->
      sess.cache_misses <- sess.cache_misses + 1;
      sess.instantiations <- sess.instantiations + 1;
      if thit then sess.template_hits <- sess.template_hits + 1
      else sess.template_misses <- sess.template_misses + 1

let encode_spec sess spec =
  let enc, outcome = lookup ~config:sess.config ~cache:sess.cache spec in
  count_lookup sess outcome;
  enc

let fresh_solver sess enc =
  let s = Sat.Solver.create () in
  Sat.Solver.add_cnf s enc.Encode.cnf;
  (* seed the static closure as unit clauses. Each fact is already level-0
     implied by Φ(Se) — every saturation rule is the unit-propagation
     reflection of a clause family of Φ — so seeding cannot change any
     answer; it pins the facts as explicit units for robustness against
     future clause-DB simplification. *)
  (match sess.closure with
  | Some cl -> Sat.Solver.add_units s (Saturate.unit_lits cl)
  | None -> ());
  (* frozen-variable contract: every Φ(Se) variable may be probed later
     (backbone deduction reads the whole model; delta extensions add
     clauses over existing numbering), so BVE must not eliminate any of
     them. Freeze first, then simplify — the saturation units just landed,
     so the static closure feeds satisfied-clause removal and stripping. *)
  Sat.Solver.freeze_all s;
  if sess.config.simplify then Sat.Solver.simplify s
  else Sat.Solver.set_reduce s false;
  sess.solvers_built <- sess.solvers_built + 1;
  s

(* the saturate pre-phase: (re)compute the static closure of the session's
   current encoding — polynomial, no solver *)
let saturate_session sess =
  if sess.config.saturate && not sess.lint_rejected then begin
    let cl = timed sess Saturate_p (fun () -> Saturate.of_encode (the_enc sess)) in
    sess.closure <- Some cl;
    sess.static_facts <- sess.static_facts + Saturate.n_facts cl
  end

let retire sess s = sess.retired <- Sat.Solver.add_stats sess.retired (Sat.Solver.stats s)

(* ---- per-entity conflict/wall budgets ----

   The conflict budget must survive solver rebuilds (Renumbered / impure
   extensions replace the live solver), so the session, not the solver,
   is the unit of account: spent = conflicts of retired solvers + the
   live solver + injected burn. Each solver phase re-arms the live
   solver with whatever remains. *)

let live_conflicts sess =
  match sess.solver with
  | Some s -> (Sat.Solver.stats s).Sat.Solver.conflicts
  | None -> 0

(* total conflicts the session ever accrued, baseline included *)
let conflicts_accrued sess =
  sess.retired.Sat.Solver.conflicts + live_conflicts sess + sess.burnt

(* conflicts charged against the current request's budget *)
let conflicts_spent sess = conflicts_accrued sess - sess.spent_base

let conflicts_remaining sess =
  Option.map (fun b -> max 0 (b - conflicts_spent sess)) sess.config.budget_conflicts

(* arm the remaining conflict budget on a solver about to serve a phase *)
let arm_budget sess s =
  match conflicts_remaining sess with
  | Some left -> Sat.Solver.set_budget ~conflicts:left s
  | None -> ()

let wall_tripped sess =
  match sess.deadline with Some d -> now_ms () > d | None -> false

(* [true] once per injected [Exhaust] (consumed), or while the conflict
   budget is fully spent *)
let exhausted_now sess =
  if sess.forced_exhaust then begin
    sess.forced_exhaust <- false;
    true
  end
  else match conflicts_remaining sess with Some 0 -> true | _ -> false

(* fault hook: called at the start of each working phase *)
let fire sess point ph =
  sess.track := ph;
  match Faults.fire sess.faults point with
  | None -> ()
  | Some (Faults.Raise msg) -> raise (Faults.Injected msg)
  | Some (Faults.Burn n) -> sess.burnt <- sess.burnt + max 0 n
  | Some Faults.Exhaust -> sess.forced_exhaust <- true

let make_session ?(config = default_config) ?cache ?label ~track spec =
  let cache = match cache with Some c -> c | None -> create_cache () in
  let times = zero_times () in
  (* the lint pre-phase: a statically-unsat specification skips
     Instantiation/ConvertToCNF and the solver session entirely — sound by
     construction (every E-level diagnostic implies Φ(Se) unsatisfiable,
     property-tested in test_analyze) *)
  track := Lint_p;
  let lint_rejected =
    config.lint
    && timed_t times Lint_p (fun () ->
           Analyze.has_errors (Analyze.analyze ~errors_only:true spec))
  in
  let faults = Faults.make ~label in
  (* the encode-point fault fires before the session record exists, so
     budget effects are staged and adopted at construction below *)
  let pending_burn = ref 0 in
  let pending_exhaust = ref false in
  if not lint_rejected then begin
    track := Encode_p;
    match Faults.fire faults Faults.Encode with
    | None -> ()
    | Some (Faults.Raise msg) -> raise (Faults.Injected msg)
    | Some (Faults.Burn n) -> pending_burn := max 0 n
    | Some Faults.Exhaust -> pending_exhaust := true
  end;
  let enc_alloc = ref 0. in
  let enc, outcome =
    if lint_rejected then (None, L_direct)
    else begin
      let w0 = Gc.minor_words () in
      let enc, o = timed_t times Encode_p (fun () -> lookup ~config ~cache spec) in
      enc_alloc := Gc.minor_words () -. w0;
      (Some enc, o)
    end
  in
  let sess =
    {
      config;
      cache;
      times;
      track;
      faults;
      deadline = Option.map (fun ms -> now_ms () +. ms) config.budget_ms;
      spent_base = 0;
      spec;
      enc;
      closure = None;
      static_facts = 0;
      probes_avoided = 0;
      solver = None;
      retired = Sat.Solver.zero_stats;
      burnt = !pending_burn;
      forced_exhaust = !pending_exhaust;
      solvers_built = 0;
      solvers_reused = 0;
      deduce_sat_calls = 0;
      deduce_probes = 0;
      deduce_model_prunes = 0;
      deduce_seeded = 0;
      cache_hits = 0;
      cache_misses = 0;
      template_hits = 0;
      template_misses = 0;
      instantiations = 0;
      encode_alloc_words = !enc_alloc;
      delta_extensions = 0;
      rebuilds_renumbered = 0;
      rebuilds_impure = 0;
      lint_rejected;
    }
  in
  count_lookup sess outcome;
  saturate_session sess;
  if config.incremental && not lint_rejected then
    sess.solver <- Some (timed sess Validity_p (fun () -> fresh_solver sess (the_enc sess)));
  sess

let create_session ?config ?cache ?label spec =
  make_session ?config ?cache ?label ~track:(ref Lint_p) spec

(* IsValid on the session: the incremental path re-solves the live
   session (learnt clauses intact); the naive path rebuilds a solver, as
   Validity.check does, but keeps its statistics. Answers [Unknown] when
   the entity's conflict budget runs out mid-solve. *)
let check_validity sess =
  match sess.solver with
  | Some s ->
      sess.solvers_reused <- sess.solvers_reused + 1;
      arm_budget sess s;
      Sat.Solver.solve_limited s
  | None ->
      let s = fresh_solver sess (the_enc sess) in
      arm_budget sess s;
      let r = Sat.Solver.solve_limited s in
      retire sess s;
      r

let suggest_on sess d ~known =
  match sess.solver with
  | Some s ->
      sess.solvers_reused <- sess.solvers_reused + 1;
      arm_budget sess s;
      Rules.suggest ~repair:sess.config.repair ~solver:s d ~known
  | None ->
      let s = fresh_solver sess (the_enc sess) in
      arm_budget sess s;
      let r = Rules.suggest ~repair:sess.config.repair ~solver:s d ~known in
      retire sess s;
      r

(* deduction on the session solver when there is one: the SAT-based
   deducers probe it under assumptions ([backbone] additionally reuses
   the validity check's model), a private solver otherwise. The remaining
   conflict budget is armed on the live solver and also passed down so a
   deducer-private solver (naive mode) is bounded too. *)
let deduce_on sess enc =
  (match sess.solver with Some s -> arm_budget sess s | None -> ());
  (* hand the static closure to the deducer only when it is provably the
     whole positive backbone ({!Saturate.complete}): the deducer then
     adopts it outright and skips its unit-propagation pass *)
  let static =
    match sess.closure with
    | Some cl when Saturate.complete cl -> Some (Saturate.fact_vars cl)
    | _ -> None
  in
  let d =
    sess.config.deduce ?solver:sess.solver ?budget:(conflicts_remaining sess)
      ?static enc
  in
  let st = d.Deduce.stats in
  sess.deduce_sat_calls <- sess.deduce_sat_calls + st.Deduce.sat_calls;
  sess.deduce_probes <- sess.deduce_probes + st.Deduce.probes;
  sess.deduce_model_prunes <- sess.deduce_model_prunes + st.Deduce.model_prunes;
  sess.deduce_seeded <- sess.deduce_seeded + st.Deduce.seeded;
  sess.probes_avoided <- sess.probes_avoided + st.Deduce.probes_avoided;
  if st.Deduce.built_solver then sess.solvers_built <- sess.solvers_built + 1;
  if st.Deduce.reused_solver then sess.solvers_reused <- sess.solvers_reused + 1;
  d

(* Se ⊕ Ot: move the session to the extended specification. *)
let apply_extension sess spec' =
  fire sess Faults.Encode Encode_p;
  sess.spec <- spec';
  if not sess.config.incremental then begin
    sess.enc <- Some (timed sess Encode_p (fun () -> encode_spec sess spec'));
    saturate_session sess
  end
  else
    match timed sess Encode_p (fun () -> Encode.extend (the_enc sess) spec') with
    | Some (Encode.Delta (enc', delta)) ->
        sess.enc <- Some enc';
        sess.delta_extensions <- sess.delta_extensions + 1;
        cache_store ~config:sess.config ~cache:sess.cache spec' enc';
        (* re-close over the extended encoding before touching the solver,
           so the fresh closure rides in with the delta clauses *)
        saturate_session sess;
        let s = match sess.solver with Some s -> s | None -> assert false in
        timed sess Validity_p (fun () ->
            List.iter (Sat.Solver.add_clause_a s) delta;
            (match sess.closure with
            | Some cl -> Sat.Solver.add_units s (Saturate.unit_lits cl)
            | None -> ());
            (* inprocessing point: the delta clauses and refreshed closure
               are in; re-freeze (covers any variables a later MaxSAT round
               allocated on this solver) and simplify again *)
            Sat.Solver.freeze_all s;
            if sess.config.simplify then Sat.Solver.simplify s)
    | Some (Encode.Renumbered enc') ->
        (* a value universe grew: the Σ instances were still reused, but
           variable numbers shifted, so the solver session restarts *)
        sess.rebuilds_renumbered <- sess.rebuilds_renumbered + 1;
        sess.enc <- Some enc';
        cache_store ~config:sess.config ~cache:sess.cache spec' enc';
        saturate_session sess;
        (match sess.solver with Some s -> retire sess s | None -> ());
        sess.solver <- Some (timed sess Validity_p (fun () -> fresh_solver sess enc'))
    | None ->
        (* not a pure extension: full re-encode and a fresh session *)
        sess.rebuilds_impure <- sess.rebuilds_impure + 1;
        (match sess.solver with Some s -> retire sess s | None -> ());
        let enc' = timed sess Encode_p (fun () -> encode_spec sess spec') in
        sess.enc <- Some enc';
        saturate_session sess;
        sess.solver <- Some (timed sess Validity_p (fun () -> fresh_solver sess enc'))

let snapshot_stats sess =
  let solver =
    match sess.solver with
    | Some s -> Sat.Solver.add_stats sess.retired (Sat.Solver.stats s)
    | None -> sess.retired
  in
  {
    times = sess.times;
    solver;
    solvers_built = sess.solvers_built;
    solvers_reused = sess.solvers_reused;
    deduce_sat_calls = sess.deduce_sat_calls;
    deduce_probes = sess.deduce_probes;
    deduce_model_prunes = sess.deduce_model_prunes;
    deduce_seeded = sess.deduce_seeded;
    static_facts = sess.static_facts;
    probes_avoided = sess.probes_avoided;
    cache_hits = sess.cache_hits;
    cache_misses = sess.cache_misses;
    template_hits = sess.template_hits;
    template_misses = sess.template_misses;
    instantiations = sess.instantiations;
    encode_alloc_words = sess.encode_alloc_words;
    delta_extensions = sess.delta_extensions;
    rebuilds = sess.rebuilds_renumbered + sess.rebuilds_impure;
    rebuilds_renumbered = sess.rebuilds_renumbered;
    rebuilds_impure = sess.rebuilds_impure;
    lint_rejected = sess.lint_rejected;
  }

(* ---- streaming hooks: the long-lived session layer (Crcore.Session /
   crsolved) keeps engine sessions alive across requests ---- *)

let session_spec sess = sess.spec

let session_rejected sess = sess.lint_rejected

let session_stats = snapshot_stats

let refresh_budget sess =
  sess.deadline <- Option.map (fun ms -> now_ms () +. ms) sess.config.budget_ms;
  sess.spent_base <- conflicts_accrued sess

let ingest_session sess ?(orders = []) ?(tuples = []) () =
  if sess.lint_rejected then
    invalid_arg "Engine.ingest_session: session was rejected by the lint pre-phase";
  if orders <> [] || tuples <> [] then begin
    let spec = sess.spec in
    let entity =
      if tuples = [] then spec.Spec.entity
      else Entity.make (Spec.schema spec) (Entity.tuples spec.Spec.entity @ tuples)
    in
    (* tuples appended, order edges prepended: exactly the pure-extension
       shape {!Encode.extend} serves with a Delta or Renumbered encoding *)
    let spec' =
      Spec.make entity ~orders:(orders @ spec.Spec.orders) ~sigma:spec.Spec.sigma
        ~gamma:spec.Spec.gamma
    in
    apply_extension sess spec'
  end

let count_known known = Array.fold_left (fun n v -> if v = None then n else n + 1) 0 known

(* The graceful-degradation ladder (Exact → PartialDeduce → PickFallback),
   driven by what the budget interruption leaves established:

   - validity [Unknown]: nothing is proven, so degrade straight to
     [PickFallback] (the paper's Pick baseline, deterministic) when
     [max_degrade] allows. Capped at [PartialDeduce], unit propagation
     decides: a UP conflict is an exact invalidity proof, otherwise the
     UP facts are reported at avowedly lower confidence. Capped at
     [Exact], a conservative empty answer is returned with the reason
     recorded.
   - deduction interrupted (validity proven): land at [PartialDeduce]
     with the facts proven so far — UP seeds plus confirmed probes, a
     sound subset of the full backbone.
   - suggestion/round interrupted (deduction complete): keep the exact
     facts of the current round and stop interacting; also
     [PartialDeduce], since the interactive fixpoint was not reached.

   Every degraded answer is a deterministic function of the spec and the
   budget (conflict budgets count CDCL conflicts, never wall time), so
   jobs = 1 and jobs = 4 agree. The soft [budget_ms] deadline is the
   exception by design: it is checked only between phases and rounds, and
   documented as schedule-dependent. *)
let resolve_session sess ~user =
  let schema = Spec.schema sess.spec in
  let arity = Schema.arity schema in
  let allowed lvl = level_rank lvl <= level_rank sess.config.max_degrade in
  (* cap a desired landing level at [max_degrade] *)
  let land_at lvl = if allowed lvl then lvl else sess.config.max_degrade in
  let mk ~resolved ~valid ~rounds ~per_round ~level ~reason =
    {
      resolved;
      valid;
      rounds;
      per_round_known = List.rev per_round;
      level;
      degrade_reason = reason;
      conflicts_spent = conflicts_spent sess;
    }
  in
  let invalid_result ~rounds ~per_round =
    mk ~resolved:(Array.make arity None) ~valid:false ~rounds
      ~per_round:(0 :: per_round) ~level:Exact ~reason:None
  in
  (* validity could not be established before the budget ran out *)
  let degrade_unknown_validity cause ~rounds ~per_round =
    let reason = Some { cause; phase = Validity_p } in
    match land_at PickFallback with
    | PickFallback ->
        let resolved =
          Array.map Option.some (Pick.run ~strategy:sess.config.pick_strategy sess.spec)
        in
        mk ~resolved ~valid:true ~rounds
          ~per_round:(count_known resolved :: per_round)
          ~level:PickFallback ~reason
    | PartialDeduce ->
        let enc = the_enc sess in
        if Deduce.unit_conflict enc then
          (* unit propagation refutes Φ(Se): an exact invalidity proof,
             cheaper than the interrupted solve *)
          invalid_result ~rounds ~per_round
        else
          (* the degraded answer must stay inside the exact engine's fact
             set: positive units only, universe-certain values only *)
          let d = Deduce.deduce_units enc in
          let resolved = Deduce.certain_values d in
          mk ~resolved ~valid:true ~rounds
            ~per_round:(count_known resolved :: per_round)
            ~level:PartialDeduce ~reason
    | Exact ->
        (* no degradation allowed: conservative unresolved answer, the
           recorded reason distinguishing it from proven invalidity *)
        mk ~resolved:(Array.make arity None) ~valid:false ~rounds
          ~per_round:(0 :: per_round) ~level:Exact ~reason
  in
  (* validity proven, later work interrupted: report the sound facts *)
  let degrade_partial cause phase resolved ~rounds ~per_round =
    let reason = Some { cause; phase } in
    mk ~resolved ~valid:true ~rounds
      ~per_round:(count_known resolved :: per_round)
      ~level:(land_at PartialDeduce) ~reason
  in
  let outcome =
    (* a lint-rejected spec is provably unsatisfiable: report the same
       outcome IsValid would, without ever building a solver *)
    if sess.lint_rejected then invalid_result ~rounds:0 ~per_round:[]
    else begin
      (* one analyse step: validity then deduction, budget-aware *)
      let analyse ~rounds ~per_round =
        if wall_tripped sess then
          `Stop (degrade_unknown_validity Wall ~rounds ~per_round)
        else begin
          fire sess Faults.Solve Validity_p;
          if exhausted_now sess then
            `Stop (degrade_unknown_validity Conflicts ~rounds ~per_round)
          else
            match timed sess Validity_p (fun () -> check_validity sess) with
            | Sat.Solver.Limited.Unsat -> `Invalid
            | Sat.Solver.Limited.Unknown ->
                `Stop (degrade_unknown_validity Conflicts ~rounds ~per_round)
            | Sat.Solver.Limited.Sat ->
                if wall_tripped sess then
                  (* validity known; the cheapest sound deduction (UP) is
                     still affordable — SAT probing is not *)
                  let d = Deduce.deduce_units (the_enc sess) in
                  `Stop
                    (degrade_partial Wall Deduce_p (Deduce.certain_values d) ~rounds
                       ~per_round)
                else begin
                  fire sess Faults.Deduce Deduce_p;
                  if exhausted_now sess then
                    let d = Deduce.deduce_units (the_enc sess) in
                    `Stop
                      (degrade_partial Conflicts Deduce_p (Deduce.certain_values d)
                         ~rounds ~per_round)
                  else
                    let d = timed sess Deduce_p (fun () -> deduce_on sess (the_enc sess)) in
                    if d.Deduce.stats.Deduce.complete then `Go (d, Deduce.true_values d)
                    else
                      `Stop
                        (degrade_partial Conflicts Deduce_p (Deduce.true_values d)
                           ~rounds ~per_round)
                end
        end
      in
      let finished = ref None in
      let d = ref None in
      let known = ref (Array.make arity None) in
      let per_round = ref [] in
      let rounds = ref 0 in
      (match analyse ~rounds:0 ~per_round:[] with
      | `Invalid -> finished := Some (invalid_result ~rounds:0 ~per_round:[])
      | `Stop r -> finished := Some r
      | `Go (d0, known0) ->
          d := Some d0;
          known := known0;
          per_round := [ count_known known0 ]);
      while !finished = None do
        let exact_here () =
          mk ~resolved:!known ~valid:true ~rounds:!rounds ~per_round:!per_round
            ~level:Exact ~reason:None
        in
        if count_known !known = arity || !rounds >= sess.config.max_rounds then
          finished := Some (exact_here ())
        else if wall_tripped sess then
          finished :=
            Some (degrade_partial Wall Suggest_p !known ~rounds:!rounds ~per_round:!per_round)
        else begin
          fire sess Faults.Maxsat Suggest_p;
          if exhausted_now sess then
            finished :=
              Some
                (degrade_partial Conflicts Suggest_p !known ~rounds:!rounds
                   ~per_round:!per_round)
          else begin
            let d0 = match !d with Some d -> d | None -> assert false in
            let suggestion =
              timed sess Suggest_p (fun () -> suggest_on sess d0 ~known:!known)
            in
            if exhausted_now sess then
              (* the budget ran out inside the suggestion's MaxSAT layer;
                 its content is a truncated guess — stop the interaction
                 instead of asking the user about it *)
              finished :=
                Some
                  (degrade_partial Conflicts Suggest_p !known ~rounds:!rounds
                     ~per_round:!per_round)
            else begin
              let answer = user suggestion ~schema in
              if answer = [] then finished := Some (exact_here ())
              else begin
                incr rounds;
                (* the fresh tuple t_o of the paper's Remark (1): provided
                   values, plus the already-established ones, null elsewhere *)
                let values =
                  Array.init arity (fun a ->
                      let name = Schema.name schema a in
                      match List.assoc_opt name answer with
                      | Some v -> v
                      | None -> ( match !known.(a) with Some v -> v | None -> Value.Null))
                in
                let tup = Tuple.of_array schema values in
                let current_attrs =
                  List.filter_map
                    (fun a ->
                      if Value.is_null values.(a) then None
                      else Some (Schema.name schema a))
                    (List.init arity Fun.id)
                in
                apply_extension sess (Spec.extend_with_tuple sess.spec tup ~current_attrs);
                match analyse ~rounds:!rounds ~per_round:!per_round with
                | `Invalid ->
                    finished :=
                      Some
                        (mk ~resolved:!known ~valid:false ~rounds:!rounds
                           ~per_round:!per_round ~level:Exact ~reason:None)
                | `Stop r -> finished := Some r
                | `Go (d', known') ->
                    d := Some d';
                    known := known';
                    per_round := count_known known' :: !per_round
              end
            end
          end
        end
      done;
      match !finished with Some r -> r | None -> assert false
    end
  in
  (outcome, snapshot_stats sess)

let resolve ?config ?cache ?label ~user spec =
  resolve_session (create_session ?config ?cache ?label spec) ~user

(* ---- batches ---- *)

type item = { label : string; spec : Spec.t; user : user }

type item_result = {
  label : string;
  outcome : (result, error_info) Stdlib.result;
  stats : entity_stats;
}

type stats = {
  entities : int;
  valid_entities : int;
  errors : int;
  degraded_partial : int;
  degraded_pick : int;
  budget_exhausted : int;
  total_rounds : int;
  attrs_total : int;
  attrs_resolved : int;
  times : phase_times;
  solver : Sat.Solver.stats;
  solvers_built : int;
  solvers_reused : int;
  deduce_sat_calls : int;
  deduce_probes : int;
  deduce_model_prunes : int;
  deduce_seeded : int;
  static_facts : int;
  probes_avoided : int;
  cache_hits : int;
  cache_misses : int;
  hit_ratio : float;
  template_hits : int;
  template_misses : int;
  template_hit_ratio : float;
  instantiations : int;
  encode_alloc_words : float;
  delta_extensions : int;
  rebuilds : int;
  rebuilds_renumbered : int;
  rebuilds_impure : int;
  lint_rejected : int;
  jobs : int;
  jobs_requested : int;
  wall_ms : float;
}

let cache_hit_rate st = st.hit_ratio

let throughput st =
  if st.wall_ms <= 0. then 0. else 1000. *. float_of_int st.entities /. st.wall_ms

let pp_stats ppf st =
  Format.fprintf ppf
    "@[<v>entities: %d (%d valid), %d interaction round(s), %d/%d attrs resolved@ \
     robustness: %d error(s); degraded: %d partial, %d pick; %d budget-exhausted@ \
     phases (ms, summed over %d job(s)%s): lint %.1f | encode %.1f | saturate %.1f | \
     validity %.1f | deduce %.1f | suggest %.1f@ \
     lint: %d spec(s) rejected before encoding@ \
     solver: %a; %d CNF load(s), %d phase(s) on live sessions@ \
     deduce: %d SAT call(s) (%d probe(s), %d model-prune(s), %d seeded)@ \
     saturate: %d static fact(s) derived, %d probe(s) avoided@ \
     encode cache: %d hit(s) / %d miss(es) (%.0f%%); templates: %d hit(s) / \
     %d miss(es) (%.0f%%), %d instantiation(s)@ \
     encode alloc: %.0f minor words; %d delta extension(s), \
     %d rebuild(s) (%d renumbered, %d impure)@ \
     wall: %.1f ms (%.1f entities/s)@]"
    st.entities st.valid_entities st.total_rounds st.attrs_resolved st.attrs_total
    st.errors st.degraded_partial st.degraded_pick st.budget_exhausted
    st.jobs
    (if st.jobs_requested <> st.jobs then
       Printf.sprintf ", %d requested" st.jobs_requested
     else "")
    st.times.lint_ms st.times.encode_ms st.times.saturate_ms st.times.validity_ms
    st.times.deduce_ms st.times.suggest_ms st.lint_rejected Sat.Solver.pp_stats
    st.solver st.solvers_built
    st.solvers_reused st.deduce_sat_calls st.deduce_probes st.deduce_model_prunes
    st.deduce_seeded st.static_facts st.probes_avoided st.cache_hits st.cache_misses
    (100. *. st.hit_ratio)
    st.template_hits st.template_misses
    (100. *. st.template_hit_ratio)
    st.instantiations st.encode_alloc_words
    st.delta_extensions st.rebuilds st.rebuilds_renumbered st.rebuilds_impure st.wall_ms
    (throughput st)

(* Constraint-list interning now happens at spec construction
   ({!Spec.make_res} routes every list through the global pool), so this
   pass is a no-op for specs built through [Spec.make]. It is kept for
   items whose specs were assembled as record literals: {!Encode} reuses
   compiled forms by physical identity and the template cache keys on the
   intern ids, so canonicalising here still pays once per item. *)
let intern_constraint_lists items =
  List.map
    (fun it ->
      let s = it.spec in
      let sigma, _ = Spec.intern_sigma s.Spec.sigma in
      let gamma, _ = Spec.intern_gamma s.Spec.gamma in
      if sigma == s.Spec.sigma && gamma == s.Spec.gamma then it
      else { it with spec = { s with Spec.sigma; gamma } })
    items

let aggregate ~jobs ~jobs_requested ~wall_ms (results : item_result array) =
  let agg_times = zero_times () in
  let entities = ref 0
  and valid_entities = ref 0
  and errors = ref 0
  and degraded_partial = ref 0
  and degraded_pick = ref 0
  and budget_exhausted = ref 0
  and total_rounds = ref 0
  and attrs_total = ref 0
  and attrs_resolved = ref 0
  and solver = ref Sat.Solver.zero_stats
  and solvers_built = ref 0
  and solvers_reused = ref 0
  and deduce_sat_calls = ref 0
  and deduce_probes = ref 0
  and deduce_model_prunes = ref 0
  and deduce_seeded = ref 0
  and static_facts = ref 0
  and probes_avoided = ref 0
  and cache_hits = ref 0
  and cache_misses = ref 0
  and template_hits = ref 0
  and template_misses = ref 0
  and instantiations = ref 0
  and encode_alloc_words = ref 0.
  and delta_extensions = ref 0
  and rebuilds_renumbered = ref 0
  and rebuilds_impure = ref 0
  and lint_rejected = ref 0 in
  Array.iter
    (fun { outcome; stats = st; _ } ->
      incr entities;
      (match outcome with
      | Error _ -> incr errors
      | Ok result ->
          if result.valid then incr valid_entities;
          (match result.level with
          | Exact -> ()
          | PartialDeduce -> incr degraded_partial
          | PickFallback -> incr degraded_pick);
          if result.degrade_reason <> None then incr budget_exhausted;
          total_rounds := !total_rounds + result.rounds;
          attrs_total := !attrs_total + Array.length result.resolved;
          attrs_resolved := !attrs_resolved + count_known result.resolved);
      agg_times.lint_ms <- agg_times.lint_ms +. st.times.lint_ms;
      agg_times.encode_ms <- agg_times.encode_ms +. st.times.encode_ms;
      agg_times.saturate_ms <- agg_times.saturate_ms +. st.times.saturate_ms;
      agg_times.validity_ms <- agg_times.validity_ms +. st.times.validity_ms;
      agg_times.deduce_ms <- agg_times.deduce_ms +. st.times.deduce_ms;
      agg_times.suggest_ms <- agg_times.suggest_ms +. st.times.suggest_ms;
      solver := Sat.Solver.add_stats !solver st.solver;
      solvers_built := !solvers_built + st.solvers_built;
      solvers_reused := !solvers_reused + st.solvers_reused;
      deduce_sat_calls := !deduce_sat_calls + st.deduce_sat_calls;
      deduce_probes := !deduce_probes + st.deduce_probes;
      deduce_model_prunes := !deduce_model_prunes + st.deduce_model_prunes;
      deduce_seeded := !deduce_seeded + st.deduce_seeded;
      static_facts := !static_facts + st.static_facts;
      probes_avoided := !probes_avoided + st.probes_avoided;
      cache_hits := !cache_hits + st.cache_hits;
      cache_misses := !cache_misses + st.cache_misses;
      template_hits := !template_hits + st.template_hits;
      template_misses := !template_misses + st.template_misses;
      instantiations := !instantiations + st.instantiations;
      encode_alloc_words := !encode_alloc_words +. st.encode_alloc_words;
      delta_extensions := !delta_extensions + st.delta_extensions;
      rebuilds_renumbered := !rebuilds_renumbered + st.rebuilds_renumbered;
      rebuilds_impure := !rebuilds_impure + st.rebuilds_impure;
      if st.lint_rejected then incr lint_rejected)
    results;
  let lookups = !cache_hits + !cache_misses in
  let tlookups = !template_hits + !template_misses in
  {
    entities = !entities;
    valid_entities = !valid_entities;
    errors = !errors;
    degraded_partial = !degraded_partial;
    degraded_pick = !degraded_pick;
    budget_exhausted = !budget_exhausted;
    total_rounds = !total_rounds;
    attrs_total = !attrs_total;
    attrs_resolved = !attrs_resolved;
    times = agg_times;
    solver = !solver;
    solvers_built = !solvers_built;
    solvers_reused = !solvers_reused;
    deduce_sat_calls = !deduce_sat_calls;
    deduce_probes = !deduce_probes;
    deduce_model_prunes = !deduce_model_prunes;
    deduce_seeded = !deduce_seeded;
    static_facts = !static_facts;
    probes_avoided = !probes_avoided;
    cache_hits = !cache_hits;
    cache_misses = !cache_misses;
    hit_ratio =
      (if lookups = 0 then 0. else float_of_int !cache_hits /. float_of_int lookups);
    template_hits = !template_hits;
    template_misses = !template_misses;
    template_hit_ratio =
      (if tlookups = 0 then 0.
       else float_of_int !template_hits /. float_of_int tlookups);
    instantiations = !instantiations;
    encode_alloc_words = !encode_alloc_words;
    delta_extensions = !delta_extensions;
    rebuilds = !rebuilds_renumbered + !rebuilds_impure;
    rebuilds_renumbered = !rebuilds_renumbered;
    rebuilds_impure = !rebuilds_impure;
    lint_rejected = !lint_rejected;
    jobs;
    jobs_requested;
    wall_ms;
  }

let run_batch ?(config = default_config) ?cache ?on_result items =
  let cache = match cache with Some c -> c | None -> create_cache () in
  let jobs_requested = max 1 config.jobs in
  (* more domains than cores is a pure loss (BENCH_par: jobs=4 on a 1-core
     host ran 3x slower), so the effective width is capped by default;
     [clamp_jobs = false] restores the literal request for scheduling
     tests and benchmarks that need over-subscription on purpose *)
  let jobs =
    if config.clamp_jobs then min jobs_requested (Parallel.Pool.recommended_jobs ())
    else jobs_requested
  in
  let jobs = max 1 jobs in
  let t0 = now_ms () in
  let items = Array.of_list (intern_constraint_lists items) in
  let n = Array.length items in
  let results : item_result option array = Array.make n None in
  (* Fault isolation: one entity's failure must not take down the batch.
     The session is built and run under a handler; the [track] ref (shared
     with the session) attributes the exception to the phase that was
     executing, and whatever statistics the session accumulated before
     dying are kept. [fail_fast] restores the pre-isolation contract: the
     first failure propagates (with its original backtrace) out of
     [run_batch]. *)
  let process i =
    let item = items.(i) in
    let track = ref Lint_p in
    let sess_cell = ref None in
    let outcome =
      try
        let sess = make_session ~config ~cache ~label:item.label ~track item.spec in
        sess_cell := Some sess;
        Ok (resolve_session sess ~user:item.user)
      with e when not config.fail_fast ->
        let bt = Printexc.get_raw_backtrace () in
        Error
          {
            exn = Printexc.to_string e;
            backtrace = Printexc.raw_backtrace_to_string bt;
            phase = !track;
          }
    in
    match outcome with
    | Ok (result, st) ->
        results.(i) <- Some { label = item.label; outcome = Ok result; stats = st }
    | Error e ->
        let st =
          match !sess_cell with
          | Some sess -> snapshot_stats sess
          | None -> zero_entity_stats ()
        in
        results.(i) <- Some { label = item.label; outcome = Error e; stats = st }
  in
  let the_result i =
    match results.(i) with Some r -> r | None -> assert false
  in
  if jobs = 1 || n <= 1 then
    for i = 0 to n - 1 do
      process i;
      match on_result with Some f -> f (the_result i) | None -> ()
    done
  else begin
    (* Results are written to disjoint indices (race-free), and joining
       the pool's job happens-before [run] returns (publication-safe).
       [on_result] streams the finished prefix in input order — exactly
       the sequence the sequential path emits, whatever the schedule. *)
    let emit_m = Mutex.create () in
    let emitted = ref 0 in
    let process_and_emit i =
      process i;
      match on_result with
      | None -> ()
      | Some f ->
          Mutex.lock emit_m;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock emit_m)
            (fun () ->
              while !emitted < n && Option.is_some results.(!emitted) do
                f (the_result !emitted);
                incr emitted
              done)
    in
    Parallel.Pool.with_pool ~jobs (fun pool ->
        Parallel.Pool.run pool ~n process_and_emit)
  end;
  let results = Array.map (fun r -> match r with Some r -> r | None -> assert false) results in
  let stats = aggregate ~jobs ~jobs_requested ~wall_ms:(now_ms () -. t0) results in
  (Array.to_list results, stats)
