(** Static currency deduction: a polynomial-time saturation (chase) over
    the ground instances Ω(Se), computing the closure of {e certain}
    value-currency facts — facts true in every completion — without a
    solver.

    The rules are exactly the unit-propagation reflections of Φ(Se)'s
    clauses: units of Ω(Se) are axioms; an implication instance whose
    premises are all in the closure contributes its conclusion (modus
    ponens); two chained facts contribute their transitive composition;
    and in [Exact] mode a vetoed singleton premise [¬f] meets the
    totality clause [f ∨ rev f] to yield [rev f]. Every closure fact is
    therefore level-0 implied by Φ(Se): the closure is pointwise a subset
    of the positive backbone whenever Φ(Se) is satisfiable.

    In [Paper] mode the closure is also {e complete} when saturation
    finds no refutation: the closure-as-assignment (closure facts true,
    everything else false) is then a model of Φ(Se), so any fact outside
    the closure is false in some completion and the closure equals the
    positive backbone exactly — {!complete} reports this, and
    [refutation = None] coincides with [Validity.is_valid]. [Exact] mode
    is conservatively incomplete (totality clauses can force facts the
    chase cannot see).

    Every derived fact carries a {e certificate}: the chain of ground
    derivation steps, checkable by {!verify} — an independent ~100-line
    checker that re-instantiates constraints from the raw [Spec.t] and
    never trusts the saturation code. *)

(** How one step of a derivation was obtained. *)
type rule =
  | Axiom of Encode.source
      (** a unit of Ω(Se): an explicit currency-order edge, the
          null-is-lowest rule, or a premise-free constraint instance *)
  | Implication of Encode.source
      (** modus ponens on a ground instance of Σ or Γ whose premises are
          the referenced steps *)
  | Trans  (** transitivity: [lo ≺ mid] and [mid ≺ hi] give [lo ≺ hi] *)
  | Total of int
      (** [Exact] mode only: Γ's veto [¬f] (the CFD at this Γ index has a
          singleton ω_X premise and an RHS constant the entity never
          takes) meets the totality clause [f ∨ rev f] *)
  | Assumed
      (** a hypothesis seeded by {!derives} [~assume]; never appears in
          an emitted certificate and is rejected by {!verify} *)

(** One derivation step: [premises] index earlier steps. *)
type step = { fact : Encode.fact; rule : rule; premises : int list }

(** A statically-proved contradiction: Φ(Se) is unsatisfiable. *)
type refutation =
  | Cycle of { attr : int; lo : int; hi : int; s1 : int; s2 : int }
      (** both orientations of a fact were derived (steps [s1], [s2]) —
          a cycle in the certain part of the currency order *)
  | Veto of { gamma : int; steps : int list }
      (** every premise of the veto of Γ's CFD [gamma] was derived *)

type t

(** [of_parts ~mode ?plan parts] saturates the ground instances to a
    fixpoint. [plan] is a Σ firing-order ranking (see {!plan_for}); it
    affects only the order work is done, never the closure. *)
val of_parts : mode:Encode.mode -> ?plan:int array -> Encode.parts -> t

(** [of_encode enc] saturates an existing encoding's instances (no
    re-instantiation), with the firing plan memoised per Σ template. *)
val of_encode : Encode.t -> t

(** [of_spec ?mode spec] instantiates ({!Encode.parts}) and saturates. *)
val of_spec : ?mode:Encode.mode -> Spec.t -> t

val mode : t -> Encode.mode
val coding : t -> Coding.t

(** [mem t f] — is [f] in the closure of certain facts? *)
val mem : t -> Encode.fact -> bool

(** The closure, in derivation order. *)
val facts : t -> Encode.fact list

val n_facts : t -> int

(** The closure as Boolean variables of the encoding's numbering. *)
val fact_vars : t -> int list

(** The closure as positive literals, ready to seed a SAT session. *)
val unit_lits : t -> Sat.Lit.t list

(** [complete t]: the closure provably equals the positive backbone of
    Φ(Se) ([Paper] mode, no refutation). *)
val complete : t -> bool

(** The first statically-proved contradiction, if any. Saturation runs on
    to the full fixpoint regardless, so {!cyclic_attrs} and
    {!fired_vetoes} report {e every} contradiction site. *)
val refutation : t -> refutation option

(** [cyclic_attrs t].(a): the certain facts of attribute position [a]
    contain a cycle. *)
val cyclic_attrs : t -> bool array

(** Vetoes whose every premise is in the closure, as
    [(source, premise step ids)], most recently instantiated first. *)
val fired_vetoes : t -> (Encode.source * int list) list

(** {1 Hypothetical closures} *)

(** [derives ~mode parts concl] — is [concl] in the closure? [~assume]
    seeds extra hypothesis facts; [~drop_unit f src] removes matching
    units; [~drop_source src] removes matching units, implications and
    vetoes. Powers Analyze's subsumption (W007: drop one constraint's
    instances, assume a ground premise) and redundancy (I004: drop one
    explicit edge) diagnostics. *)
val derives :
  mode:Encode.mode ->
  ?drop_unit:(Encode.fact -> Encode.source -> bool) ->
  ?drop_source:(Encode.source -> bool) ->
  ?assume:Encode.fact list ->
  Encode.parts ->
  Encode.fact ->
  bool

(** {1 Certificates} *)

type goal =
  | Derived of Encode.fact  (** the last chain step derives this fact *)
  | Cycle_goal of Encode.fact
      (** the chain derives both orientations of this fact *)
  | Veto_goal of int
      (** the chain derives every premise of the veto of Γ's CFD at this
          index *)

(** A self-contained derivation: [chain] steps reference earlier chain
    positions only. *)
type cert = { cmode : Encode.mode; goal : goal; chain : step list }

(** [certificate t f] — the derivation of closure fact [f], or [None]
    when [f] is not in the closure (or was assumed). *)
val certificate : t -> Encode.fact -> cert option

(** The derivation of {!refutation}, if any. *)
val refutation_certificate : t -> cert option

(** [verify spec cert] checks the certificate against the raw
    specification alone: every step must be a legitimate ground inference
    over [spec] (constraints re-instantiated via
    [Currency.Constraint_ast.instantiate], CFD premises rebuilt from the
    active domains) and the chain must establish the goal. Trusts nothing
    from the saturation engine. *)
val verify : Spec.t -> cert -> (unit, string) result

val cert_to_json : cert -> string
val cert_of_json : string -> (cert, string) result

(** [pp_cert spec ppf cert] renders the chain with attribute names and
    values. *)
val pp_cert : Spec.t -> Format.formatter -> cert -> unit

(** {1 Template plan} *)

(** [plan_for sigma] ranks Σ's constraints in a dependency-stratified
    firing order (producers of an attribute's facts before consumers),
    memoised per physical Σ list — the per-template piece of saturation,
    shared across every entity of a batch holding the same Σ. *)
val plan_for : Currency.Constraint_ast.t list -> int array

(** Domain-local [(hits, misses)] of the {!plan_for} memo. *)
val template_stats : unit -> int * int
