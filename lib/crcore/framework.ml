type user = Rules.suggestion -> schema:Schema.t -> (string * Value.t) list

let oracle ?(max_answers = max_int) truth suggestion ~schema =
  List.filteri (fun i _ -> i < max_answers) suggestion.Rules.attrs
  |> List.map (fun a ->
         let name = Schema.name schema a in
         (name, Tuple.get_by_name truth name))

let silent _suggestion ~schema:_ = []

type timings = { mutable validity : float; mutable deduce : float; mutable suggest : float }

type outcome = {
  resolved : Value.t option array;
  valid : bool;
  rounds : int;
  per_round_known : int list;
  timings : timings;
}

(* The loop itself lives in Engine; this entry point is the one-entity,
   non-incremental configuration it grew out of, with the historical
   phase accounting (encoding counted inside IsValid, seconds). *)
let resolve ?(mode = Encode.Paper) ?(deduce = Deduce.backbone)
    ?(repair = Rules.Exact_maxsat) ?(max_rounds = 5) ~user spec =
  (* lint off: this is the pure SAT reference path the engine's lint
     short-circuit is property-tested against. The default deducer tracks
     Engine.default_config so the two entry points stay equivalent. *)
  let config =
    {
      Engine.mode;
      deduce;
      repair;
      max_rounds;
      incremental = false;
      cache = false;
      lint = false;
      (* saturate off too: this path must stay the static-free reference
         the saturation pre-phase is property-tested against *)
      saturate = false;
      jobs = 1;
      clamp_jobs = true;
      budget_conflicts = None;
      budget_ms = None;
      max_degrade = Engine.PickFallback;
      pick_strategy = Pick.Favoured;
      fail_fast = false;
      (* simplify off as well: plain solvers, no inprocessing — the
         reference the simplifying engine is property-tested against *)
      simplify = false;
    }
  in
  let r, st = Engine.resolve ~config ~user spec in
  let t = st.Engine.times in
  {
    resolved = r.Engine.resolved;
    valid = r.Engine.valid;
    rounds = r.Engine.rounds;
    per_round_known = r.Engine.per_round_known;
    timings =
      {
        validity = (t.Engine.encode_ms +. t.Engine.validity_ms) /. 1000.;
        deduce = t.Engine.deduce_ms /. 1000.;
        suggest = t.Engine.suggest_ms /. 1000.;
      };
  }
