type order_edge = { attr : string; lo : int; hi : int }

type t = {
  entity : Entity.t;
  orders : order_edge list;
  sigma : Currency.Constraint_ast.t list;
  gamma : Cfd.Constant_cfd.t list;
}

type error =
  | Unknown_order_attribute of string
  | Order_index_out_of_range of { attr : string; index : int; size : int }
  | Reflexive_order_edge of { attr : string; index : int }
  | Unknown_constraint_attribute of { constraint_index : int; attr : string }
  | Unknown_cfd_attribute of { cfd_index : int; attr : string }

let pp_error ppf = function
  | Unknown_order_attribute attr ->
      Format.fprintf ppf "unknown attribute %S in order" attr
  | Order_index_out_of_range { attr; index; size } ->
      Format.fprintf ppf "order edge on %S: tuple index %d out of range [0,%d)" attr index size
  | Reflexive_order_edge { attr; index } ->
      Format.fprintf ppf "reflexive order edge on %S at tuple %d" attr index
  | Unknown_constraint_attribute { constraint_index; attr } ->
      Format.fprintf ppf "currency constraint #%d mentions unknown attribute %S"
        constraint_index attr
  | Unknown_cfd_attribute { cfd_index; attr } ->
      Format.fprintf ppf "CFD #%d mentions unknown attribute %S" cfd_index attr

exception Spec_error of error

let make_res entity ~orders ~sigma ~gamma =
  let schema = Entity.schema entity in
  let n = Entity.size entity in
  try
    List.iter
      (fun { attr; lo; hi } ->
        if not (Schema.mem schema attr) then raise (Spec_error (Unknown_order_attribute attr));
        let check_idx index =
          if index < 0 || index >= n then
            raise (Spec_error (Order_index_out_of_range { attr; index; size = n }))
        in
        check_idx lo;
        check_idx hi;
        if lo = hi then raise (Spec_error (Reflexive_order_edge { attr; index = lo })))
      orders;
    List.iteri
      (fun k c ->
        match Currency.Constraint_ast.check_schema c schema with
        | Ok () -> ()
        | Error a ->
            raise (Spec_error (Unknown_constraint_attribute { constraint_index = k; attr = a })))
      sigma;
    List.iteri
      (fun k c ->
        match Cfd.Constant_cfd.check_schema c schema with
        | Ok () -> ()
        | Error a -> raise (Spec_error (Unknown_cfd_attribute { cfd_index = k; attr = a })))
      gamma;
    Ok { entity; orders; sigma; gamma }
  with Spec_error e -> Error e

let make entity ~orders ~sigma ~gamma =
  match make_res entity ~orders ~sigma ~gamma with
  | Ok s -> s
  | Error e -> invalid_arg (Format.asprintf "Spec.make: %a" pp_error e)

let schema s = Entity.schema s.entity

let size s = Entity.size s.entity

let add_order_edges s edges = make s.entity ~orders:(edges @ s.orders) ~sigma:s.sigma ~gamma:s.gamma

let extend_with_tuple s tup ~current_attrs =
  let entity = Entity.make (schema s) (Entity.tuples s.entity @ [ tup ]) in
  let new_idx = Entity.size entity - 1 in
  let fresh_edges =
    List.concat_map
      (fun attr ->
        List.filter_map
          (fun i -> if i <> new_idx then Some { attr; lo = i; hi = new_idx } else None)
          (List.init new_idx Fun.id))
      current_attrs
  in
  make entity ~orders:(fresh_edges @ s.orders) ~sigma:s.sigma ~gamma:s.gamma

let pp ppf s =
  Format.fprintf ppf "@[<v>entity:@ %a@ |Σ| = %d, |Γ| = %d, |orders| = %d@]" Entity.pp
    s.entity (List.length s.sigma) (List.length s.gamma) (List.length s.orders)
