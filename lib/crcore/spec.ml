type order_edge = { attr : string; lo : int; hi : int }

type t = {
  entity : Entity.t;
  orders : order_edge list;
  sigma : Currency.Constraint_ast.t list;
  gamma : Cfd.Constant_cfd.t list;
}

type error =
  | Unknown_order_attribute of string
  | Order_index_out_of_range of { attr : string; index : int; size : int }
  | Reflexive_order_edge of { attr : string; index : int }
  | Unknown_constraint_attribute of { constraint_index : int; attr : string }
  | Unknown_cfd_attribute of { cfd_index : int; attr : string }

let pp_error ppf = function
  | Unknown_order_attribute attr ->
      Format.fprintf ppf "unknown attribute %S in order" attr
  | Order_index_out_of_range { attr; index; size } ->
      Format.fprintf ppf "order edge on %S: tuple index %d out of range [0,%d)" attr index size
  | Reflexive_order_edge { attr; index } ->
      Format.fprintf ppf "reflexive order edge on %S at tuple %d" attr index
  | Unknown_constraint_attribute { constraint_index; attr } ->
      Format.fprintf ppf "currency constraint #%d mentions unknown attribute %S"
        constraint_index attr
  | Unknown_cfd_attribute { cfd_index; attr } ->
      Format.fprintf ppf "CFD #%d mentions unknown attribute %S" cfd_index attr

exception Spec_error of error

(* ---- Σ/Γ interning ----

   Every spec of the same *shape* (same constraint lists up to structural
   equality) should carry the very same list values: Encode's compiled-
   constraint memos, Saturate.plan_for and the engine's template cache all
   key on physical identity (or on the integer ids handed out here), and a
   batch of distinct entities over one schema must share them. The pool
   maps each distinct list to a canonical representative and a dense id.

   The pool is global and mutex-guarded; a domain-local one-slot memo in
   front of it makes re-interning the canonical list (the overwhelmingly
   common case once [make_res] has interned a batch's specs) lock-free. *)
module Intern (X : sig
  type elt
end) =
struct
  type entry = { canon : X.elt list; id : int }

  let tbl : (int, entry list) Hashtbl.t = Hashtbl.create 64
  let next = ref 0
  let lock = Mutex.create ()

  let slot : (X.elt list * entry) option ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref None)

  let intern l =
    let cell = Domain.DLS.get slot in
    match !cell with
    | Some (src, e) when src == l -> (e.canon, e.id)
    | _ ->
        let h = Hashtbl.hash_param 100 200 l in
        Mutex.lock lock;
        let entries = Option.value (Hashtbl.find_opt tbl h) ~default:[] in
        let e =
          match List.find_opt (fun e -> e.canon == l) entries with
          | Some e -> e
          | None -> (
              match List.find_opt (fun e -> e.canon = l) entries with
              | Some e -> e
              | None ->
                  let e = { canon = l; id = !next } in
                  incr next;
                  Hashtbl.replace tbl h (e :: entries);
                  e)
        in
        Mutex.unlock lock;
        cell := Some (l, e);
        (e.canon, e.id)
end

module Sigma_pool = Intern (struct
  type elt = Currency.Constraint_ast.t
end)

module Gamma_pool = Intern (struct
  type elt = Cfd.Constant_cfd.t
end)

let intern_sigma = Sigma_pool.intern
let intern_gamma = Gamma_pool.intern

let make_res entity ~orders ~sigma ~gamma =
  let schema = Entity.schema entity in
  let n = Entity.size entity in
  try
    List.iter
      (fun { attr; lo; hi } ->
        if not (Schema.mem schema attr) then raise (Spec_error (Unknown_order_attribute attr));
        let check_idx index =
          if index < 0 || index >= n then
            raise (Spec_error (Order_index_out_of_range { attr; index; size = n }))
        in
        check_idx lo;
        check_idx hi;
        if lo = hi then raise (Spec_error (Reflexive_order_edge { attr; index = lo })))
      orders;
    List.iteri
      (fun k c ->
        match Currency.Constraint_ast.check_schema c schema with
        | Ok () -> ()
        | Error a ->
            raise (Spec_error (Unknown_constraint_attribute { constraint_index = k; attr = a })))
      sigma;
    List.iteri
      (fun k c ->
        match Cfd.Constant_cfd.check_schema c schema with
        | Ok () -> ()
        | Error a -> raise (Spec_error (Unknown_cfd_attribute { cfd_index = k; attr = a })))
      gamma;
    let sigma, _ = intern_sigma sigma in
    let gamma, _ = intern_gamma gamma in
    Ok { entity; orders; sigma; gamma }
  with Spec_error e -> Error e

let make entity ~orders ~sigma ~gamma =
  match make_res entity ~orders ~sigma ~gamma with
  | Ok s -> s
  | Error e -> invalid_arg (Format.asprintf "Spec.make: %a" pp_error e)

let sigma_id s = snd (intern_sigma s.sigma)
let gamma_id s = snd (intern_gamma s.gamma)

let schema s = Entity.schema s.entity

let size s = Entity.size s.entity

let add_order_edges s edges = make s.entity ~orders:(edges @ s.orders) ~sigma:s.sigma ~gamma:s.gamma

let extend_with_tuple s tup ~current_attrs =
  let entity = Entity.make (schema s) (Entity.tuples s.entity @ [ tup ]) in
  let new_idx = Entity.size entity - 1 in
  let fresh_edges =
    List.concat_map
      (fun attr ->
        List.filter_map
          (fun i -> if i <> new_idx then Some { attr; lo = i; hi = new_idx } else None)
          (List.init new_idx Fun.id))
      current_attrs
  in
  make entity ~orders:(fresh_edges @ s.orders) ~sigma:s.sigma ~gamma:s.gamma

let pp ppf s =
  Format.fprintf ppf "@[<v>entity:@ %a@ |Σ| = %d, |Γ| = %d, |orders| = %d@]" Entity.pp
    s.entity (List.length s.sigma) (List.length s.gamma) (List.length s.orders)
