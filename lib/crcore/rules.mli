(** Suggestions for user interaction (Section V-C): true-value derivation
    rules, their compatibility graph, max-clique selection, and MaxSAT
    repair of conflicting cliques.

    A derivation rule [(X, P\[X\]) → (B, b)] says: if [P\[X\]] are the true
    values of [X] then [b] is the true value of [B]. Rules come from
    constant CFDs directly and from the currency-constraint instances of
    Ω(Se) by the paper's partition heuristic. *)

(** A derivation rule with attribute positions and value ids (per the
    encoding's {!Coding}). [x] is sorted by attribute and never mentions
    [b]. *)
type rule = { x : (int * int) list; b : int; bval : int }

type suggestion = {
  attrs : int list;  (** [A]: the attributes to ask the user about *)
  candidates : (int * Value.t list) list;
      (** [V(A)]: candidate true values for each suggested attribute *)
  derivable : int list;
      (** [A']: attributes whose true values follow once [A] is
          validated *)
  clique_size : int;        (** size of the clique before MaxSAT repair *)
  repaired_clique_size : int;  (** after conflict repair *)
  clique_optimal : bool;
      (** the max-clique search was exhaustive (node budget not spent,
          exact rather than greedy — see {!Clique.Maxclique.find_r}) *)
  repair_optimal : bool;
      (** the conflict repair is certified maximum: [false] under a spent
          conflict budget or the [Walksat] local-search repair *)
}

(** How [GetSug] repairs a clique that conflicts with the specification. *)
type repair = Exact_maxsat | Walksat

(** [derive_rules d ~known] is the paper's [TrueDer] over the deduction
    result [d]; [known] are the true values established so far (their
    attributes get no rules). *)
val derive_rules : Deduce.t -> known:Value.t option array -> rule list

(** [compatibility_graph rules] is [CompGraph]: vertices are rules, with an
    edge when two rules derive different attributes and agree on every
    shared attribute (the derived attribute counting as shared with value
    [bval]). *)
val compatibility_graph : rule list -> Clique.Ugraph.t

(** [suggest ?repair ?clique_threshold ?solver d ~known] is the full
    [Suggest] pipeline. [clique_threshold] bounds the exact max-clique
    search (default 400 vertices, greedy beyond). [solver] is an optional
    incremental SAT session already loaded with Φ(Se) (see
    {!Engine}): the clique-consistency check then solves under
    assumptions on it instead of building a fresh solver, and leaves it
    reusable. *)
val suggest :
  ?repair:repair ->
  ?clique_threshold:int ->
  ?solver:Sat.Solver.t ->
  Deduce.t ->
  known:Value.t option array ->
  suggestion

val pp_rule : Deduce.t -> Format.formatter -> rule -> unit
