(* crsolve: command-line conflict resolution.

   An entity instance comes as a CSV file (header = schema); currency
   constraints and constant CFDs come as text files in the syntax of
   Currency.Parser / Cfd.Constant_cfd.parse:

     # sigma.txt
     t1[status] = "working" & t2[status] = "retired" -> prec(status)
     prec(status) -> prec(job)

     # gamma.txt
     AC = 212 -> city = "NY"

   Subcommands: validate | resolve | suggest. `resolve --interactive`
   prompts for the suggested attributes on stdin. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_spec entity_file sigma_file gamma_file =
  let entity = Csv.load_entity entity_file in
  let sigma =
    match sigma_file with
    | None -> []
    | Some f -> (
        match Currency.Parser.parse_many (read_file f) with
        | Ok l -> l
        | Error m -> failwith ("cannot parse currency constraints: " ^ m))
  in
  let gamma =
    match gamma_file with
    | None -> []
    | Some f -> (
        match Cfd.Constant_cfd.parse_many (read_file f) with
        | Ok l -> l
        | Error m -> failwith ("cannot parse CFDs: " ^ m))
  in
  Crcore.Spec.make entity ~orders:[] ~sigma ~gamma

let mode_of_exact exact = if exact then Crcore.Encode.Exact else Crcore.Encode.Paper

(* ---- validate ---- *)

let run_validate entity_file sigma_file gamma_file exact =
  let spec = load_spec entity_file sigma_file gamma_file in
  let ok = Crcore.Validity.is_valid ~mode:(mode_of_exact exact) spec in
  Printf.printf "specification is %s\n" (if ok then "VALID" else "INVALID");
  if ok then 0 else 1

(* ---- suggest ---- *)

let run_suggest entity_file sigma_file gamma_file exact =
  let spec = load_spec entity_file sigma_file gamma_file in
  let schema = Crcore.Spec.schema spec in
  let enc = Crcore.Encode.encode ~mode:(mode_of_exact exact) spec in
  if not (Crcore.Validity.check enc) then begin
    print_endline "specification is INVALID";
    1
  end
  else begin
    let d = Crcore.Deduce.deduce_order enc in
    let known = Crcore.Deduce.true_values d in
    Array.iteri
      (fun a vo ->
        Printf.printf "%-16s %s\n" (Schema.name schema a)
          (match vo with Some v -> Value.to_string v | None -> "?"))
      known;
    if Array.for_all (fun v -> v <> None) known then
      print_endline "\nall true values deduced; nothing to ask"
    else begin
      let s = Crcore.Rules.suggest d ~known in
      Printf.printf "\nsuggestion: provide true values for [%s]\n"
        (String.concat "; " (List.map (Schema.name schema) s.Crcore.Rules.attrs));
      List.iter
        (fun (a, vals) ->
          Printf.printf "  %s in { %s }\n" (Schema.name schema a)
            (String.concat " | " (List.map Value.to_string vals)))
        s.Crcore.Rules.candidates;
      Printf.printf "derivable afterwards: [%s]\n"
        (String.concat "; " (List.map (Schema.name schema) s.Crcore.Rules.derivable))
    end;
    0
  end

(* ---- resolve ---- *)

let stdin_user suggestion ~schema =
  List.filter_map
    (fun (a, cands) ->
      Printf.printf "true value for %s%s? (empty to skip) " (Schema.name schema a)
        (if cands = [] then ""
         else Printf.sprintf " [%s]" (String.concat " | " (List.map Value.to_string cands)));
      match In_channel.input_line stdin with
      | None | Some "" -> None
      | Some line -> Some (Schema.name schema a, Value.of_string line))
    suggestion.Crcore.Rules.candidates

let run_resolve entity_file sigma_file gamma_file exact interactive truth_file max_rounds =
  let spec = load_spec entity_file sigma_file gamma_file in
  let schema = Crcore.Spec.schema spec in
  let user =
    if interactive then stdin_user
    else
      match truth_file with
      | Some f -> (
          match Csv.parse_file f with
          | [ header; row ] ->
              let tschema = Schema.make header in
              if not (Schema.equal tschema schema) then failwith "truth schema mismatch";
              Crcore.Framework.oracle (Tuple.make schema (List.map Value.of_string row))
          | _ -> failwith "truth file must have a header and exactly one row")
      | None -> Crcore.Framework.silent
  in
  let o =
    Crcore.Framework.resolve ~mode:(mode_of_exact exact) ~max_rounds ~user spec
  in
  if not o.Crcore.Framework.valid then begin
    print_endline "specification is INVALID";
    1
  end
  else begin
    Printf.printf "resolved after %d interaction(s):\n" o.Crcore.Framework.rounds;
    Array.iteri
      (fun a vo ->
        Printf.printf "%-16s %s\n" (Schema.name schema a)
          (match vo with Some v -> Value.to_string v | None -> "(undetermined)"))
      o.Crcore.Framework.resolved;
    0
  end

(* ---- implication ---- *)

let run_implication entity_file sigma_file gamma_file exact attr lo hi =
  let spec = load_spec entity_file sigma_file gamma_file in
  let mode = mode_of_exact exact in
  let f =
    { Crcore.Implication.attr; lo = Value.of_string lo; hi = Value.of_string hi }
  in
  let a = Crcore.Implication.holds ~mode spec f in
  Format.printf "%s ≺ %s in %s: %a@." lo hi attr Crcore.Implication.pp_answer a;
  match a with Crcore.Implication.Implied -> 0 | _ -> 1

(* ---- coverage ---- *)

let run_coverage entity_file sigma_file gamma_file exact =
  let spec = load_spec entity_file sigma_file gamma_file in
  let mode = mode_of_exact exact in
  if not (Crcore.Validity.is_valid ~mode spec) then begin
    print_endline "specification is INVALID";
    1
  end
  else begin
    let r = Crcore.Coverage.greedy ~mode spec in
    Printf.printf "coverage %s: %d assertion(s), |Ot| = %d\n"
      (if r.Crcore.Coverage.complete then "complete" else "INCOMPLETE")
      (List.length r.Crcore.Coverage.choices)
      r.Crcore.Coverage.cost;
    List.iter
      (fun c ->
        Printf.printf "  assert most current: %s = %s\n" c.Crcore.Coverage.attr
          (Value.to_string c.Crcore.Coverage.value))
      r.Crcore.Coverage.choices;
    let schema = Crcore.Spec.schema spec in
    Array.iteri
      (fun a vo ->
        Printf.printf "%-16s %s\n" (Schema.name schema a)
          (match vo with Some v -> Value.to_string v | None -> "?"))
      r.Crcore.Coverage.resolved;
    if r.Crcore.Coverage.complete then 0 else 1
  end

(* ---- repair ---- *)

let run_repair entity_file sigma_file gamma_file exact key output =
  (* here the "entity" CSV is a whole relation; [key] partitions it *)
  let relation = Csv.load_entity entity_file in
  let schema = Entity.schema relation in
  let spec = load_spec entity_file sigma_file gamma_file in
  let r =
    Crcore.Repair.run ~mode:(mode_of_exact exact)
      ~key:(if key = "" then [] else String.split_on_char ',' key)
      schema (Entity.tuples relation) ~sigma:spec.Crcore.Spec.sigma
      ~gamma:spec.Crcore.Spec.gamma
  in
  List.iter
    (fun (e : Crcore.Repair.entity_report) ->
      Printf.printf "# key=[%s] merged %d tuple(s), %d inferred, %d fallback%s\n"
        (String.concat ";" (List.map Value.to_string e.Crcore.Repair.key))
        e.Crcore.Repair.size e.Crcore.Repair.determined e.Crcore.Repair.fell_back
        (if e.Crcore.Repair.valid then "" else " [INVALID SPEC]"))
    r.Crcore.Repair.entities;
  let rows =
    Schema.attr_names schema
    :: List.map (fun t -> List.map Value.to_string (Tuple.values t)) r.Crcore.Repair.repaired
  in
  (match output with
  | Some path ->
      Csv.write_file path rows;
      Printf.printf "repaired relation written to %s\n" path
  | None -> print_string (Csv.to_string rows));
  if r.Crcore.Repair.invalid_entities = 0 then 0 else 1

(* ---- cmdliner wiring ---- *)

open Cmdliner

let entity_arg =
  Arg.(required & opt (some file) None & info [ "entity"; "e" ] ~docv:"CSV" ~doc:"Entity instance CSV (header row = schema).")

let sigma_arg =
  Arg.(value & opt (some file) None & info [ "sigma"; "s" ] ~docv:"FILE" ~doc:"Currency constraints file.")

let gamma_arg =
  Arg.(value & opt (some file) None & info [ "gamma"; "g" ] ~docv:"FILE" ~doc:"Constant CFDs file.")

let exact_arg =
  Arg.(value & flag & info [ "exact" ] ~doc:"Use the exact (totality-augmented) encoding instead of the paper's.")

let interactive_arg =
  Arg.(value & flag & info [ "interactive"; "i" ] ~doc:"Prompt for suggested attributes on stdin.")

let truth_arg =
  Arg.(value & opt (some file) None & info [ "truth" ] ~docv:"CSV" ~doc:"Ground-truth tuple CSV; simulates a perfect user.")

let max_rounds_arg =
  Arg.(value & opt int 5 & info [ "max-rounds" ] ~docv:"N" ~doc:"Interaction-round budget (default 5).")

let validate_cmd =
  Cmd.v
    (Cmd.info "validate" ~doc:"Check whether the specification admits a valid completion")
    Term.(const run_validate $ entity_arg $ sigma_arg $ gamma_arg $ exact_arg)

let suggest_cmd =
  Cmd.v
    (Cmd.info "suggest" ~doc:"Deduce true values and print the suggestion for the rest")
    Term.(const run_suggest $ entity_arg $ sigma_arg $ gamma_arg $ exact_arg)

let resolve_cmd =
  Cmd.v
    (Cmd.info "resolve" ~doc:"Run the full conflict-resolution framework")
    Term.(
      const run_resolve $ entity_arg $ sigma_arg $ gamma_arg $ exact_arg $ interactive_arg
      $ truth_arg $ max_rounds_arg)

let implication_cmd =
  let attr_a = Arg.(required & pos 0 (some string) None & info [] ~docv:"ATTR") in
  let lo_a = Arg.(required & pos 1 (some string) None & info [] ~docv:"OLD") in
  let hi_a = Arg.(required & pos 2 (some string) None & info [] ~docv:"NEW") in
  Cmd.v
    (Cmd.info "implication"
       ~doc:"Decide whether OLD ≺ NEW on ATTR holds in every valid completion")
    Term.(
      const run_implication $ entity_arg $ sigma_arg $ gamma_arg $ exact_arg $ attr_a $ lo_a
      $ hi_a)

let coverage_cmd =
  Cmd.v
    (Cmd.info "coverage"
       ~doc:"Find a small set of currency assertions that makes the true value exist")
    Term.(const run_coverage $ entity_arg $ sigma_arg $ gamma_arg $ exact_arg)

let repair_cmd =
  let key_a =
    Arg.(value & opt string "" & info [ "key"; "k" ] ~docv:"ATTRS" ~doc:"Comma-separated key attributes partitioning the relation into entities.")
  in
  let out_a =
    Arg.(value & opt (some string) None & info [ "output"; "o" ] ~docv:"CSV" ~doc:"Write the repaired relation here instead of stdout.")
  in
  Cmd.v
    (Cmd.info "repair" ~doc:"Repair a whole relation: one current tuple per entity")
    Term.(const run_repair $ entity_arg $ sigma_arg $ gamma_arg $ exact_arg $ key_a $ out_a)

let main =
  Cmd.group
    (Cmd.info "crsolve" ~version:"1.0.0"
       ~doc:"Conflict resolution by inferring data currency and consistency (ICDE 2013)")
    [ validate_cmd; suggest_cmd; resolve_cmd; implication_cmd; coverage_cmd; repair_cmd ]

let () = exit (Cmd.eval' main)
