bin/crsolve.ml: Arg Array Cfd Cmd Cmdliner Crcore Csv Currency Entity Format Fun In_channel List Printf Schema String Term Tuple Value
