bin/satcli.ml: Arg Array Buffer Cmd Cmdliner Printf Sat Term
