bin/satcli.mli:
