bin/crsolve.mli:
