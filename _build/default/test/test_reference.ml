(* The exhaustive reference semantics, and the central differential
   property of the whole encoding: in Exact mode, SAT-based validity
   coincides with "some valid completion exists" by enumeration. *)

module Ref = Crcore.Reference

let test_edith_reference () =
  match Ref.analyze (Fixtures.edith_spec ()) with
  | None -> Alcotest.fail "search space unexpectedly large"
  | Some r ->
      Alcotest.(check bool) "valid" true r.Ref.valid;
      Alcotest.(check bool) "has valid completions" true (r.Ref.n_valid > 0);
      (match r.Ref.true_tuple with
      | None -> Alcotest.fail "Edith has a true tuple"
      | Some t ->
          Alcotest.(check string) "true tuple"
            "Edith Shain,deceased,n/a,3,LA,213,90058,Vermont"
            (String.concat "," (Array.to_list (Array.map Value.to_string t))))

let test_george_reference_partial () =
  match Ref.analyze (Fixtures.george_spec ()) with
  | None -> Alcotest.fail "too large"
  | Some r ->
      Alcotest.(check bool) "valid" true r.Ref.valid;
      Alcotest.(check bool) "no full true tuple" true (r.Ref.true_tuple = None);
      let agreed a = r.Ref.agreed.(Schema.index Fixtures.schema a) in
      (match agreed "kids" with
      | Some v -> Alcotest.(check string) "kids agreed" "2" (Value.to_string v)
      | None -> Alcotest.fail "kids should agree");
      Alcotest.(check bool) "status ambiguous" true (agreed "status" = None)

let test_implied () =
  let spec = Fixtures.edith_spec () in
  let imp a v1 v2 = Ref.implied spec ~attr:a (Value.of_string v1) (Value.of_string v2) in
  Alcotest.(check (option bool)) "working < retired" (Some true) (imp "status" "working" "retired");
  Alcotest.(check (option bool)) "retired < working not implied" (Some false)
    (imp "status" "retired" "working");
  Alcotest.(check (option bool)) "NY < LA via CFD" (Some true) (imp "city" "NY" "LA");
  Alcotest.(check (option bool)) "foreign value" (Some false) (imp "city" "Paris" "LA")

let test_invalid_reference () =
  let spec =
    Crcore.Spec.make Fixtures.edith_entity
      ~orders:[ { Crcore.Spec.attr = "status"; lo = 2; hi = 0 } ]
      ~sigma:Fixtures.sigma ~gamma:Fixtures.gamma
  in
  match Ref.analyze spec with
  | None -> Alcotest.fail "too large"
  | Some r -> Alcotest.(check bool) "invalid" false r.Ref.valid

let test_limit () =
  (* an 8-attribute instance with several 3-value domains blows a tiny limit *)
  Alcotest.(check bool) "limit respected" true (Ref.analyze ~limit:2 (Fixtures.edith_spec ()) = None)

(* ---- the central encoding-correctness property ---- *)

let prop_exact_validity_matches_reference =
  QCheck.Test.make ~count:200 ~name:"Exact-mode IsValid ⟺ reference validity"
    Fixtures.qcheck_spec (fun spec ->
      match Ref.analyze spec with
      | None -> true
      | Some r ->
          let sat = Crcore.Validity.is_valid ~mode:Crcore.Encode.Exact spec in
          sat = r.Ref.valid)

let prop_paper_validity_sound_for_valid =
  (* when every CFD constant occurs in the entity (no foreign repair
     values), Paper-mode Φ is Exact-mode Φ minus totality, so a valid
     reference completion is in particular a Paper-mode model: the paper's
     heuristic reduction never rejects a valid specification here *)
  QCheck.Test.make ~count:200 ~name:"Paper-mode SAT whenever reference is valid (no foreign constants)"
    Fixtures.qcheck_spec (fun spec ->
      let enc = Crcore.Encode.encode spec in
      let coding = enc.Crcore.Encode.coding in
      let arity = Schema.arity (Crcore.Spec.schema spec) in
      let no_foreign =
        List.for_all
          (fun a ->
            Array.length (Crcore.Coding.universe coding a) = Crcore.Coding.adom_size coding a)
          (List.init arity Fun.id)
      in
      if not no_foreign then true
      else
        match Ref.analyze spec with
        | None -> true
        | Some r -> if r.Ref.valid then Crcore.Validity.check enc else true)

let prop_reference_deterministic =
  QCheck.Test.make ~count:50 ~name:"reference analysis is deterministic" Fixtures.qcheck_spec
    (fun spec ->
      match (Ref.analyze spec, Ref.analyze spec) with
      | Some a, Some b -> a.Ref.n_valid = b.Ref.n_valid && a.Ref.true_tuple = b.Ref.true_tuple
      | None, None -> true
      | _ -> false)

let () =
  Alcotest.run "reference"
    [
      ( "unit",
        [
          Alcotest.test_case "Edith full agreement" `Quick test_edith_reference;
          Alcotest.test_case "George partial agreement" `Quick test_george_reference_partial;
          Alcotest.test_case "implication queries" `Quick test_implied;
          Alcotest.test_case "invalid specification" `Quick test_invalid_reference;
          Alcotest.test_case "size limit" `Quick test_limit;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_exact_validity_matches_reference;
            prop_paper_validity_sound_for_valid;
            prop_reference_deterministic;
          ] );
    ]
