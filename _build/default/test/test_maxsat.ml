(* MaxSAT engines against the brute-force optimum. *)

let lit = Sat.Lit.make

let rand_clauses st nvars nclauses =
  let clause () =
    let len = 1 + Random.State.int st 3 in
    Array.init len (fun _ -> lit (Random.State.int st nvars) (Random.State.bool st))
  in
  List.init nclauses (fun _ -> clause ())

let test_totalizer_bounds () =
  (* with n inputs and an assumption ¬out.(k), at most k inputs can be true *)
  for n = 1 to 6 do
    for k = 0 to n - 1 do
      let s = Sat.Solver.create () in
      let inputs = List.init n (fun _ -> Sat.Lit.pos (Sat.Solver.new_var s)) in
      let outs = Maxsat.Totalizer.encode s inputs in
      Alcotest.(check int) "output width" n (Array.length outs);
      (* force k+1 inputs true: must clash with ¬out.(k) *)
      let forced = List.filteri (fun i _ -> i <= k) inputs in
      List.iter (fun l -> Sat.Solver.add_clause s [ l ]) forced;
      let r = Sat.Solver.solve ~assumptions:[ Sat.Lit.negate outs.(k) ] s in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d k=%d overfull unsat" n k)
        true (r = Sat.Solver.Unsat)
    done
  done

let test_totalizer_feasible () =
  (* k inputs true is consistent with ¬out.(k) *)
  let s = Sat.Solver.create () in
  let inputs = List.init 5 (fun _ -> Sat.Lit.pos (Sat.Solver.new_var s)) in
  let outs = Maxsat.Totalizer.encode s inputs in
  List.iteri (fun i l -> if i < 2 then Sat.Solver.add_clause s [ l ] else Sat.Solver.add_clause s [ Sat.Lit.negate l ]) inputs;
  Alcotest.(check bool) "2 true, bound 2 ok" true
    (Sat.Solver.solve ~assumptions:[ Sat.Lit.negate outs.(2) ] s = Sat.Solver.Sat)

let test_exact_simple () =
  (* hard: x0; soft: ¬x0, x1, ¬x1 — optimum satisfies 1 of the x1 pair *)
  let hard = Sat.Cnf.make ~nvars:2 [ [| lit 0 true |] ] in
  let soft = [ [| lit 0 false |]; [| lit 1 true |]; [| lit 1 false |] ] in
  match Maxsat.Exact.solve ~hard ~soft with
  | None -> Alcotest.fail "hard is satisfiable"
  | Some o ->
      Alcotest.(check int) "optimum" 1 o.Maxsat.Exact.satisfied;
      Alcotest.(check bool) "model feasible" true (Sat.Cnf.eval o.Maxsat.Exact.model hard)

let test_exact_hard_unsat () =
  let hard = Sat.Cnf.make ~nvars:1 [ [| lit 0 true |]; [| lit 0 false |] ] in
  Alcotest.(check bool) "None on unsat hard" true (Maxsat.Exact.solve ~hard ~soft:[] = None)

let test_exact_no_soft () =
  let hard = Sat.Cnf.make ~nvars:1 [ [| lit 0 true |] ] in
  match Maxsat.Exact.solve ~hard ~soft:[] with
  | Some { Maxsat.Exact.satisfied = 0; _ } -> ()
  | _ -> Alcotest.fail "expected satisfied = 0"

let test_groups () =
  (* group 1 clashes with group 0; group 2 needs group 0's literal: the
     unique optimum keeps groups 0 and 2 *)
  let hard = Sat.Cnf.make ~nvars:2 [] in
  let groups =
    [
      [ [| lit 0 true |] ];
      [ [| lit 0 false |] ];
      [ [| lit 0 true |]; [| lit 1 true |] ];
    ]
  in
  match Maxsat.Exact.solve_groups ~hard ~groups with
  | None -> Alcotest.fail "hard sat"
  | Some (model, kept) ->
      Alcotest.(check (list int)) "kept groups" [ 0; 2 ] (List.sort compare kept);
      Alcotest.(check bool) "model sets x0" true model.(0)

let prop_exact_optimal =
  QCheck.Test.make ~count:150 ~name:"exact maxsat matches brute optimum"
    QCheck.(triple (int_range 1 8) (int_range 0 8) (int_range 0 10))
    (fun (nvars, nhard, nsoft) ->
      let st = Random.State.make [| nvars; nhard; nsoft; 3 |] in
      let hard = Sat.Cnf.make ~nvars (rand_clauses st nvars nhard) in
      let soft = rand_clauses st nvars nsoft in
      match (Sat.Brute.max_sat ~hard ~soft, Maxsat.Exact.solve ~hard ~soft) with
      | None, None -> true
      | Some (_, k), Some o -> k = o.Maxsat.Exact.satisfied
      | _ -> false)

let prop_walksat_feasible =
  QCheck.Test.make ~count:100 ~name:"walksat model satisfies hard clauses"
    QCheck.(triple (int_range 1 8) (int_range 0 6) (int_range 0 10))
    (fun (nvars, nhard, nsoft) ->
      let st = Random.State.make [| nvars; nhard; nsoft; 4 |] in
      let hard = Sat.Cnf.make ~nvars (rand_clauses st nvars nhard) in
      let soft = rand_clauses st nvars nsoft in
      match Maxsat.Walksat.solve ~seed:nvars ~max_flips:3000 ~hard ~soft () with
      | None -> Sat.Brute.solve hard = None
      | Some o ->
          Sat.Cnf.eval o.Maxsat.Walksat.model hard
          &&
          (* reported count is the actual count *)
          o.Maxsat.Walksat.satisfied
          = List.length
              (List.filter
                 (Sat.Cnf.eval_clause o.Maxsat.Walksat.model)
                 (List.filter (fun c -> Array.length c > 0) soft)))

let prop_walksat_not_above_optimum =
  QCheck.Test.make ~count:100 ~name:"walksat never beats the optimum"
    QCheck.(triple (int_range 1 7) (int_range 0 5) (int_range 0 8))
    (fun (nvars, nhard, nsoft) ->
      let st = Random.State.make [| nvars; nhard; nsoft; 5 |] in
      let hard = Sat.Cnf.make ~nvars (rand_clauses st nvars nhard) in
      let soft = rand_clauses st nvars nsoft in
      match (Sat.Brute.max_sat ~hard ~soft, Maxsat.Walksat.solve ~hard ~soft ()) with
      | None, None -> true
      | Some (_, k), Some o -> o.Maxsat.Walksat.satisfied <= k
      | _ -> false)

let () =
  Alcotest.run "maxsat"
    [
      ( "totalizer",
        [
          Alcotest.test_case "upper bounds enforced" `Quick test_totalizer_bounds;
          Alcotest.test_case "bound not overtight" `Quick test_totalizer_feasible;
        ] );
      ( "exact",
        [
          Alcotest.test_case "simple optimum" `Quick test_exact_simple;
          Alcotest.test_case "unsat hard" `Quick test_exact_hard_unsat;
          Alcotest.test_case "no soft clauses" `Quick test_exact_no_soft;
          Alcotest.test_case "group maxsat" `Quick test_groups;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [ prop_exact_optimal; prop_walksat_feasible; prop_walksat_not_above_optimum ] );
    ]
