test/test_clique.mli:
