test/test_vec.ml: Alcotest Array Fun List Random Sat
