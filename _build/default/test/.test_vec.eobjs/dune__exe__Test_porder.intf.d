test/test_porder.mli:
