test/test_maxsat.mli:
