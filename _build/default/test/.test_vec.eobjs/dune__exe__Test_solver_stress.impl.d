test/test_solver_stress.ml: Alcotest Array Crcore Datagen List Maxsat Random Sat Tuple Value
