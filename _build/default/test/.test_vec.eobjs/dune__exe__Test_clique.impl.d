test/test_clique.ml: Alcotest Clique List QCheck QCheck_alcotest Random
