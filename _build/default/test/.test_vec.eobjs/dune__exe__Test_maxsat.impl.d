test/test_maxsat.ml: Alcotest Array List Maxsat Printf QCheck QCheck_alcotest Random Sat
