test/test_discovery.ml: Alcotest Array Cfd Crcore Currency Datagen Discovery Entity List QCheck QCheck_alcotest Schema Tuple Value
