test/test_metrics.ml: Alcotest Array Crcore Entity Fixtures List QCheck QCheck_alcotest Schema Tuple Value
