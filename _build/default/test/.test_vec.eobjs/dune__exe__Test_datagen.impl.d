test/test_datagen.ml: Alcotest Array Crcore Currency Datagen Discovery Entity Fun List QCheck QCheck_alcotest Schema Tuple Value
