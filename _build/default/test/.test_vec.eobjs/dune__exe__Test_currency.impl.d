test/test_currency.ml: Alcotest Currency List QCheck QCheck_alcotest Schema Tuple Value
