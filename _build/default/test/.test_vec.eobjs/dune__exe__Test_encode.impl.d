test/test_encode.ml: Alcotest Array Cfd Crcore Entity Fixtures List Printf QCheck QCheck_alcotest Sat Schema Tuple Value
