test/test_deduce.ml: Alcotest Array Crcore Fixtures List Porder QCheck QCheck_alcotest Schema Value
