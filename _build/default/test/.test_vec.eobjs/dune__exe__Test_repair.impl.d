test/test_repair.ml: Alcotest Crcore Currency Datagen Entity Fixtures List QCheck QCheck_alcotest Schema Tuple Value
