test/test_solver_stress.mli:
