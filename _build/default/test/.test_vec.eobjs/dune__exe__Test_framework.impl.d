test/test_framework.ml: Alcotest Array Crcore Datagen Fixtures List QCheck QCheck_alcotest Schema Tuple Value
