test/test_reference.ml: Alcotest Array Crcore Fixtures Fun List QCheck QCheck_alcotest Schema String Value
