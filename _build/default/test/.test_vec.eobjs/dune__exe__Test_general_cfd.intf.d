test/test_general_cfd.mli:
