test/test_spec.ml: Alcotest Array Cfd Crcore Currency Fixtures Format List QCheck QCheck_alcotest Schema String Tuple Value
