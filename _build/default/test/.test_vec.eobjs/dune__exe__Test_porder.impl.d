test/test_porder.ml: Alcotest Array List Porder QCheck QCheck_alcotest String
