test/test_general_cfd.ml: Alcotest Cfd List QCheck QCheck_alcotest Random Schema Tuple Value
