test/test_rules.ml: Alcotest Array Clique Crcore Fixtures Format Fun List QCheck QCheck_alcotest Sat Schema Value
