test/test_relational.ml: Alcotest Csv Entity Filename List Option QCheck QCheck_alcotest Schema Sys Tuple Value
