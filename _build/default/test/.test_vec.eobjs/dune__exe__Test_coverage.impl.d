test/test_coverage.ml: Alcotest Array Crcore Fixtures List QCheck QCheck_alcotest Value
