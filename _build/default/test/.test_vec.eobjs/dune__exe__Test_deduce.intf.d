test/test_deduce.mli:
