test/fixtures.ml: Cfd Crcore Currency Entity Format List Printf QCheck Random Schema Tuple Value
