test/test_implication.ml: Alcotest Crcore Entity Fixtures Format List QCheck QCheck_alcotest Schema Value
