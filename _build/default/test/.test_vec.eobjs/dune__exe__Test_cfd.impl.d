test/test_cfd.ml: Alcotest Cfd Hashtbl List QCheck QCheck_alcotest Schema Tuple Value
