test/test_sat.ml: Alcotest Array Format List QCheck QCheck_alcotest Random Sat
