(* Specification construction, validation and extension. *)

let schema = Fixtures.schema

let test_make_validation () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "unknown attr in order" true
    (bad (fun () ->
         Crcore.Spec.make Fixtures.edith_entity
           ~orders:[ { Crcore.Spec.attr = "nope"; lo = 0; hi = 1 } ]
           ~sigma:[] ~gamma:[]));
  Alcotest.(check bool) "tuple index out of range" true
    (bad (fun () ->
         Crcore.Spec.make Fixtures.edith_entity
           ~orders:[ { Crcore.Spec.attr = "status"; lo = 0; hi = 9 } ]
           ~sigma:[] ~gamma:[]));
  Alcotest.(check bool) "reflexive edge" true
    (bad (fun () ->
         Crcore.Spec.make Fixtures.edith_entity
           ~orders:[ { Crcore.Spec.attr = "status"; lo = 1; hi = 1 } ]
           ~sigma:[] ~gamma:[]));
  Alcotest.(check bool) "constraint over unknown attr" true
    (bad (fun () ->
         Crcore.Spec.make Fixtures.edith_entity ~orders:[]
           ~sigma:[ Currency.Parser.parse_exn "prec(zzz) -> prec(job)" ]
           ~gamma:[]));
  Alcotest.(check bool) "cfd over unknown attr" true
    (bad (fun () ->
         Crcore.Spec.make Fixtures.edith_entity ~orders:[] ~sigma:[]
           ~gamma:[ Cfd.Constant_cfd.parse_exn "zzz = 1 -> job = 2" ]))

let test_add_order_edges () =
  let spec = Fixtures.george_spec () in
  let spec' =
    Crcore.Spec.add_order_edges spec [ { Crcore.Spec.attr = "status"; lo = 2; hi = 1 } ]
  in
  Alcotest.(check int) "edge added" 1 (List.length spec'.Crcore.Spec.orders);
  Alcotest.(check int) "original untouched" 0 (List.length spec.Crcore.Spec.orders);
  Alcotest.(check int) "entity unchanged" (Crcore.Spec.size spec) (Crcore.Spec.size spec')

let test_extend_with_tuple () =
  let spec = Fixtures.george_spec () in
  let values =
    Array.init (Schema.arity schema) (fun a ->
        if Schema.name schema a = "status" then Value.Str "retired" else Value.Null)
  in
  let tup = Tuple.of_array schema values in
  let spec' = Crcore.Spec.extend_with_tuple spec tup ~current_attrs:[ "status" ] in
  Alcotest.(check int) "tuple appended" 4 (Crcore.Spec.size spec');
  (* one edge per pre-existing tuple on the named attribute *)
  Alcotest.(check int) "edges added" 3 (List.length spec'.Crcore.Spec.orders);
  List.iter
    (fun e ->
      Alcotest.(check string) "edge attr" "status" e.Crcore.Spec.attr;
      Alcotest.(check int) "edge target is the new tuple" 3 e.Crcore.Spec.hi)
    spec'.Crcore.Spec.orders;
  (* the extension encodes and stays valid; status becomes known *)
  let enc = Crcore.Encode.encode spec' in
  Alcotest.(check bool) "still valid" true (Crcore.Validity.check enc);
  let d = Crcore.Deduce.deduce_order enc in
  let a = Schema.index schema "status" in
  match (Crcore.Deduce.true_values d).(a) with
  | Some v -> Alcotest.(check string) "status pinned" "retired" (Value.to_string v)
  | None -> Alcotest.fail "status should be known"

let test_extend_multiple_attrs () =
  let spec = Fixtures.george_spec () in
  let values =
    Array.init (Schema.arity schema) (fun a ->
        match Schema.name schema a with
        | "status" -> Value.Str "retired"
        | "kids" -> Value.Int 2
        | _ -> Value.Null)
  in
  let tup = Tuple.of_array schema values in
  let spec' = Crcore.Spec.extend_with_tuple spec tup ~current_attrs:[ "status"; "kids" ] in
  Alcotest.(check int) "edges for both attrs" 6 (List.length spec'.Crcore.Spec.orders)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_pp_smoke () =
  let s = Format.asprintf "%a" Crcore.Spec.pp (Fixtures.george_spec ()) in
  Alcotest.(check bool) "prints entity" true (contains_sub s "George");
  Alcotest.(check bool) "prints counts" true (contains_sub s "= 8")

let prop_extension_monotone_validity =
  (* extending an INVALID spec never makes it valid *)
  QCheck.Test.make ~count:60 ~name:"order extension preserves invalidity" Fixtures.qcheck_spec
    (fun spec ->
      if Crcore.Validity.is_valid spec then true
      else begin
        let n = Crcore.Spec.size spec in
        if n < 2 then true
        else
          let spec' =
            Crcore.Spec.add_order_edges spec [ { Crcore.Spec.attr = "a"; lo = 0; hi = 1 } ]
          in
          not (Crcore.Validity.is_valid spec')
      end)

let () =
  Alcotest.run "spec"
    [
      ( "unit",
        [
          Alcotest.test_case "make validation" `Quick test_make_validation;
          Alcotest.test_case "add_order_edges" `Quick test_add_order_edges;
          Alcotest.test_case "extend_with_tuple" `Quick test_extend_with_tuple;
          Alcotest.test_case "extend multiple attrs" `Quick test_extend_multiple_attrs;
          Alcotest.test_case "pp smoke" `Quick test_pp_smoke;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_extension_monotone_validity ]);
    ]
