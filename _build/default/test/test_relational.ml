(* Values, schemas, tuples, entity instances, CSV. *)

let v = Value.of_string

let test_value_parse () =
  Alcotest.(check bool) "int" true (Value.equal (v "42") (Value.Int 42));
  Alcotest.(check bool) "neg int" true (Value.equal (v "-7") (Value.Int (-7)));
  Alcotest.(check bool) "float" true (Value.equal (v "3.5") (Value.Float 3.5));
  Alcotest.(check bool) "string" true (Value.equal (v "NY") (Value.Str "NY"));
  Alcotest.(check bool) "null kw" true (Value.is_null (v "null"));
  Alcotest.(check bool) "NULL kw" true (Value.is_null (v "NULL"));
  Alcotest.(check bool) "empty" true (Value.is_null (v ""));
  Alcotest.(check bool) "n/a is a string" false (Value.is_null (v "n/a"))

let test_value_compare () =
  Alcotest.(check bool) "null < int" true (Value.eval Value.Lt Value.Null (Value.Int 0));
  Alcotest.(check bool) "null < string" true (Value.eval Value.Lt Value.Null (Value.Str "a"));
  Alcotest.(check bool) "null = null" true (Value.eval Value.Eq Value.Null Value.Null);
  Alcotest.(check bool) "int cross float" true (Value.eval Value.Eq (Value.Int 2) (Value.Float 2.0));
  Alcotest.(check bool) "int < float" true (Value.eval Value.Lt (Value.Int 2) (Value.Float 2.5));
  Alcotest.(check bool) "string lexicographic" true (Value.eval Value.Lt (Value.Str "abc") (Value.Str "abd"));
  Alcotest.(check bool) "mixed kinds not <" false (Value.eval Value.Lt (Value.Str "a") (Value.Int 5));
  Alcotest.(check bool) "mixed kinds neq" true (Value.eval Value.Neq (Value.Str "a") (Value.Int 5));
  Alcotest.(check bool) "geq" true (Value.eval Value.Geq (Value.Int 5) (Value.Int 5))

let test_value_total_order () =
  let vs = [ Value.Str "b"; Value.Int 3; Value.Null; Value.Str "a"; Value.Int 1 ] in
  let sorted = List.sort Value.total_compare vs in
  Alcotest.(check (list string)) "sorted"
    [ "null"; "1"; "3"; "a"; "b" ]
    (List.map Value.to_string sorted)

let test_value_ops () =
  Alcotest.(check (option string)) "op parse" (Some "<=")
    (Option.map Value.op_to_string (Value.op_of_string "<="));
  Alcotest.(check (option string)) "op <> alias" (Some "!=")
    (Option.map Value.op_to_string (Value.op_of_string "<>"));
  Alcotest.(check bool) "bad op" true (Value.op_of_string "~" = None)

let test_schema () =
  let s = Schema.make [ "a"; "b"; "c" ] in
  Alcotest.(check int) "arity" 3 (Schema.arity s);
  Alcotest.(check int) "index" 1 (Schema.index s "b");
  Alcotest.(check string) "name" "c" (Schema.name s 2);
  Alcotest.(check bool) "mem" true (Schema.mem s "a");
  Alcotest.(check bool) "not mem" false (Schema.mem s "z");
  Alcotest.(check (option int)) "index_opt missing" None (Schema.index_opt s "z");
  Alcotest.(check bool) "duplicate rejected" true
    (try ignore (Schema.make [ "a"; "a" ]); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "empty rejected" true
    (try ignore (Schema.make []); false with Invalid_argument _ -> true)

let schema3 = Schema.make [ "x"; "y"; "z" ]

let test_tuple () =
  let t = Tuple.make schema3 [ Value.Int 1; Value.Str "s"; Value.Null ] in
  Alcotest.(check string) "get" "s" (Value.to_string (Tuple.get t 1));
  Alcotest.(check string) "by name" "1" (Value.to_string (Tuple.get_by_name t "x"));
  let t2 = Tuple.set t 0 (Value.Int 9) in
  Alcotest.(check string) "set copy" "9" (Value.to_string (Tuple.get t2 0));
  Alcotest.(check string) "original unchanged" "1" (Value.to_string (Tuple.get t 0));
  Alcotest.(check bool) "equal" true (Tuple.equal t t);
  Alcotest.(check bool) "not equal" false (Tuple.equal t t2);
  Alcotest.(check bool) "arity mismatch" true
    (try ignore (Tuple.make schema3 [ Value.Int 1 ]); false with Invalid_argument _ -> true)

let test_entity () =
  let mk l = Tuple.make schema3 (List.map v l) in
  let e = Entity.make schema3 [ mk [ "1"; "a"; "p" ]; mk [ "2"; "a"; "q" ]; mk [ "1"; "a"; "r" ] ] in
  Alcotest.(check int) "size" 3 (Entity.size e);
  Alcotest.(check (list string)) "adom x (first occurrence order)" [ "1"; "2" ]
    (List.map Value.to_string (Entity.active_domain e 0));
  Alcotest.(check (list string)) "adom y" [ "a" ] (List.map Value.to_string (Entity.active_domain e 1));
  Alcotest.(check bool) "conflict on x" true (Entity.has_conflict e 0);
  Alcotest.(check bool) "no conflict on y" false (Entity.has_conflict e 1);
  Alcotest.(check (list int)) "conflicting attrs" [ 0; 2 ] (Entity.conflicting_attrs e);
  Alcotest.(check bool) "empty entity rejected" true
    (try ignore (Entity.make schema3 []); false with Invalid_argument _ -> true)

let test_csv_parse () =
  let rows = Csv.parse_string "a,b,c\n1,\"x,y\",3\n2,\"he said \"\"hi\"\"\",4\n" in
  Alcotest.(check int) "rows" 3 (List.length rows);
  Alcotest.(check (list string)) "quoted comma" [ "1"; "x,y"; "3" ] (List.nth rows 1);
  Alcotest.(check (list string)) "escaped quote" [ "2"; "he said \"hi\""; "4" ] (List.nth rows 2)

let test_csv_roundtrip () =
  let rows = [ [ "a"; "b" ]; [ "1,2"; "line\nbreak" ]; [ "\"q\""; "plain" ] ] in
  let parsed = Csv.parse_string (Csv.to_string rows) in
  Alcotest.(check int) "row count" (List.length rows) (List.length parsed);
  List.iter2 (fun r p -> Alcotest.(check (list string)) "row" r p) rows parsed

let test_csv_entity () =
  let path = Filename.temp_file "cr_test" ".csv" in
  Csv.write_file path [ [ "name"; "kids" ]; [ "edith"; "3" ]; [ "edith"; "null" ] ];
  let e = Csv.load_entity path in
  Sys.remove path;
  Alcotest.(check int) "tuples" 2 (Entity.size e);
  Alcotest.(check bool) "value typed" true (Value.equal (Entity.value e 0 1) (Value.Int 3));
  Alcotest.(check bool) "null parsed" true (Value.is_null (Entity.value e 1 1))

let prop_value_of_to_string =
  QCheck.Test.make ~count:200 ~name:"of_string . to_string is stable on ints"
    QCheck.small_int (fun i ->
      Value.equal (Value.of_string (Value.to_string (Value.Int i))) (Value.Int i))

let prop_csv_roundtrip =
  QCheck.Test.make ~count:100 ~name:"csv round trip"
    QCheck.(small_list (small_list (string_gen_of_size (QCheck.Gen.int_bound 8) QCheck.Gen.printable)))
    (fun rows ->
      (* normalise: csv cannot represent empty rows or rows of one empty field *)
      let rows = List.filter (fun r -> r <> [] && r <> [ "" ]) rows in
      let parsed = Csv.parse_string (Csv.to_string rows) in
      parsed = rows)

let () =
  Alcotest.run "relational"
    [
      ( "value",
        [
          Alcotest.test_case "parsing" `Quick test_value_parse;
          Alcotest.test_case "comparison semantics" `Quick test_value_compare;
          Alcotest.test_case "total order" `Quick test_value_total_order;
          Alcotest.test_case "operators" `Quick test_value_ops;
        ] );
      ( "schema_tuple_entity",
        [
          Alcotest.test_case "schema" `Quick test_schema;
          Alcotest.test_case "tuple" `Quick test_tuple;
          Alcotest.test_case "entity" `Quick test_entity;
        ] );
      ( "csv",
        [
          Alcotest.test_case "parse quoting" `Quick test_csv_parse;
          Alcotest.test_case "round trip" `Quick test_csv_roundtrip;
          Alcotest.test_case "entity loading" `Quick test_csv_entity;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest [ prop_value_of_to_string; prop_csv_roundtrip ] );
    ]
