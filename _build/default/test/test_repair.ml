(* Whole-relation repair on top of per-entity resolution. *)

let schema = Fixtures.schema

(* Edith's and George's tuples in one relation, keyed by name *)
let relation = Entity.tuples Fixtures.edith_entity @ Entity.tuples Fixtures.george_entity

let test_partition_and_repair () =
  let r =
    Crcore.Repair.run ~key:[ "name" ] schema relation ~sigma:Fixtures.sigma
      ~gamma:Fixtures.gamma
  in
  Alcotest.(check int) "two entities" 2 (List.length r.Crcore.Repair.entities);
  Alcotest.(check int) "no invalid" 0 r.Crcore.Repair.invalid_entities;
  let edith = List.hd r.Crcore.Repair.entities in
  Alcotest.(check int) "edith merged 3" 3 edith.Crcore.Repair.size;
  Alcotest.(check bool) "edith fully determined" true (edith.Crcore.Repair.fell_back = 0);
  Alcotest.(check bool) "edith repaired to truth" true
    (Tuple.equal edith.Crcore.Repair.tuple Fixtures.edith_truth);
  let george = List.nth r.Crcore.Repair.entities 1 in
  (* George cannot be fully determined silently: some attrs fall back *)
  Alcotest.(check bool) "george fell back on some attrs" true
    (george.Crcore.Repair.fell_back > 0);
  (* but every repaired value occurs in his tuples *)
  List.iteri
    (fun a v ->
      Alcotest.(check bool) "value from active domain" true
        (List.exists (Value.equal v) (Entity.active_domain Fixtures.george_entity a)))
    (Tuple.values george.Crcore.Repair.tuple)

let test_repair_with_oracle_user () =
  (* with a user who knows both entities, repair is exact *)
  let user suggestion ~schema:s =
    (* answer from whichever truth matches the suggestion's entity; the
       name attribute disambiguates via candidates *)
    ignore suggestion;
    ignore s;
    []
  in
  ignore user;
  let r =
    Crcore.Repair.run ~key:[ "name" ] schema relation
      ~user:(Crcore.Framework.oracle Fixtures.george_truth)
      ~sigma:Fixtures.sigma ~gamma:Fixtures.gamma
  in
  (* the oracle is George's; his entity resolves exactly *)
  let george = List.nth r.Crcore.Repair.entities 1 in
  Alcotest.(check bool) "george exact with his oracle" true
    (Tuple.equal george.Crcore.Repair.tuple Fixtures.george_truth)

let test_single_entity_key () =
  (* empty key: whole relation is one entity *)
  let tuples = Entity.tuples Fixtures.edith_entity in
  let r = Crcore.Repair.run ~key:[] schema tuples ~sigma:Fixtures.sigma ~gamma:Fixtures.gamma in
  Alcotest.(check int) "one entity" 1 (List.length r.Crcore.Repair.entities)

let test_invalid_entity_falls_back () =
  (* an entity violating its constraints is repaired by Pick alone *)
  let bad_sigma =
    Fixtures.sigma
    @ [
        Currency.Parser.parse_exn
          {|t1[status] = "deceased" & t2[status] = "working" -> prec(status)|};
      ]
  in
  let r =
    Crcore.Repair.run ~key:[ "name" ] schema (Entity.tuples Fixtures.edith_entity)
      ~sigma:bad_sigma ~gamma:Fixtures.gamma
  in
  Alcotest.(check int) "invalid counted" 1 r.Crcore.Repair.invalid_entities;
  let e = List.hd r.Crcore.Repair.entities in
  Alcotest.(check bool) "flagged" false e.Crcore.Repair.valid;
  Alcotest.(check int) "all attrs from fallback" (Schema.arity schema) e.Crcore.Repair.fell_back

let test_bad_key () =
  Alcotest.(check bool) "unknown key rejected" true
    (try
       ignore (Crcore.Repair.run ~key:[ "nope" ] schema relation ~sigma:[] ~gamma:[]);
       false
     with Invalid_argument _ -> true)

let prop_repair_covers_every_entity =
  QCheck.Test.make ~count:20 ~name:"repair emits one tuple per key group"
    QCheck.(int_range 0 500)
    (fun seed ->
      let ds = Datagen.Person.quick ~seed ~n_entities:5 ~size:6 () in
      let tuples =
        List.concat_map (fun (c : Datagen.Types.case) -> Entity.tuples c.entity)
          ds.Datagen.Types.cases
      in
      let r =
        Crcore.Repair.run ~key:[ "name" ] ds.Datagen.Types.schema tuples
          ~sigma:ds.Datagen.Types.sigma ~gamma:ds.Datagen.Types.gamma
      in
      List.length r.Crcore.Repair.repaired = 5
      && r.Crcore.Repair.invalid_entities = 0)

let prop_repair_accuracy_with_oracle =
  QCheck.Test.make ~count:10 ~name:"per-entity oracle repair reproduces ground truth"
    QCheck.(int_range 0 200)
    (fun seed ->
      let ds = Datagen.Person.quick ~seed ~n_entities:4 ~size:7 () in
      List.for_all
        (fun (c : Datagen.Types.case) ->
          let r =
            Crcore.Repair.run ~key:[ "name" ] ds.Datagen.Types.schema
              (Entity.tuples c.entity)
              ~user:(Crcore.Framework.oracle c.truth)
              ~sigma:ds.Datagen.Types.sigma ~gamma:ds.Datagen.Types.gamma
          in
          match r.Crcore.Repair.repaired with
          | [ t ] -> Tuple.equal t c.truth
          | _ -> false)
        ds.Datagen.Types.cases)

let () =
  Alcotest.run "repair"
    [
      ( "unit",
        [
          Alcotest.test_case "partition and repair" `Quick test_partition_and_repair;
          Alcotest.test_case "oracle user" `Quick test_repair_with_oracle_user;
          Alcotest.test_case "empty key" `Quick test_single_entity_key;
          Alcotest.test_case "invalid entity fallback" `Quick test_invalid_entity_falls_back;
          Alcotest.test_case "bad key" `Quick test_bad_key;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [ prop_repair_covers_every_entity; prop_repair_accuracy_with_oracle ] );
    ]
