(* Derivation rules, the compatibility graph and Suggest (Section V-C):
   the paper's Examples 10–13 are checked literally. *)

module E = Crcore.Encode
module D = Crcore.Deduce
module R = Crcore.Rules

let george_deduction () =
  let enc = E.encode (Fixtures.george_spec ()) in
  let d = D.deduce_order enc in
  let known = D.true_values d in
  (d, known)

let rule_to_string d r = Format.asprintf "%a" (R.pp_rule d) r

let test_example10_rules () =
  let d, known = george_deduction () in
  let rules = R.derive_rules d ~known in
  let strings = List.sort compare (List.map (rule_to_string d) rules) in
  let expect =
    List.sort compare
      [
        "(status = retired) -> job = veteran";
        "(status = retired) -> AC = 212";
        "(status = retired) -> zip = 12404";
        "(city = NY, zip = 12404) -> county = Accord";
        "(AC = 212) -> city = NY";
        "(status = unemployed) -> job = n/a";
        "(status = unemployed) -> AC = 312";
        "(status = unemployed) -> zip = 60653";
        "(city = Chicago, zip = 60653) -> county = Bronzeville";
      ]
  in
  Alcotest.(check (list string)) "the paper's n1..n9" expect strings

let find_rule d rules s =
  match List.find_opt (fun r -> rule_to_string d r = s) rules with
  | Some r -> r
  | None -> Alcotest.failf "rule %s not derived" s

let test_example11_compatibility () =
  let d, known = george_deduction () in
  let rules = R.derive_rules d ~known in
  let g = R.compatibility_graph rules in
  let idx s =
    let r = find_rule d rules s in
    let rec go i = function
      | [] -> assert false
      | x :: rest -> if x = r then i else go (i + 1) rest
    in
    go 0 rules
  in
  let n1 = idx "(status = retired) -> job = veteran" in
  let n2 = idx "(status = retired) -> AC = 212" in
  let n5 = idx "(AC = 212) -> city = NY" in
  let n7 = idx "(status = unemployed) -> AC = 312" in
  let n6 = idx "(status = unemployed) -> job = n/a" in
  Alcotest.(check bool) "n1-n2 compatible" true (Clique.Ugraph.has_edge g n1 n2);
  Alcotest.(check bool) "n5-n7 incompatible (different AC)" false (Clique.Ugraph.has_edge g n5 n7);
  Alcotest.(check bool) "n1-n6 incompatible (same attr)" false (Clique.Ugraph.has_edge g n1 n6);
  Alcotest.(check bool) "n2-n5 compatible (AC agrees)" true (Clique.Ugraph.has_edge g n2 n5)

let test_example12_suggestion () =
  let d, known = george_deduction () in
  let s = R.suggest d ~known in
  let names l = List.sort compare (List.map (Schema.name Fixtures.schema) l) in
  Alcotest.(check (list string)) "ask exactly status" [ "status" ] (names s.R.attrs);
  Alcotest.(check (list string)) "A' = job AC zip city county"
    [ "AC"; "city"; "county"; "job"; "zip" ]
    (names s.R.derivable);
  Alcotest.(check int) "max clique of 5 rules" 5 s.R.clique_size;
  Alcotest.(check int) "no conflict: full clique kept" 5 s.R.repaired_clique_size;
  (* the candidate values offered for status are its V(A) *)
  (match s.R.candidates with
  | [ (a, vals) ] ->
      Alcotest.(check string) "candidate attr" "status" (Schema.name Fixtures.schema a);
      Alcotest.(check (list string)) "candidate values" [ "retired"; "unemployed" ]
        (List.sort compare (List.map Value.to_string vals))
  | _ -> Alcotest.fail "expected one candidate set")

let test_example13_repair () =
  (* Example 13: the clique {n5, n6, n8} embeds conflicting values; MaxSAT
     keeps a consistent subset. We reproduce it by checking that rules n5
     (city = NY from AC = 212) and n7 (AC = 312) can't survive together:
     suggest never returns a repaired clique with conflicting AC values. *)
  let d, known = george_deduction () in
  let rules = R.derive_rules d ~known in
  let n5 = find_rule d rules "(AC = 212) -> city = NY" in
  let n6 = find_rule d rules "(status = unemployed) -> job = n/a" in
  let n8 = find_rule d rules "(status = unemployed) -> zip = 60653" in
  (* n5 assumes AC=212 is most current; n6/n8 assume status=unemployed,
     which via ϕ6 makes AC=312 most current: jointly inconsistent *)
  ignore (n5, n6, n8);
  let enc = (E.encode (Fixtures.george_spec ())) in
  let s_full = Sat.Solver.create () in
  Sat.Solver.add_cnf s_full enc.E.cnf;
  let coding = enc.E.coding in
  let a_ac = Schema.index Fixtures.schema "AC" in
  let a_status = Schema.index Fixtures.schema "status" in
  let unit attr lo hi =
    Sat.Lit.pos (Crcore.Coding.var_of coding ~attr lo hi)
  in
  let vid attr s = Crcore.Coding.vid coding attr (Value.of_string s) in
  (* AC=212 on top and status=unemployed on top cannot hold together *)
  let assumptions =
    [
      unit a_ac (vid a_ac "401") (vid a_ac "212");
      unit a_ac (vid a_ac "312") (vid a_ac "212");
      unit a_status (vid a_status "working") (vid a_status "unemployed");
      unit a_status (vid a_status "retired") (vid a_status "unemployed");
    ]
  in
  Alcotest.(check bool) "conflicting assumptions unsat" true
    (Sat.Solver.solve ~assumptions s_full = Sat.Solver.Unsat)

let test_suggest_empty_rules () =
  (* with no constraints there are no rules; suggest falls back to asking
     every unknown attribute *)
  let spec = Crcore.Spec.make Fixtures.george_entity ~orders:[] ~sigma:[] ~gamma:[] in
  let enc = E.encode spec in
  let d = D.deduce_order enc in
  let known = D.true_values d in
  let s = R.suggest d ~known in
  let unknowns = Array.to_list known |> List.filter (fun v -> v = None) |> List.length in
  Alcotest.(check int) "asks all unknowns" unknowns (List.length s.R.attrs);
  Alcotest.(check int) "nothing derivable" 0 (List.length s.R.derivable)

let test_walksat_repair_mode () =
  let d, known = george_deduction () in
  let s = R.suggest ~repair:R.Walksat d ~known in
  (* same suggestion shape as the exact repair on this conflict-free clique *)
  Alcotest.(check int) "clique kept" s.R.clique_size s.R.repaired_clique_size

let prop_suggestion_covers_unknowns =
  QCheck.Test.make ~count:100 ~name:"suggested ∪ derivable ∪ known covers all attributes"
    Fixtures.qcheck_spec (fun spec ->
      let enc = E.encode spec in
      if not (Crcore.Validity.check enc) then true
      else begin
        let d = D.deduce_order enc in
        let known = D.true_values d in
        let s = R.suggest d ~known in
        let arity = Schema.arity (Crcore.Spec.schema spec) in
        List.for_all
          (fun a ->
            known.(a) <> None || List.mem a s.R.attrs || List.mem a s.R.derivable)
          (List.init arity Fun.id)
      end)

let prop_clique_edges_sound =
  (* every edge of the compatibility graph joins rules that derive
     different attributes and agree on shared assignments — the defining
     property of Example 11 *)
  QCheck.Test.make ~count:80 ~name:"compatibility edges are sound" Fixtures.qcheck_spec
    (fun spec ->
      let enc = Crcore.Encode.encode spec in
      if not (Crcore.Validity.check enc) then true
      else begin
        let d = Crcore.Deduce.deduce_order enc in
        let known = Crcore.Deduce.true_values d in
        let rules = Array.of_list (R.derive_rules d ~known) in
        let g = R.compatibility_graph (Array.to_list rules) in
        let n = Array.length rules in
        let ok = ref true in
        for i = 0 to n - 1 do
          for j = i + 1 to n - 1 do
            if Clique.Ugraph.has_edge g i j then begin
              let ri = rules.(i) and rj = rules.(j) in
              if ri.R.b = rj.R.b then ok := false;
              let mi = (ri.R.b, ri.R.bval) :: ri.R.x and mj = (rj.R.b, rj.R.bval) :: rj.R.x in
              List.iter
                (fun (a, v) ->
                  match List.assoc_opt a mj with
                  | Some w when w <> v -> ok := false
                  | _ -> ())
                mi
            end
          done
        done;
        !ok
      end)

let prop_repaired_clique_consistent =
  QCheck.Test.make ~count:100 ~name:"repaired clique never exceeds the clique"
    Fixtures.qcheck_spec (fun spec ->
      let enc = E.encode spec in
      if not (Crcore.Validity.check enc) then true
      else begin
        let d = D.deduce_order enc in
        let known = D.true_values d in
        let s = R.suggest d ~known in
        s.R.repaired_clique_size <= s.R.clique_size
      end)

let () =
  Alcotest.run "rules"
    [
      ( "paper_examples",
        [
          Alcotest.test_case "Example 10: derivation rules" `Quick test_example10_rules;
          Alcotest.test_case "Example 11: compatibility graph" `Quick test_example11_compatibility;
          Alcotest.test_case "Example 12: suggestion" `Quick test_example12_suggestion;
          Alcotest.test_case "Example 13: conflicting clique" `Quick test_example13_repair;
        ] );
      ( "edge_cases",
        [
          Alcotest.test_case "no rules fallback" `Quick test_suggest_empty_rules;
          Alcotest.test_case "walksat repair" `Quick test_walksat_repair_mode;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_suggestion_covers_unknowns;
            prop_clique_edges_sound;
            prop_repaired_clique_consistent;
          ] );
    ]
