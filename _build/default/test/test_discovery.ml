(* Constraint discovery from timestamped samples. *)

let schema = Schema.make [ "status"; "kids"; "city" ]
let mk l = Tuple.make schema (List.map Value.of_string l)

(* two clean entity histories *)
let history1 =
  [ (mk [ "working"; "0"; "NY" ], 0); (mk [ "retired"; "1"; "NY" ], 1); (mk [ "retired"; "2"; "SF" ], 2) ]

let history2 =
  [ (mk [ "working"; "1"; "LA" ], 0); (mk [ "retired"; "3"; "LA" ], 1) ]

let stamped = Discovery.Stamped.make schema [ history1; history2 ]

let test_value_rank () =
  let ranks = Discovery.Stamped.value_rank stamped 0 0 in
  Alcotest.(check int) "two status values" 2 (List.length ranks);
  let rank v = List.assoc v (List.map (fun (x, r) -> (Value.to_string x, r)) ranks) in
  Alcotest.(check int) "working first" 0 (rank "working");
  Alcotest.(check int) "retired second" 1 (rank "retired")

let test_lt_of_entity () =
  let lt = Discovery.Stamped.lt_of_entity stamped 0 in
  Alcotest.(check bool) "working < retired" true
    (lt "status" (Value.Str "working") (Value.Str "retired"));
  Alcotest.(check bool) "not reversed" false
    (lt "status" (Value.Str "retired") (Value.Str "working"));
  Alcotest.(check bool) "foreign value" false (lt "status" (Value.Str "zzz") (Value.Str "retired"))

let test_holds_frac () =
  let good =
    Currency.Constraint_ast.make
      [ Currency.Constraint_ast.Cmp2 ("kids", Value.Lt) ]
      "kids"
  in
  Alcotest.(check (float 1e-9)) "monotone kids holds" 1.0 (Discovery.Stamped.holds_frac stamped good);
  let bad =
    Currency.Constraint_ast.make
      [ Currency.Constraint_ast.Cmp2 ("kids", Value.Gt) ]
      "kids"
  in
  Alcotest.(check bool) "anti-monotone violated" true (Discovery.Stamped.holds_frac stamped bad < 1.0)

let test_mine_transitions () =
  let mined = Discovery.Currency_miner.mine stamped in
  let strings = List.map Currency.Constraint_ast.to_string mined in
  Alcotest.(check bool) "status transition found" true
    (List.mem {|t1[status] = "working" & t2[status] = "retired" -> prec(status)|} strings);
  Alcotest.(check bool) "kids monotone found" true
    (List.mem "t1[kids] < t2[kids] -> prec(kids)" strings);
  (* every mined constraint holds on the sample *)
  List.iter
    (fun c ->
      Alcotest.(check (float 1e-9))
        (Currency.Constraint_ast.to_string c)
        1.0
        (Discovery.Stamped.holds_frac stamped c))
    mined

let test_mine_respects_reversals () =
  (* a value pair seen in both orders across entities must not be mined *)
  let h1 = [ (mk [ "a"; "0"; "X" ], 0); (mk [ "b"; "1"; "X" ], 1) ] in
  let h2 = [ (mk [ "b"; "0"; "Y" ], 0); (mk [ "a"; "1"; "Y" ], 1) ] in
  let ds = Discovery.Stamped.make schema [ h1; h2 ] in
  let mined = Discovery.Currency_miner.mine ds in
  let strings = List.map Currency.Constraint_ast.to_string mined in
  Alcotest.(check bool) "no a->b rule" false
    (List.exists (fun s -> s = {|t1[status] = "a" & t2[status] = "b" -> prec(status)|}) strings);
  Alcotest.(check bool) "no b->a rule" false
    (List.exists (fun s -> s = {|t1[status] = "b" & t2[status] = "a" -> prec(status)|}) strings)

let test_min_support () =
  let config = { Discovery.Currency_miner.default_config with min_support = 2 } in
  let mined = Discovery.Currency_miner.mine ~config stamped in
  let strings = List.map Currency.Constraint_ast.to_string mined in
  (* the working->retired pair occurs in both entities: kept *)
  Alcotest.(check bool) "supported pair kept" true
    (List.mem {|t1[status] = "working" & t2[status] = "retired" -> prec(status)|} strings);
  (* the NY->SF move occurs once: dropped at support 2 *)
  Alcotest.(check bool) "unsupported pair dropped" false
    (List.mem {|t1[city] = "NY" & t2[city] = "SF" -> prec(city)|} strings)

let test_cfd_miner () =
  let rows =
    [
      mk [ "working"; "0"; "NY" ]; mk [ "working"; "1"; "NY" ]; mk [ "retired"; "2"; "SF" ];
      mk [ "retired"; "3"; "SF" ];
    ]
  in
  let cfds = Discovery.Cfd_miner.mine schema rows in
  let strings = List.map Cfd.Constant_cfd.to_string cfds in
  Alcotest.(check bool) "status determines city here" true
    (List.mem {|status = "working" -> city = "NY"|} strings);
  (* dirty rows break confidence-1 patterns *)
  let cfds' = Discovery.Cfd_miner.mine schema (mk [ "working"; "9"; "LA" ] :: rows) in
  let strings' = List.map Cfd.Constant_cfd.to_string cfds' in
  Alcotest.(check bool) "dirty pattern dropped" false
    (List.mem {|status = "working" -> city = "NY"|} strings');
  (* ... unless confidence is relaxed *)
  let cfds'' =
    Discovery.Cfd_miner.mine
      ~config:{ Discovery.Cfd_miner.min_support = 2; min_confidence = 0.6 }
      schema
      (mk [ "working"; "9"; "LA" ] :: rows)
  in
  Alcotest.(check bool) "kept at lower confidence" true
    (List.mem {|status = "working" -> city = "NY"|} (List.map Cfd.Constant_cfd.to_string cfds''))

let prop_mined_constraints_hold =
  QCheck.Test.make ~count:20 ~name:"mined constraints never violate the generating histories"
    QCheck.(int_range 0 500)
    (fun seed ->
      let ds = Datagen.Person.quick ~seed ~n_entities:5 ~size:7 () in
      let stamped =
        Discovery.Stamped.make ds.Datagen.Types.schema
          (List.map
             (fun (c : Datagen.Types.case) ->
               List.mapi (fun i t -> (t, c.stamps.(i))) (Entity.tuples c.entity))
             ds.Datagen.Types.cases)
      in
      let mined = Discovery.Currency_miner.mine stamped in
      List.for_all (fun c -> Discovery.Stamped.holds_frac stamped c = 1.0) mined)

let prop_mined_specs_valid =
  QCheck.Test.make ~count:10 ~name:"resolving with mined constraints keeps specs valid"
    QCheck.(int_range 0 100)
    (fun seed ->
      let ds = Datagen.Person.quick ~seed ~n_entities:4 ~size:7 () in
      let stamped =
        Discovery.Stamped.make ds.Datagen.Types.schema
          (List.map
             (fun (c : Datagen.Types.case) ->
               List.mapi (fun i t -> (t, c.stamps.(i))) (Entity.tuples c.entity))
             ds.Datagen.Types.cases)
      in
      let mined = Discovery.Currency_miner.mine stamped in
      List.for_all
        (fun (c : Datagen.Types.case) ->
          let spec = Crcore.Spec.make c.entity ~orders:[] ~sigma:mined ~gamma:[] in
          Crcore.Validity.is_valid spec)
        ds.Datagen.Types.cases)

let () =
  Alcotest.run "discovery"
    [
      ( "stamped",
        [
          Alcotest.test_case "value ranks" `Quick test_value_rank;
          Alcotest.test_case "induced order" `Quick test_lt_of_entity;
          Alcotest.test_case "holds_frac" `Quick test_holds_frac;
        ] );
      ( "miners",
        [
          Alcotest.test_case "transitions and monotone" `Quick test_mine_transitions;
          Alcotest.test_case "reversals rejected" `Quick test_mine_respects_reversals;
          Alcotest.test_case "support threshold" `Quick test_min_support;
          Alcotest.test_case "constant cfd mining" `Quick test_cfd_miner;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest [ prop_mined_constraints_hold; prop_mined_specs_valid ] );
    ]
