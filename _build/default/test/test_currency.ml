(* Currency constraints: AST semantics, instantiation, parser. *)

module C = Currency.Constraint_ast
module P = Currency.Parser

let schema = Schema.make [ "status"; "job"; "kids" ]
let mk l = Tuple.make schema (List.map Value.of_string l)

let t_working = mk [ "working"; "nurse"; "0" ]
let t_retired = mk [ "retired"; "vet"; "2" ]

let phi1 =
  C.make
    [
      C.Cmp_const (C.T1, "status", Value.Eq, Value.Str "working");
      C.Cmp_const (C.T2, "status", Value.Eq, Value.Str "retired");
    ]
    "status"

let test_attrs () =
  Alcotest.(check (list string)) "attrs" [ "status" ] (C.attrs phi1);
  let c = C.make [ C.Prec "status"; C.Cmp2 ("kids", Value.Lt) ] "job" in
  Alcotest.(check (list string)) "attrs multi" [ "job"; "kids"; "status" ] (C.attrs c)

let test_check_schema () =
  Alcotest.(check bool) "ok" true (C.check_schema phi1 schema = Ok ());
  let bad = C.make [ C.Prec "nope" ] "job" in
  Alcotest.(check bool) "bad attr reported" true (C.check_schema bad schema = Error "nope")

let test_instantiate_const_premise () =
  (match C.instantiate phi1 t_working t_retired with
  | Some { C.prec_premises = []; conclusion = ("status", v1, v2) } ->
      Alcotest.(check string) "lo" "working" (Value.to_string v1);
      Alcotest.(check string) "hi" "retired" (Value.to_string v2)
  | _ -> Alcotest.fail "expected premise-free instance");
  (* reversed pair: premise false, vacuous *)
  Alcotest.(check bool) "reversed vacuous" true (C.instantiate phi1 t_retired t_working = None)

let test_instantiate_cmp2 () =
  let phi4 = C.make [ C.Cmp2 ("kids", Value.Lt) ] "kids" in
  (match C.instantiate phi4 t_working t_retired with
  | Some { C.prec_premises = []; conclusion = ("kids", v1, v2) } ->
      Alcotest.(check string) "0" "0" (Value.to_string v1);
      Alcotest.(check string) "2" "2" (Value.to_string v2)
  | _ -> Alcotest.fail "expected instance");
  Alcotest.(check bool) "not <" true (C.instantiate phi4 t_retired t_working = None)

let test_instantiate_prec_residual () =
  let phi5 = C.make [ C.Prec "status" ] "job" in
  match C.instantiate phi5 t_working t_retired with
  | Some { C.prec_premises = [ ("status", s1, s2) ]; conclusion = ("job", j1, j2) } ->
      Alcotest.(check string) "premise lo" "working" (Value.to_string s1);
      Alcotest.(check string) "premise hi" "retired" (Value.to_string s2);
      Alcotest.(check string) "concl lo" "nurse" (Value.to_string j1);
      Alcotest.(check string) "concl hi" "vet" (Value.to_string j2)
  | _ -> Alcotest.fail "expected residual instance"

let test_instantiate_equal_values () =
  let phi5 = C.make [ C.Prec "status" ] "job" in
  let t2 = mk [ "working"; "vet"; "1" ] in
  (* equal status values: strict premise can never hold *)
  Alcotest.(check bool) "equal premise vacuous" true (C.instantiate phi5 t_working t2 = None);
  (* equal conclusion values: trivially satisfied *)
  let t3 = mk [ "retired"; "nurse"; "1" ] in
  Alcotest.(check bool) "equal conclusion skipped" true (C.instantiate phi5 t_working t3 = None)

let test_instantiate_nulls () =
  let phi5 = C.make [ C.Prec "kids" ] "job" in
  let t_null = mk [ "x"; "nurse"; "null" ] in
  (* null premise lo: conjunct always true, dropped from the residual *)
  (match C.instantiate phi5 t_null t_retired with
  | Some { C.prec_premises = []; conclusion = ("job", _, _) } -> ()
  | _ -> Alcotest.fail "null-low premise should be dropped");
  (* null premise hi: v < null can never hold *)
  Alcotest.(check bool) "null-high premise vacuous" true (C.instantiate phi5 t_retired t_null = None);
  (* null conclusion: no value-level information *)
  let phi_job = C.make [ C.Cmp2 ("kids", Value.Lt) ] "job" in
  let t_nulljob = mk [ "y"; "null"; "9" ] in
  Alcotest.(check bool) "null conclusion skipped" true
    (C.instantiate phi_job t_working t_nulljob = None)

let test_holds () =
  let phi5 = C.make [ C.Prec "status" ] "job" in
  let lt_yes _ _ _ = true in
  let lt_no _ _ _ = false in
  Alcotest.(check bool) "premise and conclusion hold" true (C.holds phi5 ~lt:lt_yes t_working t_retired);
  Alcotest.(check bool) "premise fails: holds" true (C.holds phi5 ~lt:lt_no t_working t_retired);
  let lt_status_only a _ _ = a = "status" in
  Alcotest.(check bool) "premise holds, conclusion fails" false
    (C.holds phi5 ~lt:lt_status_only t_working t_retired)

let test_parser_basic () =
  let c = P.parse_exn {|t1[status] = "working" & t2[status] = "retired" -> prec(status)|} in
  Alcotest.(check string) "round trip" (C.to_string phi1) (C.to_string c);
  let c2 = P.parse_exn "t1[kids] < t2[kids] -> prec(kids)" in
  Alcotest.(check string) "cmp2" "t1[kids] < t2[kids] -> prec(kids)" (C.to_string c2);
  let c3 = P.parse_exn "prec(status) -> prec(job)" in
  Alcotest.(check string) "prec premise" "prec(status) -> prec(job)" (C.to_string c3);
  let c4 = P.parse_exn "true -> prec(kids)" in
  Alcotest.(check string) "empty premise" "true -> prec(kids)" (C.to_string c4)

let test_parser_constants () =
  let c = P.parse_exn "t1[kids] >= 3 -> prec(kids)" in
  (match c.C.premise with
  | [ C.Cmp_const (C.T1, "kids", Value.Geq, Value.Int 3) ] -> ()
  | _ -> Alcotest.fail "int constant");
  let c2 = P.parse_exn "t2[status] != null -> prec(status)" in
  match c2.C.premise with
  | [ C.Cmp_const (C.T2, "status", Value.Neq, Value.Null) ] -> ()
  | _ -> Alcotest.fail "null constant"

let test_parser_errors () =
  let bad s = match P.parse s with Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "no arrow" true (bad "prec(a)");
  Alcotest.(check bool) "mixed attrs" true (bad "t1[a] = t2[b] -> prec(a)");
  Alcotest.(check bool) "t2 first" true (bad "t2[a] = t1[a] -> prec(a)");
  Alcotest.(check bool) "unterminated string" true (bad "t1[a] = \"x -> prec(a)");
  Alcotest.(check bool) "garbage" true (bad "=> prec(a)");
  Alcotest.(check bool) "trailing tokens" true (bad "true -> prec(a) extra")

let test_parse_many () =
  let text = "# comment\nprec(a) -> prec(b); prec(b) -> prec(c)\n\nt1[x] < t2[x] -> prec(x)\n" in
  match P.parse_many text with
  | Ok cs -> Alcotest.(check int) "three constraints" 3 (List.length cs)
  | Error m -> Alcotest.fail m

let prop_print_parse_roundtrip =
  (* constraints built from a small vocabulary print and re-parse exactly *)
  let gen =
    QCheck.Gen.(
      let attr = oneofl [ "status"; "job"; "kids" ] in
      let op = oneofl [ Value.Eq; Value.Neq; Value.Lt; Value.Leq; Value.Gt; Value.Geq ] in
      let pred =
        frequency
          [
            (1, map (fun a -> C.Prec a) attr);
            (1, map2 (fun a o -> C.Cmp2 (a, o)) attr op);
            ( 2,
              map3
                (fun r (a, o) c -> C.Cmp_const (r, a, o, c))
                (oneofl [ C.T1; C.T2 ])
                (pair attr op)
                (oneofl [ Value.Int 3; Value.Str "working"; Value.Null ]) );
          ]
      in
      map2 (fun ps concl -> C.make ps concl) (list_size (int_range 0 3) pred) attr)
  in
  QCheck.Test.make ~count:200 ~name:"print/parse round trip"
    (QCheck.make ~print:C.to_string gen)
    (fun c ->
      match P.parse (C.to_string c) with
      | Ok c' -> C.to_string c = C.to_string c'
      | Error _ -> false)

let () =
  Alcotest.run "currency"
    [
      ( "ast",
        [
          Alcotest.test_case "attrs" `Quick test_attrs;
          Alcotest.test_case "check_schema" `Quick test_check_schema;
          Alcotest.test_case "instantiate constant premise" `Quick test_instantiate_const_premise;
          Alcotest.test_case "instantiate comparison" `Quick test_instantiate_cmp2;
          Alcotest.test_case "instantiate prec residual" `Quick test_instantiate_prec_residual;
          Alcotest.test_case "equal values" `Quick test_instantiate_equal_values;
          Alcotest.test_case "null handling" `Quick test_instantiate_nulls;
          Alcotest.test_case "holds semantics" `Quick test_holds;
        ] );
      ( "parser",
        [
          Alcotest.test_case "basic forms" `Quick test_parser_basic;
          Alcotest.test_case "constants" `Quick test_parser_constants;
          Alcotest.test_case "errors" `Quick test_parser_errors;
          Alcotest.test_case "parse_many" `Quick test_parse_many;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_print_parse_roundtrip ]);
    ]
