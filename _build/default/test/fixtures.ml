(* Shared fixtures: the paper's running example (Figs. 2 and 3) and a
   random-specification generator for the differential property tests. *)

let schema =
  Schema.make [ "name"; "status"; "job"; "kids"; "city"; "AC"; "zip"; "county" ]

let tup l = Tuple.make schema (List.map Value.of_string l)

let edith_entity =
  Entity.make schema
    [
      tup [ "Edith Shain"; "working"; "nurse"; "0"; "NY"; "212"; "10036"; "Manhattan" ];
      tup [ "Edith Shain"; "retired"; "n/a"; "3"; "SFC"; "415"; "94924"; "Dogtown" ];
      tup [ "Edith Shain"; "deceased"; "n/a"; "null"; "LA"; "213"; "90058"; "Vermont" ];
    ]

let george_entity =
  Entity.make schema
    [
      tup [ "George"; "working"; "sailor"; "0"; "Newport"; "401"; "02840"; "Rhode Island" ];
      tup [ "George"; "retired"; "veteran"; "2"; "NY"; "212"; "12404"; "Accord" ];
      tup [ "George"; "unemployed"; "n/a"; "2"; "Chicago"; "312"; "60653"; "Bronzeville" ];
    ]

let sigma =
  List.map Currency.Parser.parse_exn
    [
      {|t1[status] = "working" & t2[status] = "retired" -> prec(status)|};
      {|t1[status] = "retired" & t2[status] = "deceased" -> prec(status)|};
      {|t1[job] = "sailor" & t2[job] = "veteran" -> prec(job)|};
      {|t1[kids] < t2[kids] -> prec(kids)|};
      {|prec(status) -> prec(job)|};
      {|prec(status) -> prec(AC)|};
      {|prec(status) -> prec(zip)|};
      {|prec(city) & prec(zip) -> prec(county)|};
    ]

let gamma =
  List.map Cfd.Constant_cfd.parse_exn
    [ {|AC = 213 -> city = "LA"|}; {|AC = 212 -> city = "NY"|} ]

let edith_spec () = Crcore.Spec.make edith_entity ~orders:[] ~sigma ~gamma
let george_spec () = Crcore.Spec.make george_entity ~orders:[] ~sigma ~gamma

let edith_truth =
  tup [ "Edith Shain"; "deceased"; "n/a"; "3"; "LA"; "213"; "90058"; "Vermont" ]

let george_truth = tup [ "George"; "retired"; "veteran"; "2"; "NY"; "212"; "12404"; "Accord" ]

(* ---- random small specifications for differential testing ---- *)

let small_schema = Schema.make [ "a"; "b"; "c" ]

let pool attr = List.map (fun i -> Value.Str (Printf.sprintf "%s%d" attr i)) [ 0; 1; 2 ]

(* A random specification over 3 string attributes with 3-value pools:
   random tuples, random (possibly inconsistent) order edges, random
   currency constraints and CFDs drawn from the pools. Small enough for
   the exhaustive reference semantics. *)
let random_spec st =
  let pick l = List.nth l (Random.State.int st (List.length l)) in
  let attrs = Schema.attr_names small_schema in
  let n_tuples = 2 + Random.State.int st 2 in
  let tuples =
    List.init n_tuples (fun _ ->
        Tuple.make small_schema (List.map (fun a -> pick (pool a)) attrs))
  in
  let entity = Entity.make small_schema tuples in
  let orders =
    List.init (Random.State.int st 3) (fun _ ->
        {
          Crcore.Spec.attr = pick attrs;
          lo = Random.State.int st n_tuples;
          hi = Random.State.int st n_tuples;
        })
    |> List.filter (fun e -> e.Crcore.Spec.lo <> e.Crcore.Spec.hi)
  in
  let random_constraint () =
    let concl = pick attrs in
    let n_preds = Random.State.int st 3 in
    let premise =
      List.init n_preds (fun _ ->
          let a = pick attrs in
          match Random.State.int st 3 with
          | 0 -> Currency.Constraint_ast.Prec a
          | 1 ->
              Currency.Constraint_ast.Cmp_const
                ( (if Random.State.bool st then Currency.Constraint_ast.T1
                   else Currency.Constraint_ast.T2),
                  a,
                  (if Random.State.bool st then Value.Eq else Value.Neq),
                  pick (pool a) )
          | _ -> Currency.Constraint_ast.Cmp2 (a, if Random.State.bool st then Value.Lt else Value.Neq))
    in
    Currency.Constraint_ast.make premise concl
  in
  let sigma = List.init (Random.State.int st 4) (fun _ -> random_constraint ()) in
  let random_cfd () =
    let rec distinct () =
      let x = pick attrs and y = pick attrs in
      if x = y then distinct () else (x, y)
    in
    let x, y = distinct () in
    Cfd.Constant_cfd.make [ (x, pick (pool x)) ] (y, pick (pool y))
  in
  let gamma = List.init (Random.State.int st 3) (fun _ -> random_cfd ()) in
  Crcore.Spec.make entity ~orders ~sigma ~gamma

let qcheck_spec =
  QCheck.make
    ~print:(fun spec -> Format.asprintf "%a" Crcore.Spec.pp spec)
    QCheck.Gen.(int_bound 1_000_000 >|= fun seed -> random_spec (Random.State.make [| seed |]))
