(* Graphs and max-clique search. *)

let mk_graph n edges =
  let g = Clique.Ugraph.create n in
  List.iter (fun (u, v) -> Clique.Ugraph.add_edge g u v) edges;
  g

let test_basic_graph () =
  let g = mk_graph 4 [ (0, 1); (1, 2); (0, 2) ] in
  Alcotest.(check int) "vertices" 4 (Clique.Ugraph.n_vertices g);
  Alcotest.(check int) "edges" 3 (Clique.Ugraph.n_edges g);
  Alcotest.(check bool) "edge symmetric" true (Clique.Ugraph.has_edge g 2 1);
  Alcotest.(check bool) "no edge" false (Clique.Ugraph.has_edge g 0 3);
  Alcotest.(check int) "degree" 2 (Clique.Ugraph.degree g 0);
  Alcotest.(check bool) "self loop ignored" false
    (let g = mk_graph 2 [ (0, 0) ] in
     Clique.Ugraph.has_edge g 0 0)

let test_is_clique () =
  let g = mk_graph 4 [ (0, 1); (1, 2); (0, 2) ] in
  Alcotest.(check bool) "triangle" true (Clique.Ugraph.is_clique g [ 0; 1; 2 ]);
  Alcotest.(check bool) "not clique" false (Clique.Ugraph.is_clique g [ 0; 1; 3 ]);
  Alcotest.(check bool) "empty clique" true (Clique.Ugraph.is_clique g []);
  Alcotest.(check bool) "singleton" true (Clique.Ugraph.is_clique g [ 3 ])

let test_complement () =
  let g = mk_graph 3 [ (0, 1) ] in
  let c = Clique.Ugraph.complement g in
  Alcotest.(check bool) "complement has missing edge" true (Clique.Ugraph.has_edge c 0 2);
  Alcotest.(check bool) "complement drops present edge" false (Clique.Ugraph.has_edge c 0 1);
  Alcotest.(check int) "complement edges" 2 (Clique.Ugraph.n_edges c)

let test_exact_known () =
  (* K4 plus a pendant vertex *)
  let g = mk_graph 5 [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3); (3, 4) ] in
  let r = Clique.Maxclique.exact g in
  Alcotest.(check (list int)) "k4" [ 0; 1; 2; 3 ] r.Clique.Maxclique.clique;
  Alcotest.(check bool) "optimal" true r.Clique.Maxclique.optimal

let test_exact_empty_graph () =
  let r = Clique.Maxclique.exact (Clique.Ugraph.create 0) in
  Alcotest.(check (list int)) "empty" [] r.Clique.Maxclique.clique;
  let r1 = Clique.Maxclique.exact (mk_graph 3 []) in
  Alcotest.(check int) "no edges: single vertex" 1 (List.length r1.Clique.Maxclique.clique)

let test_greedy_known () =
  let g = mk_graph 5 [ (0, 1); (0, 2); (1, 2); (3, 4) ] in
  let c = Clique.Maxclique.greedy g in
  Alcotest.(check bool) "greedy returns a clique" true (Clique.Ugraph.is_clique g c);
  Alcotest.(check int) "greedy finds the triangle" 3 (List.length c)

let test_bitset () =
  let s = Clique.Bitset.create 100 in
  Clique.Bitset.add s 0;
  Clique.Bitset.add s 63;
  Clique.Bitset.add s 64;
  Clique.Bitset.add s 99;
  Alcotest.(check int) "cardinal" 4 (Clique.Bitset.cardinal s);
  Alcotest.(check bool) "mem 63" true (Clique.Bitset.mem s 63);
  Clique.Bitset.remove s 63;
  Alcotest.(check bool) "removed" false (Clique.Bitset.mem s 63);
  Alcotest.(check (list int)) "to_list sorted" [ 0; 64; 99 ] (Clique.Bitset.to_list s);
  let t = Clique.Bitset.of_list 100 [ 64; 65 ] in
  let i = Clique.Bitset.inter s t in
  Alcotest.(check (list int)) "intersection" [ 64 ] (Clique.Bitset.to_list i);
  Alcotest.(check (option int)) "choose" (Some 0) (Clique.Bitset.choose s)

let rand_graph st n p =
  let g = Clique.Ugraph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float st 1.0 < p then Clique.Ugraph.add_edge g u v
    done
  done;
  g

let prop_exact_matches_brute =
  QCheck.Test.make ~count:150 ~name:"exact clique size = brute force"
    QCheck.(pair (int_range 1 12) (int_range 0 100))
    (fun (n, seed) ->
      let st = Random.State.make [| n; seed |] in
      let g = rand_graph st n (Random.State.float st 1.0) in
      let e = Clique.Maxclique.exact g in
      let b = Clique.Maxclique.brute g in
      e.Clique.Maxclique.optimal
      && List.length e.Clique.Maxclique.clique = List.length b
      && Clique.Ugraph.is_clique g e.Clique.Maxclique.clique)

let prop_greedy_valid =
  QCheck.Test.make ~count:150 ~name:"greedy returns a clique, never above optimum"
    QCheck.(pair (int_range 1 12) (int_range 0 100))
    (fun (n, seed) ->
      let st = Random.State.make [| n; seed; 1 |] in
      let g = rand_graph st n (Random.State.float st 1.0) in
      let c = Clique.Maxclique.greedy g in
      let b = Clique.Maxclique.brute g in
      Clique.Ugraph.is_clique g c && List.length c <= List.length b)

let prop_find_consistent =
  QCheck.Test.make ~count:50 ~name:"find with low threshold still returns a clique"
    QCheck.(pair (int_range 1 15) (int_range 0 50))
    (fun (n, seed) ->
      let st = Random.State.make [| n; seed; 2 |] in
      let g = rand_graph st n 0.5 in
      Clique.Ugraph.is_clique g (Clique.Maxclique.find ~exact_threshold:5 g))

let () =
  Alcotest.run "clique"
    [
      ( "unit",
        [
          Alcotest.test_case "basic graph ops" `Quick test_basic_graph;
          Alcotest.test_case "is_clique" `Quick test_is_clique;
          Alcotest.test_case "complement" `Quick test_complement;
          Alcotest.test_case "exact on K4+pendant" `Quick test_exact_known;
          Alcotest.test_case "degenerate graphs" `Quick test_exact_empty_graph;
          Alcotest.test_case "greedy triangle" `Quick test_greedy_known;
          Alcotest.test_case "bitset ops" `Quick test_bitset;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [ prop_exact_matches_brute; prop_greedy_valid; prop_find_consistent ] );
    ]
