(* Precision / recall / F-measure accounting, and the Pick baseline. *)

let schema = Schema.make [ "a"; "b"; "c" ]
let mk l = Tuple.make schema (List.map Value.of_string l)

(* entity: attribute a conflicts, b is stale (single wrong value), c is
   clean and correct *)
let entity = Entity.make schema [ mk [ "x1"; "old"; "ok" ]; mk [ "x2"; "old"; "ok" ] ]
let truth = mk [ "x2"; "new"; "ok" ]

let test_relevant_attrs () =
  let c = Crcore.Metrics.evaluate ~truth ~entity (Array.make 3 None) in
  (* a conflicts; b is stale; c is clean: 2 relevant, nothing deduced *)
  Alcotest.(check int) "relevant" 2 c.Crcore.Metrics.relevant;
  Alcotest.(check int) "deduced" 0 c.Crcore.Metrics.deduced;
  Alcotest.(check int) "correct" 0 c.Crcore.Metrics.correct

let test_scoring () =
  let resolved = [| Some (Value.Str "x2"); Some (Value.Str "old"); Some (Value.Str "ok") |] in
  let c = Crcore.Metrics.evaluate ~truth ~entity resolved in
  Alcotest.(check int) "relevant" 2 c.Crcore.Metrics.relevant;
  Alcotest.(check int) "deduced (only relevant attrs count)" 2 c.Crcore.Metrics.deduced;
  Alcotest.(check int) "correct" 1 c.Crcore.Metrics.correct;
  Alcotest.(check (float 1e-9)) "precision" 0.5 (Crcore.Metrics.precision c);
  Alcotest.(check (float 1e-9)) "recall" 0.5 (Crcore.Metrics.recall c);
  Alcotest.(check (float 1e-9)) "f" 0.5 (Crcore.Metrics.f_measure c)

let test_degenerate () =
  Alcotest.(check (float 1e-9)) "empty precision" 0. (Crcore.Metrics.precision Crcore.Metrics.zero);
  Alcotest.(check (float 1e-9)) "empty recall (nothing to fix)" 1. (Crcore.Metrics.recall Crcore.Metrics.zero);
  Alcotest.(check (float 1e-9)) "empty f" 0. (Crcore.Metrics.f_measure Crcore.Metrics.zero)

let test_add () =
  let a = { Crcore.Metrics.relevant = 2; deduced = 1; correct = 1 } in
  let b = { Crcore.Metrics.relevant = 3; deduced = 2; correct = 0 } in
  let c = Crcore.Metrics.add a b in
  Alcotest.(check int) "relevant" 5 c.Crcore.Metrics.relevant;
  Alcotest.(check int) "deduced" 3 c.Crcore.Metrics.deduced;
  Alcotest.(check int) "correct" 1 c.Crcore.Metrics.correct

let test_evaluate_total () =
  let c = Crcore.Metrics.evaluate_total ~truth ~entity [| Value.Str "x2"; Value.Str "new"; Value.Str "ok" |] in
  Alcotest.(check (float 1e-9)) "perfect" 1.0 (Crcore.Metrics.f_measure c)

(* ---- Pick baseline ---- *)

let test_pick_strategies () =
  let spec = Fixtures.george_spec () in
  let arity = Schema.arity Fixtures.schema in
  List.iter
    (fun strategy ->
      let v = Crcore.Pick.run ~strategy spec in
      Alcotest.(check int) "total assignment" arity (Array.length v);
      (* picked values must come from the active domains *)
      Array.iteri
        (fun a value ->
          Alcotest.(check bool) "value occurs" true
            (List.exists (Value.equal value) (Entity.active_domain Fixtures.george_entity a)))
        v)
    [ Crcore.Pick.Random; Crcore.Pick.Favoured; Crcore.Pick.Max; Crcore.Pick.Min; Crcore.Pick.First ]

let test_pick_favoured_uses_constraints () =
  (* Edith's status: comparison-only constraints ϕ1, ϕ2 order
     working < retired < deceased, so Favoured must pick deceased *)
  let spec = Fixtures.edith_spec () in
  for seed = 0 to 10 do
    let v = Crcore.Pick.run ~seed ~strategy:Crcore.Pick.Favoured spec in
    Alcotest.(check string) "status maximal" "deceased"
      (Value.to_string v.(Schema.index Fixtures.schema "status"))
  done

let test_pick_deterministic_seed () =
  let spec = Fixtures.george_spec () in
  let a = Crcore.Pick.run ~seed:3 spec in
  let b = Crcore.Pick.run ~seed:3 spec in
  Alcotest.(check bool) "same seed same pick" true
    (Array.for_all2 Value.equal a b)

let prop_f_between_0_1 =
  QCheck.Test.make ~count:200 ~name:"f-measure in [0,1]"
    QCheck.(triple (int_range 0 10) (int_range 0 10) (int_range 0 10))
    (fun (r, d, c) ->
      let c = min c d in
      let counts = { Crcore.Metrics.relevant = max r d; deduced = d; correct = c } in
      let f = Crcore.Metrics.f_measure counts in
      f >= 0. && f <= 1.)

let prop_pick_always_total =
  QCheck.Test.make ~count:50 ~name:"pick yields a full tuple on random specs" Fixtures.qcheck_spec
    (fun spec ->
      let v = Crcore.Pick.run spec in
      Array.length v = Schema.arity (Crcore.Spec.schema spec))

let () =
  Alcotest.run "metrics_pick"
    [
      ( "metrics",
        [
          Alcotest.test_case "relevant attrs" `Quick test_relevant_attrs;
          Alcotest.test_case "scoring" `Quick test_scoring;
          Alcotest.test_case "degenerate counts" `Quick test_degenerate;
          Alcotest.test_case "add" `Quick test_add;
          Alcotest.test_case "evaluate_total" `Quick test_evaluate_total;
        ] );
      ( "pick",
        [
          Alcotest.test_case "strategies total" `Quick test_pick_strategies;
          Alcotest.test_case "favoured respects constraints" `Quick test_pick_favoured_uses_constraints;
          Alcotest.test_case "seed determinism" `Quick test_pick_deterministic_seed;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest [ prop_f_between_0_1; prop_pick_always_total ] );
    ]
