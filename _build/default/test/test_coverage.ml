(* Minimum coverage: the greedy heuristic and the exhaustive optimum. *)

module C = Crcore.Coverage

let test_edith_zero_cost () =
  (* Edith is fully determined already: no choices needed *)
  let r = C.greedy (Fixtures.edith_spec ()) in
  Alcotest.(check bool) "complete" true r.C.complete;
  Alcotest.(check int) "no choices" 0 (List.length r.C.choices);
  Alcotest.(check int) "zero cost" 0 r.C.cost

let test_george_coverage () =
  let r = C.greedy (Fixtures.george_spec ()) in
  Alcotest.(check bool) "complete" true r.C.complete;
  Alcotest.(check bool) "needs at least one choice" true (List.length r.C.choices >= 1);
  (* the resolution must itself be consistent: applying the choices keeps
     the specification valid and fully determined *)
  let extended = C.apply (Fixtures.george_spec ()) r.C.choices in
  Alcotest.(check bool) "extension valid" true (Crcore.Validity.is_valid extended);
  let enc = Crcore.Encode.encode extended in
  let d = Crcore.Deduce.deduce_order enc in
  Alcotest.(check bool) "true value exists after coverage" true
    (Array.for_all (fun v -> v <> None) (Crcore.Deduce.true_values d))

let test_george_optimum () =
  match C.optimum (Fixtures.george_spec ()) with
  | None -> Alcotest.fail "search budget exceeded"
  | Some r ->
      Alcotest.(check bool) "complete" true r.C.complete;
      (* Example 6/12: one choice (e.g. status) suffices for George *)
      Alcotest.(check int) "single choice optimal" 1 (List.length r.C.choices)

let test_greedy_not_worse_than_double_optimum () =
  (* sanity: greedy George should also need exactly one choice here *)
  let g = C.greedy (Fixtures.george_spec ()) in
  Alcotest.(check int) "greedy George one choice" 1 (List.length g.C.choices)

let test_apply_unknown_value () =
  Alcotest.check_raises "foreign value rejected"
    (Invalid_argument "Coverage.apply: status never takes this value")
    (fun () ->
      ignore (C.apply (Fixtures.george_spec ()) [ { C.attr = "status"; value = Value.Str "zzz" } ]))

let test_invalid_spec_rejected () =
  let spec =
    Crcore.Spec.make Fixtures.edith_entity
      ~orders:[ { Crcore.Spec.attr = "status"; lo = 2; hi = 0 } ]
      ~sigma:Fixtures.sigma ~gamma:Fixtures.gamma
  in
  Alcotest.(check bool) "greedy raises on invalid" true
    (try ignore (C.greedy spec); false with Invalid_argument _ -> true)

let prop_greedy_sound =
  QCheck.Test.make ~count:60 ~name:"greedy coverage yields a valid determined extension"
    Fixtures.qcheck_spec (fun spec ->
      if not (Crcore.Validity.is_valid spec) then true
      else begin
        let r = C.greedy spec in
        if not r.C.complete then true
        else begin
          let extended = C.apply spec r.C.choices in
          Crcore.Validity.is_valid extended
          &&
          let d = Crcore.Deduce.deduce_order (Crcore.Encode.encode extended) in
          Array.for_all (fun v -> v <> None) (Crcore.Deduce.true_values d)
        end
      end)

let prop_optimum_not_above_greedy =
  QCheck.Test.make ~count:40 ~name:"optimum choice count ≤ greedy choice count"
    Fixtures.qcheck_spec (fun spec ->
      if not (Crcore.Validity.is_valid spec) then true
      else
        let g = C.greedy spec in
        if not g.C.complete then true
        else
          match C.optimum ~limit:3000 spec with
          | None -> true
          | Some o ->
              (not o.C.complete) || List.length o.C.choices <= List.length g.C.choices)

let () =
  Alcotest.run "coverage"
    [
      ( "unit",
        [
          Alcotest.test_case "Edith zero cost" `Quick test_edith_zero_cost;
          Alcotest.test_case "George greedy" `Quick test_george_coverage;
          Alcotest.test_case "George optimum" `Quick test_george_optimum;
          Alcotest.test_case "greedy matches optimum here" `Quick test_greedy_not_worse_than_double_optimum;
          Alcotest.test_case "apply rejects foreign values" `Quick test_apply_unknown_value;
          Alcotest.test_case "invalid spec rejected" `Quick test_invalid_spec_rejected;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest [ prop_greedy_sound; prop_optimum_not_above_greedy ] );
    ]
