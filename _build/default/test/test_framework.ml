(* The interactive framework of Fig. 4, with silent and oracle users. *)

module F = Crcore.Framework

let resolved_string o a =
  match o.F.resolved.(Schema.index Fixtures.schema a) with
  | Some v -> Value.to_string v
  | None -> "?"

let test_edith_zero_interactions () =
  let o = F.resolve ~user:F.silent (Fixtures.edith_spec ()) in
  Alcotest.(check bool) "valid" true o.F.valid;
  Alcotest.(check int) "rounds" 0 o.F.rounds;
  List.iter
    (fun (a, expect) -> Alcotest.(check string) a expect (resolved_string o a))
    [
      ("name", "Edith Shain"); ("status", "deceased"); ("job", "n/a"); ("kids", "3");
      ("city", "LA"); ("AC", "213"); ("zip", "90058"); ("county", "Vermont");
    ]

let test_george_silent () =
  let o = F.resolve ~user:F.silent (Fixtures.george_spec ()) in
  Alcotest.(check int) "rounds" 0 o.F.rounds;
  Alcotest.(check (list int)) "2 of 8 attrs at round 0" [ 2 ] o.F.per_round_known;
  Alcotest.(check string) "kids known" "2" (resolved_string o "kids");
  Alcotest.(check string) "status unknown" "?" (resolved_string o "status")

let test_george_oracle_one_round () =
  let o = F.resolve ~user:(F.oracle Fixtures.george_truth) (Fixtures.george_spec ()) in
  Alcotest.(check bool) "valid" true o.F.valid;
  Alcotest.(check int) "one interaction suffices" 1 o.F.rounds;
  Alcotest.(check (list int)) "known progression" [ 2; 8 ] o.F.per_round_known;
  List.iter
    (fun (a, expect) -> Alcotest.(check string) a expect (resolved_string o a))
    [
      ("name", "George"); ("status", "retired"); ("job", "veteran"); ("kids", "2");
      ("city", "NY"); ("AC", "212"); ("zip", "12404"); ("county", "Accord");
    ]

let test_invalid_spec_detected () =
  (* contradictory currency orders make the specification invalid *)
  let spec =
    Crcore.Spec.make Fixtures.george_entity
      ~orders:
        [
          { Crcore.Spec.attr = "status"; lo = 0; hi = 1 };
          { Crcore.Spec.attr = "status"; lo = 1; hi = 0 };
        ]
      ~sigma:Fixtures.sigma ~gamma:Fixtures.gamma
  in
  let o = F.resolve ~user:F.silent spec in
  Alcotest.(check bool) "invalid" false o.F.valid;
  Alcotest.(check int) "no rounds" 0 o.F.rounds

let test_constraint_conflict_invalid () =
  (* ϕ1/ϕ2 orderings clash with an explicit reversed order *)
  let spec =
    Crcore.Spec.make Fixtures.edith_entity
      ~orders:[ { Crcore.Spec.attr = "status"; lo = 2; hi = 0 } ]
        (* deceased ≺ working contradicts working ≺ retired ≺ deceased *)
      ~sigma:Fixtures.sigma ~gamma:Fixtures.gamma
  in
  Alcotest.(check bool) "invalid" false (Crcore.Validity.is_valid spec)

let test_max_rounds_cap () =
  (* a user that answers nothing useful: framework stops at max_rounds *)
  let useless suggestion ~schema =
    match suggestion.Crcore.Rules.attrs with
    | a :: _ ->
        (* give a *wrong but consistent-with-nothing* fresh value *)
        [ (Schema.name schema a, Value.Str "fresh_unrelated_value") ]
    | [] -> []
  in
  let o = F.resolve ~max_rounds:2 ~user:useless (Fixtures.george_spec ()) in
  Alcotest.(check bool) "at most 2 rounds" true (o.F.rounds <= 2)

let test_timings_populated () =
  let o = F.resolve ~user:(F.oracle Fixtures.george_truth) (Fixtures.george_spec ()) in
  Alcotest.(check bool) "validity time >= 0" true (o.F.timings.F.validity >= 0.);
  Alcotest.(check bool) "deduce time >= 0" true (o.F.timings.F.deduce >= 0.);
  Alcotest.(check bool) "suggest time >= 0" true (o.F.timings.F.suggest >= 0.)

let test_naive_deducer_plugs_in () =
  let o =
    F.resolve ~deduce:Crcore.Deduce.naive_deduce ~user:F.silent (Fixtures.edith_spec ())
  in
  Alcotest.(check string) "still resolves Edith" "deceased" (resolved_string o "status")

let test_exact_mode () =
  let o = F.resolve ~mode:Crcore.Encode.Exact ~user:F.silent (Fixtures.edith_spec ()) in
  Alcotest.(check bool) "valid in exact mode" true o.F.valid;
  Alcotest.(check string) "same status" "deceased" (resolved_string o "status")

let prop_oracle_resolves_correctly =
  (* on valid random specs, whatever the framework resolves with a perfect
     oracle must match that oracle's tuple when the spec's constraints
     don't contradict it *)
  QCheck.Test.make ~count:60 ~name:"framework terminates and output is internally consistent"
    Fixtures.qcheck_spec (fun spec ->
      let o = F.resolve ~max_rounds:3 ~user:F.silent spec in
      (* silent user: at most 0 rounds, and resolution is a function of spec *)
      o.F.rounds = 0
      && List.length o.F.per_round_known = 1
      &&
      let o2 = F.resolve ~max_rounds:3 ~user:F.silent spec in
      o.F.resolved = o2.F.resolved)

let prop_walksat_repair_resolves_datasets =
  (* the whole framework also works with the WalkSAT repair engine *)
  QCheck.Test.make ~count:8 ~name:"walksat-repaired framework resolves generator data"
    QCheck.(int_range 0 100)
    (fun seed ->
      let ds = Datagen.Person.quick ~seed ~n_entities:3 ~size:7 () in
      List.for_all
        (fun (c : Datagen.Types.case) ->
          let spec = Datagen.Types.spec_of ds c in
          let o =
            F.resolve ~repair:Crcore.Rules.Walksat ~user:(F.oracle c.Datagen.Types.truth) spec
          in
          o.F.valid
          && Array.for_all
               (function
                 | Some _ -> true
                 | None -> false)
               o.F.resolved)
        ds.Datagen.Types.cases)

let prop_per_round_monotone =
  QCheck.Test.make ~count:40 ~name:"known counts never decrease across rounds"
    Fixtures.qcheck_spec (fun spec ->
      match Crcore.Reference.analyze spec with
      | Some r when r.Crcore.Reference.valid -> (
          match r.Crcore.Reference.true_tuple with
          | Some t ->
              let truth = Tuple.of_array (Crcore.Spec.schema spec) t in
              let o = F.resolve ~max_rounds:4 ~user:(F.oracle truth) spec in
              let rec monotone = function
                | a :: (b :: _ as rest) -> a <= b && monotone rest
                | _ -> true
              in
              monotone o.F.per_round_known
          | None -> true)
      | _ -> true)

let () =
  Alcotest.run "framework"
    [
      ( "paper_flow",
        [
          Alcotest.test_case "Edith: zero interactions" `Quick test_edith_zero_interactions;
          Alcotest.test_case "George: silent" `Quick test_george_silent;
          Alcotest.test_case "George: oracle, 1 round" `Quick test_george_oracle_one_round;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "invalid orders detected" `Quick test_invalid_spec_detected;
          Alcotest.test_case "constraint conflict detected" `Quick test_constraint_conflict_invalid;
          Alcotest.test_case "max_rounds cap" `Quick test_max_rounds_cap;
          Alcotest.test_case "timings populated" `Quick test_timings_populated;
          Alcotest.test_case "pluggable deducer" `Quick test_naive_deducer_plugs_in;
          Alcotest.test_case "exact encoding mode" `Quick test_exact_mode;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_oracle_resolves_correctly;
            prop_walksat_repair_resolves_datasets;
            prop_per_round_monotone;
          ] );
    ]
