(* The CDCL solver, tested against hand-built formulas, DIMACS fixtures,
   and the brute-force reference on random CNFs (qcheck). *)

let lit = Sat.Lit.make

let solve_cnf f =
  let s = Sat.Solver.create () in
  Sat.Solver.add_cnf s f;
  (s, Sat.Solver.solve s)

let is_sat f = match solve_cnf f with _, Sat.Solver.Sat -> true | _ -> false

let test_lit_encoding () =
  Alcotest.(check int) "var" 7 (Sat.Lit.var (lit 7 true));
  Alcotest.(check int) "var neg" 7 (Sat.Lit.var (lit 7 false));
  Alcotest.(check bool) "sign pos" true (Sat.Lit.sign (lit 3 true));
  Alcotest.(check bool) "sign neg" false (Sat.Lit.sign (lit 3 false));
  Alcotest.(check int) "negate round trip" (lit 4 true) (Sat.Lit.negate (Sat.Lit.negate (lit 4 true)));
  Alcotest.(check int) "dimacs pos" 5 (Sat.Lit.to_dimacs (Sat.Lit.of_dimacs 5));
  Alcotest.(check int) "dimacs neg" (-5) (Sat.Lit.to_dimacs (Sat.Lit.of_dimacs (-5)))

let test_trivial () =
  Alcotest.(check bool) "empty formula" true (is_sat (Sat.Cnf.make ~nvars:0 []));
  Alcotest.(check bool) "unit" true (is_sat (Sat.Cnf.make ~nvars:1 [ [| lit 0 true |] ]));
  Alcotest.(check bool) "contradiction" false
    (is_sat (Sat.Cnf.make ~nvars:1 [ [| lit 0 true |]; [| lit 0 false |] ]));
  Alcotest.(check bool) "empty clause" false (is_sat (Sat.Cnf.make ~nvars:1 [ [||] ]))

let test_model () =
  let f =
    Sat.Cnf.make ~nvars:3
      [ [| lit 0 true |]; [| lit 0 false; lit 1 true |]; [| lit 1 false; lit 2 false |] ]
  in
  let s, r = solve_cnf f in
  Alcotest.(check bool) "sat" true (r = Sat.Solver.Sat);
  let m = Sat.Solver.model s in
  Alcotest.(check bool) "model satisfies" true (Sat.Cnf.eval m f);
  Alcotest.(check bool) "x0" true (Sat.Solver.model_value s 0);
  Alcotest.(check bool) "x1" true (Sat.Solver.model_value s 1);
  Alcotest.(check bool) "x2" false (Sat.Solver.model_value s 2)

let test_level0 () =
  let s = Sat.Solver.create () in
  Sat.Solver.ensure_nvars s 2;
  Sat.Solver.add_clause s [ lit 0 true ];
  Sat.Solver.add_clause s [ lit 0 false; lit 1 true ];
  Alcotest.(check (option bool)) "x0 fixed" (Some true) (Sat.Solver.value_level0 s 0);
  Alcotest.(check (option bool)) "x1 propagated" (Some true) (Sat.Solver.value_level0 s 1)

let test_pigeonhole () =
  (* PHP(4,3): 4 pigeons in 3 holes, classic small UNSAT instance that
     needs real conflict analysis *)
  let var p h = (p * 3) + h in
  let clauses = ref [] in
  for p = 0 to 3 do
    clauses := Array.init 3 (fun h -> lit (var p h) true) :: !clauses
  done;
  for h = 0 to 2 do
    for p1 = 0 to 3 do
      for p2 = p1 + 1 to 3 do
        clauses := [| lit (var p1 h) false; lit (var p2 h) false |] :: !clauses
      done
    done
  done;
  Alcotest.(check bool) "php(4,3) unsat" false (is_sat (Sat.Cnf.make ~nvars:12 !clauses))

let test_assumptions () =
  let f = Sat.Cnf.make ~nvars:2 [ [| lit 0 true; lit 1 true |] ] in
  let s, r = solve_cnf f in
  Alcotest.(check bool) "base sat" true (r = Sat.Solver.Sat);
  Alcotest.(check bool) "assume both false"
    (Sat.Solver.solve ~assumptions:[ lit 0 false; lit 1 false ] s = Sat.Solver.Unsat)
    true;
  Alcotest.(check bool) "assume one false"
    (Sat.Solver.solve ~assumptions:[ lit 0 false ] s = Sat.Solver.Sat)
    true;
  (* solver still usable without assumptions *)
  Alcotest.(check bool) "still sat" true (Sat.Solver.solve s = Sat.Solver.Sat);
  Alcotest.(check bool) "still ok" true (Sat.Solver.ok s)

let test_incremental () =
  let s = Sat.Solver.create () in
  Sat.Solver.ensure_nvars s 3;
  Sat.Solver.add_clause s [ lit 0 true; lit 1 true ];
  Alcotest.(check bool) "sat 1" true (Sat.Solver.solve s = Sat.Solver.Sat);
  Sat.Solver.add_clause s [ lit 0 false ];
  Alcotest.(check bool) "sat 2" true (Sat.Solver.solve s = Sat.Solver.Sat);
  Sat.Solver.add_clause s [ lit 1 false ];
  Alcotest.(check bool) "unsat after narrowing" true (Sat.Solver.solve s = Sat.Solver.Unsat);
  Alcotest.(check bool) "ok false" false (Sat.Solver.ok s)

let test_dimacs_roundtrip () =
  let text = "c a comment\np cnf 3 2\n1 -2 0\n2 3 0\n" in
  let f = Sat.Dimacs.parse_string text in
  Alcotest.(check int) "nvars" 3 f.Sat.Cnf.nvars;
  Alcotest.(check int) "nclauses" 2 (Sat.Cnf.nclauses f);
  let f2 = Sat.Dimacs.parse_string (Sat.Dimacs.to_string f) in
  Alcotest.(check int) "round trip clauses" (Sat.Cnf.nclauses f) (Sat.Cnf.nclauses f2);
  Alcotest.(check bool) "both sat" (is_sat f) (is_sat f2)

let test_dimacs_errors () =
  Alcotest.(check bool) "bad token"
    (try ignore (Sat.Dimacs.parse_string "1 x 0"); false with Failure _ -> true)
    true

(* ---- randomised differential tests ---- *)

let rand_cnf st nvars nclauses =
  let clause () =
    let len = 1 + Random.State.int st 3 in
    Array.init len (fun _ -> lit (Random.State.int st nvars) (Random.State.bool st))
  in
  Sat.Cnf.make ~nvars (List.init nclauses (fun _ -> clause ()))

let qcheck_cnf =
  QCheck.make
    ~print:(fun f -> Format.asprintf "%a" Sat.Cnf.pp f)
    QCheck.Gen.(
      int_range 1 10 >>= fun nvars ->
      int_range 0 40 >>= fun ncl ->
      int_bound 1_000_000 >|= fun seed ->
      rand_cnf (Random.State.make [| seed |]) nvars ncl)

let prop_agrees_with_brute =
  QCheck.Test.make ~count:300 ~name:"cdcl agrees with brute force" qcheck_cnf (fun f ->
      let brute_sat = Sat.Brute.solve f <> None in
      let s, r = solve_cnf f in
      match r with
      | Sat.Solver.Sat -> brute_sat && Sat.Cnf.eval (Sat.Solver.model s) f
      | Sat.Solver.Unsat -> not brute_sat)

let prop_assumptions_sound =
  QCheck.Test.make ~count:200 ~name:"assumptions = added units" qcheck_cnf (fun f ->
      if f.Sat.Cnf.nvars < 2 then true
      else begin
        let a1 = lit 0 true and a2 = lit 1 false in
        let f' = Sat.Cnf.add_clause (Sat.Cnf.add_clause f [| a1 |]) [| a2 |] in
        let s, _ = solve_cnf f in
        let with_assump = Sat.Solver.solve ~assumptions:[ a1; a2 ] s in
        let direct = if Sat.Brute.solve f' <> None then Sat.Solver.Sat else Sat.Solver.Unsat in
        with_assump = direct
      end)

let prop_model_count_positive =
  QCheck.Test.make ~count:100 ~name:"sat iff count_models > 0" qcheck_cnf (fun f ->
      let n = Sat.Brute.count_models f in
      is_sat f = (n > 0))

let () =
  Alcotest.run "sat"
    [
      ( "unit",
        [
          Alcotest.test_case "literal encoding" `Quick test_lit_encoding;
          Alcotest.test_case "trivial formulas" `Quick test_trivial;
          Alcotest.test_case "model extraction" `Quick test_model;
          Alcotest.test_case "level-0 values" `Quick test_level0;
          Alcotest.test_case "pigeonhole unsat" `Quick test_pigeonhole;
          Alcotest.test_case "assumptions" `Quick test_assumptions;
          Alcotest.test_case "incremental" `Quick test_incremental;
          Alcotest.test_case "dimacs round trip" `Quick test_dimacs_roundtrip;
          Alcotest.test_case "dimacs errors" `Quick test_dimacs_errors;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [ prop_agrees_with_brute; prop_assumptions_sound; prop_model_count_positive ] );
    ]
