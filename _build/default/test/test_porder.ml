(* Digraphs and strict partial orders with incremental closure. *)

let mk n edges =
  let g = Porder.Digraph.create n in
  List.iter (fun (u, v) -> Porder.Digraph.add_edge g u v) edges;
  g

let test_digraph_basic () =
  let g = mk 3 [ (0, 1); (1, 2) ] in
  Alcotest.(check bool) "edge" true (Porder.Digraph.has_edge g 0 1);
  Alcotest.(check bool) "directed" false (Porder.Digraph.has_edge g 1 0);
  Alcotest.(check int) "n_edges" 2 (Porder.Digraph.n_edges g);
  Alcotest.(check (list int)) "succ" [ 1 ] (Porder.Digraph.succ g 0);
  (* duplicate edges collapse *)
  Porder.Digraph.add_edge g 0 1;
  Alcotest.(check int) "no dup" 2 (Porder.Digraph.n_edges g)

let test_cycles () =
  Alcotest.(check bool) "dag" false (Porder.Digraph.has_cycle (mk 3 [ (0, 1); (1, 2) ]));
  Alcotest.(check bool) "cycle" true (Porder.Digraph.has_cycle (mk 3 [ (0, 1); (1, 2); (2, 0) ]));
  Alcotest.(check bool) "self loop" true (Porder.Digraph.has_cycle (mk 1 [ (0, 0) ]));
  Alcotest.(check bool) "two components" true
    (Porder.Digraph.has_cycle (mk 5 [ (0, 1); (3, 4); (4, 3) ]))

let test_closure () =
  let g = mk 4 [ (0, 1); (1, 2); (2, 3) ] in
  let c = Porder.Digraph.transitive_closure g in
  Alcotest.(check bool) "0->3" true (Porder.Digraph.has_edge c 0 3);
  Alcotest.(check bool) "0->2" true (Porder.Digraph.has_edge c 0 2);
  Alcotest.(check bool) "no back" false (Porder.Digraph.has_edge c 3 0);
  Alcotest.(check int) "edge count" 6 (Porder.Digraph.n_edges c);
  (* cycle: everything on it reaches itself *)
  let c2 = Porder.Digraph.transitive_closure (mk 2 [ (0, 1); (1, 0) ]) in
  Alcotest.(check bool) "self via cycle" true (Porder.Digraph.has_edge c2 0 0)

let test_topo () =
  (match Porder.Digraph.topo_sort (mk 3 [ (2, 1); (1, 0) ]) with
  | Some [ 2; 1; 0 ] -> ()
  | Some o -> Alcotest.failf "bad order %s" (String.concat "," (List.map string_of_int o))
  | None -> Alcotest.fail "expected an order");
  Alcotest.(check bool) "cyclic has none" true
    (Porder.Digraph.topo_sort (mk 2 [ (0, 1); (1, 0) ]) = None)

let test_linear_extensions () =
  (* chain: exactly 1; antichain of 3: 3! = 6 *)
  Alcotest.(check int) "chain" 1 (List.length (Porder.Digraph.linear_extensions (mk 3 [ (0, 1); (1, 2) ])));
  Alcotest.(check int) "antichain" 6 (List.length (Porder.Digraph.linear_extensions (mk 3 [])));
  Alcotest.(check int) "V shape" 2 (List.length (Porder.Digraph.linear_extensions (mk 3 [ (0, 2); (1, 2) ])));
  Alcotest.(check int) "cyclic" 0 (List.length (Porder.Digraph.linear_extensions (mk 2 [ (0, 1); (1, 0) ])));
  Alcotest.(check int) "count matches list" 6 (Porder.Digraph.count_linear_extensions (mk 3 []));
  Alcotest.(check int) "limit" 3 (Porder.Digraph.count_linear_extensions ~limit:3 (mk 3 []));
  (* each extension respects all edges *)
  let g = mk 4 [ (0, 1); (2, 3) ] in
  List.iter
    (fun ext ->
      let pos = Array.make 4 0 in
      List.iteri (fun i v -> pos.(v) <- i) ext;
      Alcotest.(check bool) "respects 0<1" true (pos.(0) < pos.(1));
      Alcotest.(check bool) "respects 2<3" true (pos.(2) < pos.(3)))
    (Porder.Digraph.linear_extensions g)

let test_strict_order_add () =
  let o = Porder.Strict_order.create 4 in
  Alcotest.(check bool) "add 0<1" true (Porder.Strict_order.add o 0 1);
  Alcotest.(check bool) "add 1<2" true (Porder.Strict_order.add o 1 2);
  Alcotest.(check bool) "transitive" true (Porder.Strict_order.lt o 0 2);
  Alcotest.(check bool) "reject cycle" false (Porder.Strict_order.add o 2 0);
  Alcotest.(check bool) "reject reflexive" false (Porder.Strict_order.add o 3 3);
  Alcotest.(check bool) "idempotent re-add" true (Porder.Strict_order.add o 0 1);
  Alcotest.(check bool) "compatible" true (Porder.Strict_order.compatible o 3 0);
  Alcotest.(check bool) "incompatible" false (Porder.Strict_order.compatible o 2 0)

let test_strict_order_queries () =
  let o = Porder.Strict_order.create 4 in
  ignore (Porder.Strict_order.add o 0 1);
  ignore (Porder.Strict_order.add o 1 2);
  Alcotest.(check int) "n_pairs (closure)" 3 (Porder.Strict_order.n_pairs o);
  Alcotest.(check (list int)) "maximal" [ 2; 3 ] (Porder.Strict_order.maximal o);
  Alcotest.(check (option int)) "no maximum yet" None (Porder.Strict_order.maximum o);
  ignore (Porder.Strict_order.add o 3 2);
  ignore (Porder.Strict_order.add o 0 3);
  ignore (Porder.Strict_order.add o 1 3);
  Alcotest.(check (option int)) "maximum" (Some 2) (Porder.Strict_order.maximum o);
  (* copies are independent *)
  let o2 = Porder.Strict_order.copy o in
  ignore (Porder.Strict_order.add o2 0 2);
  Alcotest.(check int) "copy independent" (Porder.Strict_order.n_pairs o) (Porder.Strict_order.n_pairs o2 - 0)
  |> ignore

let test_strict_order_singleton () =
  let o = Porder.Strict_order.create 1 in
  Alcotest.(check (option int)) "singleton maximum" (Some 0) (Porder.Strict_order.maximum o);
  Alcotest.(check (list int)) "singleton maximal" [ 0 ] (Porder.Strict_order.maximal o)

(* closure built incrementally must match Digraph's closure of the same edges *)
let prop_closure_agrees =
  QCheck.Test.make ~count:200 ~name:"incremental closure = digraph closure"
    QCheck.(pair (int_range 1 8) (small_list (pair (int_range 0 7) (int_range 0 7))))
    (fun (n, edges) ->
      let edges = List.filter (fun (u, v) -> u < n && v < n) edges in
      let o = Porder.Strict_order.create n in
      let g = Porder.Digraph.create n in
      List.iter
        (fun (u, v) -> if Porder.Strict_order.add o u v then Porder.Digraph.add_edge g u v)
        edges;
      let c = Porder.Digraph.transitive_closure g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if Porder.Strict_order.lt o u v <> Porder.Digraph.has_edge c u v then ok := false
        done
      done;
      !ok)

let prop_irreflexive_asymmetric =
  QCheck.Test.make ~count:200 ~name:"strict order stays irreflexive and asymmetric"
    QCheck.(pair (int_range 1 8) (small_list (pair (int_range 0 7) (int_range 0 7))))
    (fun (n, edges) ->
      let edges = List.filter (fun (u, v) -> u < n && v < n) edges in
      let o = Porder.Strict_order.create n in
      List.iter (fun (u, v) -> ignore (Porder.Strict_order.add o u v)) edges;
      let ok = ref true in
      for u = 0 to n - 1 do
        if Porder.Strict_order.lt o u u then ok := false;
        for v = 0 to n - 1 do
          if Porder.Strict_order.lt o u v && Porder.Strict_order.lt o v u then ok := false
        done
      done;
      !ok)

let () =
  Alcotest.run "porder"
    [
      ( "digraph",
        [
          Alcotest.test_case "basic" `Quick test_digraph_basic;
          Alcotest.test_case "cycle detection" `Quick test_cycles;
          Alcotest.test_case "transitive closure" `Quick test_closure;
          Alcotest.test_case "topological sort" `Quick test_topo;
          Alcotest.test_case "linear extensions" `Quick test_linear_extensions;
        ] );
      ( "strict_order",
        [
          Alcotest.test_case "add and cycles" `Quick test_strict_order_add;
          Alcotest.test_case "maximal/maximum" `Quick test_strict_order_queries;
          Alcotest.test_case "singleton" `Quick test_strict_order_singleton;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest [ prop_closure_agrees; prop_irreflexive_asymmetric ] );
    ]
