(* Constant CFDs: construction, semantics on current tuples, parsing. *)

module F = Cfd.Constant_cfd

let schema = Schema.make [ "AC"; "city"; "zip" ]
let mk l = Tuple.make schema (List.map Value.of_string l)

let psi = F.make [ ("AC", Value.Int 212) ] ("city", Value.Str "NY")

let test_make_validation () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "empty lhs" true (bad (fun () -> F.make [] ("city", Value.Str "NY")));
  Alcotest.(check bool) "dup lhs" true
    (bad (fun () -> F.make [ ("a", Value.Int 1); ("a", Value.Int 2) ] ("b", Value.Int 3)));
  Alcotest.(check bool) "rhs on lhs" true
    (bad (fun () -> F.make [ ("city", Value.Str "NY") ] ("city", Value.Str "LA")));
  Alcotest.(check bool) "null pattern" true
    (bad (fun () -> F.make [ ("a", Value.Null) ] ("b", Value.Int 1)))

let test_semantics () =
  Alcotest.(check bool) "applies" true (F.applies psi (mk [ "212"; "NY"; "10001" ]));
  Alcotest.(check bool) "applies regardless of rhs" true (F.applies psi (mk [ "212"; "LA"; "1" ]));
  Alcotest.(check bool) "not applies" false (F.applies psi (mk [ "213"; "NY"; "1" ]));
  Alcotest.(check bool) "satisfied when matching" true (F.satisfied psi (mk [ "212"; "NY"; "1" ]));
  Alcotest.(check bool) "violated" false (F.satisfied psi (mk [ "212"; "LA"; "1" ]));
  Alcotest.(check bool) "vacuously satisfied" true (F.satisfied psi (mk [ "213"; "LA"; "1" ]))

let test_constants_for () =
  Alcotest.(check int) "AC constant" 1 (List.length (F.constants_for psi "AC"));
  Alcotest.(check int) "city constant" 1 (List.length (F.constants_for psi "city"));
  Alcotest.(check int) "zip none" 0 (List.length (F.constants_for psi "zip"))

let test_check_schema () =
  Alcotest.(check bool) "ok" true (F.check_schema psi schema = Ok ());
  let other = F.make [ ("nope", Value.Int 1) ] ("city", Value.Str "x") in
  Alcotest.(check bool) "unknown attr" true (F.check_schema other schema = Error "nope")

let test_parse () =
  let c = F.parse_exn {|AC = 212 -> city = "NY"|} in
  Alcotest.(check string) "round trip" (F.to_string psi) (F.to_string c);
  let c2 = F.parse_exn "a = 1 & b = \"two\" -> c = 3" in
  Alcotest.(check int) "two lhs atoms" 2 (List.length c2.F.lhs);
  Alcotest.(check bool) "single quotes" true
    (match F.parse "x = 'ab' -> y = 'cd'" with Ok _ -> true | Error _ -> false)

let test_parse_errors () =
  let bad s = match F.parse s with Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "no arrow" true (bad "a = 1");
  Alcotest.(check bool) "no equals" true (bad "a -> b = 1");
  Alcotest.(check bool) "rhs repeated on lhs" true (bad "a = 1 -> a = 2")

let test_parse_many () =
  match F.parse_many "# cfds\nAC = 212 -> city = \"NY\"; AC = 213 -> city = \"LA\"\n" with
  | Ok l -> Alcotest.(check int) "two" 2 (List.length l)
  | Error m -> Alcotest.fail m

let prop_roundtrip =
  let gen =
    QCheck.Gen.(
      let attr = oneofl [ "a"; "b"; "c"; "d" ] in
      let const =
        oneof [ map (fun i -> Value.Int i) small_nat; map (fun s -> Value.Str s) (oneofl [ "x"; "y z" ]) ]
      in
      let atom = pair attr const in
      list_size (int_range 1 3) atom >>= fun lhs ->
      atom >|= fun rhs ->
      (* keep attributes distinct to satisfy the smart constructor *)
      let seen = Hashtbl.create 4 in
      let lhs =
        List.filter
          (fun (a, _) -> if Hashtbl.mem seen a || a = fst rhs then false else (Hashtbl.add seen a (); true))
          lhs
      in
      if lhs = [] then None else Some (F.make lhs rhs))
  in
  QCheck.Test.make ~count:200 ~name:"print/parse round trip"
    (QCheck.make ~print:(function None -> "-" | Some c -> F.to_string c) gen)
    (function
      | None -> true
      | Some c -> (
          match F.parse (F.to_string c) with
          | Ok c' -> F.to_string c = F.to_string c'
          | Error _ -> false))

let () =
  Alcotest.run "cfd"
    [
      ( "unit",
        [
          Alcotest.test_case "make validation" `Quick test_make_validation;
          Alcotest.test_case "semantics" `Quick test_semantics;
          Alcotest.test_case "constants_for" `Quick test_constants_for;
          Alcotest.test_case "check_schema" `Quick test_check_schema;
          Alcotest.test_case "parse" `Quick test_parse;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "parse_many" `Quick test_parse_many;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_roundtrip ]);
    ]
