(* General CFDs: pattern semantics and the SAT-backed satisfiability
   check. *)

module G = Cfd.General_cfd

let schema = Schema.make [ "cc"; "ac"; "city" ]
let mk l = Tuple.make schema (List.map Value.of_string l)

(* the classic example: (cc, zip -> street)-style pattern dependencies *)
let phi1 = G.make [ ("cc", G.Const (Value.Int 44)); ("ac", G.Any) ] ("city", G.Any)
let phi2 = G.make [ ("cc", G.Const (Value.Int 44)); ("ac", G.Const (Value.Int 131)) ] ("city", G.Const (Value.Str "EDI"))

let test_matches () =
  Alcotest.(check bool) "any" true (G.matches G.Any (Value.Str "x"));
  Alcotest.(check bool) "const yes" true (G.matches (G.Const (Value.Int 3)) (Value.Int 3));
  Alcotest.(check bool) "const no" false (G.matches (G.Const (Value.Int 3)) (Value.Int 4))

let test_pair_semantics () =
  let t1 = mk [ "44"; "131"; "EDI" ] and t2 = mk [ "44"; "131"; "EDI" ] in
  Alcotest.(check bool) "matching pair ok" true (G.satisfied_pair phi2 t1 t2);
  let t3 = mk [ "44"; "131"; "GLA" ] in
  Alcotest.(check bool) "wrong rhs constant" false (G.satisfied_pair phi2 t3 t3);
  (* phi1 with wildcard RHS: functional dependency behaviour *)
  let t4 = mk [ "44"; "131"; "EDI" ] and t5 = mk [ "44"; "131"; "GLA" ] in
  ignore phi1;
  let phi_fd = G.make [ ("cc", G.Any); ("ac", G.Any) ] ("city", G.Any) in
  Alcotest.(check bool) "fd violated" false (G.satisfied_pair phi_fd t4 t5);
  Alcotest.(check bool) "fd ok when lhs differs" true
    (G.satisfied_pair phi_fd t4 (mk [ "1"; "131"; "GLA" ]))

let test_instance () =
  let phi_fd = G.make [ ("ac", G.Any) ] ("city", G.Any) in
  Alcotest.(check bool) "instance ok" true
    (G.satisfied_instance phi_fd [ mk [ "44"; "131"; "EDI" ]; mk [ "44"; "20"; "NYC" ] ]);
  Alcotest.(check bool) "instance violated" false
    (G.satisfied_instance phi_fd [ mk [ "44"; "131"; "EDI" ]; mk [ "1"; "131"; "NYC" ] ])

let test_of_constant () =
  let c = Cfd.Constant_cfd.make [ ("ac", Value.Int 212) ] ("city", Value.Str "NY") in
  let g = G.of_constant c in
  Alcotest.(check string) "embedding prints the same pattern"
    "ac = 212 -> city = \"NY\"" (G.to_string g)

let test_satisfiable_basic () =
  Alcotest.(check bool) "single cfd" true (G.satisfiable ~schema [ phi2 ]);
  (* conflicting constants on the same premise: unsatisfiable *)
  let phi3 =
    G.make [ ("cc", G.Const (Value.Int 44)); ("ac", G.Const (Value.Int 131)) ]
      ("city", G.Const (Value.Str "GLA"))
  in
  Alcotest.(check bool) "two rhs for same lhs... still satisfiable (avoid the lhs)" true
    (G.satisfiable ~schema [ phi2; phi3 ]);
  (* force the lhs with wildcard-premise cfds and clash on rhs *)
  let force_cc = G.make [ ("ac", G.Any) ] ("cc", G.Const (Value.Int 44)) in
  let force_ac = G.make [ ("cc", G.Any) ] ("ac", G.Const (Value.Int 131)) in
  Alcotest.(check bool) "forced clash unsat" false
    (G.satisfiable ~schema [ phi2; phi3; force_cc; force_ac ])

let test_satisfiable_chain () =
  (* a -> b -> clash with what a forces directly *)
  let s2 = Schema.make [ "a"; "b"; "c" ] in
  let c1 = G.make [ ("a", G.Any) ] ("b", G.Const (Value.Int 1)) in
  let c2 = G.make [ ("b", G.Const (Value.Int 1)) ] ("c", G.Const (Value.Int 2)) in
  let c3 = G.make [ ("a", G.Any) ] ("c", G.Const (Value.Int 3)) in
  Alcotest.(check bool) "chained contradiction" false (G.satisfiable ~schema:s2 [ c1; c2; c3 ]);
  Alcotest.(check bool) "drop one: fine" true (G.satisfiable ~schema:s2 [ c1; c2 ])

let test_parse () =
  let c = G.parse_exn "cc = 44 & ac = _ -> city = _" in
  Alcotest.(check string) "round trip" "ac = _ & cc = 44 -> city = _" (G.to_string c);
  Alcotest.(check bool) "reparse" true
    (match G.parse (G.to_string c) with Ok c' -> G.to_string c' = G.to_string c | Error _ -> false);
  Alcotest.(check bool) "bad" true (match G.parse "nope" with Error _ -> true | Ok _ -> false)

let prop_constant_embedding_agrees =
  (* on single tuples, a constant CFD and its embedding agree *)
  QCheck.Test.make ~count:200 ~name:"constant embedding semantics agree"
    QCheck.(triple (int_range 0 3) (int_range 0 3) (int_range 0 3))
    (fun (x, y, z) ->
      let t = mk [ string_of_int x; string_of_int y; string_of_int z ] in
      let c = Cfd.Constant_cfd.make [ ("cc", Value.Int 1) ] ("city", Value.Int 2) in
      let g = G.of_constant c in
      Cfd.Constant_cfd.satisfied c t = G.satisfied_pair g t t)

let prop_satisfiable_monotone =
  (* removing CFDs can only keep or gain satisfiability *)
  QCheck.Test.make ~count:100 ~name:"satisfiability is antitone in the CFD set"
    QCheck.(int_range 0 1000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let attrs = [ "cc"; "ac"; "city" ] in
      let rand_cell () =
        if Random.State.bool st then G.Any else G.Const (Value.Int (Random.State.int st 3))
      in
      let rand_cfd () =
        let lhs_attr = List.nth attrs (Random.State.int st 3) in
        let rhs_attr =
          List.nth (List.filter (fun a -> a <> lhs_attr) attrs) (Random.State.int st 2)
        in
        G.make [ (lhs_attr, rand_cell ()) ] (rhs_attr, rand_cell ())
      in
      let cfds = List.init (1 + Random.State.int st 5) (fun _ -> rand_cfd ()) in
      let all = G.satisfiable ~schema cfds in
      let fewer = G.satisfiable ~schema (List.tl cfds) in
      (not all) || fewer)

let () =
  Alcotest.run "general_cfd"
    [
      ( "unit",
        [
          Alcotest.test_case "cell matching" `Quick test_matches;
          Alcotest.test_case "pair semantics" `Quick test_pair_semantics;
          Alcotest.test_case "instance semantics" `Quick test_instance;
          Alcotest.test_case "constant embedding" `Quick test_of_constant;
          Alcotest.test_case "satisfiability basics" `Quick test_satisfiable_basic;
          Alcotest.test_case "satisfiability chains" `Quick test_satisfiable_chain;
          Alcotest.test_case "parse/print" `Quick test_parse;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [ prop_constant_embedding_agrees; prop_satisfiable_monotone ] );
    ]
