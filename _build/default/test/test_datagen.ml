(* The synthetic dataset generators: structural invariants, validity of
   every generated specification, and solvability with the oracle. *)

module T = Datagen.Types

let all_cases_valid ds =
  List.for_all
    (fun (c : T.case) -> Crcore.Validity.is_valid (T.spec_of ds c))
    ds.T.cases

let truth_in_entity (ds : T.dataset) =
  (* every ground-truth attribute value occurs in the entity *)
  List.for_all
    (fun (c : T.case) ->
      List.for_all
        (fun a ->
          let v = Tuple.get c.T.truth a in
          List.exists (Value.equal v) (Entity.active_domain c.T.entity a))
        (List.init (Schema.arity ds.T.schema) Fun.id))
    ds.T.cases

let test_person_shape () =
  let p = Datagen.Person.default_params in
  let ds = Datagen.Person.generate { p with n_entities = 5; size_min = 5; size_max = 9 } in
  Alcotest.(check int) "983 currency constraints" 983 (List.length ds.T.sigma);
  Alcotest.(check int) "1000 cfd patterns" 1000 (List.length ds.T.gamma);
  Alcotest.(check int) "entities" 5 (List.length ds.T.cases);
  List.iter
    (fun (c : T.case) ->
      let n = Entity.size c.T.entity in
      Alcotest.(check bool) "size in range" true (n >= 5 && n <= 9))
    ds.T.cases

let test_person_valid_and_truthful () =
  let ds = Datagen.Person.quick ~n_entities:10 ~size:8 () in
  Alcotest.(check bool) "all specs valid" true (all_cases_valid ds);
  Alcotest.(check bool) "truth values occur" true (truth_in_entity ds)

let test_person_deterministic () =
  let d1 = Datagen.Person.quick ~seed:5 ~n_entities:3 ~size:6 () in
  let d2 = Datagen.Person.quick ~seed:5 ~n_entities:3 ~size:6 () in
  List.iter2
    (fun (a : T.case) (b : T.case) ->
      Alcotest.(check bool) "same truth" true (Tuple.equal a.T.truth b.T.truth))
    d1.T.cases d2.T.cases

let test_nba_shape () =
  let ds = Datagen.Nba.generate { Datagen.Nba.default_params with n_entities = 5 } in
  Alcotest.(check int) "54 currency constraints" 54 (List.length ds.T.sigma);
  Alcotest.(check int) "59 cfds (one per arena)" 59 (List.length ds.T.gamma);
  Alcotest.(check int) "14 attributes" 14 (Schema.arity ds.T.schema)

let test_nba_valid () =
  let ds = Datagen.Nba.quick ~n_entities:8 ~seasons:4 () in
  Alcotest.(check bool) "all valid" true (all_cases_valid ds);
  Alcotest.(check bool) "truth occurs" true (truth_in_entity ds)

let test_nba_sized () =
  let ds =
    Datagen.Nba.generate_sized { Datagen.Nba.default_params with n_entities = 0 } ~sizes:[ 10; 40; 80 ]
  in
  Alcotest.(check (list int)) "requested sizes" [ 10; 40; 80 ]
    (List.map (fun (c : T.case) -> Entity.size c.T.entity) ds.T.cases);
  Alcotest.(check bool) "sized cases valid" true (all_cases_valid ds)

let test_nba_allpoints_monotone () =
  (* within a case, allpoints and per-season values never recur *)
  let ds = Datagen.Nba.quick ~n_entities:5 ~seasons:5 () in
  let a_pts = Schema.index ds.T.schema "points" in
  List.iter
    (fun (c : T.case) ->
      let adom = Entity.active_domain c.T.entity a_pts in
      (* distinct by construction: adom size = number of distinct season points *)
      Alcotest.(check bool) "distinct points" true (List.length adom >= 1))
    ds.T.cases

let test_career_shape () =
  let ds = Datagen.Career.generate { Datagen.Career.default_params with n_entities = 10; pubs_max = 20 } in
  Alcotest.(check int) "348 cfd patterns" 348 (List.length ds.T.gamma);
  Alcotest.(check bool) "constraints exist" true (List.length ds.T.sigma > 0);
  Alcotest.(check int) "5 attributes" 5 (Schema.arity ds.T.schema)

let test_career_valid () =
  let ds = Datagen.Career.quick ~n_entities:12 ~pubs:10 () in
  Alcotest.(check bool) "all valid" true (all_cases_valid ds);
  Alcotest.(check bool) "truth occurs" true (truth_in_entity ds)

let test_stamps_consistent () =
  (* each case carries one held-out timestamp per tuple, and the tuple
     with the maximal stamp agrees with the ground truth on Person (whose
     histories emit exactly one row per state) *)
  List.iter
    (fun (ds : T.dataset) ->
      List.iter
        (fun (c : T.case) ->
          Alcotest.(check int) "one stamp per tuple" (Entity.size c.T.entity)
            (Array.length c.T.stamps))
        ds.T.cases)
    [
      Datagen.Person.quick ~n_entities:4 ~size:7 ();
      Datagen.Nba.quick ~n_entities:3 ~seasons:3 ();
      Datagen.Career.quick ~n_entities:3 ~pubs:6 ();
    ];
  let ds = Datagen.Person.quick ~n_entities:6 ~size:9 () in
  List.iter
    (fun (c : T.case) ->
      let best = ref 0 in
      Array.iteri (fun i s -> if s > c.T.stamps.(!best) then best := i) c.T.stamps;
      Alcotest.(check bool) "latest-stamped tuple is the truth" true
        (Tuple.equal (Entity.tuple c.T.entity !best) c.T.truth))
    ds.T.cases

let test_stamps_order_respects_constraints () =
  (* the timestamp-induced value orders satisfy the dataset's own Σ: the
     generated histories really are clean *)
  let ds = Datagen.Person.quick ~n_entities:5 ~size:8 () in
  let stamped =
    Discovery.Stamped.make ds.T.schema
      (List.map
         (fun (c : T.case) -> List.mapi (fun i t -> (t, c.T.stamps.(i))) (Entity.tuples c.T.entity))
         ds.T.cases)
  in
  List.iter
    (fun c ->
      Alcotest.(check (float 1e-9))
        (Currency.Constraint_ast.to_string c)
        1.0
        (Discovery.Stamped.holds_frac stamped c))
    ds.T.sigma

let test_spec_fractions () =
  let ds = Datagen.Person.quick ~n_entities:2 ~size:6 () in
  let case = List.hd ds.T.cases in
  let full = T.spec_of ds case in
  let half = T.spec_of ~sigma_frac:0.5 ~gamma_frac:0.5 ds case in
  let none = T.spec_of ~sigma_frac:0.0 ~gamma_frac:0.0 ds case in
  Alcotest.(check bool) "half sigma smaller" true
    (List.length half.Crcore.Spec.sigma < List.length full.Crcore.Spec.sigma);
  Alcotest.(check int) "zero sigma" 0 (List.length none.Crcore.Spec.sigma);
  (* deterministic subsets *)
  let half2 = T.spec_of ~sigma_frac:0.5 ~gamma_frac:0.5 ds case in
  Alcotest.(check bool) "deterministic subset" true
    (List.map Currency.Constraint_ast.to_string half.Crcore.Spec.sigma
    = List.map Currency.Constraint_ast.to_string half2.Crcore.Spec.sigma);
  (* weakening constraints preserves validity *)
  Alcotest.(check bool) "subset still valid" true (Crcore.Validity.is_valid half)

let test_oracle_resolves_all_datasets () =
  List.iter
    (fun (ds : T.dataset) ->
      let m = ref Crcore.Metrics.zero in
      List.iter
        (fun (c : T.case) ->
          let spec = T.spec_of ds c in
          let o = Crcore.Framework.resolve ~user:(Crcore.Framework.oracle c.T.truth) spec in
          Alcotest.(check bool) (ds.T.name ^ " valid") true o.Crcore.Framework.valid;
          Alcotest.(check bool) (ds.T.name ^ " few rounds") true (o.Crcore.Framework.rounds <= 3);
          m :=
            Crcore.Metrics.add !m
              (Crcore.Metrics.evaluate ~truth:c.T.truth ~entity:c.T.entity
                 o.Crcore.Framework.resolved))
        ds.T.cases;
      Alcotest.(check bool)
        (ds.T.name ^ " F-measure = 1 with oracle")
        true
        (Crcore.Metrics.f_measure !m > 0.999))
    [
      Datagen.Person.quick ~n_entities:6 ~size:8 ();
      Datagen.Nba.quick ~n_entities:5 ~seasons:3 ();
      Datagen.Career.quick ~n_entities:5 ~pubs:8 ();
    ]

let prop_person_sizes =
  QCheck.Test.make ~count:20 ~name:"person entities match requested size"
    QCheck.(pair (int_range 2 20) (int_range 0 1000))
    (fun (size, seed) ->
      let ds = Datagen.Person.quick ~seed ~n_entities:2 ~size () in
      List.for_all (fun (c : T.case) -> Entity.size c.T.entity = size) ds.T.cases)

let prop_generators_always_valid =
  QCheck.Test.make ~count:15 ~name:"every generated spec is valid (all generators)"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      all_cases_valid (Datagen.Person.quick ~seed ~n_entities:3 ~size:7 ())
      && all_cases_valid (Datagen.Nba.quick ~seed ~n_entities:3 ~seasons:3 ())
      && all_cases_valid (Datagen.Career.quick ~seed ~n_entities:3 ~pubs:6 ()))

let () =
  Alcotest.run "datagen"
    [
      ( "person",
        [
          Alcotest.test_case "constraint counts" `Quick test_person_shape;
          Alcotest.test_case "validity + truth" `Quick test_person_valid_and_truthful;
          Alcotest.test_case "deterministic" `Quick test_person_deterministic;
        ] );
      ( "nba",
        [
          Alcotest.test_case "constraint counts" `Quick test_nba_shape;
          Alcotest.test_case "validity + truth" `Quick test_nba_valid;
          Alcotest.test_case "sized generation" `Quick test_nba_sized;
          Alcotest.test_case "points distinct" `Quick test_nba_allpoints_monotone;
        ] );
      ( "career",
        [
          Alcotest.test_case "constraint counts" `Quick test_career_shape;
          Alcotest.test_case "validity + truth" `Quick test_career_valid;
        ] );
      ( "cross",
        [
          Alcotest.test_case "stamps consistent" `Quick test_stamps_consistent;
          Alcotest.test_case "stamps respect Σ" `Quick test_stamps_order_respects_constraints;
          Alcotest.test_case "fraction subsetting" `Quick test_spec_fractions;
          Alcotest.test_case "oracle resolves everything" `Slow test_oracle_resolves_all_datasets;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest [ prop_person_sizes; prop_generators_always_valid ] );
    ]
