(* The implication checker (Se |= Ot), including agreement with the
   exhaustive reference in Exact mode. *)

module I = Crcore.Implication

let vf attr lo hi = { I.attr; lo = Value.of_string lo; hi = Value.of_string hi }

let test_edith_facts () =
  let spec = Fixtures.edith_spec () in
  Alcotest.(check string) "working<retired" "implied"
    (Format.asprintf "%a" I.pp_answer (I.holds spec (vf "status" "working" "retired")));
  Alcotest.(check string) "transitive working<deceased" "implied"
    (Format.asprintf "%a" I.pp_answer (I.holds spec (vf "status" "working" "deceased")));
  Alcotest.(check string) "reverse not implied" "not implied"
    (Format.asprintf "%a" I.pp_answer (I.holds spec (vf "status" "deceased" "working")));
  Alcotest.(check string) "via CFD: NY<LA" "implied"
    (Format.asprintf "%a" I.pp_answer (I.holds spec (vf "city" "NY" "LA")));
  Alcotest.(check string) "foreign value" "unknown value"
    (Format.asprintf "%a" I.pp_answer (I.holds spec (vf "city" "Paris" "LA")));
  Alcotest.(check string) "unknown attribute" "unknown value"
    (Format.asprintf "%a" I.pp_answer (I.holds spec { I.attr = "nope"; lo = Value.Null; hi = Value.Null }))

let test_george_open_facts () =
  let spec = Fixtures.george_spec () in
  Alcotest.(check bool) "kids 0<2 implied" true
    (I.holds spec (vf "kids" "0" "2") = I.Implied);
  Alcotest.(check bool) "status retired vs unemployed open" true
    (I.holds spec (vf "status" "retired" "unemployed") = I.Not_implied);
  Alcotest.(check bool) "nor the other way" true
    (I.holds spec (vf "status" "unemployed" "retired") = I.Not_implied)

let test_implied_order () =
  let spec = Fixtures.edith_spec () in
  Alcotest.(check bool) "whole order implied" true
    (I.implied_order spec
       [ vf "status" "working" "retired"; vf "status" "retired" "deceased"; vf "kids" "0" "3" ]
    = I.Implied);
  Alcotest.(check bool) "one bad fact breaks it" true
    (I.implied_order spec [ vf "status" "working" "retired"; vf "city" "LA" "NY" ]
    = I.Not_implied);
  Alcotest.(check bool) "empty order trivially implied" true
    (I.implied_order spec [] = I.Implied)

let test_invalid_spec () =
  let spec =
    Crcore.Spec.make Fixtures.edith_entity
      ~orders:[ { Crcore.Spec.attr = "status"; lo = 2; hi = 0 } ]
      ~sigma:Fixtures.sigma ~gamma:Fixtures.gamma
  in
  Alcotest.(check bool) "invalid detected" true
    (I.holds spec (vf "kids" "0" "3") = I.Invalid_spec)

let test_order_edges_facts () =
  let spec = Fixtures.george_spec () in
  let facts =
    I.order_edges_facts spec
      [
        { Crcore.Spec.attr = "status"; lo = 0; hi = 1 };
        { Crcore.Spec.attr = "kids"; lo = 1; hi = 2 } (* equal values: dropped *);
      ]
  in
  Alcotest.(check int) "equal-valued edge dropped" 1 (List.length facts);
  match facts with
  | [ { I.attr = "status"; lo; hi } ] ->
      Alcotest.(check string) "lo" "working" (Value.to_string lo);
      Alcotest.(check string) "hi" "retired" (Value.to_string hi)
  | _ -> Alcotest.fail "unexpected facts"

let prop_exact_matches_reference =
  QCheck.Test.make ~count:80 ~name:"Exact-mode implication = reference implication"
    Fixtures.qcheck_spec (fun spec ->
      let schema = Crcore.Spec.schema spec in
      let entity = spec.Crcore.Spec.entity in
      (* check a handful of value pairs per spec *)
      let attrs = Schema.attr_names schema in
      List.for_all
        (fun attr ->
          let a = Schema.index schema attr in
          match Entity.active_domain entity a with
          | v1 :: v2 :: _ -> (
              let sat_ans = I.holds ~mode:Crcore.Encode.Exact spec { I.attr; lo = v1; hi = v2 } in
              match Crcore.Reference.implied spec ~attr v1 v2 with
              | None -> true
              | Some true -> sat_ans = I.Implied
              | Some false -> sat_ans = I.Not_implied || sat_ans = I.Invalid_spec)
          | _ -> true)
        attrs)

let () =
  Alcotest.run "implication"
    [
      ( "unit",
        [
          Alcotest.test_case "Edith facts" `Quick test_edith_facts;
          Alcotest.test_case "George open facts" `Quick test_george_open_facts;
          Alcotest.test_case "whole orders" `Quick test_implied_order;
          Alcotest.test_case "invalid spec" `Quick test_invalid_spec;
          Alcotest.test_case "edges to facts" `Quick test_order_edges_facts;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_exact_matches_reference ]);
    ]
