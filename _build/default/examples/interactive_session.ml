(* A transcript of the interactive framework (Fig. 4 of the paper): the
   system derives what it can, proposes a minimal set of attributes with
   candidate values, folds the user's answers back into the specification
   as a partial temporal order, and repeats. The "user" here is a scripted
   actor so the example runs unattended; swap in stdin prompts to make it
   a real console tool (see bin/crsolve.ml).

   Run with: dune exec examples/interactive_session.exe *)

let ds = Datagen.Person.quick ~seed:3 ~n_entities:4 ~size:9 ()
let schema = ds.Datagen.Types.schema

let show_known round known =
  let parts =
    List.filteri (fun _ _ -> true) (Schema.attr_names schema)
    |> List.mapi (fun a name ->
           match known.(a) with
           | Some v -> Printf.sprintf "%s=%s" name (Value.to_string v)
           | None -> Printf.sprintf "%s=?" name)
  in
  Printf.printf "  [round %d] %s\n" round (String.concat "  " parts)

let scripted_user truth round suggestion ~schema =
  incr round;
  Printf.printf "  system asks about: %s\n"
    (String.concat ", "
       (List.map
          (fun (a, cands) ->
            Printf.sprintf "%s ∈ {%s}" (Schema.name schema a)
              (String.concat ", " (List.map Value.to_string cands)))
          suggestion.Crcore.Rules.candidates));
  let answer =
    List.map
      (fun a ->
        let name = Schema.name schema a in
        (name, Tuple.get_by_name truth name))
      suggestion.Crcore.Rules.attrs
  in
  Printf.printf "  user answers:      %s\n"
    (String.concat ", " (List.map (fun (n, v) -> n ^ " = " ^ Value.to_string v) answer));
  answer

let () =
  print_endline "== Interactive conflict-resolution sessions ==\n";
  List.iter
    (fun (case : Datagen.Types.case) ->
      Printf.printf "Entity person_%d (%d tuples):\n" case.id (Entity.size case.entity);
      let spec = Datagen.Types.spec_of ds case in
      let round = ref 0 in
      let o =
        Crcore.Framework.resolve ~user:(scripted_user case.truth round) spec
      in
      show_known o.Crcore.Framework.rounds o.Crcore.Framework.resolved;
      let correct =
        List.for_all
          (fun a ->
            match o.Crcore.Framework.resolved.(a) with
            | Some v -> Value.equal v (Tuple.get case.truth a)
            | None -> false)
          (List.init (Schema.arity schema) Fun.id)
      in
      Printf.printf "  => resolved in %d round(s); matches ground truth: %b\n\n"
        o.Crcore.Framework.rounds correct)
    ds.Datagen.Types.cases
