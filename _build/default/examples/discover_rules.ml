(* Constraint discovery: the paper assumes Σ and Γ are designed or mined
   by CFD-discovery-style profiling (its Remark 2). This example closes
   the loop: mine currency constraints and constant CFDs from a
   timestamped training sample, then resolve *fresh, timestamp-free*
   entities with the mined rules and compare against the hand-designed
   ones.

   Run with: dune exec examples/discover_rules.exe *)

let () =
  (* training sample: Person entities with their history positions *)
  let train =
    Datagen.Person.generate
      { Datagen.Person.default_params with n_cities = 30; n_status_chains = 4;
        n_job_chains = 4; n_entities = 120; size_min = 5; size_max = 12; seed = 101 }
  in
  let stamped =
    Discovery.Stamped.make train.Datagen.Types.schema
      (List.map
         (fun (c : Datagen.Types.case) ->
           List.mapi (fun i t -> (t, c.stamps.(i))) (Entity.tuples c.entity))
         train.Datagen.Types.cases)
  in
  let mined_sigma = Discovery.Currency_miner.mine stamped in
  let all_rows =
    List.concat_map (fun (c : Datagen.Types.case) -> Entity.tuples c.entity)
      train.Datagen.Types.cases
  in
  let mined_gamma =
    Discovery.Cfd_miner.mine ~config:{ Discovery.Cfd_miner.min_support = 3; min_confidence = 1.0 }
      train.Datagen.Types.schema all_rows
    (* keep the AC→city patterns; drop the symmetric/noise ones *)
    |> List.filter (fun c ->
           match c.Cfd.Constant_cfd.lhs with [ ("AC", _) ] -> fst c.Cfd.Constant_cfd.rhs = "city" | _ -> false)
  in
  Printf.printf "mined %d currency constraints and %d constant CFDs from %d entities\n"
    (List.length mined_sigma) (List.length mined_gamma)
    (List.length train.Datagen.Types.cases);
  print_endline "examples of mined rules:";
  List.iteri
    (fun i c -> if i < 4 then Printf.printf "  Σ: %s\n" (Currency.Constraint_ast.to_string c))
    mined_sigma;
  List.iteri
    (fun i c -> if i < 2 then Printf.printf "  Γ: %s\n" (Cfd.Constant_cfd.to_string c))
    mined_gamma;

  (* evaluation: fresh entities from the same world, no timestamps *)
  let test =
    Datagen.Person.generate
      { Datagen.Person.default_params with n_cities = 30; n_status_chains = 4;
        n_job_chains = 4; n_entities = 40; size_min = 5; size_max = 12; seed = 2020 }
  in
  let score sigma gamma =
    let m = ref Crcore.Metrics.zero in
    List.iter
      (fun (case : Datagen.Types.case) ->
        let spec = Crcore.Spec.make case.entity ~orders:[] ~sigma ~gamma in
        let o = Crcore.Framework.resolve ~user:Crcore.Framework.silent spec in
        if o.Crcore.Framework.valid then
          m :=
            Crcore.Metrics.add !m
              (Crcore.Metrics.evaluate ~truth:case.truth ~entity:case.entity
                 o.Crcore.Framework.resolved))
      test.Datagen.Types.cases;
    !m
  in
  let m_mined = score mined_sigma mined_gamma in
  let m_designed = score test.Datagen.Types.sigma test.Datagen.Types.gamma in
  Printf.printf
    "\nzero-interaction resolution of %d fresh entities:\n" (List.length test.Datagen.Types.cases);
  Printf.printf "  designed rules: precision %.3f recall %.3f F %.3f\n"
    (Crcore.Metrics.precision m_designed) (Crcore.Metrics.recall m_designed)
    (Crcore.Metrics.f_measure m_designed);
  Printf.printf "  mined rules:    precision %.3f recall %.3f F %.3f\n"
    (Crcore.Metrics.precision m_mined) (Crcore.Metrics.recall m_mined)
    (Crcore.Metrics.f_measure m_mined)
