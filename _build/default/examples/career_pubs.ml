(* CAREER scenario: a researcher's publication headers carry the
   affiliation and address in use when each paper was written. Citations
   between one's own papers order the affiliations (a citing paper is more
   recent than the cited one); an affiliation→city/country CFD table keeps
   the address consistent. The current affiliation emerges without any
   timestamps.

   Run with: dune exec examples/career_pubs.exe *)

let () =
  let ds =
    Datagen.Career.generate
      { Datagen.Career.default_params with n_entities = 10; pubs_max = 30; seed = 11 }
  in
  Printf.printf
    "CAREER-style dataset: %d researchers, |Σ| = %d citation-derived constraints, |Γ| = %d CFD patterns\n\n"
    (List.length ds.Datagen.Types.cases)
    (List.length ds.Datagen.Types.sigma)
    (List.length ds.Datagen.Types.gamma);

  print_endline "A citation-derived currency constraint and its CFDs:";
  (match ds.Datagen.Types.sigma with
  | c :: _ -> Printf.printf "  %s\n" (Currency.Constraint_ast.to_string c)
  | [] -> ());
  (match ds.Datagen.Types.gamma with
  | a :: b :: _ ->
      Printf.printf "  %s\n  %s\n\n" (Cfd.Constant_cfd.to_string a) (Cfd.Constant_cfd.to_string b)
  | _ -> ());

  List.iter
    (fun (case : Datagen.Types.case) ->
      let spec = Datagen.Types.spec_of ds case in
      let o = Crcore.Framework.resolve ~user:Crcore.Framework.silent spec in
      let schema = ds.Datagen.Types.schema in
      let get a =
        match o.Crcore.Framework.resolved.(Schema.index schema a) with
        | Some v -> Value.to_string v
        | None -> "?"
      in
      let truth a = Value.to_string (Tuple.get_by_name case.truth a) in
      Printf.printf
        "%-9s %-9s | %3d pubs | affiliation: %-12s city: %-10s country: %-12s | truth: %s, %s, %s\n"
        (get "first_name") (get "last_name") (Entity.size case.entity) (get "affiliation")
        (get "city") (get "country") (truth "affiliation") (truth "city") (truth "country"))
    ds.Datagen.Types.cases;

  (* aggregate accuracy without any user input *)
  let m = ref Crcore.Metrics.zero in
  List.iter
    (fun (case : Datagen.Types.case) ->
      let spec = Datagen.Types.spec_of ds case in
      let o = Crcore.Framework.resolve ~user:Crcore.Framework.silent spec in
      m :=
        Crcore.Metrics.add !m
          (Crcore.Metrics.evaluate ~truth:case.truth ~entity:case.entity o.Crcore.Framework.resolved))
    ds.Datagen.Types.cases;
  Printf.printf
    "\nWith zero user interactions: precision %.3f, recall %.3f, F-measure %.3f\n"
    (Crcore.Metrics.precision !m) (Crcore.Metrics.recall !m) (Crcore.Metrics.f_measure !m);

  (* what happens when only half the citations are known? *)
  let m2 = ref Crcore.Metrics.zero in
  List.iter
    (fun (case : Datagen.Types.case) ->
      let spec = Datagen.Types.spec_of ~sigma_frac:0.5 ds case in
      let o = Crcore.Framework.resolve ~user:Crcore.Framework.silent spec in
      m2 :=
        Crcore.Metrics.add !m2
          (Crcore.Metrics.evaluate ~truth:case.truth ~entity:case.entity o.Crcore.Framework.resolved))
    ds.Datagen.Types.cases;
  Printf.printf "With half the constraints:   precision %.3f, recall %.3f, F-measure %.3f\n"
    (Crcore.Metrics.precision !m2) (Crcore.Metrics.recall !m2) (Crcore.Metrics.f_measure !m2)
