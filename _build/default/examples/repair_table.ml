(* Relation repair: the paper's concluding future-work item. A customer
   table holds several stale records per person (about half a customer
   database goes stale within two years, per the paper's introduction);
   partitioning on the linkage key and resolving each partition yields a
   repaired table with one current tuple per customer.

   Run with: dune exec examples/repair_table.exe *)

let () =
  let ds = Datagen.Person.quick ~seed:21 ~n_entities:6 ~size:5 () in
  let schema = ds.Datagen.Types.schema in
  let relation =
    List.concat_map (fun (c : Datagen.Types.case) -> Entity.tuples c.entity)
      ds.Datagen.Types.cases
  in
  Printf.printf "dirty relation: %d rows over %d customers\n\n" (List.length relation)
    (List.length ds.Datagen.Types.cases);

  let r =
    Crcore.Repair.run ~key:[ "name" ] schema relation ~sigma:ds.Datagen.Types.sigma
      ~gamma:ds.Datagen.Types.gamma
  in
  Printf.printf "%-10s %-6s %-9s %-9s repaired tuple\n" "key" "rows" "inferred" "fallback";
  List.iter
    (fun (e : Crcore.Repair.entity_report) ->
      Printf.printf "%-10s %-6d %-9d %-9d (%s)\n"
        (String.concat ";" (List.map Value.to_string e.key))
        e.size e.determined e.fell_back
        (String.concat ", " (List.map Value.to_string (Tuple.values e.tuple))))
    r.Crcore.Repair.entities;

  (* score against the generator's ground truth *)
  let correct = ref 0 and total = ref 0 in
  List.iter2
    (fun (c : Datagen.Types.case) t ->
      List.iteri
        (fun a v ->
          incr total;
          if Value.equal v (Tuple.get c.truth a) then incr correct)
        (Tuple.values t))
    ds.Datagen.Types.cases r.Crcore.Repair.repaired;
  Printf.printf "\nrepaired values matching ground truth: %d / %d (silent mode, Pick fallback)\n"
    !correct !total
