(* NBA scenario: player records joined from several sources carry stale
   team names, arenas and per-season statistics. Currency constraints
   (team-name and arena lineages, cumulative career points) plus
   arena→city CFDs resolve most of it automatically; the framework asks
   about the rest.

   Run with: dune exec examples/nba_season.exe *)

let () =
  let ds = Datagen.Nba.generate { Datagen.Nba.default_params with n_entities = 12; seed = 42 } in
  Printf.printf "NBA-style dataset: %d players, |Σ| = %d currency constraints, |Γ| = %d CFDs\n\n"
    (List.length ds.Datagen.Types.cases)
    (List.length ds.Datagen.Types.sigma)
    (List.length ds.Datagen.Types.gamma);

  (* a taste of the constraints *)
  print_endline "Sample currency constraints:";
  List.iteri
    (fun i c -> if i < 3 then Printf.printf "  %s\n" (Currency.Constraint_ast.to_string c))
    ds.Datagen.Types.sigma;
  print_endline "Sample CFDs:";
  List.iteri
    (fun i c -> if i < 2 then Printf.printf "  %s\n" (Cfd.Constant_cfd.to_string c))
    ds.Datagen.Types.gamma;
  print_newline ();

  let ours = ref Crcore.Metrics.zero in
  let pick = ref Crcore.Metrics.zero in
  let auto_resolved = ref 0 and total_attrs = ref 0 and interactions = ref 0 in
  List.iter
    (fun (case : Datagen.Types.case) ->
      let spec = Datagen.Types.spec_of ds case in
      (* automatic phase *)
      let silent = Crcore.Framework.resolve ~user:Crcore.Framework.silent spec in
      let arity = Schema.arity ds.Datagen.Types.schema in
      auto_resolved :=
        !auto_resolved
        + Array.fold_left (fun n v -> if v <> None then n + 1 else n) 0 silent.Crcore.Framework.resolved;
      total_attrs := !total_attrs + arity;
      (* interactive phase with an oracle user *)
      let o = Crcore.Framework.resolve ~user:(Crcore.Framework.oracle case.truth) spec in
      interactions := !interactions + o.Crcore.Framework.rounds;
      ours :=
        Crcore.Metrics.add !ours
          (Crcore.Metrics.evaluate ~truth:case.truth ~entity:case.entity o.Crcore.Framework.resolved);
      pick :=
        Crcore.Metrics.add !pick
          (Crcore.Metrics.evaluate_total ~truth:case.truth ~entity:case.entity (Crcore.Pick.run spec)))
    ds.Datagen.Types.cases;

  Printf.printf "Automatically deduced true values: %d / %d attributes (%.0f%%)\n" !auto_resolved
    !total_attrs
    (100. *. float_of_int !auto_resolved /. float_of_int !total_attrs);
  Printf.printf "Total user interactions needed:    %d (%.1f per player)\n" !interactions
    (float_of_int !interactions /. float_of_int (List.length ds.Datagen.Types.cases));
  Printf.printf "F-measure, currency+consistency:   %.3f\n" (Crcore.Metrics.f_measure !ours);
  Printf.printf "F-measure, Pick baseline:          %.3f\n" (Crcore.Metrics.f_measure !pick);

  (* zoom into one player *)
  let case = List.hd ds.Datagen.Types.cases in
  let spec = Datagen.Types.spec_of ds case in
  let enc = Crcore.Encode.encode spec in
  let d = Crcore.Deduce.deduce_order enc in
  let known = Crcore.Deduce.true_values d in
  let s = Crcore.Rules.suggest d ~known in
  Printf.printf "\nPlayer %d: %d tuples; after deduction %d attrs known; suggestion asks [%s]\n"
    case.id (Entity.size case.entity)
    (Array.fold_left (fun n v -> if v <> None then n + 1 else n) 0 known)
    (String.concat "; "
       (List.map (Schema.name ds.Datagen.Types.schema) s.Crcore.Rules.attrs))
