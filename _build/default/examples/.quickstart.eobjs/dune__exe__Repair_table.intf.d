examples/repair_table.mli:
