examples/career_pubs.mli:
