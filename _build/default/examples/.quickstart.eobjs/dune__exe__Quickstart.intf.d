examples/quickstart.mli:
