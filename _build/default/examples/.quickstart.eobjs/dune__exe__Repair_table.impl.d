examples/repair_table.ml: Crcore Datagen Entity List Printf String Tuple Value
