examples/nba_season.ml: Array Cfd Crcore Currency Datagen Entity List Printf Schema String
