examples/interactive_session.ml: Array Crcore Datagen Entity Fun List Printf Schema String Tuple Value
