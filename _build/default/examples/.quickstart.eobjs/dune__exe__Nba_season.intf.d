examples/nba_season.mli:
