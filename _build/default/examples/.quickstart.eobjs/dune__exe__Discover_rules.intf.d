examples/discover_rules.mli:
