examples/interactive_session.mli:
