examples/quickstart.ml: Array Cfd Crcore Currency Entity List Printf Schema String Tuple Value
