examples/career_pubs.ml: Array Cfd Crcore Currency Datagen Entity List Printf Schema Tuple Value
