examples/discover_rules.ml: Array Cfd Crcore Currency Datagen Discovery Entity List Printf
