lib/cfd/constant_cfd.ml: Format Hashtbl List Printf Schema String Tuple Value
