lib/cfd/general_cfd.mli: Constant_cfd Format Schema Stdlib Tuple Value
