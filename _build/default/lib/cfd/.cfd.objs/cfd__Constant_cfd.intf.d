lib/cfd/constant_cfd.mli: Format Schema Stdlib Tuple Value
