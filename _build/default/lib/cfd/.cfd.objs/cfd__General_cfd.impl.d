lib/cfd/general_cfd.ml: Array Constant_cfd Format Hashtbl List Map Option Printf Sat Schema String Tuple Value
