type cell = Const of Value.t | Any

type t = { lhs : (string * cell) list; rhs : string * cell }

let make lhs rhs =
  if lhs = [] then invalid_arg "General_cfd.make: empty LHS";
  let battr, bcell = rhs in
  let seen = Hashtbl.create 4 in
  let check_cell = function
    | Const v when Value.is_null v -> invalid_arg "General_cfd.make: null pattern constant"
    | _ -> ()
  in
  List.iter
    (fun (a, cell) ->
      if Hashtbl.mem seen a then
        invalid_arg (Printf.sprintf "General_cfd.make: duplicate LHS attribute %S" a);
      Hashtbl.add seen a ();
      if a = battr then invalid_arg "General_cfd.make: RHS attribute also on the LHS";
      check_cell cell)
    lhs;
  check_cell bcell;
  { lhs = List.sort (fun (a, _) (b, _) -> compare a b) lhs; rhs }

let of_constant (c : Constant_cfd.t) =
  {
    lhs = List.map (fun (a, v) -> (a, Const v)) c.Constant_cfd.lhs;
    rhs = (fst c.Constant_cfd.rhs, Const (snd c.Constant_cfd.rhs));
  }

let attrs c = fst c.rhs :: List.map fst c.lhs |> List.sort_uniq compare

let check_schema c s =
  match List.find_opt (fun a -> not (Schema.mem s a)) (attrs c) with
  | Some a -> Error a
  | None -> Ok ()

let matches cell v = match cell with Any -> true | Const c -> Value.equal c v

let satisfied_pair c t1 t2 =
  let lhs_applies =
    List.for_all
      (fun (a, cell) ->
        let v1 = Tuple.get_by_name t1 a and v2 = Tuple.get_by_name t2 a in
        Value.equal v1 v2 && matches cell v1)
      c.lhs
  in
  (not lhs_applies)
  ||
  let b, cell = c.rhs in
  let w1 = Tuple.get_by_name t1 b and w2 = Tuple.get_by_name t2 b in
  Value.equal w1 w2 && matches cell w1

let satisfied_instance c tuples =
  List.for_all (fun t1 -> List.for_all (fun t2 -> satisfied_pair c t1 t2) tuples) tuples

(* ---- satisfiability via SAT over the constants-plus-fresh domain ---- *)

module VMap = Map.Make (struct
  type t = Value.t

  let compare = Value.total_compare
end)

let satisfiable ~schema cfds =
  List.iter
    (fun c ->
      match check_schema c schema with
      | Ok () -> ()
      | Error a ->
          invalid_arg (Printf.sprintf "General_cfd.satisfiable: unknown attribute %S" a))
    cfds;
  let arity = Schema.arity schema in
  (* candidate domain per attribute: constants mentioned there + fresh *)
  let consts = Array.make arity VMap.empty in
  let add_cell a = function
    | Const v ->
        let i = Schema.index schema a in
        if not (VMap.mem v consts.(i)) then
          consts.(i) <- VMap.add v (VMap.cardinal consts.(i)) consts.(i)
    | Any -> ()
  in
  List.iter
    (fun c ->
      List.iter (fun (a, cell) -> add_cell a cell) c.lhs;
      add_cell (fst c.rhs) (snd c.rhs))
    cfds;
  (* variable y_{a,k}: attribute a takes its k-th candidate; index
     |consts| is the fresh value *)
  let offsets = Array.make arity 0 in
  let total = ref 0 in
  for a = 0 to arity - 1 do
    offsets.(a) <- !total;
    total := !total + VMap.cardinal consts.(a) + 1
  done;
  let s = Sat.Solver.create () in
  Sat.Solver.ensure_nvars s !total;
  let y a k = offsets.(a) + k in
  let fresh a = VMap.cardinal consts.(a) in
  (* exactly one value per attribute *)
  for a = 0 to arity - 1 do
    let d = fresh a + 1 in
    Sat.Solver.add_clause s (List.init d (fun k -> Sat.Lit.pos (y a k)));
    for k1 = 0 to d - 1 do
      for k2 = k1 + 1 to d - 1 do
        Sat.Solver.add_clause s [ Sat.Lit.neg_of (y a k1); Sat.Lit.neg_of (y a k2) ]
      done
    done
  done;
  (* each CFD on the single witness tuple t: (∀ const cells of X matched)
     → t[B] matches tp[B]. Wildcard LHS cells and a wildcard RHS are
     vacuous on a single tuple. *)
  List.iter
    (fun c ->
      match snd c.rhs with
      | Any -> ()
      | Const bv ->
          let b = Schema.index schema (fst c.rhs) in
          let premise =
            List.filter_map
              (fun (a, cell) ->
                match cell with
                | Any -> None
                | Const v ->
                    let ai = Schema.index schema a in
                    Some (Sat.Lit.neg_of (y ai (VMap.find v consts.(ai)))))
              c.lhs
          in
          let conclusion = Sat.Lit.pos (y b (VMap.find bv consts.(b))) in
          Sat.Solver.add_clause s (conclusion :: premise))
    cfds;
  Sat.Solver.solve s = Sat.Solver.Sat

(* ---- printing and parsing ---- *)

let cell_to_string = function
  | Any -> "_"
  | Const (Value.Str s) -> Printf.sprintf "%S" s
  | Const v -> Value.to_string v

let pp ppf c =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf " & ")
    (fun ppf (a, cell) -> Format.fprintf ppf "%s = %s" a (cell_to_string cell))
    ppf c.lhs;
  Format.fprintf ppf " -> %s = %s" (fst c.rhs) (cell_to_string (snd c.rhs))

let to_string c = Format.asprintf "%a" pp c

let parse_cell s =
  let s = String.trim s in
  if s = "_" then Any
  else
    let n = String.length s in
    if n >= 2 && (s.[0] = '"' || s.[0] = '\'') && s.[n - 1] = s.[0] then
      Const (Value.Str (String.sub s 1 (n - 2)))
    else Const (Value.of_string s)

let parse_atom s =
  match String.index_opt s '=' with
  | None -> Error (Printf.sprintf "expected attr = cell in %S" s)
  | Some i ->
      let a = String.trim (String.sub s 0 i) in
      if a = "" then Error "empty attribute name"
      else Ok (a, parse_cell (String.sub s (i + 1) (String.length s - i - 1)))

let parse s =
  let split_arrow s =
    let n = String.length s in
    let rec find i =
      if i + 1 >= n then None
      else if s.[i] = '-' && s.[i + 1] = '>' then Some i
      else find (i + 1)
    in
    Option.map (fun i -> (String.sub s 0 i, String.sub s (i + 2) (n - i - 2))) (find 0)
  in
  match split_arrow s with
  | None -> Error "expected 'lhs -> attr = cell'"
  | Some (l, r) -> (
      let atoms = String.split_on_char '&' l |> List.map String.trim in
      let rec parse_all acc = function
        | [] -> Ok (List.rev acc)
        | x :: rest -> (
            match parse_atom x with Ok a -> parse_all (a :: acc) rest | Error e -> Error e)
      in
      match parse_all [] atoms with
      | Error e -> Error e
      | Ok lhs -> (
          match parse_atom (String.trim r) with
          | Error e -> Error e
          | Ok rhs -> ( try Ok (make lhs rhs) with Invalid_argument m -> Error m)))

let parse_exn s =
  match parse s with Ok c -> c | Error m -> failwith ("General_cfd.parse: " ^ m)
