(** Constant conditional functional dependencies (Section II-B):

    [ψ = tp\[X\] → tp\[B\]]

    where the pattern tuple [tp] assigns a constant to every attribute of
    [X ∪ {B}]. A completion satisfies [ψ] when its current tuple [tl]
    either differs from [tp] on some [X]-attribute or agrees with it on
    [B]. *)

type t = {
  lhs : (string * Value.t) list;  (** the pattern over X, attribute-sorted *)
  rhs : string * Value.t;         (** the pattern on B *)
}

(** [make lhs rhs] builds a constant CFD. [lhs] must be non-empty with
    distinct attributes, none equal to the RHS attribute, and no pattern
    constant may be [Null]. Raises [Invalid_argument] otherwise. *)
val make : (string * Value.t) list -> string * Value.t -> t

val attrs : t -> string list

(** [check_schema c s] verifies all attributes exist in [s]. *)
val check_schema : t -> Schema.t -> (unit, string) Stdlib.result

(** [applies c tl] is [true] when the current tuple [tl] matches the whole
    LHS pattern. *)
val applies : t -> Tuple.t -> bool

(** [satisfied c tl] is the CFD semantics on the current tuple: ¬applies or
    RHS agreement. *)
val satisfied : t -> Tuple.t -> bool

(** [constants_for c a] is the pattern constants [c] mentions for attribute
    [a] (zero or one here, but a list for uniformity with pattern
    tableaux). *)
val constants_for : t -> string -> Value.t list

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** [parse s] reads the syntax
    [attr1 = const & attr2 = const -> attr = const], e.g.
    [AC = 212 -> city = "NY"]. *)
val parse : string -> (t, string) result

val parse_exn : string -> t

(** [parse_many s] parses newline/semicolon-separated CFDs with [#]
    comments. *)
val parse_many : string -> (t list, string) result
