(** General conditional functional dependencies (Fan et al., TODS 2008 —
    the paper's reference [13]): [φ = (X → B, tp)] where the pattern tuple
    may mix constants and wildcards. The conflict-resolution paper needs
    only the constant fragment ({!Constant_cfd}); this module provides the
    general class for completeness of the substrate, including the
    NP-complete satisfiability check, decided here with the bundled SAT
    solver over the constants-plus-one-fresh-value domain. *)

type cell = Const of Value.t | Any

type t = {
  lhs : (string * cell) list;  (** X with its pattern cells *)
  rhs : string * cell;         (** B with its pattern cell *)
}

(** [make lhs rhs] validates shape (non-empty X, distinct attributes, RHS
    not in X, no null constants). *)
val make : (string * cell) list -> string * cell -> t

(** [of_constant c] embeds a constant CFD. *)
val of_constant : Constant_cfd.t -> t

val attrs : t -> string list
val check_schema : t -> Schema.t -> (unit, string) Stdlib.result

(** [matches cell v] is pattern-cell matching ([Any] matches all). *)
val matches : cell -> Value.t -> bool

(** [satisfied_pair c t1 t2] is the two-tuple semantics: if [t1] and [t2]
    agree on X and both match [tp\[X\]], they must agree on B and match
    [tp\[B\]]. *)
val satisfied_pair : t -> Tuple.t -> Tuple.t -> bool

(** [satisfied_instance c tuples] checks all (ordered) pairs. *)
val satisfied_instance : t -> Tuple.t list -> bool

(** [satisfiable ~schema cfds] decides whether a non-empty instance of
    [schema] satisfies every CFD in [cfds] — the classical NP-complete
    problem, reduced to SAT over a witness tuple whose attributes range
    over the pattern constants plus one fresh value. *)
val satisfiable : schema:Schema.t -> t list -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** [parse s] reads [a = 1 & b = _ -> c = "x"]; [_] is the wildcard. *)
val parse : string -> (t, string) result

val parse_exn : string -> t
