type t = { lhs : (string * Value.t) list; rhs : string * Value.t }

let make lhs rhs =
  if lhs = [] then invalid_arg "Constant_cfd.make: empty LHS";
  let battr, bval = rhs in
  let seen = Hashtbl.create 4 in
  List.iter
    (fun (a, v) ->
      if Hashtbl.mem seen a then
        invalid_arg (Printf.sprintf "Constant_cfd.make: duplicate LHS attribute %S" a);
      Hashtbl.add seen a ();
      if a = battr then
        invalid_arg "Constant_cfd.make: RHS attribute also on the LHS";
      if Value.is_null v then invalid_arg "Constant_cfd.make: null pattern constant")
    lhs;
  if Value.is_null bval then invalid_arg "Constant_cfd.make: null pattern constant";
  { lhs = List.sort (fun (a, _) (b, _) -> compare a b) lhs; rhs }

let attrs c = fst c.rhs :: List.map fst c.lhs |> List.sort_uniq compare

let check_schema c s =
  match List.find_opt (fun a -> not (Schema.mem s a)) (attrs c) with
  | Some a -> Error a
  | None -> Ok ()

let applies c tl =
  List.for_all (fun (a, v) -> Value.equal (Tuple.get_by_name tl a) v) c.lhs

let satisfied c tl =
  (not (applies c tl)) || Value.equal (Tuple.get_by_name tl (fst c.rhs)) (snd c.rhs)

let constants_for c a =
  let from_lhs = List.filter_map (fun (b, v) -> if a = b then Some v else None) c.lhs in
  if fst c.rhs = a then snd c.rhs :: from_lhs else from_lhs

let quote_value = function
  | Value.Str s -> Printf.sprintf "%S" s
  | v -> Value.to_string v

let pp ppf c =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf " & ")
    (fun ppf (a, v) -> Format.fprintf ppf "%s = %s" a (quote_value v))
    ppf c.lhs;
  Format.fprintf ppf " -> %s = %s" (fst c.rhs) (quote_value (snd c.rhs))

let to_string c = Format.asprintf "%a" pp c

(* ---- parsing ---- *)

let parse_atom s =
  match String.index_opt s '=' with
  | None -> Error (Printf.sprintf "expected attr = const in %S" s)
  | Some i ->
      let a = String.trim (String.sub s 0 i) in
      let rest = String.trim (String.sub s (i + 1) (String.length s - i - 1)) in
      if a = "" then Error "empty attribute name"
      else
        let v =
          let n = String.length rest in
          if n >= 2 && (rest.[0] = '"' || rest.[0] = '\'') && rest.[n - 1] = rest.[0] then
            Value.Str (String.sub rest 1 (n - 2))
          else Value.of_string rest
        in
        Ok (a, v)

let split_arrow s =
  (* splits on "->" *)
  let n = String.length s in
  let rec find i =
    if i + 1 >= n then None
    else if s.[i] = '-' && s.[i + 1] = '>' then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i -> Some (String.sub s 0 i, String.sub s (i + 2) (n - i - 2))

let parse s =
  match split_arrow s with
  | None -> Error "expected 'lhs -> attr = const'"
  | Some (l, r) -> (
      let atoms = String.split_on_char '&' l |> List.map String.trim in
      let rec parse_all acc = function
        | [] -> Ok (List.rev acc)
        | x :: rest -> (
            match parse_atom x with Ok a -> parse_all (a :: acc) rest | Error e -> Error e)
      in
      match parse_all [] atoms with
      | Error e -> Error e
      | Ok lhs -> (
          match parse_atom (String.trim r) with
          | Error e -> Error e
          | Ok rhs -> ( try Ok (make lhs rhs) with Invalid_argument m -> Error m)))

let parse_exn s =
  match parse s with Ok c -> c | Error m -> failwith ("Constant_cfd.parse: " ^ m)

let parse_many s =
  let pieces =
    String.split_on_char '\n' s
    |> List.concat_map (String.split_on_char ';')
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> ( match parse p with Ok c -> go (c :: acc) rest | Error m -> Error (p ^ ": " ^ m))
  in
  go [] pieces
