type t = { schema : Schema.t; values : Value.t array }

let of_array schema values =
  if Array.length values <> Schema.arity schema then
    invalid_arg "Tuple: arity mismatch";
  { schema; values = Array.copy values }

let make schema values = of_array schema (Array.of_list values)

let schema t = t.schema

let get t i =
  if i < 0 || i >= Array.length t.values then invalid_arg "Tuple.get";
  t.values.(i)

let get_by_name t a = t.values.(Schema.index t.schema a)

let set t i v =
  if i < 0 || i >= Array.length t.values then invalid_arg "Tuple.set";
  let values = Array.copy t.values in
  values.(i) <- v;
  { t with values }

let values t = Array.to_list t.values

let equal t1 t2 =
  Schema.equal t1.schema t2.schema
  && Array.for_all2 Value.equal t1.values t2.values

let pp ppf t =
  Format.fprintf ppf "(%s)"
    (String.concat ", " (List.map Value.to_string (values t)))
