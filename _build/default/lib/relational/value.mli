(** Attribute values: nulls, integers, floats and strings.

    Comparison follows the paper's conventions: [null] is below every
    non-null value (Example 2(b): "assuming null < k for any number k"),
    numbers compare numerically across [Int]/[Float], and strings compare
    lexicographically. Values of incomparable kinds (a string against a
    number) only support [=]/[≠]; ordered comparisons on them are [false]. *)

type t = Null | Int of int | Float of float | Str of string

(** Comparison operators of currency-constraint predicates. *)
type op = Eq | Neq | Lt | Leq | Gt | Geq

val equal : t -> t -> bool

(** [compare_opt a b] is [Some] of the usual [-1/0/1] ordering when [a] and
    [b] are comparable, [None] otherwise. [Null] compares below
    everything and equal to itself. *)
val compare_opt : t -> t -> int option

(** [eval op a b] evaluates [a op b]; ordered operators on incomparable
    kinds are [false]. *)
val eval : op -> t -> t -> bool

(** A total order for use in maps and sorting; ranks kinds arbitrarily but
    consistently ([Null] < numbers < strings). *)
val total_compare : t -> t -> int

val is_null : t -> bool

(** [of_string s] parses ["null"]/[""] as [Null], then tries [Int], then
    [Float], falling back to [Str]. *)
val of_string : string -> t

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val op_of_string : string -> op option
val op_to_string : op -> string
val pp_op : Format.formatter -> op -> unit
