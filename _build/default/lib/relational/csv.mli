(** Minimal CSV reader/writer (RFC-4180 quoting) for loading entity
    instances and constraint tables from files in the CLI and examples. *)

(** [parse_string s] is the list of records; each record is a list of
    fields. Handles quoted fields with embedded commas, quotes and
    newlines. Raises [Failure] on unterminated quotes. *)
val parse_string : string -> string list list

val parse_file : string -> string list list

(** [to_string rows] renders records, quoting fields when needed. *)
val to_string : string list list -> string

val write_file : string -> string list list -> unit

(** [load_entity ?schema path] reads a CSV whose first row is the header
    (attribute names) and returns the entity instance; values are parsed
    with {!Value.of_string}. *)
val load_entity : string -> Entity.t
