(** Relation schemas: an ordered list of named attributes.

    Attributes are referred to by name in constraints and by position in
    tuples; the schema is the bridge. *)

type t

(** [make names] builds a schema; names must be non-empty and distinct.
    Raises [Invalid_argument] otherwise. *)
val make : string list -> t

val arity : t -> int

(** [attr_names s] in declaration order. *)
val attr_names : t -> string list

(** [index s name] is the position of [name]. Raises [Not_found]. *)
val index : t -> string -> int

(** [index_opt s name] is the position of [name], if any. *)
val index_opt : t -> string -> int option

(** [name s i] is the attribute name at position [i]. *)
val name : t -> int -> string

val mem : t -> string -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
