(** Entity instances: the sets of tuples, all describing one real-world
    entity, that conflict resolution operates on (Section II-A of the
    paper). Tuples are indexed [0 .. size-1] for use in currency orders. *)

type t

(** [make schema tuples] builds an entity instance. Tuples must be over
    [schema]; the list must be non-empty. *)
val make : Schema.t -> Tuple.t list -> t

val schema : t -> Schema.t
val size : t -> int

(** [tuple e i] is the [i]-th tuple. *)
val tuple : t -> int -> Tuple.t

val tuples : t -> Tuple.t list

(** [value e i a] is attribute position [a] of tuple [i]. *)
val value : t -> int -> int -> Value.t

(** [active_domain e a] is the set of distinct values occurring in
    attribute position [a], in first-occurrence order
    ([adom(Ie.Ai)] of the paper). *)
val active_domain : t -> int -> Value.t list

(** [has_conflict e a] is [true] when attribute [a] holds more than one
    distinct value across the tuples. *)
val has_conflict : t -> int -> bool

(** [conflicting_attrs e] is the positions for which {!has_conflict}
    holds. *)
val conflicting_attrs : t -> int list

val pp : Format.formatter -> t -> unit
