lib/relational/tuple.ml: Array Format List Schema String Value
