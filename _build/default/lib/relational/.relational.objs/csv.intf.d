lib/relational/csv.mli: Entity
