lib/relational/value.ml: Format Printf String
