lib/relational/entity.mli: Format Schema Tuple Value
