lib/relational/entity.ml: Array Format Fun List Schema Tuple Value
