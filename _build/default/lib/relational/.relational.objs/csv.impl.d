lib/relational/csv.ml: Buffer Entity Fun List Printf Schema String Tuple Value
