type t = Null | Int of int | Float of float | Str of string

type op = Eq | Neq | Lt | Leq | Gt | Geq

let equal a b =
  match (a, b) with
  | Null, Null -> true
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Int x, Float y | Float y, Int x -> float_of_int x = y
  | Str x, Str y -> String.equal x y
  | _ -> false

let compare_opt a b =
  match (a, b) with
  | Null, Null -> Some 0
  | Null, _ -> Some (-1)
  | _, Null -> Some 1
  | Int x, Int y -> Some (compare x y)
  | Float x, Float y -> Some (compare x y)
  | Int x, Float y -> Some (compare (float_of_int x) y)
  | Float x, Int y -> Some (compare x (float_of_int y))
  | Str x, Str y -> Some (String.compare x y)
  | _ -> None

let eval op a b =
  match op with
  | Eq -> equal a b
  | Neq -> not (equal a b)
  | Lt -> ( match compare_opt a b with Some c -> c < 0 | None -> false)
  | Leq -> ( match compare_opt a b with Some c -> c <= 0 | None -> false)
  | Gt -> ( match compare_opt a b with Some c -> c > 0 | None -> false)
  | Geq -> ( match compare_opt a b with Some c -> c >= 0 | None -> false)

let kind_rank = function Null -> 0 | Int _ -> 1 | Float _ -> 1 | Str _ -> 2

let total_compare a b =
  match compare_opt a b with
  | Some c -> c
  | None -> compare (kind_rank a) (kind_rank b)

let is_null = function Null -> true | _ -> false

let of_string s =
  let s' = String.trim s in
  if s' = "" || String.lowercase_ascii s' = "null" then Null
  else
    match int_of_string_opt s' with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s' with Some f -> Float f | None -> Str s')

let to_string = function
  | Null -> "null"
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s

let pp ppf v = Format.pp_print_string ppf (to_string v)

let op_of_string = function
  | "=" | "==" -> Some Eq
  | "!=" | "<>" -> Some Neq
  | "<" -> Some Lt
  | "<=" -> Some Leq
  | ">" -> Some Gt
  | ">=" -> Some Geq
  | _ -> None

let op_to_string = function
  | Eq -> "="
  | Neq -> "!="
  | Lt -> "<"
  | Leq -> "<="
  | Gt -> ">"
  | Geq -> ">="

let pp_op ppf op = Format.pp_print_string ppf (op_to_string op)
