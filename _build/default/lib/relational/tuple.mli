(** Tuples over a schema: a value per attribute position. *)

type t

(** [make schema values] pairs the values with the schema positionally.
    Raises [Invalid_argument] on an arity mismatch. *)
val make : Schema.t -> Value.t list -> t

val of_array : Schema.t -> Value.t array -> t
val schema : t -> Schema.t

(** [get t i] is the value at position [i]. *)
val get : t -> int -> Value.t

(** [get_by_name t a] is the value of attribute [a]. Raises [Not_found]. *)
val get_by_name : t -> string -> Value.t

(** [set t i v] is a copy of [t] with position [i] replaced. *)
val set : t -> int -> Value.t -> t

val values : t -> Value.t list
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
