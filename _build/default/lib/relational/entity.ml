type t = { schema : Schema.t; tuples : Tuple.t array }

let make schema tuples =
  if tuples = [] then invalid_arg "Entity.make: empty entity instance";
  List.iter
    (fun t ->
      if not (Schema.equal (Tuple.schema t) schema) then
        invalid_arg "Entity.make: tuple over a different schema")
    tuples;
  { schema; tuples = Array.of_list tuples }

let schema e = e.schema

let size e = Array.length e.tuples

let tuple e i =
  if i < 0 || i >= size e then invalid_arg "Entity.tuple: bad index";
  e.tuples.(i)

let tuples e = Array.to_list e.tuples

let value e i a = Tuple.get (tuple e i) a

let active_domain e a =
  let seen = ref [] in
  Array.iter
    (fun t ->
      let v = Tuple.get t a in
      if not (List.exists (Value.equal v) !seen) then seen := v :: !seen)
    e.tuples;
  List.rev !seen

let has_conflict e a = List.length (active_domain e a) > 1

let conflicting_attrs e =
  List.filter (has_conflict e) (List.init (Schema.arity e.schema) Fun.id)

let pp ppf e =
  Format.fprintf ppf "@[<v>%a@ %a@]" Schema.pp e.schema
    (Format.pp_print_list Tuple.pp)
    (tuples e)
