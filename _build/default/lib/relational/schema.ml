type t = { names : string array; index : (string, int) Hashtbl.t }

let make names =
  if names = [] then invalid_arg "Schema.make: empty schema";
  let index = Hashtbl.create (List.length names) in
  List.iteri
    (fun i n ->
      if n = "" then invalid_arg "Schema.make: empty attribute name";
      if Hashtbl.mem index n then
        invalid_arg (Printf.sprintf "Schema.make: duplicate attribute %S" n);
      Hashtbl.add index n i)
    names;
  { names = Array.of_list names; index }

let arity s = Array.length s.names

let attr_names s = Array.to_list s.names

let index s n =
  match Hashtbl.find_opt s.index n with Some i -> i | None -> raise Not_found

let index_opt s n = Hashtbl.find_opt s.index n

let name s i =
  if i < 0 || i >= arity s then invalid_arg "Schema.name: bad position";
  s.names.(i)

let mem s n = Hashtbl.mem s.index n

let equal s1 s2 = s1.names = s2.names

let pp ppf s =
  Format.fprintf ppf "(%s)" (String.concat ", " (attr_names s))
