let parse_string s =
  let n = String.length s in
  let records = ref [] in
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let flush_record () =
    flush_field ();
    records := List.rev !fields :: !records;
    fields := []
  in
  let rec plain i =
    if i >= n then ()
    else
      match s.[i] with
      | ',' ->
          flush_field ();
          plain (i + 1)
      | '\r' when i + 1 < n && s.[i + 1] = '\n' ->
          flush_record ();
          plain (i + 2)
      | '\n' | '\r' ->
          flush_record ();
          plain (i + 1)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | c ->
          Buffer.add_char buf c;
          plain (i + 1)
  and quoted i =
    if i >= n then failwith "Csv: unterminated quoted field"
    else
      match s.[i] with
      | '"' when i + 1 < n && s.[i + 1] = '"' ->
          Buffer.add_char buf '"';
          quoted (i + 2)
      | '"' -> plain (i + 1)
      | c ->
          Buffer.add_char buf c;
          quoted (i + 1)
  in
  plain 0;
  if Buffer.length buf > 0 || !fields <> [] then flush_record ();
  (* drop completely empty records produced by trailing newlines *)
  List.rev (List.filter (fun r -> r <> [ "" ] && r <> []) !records)

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse_string (really_input_string ic (in_channel_length ic)))

let needs_quoting f =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') f

let render_field f =
  if needs_quoting f then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' f) ^ "\""
  else f

let to_string rows =
  String.concat ""
    (List.map (fun r -> String.concat "," (List.map render_field r) ^ "\n") rows)

let write_file path rows =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string rows))

let load_entity path =
  match parse_file path with
  | [] -> failwith (Printf.sprintf "Csv.load_entity: %s is empty" path)
  | header :: rows ->
      let schema = Schema.make header in
      let tuples =
        List.map (fun r -> Tuple.make schema (List.map Value.of_string r)) rows
      in
      Entity.make schema tuples
