(** Indexed binary max-heap over integer keys [0 .. n-1], ordered by a
    mutable external score.

    This is the VSIDS order heap of the solver: variables are keys, their
    activities are scores, and [decrease_key]-style updates happen when a
    variable's activity is bumped while it sits in the heap. *)

type t

(** [create ~score] is an empty heap whose ordering is [score k] (larger
    scores pop first). [score] is re-read on every comparison, so callers
    must call {!update} after changing the score of an in-heap key. *)
val create : score:(int -> float) -> t

val size : t -> int
val is_empty : t -> bool

(** [mem h k] is [true] when key [k] is currently in the heap. *)
val mem : t -> int -> bool

(** [insert h k] adds key [k]; no-op if already present. *)
val insert : t -> int -> unit

(** [pop_max h] removes and returns the key with the largest score. Raises
    [Invalid_argument] on an empty heap. *)
val pop_max : t -> int

(** [update h k] restores heap order after the score of in-heap key [k]
    changed; no-op if [k] is absent. *)
val update : t -> int -> unit

(** [rebuild h keys] clears the heap and fills it with [keys]. *)
val rebuild : t -> int list -> unit
