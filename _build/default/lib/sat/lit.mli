(** Propositional literals packed into integers.

    A literal over variable [v] (0-based) is encoded as [2*v] when positive
    and [2*v + 1] when negative, so negation is one XOR and literals index
    watch lists directly. *)

type t = int

(** [make v sign] is the literal over variable [v]; positive when [sign]. *)
val make : int -> bool -> t

(** [pos v] is the positive literal over [v]. *)
val pos : int -> t

(** [neg_of v] is the negative literal over [v]. *)
val neg_of : int -> t

(** [negate l] flips the sign of [l]. *)
val negate : t -> t

(** [var l] is the variable of [l]. *)
val var : t -> int

(** [sign l] is [true] for positive literals. *)
val sign : t -> bool

(** [of_dimacs d] converts a non-zero DIMACS literal ([±(v+1)]). *)
val of_dimacs : int -> t

(** [to_dimacs l] is the DIMACS rendering of [l]. *)
val to_dimacs : t -> int

val pp : Format.formatter -> t -> unit
