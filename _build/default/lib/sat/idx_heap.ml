type t = {
  score : int -> float;
  heap : int Vec.t;           (* heap.(i) = key at heap position i *)
  mutable pos : int array;    (* pos.(key) = position in heap, or -1 *)
}

let create ~score = { score; heap = Vec.create ~dummy:(-1); pos = [||] }

let size h = Vec.size h.heap

let is_empty h = size h = 0

let ensure_pos h k =
  let n = Array.length h.pos in
  if k >= n then begin
    let pos' = Array.make (max (k + 1) (max 4 (2 * n))) (-1) in
    Array.blit h.pos 0 pos' 0 n;
    h.pos <- pos'
  end

let mem h k = k < Array.length h.pos && h.pos.(k) >= 0

let swap h i j =
  let ki = Vec.get h.heap i and kj = Vec.get h.heap j in
  Vec.set h.heap i kj;
  Vec.set h.heap j ki;
  h.pos.(ki) <- j;
  h.pos.(kj) <- i

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.score (Vec.get h.heap i) > h.score (Vec.get h.heap parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let n = size h in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < n && h.score (Vec.get h.heap l) > h.score (Vec.get h.heap !best) then best := l;
  if r < n && h.score (Vec.get h.heap r) > h.score (Vec.get h.heap !best) then best := r;
  if !best <> i then begin
    swap h i !best;
    sift_down h !best
  end

let insert h k =
  if not (mem h k) then begin
    ensure_pos h k;
    Vec.push h.heap k;
    h.pos.(k) <- size h - 1;
    sift_up h (size h - 1)
  end

let pop_max h =
  if is_empty h then invalid_arg "Idx_heap.pop_max: empty";
  let top = Vec.get h.heap 0 in
  let lastpos = size h - 1 in
  swap h 0 lastpos;
  ignore (Vec.pop h.heap);
  h.pos.(top) <- -1;
  if not (is_empty h) then sift_down h 0;
  top

let update h k =
  if mem h k then begin
    sift_up h h.pos.(k);
    sift_down h h.pos.(k)
  end

let rebuild h keys =
  Vec.iter (fun k -> h.pos.(k) <- -1) h.heap;
  Vec.clear h.heap;
  List.iter (insert h) keys
