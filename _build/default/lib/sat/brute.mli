(** Exhaustive reference solver for small formulas.

    Enumerates all 2^n assignments; used in tests as ground truth for the
    CDCL solver and the MaxSAT engines. *)

(** [solve f] is [Some model] for a satisfying assignment of [f], [None]
    when unsatisfiable. Raises [Invalid_argument] when [f] has more than 24
    variables. *)
val solve : Cnf.t -> bool array option

(** [count_models f] is the number of satisfying assignments (same size
    limit as {!solve}). *)
val count_models : Cnf.t -> int

(** [max_sat ~hard ~soft] maximises the number of satisfied [soft] clauses
    subject to all [hard] clauses holding, by exhaustive enumeration over
    the variables of [hard]. Returns [None] when the hard clauses are
    unsatisfiable, otherwise [Some (model, satisfied_soft_count)]. *)
val max_sat : hard:Cnf.t -> soft:Cnf.clause list -> (bool array * int) option
