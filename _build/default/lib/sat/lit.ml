type t = int

let make v sign =
  if v < 0 then invalid_arg "Lit.make: negative variable";
  (2 * v) + if sign then 0 else 1

let pos v = make v true
let neg_of v = make v false
let negate l = l lxor 1
let var l = l lsr 1
let sign l = l land 1 = 0

let of_dimacs d =
  if d = 0 then invalid_arg "Lit.of_dimacs: zero";
  if d > 0 then pos (d - 1) else neg_of (-d - 1)

let to_dimacs l = if sign l then var l + 1 else -(var l + 1)

let pp ppf l = Format.fprintf ppf "%d" (to_dimacs l)
