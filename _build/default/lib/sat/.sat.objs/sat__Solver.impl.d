lib/sat/solver.ml: Array Cnf Idx_heap List Lit Vec
