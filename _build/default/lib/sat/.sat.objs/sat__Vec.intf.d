lib/sat/vec.mli:
