lib/sat/dimacs.ml: Array Cnf Format Fun List Lit Printf String
