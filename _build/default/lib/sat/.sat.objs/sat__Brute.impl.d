lib/sat/brute.ml: Array Cnf List Printf
