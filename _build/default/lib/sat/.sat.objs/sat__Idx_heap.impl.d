lib/sat/idx_heap.ml: Array List Vec
