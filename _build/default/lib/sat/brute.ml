let max_vars = 24

let check_size (f : Cnf.t) =
  if f.Cnf.nvars > max_vars then
    invalid_arg
      (Printf.sprintf "Brute: %d variables exceeds the limit of %d" f.Cnf.nvars
         max_vars)

let assignment_of_bits n bits = Array.init n (fun v -> bits land (1 lsl v) <> 0)

let solve (f : Cnf.t) =
  check_size f;
  let n = f.Cnf.nvars in
  let rec go bits =
    if bits >= 1 lsl n then None
    else
      let a = assignment_of_bits n bits in
      if Cnf.eval a f then Some a else go (bits + 1)
  in
  go 0

let count_models (f : Cnf.t) =
  check_size f;
  let n = f.Cnf.nvars in
  let count = ref 0 in
  for bits = 0 to (1 lsl n) - 1 do
    if Cnf.eval (assignment_of_bits n bits) f then incr count
  done;
  !count

let max_sat ~(hard : Cnf.t) ~(soft : Cnf.clause list) =
  check_size hard;
  let n = hard.Cnf.nvars in
  let best = ref None in
  for bits = 0 to (1 lsl n) - 1 do
    let a = assignment_of_bits n bits in
    if Cnf.eval a hard then begin
      let k = List.length (List.filter (Cnf.eval_clause a) soft) in
      match !best with
      | Some (_, k') when k' >= k -> ()
      | _ -> best := Some (a, k)
    end
  done;
  !best
