(** WalkSAT-style stochastic local search for partial MaxSAT.

    This mirrors the WalkSat tool the paper cites for its suggestion-repair
    step. Hard clauses carry a weight exceeding the total soft weight, so
    any assignment violating a hard clause scores worse than any feasible
    one; the search starts from a feasible model produced by the CDCL
    solver and reports the best feasible assignment seen. *)

type outcome = { model : bool array; satisfied : int }

(** [solve ?seed ?max_flips ?noise ~hard ~soft ()] approximately maximises
    the number of satisfied soft clauses subject to [hard]. [noise] is the
    probability of a random walk move (default 0.3); [max_flips] bounds the
    search (default [20_000]). [None] when [hard] is unsatisfiable. *)
val solve :
  ?seed:int ->
  ?max_flips:int ->
  ?noise:float ->
  hard:Sat.Cnf.t ->
  soft:Sat.Cnf.clause list ->
  unit ->
  outcome option
