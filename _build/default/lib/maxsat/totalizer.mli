(** Totalizer cardinality encoding (Bailleux–Boufkhad) over a CDCL solver.

    Encodes the one-sided constraint "if at least [j] of the inputs are
    true then output [j] is true", which is what upper-bound cardinality
    assumptions need: assuming the negation of output [k] forces at most
    [k] inputs true. *)

(** [encode solver inputs] allocates output variables in [solver], adds the
    totalizer clauses, and returns the outputs [o] with the guarantee that
    in any model, [o.(i)] is true whenever at least [i+1] inputs are true.
    [Array.length o = List.length inputs]. Raises [Invalid_argument] on an
    empty input list. *)
val encode : Sat.Solver.t -> Sat.Lit.t list -> Sat.Lit.t array
