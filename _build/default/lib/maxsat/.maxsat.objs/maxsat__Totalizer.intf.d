lib/maxsat/totalizer.mli: Sat
