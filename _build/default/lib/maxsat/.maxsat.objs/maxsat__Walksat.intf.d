lib/maxsat/walksat.mli: Sat
