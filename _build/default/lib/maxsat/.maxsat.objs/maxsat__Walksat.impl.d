lib/maxsat/walksat.ml: Array List Random Sat
