lib/maxsat/totalizer.ml: Array List Sat
