lib/maxsat/exact.ml: Array List Sat Totalizer
