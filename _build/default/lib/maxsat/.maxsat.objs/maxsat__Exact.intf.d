lib/maxsat/exact.mli: Sat
