type outcome = { model : bool array; satisfied : int }

let count_satisfied model soft =
  List.length (List.filter (Sat.Cnf.eval_clause model) soft)

let restrict model n = Array.init n (fun v -> if v < Array.length model then model.(v) else false)

let solve ~(hard : Sat.Cnf.t) ~(soft : Sat.Cnf.clause list) =
  let n0 = hard.Sat.Cnf.nvars in
  let s = Sat.Solver.create () in
  Sat.Solver.add_cnf s hard;
  match Sat.Solver.solve s with
  | Sat.Solver.Unsat -> None
  | Sat.Solver.Sat ->
      if soft = [] then Some { model = restrict (Sat.Solver.model s) n0; satisfied = 0 }
      else begin
        (* relax each soft clause *)
        let relax =
          List.map
            (fun c ->
              let r = Sat.Solver.new_var s in
              Sat.Solver.add_clause_a s (Array.append c [| Sat.Lit.pos r |]);
              Sat.Lit.pos r)
            soft
        in
        let outs = Totalizer.encode s relax in
        (match Sat.Solver.solve s with
        | Sat.Solver.Unsat ->
            (* cannot happen: all relaxation variables true satisfies softs *)
            assert false
        | Sat.Solver.Sat -> ());
        let nsoft = List.length soft in
        let best = ref (Sat.Solver.model s) in
        let best_violated = ref (nsoft - count_satisfied !best soft) in
        let continue_search = ref (!best_violated > 0) in
        while !continue_search do
          let k = !best_violated - 1 in
          match Sat.Solver.solve ~assumptions:[ Sat.Lit.negate outs.(k) ] s with
          | Sat.Solver.Unsat -> continue_search := false
          | Sat.Solver.Sat ->
              let m = Sat.Solver.model s in
              let v = nsoft - count_satisfied m soft in
              (* assuming ¬outs.(k) forces at most k violations, so progress
                 is guaranteed; guard against non-termination anyway *)
              if v >= !best_violated then continue_search := false
              else begin
                best := m;
                best_violated := v;
                if v = 0 then continue_search := false
              end
        done;
        Some { model = restrict !best n0; satisfied = nsoft - !best_violated }
      end

let solve_groups ~(hard : Sat.Cnf.t) ~(groups : Sat.Cnf.clause list list) =
  (* selector variable per group: sel → c for each clause c of the group;
     the soft clauses are the unit selectors. *)
  let n0 = hard.Sat.Cnf.nvars in
  let ngroups = List.length groups in
  let nvars = n0 + ngroups in
  let sel i = Sat.Lit.pos (n0 + i) in
  let hard_clauses =
    List.concat
      (List.mapi
         (fun i cls ->
           List.map (fun c -> Array.append c [| Sat.Lit.negate (sel i) |]) cls)
         groups)
  in
  let hard' = Sat.Cnf.make ~nvars (hard.Sat.Cnf.clauses @ hard_clauses) in
  let soft = List.init ngroups (fun i -> [| sel i |]) in
  match solve ~hard:hard' ~soft with
  | None -> None
  | Some { model; satisfied = _ } ->
      (* [model] is restricted to [nvars]; re-extract which groups hold *)
      let holds i = model.(n0 + i) in
      let sat_groups = List.init ngroups (fun i -> i) |> List.filter holds in
      Some (restrict model n0, sat_groups)
