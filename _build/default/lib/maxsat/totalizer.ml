let rec build solver lits =
  match lits with
  | [] -> invalid_arg "Totalizer.encode: no inputs"
  | [ l ] -> [| l |]
  | _ ->
      let n = List.length lits in
      let rec split i acc = function
        | [] -> (List.rev acc, [])
        | x :: rest when i > 0 -> split (i - 1) (x :: acc) rest
        | rest -> (List.rev acc, rest)
      in
      let left, right = split (n / 2) [] lits in
      let a = build solver left in
      let b = build solver right in
      let na = Array.length a and nb = Array.length b in
      let out =
        Array.init (na + nb) (fun _ -> Sat.Lit.pos (Sat.Solver.new_var solver))
      in
      (* sum_a >= i and sum_b >= j imply sum >= i+j:
         ¬a.(i-1) ∨ ¬b.(j-1) ∨ out.(i+j-1), with the i=0 / j=0 cases
         dropping the corresponding antecedent. *)
      for i = 0 to na do
        for j = 0 to nb do
          if i + j >= 1 then begin
            let c = ref [ out.(i + j - 1) ] in
            if i > 0 then c := Sat.Lit.negate a.(i - 1) :: !c;
            if j > 0 then c := Sat.Lit.negate b.(j - 1) :: !c;
            Sat.Solver.add_clause solver !c
          end
        done
      done;
      out

let encode solver inputs = build solver inputs
