type outcome = { model : bool array; satisfied : int }

type clause_info = {
  lits : Sat.Lit.t array;
  hard : bool;
  mutable n_true : int;     (* number of currently-true literals *)
  mutable unsat_pos : int;  (* index in the corresponding unsat list, or -1 *)
}

let solve ?(seed = 0x5eed) ?(max_flips = 20_000) ?(noise = 0.3)
    ~(hard : Sat.Cnf.t) ~(soft : Sat.Cnf.clause list) () =
  let nvars = hard.Sat.Cnf.nvars in
  List.iter
    (fun c ->
      Array.iter
        (fun l ->
          if Sat.Lit.var l >= nvars then
            invalid_arg "Walksat.solve: soft clause over unknown variable")
        c)
    soft;
  let s = Sat.Solver.create () in
  Sat.Solver.add_cnf s hard;
  match Sat.Solver.solve s with
  | Sat.Solver.Unsat -> None
  | Sat.Solver.Sat ->
      let rng = Random.State.make [| seed |] in
      let assign =
        let m = Sat.Solver.model s in
        Array.init nvars (fun v -> if v < Array.length m then m.(v) else false)
      in
      let soft = List.filter (fun c -> Array.length c > 0) soft in
      let nsoft_total = List.length soft in
      let clauses =
        Array.of_list
          (List.map (fun c -> { lits = c; hard = true; n_true = 0; unsat_pos = -1 })
             hard.Sat.Cnf.clauses
          @ List.map (fun c -> { lits = c; hard = false; n_true = 0; unsat_pos = -1 })
              soft)
      in
      (* occurrence lists, indexed by literal *)
      let occ = Array.make (2 * max nvars 1) [] in
      Array.iteri
        (fun ci c -> Array.iter (fun l -> occ.(l) <- ci :: occ.(l)) c.lits)
        clauses;
      let lit_true l = assign.(Sat.Lit.var l) = Sat.Lit.sign l in
      (* unsat clause lists, separate for hard and soft *)
      let unsat_hard = ref [||] and n_unsat_hard = ref 0 in
      let unsat_soft = ref [||] and n_unsat_soft = ref 0 in
      let list_of c = if c.hard then (unsat_hard, n_unsat_hard) else (unsat_soft, n_unsat_soft) in
      let push_unsat ci =
        let c = clauses.(ci) in
        let arr, n = list_of c in
        if Array.length !arr = !n then begin
          let grown = Array.make (max 8 (2 * !n)) 0 in
          Array.blit !arr 0 grown 0 !n;
          arr := grown
        end;
        !arr.(!n) <- ci;
        c.unsat_pos <- !n;
        incr n
      in
      let remove_unsat ci =
        let c = clauses.(ci) in
        let arr, n = list_of c in
        let pos = c.unsat_pos in
        decr n;
        let moved = !arr.(!n) in
        !arr.(pos) <- moved;
        clauses.(moved).unsat_pos <- pos;
        c.unsat_pos <- -1
      in
      Array.iteri
        (fun ci c ->
          c.n_true <- Array.length (Array.of_list (List.filter lit_true (Array.to_list c.lits)));
          if c.n_true = 0 then push_unsat ci)
        clauses;
      let flip v =
        let now_true = Sat.Lit.make v (not assign.(v)) in
        let now_false = Sat.Lit.negate now_true in
        assign.(v) <- not assign.(v);
        List.iter
          (fun ci ->
            let c = clauses.(ci) in
            c.n_true <- c.n_true + 1;
            if c.n_true = 1 then remove_unsat ci)
          occ.(now_true);
        List.iter
          (fun ci ->
            let c = clauses.(ci) in
            c.n_true <- c.n_true - 1;
            if c.n_true = 0 then push_unsat ci)
          occ.(now_false)
      in
      (* weighted break count of flipping v: clauses that become unsatisfied *)
      let break_weight v =
        let l = Sat.Lit.make v assign.(v) in
        List.fold_left
          (fun acc ci ->
            let c = clauses.(ci) in
            if c.n_true = 1 then acc + if c.hard then nsoft_total + 1 else 1
            else acc)
          0 occ.(l)
      in
      let best = ref (Array.copy assign) in
      let best_sat = ref (nsoft_total - !n_unsat_soft) in
      let record () =
        if !n_unsat_hard = 0 then begin
          let sat = nsoft_total - !n_unsat_soft in
          if sat > !best_sat then begin
            best_sat := sat;
            Array.blit assign 0 !best 0 nvars
          end
        end
      in
      record ();
      let flips = ref 0 in
      while !flips < max_flips && not (!n_unsat_hard = 0 && !n_unsat_soft = 0) do
        incr flips;
        let ci =
          if !n_unsat_hard > 0 then !unsat_hard.(Random.State.int rng !n_unsat_hard)
          else !unsat_soft.(Random.State.int rng !n_unsat_soft)
        in
        let c = clauses.(ci) in
        let v =
          if Random.State.float rng 1.0 < noise then
            Sat.Lit.var c.lits.(Random.State.int rng (Array.length c.lits))
          else begin
            let best_v = ref (Sat.Lit.var c.lits.(0)) in
            let best_b = ref max_int in
            Array.iter
              (fun l ->
                let w = Sat.Lit.var l in
                let b = break_weight w in
                if b < !best_b then begin
                  best_b := b;
                  best_v := w
                end)
              c.lits;
            !best_v
          end
        in
        flip v;
        record ()
      done;
      Some { model = !best; satisfied = !best_sat }
