type t = { adj : Bitset.t array }

let create n = { adj = Array.init n (fun _ -> Bitset.create n) }

let n_vertices g = Array.length g.adj

let check g v =
  if v < 0 || v >= n_vertices g then invalid_arg "Ugraph: bad vertex"

let add_edge g u v =
  check g u;
  check g v;
  if u <> v then begin
    Bitset.add g.adj.(u) v;
    Bitset.add g.adj.(v) u
  end

let has_edge g u v =
  check g u;
  check g v;
  u <> v && Bitset.mem g.adj.(u) v

let degree g v =
  check g v;
  Bitset.cardinal g.adj.(v)

let n_edges g =
  let total = ref 0 in
  Array.iter (fun row -> total := !total + Bitset.cardinal row) g.adj;
  !total / 2

let neighbours g v =
  check g v;
  g.adj.(v)

let is_clique g vs =
  let rec go = function
    | [] -> true
    | v :: rest -> List.for_all (fun u -> has_edge g u v) rest && go rest
  in
  go vs

let complement g =
  let n = n_vertices g in
  let g' = create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if not (has_edge g u v) then add_edge g' u v
    done
  done;
  g'
