(** Simple undirected graphs on vertices [0 .. n-1], with bitset adjacency
    rows for the clique algorithms. Self-loops are ignored. *)

type t

val create : int -> t
val n_vertices : t -> int
val add_edge : t -> int -> int -> unit
val has_edge : t -> int -> int -> bool
val degree : t -> int -> int
val n_edges : t -> int

(** [neighbours g v] is the adjacency row of [v]; treat it as read-only. *)
val neighbours : t -> int -> Bitset.t

(** [is_clique g vs] checks that all members of [vs] are pairwise
    adjacent. *)
val is_clique : t -> int list -> bool

(** [complement g] is the graph with exactly the missing edges. *)
val complement : t -> t
