type t = { words : Bytes.t; cap : int }

(* 8 bits per byte keeps the code simple and portable; the hot operations
   below work a word (8 bytes via Bytes.get_int64) at a time. *)

let words_len cap = (cap + 63) / 64 * 8

let create cap =
  if cap < 0 then invalid_arg "Bitset.create";
  { words = Bytes.make (words_len cap) '\000'; cap }

let capacity s = s.cap

let check s i =
  if i < 0 || i >= s.cap then invalid_arg "Bitset: index out of bounds"

let add s i =
  check s i;
  let b = Bytes.get_uint8 s.words (i lsr 3) in
  Bytes.set_uint8 s.words (i lsr 3) (b lor (1 lsl (i land 7)))

let remove s i =
  check s i;
  let b = Bytes.get_uint8 s.words (i lsr 3) in
  Bytes.set_uint8 s.words (i lsr 3) (b land lnot (1 lsl (i land 7)))

let mem s i =
  check s i;
  Bytes.get_uint8 s.words (i lsr 3) land (1 lsl (i land 7)) <> 0

let popcount64 x =
  let x = Int64.sub x (Int64.logand (Int64.shift_right_logical x 1) 0x5555555555555555L) in
  let x =
    Int64.add
      (Int64.logand x 0x3333333333333333L)
      (Int64.logand (Int64.shift_right_logical x 2) 0x3333333333333333L)
  in
  let x = Int64.logand (Int64.add x (Int64.shift_right_logical x 4)) 0x0f0f0f0f0f0f0f0fL in
  Int64.to_int (Int64.shift_right_logical (Int64.mul x 0x0101010101010101L) 56)

let cardinal s =
  let n = Bytes.length s.words in
  let total = ref 0 in
  let i = ref 0 in
  while !i + 8 <= n do
    total := !total + popcount64 (Bytes.get_int64_le s.words !i);
    i := !i + 8
  done;
  !total

let is_empty s =
  let n = Bytes.length s.words in
  let rec go i = i + 8 > n || (Bytes.get_int64_le s.words i = 0L && go (i + 8)) in
  go 0

let copy s = { words = Bytes.copy s.words; cap = s.cap }

let inter_into dst a b =
  if dst.cap <> a.cap || a.cap <> b.cap then invalid_arg "Bitset.inter_into";
  let n = Bytes.length dst.words in
  let i = ref 0 in
  while !i + 8 <= n do
    Bytes.set_int64_le dst.words !i
      (Int64.logand (Bytes.get_int64_le a.words !i) (Bytes.get_int64_le b.words !i));
    i := !i + 8
  done

let inter a b =
  let dst = create a.cap in
  inter_into dst a b;
  dst

let iter f s =
  for i = 0 to s.cap - 1 do
    if Bytes.get_uint8 s.words (i lsr 3) land (1 lsl (i land 7)) <> 0 then f i
  done

let choose s =
  let rec go i =
    if i >= s.cap then None
    else if Bytes.get_uint8 s.words (i lsr 3) land (1 lsl (i land 7)) <> 0 then Some i
    else go (i + 1)
  in
  go 0

let to_list s =
  let acc = ref [] in
  iter (fun i -> acc := i :: !acc) s;
  List.rev !acc

let of_list cap l =
  let s = create cap in
  List.iter (add s) l;
  s
