(** Fixed-capacity bitsets over [0 .. capacity-1], used as adjacency rows
    and candidate sets in the max-clique search where intersection speed
    dominates. *)

type t

val create : int -> t
val capacity : t -> int
val add : t -> int -> unit
val remove : t -> int -> unit
val mem : t -> int -> bool
val cardinal : t -> int
val is_empty : t -> bool
val copy : t -> t

(** [inter_into dst a b] sets [dst := a ∩ b]; all three must share a
    capacity. [dst] may alias [a] or [b]. *)
val inter_into : t -> t -> t -> unit

(** [inter a b] is a fresh [a ∩ b]. *)
val inter : t -> t -> t

(** [iter f s] applies [f] to members in increasing order. *)
val iter : (int -> unit) -> t -> unit

(** [choose s] is the smallest member, or [None] when empty. *)
val choose : t -> int option

val to_list : t -> int list
val of_list : int -> int list -> t
