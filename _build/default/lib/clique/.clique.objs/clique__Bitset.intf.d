lib/clique/bitset.mli:
