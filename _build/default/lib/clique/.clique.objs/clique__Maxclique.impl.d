lib/clique/maxclique.ml: Bitset Fun List Ugraph
