lib/clique/ugraph.ml: Array Bitset List
