lib/clique/ugraph.mli: Bitset
