lib/clique/bitset.ml: Bytes Int64 List
