lib/clique/maxclique.mli: Ugraph
