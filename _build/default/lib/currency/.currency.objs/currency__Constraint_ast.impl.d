lib/currency/constraint_ast.ml: Format List Printf Schema Tuple Value
