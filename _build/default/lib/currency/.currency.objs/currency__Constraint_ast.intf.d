lib/currency/constraint_ast.mli: Format Schema Stdlib Tuple Value
