lib/currency/parser.ml: Buffer Constraint_ast List Printf String Value
