lib/currency/parser.mli: Constraint_ast
