type tuple_ref = T1 | T2

type pred =
  | Prec of string
  | Cmp2 of string * Value.op
  | Cmp_const of tuple_ref * string * Value.op * Value.t

type t = { premise : pred list; concl : string }

let make premise concl =
  if concl = "" then invalid_arg "Constraint_ast.make: empty conclusion attribute";
  { premise; concl }

let pred_attr = function
  | Prec a -> a
  | Cmp2 (a, _) -> a
  | Cmp_const (_, a, _, _) -> a

let attrs c =
  let all = c.concl :: List.map pred_attr c.premise in
  List.sort_uniq compare all

let check_schema c s =
  match List.find_opt (fun a -> not (Schema.mem s a)) (attrs c) with
  | Some a -> Error a
  | None -> Ok ()

type instance = {
  prec_premises : (string * Value.t * Value.t) list;
  conclusion : string * Value.t * Value.t;
}

let instantiate c s1 s2 =
  let vacuous = ref false in
  let residual = ref [] in
  List.iter
    (fun p ->
      if not !vacuous then
        match p with
        | Prec a -> (
            let v1 = Tuple.get_by_name s1 a and v2 = Tuple.get_by_name s2 a in
            (* nulls rank lowest: null ≺ v always holds (drop the conjunct),
               v ≺ null never does (the whole constraint is vacuous) *)
            match (Value.is_null v1, Value.is_null v2) with
            | true, false -> ()
            | _, true -> vacuous := true
            | false, false ->
                if Value.equal v1 v2 then vacuous := true
                else residual := (a, v1, v2) :: !residual)
        | Cmp2 (a, op) ->
            if not (Value.eval op (Tuple.get_by_name s1 a) (Tuple.get_by_name s2 a))
            then vacuous := true
        | Cmp_const (r, a, op, cst) ->
            let t = match r with T1 -> s1 | T2 -> s2 in
            if not (Value.eval op (Tuple.get_by_name t a) cst) then vacuous := true)
    c.premise;
  if !vacuous then None
  else
    let w1 = Tuple.get_by_name s1 c.concl and w2 = Tuple.get_by_name s2 c.concl in
    (* equal-valued conclusions hold trivially; a null on either side of
       the conclusion carries no value-level currency information (a null
       already ranks lowest; a more-current-but-unknown value constrains
       nothing) *)
    if Value.equal w1 w2 || Value.is_null w1 || Value.is_null w2 then None
    else Some { prec_premises = List.rev !residual; conclusion = (c.concl, w1, w2) }

let holds c ~lt s1 s2 =
  match instantiate c s1 s2 with
  | None -> true
  | Some { prec_premises; conclusion = (a, w1, w2) } ->
      let premise_holds =
        List.for_all (fun (b, v1, v2) -> lt b v1 v2) prec_premises
      in
      (not premise_holds) || lt a w1 w2

let quote_value v =
  match v with
  | Value.Str s -> Printf.sprintf "%S" s
  | _ -> Value.to_string v

let pp_pred ppf = function
  | Prec a -> Format.fprintf ppf "prec(%s)" a
  | Cmp2 (a, op) -> Format.fprintf ppf "t1[%s] %s t2[%s]" a (Value.op_to_string op) a
  | Cmp_const (r, a, op, v) ->
      Format.fprintf ppf "%s[%s] %s %s"
        (match r with T1 -> "t1" | T2 -> "t2")
        a (Value.op_to_string op) (quote_value v)

let pp ppf c =
  (match c.premise with
  | [] -> Format.fprintf ppf "true"
  | ps ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.fprintf ppf " & ")
        pp_pred ppf ps);
  Format.fprintf ppf " -> prec(%s)" c.concl

let to_string c = Format.asprintf "%a" pp c
