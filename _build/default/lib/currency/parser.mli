(** Concrete syntax for currency constraints.

    Grammar (ASCII rendering of the paper's notation):

    {v
    constraint := premise "->" "prec" "(" attr ")"
    premise    := "true" | pred { "&" pred }
    pred       := "prec" "(" attr ")"
                | tref "[" attr "]" op tref "[" attr "]"   (same attr twice)
                | tref "[" attr "]" op constant
    tref       := "t1" | "t2"
    op         := "=" | "!=" | "<>" | "<" | "<=" | ">" | ">="
    constant   := "..." | '...' | number | null
    v}

    Example: [t1\[status\] = "working" & t2\[status\] = "retired" -> prec(status)] *)

(** [parse s] parses one constraint. *)
val parse : string -> (Constraint_ast.t, string) result

(** [parse_exn s] is {!parse}, raising [Failure] on error. *)
val parse_exn : string -> Constraint_ast.t

(** [parse_many s] parses a newline- or semicolon-separated list; lines
    starting with [#] are comments. *)
val parse_many : string -> (Constraint_ast.t list, string) result
