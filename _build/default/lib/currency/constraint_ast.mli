(** Currency constraints (Section II-A of the paper):

    [∀ t1,t2 (ω → t1 ≺_Ar t2)]

    where [ω] is a conjunction of predicates of three shapes:
    - [t1 ≺_Al t2] — a currency-order premise;
    - [t1\[Al\] op t2\[Al\]] — comparing the two tuples on an attribute;
    - [ti\[Al\] op c] — comparing one tuple against a constant. *)

type tuple_ref = T1 | T2

type pred =
  | Prec of string  (** [t1 ≺_A t2] *)
  | Cmp2 of string * Value.op  (** [t1\[A\] op t2\[A\]] *)
  | Cmp_const of tuple_ref * string * Value.op * Value.t
      (** [ti\[A\] op c] *)

type t = {
  premise : pred list;  (** the conjunction ω *)
  concl : string;       (** the attribute [Ar] of the conclusion *)
}

(** [make premise concl] builds a constraint; [premise] may be empty. *)
val make : pred list -> string -> t

(** [attrs c] is every attribute mentioned, conclusion included. *)
val attrs : t -> string list

(** [check_schema c s] verifies all attributes exist in [s]; returns the
    offending attribute on failure. *)
val check_schema : t -> Schema.t -> (unit, string) Stdlib.result

(** One concrete instance of a constraint on an ordered tuple pair, after
    the comparison conjuncts have been evaluated away: if every
    [(a, v1, v2)] of [prec_premises] holds as a value-currency fact
    [v1 ≺_a v2], then the conclusion fact holds. Attribute names come with
    the values they were instantiated to. *)
type instance = {
  prec_premises : (string * Value.t * Value.t) list;
  conclusion : string * Value.t * Value.t;
}

(** [instantiate c s1 s2] evaluates the comparison conjuncts of [c] on the
    tuple pair and returns the residual instance, or [None] when the
    constraint is vacuous on this pair: a comparison conjunct is false, a
    currency-order premise relates equal values (strictness can never
    hold), or the conclusion relates equal values (trivially current). *)
val instantiate : t -> Tuple.t -> Tuple.t -> instance option

(** [holds c ~lt s1 s2] is the direct semantics of [c] on the pair, where
    [lt a v1 v2] decides the value-currency order of attribute [a]; used
    by the exhaustive reference checker. *)
val holds : t -> lt:(string -> Value.t -> Value.t -> bool) -> Tuple.t -> Tuple.t -> bool

val pp_pred : Format.formatter -> pred -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
