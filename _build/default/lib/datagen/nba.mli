(** NBA-style synthetic data, standing in for the paper's real NBA table
    (player/stat/arena join; see DESIGN.md for the substitution).

    Schema (14 attributes as in the paper): [(pid, name, true_name, team,
    league, tname, points, poss, allpoints, min, arena, opened, capacity,
    city)]. An entity is a player; its tuples are season snapshots joined
    against the historical team-name and arena rows of the player's team,
    so an entity ranges over a few to >100 tuples. The constraint families
    mirror the paper's: team-name lineage constraints (ϕ1 form), arena
    lineage constraints (ϕ2), the cumulative-points rule making higher
    [allpoints] more current in the per-season attributes (ϕ3 family), the
    arena-implication family (ϕ4), and arena → city/capacity CFDs (ψ1). *)

val schema : Schema.t

type params = {
  n_teams : int;            (** default 30 *)
  n_renamed_teams : int;    (** teams with a second name; 15 lineage rules *)
  n_entities : int;
  seasons_min : int;        (** career length bounds, 1..6 *)
  seasons_max : int;
  seed : int;
}

val default_params : params

val generate : params -> Types.dataset

(** [generate_sized p ~sizes] makes one case per requested entity size
    (padding with duplicate rows, as the paper's joined table also
    contains); used by the scalability benches' size buckets. *)
val generate_sized : params -> sizes:int list -> Types.dataset

(** [quick ?seed ~n_entities ~seasons ()] small instance for tests. *)
val quick : ?seed:int -> n_entities:int -> seasons:int -> unit -> Types.dataset
