let schema =
  Schema.make
    [
      "pid"; "name"; "true_name"; "team"; "league"; "tname"; "points"; "poss";
      "allpoints"; "min"; "arena"; "opened"; "capacity"; "city";
    ]

type params = {
  n_teams : int;
  n_renamed_teams : int;
  n_entities : int;
  seasons_min : int;
  seasons_max : int;
  seed : int;
}

(* 26 teams with 33 arena moves spread over them gives 59 arenas, hence 59
   arena→city CFDs; 15 renames + 33 arena moves + 4 ϕ3-family + 2
   ϕ4-family rules give |Σ| = 54, the count the paper reports. *)
let default_params =
  {
    n_teams = 26;
    n_renamed_teams = 15;
    n_entities = 20;
    seasons_min = 1;
    seasons_max = 6;
    seed = 2013;
  }

type arena_info = { aname : string; opened : int; capacity : int; acity : string }

type team_info = {
  tnames : string array;       (* name lineage, oldest first *)
  rename_season : int;         (* global season index of the rename *)
  arenas : arena_info array;   (* arena lineage, oldest first *)
  move_seasons : int array;    (* global season at which arena k starts *)
}

type world = { teams : team_info array; n_seasons : int }

let n_global_seasons = 6 (* 2005/06 .. 2010/11, as in the paper *)

let make_world p rng =
  (* distribute 33 arena moves over the teams, at most 2 extra arenas each *)
  let extra = Array.make p.n_teams 0 in
  let moves = ref (min 33 (2 * p.n_teams)) in
  let i = ref 0 in
  while !moves > 0 do
    let t = !i mod p.n_teams in
    if extra.(t) < 2 then begin
      extra.(t) <- extra.(t) + 1;
      decr moves
    end;
    incr i
  done;
  let teams =
    Array.init p.n_teams (fun t ->
        let renamed = t < p.n_renamed_teams in
        let tnames =
          if renamed then [| Printf.sprintf "tname_%d_old" t; Printf.sprintf "tname_%d_new" t |]
          else [| Printf.sprintf "tname_%d" t |]
        in
        let n_arenas = 1 + extra.(t) in
        let arenas =
          (* opened/capacity injective in (t, k): a year or capacity shared
             by two arenas would let ϕ4 inferences leak across teams *)
          Array.init n_arenas (fun k ->
              {
                aname = Printf.sprintf "arena_%d_%d" t k;
                opened = 1900 + (10 * t) + k;
                capacity = 15000 + (1000 * t) + (100 * k);
                acity = Printf.sprintf "nba_city_%d_%d" t k;
              })
        in
        let move_seasons =
          Array.init n_arenas (fun k ->
              if k = 0 then 0 else k * (n_global_seasons / n_arenas) |> max 1)
        in
        {
          tnames;
          rename_season = 1 + Random.State.int rng (n_global_seasons - 1);
          arenas;
          move_seasons;
        })
  in
  { teams; n_seasons = n_global_seasons }

let tname_at team s = if Array.length team.tnames > 1 && s >= team.rename_season then team.tnames.(1) else team.tnames.(0)

let arena_at team s =
  let k = ref 0 in
  Array.iteri (fun i start -> if s >= start then k := i) team.move_seasons;
  team.arenas.(!k)

let sigma_of_world w =
  let cc premise concl = Currency.Constraint_ast.make premise concl in
  let const r attr v =
    Currency.Constraint_ast.Cmp_const (r, attr, Value.Eq, Value.Str v)
  in
  let tname_cs =
    Array.to_list w.teams
    |> List.filter_map (fun t ->
           if Array.length t.tnames > 1 then
             Some
               (cc
                  [ const Currency.Constraint_ast.T1 "tname" t.tnames.(0);
                    const Currency.Constraint_ast.T2 "tname" t.tnames.(1) ]
                  "tname")
           else None)
  in
  let arena_cs =
    Array.to_list w.teams
    |> List.concat_map (fun t ->
           List.init
             (Array.length t.arenas - 1)
             (fun k ->
               cc
                 [ const Currency.Constraint_ast.T1 "arena" t.arenas.(k).aname;
                   const Currency.Constraint_ast.T2 "arena" t.arenas.(k + 1).aname ]
                 "arena"))
  in
  (* ϕ3 family: larger career total ⇒ more current per-season values.
     (The paper also lists tname here; with the full historical join that
     rule would contradict the tname lineages — see DESIGN.md — so the
     lineage constraints carry the tname ordering instead.) *)
  let phi3 =
    List.map
      (fun b ->
        cc [ Currency.Constraint_ast.Cmp2 ("allpoints", Value.Lt) ] b)
      [ "points"; "poss"; "min"; "allpoints" ]
  in
  (* ϕ4 family: a more current arena ⇒ more current arena facts. The
     paper's B excludes city: the arena→city CFDs of Γ are what ties the
     city down, so Σ and Γ genuinely complement each other. *)
  let phi4 =
    List.map
      (fun b -> cc [ Currency.Constraint_ast.Prec "arena" ] b)
      [ "opened"; "capacity" ]
  in
  tname_cs @ arena_cs @ phi3 @ phi4

let gamma_of_world w =
  Array.to_list w.teams
  |> List.concat_map (fun t ->
         Array.to_list t.arenas
         |> List.map (fun a ->
                Cfd.Constant_cfd.make
                  [ ("arena", Value.Str a.aname) ]
                  ("city", Value.Str a.acity)))

(* distinct per-season numbers within an entity, so value-level currency
   orders never cycle *)
let fresh rng used base spread =
  let rec go () =
    let v = base + Random.State.int rng spread in
    if Hashtbl.mem used v then go ()
    else begin
      Hashtbl.add used v ();
      v
    end
  in
  go ()

let generate_case ?pad_to w rng ~id ~n_seasons =
  let pid = Printf.sprintf "pid_%d" id in
  let pname = Printf.sprintf "player_%d" id in
  let true_name = Printf.sprintf "Player %d" id in
  let n_seasons = max 1 (min n_seasons w.n_seasons) in
  let start = Random.State.int rng (w.n_seasons - n_seasons + 1) in
  (* career: consecutive seasons; occasional switch to a fresh team *)
  let used_teams = Hashtbl.create 4 in
  let pick_team () =
    let rec go () =
      let t = Random.State.int rng (Array.length w.teams) in
      if Hashtbl.mem used_teams t then go () else (Hashtbl.add used_teams t (); t)
    in
    go ()
  in
  let team = ref (pick_team ()) in
  let used_pts = Hashtbl.create 16 in
  let used_poss = Hashtbl.create 16 in
  let used_min = Hashtbl.create 16 in
  let allpoints = ref 0 in
  let rows = ref [] in
  let last_snapshot = ref None in
  for s_off = 0 to n_seasons - 1 do
    let s = start + s_off in
    if s_off > 0 && Random.State.float rng 1.0 < 0.2 && Hashtbl.length used_teams < Array.length w.teams
    then team := pick_team ();
    let t = w.teams.(!team) in
    let points = fresh rng used_pts 200 1800 in
    allpoints := !allpoints + points;
    let poss = fresh rng used_poss 500 3000 in
    let mins = fresh rng used_min 400 2500 in
    let mk_row ~tname ~arena poss mins =
      Tuple.make schema
        [
          Value.Str pid; Value.Str pname; Value.Str true_name;
          Value.Str (Printf.sprintf "team_%d" !team);
          Value.Str "NBA"; Value.Str tname; Value.Int points; Value.Int poss;
          Value.Int !allpoints; Value.Int mins; Value.Str arena.aname;
          Value.Int arena.opened; Value.Int arena.capacity; Value.Str arena.acity;
        ]
    in
    (* the paper's join pairs each season's stats with every historical
       team-name/arena record of the team up to that season *)
    let names_so_far =
      if Array.length t.tnames > 1 && s >= t.rename_season then [ t.tnames.(0); t.tnames.(1) ]
      else [ t.tnames.(0) ]
    in
    let arenas_so_far =
      Array.to_list
        (Array.of_list
           (List.filteri (fun k _ -> t.move_seasons.(k) <= s) (Array.to_list t.arenas)))
    in
    List.iter
      (fun tname ->
        List.iter
          (fun arena -> rows := (mk_row ~tname ~arena poss mins, s) :: !rows)
          arenas_so_far)
      names_so_far;
    let current = mk_row ~tname:(tname_at t s) ~arena:(arena_at t s) poss mins in
    last_snapshot := Some current;
    (* secondary-source variants: same season, different poss/min readings *)
    let n_variants = Random.State.int rng 3 in
    for _ = 1 to n_variants do
      let poss' = fresh rng used_poss 500 3000 in
      let mins' = fresh rng used_min 400 2500 in
      rows := (mk_row ~tname:(tname_at t s) ~arena:(arena_at t s) poss' mins', s) :: !rows
    done
  done;
  let truth = Option.get !last_snapshot in
  let base = Array.of_list !rows in
  let n = Array.length base in
  let target = match pad_to with Some k -> max k (max n 2) | None -> max n 2 in
  let stamped = Array.init target (fun i -> base.(i mod n)) in
  Types.shuffle rng stamped;
  {
    Types.id;
    entity = Entity.make schema (Array.to_list (Array.map fst stamped));
    truth;
    stamps = Array.map snd stamped;
  }

let generate p =
  let rng = Random.State.make [| p.seed |] in
  let w = make_world p rng in
  let cases =
    List.init p.n_entities (fun id ->
        let n_seasons =
          p.seasons_min + Random.State.int rng (max 1 (p.seasons_max - p.seasons_min + 1))
        in
        generate_case w rng ~id ~n_seasons)
  in
  {
    Types.name = "NBA";
    schema;
    sigma = sigma_of_world w;
    gamma = gamma_of_world w;
    cases;
  }

let generate_sized p ~sizes =
  let rng = Random.State.make [| p.seed |] in
  let w = make_world p rng in
  let cases =
    List.mapi
      (fun id size ->
        (* longer careers for bigger requested entities, so distinct
           content (active domains) grows with size as in the real join *)
        let n_seasons = max p.seasons_min (min p.seasons_max (1 + (size / 20))) in
        generate_case ~pad_to:size w rng ~id ~n_seasons)
      sizes
  in
  { Types.name = "NBA"; schema; sigma = sigma_of_world w; gamma = gamma_of_world w; cases }

let quick ?(seed = 7) ~n_entities ~seasons () =
  generate
    {
      n_teams = 6;
      n_renamed_teams = 3;
      n_entities;
      seasons_min = seasons;
      seasons_max = seasons;
      seed;
    }
