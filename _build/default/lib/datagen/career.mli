(** CAREER-style synthetic data, standing in for the paper's CiteSeer
    extract (see DESIGN.md).

    Schema [(first_name, last_name, affiliation, city, country)]: an entity
    is a researcher; each tuple is the header of one publication, carrying
    the affiliation and address used at writing time. A researcher moves
    through a chain of affiliations (each with its own city, countries
    distinct within a chain so value-level currency stays acyclic).

    Constraints mirror the paper's: when a later paper cites an earlier one
    by the same person, the affiliation/city/country used in the citing
    paper are more current — rendered as constant currency constraints on
    the two affiliations — plus the CFD [affiliation → city] /
    [affiliation → country] pattern table (347 patterns by default). *)

val schema : Schema.t

type params = {
  n_affiliations : int;   (** default 174: 348 ≈ 347 CFD patterns *)
  n_countries : int;      (** default 20 *)
  n_entities : int;       (** default 65, as in the paper *)
  pubs_min : int;         (** publications per entity; paper: 2–175 *)
  pubs_max : int;
  citation_prob : float;  (** chance an adjacent affiliation pair is
                              witnessed by a citation (default 0.75) *)
  seed : int;
}

val default_params : params

val generate : params -> Types.dataset

val quick : ?seed:int -> n_entities:int -> pubs:int -> unit -> Types.dataset
