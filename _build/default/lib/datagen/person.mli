(** The paper's synthetic Person data (Section VI): schema
    [(name, status, job, kids, city, AC, zip, county)] as in Fig. 2,
    currency constraints of the ϕ1–ϕ8 forms with distinct constants, and a
    CFD [AC → city] with one pattern per city (counted as distinct constant
    CFDs, 1000 by default — total 983 + 1000 constraints as reported).

    Each entity is produced by simulating a life history — status and job
    advance along a chain, kids grow monotonically, moves go to fresh
    cities so the value-level currency model stays consistent — and
    emitting its states as shuffled, timestamp-free tuples. The ground
    truth is the last state. *)

val schema : Schema.t

type params = {
  n_status_chains : int;  (** default 300; 2 constraints each *)
  n_job_chains : int;     (** default 378; 1 constraint each *)
  n_cities : int;         (** default 1000; 1 CFD pattern each *)
  n_entities : int;
  size_min : int;         (** tuples per entity, inclusive bounds *)
  size_max : int;
  extra_events : int;
      (** extra life events per entity (default 0): richer histories mean
          larger active domains and larger encodings *)
  seed : int;
}

(** Defaults sized to the paper: 983 currency constraints, 1000 CFD
    patterns, 10 entities of 4–12 tuples. Override what you need. *)
val default_params : params

(** [generate params] builds the dataset. *)
val generate : params -> Types.dataset

(** [quick ?seed ~n_entities ~size ()] is a small-world convenience for
    tests and examples: few chains/cities, entities of exactly [size]
    tuples. *)
val quick : ?seed:int -> n_entities:int -> size:int -> unit -> Types.dataset
