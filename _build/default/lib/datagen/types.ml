type case = { id : int; entity : Entity.t; truth : Tuple.t; stamps : int array }

type dataset = {
  name : string;
  schema : Schema.t;
  sigma : Currency.Constraint_ast.t list;
  gamma : Cfd.Constant_cfd.t list;
  cases : case list;
}

let shuffle st arr =
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let take_frac ~seed frac l =
  let frac = Float.max 0. (Float.min 1. frac) in
  let arr = Array.of_list l in
  shuffle (Random.State.make [| seed |]) arr;
  let k = int_of_float (ceil (frac *. float_of_int (Array.length arr))) in
  Array.to_list (Array.sub arr 0 (min k (Array.length arr)))

let spec_of ?(sigma_frac = 1.0) ?(gamma_frac = 1.0) ?(subset_seed = 2013) ds case =
  let sigma = take_frac ~seed:subset_seed sigma_frac ds.sigma in
  let gamma = take_frac ~seed:(subset_seed + 1) gamma_frac ds.gamma in
  Crcore.Spec.make case.entity ~orders:[] ~sigma ~gamma
