lib/datagen/person.ml: Array Cfd Currency Entity List Printf Random Schema Tuple Types Value
