lib/datagen/types.ml: Array Cfd Crcore Currency Entity Float Random Schema Tuple
