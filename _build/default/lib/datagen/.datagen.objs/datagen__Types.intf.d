lib/datagen/types.mli: Cfd Crcore Currency Entity Random Schema Tuple
