lib/datagen/career.mli: Schema Types
