lib/datagen/nba.ml: Array Cfd Currency Entity Hashtbl List Option Printf Random Schema Tuple Types Value
