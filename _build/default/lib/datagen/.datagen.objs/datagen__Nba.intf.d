lib/datagen/nba.mli: Schema Types
