lib/datagen/person.mli: Schema Types
