lib/datagen/career.ml: Array Cfd Currency Entity List Printf Random Schema Tuple Types Value
