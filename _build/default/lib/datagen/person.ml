let schema =
  Schema.make [ "name"; "status"; "job"; "kids"; "city"; "AC"; "zip"; "county" ]

type params = {
  n_status_chains : int;
  n_job_chains : int;
  n_cities : int;
  n_entities : int;
  size_min : int;
  size_max : int;
  extra_events : int;
  seed : int;
}

let default_params =
  {
    n_status_chains = 300;
    n_job_chains = 378;
    n_cities = 1000;
    n_entities = 10;
    size_min = 4;
    size_max = 12;
    extra_events = 0;
    seed = 2013;
  }

type city_info = { cname : string; ac : int; zips : (int * string) array }

type world = {
  cities : city_info array;
  status_chains : string array array;
  job_chains : string array array;
}

let make_world p =
  let cities =
    Array.init p.n_cities (fun i ->
        {
          cname = Printf.sprintf "city_%d" i;
          ac = 100 + i;
          zips =
            Array.init 3 (fun j ->
                ((1000 * (i + 1)) + j, Printf.sprintf "county_%d_%d" i j));
        })
  in
  let status_chains =
    Array.init p.n_status_chains (fun i ->
        [|
          Printf.sprintf "working_%d" i;
          Printf.sprintf "retired_%d" i;
          Printf.sprintf "deceased_%d" i;
        |])
  in
  let job_chains =
    Array.init p.n_job_chains (fun i ->
        [| Printf.sprintf "junior_job_%d" i; Printf.sprintf "senior_job_%d" i |])
  in
  { cities; status_chains; job_chains }

let sigma_of_world w =
  let prec_chain attr chain =
    List.init
      (Array.length chain - 1)
      (fun k ->
        Currency.Constraint_ast.make
          [
            Currency.Constraint_ast.Cmp_const
              (Currency.Constraint_ast.T1, attr, Value.Eq, Value.Str chain.(k));
            Currency.Constraint_ast.Cmp_const
              (Currency.Constraint_ast.T2, attr, Value.Eq, Value.Str chain.(k + 1));
          ]
          attr)
  in
  let status_cs =
    Array.to_list w.status_chains |> List.concat_map (prec_chain "status")
  in
  let job_cs = Array.to_list w.job_chains |> List.concat_map (prec_chain "job") in
  let phi4 =
    Currency.Constraint_ast.make
      [ Currency.Constraint_ast.Cmp2 ("kids", Value.Lt) ]
      "kids"
  in
  let imp src dst =
    Currency.Constraint_ast.make [ Currency.Constraint_ast.Prec src ] dst
  in
  let phi8 =
    Currency.Constraint_ast.make
      [ Currency.Constraint_ast.Prec "city"; Currency.Constraint_ast.Prec "zip" ]
      "county"
  in
  status_cs @ job_cs
  @ [ phi4; imp "status" "job"; imp "status" "AC"; imp "status" "zip"; phi8 ]

let gamma_of_world w =
  Array.to_list w.cities
  |> List.map (fun c ->
         Cfd.Constant_cfd.make
           [ ("AC", Value.Int c.ac) ]
           ("city", Value.Str c.cname))

type state = {
  status_idx : int;
  job_idx : int;
  kids : int;
  city : int; (* index into the entity's private city itinerary *)
  zip_slot : int;
}

let tuple_of_state w ~name ~itinerary ~status_chain ~job_chain st =
  let city = w.cities.(List.nth itinerary st.city) in
  let zip, county = city.zips.(st.zip_slot) in
  Tuple.make schema
    [
      Value.Str name;
      Value.Str status_chain.(st.status_idx);
      Value.Str job_chain.(st.job_idx);
      Value.Int st.kids;
      Value.Str city.cname;
      Value.Int city.ac;
      Value.Int zip;
      Value.Str county;
    ]

let generate_case w rng ~id ~size ~extra_events =
  let name = Printf.sprintf "person_%d" id in
  let status_chain = w.status_chains.(Random.State.int rng (Array.length w.status_chains)) in
  let job_chain = w.job_chains.(Random.State.int rng (Array.length w.job_chains)) in
  (* itinerary: distinct cities so values never revisit older ones *)
  let n_moves = 1 + Random.State.int rng 2 + (extra_events / 3) in
  let itinerary =
    List.init (n_moves + 1) (fun _ -> Random.State.int rng (Array.length w.cities))
    |> List.sort_uniq compare
  in
  let n_cities_used = List.length itinerary in
  let init =
    {
      status_idx = 0;
      job_idx = 0;
      kids = Random.State.int rng 2;
      city = 0;
      zip_slot = 0;
    }
  in
  (* build the history: each event changes the state *)
  let states = ref [ init ] in
  let current = ref init in
  let n_events = 3 + Random.State.int rng 4 + extra_events in
  for _ = 1 to n_events do
    let st = !current in
    let options =
      List.concat
        [
          (if st.status_idx < Array.length status_chain - 1 then [ `Status ] else []);
          (if st.job_idx < Array.length job_chain - 1 then [ `Job ] else []);
          [ `Kids ];
          (if st.city < n_cities_used - 1 then [ `Move ] else []);
          (if st.zip_slot < 2 then [ `Zip ] else []);
        ]
    in
    let ev = List.nth options (Random.State.int rng (List.length options)) in
    let st' =
      match ev with
      | `Status -> { st with status_idx = st.status_idx + 1 }
      | `Job -> { st with job_idx = st.job_idx + 1 }
      | `Kids -> { st with kids = st.kids + 1 }
      | `Move -> { st with city = st.city + 1; zip_slot = 0 }
      | `Zip -> { st with zip_slot = st.zip_slot + 1 }
    in
    current := st';
    states := st' :: !states
  done;
  let states = List.rev !states in
  let mk = tuple_of_state w ~name ~itinerary ~status_chain ~job_chain in
  let truth = mk !current in
  let base = Array.of_list (List.mapi (fun i st -> (mk st, i)) states) in
  (* pad or trim to the requested size by cycling the history *)
  let n_base = Array.length base in
  let size = max 2 size in
  let stamped = Array.init size (fun i -> base.(i mod n_base)) in
  Types.shuffle rng stamped;
  {
    Types.id;
    entity = Entity.make schema (Array.to_list (Array.map fst stamped));
    truth;
    stamps = Array.map snd stamped;
  }

let generate p =
  let w = make_world p in
  let rng = Random.State.make [| p.seed |] in
  let cases =
    List.init p.n_entities (fun id ->
        let size = p.size_min + Random.State.int rng (max 1 (p.size_max - p.size_min + 1)) in
        generate_case w rng ~id ~size ~extra_events:p.extra_events)
  in
  {
    Types.name = "Person";
    schema;
    sigma = sigma_of_world w;
    gamma = gamma_of_world w;
    cases;
  }

let quick ?(seed = 7) ~n_entities ~size () =
  generate
    {
      n_status_chains = 5;
      n_job_chains = 5;
      n_cities = 12;
      n_entities;
      size_min = size;
      size_max = size;
      extra_events = 0;
      seed;
    }
