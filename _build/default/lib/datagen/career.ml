let schema = Schema.make [ "first_name"; "last_name"; "affiliation"; "city"; "country" ]

type params = {
  n_affiliations : int;
  n_countries : int;
  n_entities : int;
  pubs_min : int;
  pubs_max : int;
  citation_prob : float;
  seed : int;
}

let default_params =
  {
    n_affiliations = 174;
    n_countries = 20;
    n_entities = 65;
    pubs_min = 2;
    pubs_max = 175;
    citation_prob = 0.75;
    seed = 2013;
  }

type affiliation = { aff : string; city : string; country : string }

type world = { affs : affiliation array }

let make_world p rng =
  let affs =
    Array.init p.n_affiliations (fun i ->
        {
          aff = Printf.sprintf "univ_%d" i;
          city = Printf.sprintf "acity_%d" i;
          country = Printf.sprintf "country_%d" (Random.State.int rng p.n_countries);
        })
  in
  { affs }

let gamma_of_world w =
  Array.to_list w.affs
  |> List.concat_map (fun a ->
         [
           Cfd.Constant_cfd.make [ ("affiliation", Value.Str a.aff) ] ("city", Value.Str a.city);
           Cfd.Constant_cfd.make [ ("affiliation", Value.Str a.aff) ] ("country", Value.Str a.country);
         ])

(* a researcher's affiliation chain: distinct affiliations with pairwise
   distinct cities (automatic) and countries (enforced), so the derived
   value-level currency orders are acyclic. Chains follow the global
   affiliation index order, keeping the union of all persons' citation
   constraints consistent — different persons may share affiliations, and
   a pair ordered one way by one person and the other way by another would
   make every entity containing both values unsatisfiable. *)
let pick_chain w rng len =
  let chosen = ref [] in
  let tries = ref 0 in
  while List.length !chosen < len && !tries < 200 do
    incr tries;
    let i = Random.State.int rng (Array.length w.affs) in
    let a = w.affs.(i) in
    if
      not
        (List.exists
           (fun (_, b) -> b.aff = a.aff || b.country = a.country || b.city = a.city)
           !chosen)
    then chosen := (i, a) :: !chosen
  done;
  List.sort (fun (i, _) (j, _) -> compare i j) !chosen |> List.map snd

(* the citation structure yields currency constraints on the affiliation
   constants: cited (older) on t1, citing (newer) on t2 *)
let constraints_for_chain rng ~citation_prob chain =
  let arr = Array.of_list chain in
  let n = Array.length arr in
  let out = ref [] in
  let emit older newer =
    let aff_eq r (a : affiliation) =
      Currency.Constraint_ast.Cmp_const (r, "affiliation", Value.Eq, Value.Str a.aff)
    in
    List.iter
      (fun concl ->
        out :=
          Currency.Constraint_ast.make
            [ aff_eq Currency.Constraint_ast.T1 older; aff_eq Currency.Constraint_ast.T2 newer ]
            concl
          :: !out)
      [ "affiliation"; "city"; "country" ]
  in
  for i = 0 to n - 2 do
    if Random.State.float rng 1.0 < citation_prob then emit arr.(i) arr.(i + 1)
  done;
  (* occasional long-range citation *)
  if n >= 3 && Random.State.float rng 1.0 < 0.3 then emit arr.(0) arr.(n - 1);
  List.rev !out

let generate_case w rng ~citation_prob ~id ~n_pubs =
  let first = Printf.sprintf "First_%d" id in
  let last = Printf.sprintf "Last_%d" id in
  let chain_len = 2 + Random.State.int rng 3 in
  let chain = pick_chain w rng chain_len in
  let chain = if chain = [] then [ w.affs.(0) ] else chain in
  let arr = Array.of_list chain in
  let n = Array.length arr in
  let truth_aff = arr.(n - 1) in
  let mk (a : affiliation) =
    Tuple.make schema
      [ Value.Str first; Value.Str last; Value.Str a.aff; Value.Str a.city; Value.Str a.country ]
  in
  let n_pubs = max 2 n_pubs in
  (* publications spread over the chain; every stage publishes at least once *)
  let stamped =
    Array.init n_pubs (fun i ->
        let stage = if i < n then i else Random.State.int rng n in
        (mk arr.(stage), stage))
  in
  Types.shuffle rng stamped;
  let constraints = constraints_for_chain rng ~citation_prob chain in
  ( {
      Types.id;
      entity = Entity.make schema (Array.to_list (Array.map fst stamped));
      truth = mk truth_aff;
      stamps = Array.map snd stamped;
    },
    constraints )

let generate p =
  let rng = Random.State.make [| p.seed |] in
  let w = make_world p rng in
  let results =
    List.init p.n_entities (fun id ->
        let n_pubs = p.pubs_min + Random.State.int rng (max 1 (p.pubs_max - p.pubs_min + 1)) in
        generate_case w rng ~citation_prob:p.citation_prob ~id ~n_pubs)
  in
  let cases = List.map fst results in
  let sigma = List.concat_map snd results in
  { Types.name = "CAREER"; schema; sigma; gamma = gamma_of_world w; cases }

let quick ?(seed = 7) ~n_entities ~pubs () =
  generate
    {
      n_affiliations = 20;
      n_countries = 8;
      n_entities;
      pubs_min = pubs;
      pubs_max = pubs;
      citation_prob = 0.8;
      seed;
    }
