(** Shared shapes for the synthetic datasets of the evaluation: a dataset
    bundles a schema, the constraint sets Σ and Γ discovered/designed for
    it, and entity cases with ground truth (the generator knows the last
    state of each simulated history). *)

(** One entity: its (conflicting, shuffled) tuples plus the ground-truth
    current tuple used to simulate user interactions and score accuracy.
    [stamps.(i)] is tuple [i]'s position in the simulated history — the
    timestamp the conflict-resolution pipeline never sees, kept for
    verifying results and for the constraint-discovery extension, exactly
    as the paper held incomplete timestamps out for validation. *)
type case = { id : int; entity : Entity.t; truth : Tuple.t; stamps : int array }

type dataset = {
  name : string;
  schema : Schema.t;
  sigma : Currency.Constraint_ast.t list;
  gamma : Cfd.Constant_cfd.t list;
  cases : case list;
}

(** [spec_of ?sigma_frac ?gamma_frac ?subset_seed ds case] builds the
    specification of [case] with the given fractions of Σ and Γ (both
    default 1.0): the paper's Fig. 8(f)–(p) vary exactly these. The subset
    is a deterministic seeded sample, identical across calls with the same
    seed. Currency orders start empty, as in all the paper's
    experiments. *)
val spec_of :
  ?sigma_frac:float -> ?gamma_frac:float -> ?subset_seed:int -> dataset -> case -> Crcore.Spec.t

(** [shuffle st arr] Fisher–Yates in place. *)
val shuffle : Random.State.t -> 'a array -> unit

(** [take_frac ~seed frac l] is a deterministic sample of [⌈frac·n⌉]
    elements of [l] (clamped to [0,1]). *)
val take_frac : seed:int -> float -> 'a list -> 'a list
