type t = {
  n : int;
  succ_rev : int list array; (* successors, most recent first *)
  mutable m : int;
  matrix : Bytes.t;          (* n*n adjacency bits *)
}

let create n =
  if n < 0 then invalid_arg "Digraph.create";
  { n; succ_rev = Array.make (max n 1) []; m = 0; matrix = Bytes.make (((n * n) + 7) / 8) '\000' }

let n_vertices g = g.n

let check g v = if v < 0 || v >= g.n then invalid_arg "Digraph: bad vertex"

let bit_index g u v = (u * g.n) + v

let has_edge g u v =
  check g u;
  check g v;
  let i = bit_index g u v in
  Bytes.get_uint8 g.matrix (i lsr 3) land (1 lsl (i land 7)) <> 0

let add_edge g u v =
  check g u;
  check g v;
  if not (has_edge g u v) then begin
    let i = bit_index g u v in
    Bytes.set_uint8 g.matrix (i lsr 3)
      (Bytes.get_uint8 g.matrix (i lsr 3) lor (1 lsl (i land 7)));
    g.succ_rev.(u) <- v :: g.succ_rev.(u);
    g.m <- g.m + 1
  end

let succ g v =
  check g v;
  List.rev g.succ_rev.(v)

let n_edges g = g.m

let edges g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    List.iter (fun v -> acc := (u, v) :: !acc) g.succ_rev.(u)
  done;
  !acc

let has_cycle g =
  (* colours: 0 = white, 1 = grey (on stack), 2 = black *)
  let colour = Array.make (max g.n 1) 0 in
  let rec visit v =
    colour.(v) <- 1;
    let cyclic = List.exists (fun w -> colour.(w) = 1 || (colour.(w) = 0 && visit w)) g.succ_rev.(v) in
    if not cyclic then colour.(v) <- 2;
    cyclic
  in
  let rec scan v = v < g.n && ((colour.(v) = 0 && visit v) || scan (v + 1)) in
  scan 0

let transitive_closure g =
  let g' = create g.n in
  for u = 0 to g.n - 1 do
    let seen = Array.make (max g.n 1) false in
    let rec dfs v =
      List.iter
        (fun w ->
          if not seen.(w) then begin
            seen.(w) <- true;
            add_edge g' u w;
            dfs w
          end)
        g.succ_rev.(v)
    in
    dfs u
  done;
  g'

let indegrees g =
  let indeg = Array.make (max g.n 1) 0 in
  for u = 0 to g.n - 1 do
    List.iter (fun v -> indeg.(v) <- indeg.(v) + 1) g.succ_rev.(u)
  done;
  indeg

let topo_sort g =
  let indeg = indegrees g in
  let queue = Queue.create () in
  for v = 0 to g.n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let order = ref [] in
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order := v :: !order;
    incr count;
    List.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w queue)
      g.succ_rev.(v)
  done;
  if !count = g.n then Some (List.rev !order) else None

exception Hit_limit

let fold_linear_extensions ?limit g f =
  (* recursive enumeration of topological sorts; [f] is called on each *)
  let indeg = indegrees g in
  let found = ref 0 in
  let placed = Array.make (max g.n 1) false in
  let prefix = ref [] in
  let rec go depth =
    if depth = g.n then begin
      f (List.rev !prefix);
      incr found;
      match limit with Some l when !found >= l -> raise Hit_limit | _ -> ()
    end
    else
      for v = 0 to g.n - 1 do
        if (not placed.(v)) && indeg.(v) = 0 then begin
          placed.(v) <- true;
          List.iter (fun w -> indeg.(w) <- indeg.(w) - 1) g.succ_rev.(v);
          prefix := v :: !prefix;
          go (depth + 1);
          prefix := List.tl !prefix;
          List.iter (fun w -> indeg.(w) <- indeg.(w) + 1) g.succ_rev.(v);
          placed.(v) <- false
        end
      done
  in
  (try go 0 with Hit_limit -> ());
  !found

let linear_extensions ?limit g =
  let acc = ref [] in
  ignore (fold_linear_extensions ?limit g (fun ext -> acc := ext :: !acc));
  List.rev !acc

let count_linear_extensions ?limit g = fold_linear_extensions ?limit g (fun _ -> ())
