lib/porder/digraph.mli:
