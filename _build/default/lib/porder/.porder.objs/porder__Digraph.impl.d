lib/porder/digraph.ml: Array Bytes List Queue
