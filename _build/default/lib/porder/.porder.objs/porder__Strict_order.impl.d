lib/porder/strict_order.ml: Array Bytes Digraph Fun List
