lib/porder/strict_order.mli: Digraph
