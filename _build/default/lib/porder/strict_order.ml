(* Reachability is kept as two bit matrices: up.(v) holds everything above
   v, down.(v) everything below. Adding a ≺ b unions a's down-set ∪ {a}
   below everything in b's up-set ∪ {b}, and symmetrically. *)

type t = { n : int; up : Bytes.t array; down : Bytes.t array }

let row n = Bytes.make ((n + 7) / 8) '\000'

let create n =
  if n < 0 then invalid_arg "Strict_order.create";
  { n; up = Array.init (max n 1) (fun _ -> row n); down = Array.init (max n 1) (fun _ -> row n) }

let size o = o.n

let check o v = if v < 0 || v >= o.n then invalid_arg "Strict_order: bad element"

let get_bit bytes i = Bytes.get_uint8 bytes (i lsr 3) land (1 lsl (i land 7)) <> 0

let set_bit bytes i =
  Bytes.set_uint8 bytes (i lsr 3) (Bytes.get_uint8 bytes (i lsr 3) lor (1 lsl (i land 7)))

let lt o a b =
  check o a;
  check o b;
  get_bit o.up.(a) b

let compatible o a b =
  check o a;
  check o b;
  a <> b && not (lt o b a)

let union_into dst src =
  for i = 0 to Bytes.length dst - 1 do
    Bytes.set_uint8 dst i (Bytes.get_uint8 dst i lor Bytes.get_uint8 src i)
  done

let add o a b =
  check o a;
  check o b;
  if a = b || lt o b a then false
  else if lt o a b then true
  else begin
    (* members below or equal to a / above or equal to b *)
    let lower = ref [ a ] and upper = ref [ b ] in
    for v = 0 to o.n - 1 do
      if get_bit o.down.(a) v then lower := v :: !lower;
      if get_bit o.up.(b) v then upper := v :: !upper
    done;
    List.iter
      (fun u ->
        List.iter (fun w -> set_bit o.up.(u) w) !upper;
        union_into o.up.(u) o.up.(b);
        set_bit o.up.(u) b)
      !lower;
    List.iter
      (fun w ->
        List.iter (fun u -> set_bit o.down.(w) u) !lower;
        union_into o.down.(w) o.down.(a);
        set_bit o.down.(w) a)
      !upper;
    true
  end

let pairs o =
  let acc = ref [] in
  for a = o.n - 1 downto 0 do
    for b = o.n - 1 downto 0 do
      if get_bit o.up.(a) b then acc := (a, b) :: !acc
    done
  done;
  !acc

let n_pairs o =
  let total = ref 0 in
  for a = 0 to o.n - 1 do
    for b = 0 to o.n - 1 do
      if get_bit o.up.(a) b then incr total
    done
  done;
  !total

let maximal o =
  List.filter
    (fun v ->
      let above = ref false in
      for w = 0 to o.n - 1 do
        if get_bit o.up.(v) w then above := true
      done;
      not !above)
    (List.init o.n Fun.id)

let maximum o =
  let dominates v =
    let all = ref true in
    for u = 0 to o.n - 1 do
      if u <> v && not (get_bit o.down.(v) u) then all := false
    done;
    !all
  in
  let rec go v = if v >= o.n then None else if dominates v then Some v else go (v + 1) in
  if o.n = 1 then Some 0 else go 0

let copy o =
  { n = o.n; up = Array.map Bytes.copy o.up; down = Array.map Bytes.copy o.down }

let to_digraph o =
  let g = Digraph.create o.n in
  List.iter (fun (a, b) -> Digraph.add_edge g a b) (pairs o);
  g
