(** Strict partial orders on [0 .. n-1] with an incrementally maintained
    transitive closure.

    This represents the per-attribute currency orders [≺_Ai] of the paper:
    adding an ordered pair either succeeds (and everything implied by
    transitivity becomes visible through {!lt}) or is rejected because it
    would create a cycle, i.e. contradict the order built so far. *)

type t

val create : int -> t
val size : t -> int

(** [add o a b] records [a ≺ b]. Returns [false] and leaves [o] unchanged
    when [a = b] or [b ⪯ a] already holds; [true] otherwise. *)
val add : t -> int -> int -> bool

(** [lt o a b] is [true] when [a ≺ b] is in the transitive closure. *)
val lt : t -> int -> int -> bool

(** [compatible o a b] is [true] when [a ≺ b] could still be added. *)
val compatible : t -> int -> int -> bool

(** [pairs o] is every pair of the closure, i.e. the full relation. *)
val pairs : t -> (int * int) list

(** [n_pairs o] is the size of the closure relation. *)
val n_pairs : t -> int

(** [maximal o] is the list of elements with no element above them. *)
val maximal : t -> int list

(** [maximum o] is [Some m] when a single element dominates {e all}
    others. *)
val maximum : t -> int option

(** [copy o] is an independent copy. *)
val copy : t -> t

(** [to_digraph o] is the closure as a {!Digraph.t} (for enumeration). *)
val to_digraph : t -> Digraph.t
