(** Directed graphs on vertices [0 .. n-1], with the reachability and
    enumeration operations the currency-order machinery needs. *)

type t

val create : int -> t
val n_vertices : t -> int
val add_edge : t -> int -> int -> unit
val has_edge : t -> int -> int -> bool

(** [succ g v] is the list of successors of [v] in insertion order. *)
val succ : t -> int -> int list

val n_edges : t -> int
val edges : t -> (int * int) list

(** [has_cycle g] detects a directed cycle (self-loops included). *)
val has_cycle : t -> bool

(** [transitive_closure g] is a new graph with an edge [u -> w] whenever
    [w] is reachable from [u] by a non-empty path in [g]. *)
val transitive_closure : t -> t

(** [topo_sort g] is a topological order of the vertices, or [None] when
    [g] is cyclic. *)
val topo_sort : t -> int list option

(** [linear_extensions ?limit g] enumerates total orders (as vertex lists,
    least first) compatible with the edge relation "[u] before [w]". Stops
    after [limit] extensions (default unlimited). Returns [[]] when [g] is
    cyclic. *)
val linear_extensions : ?limit:int -> t -> int list list

(** [count_linear_extensions ?limit g] counts extensions without
    materialising them, stopping at [limit] when given. *)
val count_linear_extensions : ?limit:int -> t -> int
