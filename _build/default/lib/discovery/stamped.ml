type t = { schema : Schema.t; entities : (Tuple.t * int) list list }

let make schema entities =
  List.iter
    (fun e ->
      if e = [] then invalid_arg "Stamped.make: empty entity";
      List.iter
        (fun (t, _) ->
          if not (Schema.equal (Tuple.schema t) schema) then
            invalid_arg "Stamped.make: schema mismatch")
        e)
    entities;
  { schema; entities }

let value_rank ds i attr =
  let e = List.nth ds.entities i in
  let ranks = ref [] in
  List.iter
    (fun (t, stamp) ->
      let v = Tuple.get t attr in
      match List.assoc_opt (Value.to_string v) !ranks with
      | Some (_, r) when r <= stamp -> ()
      | _ -> ranks := (Value.to_string v, (v, stamp)) :: List.remove_assoc (Value.to_string v) !ranks)
    e;
  List.map snd !ranks

let lt_of_entity ds i =
  let schema = ds.schema in
  let table = Hashtbl.create 16 in
  List.iteri
    (fun a _ ->
      List.iter
        (fun (v, r) -> Hashtbl.replace table (a, Value.to_string v) r)
        (value_rank ds i a))
    (Schema.attr_names schema);
  fun attr v1 v2 ->
    let a = Schema.index schema attr in
    match (Hashtbl.find_opt table (a, Value.to_string v1), Hashtbl.find_opt table (a, Value.to_string v2)) with
    | Some r1, Some r2 -> r1 < r2 && not (Value.equal v1 v2)
    | _ -> false

let holds_frac ds c =
  let total = ref 0 and good = ref 0 in
  List.iteri
    (fun i e ->
      let lt = lt_of_entity ds i in
      let tuples = List.map fst e in
      List.iter
        (fun t1 ->
          List.iter
            (fun t2 ->
              if not (t1 == t2) then begin
                incr total;
                if Currency.Constraint_ast.holds c ~lt t1 t2 then incr good
              end)
            tuples)
        tuples)
    ds.entities;
  if !total = 0 then 1.0 else float_of_int !good /. float_of_int !total
