(** Constant-CFD discovery from (possibly dirty) relation samples — the
    role the paper assigns to the CFD-discovery literature (its refs [5]
    and [14]). Mines single-attribute-LHS constant CFDs [A = a → B = b]:
    for every value [a] of [A] with enough support, if at least
    [min_confidence] of the rows carrying [a] agree on one [B]-value [b],
    the pattern is emitted. *)

type config = {
  min_support : int;      (** rows carrying the LHS value (default 2) *)
  min_confidence : float; (** agreement ratio on the RHS value (default 1.0) *)
}

val default_config : config

(** [mine ?config schema rows] scans all attribute pairs. Null values
    never participate in patterns. *)
val mine : ?config:config -> Schema.t -> Tuple.t list -> Cfd.Constant_cfd.t list
