(** Training data for constraint discovery: entity instances whose tuples
    carry (possibly coarse) timestamps — the setting of the paper's
    Remark (2), which proposes discovering currency constraints "along the
    same lines as CFD discovery". Timestamps induce per-attribute
    value-currency orders that candidate constraints are validated
    against. *)

type t = {
  schema : Schema.t;
  entities : (Tuple.t * int) list list;
      (** per entity: tuples with their timestamps *)
}

val make : Schema.t -> (Tuple.t * int) list list -> t

(** [value_rank ds entity_idx attr] maps each value of the attribute to
    the earliest timestamp it carries in that entity; the induced strict
    order ("earlier first seen = less current") is the ground currency
    order used to check candidates. *)
val value_rank : t -> int -> int -> (Value.t * int) list

(** [lt_of_entity ds i] is the induced value-currency order of entity [i]
    as a predicate usable with {!Currency.Constraint_ast.holds}. *)
val lt_of_entity : t -> int -> string -> Value.t -> Value.t -> bool

(** [holds_frac ds c] is the fraction of (entity, ordered tuple pair)
    checks on which constraint [c] holds; 1.0 means no violation
    anywhere. *)
val holds_frac : t -> Currency.Constraint_ast.t -> float
