type config = { min_support : int; min_confidence : float; max_transitions : int }

let default_config = { min_support = 1; min_confidence = 1.0; max_transitions = 10_000 }

(* transition pairs per attribute: (v1, v2) observed with v1 strictly
   earlier than v2 in some entity; kept when never observed reversed and
   supported by enough entities *)
let transition_candidates ds config =
  let schema = ds.Stamped.schema in
  let arity = Schema.arity schema in
  let seen = Hashtbl.create 256 in
  (* key: (attr, v1 string, v2 string) -> (v1, v2, entity set) *)
  List.iteri
    (fun i _ ->
      List.iter
        (fun a ->
          let ranks = Stamped.value_rank ds i a in
          List.iter
            (fun (v1, r1) ->
              List.iter
                (fun (v2, r2) ->
                  if r1 < r2 && not (Value.equal v1 v2) then begin
                    let key = (a, Value.to_string v1, Value.to_string v2) in
                    let entry =
                      match Hashtbl.find_opt seen key with
                      | Some (_, _, s) -> s
                      | None ->
                          let s = Hashtbl.create 4 in
                          Hashtbl.replace seen key (v1, v2, s);
                          s
                    in
                    Hashtbl.replace entry i ()
                  end)
                ranks)
            ranks)
        (List.init arity Fun.id))
    ds.Stamped.entities;
  let out = ref [] in
  Hashtbl.iter
    (fun (a, k1, k2) (v1, v2, support) ->
      let reversed = Hashtbl.mem seen (a, k2, k1) in
      if (not reversed) && Hashtbl.length support >= config.min_support then
        out :=
          Currency.Constraint_ast.make
            [
              Currency.Constraint_ast.Cmp_const (Currency.Constraint_ast.T1, Schema.name schema a, Value.Eq, v1);
              Currency.Constraint_ast.Cmp_const (Currency.Constraint_ast.T2, Schema.name schema a, Value.Eq, v2);
            ]
            (Schema.name schema a)
          :: !out)
    seen;
  let sorted = List.sort (fun a b -> compare (Currency.Constraint_ast.to_string a) (Currency.Constraint_ast.to_string b)) !out in
  List.filteri (fun i _ -> i < config.max_transitions) sorted

let numeric v = match v with Value.Int _ | Value.Float _ -> true | _ -> false

let monotone_candidates ds =
  let schema = ds.Stamped.schema in
  let arity = Schema.arity schema in
  List.filter_map
    (fun a ->
      (* attribute must be numeric wherever non-null *)
      let ok = ref true and has_numeric = ref false in
      List.iter
        (List.iter (fun (t, _) ->
             let v = Tuple.get t a in
             if numeric v then has_numeric := true
             else if not (Value.is_null v) then ok := false))
        ds.Stamped.entities;
      if !ok && !has_numeric then
        Some
          (Currency.Constraint_ast.make
             [ Currency.Constraint_ast.Cmp2 (Schema.name schema a, Value.Lt) ]
             (Schema.name schema a))
      else None)
    (List.init arity Fun.id)

let implication_candidates ds =
  let schema = ds.Stamped.schema in
  let names = Schema.attr_names schema in
  List.concat_map
    (fun a ->
      List.filter_map
        (fun b ->
          if a = b then None
          else
            Some
              (Currency.Constraint_ast.make [ Currency.Constraint_ast.Prec a ] b))
        names)
    names

let mine ?(config = default_config) ds =
  let candidates =
    transition_candidates ds config @ monotone_candidates ds @ implication_candidates ds
  in
  List.filter (fun c -> Stamped.holds_frac ds c >= config.min_confidence) candidates
