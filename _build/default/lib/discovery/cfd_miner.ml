type config = { min_support : int; min_confidence : float }

let default_config = { min_support = 2; min_confidence = 1.0 }

let mine ?(config = default_config) schema rows =
  let arity = Schema.arity schema in
  let out = ref [] in
  for a = 0 to arity - 1 do
    for b = 0 to arity - 1 do
      if a <> b then begin
        (* group rows by the value of a; count b-values per group *)
        let groups : (string, Value.t * (string, Value.t * int ref) Hashtbl.t * int ref) Hashtbl.t =
          Hashtbl.create 32
        in
        List.iter
          (fun t ->
            let va = Tuple.get t a and vb = Tuple.get t b in
            if not (Value.is_null va || Value.is_null vb) then begin
              let ka = Value.to_string va in
              let _, counts, total =
                match Hashtbl.find_opt groups ka with
                | Some g -> g
                | None ->
                    let g = (va, Hashtbl.create 4, ref 0) in
                    Hashtbl.replace groups ka g;
                    g
              in
              incr total;
              let kb = Value.to_string vb in
              match Hashtbl.find_opt counts kb with
              | Some (_, n) -> incr n
              | None -> Hashtbl.replace counts kb (vb, ref 1)
            end)
          rows;
        Hashtbl.iter
          (fun _ (va, counts, total) ->
            if !total >= config.min_support then begin
              (* best b value for this a value *)
              let best = ref None in
              Hashtbl.iter
                (fun _ (vb, n) ->
                  match !best with
                  | Some (_, m) when m >= !n -> ()
                  | _ -> best := Some (vb, !n))
                counts;
              match !best with
              | Some (vb, n) when float_of_int n /. float_of_int !total >= config.min_confidence
                ->
                  out :=
                    Cfd.Constant_cfd.make
                      [ (Schema.name schema a, va) ]
                      (Schema.name schema b, vb)
                    :: !out
              | _ -> ()
            end)
          groups
      end
    done
  done;
  List.sort (fun x y -> compare (Cfd.Constant_cfd.to_string x) (Cfd.Constant_cfd.to_string y)) !out
