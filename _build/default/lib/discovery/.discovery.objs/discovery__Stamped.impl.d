lib/discovery/stamped.ml: Currency Hashtbl List Schema Tuple Value
