lib/discovery/cfd_miner.ml: Cfd Hashtbl List Schema Tuple Value
