lib/discovery/cfd_miner.mli: Cfd Schema Tuple
