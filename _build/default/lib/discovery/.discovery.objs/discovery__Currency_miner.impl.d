lib/discovery/currency_miner.ml: Currency Fun Hashtbl List Schema Stamped Tuple Value
