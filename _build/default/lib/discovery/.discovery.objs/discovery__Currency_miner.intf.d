lib/discovery/currency_miner.mli: Currency Stamped
