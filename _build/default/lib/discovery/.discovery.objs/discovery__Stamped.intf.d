lib/discovery/stamped.mli: Currency Schema Tuple Value
