(** Currency-constraint discovery from timestamped samples.

    Candidate generation covers the constraint families of the paper's
    experiments (Fig. 3 and Section VI):

    - {b transitions}: [t1\[A\] = c1 & t2\[A\] = c2 -> prec(A)] for value
      pairs that only ever appear in one temporal order (ϕ1–ϕ3 style);
    - {b monotone}: [t1\[A\] < t2\[A\] -> prec(A)] for numeric attributes
      that only grow over time (ϕ4 style);
    - {b implications}: [prec(A) -> prec(B)] for attribute pairs where the
      induced currency orders never disagree (ϕ5–ϕ7 style).

    Every candidate is validated against the timestamp-induced value
    orders with {!Stamped.holds_frac}; candidates at or above
    [min_confidence] (default 1.0: no observed violation) are kept. *)

type config = {
  min_support : int;
      (** minimum number of entities witnessing a transition pair
          (default 1) *)
  min_confidence : float;  (** acceptance threshold (default 1.0) *)
  max_transitions : int;   (** cap on emitted transition rules (default 10_000) *)
}

val default_config : config

(** [mine ?config ds] returns accepted constraints, transitions first. *)
val mine : ?config:config -> Stamped.t -> Currency.Constraint_ast.t list
