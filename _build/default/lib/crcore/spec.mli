(** Entity specifications [Se = (It, Σ, Γ)] (Section II-C): a temporal
    instance (entity tuples plus per-attribute partial currency orders),
    currency constraints, and constant CFDs. *)

(** A tuple-level currency-order edge: tuple [lo] is less current than
    tuple [hi] in attribute [attr] (attribute by name). *)
type order_edge = { attr : string; lo : int; hi : int }

type t = {
  entity : Entity.t;
  orders : order_edge list;              (** the partial orders of [It] *)
  sigma : Currency.Constraint_ast.t list;  (** currency constraints Σ *)
  gamma : Cfd.Constant_cfd.t list;         (** constant CFDs Γ *)
}

(** [make entity ~orders ~sigma ~gamma] validates attribute names and tuple
    indices and builds the specification. Raises [Invalid_argument] with a
    description on any dangling reference. *)
val make :
  Entity.t ->
  orders:order_edge list ->
  sigma:Currency.Constraint_ast.t list ->
  gamma:Cfd.Constant_cfd.t list ->
  t

val schema : t -> Schema.t
val size : t -> int

(** [add_order_edges s edges] extends the partial orders ([Se ⊕ Ot] with a
    pure order extension). *)
val add_order_edges : t -> order_edge list -> t

(** [extend_with_tuple s tup ~current_attrs] implements the paper's user
    input step (Section III, Remark 1): appends the fresh tuple [tup] and,
    for every attribute named in [current_attrs], adds order edges making
    [tup] the most current. *)
val extend_with_tuple : t -> Tuple.t -> current_attrs:string list -> t

val pp : Format.formatter -> t -> unit
