type choice = { attr : string; value : Value.t }

type result = {
  choices : choice list;
  cost : int;
  resolved : Value.t option array;
  complete : bool;
}

let apply spec choices =
  let schema = Spec.schema spec in
  let entity = spec.Spec.entity in
  let n = Entity.size entity in
  let edges =
    List.concat_map
      (fun { attr; value } ->
        let a = Schema.index schema attr in
        let rep = ref (-1) in
        for i = n - 1 downto 0 do
          if Value.equal (Entity.value entity i a) value then rep := i
        done;
        if !rep < 0 then
          invalid_arg (Printf.sprintf "Coverage.apply: %s never takes this value" attr);
        List.filter_map
          (fun i ->
            if i <> !rep && not (Value.equal (Entity.value entity i a) value) then
              Some { Spec.attr; lo = i; hi = !rep }
            else None)
          (List.init n Fun.id))
      choices
  in
  Spec.add_order_edges spec edges

let choice_cost spec { attr; value = _ } =
  let a = Schema.index (Spec.schema spec) attr in
  List.length (Entity.active_domain spec.Spec.entity a) - 1

let greedy ?mode spec =
  let schema = Spec.schema spec in
  let arity = Schema.arity schema in
  if not (Validity.is_valid ?mode spec) then
    invalid_arg "Coverage.greedy: invalid specification";
  let current = ref spec in
  let choices = ref [] in
  let skipped = Hashtbl.create 4 in
  let continue_search = ref true in
  let last = ref None in
  while !continue_search do
    let enc = Encode.encode ?mode !current in
    let d = Deduce.deduce_order enc in
    let tv = Deduce.true_values d in
    last := Some tv;
    let open_attrs =
      List.filter
        (fun a -> tv.(a) = None && not (Hashtbl.mem skipped a))
        (List.init arity Fun.id)
    in
    (* smallest candidate set first: cheapest way to pin an attribute *)
    let ranked =
      List.sort
        (fun a b -> compare (List.length (Deduce.candidates d a)) (List.length (Deduce.candidates d b)))
        open_attrs
    in
    match ranked with
    | [] -> continue_search := false
    | a :: _ ->
        let name = Schema.name schema a in
        let cands =
          List.map (Coding.value enc.Encode.coding a) (Deduce.candidates d a)
        in
        let accepted =
          List.find_map
            (fun v ->
              let trial = apply !current [ { attr = name; value = v } ] in
              if Validity.is_valid ?mode trial then Some (v, trial) else None)
            cands
        in
        (match accepted with
        | Some (v, trial) ->
            current := trial;
            choices := { attr = name; value = v } :: !choices
        | None -> Hashtbl.add skipped a ())
  done;
  let resolved = match !last with Some tv -> tv | None -> Array.make arity None in
  let choices = List.rev !choices in
  {
    choices;
    cost = List.fold_left (fun acc c -> acc + choice_cost spec c) 0 choices;
    resolved;
    complete = Array.for_all (fun v -> v <> None) resolved;
  }

(* ---- exhaustive optimum for tests ---- *)

let rec subsets_of_size k = function
  | [] -> if k = 0 then [ [] ] else []
  | x :: rest ->
      if k = 0 then [ [] ]
      else
        List.map (fun s -> x :: s) (subsets_of_size (k - 1) rest) @ subsets_of_size k rest

let rec cartesian = function
  | [] -> [ [] ]
  | options :: rest ->
      let tails = cartesian rest in
      List.concat_map (fun o -> List.map (fun t -> o :: t) tails) options

let optimum ?(limit = 2000) spec =
  let schema = Spec.schema spec in
  let entity = spec.Spec.entity in
  let arity = Schema.arity schema in
  let conflicted =
    List.filter (fun a -> Entity.has_conflict entity a) (List.init arity Fun.id)
  in
  let budget = ref limit in
  let try_choices choices =
    if !budget <= 0 then None
    else begin
      decr budget;
      let trial = apply spec choices in
      match Reference.analyze trial with
      | Some r when r.Reference.valid && r.Reference.true_tuple <> None ->
          Some
            {
              choices;
              cost = List.fold_left (fun acc c -> acc + choice_cost spec c) 0 choices;
              resolved = r.Reference.agreed;
              complete = true;
            }
      | _ -> None
    end
  in
  let exception Found of result in
  let exception Out_of_budget in
  try
    for k = 0 to List.length conflicted do
      List.iter
        (fun attrs ->
          let options =
            List.map
              (fun a ->
                List.map
                  (fun v -> { attr = Schema.name schema a; value = v })
                  (Entity.active_domain entity a))
              attrs
          in
          List.iter
            (fun choices ->
              if !budget <= 0 then raise Out_of_budget;
              match try_choices choices with Some r -> raise (Found r) | None -> ())
            (cartesian options))
        (subsets_of_size k conflicted)
    done;
    (* no extension yields a true tuple (e.g. the spec is invalid) *)
    Some
      {
        choices = [];
        cost = 0;
        resolved = Array.make arity None;
        complete = false;
      }
  with
  | Found r -> Some r
  | Out_of_budget -> None
