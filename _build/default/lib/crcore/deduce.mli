(** Deducing implied currency orders and true values (Section V-B).

    [DeduceOrder] runs unit propagation over Φ(Se): every one-literal
    clause it derives is added to the partial temporal order [Od]
    (negative literals contribute the reversed pair, sound under the
    total-order completion semantics). [NaiveDeduce] instead asks the SAT
    solver, for every variable, whether Φ(Se) ∧ ¬x is unsatisfiable — the
    exact but expensive variant the paper compares against. *)

type t = {
  enc : Encode.t;
  od : Porder.Strict_order.t array;
      (** per attribute position: the deduced order over value ids, kept
          transitively closed *)
}

(** [deduce_order enc] is the paper's [DeduceOrder] (linear-time unit
    propagation). The specification must be valid. *)
val deduce_order : Encode.t -> t

(** [naive_deduce enc] is [NaiveDeduce]: one SAT call per variable. *)
val naive_deduce : Encode.t -> t

(** [lt d ~attr lo hi] is [true] when [Od] orders value [lo] before [hi]. *)
val lt : t -> attr:int -> int -> int -> bool

(** [n_facts d] is the size |Od| of the deduced relation (closure). *)
val n_facts : t -> int

(** [candidates d a] is [V(A)]: universe value ids of attribute [a] not
    dominated by any other value in [Od] (the paper's candidate true
    values). *)
val candidates : t -> int -> int list

(** [true_value_id d a] is the id of the true value of attribute [a] when
    [Od] determines one: the unique candidate that dominates every other
    active-domain value. *)
val true_value_id : t -> int -> int option

(** [true_values d] is the per-attribute true values determined so far. *)
val true_values : t -> Value.t option array

(** [known_attrs d] is the positions whose true value is determined. *)
val known_attrs : t -> int list
