(** The uniform instance-constraint representation Ω(Se) and its CNF
    conversion Φ(Se) (Section V-A of the paper).

    Encoding, in brief: Boolean variables are value-currency facts
    [a1 ≺v_{Ai} a2] over each attribute's active domain (see {!Coding});
    the partial currency orders of [It] and the premise-free instances of
    currency constraints become unit clauses; currency constraints
    instantiated on tuple pairs and constant CFDs become implications;
    transitivity and asymmetry axioms make every model a strict partial
    order per attribute.

    Completions order the values the entity actually takes, following the
    paper's Section II-A definition of temporal instances over [Ie]; a CFD
    pattern constant outside the active domain therefore cannot be a
    current value — an LHS such constant makes the CFD vacuous
    ({!relevant_gamma}), an RHS one forbids the CFD's premise (a veto
    clause).

    [Exact] mode additionally emits totality clauses, making models
    correspond exactly to families of total orders — the sound-and-complete
    variant of the paper's heuristic Lemma 5 reduction (ablated in the
    benches). *)

type mode = Paper | Exact

(** A value-currency fact: value [lo] is less current than value [hi] in
    attribute position [attr] (ids per {!Coding}). *)
type fact = { attr : int; lo : int; hi : int }

(** Where an instance constraint came from; drives the derivation rules of
    [Suggest]. *)
type source =
  | From_order          (** a currency order of [It], or null-is-lowest *)
  | From_constraint of int  (** index into Σ *)
  | From_cfd of int         (** index into Γ *)

(** One instance constraint of Ω(Se): if every premise fact holds then the
    conclusion fact holds. Premise-free instances are facts outright. *)
type iconstraint = { premise : fact list; concl : fact; source : source }

type t = {
  spec : Spec.t;
  coding : Coding.t;
  mode : mode;
  units : (fact * source) list;      (** premise-free part of Ω(Se) *)
  implications : iconstraint list;   (** the rest of Ω(Se) *)
  vetoes : (fact list * source) list;
      (** conjunctions of facts that cannot all hold: a CFD whose RHS
          pattern constant never occurs in the entity can never fire, so
          its "LHS pattern is most current" premise is forbidden *)
  cnf : Sat.Cnf.t;                   (** Φ(Se), structural axioms included *)
  n_structural : int;  (** transitivity + asymmetry (+ totality) clauses *)
}

(** [encode ?mode spec] computes Ω(Se) and Φ(Se). Default mode [Paper]. *)
val encode : ?mode:mode -> Spec.t -> t

(** [relevant_gamma entity gamma] keeps the CFDs that can fire on this
    entity — those whose every LHS pattern constant occurs in the active
    domain of its attribute — paired with their index in [gamma]. The
    encoding and the reference semantics consider only these; a CFD whose
    LHS mentions a value the entity never takes is vacuous on it, and
    skipping it keeps the value universes (and hence the cubic
    transitivity axioms) small when Γ is a large pattern table. *)
val relevant_gamma : Entity.t -> Cfd.Constant_cfd.t list -> (int * Cfd.Constant_cfd.t) list

(** [var_of_fact e f] is the Boolean variable of fact [f]. *)
val var_of_fact : t -> fact -> int

(** [fact_of_var e v] decodes a variable back to its fact. *)
val fact_of_var : t -> int -> fact

val pp_fact : t -> Format.formatter -> fact -> unit
