(** Whole-relation repair — the paper's concluding future-work item
    ("repair data by using currency constraints and partial temporal
    orders"), built on per-entity conflict resolution.

    A relation holding several records per real-world entity is
    partitioned on key attributes (the output of record linkage); each
    partition becomes an entity instance and is resolved with the
    framework; the repaired relation holds one current tuple per entity.
    Attributes the framework cannot determine fall back to a {!Pick}
    strategy, as the paper's framework prescribes when users leave
    attributes unresolved. *)

type entity_report = {
  key : Value.t list;          (** the entity's key values *)
  size : int;                  (** tuples merged *)
  valid : bool;                (** specification validity *)
  determined : int;            (** attributes resolved by inference *)
  fell_back : int;             (** attributes taken from the Pick fallback *)
  tuple : Tuple.t;             (** the repaired (current) tuple *)
}

type report = {
  repaired : Tuple.t list;     (** one tuple per entity, input order *)
  entities : entity_report list;
  invalid_entities : int;
}

(** [run ?mode ?user ?fallback ~key rel ~sigma ~gamma] repairs the
    relation [rel] (any tuple list over one schema). [key] lists the
    linkage attributes (must exist; an empty list treats the whole
    relation as one entity). [user] defaults to {!Framework.silent};
    [fallback] to [Pick.Favoured]. Entities whose specification is invalid
    are repaired entirely by the fallback and counted in
    [invalid_entities]. *)
val run :
  ?mode:Encode.mode ->
  ?user:Framework.user ->
  ?fallback:Pick.strategy ->
  key:string list ->
  Schema.t ->
  Tuple.t list ->
  sigma:Currency.Constraint_ast.t list ->
  gamma:Cfd.Constant_cfd.t list ->
  report
