type result = {
  valid : bool;
  n_valid : int;
  agreed : Value.t option array;
  true_tuple : Value.t array option;
}

(* Per-attribute base order: value-level edges from It plus null-lowest. *)
let base_graphs spec coding =
  let schema = Spec.schema spec in
  let entity = spec.Spec.entity in
  let arity = Schema.arity schema in
  let graphs =
    Array.init arity (fun a ->
        Porder.Digraph.create (Array.length (Coding.universe coding a)))
  in
  List.iter
    (fun { Spec.attr; lo; hi } ->
      let a = Schema.index schema attr in
      let v1 = Entity.value entity lo a and v2 = Entity.value entity hi a in
      if not (Value.equal v1 v2) then
        Porder.Digraph.add_edge graphs.(a) (Coding.vid coding a v1) (Coding.vid coding a v2))
    spec.Spec.orders;
  for a = 0 to arity - 1 do
    let univ = Coding.universe coding a in
    Array.iteri
      (fun i v ->
        if Value.is_null v then
          Array.iteri
            (fun j w -> if j <> i && not (Value.is_null w) then Porder.Digraph.add_edge graphs.(a) i j)
            univ)
      univ
  done;
  graphs

(* Iterate over all completions, calling [f ranks] for each; [ranks.(a).(vid)]
   is the position of the value in attribute [a]'s total order. Returns
   [false] when the space exceeds [limit]. *)
let fold_completions spec coding limit f =
  let arity = Schema.arity (Spec.schema spec) in
  let graphs = base_graphs spec coding in
  if Array.exists Porder.Digraph.has_cycle graphs then Some 0 (* no completion at all *)
  else begin
    let extensions =
      Array.map (fun g -> Array.of_list (Porder.Digraph.linear_extensions g)) graphs
    in
    let total =
      Array.fold_left
        (fun acc exts ->
          if acc < 0 then acc
          else
            let n = Array.length exts in
            if n = 0 || acc > limit / max n 1 then -1 else acc * n)
        1 extensions
    in
    if total < 0 then None
    else begin
      let ranks =
        Array.init arity (fun a -> Array.make (Array.length (Coding.universe coding a)) 0)
      in
      let rec go a =
        if a = arity then f ranks
        else
          Array.iter
            (fun ext ->
              List.iteri (fun pos vid -> ranks.(a).(vid) <- pos) ext;
              go (a + 1))
            extensions.(a)
      in
      go 0;
      Some total
    end
  end

let completion_is_valid spec coding ranks =
  let schema = Spec.schema spec in
  let entity = spec.Spec.entity in
  let arity = Schema.arity schema in
  let lt name v1 v2 =
    let a = Schema.index schema name in
    match (Coding.vid_opt coding a v1, Coding.vid_opt coding a v2) with
    | Some i, Some j -> ranks.(a).(i) < ranks.(a).(j)
    | _ -> false
  in
  let tuples = Entity.tuples entity in
  let sigma_ok =
    List.for_all
      (fun c ->
        List.for_all
          (fun s1 ->
            List.for_all
              (fun s2 ->
                s1 == s2 || Currency.Constraint_ast.holds c ~lt s1 s2)
              tuples)
          tuples)
      spec.Spec.sigma
  in
  if not sigma_ok then None
  else begin
    (* current tuple: the rank-maximal value of each attribute's universe *)
    let current =
      Array.init arity (fun a ->
          let d = Array.length (Coding.universe coding a) in
          let best = ref 0 in
          for v = 1 to d - 1 do
            if ranks.(a).(v) > ranks.(a).(!best) then best := v
          done;
          Coding.value coding a !best)
    in
    let tl = Tuple.of_array schema current in
    if List.for_all (fun c -> Cfd.Constant_cfd.satisfied c tl) spec.Spec.gamma then
      Some current
    else None
  end

let analyze ?(limit = 2_000_000) spec =
  let coding = Coding.build spec.Spec.entity [] in
  let arity = Schema.arity (Spec.schema spec) in
  let n_valid = ref 0 in
  let agreed = ref None in
  let visit ranks =
    match completion_is_valid spec coding ranks with
    | None -> ()
    | Some current ->
        incr n_valid;
        agreed :=
          Some
            (match !agreed with
            | None -> Array.map (fun v -> Some v) current
            | Some acc ->
                Array.mapi
                  (fun a vo ->
                    match vo with
                    | Some v when Value.equal v current.(a) -> Some v
                    | _ -> None)
                  acc)
  in
  match fold_completions spec coding limit visit with
  | None -> None
  | Some _ ->
      let agreed = match !agreed with None -> Array.make arity None | Some a -> a in
      let true_tuple =
        if !n_valid > 0 && Array.for_all (fun v -> v <> None) agreed then
          Some (Array.map Option.get agreed)
        else None
      in
      Some { valid = !n_valid > 0; n_valid = !n_valid; agreed; true_tuple }

let implied ?(limit = 2_000_000) spec ~attr v1 v2 =
  let coding = Coding.build spec.Spec.entity [] in
  let schema = Spec.schema spec in
  let a = Schema.index schema attr in
  match (Coding.vid_opt coding a v1, Coding.vid_opt coding a v2) with
  | Some i, Some j when i <> j ->
      let n_valid = ref 0 in
      let holds_everywhere = ref true in
      let visit ranks =
        match completion_is_valid spec coding ranks with
        | None -> ()
        | Some _ ->
            incr n_valid;
            if ranks.(a).(i) >= ranks.(a).(j) then holds_everywhere := false
      in
      (match fold_completions spec coding limit visit with
      | None -> None
      | Some _ -> if !n_valid = 0 then None else Some !holds_everywhere)
  | _ -> Some false
