type vfact = { attr : string; lo : Value.t; hi : Value.t }

type answer = Implied | Not_implied | Invalid_spec | Unknown_value

let pp_answer ppf a =
  Format.pp_print_string ppf
    (match a with
    | Implied -> "implied"
    | Not_implied -> "not implied"
    | Invalid_spec -> "invalid specification"
    | Unknown_value -> "unknown value")

let holds_enc enc solver f =
  let coding = enc.Encode.coding in
  let schema = Coding.schema coding in
  match Schema.index_opt schema f.attr with
  | None -> Unknown_value
  | Some a -> (
      match (Coding.vid_opt coding a f.lo, Coding.vid_opt coding a f.hi) with
      | Some lo, Some hi when lo <> hi -> (
          let x = Coding.var_of coding ~attr:a lo hi in
          match Sat.Solver.solve ~assumptions:[ Sat.Lit.neg_of x ] solver with
          | Sat.Solver.Unsat ->
              (* ¬x contradicts Φ; distinguish "implied" from "Φ unsat" *)
              if Sat.Solver.ok solver then Implied else Invalid_spec
          | Sat.Solver.Sat -> Not_implied)
      | Some _, Some _ -> Not_implied (* v ≺ v never holds *)
      | _ -> Unknown_value)

let solver_of enc =
  let s = Sat.Solver.create () in
  Sat.Solver.add_cnf s enc.Encode.cnf;
  s

let holds ?mode spec f =
  let enc = Encode.encode ?mode spec in
  let s = solver_of enc in
  match Sat.Solver.solve s with
  | Sat.Solver.Unsat -> Invalid_spec
  | Sat.Solver.Sat -> holds_enc enc s f

let implied_order ?mode spec facts =
  let enc = Encode.encode ?mode spec in
  let s = solver_of enc in
  match Sat.Solver.solve s with
  | Sat.Solver.Unsat -> Invalid_spec
  | Sat.Solver.Sat ->
      let rec go = function
        | [] -> Implied
        | f :: rest -> (
            match holds_enc enc s f with Implied -> go rest | other -> other)
      in
      go facts

let order_edges_facts spec edges =
  let schema = Spec.schema spec in
  let entity = spec.Spec.entity in
  List.filter_map
    (fun { Spec.attr; lo; hi } ->
      let a = Schema.index schema attr in
      let v1 = Entity.value entity lo a and v2 = Entity.value entity hi a in
      if Value.equal v1 v2 then None else Some { attr; lo = v1; hi = v2 })
    edges
