type entity_report = {
  key : Value.t list;
  size : int;
  valid : bool;
  determined : int;
  fell_back : int;
  tuple : Tuple.t;
}

type report = {
  repaired : Tuple.t list;
  entities : entity_report list;
  invalid_entities : int;
}

let partition_by_key schema key tuples =
  let key_positions = List.map (Schema.index schema) key in
  let order = ref [] in
  let groups = Hashtbl.create 16 in
  List.iter
    (fun t ->
      let k = List.map (fun a -> Value.to_string (Tuple.get t a)) key_positions in
      if not (Hashtbl.mem groups k) then begin
        Hashtbl.add groups k (ref []);
        order := k :: !order
      end;
      let cell = Hashtbl.find groups k in
      cell := t :: !cell)
    tuples;
  List.rev !order |> List.map (fun k -> (k, List.rev !(Hashtbl.find groups k)))

let run ?(mode = Encode.Paper) ?(user = Framework.silent) ?(fallback = Pick.Favoured)
    ~key schema tuples ~sigma ~gamma =
  List.iter
    (fun a ->
      if not (Schema.mem schema a) then
        invalid_arg (Printf.sprintf "Repair.run: unknown key attribute %S" a))
    key;
  if tuples = [] then invalid_arg "Repair.run: empty relation";
  let key_positions = List.map (Schema.index schema) key in
  let arity = Schema.arity schema in
  let groups = partition_by_key schema key tuples in
  let invalid = ref 0 in
  let entities =
    List.map
      (fun (_, group) ->
        let entity = Entity.make schema group in
        let key_values = List.map (Tuple.get (List.hd group)) key_positions in
        let spec = Spec.make entity ~orders:[] ~sigma ~gamma in
        let outcome = Framework.resolve ~mode ~user spec in
        let valid = outcome.Framework.valid in
        if not valid then incr invalid;
        let picked = Pick.run ~strategy:fallback spec in
        let determined = ref 0 and fell_back = ref 0 in
        let values =
          Array.init arity (fun a ->
              match if valid then outcome.Framework.resolved.(a) else None with
              | Some v ->
                  incr determined;
                  v
              | None ->
                  incr fell_back;
                  picked.(a))
        in
        {
          key = key_values;
          size = Entity.size entity;
          valid;
          determined = !determined;
          fell_back = !fell_back;
          tuple = Tuple.of_array schema values;
        })
      groups
  in
  {
    repaired = List.map (fun e -> e.tuple) entities;
    entities;
    invalid_entities = !invalid;
  }
