type t = { enc : Encode.t; od : Porder.Strict_order.t array }

let empty_od enc =
  let coding = enc.Encode.coding in
  let schema = Coding.schema coding in
  Array.init (Schema.arity schema) (fun a ->
      Porder.Strict_order.create (Array.length (Coding.universe coding a)))

let add_literal_to_od enc od lit =
  let v = Sat.Lit.var lit in
  let { Encode.attr; lo; hi } = Encode.fact_of_var enc v in
  (* a positive unit is the fact itself; a negative unit is read as the
     reversed pair, which is sound when completions are total orders *)
  let lo, hi = if Sat.Lit.sign lit then (lo, hi) else (hi, lo) in
  ignore (Porder.Strict_order.add od.(attr) lo hi)

(* ---- DeduceOrder: unit propagation with occurrence lists ---- *)

let deduce_order enc =
  let cnf = enc.Encode.cnf in
  let nvars = cnf.Sat.Cnf.nvars in
  let clauses = Array.of_list cnf.Sat.Cnf.clauses in
  let nclauses = Array.length clauses in
  let satisfied = Array.make nclauses false in
  let n_active = Array.make nclauses 0 in
  (* occurrence lists indexed by literal *)
  let occ = Array.make (2 * max nvars 1) [] in
  Array.iteri
    (fun ci c ->
      n_active.(ci) <- Array.length c;
      Array.iter (fun l -> occ.(l) <- ci :: occ.(l)) c)
    clauses;
  let assigns = Array.make (max nvars 1) 0 in
  let value_lit l =
    let a = assigns.(Sat.Lit.var l) in
    if Sat.Lit.sign l then a else -a
  in
  let queue = Queue.create () in
  Array.iteri (fun ci c -> if Array.length c = 1 then Queue.add (c.(0), ci) queue) clauses;
  let od = empty_od enc in
  let conflict = ref false in
  while (not !conflict) && not (Queue.is_empty queue) do
    let l, _src = Queue.pop queue in
    match value_lit l with
    | 1 -> () (* already known *)
    | -1 -> conflict := true (* invalid specification; caller checks first *)
    | _ ->
        assigns.(Sat.Lit.var l) <- (if Sat.Lit.sign l then 1 else -1);
        add_literal_to_od enc od l;
        (* clauses containing l are satisfied *)
        List.iter (fun ci -> satisfied.(ci) <- true) occ.(l);
        (* clauses containing ¬l lose a literal *)
        List.iter
          (fun ci ->
            if not satisfied.(ci) then begin
              n_active.(ci) <- n_active.(ci) - 1;
              if n_active.(ci) = 1 then begin
                (* find the remaining unassigned literal *)
                let c = clauses.(ci) in
                let rest = Array.to_list c |> List.filter (fun l' -> value_lit l' = 0) in
                match rest with
                | [ l' ] -> Queue.add (l', ci) queue
                | [] -> conflict := true
                | _ -> assert false
              end
              else if n_active.(ci) = 0 then conflict := true
            end)
          occ.(Sat.Lit.negate l)
  done;
  { enc; od }

(* ---- NaiveDeduce: one SAT call per variable ---- *)

let naive_deduce enc =
  let s = Sat.Solver.create () in
  Sat.Solver.add_cnf s enc.Encode.cnf;
  let od = empty_od enc in
  let nvars = enc.Encode.cnf.Sat.Cnf.nvars in
  for v = 0 to nvars - 1 do
    match Sat.Solver.solve ~assumptions:[ Sat.Lit.neg_of v ] s with
    | Sat.Solver.Unsat -> add_literal_to_od enc od (Sat.Lit.pos v)
    | Sat.Solver.Sat -> ()
  done;
  { enc; od }

let lt d ~attr lo hi = Porder.Strict_order.lt d.od.(attr) lo hi

let n_facts d = Array.fold_left (fun acc o -> acc + Porder.Strict_order.n_pairs o) 0 d.od

let universe_maximal d a = Porder.Strict_order.maximal d.od.(a)

let candidates d a =
  (* V(A) of the paper: active-domain values not yet dominated in Od *)
  let nadom = Coding.adom_size d.enc.Encode.coding a in
  List.filter (fun v -> v < nadom) (universe_maximal d a)

let true_value_id d a =
  let coding = d.enc.Encode.coding in
  let nadom = Coding.adom_size coding a in
  let dominating v =
    let ok = ref true in
    for u = 0 to nadom - 1 do
      if u <> v && not (lt d ~attr:a u v) then ok := false
    done;
    !ok
  in
  (* the true value may be a repair constant outside the active domain, so
     search all universe-maximal values, not just V(A) *)
  match List.filter dominating (universe_maximal d a) with
  | [ v ] -> Some v
  | _ -> None

let true_values d =
  let coding = d.enc.Encode.coding in
  let arity = Schema.arity (Coding.schema coding) in
  Array.init arity (fun a ->
      Option.map (fun id -> Coding.value coding a id) (true_value_id d a))

let known_attrs d =
  let tv = true_values d in
  List.filter (fun a -> tv.(a) <> None) (List.init (Array.length tv) Fun.id)
