let solver_of enc =
  let s = Sat.Solver.create () in
  Sat.Solver.add_cnf s enc.Encode.cnf;
  s

let check enc =
  match Sat.Solver.solve (solver_of enc) with
  | Sat.Solver.Sat -> true
  | Sat.Solver.Unsat -> false

let is_valid ?mode spec = check (Encode.encode ?mode spec)

let check_model enc =
  let s = solver_of enc in
  match Sat.Solver.solve s with
  | Sat.Solver.Sat -> Some (Sat.Solver.model s)
  | Sat.Solver.Unsat -> None
