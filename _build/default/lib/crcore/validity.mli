(** Validity checking — the paper's [IsValid] (Section V-A, step (1) of the
    framework): reduce the specification to CNF and ask the SAT solver
    whether a valid completion can exist. *)

(** [check enc] decides satisfiability of the already-built Φ(Se). *)
val check : Encode.t -> bool

(** [is_valid ?mode spec] encodes and checks in one step. *)
val is_valid : ?mode:Encode.mode -> Spec.t -> bool

(** [check_model enc] is [Some model] (over Φ's variables) when
    satisfiable; useful for debugging and the ablation benches. *)
val check_model : Encode.t -> bool array option
