lib/crcore/deduce.mli: Encode Porder Value
