lib/crcore/spec.ml: Cfd Currency Entity Format Fun List Printf Schema
