lib/crcore/rules.mli: Clique Deduce Format Value
