lib/crcore/pick.ml: Array Coding Currency Entity Fun List Porder Random Schema Spec Value
