lib/crcore/framework.mli: Deduce Encode Rules Schema Spec Tuple Value
